// Package bench is the repository's benchmark harness: one testing.B
// benchmark per table/figure of the paper's evaluation (each regenerates
// the figure's rows through the experiment package and reports them via
// b.Log at -v), plus micro-benchmarks of the hot substrate paths (tensor
// kernels, local training, update transforms, wire codec, RLHF agent,
// device cost model).
//
// Figure benches run at a reduced scale so `go test -bench=.` completes in
// minutes; use `go run ./cmd/floatbench -scale paper` for the full-size
// reproduction.
package bench

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/experiment"
	"floatfl/internal/fl"
	"floatfl/internal/nn"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/population"
	"floatfl/internal/rl"
	"floatfl/internal/selection"
	"floatfl/internal/tensor"
	"floatfl/internal/trace"
)

// benchScale keeps every figure bench under a few seconds while preserving
// the paper's shapes.
var benchScale = experiment.Scale{
	Clients: 24, Rounds: 8, PerRound: 6, Epochs: 1, BatchSz: 8,
	Seed: 99, AsyncConcurrency: 10, AsyncBuffer: 4,
}

// figureBench runs one named figure once per benchmark iteration.
func figureBench(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiment.ByName(name, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			for _, t := range tables {
				b.Logf("\n%s: %d rows", t.Title, len(t.Rows))
			}
		}
	}
}

func BenchmarkFig02Bias(b *testing.B)      { figureBench(b, "2") }
func BenchmarkFig03Dropouts(b *testing.B)  { figureBench(b, "3") }
func BenchmarkFig04Traces(b *testing.B)    { figureBench(b, "4") }
func BenchmarkFig05Static(b *testing.B)    { figureBench(b, "5") }
func BenchmarkFig06Heuristic(b *testing.B) { figureBench(b, "6") }
func BenchmarkFig08Overhead(b *testing.B)  { figureBench(b, "8") }
func BenchmarkFig09Transfer(b *testing.B)  { figureBench(b, "9") }
func BenchmarkFig10QTables(b *testing.B)   { figureBench(b, "10") }
func BenchmarkFig11Ablation(b *testing.B)  { figureBench(b, "11") }
func BenchmarkFig12EndToEnd(b *testing.B)  { figureBench(b, "12") }
func BenchmarkFig13OpenImage(b *testing.B) { figureBench(b, "13") }

// Ablation benches for the design choices DESIGN.md calls out.
func BenchmarkAblationReward(b *testing.B)        { figureBench(b, "ablation-reward") }
func BenchmarkAblationExploration(b *testing.B)   { figureBench(b, "ablation-explore") }
func BenchmarkAblationLearningRate(b *testing.B)  { figureBench(b, "ablation-lr") }
func BenchmarkAblationFeedbackCache(b *testing.B) { figureBench(b, "ablation-cache") }
func BenchmarkAblationBins(b *testing.B)          { figureBench(b, "ablation-bins") }
func BenchmarkAblationPerClient(b *testing.B)     { figureBench(b, "ablation-perclient") }
func BenchmarkAblationActionSpace(b *testing.B)   { figureBench(b, "ablation-actions") }

// --- parallel round execution ---

// benchRounds runs a short synchronous training run at the given
// per-round client parallelism and tensor backend. The federation and
// population are rebuilt each iteration (off the clock) so every iteration
// simulates identical rounds; the engines guarantee the results are
// bit-identical across parallelism levels (for a fixed backend), so these
// benchmarks measure pure speedup. The obs registry and tracer ride along
// so the reported allocs/op include the telemetry layer's per-round cost
// (CI gates this envelope on the ref backend).
func benchRounds(b *testing.B, parallelism int, backend string) {
	b.Helper()
	cfg := fl.Config{
		Arch:            "resnet34",
		Rounds:          4,
		ClientsPerRound: 12,
		Epochs:          2,
		BatchSize:       16,
		LR:              0.1,
		EvalEvery:       4,
		Seed:            17,
		Parallelism:     parallelism,
		Backend:         backend,
		Metrics:         obs.NewRegistry(),
		Tracer:          obs.NewTracer(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fed, err := data.Generate("femnist", data.GenerateConfig{Clients: 24, Alpha: 0.1, Seed: 17})
		if err != nil {
			b.Fatal(err)
		}
		pop, err := device.NewPopulation(device.PopulationConfig{
			Clients: 24, Scenario: trace.ScenarioDynamic, Seed: 17,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := fl.RunSync(fed, pop, selection.NewRandom(17), fl.NoOpController{}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundSequential(b *testing.B) { benchRounds(b, 1, "ref") }

// BenchmarkRoundParallel uses at least 4 workers so the pool's goroutine
// machinery is exercised even on small machines: on a multi-core host the
// ratio to BenchmarkRoundSequential is the round speedup; on a single
// core it bounds the pool's scheduling overhead.
func BenchmarkRoundParallel(b *testing.B) {
	par := runtime.NumCPU()
	if par < 4 {
		par = 4
	}
	benchRounds(b, par, "ref")
}

// BenchmarkRoundFastSequential / BenchmarkRoundFastParallel are the same
// runs on the fast backend (batched GEMM forward/backward, fused
// softmax+xent). The ratio to the ref variants is the kernel speedup the
// committed BENCH_*.json artifact records. Named so CI's
// /BenchmarkRoundParallel/ alloc gate keeps matching only the ref run.
// benchRoundsLazy is benchRounds over a lazy (provider-backed) population
// of the same shape, with a cache smaller than the population so eviction
// and re-derivation are on the clock. CI gates its allocs/op alongside the
// eager parallel round so the lazy seam can't quietly regress the round
// hot path.
func benchRoundsLazy(b *testing.B, parallelism int) {
	b.Helper()
	cfg := fl.Config{
		Arch:            "resnet34",
		Rounds:          4,
		ClientsPerRound: 12,
		Epochs:          2,
		BatchSize:       16,
		LR:              0.1,
		EvalEvery:       4,
		Seed:            17,
		Parallelism:     parallelism,
		Backend:         "ref",
		EvalClients:     12,
		Metrics:         obs.NewRegistry(),
		Tracer:          obs.NewTracer(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := population.NewLazy(population.Config{
			Dataset: "femnist", Clients: 24, Alpha: 0.1, Seed: 17,
			Scenario: trace.ScenarioDynamic, CacheClients: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		p.Instrument(cfg.Metrics)
		b.StartTimer()
		if _, err := fl.RunSyncPop(p, selection.NewRandom(17), fl.NoOpController{}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundLazyParallel is the lazy-population counterpart of
// BenchmarkRoundParallel: same round shape, state derived through the
// provider caches instead of preallocated slices.
func BenchmarkRoundLazyParallel(b *testing.B) {
	par := runtime.NumCPU()
	if par < 4 {
		par = 4
	}
	benchRoundsLazy(b, par)
}

func BenchmarkRoundFastSequential(b *testing.B) { benchRounds(b, 1, "fast") }

func BenchmarkRoundFastParallel(b *testing.B) {
	par := runtime.NumCPU()
	if par < 4 {
		par = 4
	}
	benchRounds(b, par, "fast")
}

// --- substrate micro-benchmarks ---

// benchPerBackend runs one kernel benchmark as a sub-benchmark per
// registered tensor backend, so `-bench BenchmarkBackend` compares ref and
// fast side by side. The factory pattern lets the -bench-out artifact
// writer reuse the exact same bodies via testing.Benchmark.
func benchPerBackend(b *testing.B, factory func(be tensor.Backend) func(b *testing.B)) {
	b.Helper()
	for _, name := range tensor.Backends() {
		be, err := tensor.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, factory(be))
	}
}

func matVecBench(be tensor.Backend) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(11))
		m := tensor.NewMatrix(64, 64)
		tensor.RandnInto(m.Data, 1, rng)
		x, dst := tensor.NewVector(64), tensor.NewVector(64)
		tensor.RandnInto(x, 1, rng)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			be.MatVec(m, dst, x)
		}
	}
}

// matMulNTBench is the batched Dense forward shape: a 16-sample minibatch
// of width 64 against a 64×64 weight matrix.
func matMulNTBench(be tensor.Backend) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(12))
		x := tensor.NewMatrix(16, 64)
		tensor.RandnInto(x.Data, 1, rng)
		w := tensor.NewMatrix(64, 64)
		tensor.RandnInto(w.Data, 1, rng)
		dst := tensor.NewMatrix(16, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			be.MatMulNT(dst, x, w)
		}
	}
}

func softmaxXentBench(be tensor.Backend) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(13))
		logits := tensor.NewVector(64)
		tensor.RandnInto(logits, 1, rng)
		probs, grad := tensor.NewVector(64), tensor.NewVector(64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			be.SoftmaxXent(probs, grad, logits, 7)
		}
	}
}

// trainLocalBench measures one client's local training epoch on the given
// backend — the unit of work the FL round parallelizes, and where the fast
// backend's batched path earns its speedup.
func trainLocalBench(be tensor.Backend) func(b *testing.B) {
	return func(b *testing.B) {
		fed, err := data.Generate("femnist", data.GenerateConfig{Clients: 1, Alpha: 0.1, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		m, err := nn.NewModel("resnet34", fed.Profile.Dim, fed.Profile.Classes, rng)
		if err != nil {
			b.Fatal(err)
		}
		m.SetBackend(be)
		cfg := nn.TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.1, GradClip: 5, Seed: 4}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Train(fed.Train[0], cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBackendMatVec(b *testing.B)      { benchPerBackend(b, matVecBench) }
func BenchmarkBackendMatMulNT(b *testing.B)    { benchPerBackend(b, matMulNTBench) }
func BenchmarkBackendSoftmaxXent(b *testing.B) { benchPerBackend(b, softmaxXentBench) }
func BenchmarkBackendTrainLocal(b *testing.B)  { benchPerBackend(b, trainLocalBench) }

func BenchmarkTensorMatVec(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.NewMatrix(64, 64)
	tensor.RandnInto(m.Data, 1, rng)
	x, dst := tensor.NewVector(64), tensor.NewVector(64)
	tensor.RandnInto(x, 1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatVec(dst, x)
	}
}

func BenchmarkTensorSoftmax(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	src, dst := tensor.NewVector(64), tensor.NewVector(64)
	tensor.RandnInto(src, 1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Softmax(dst, src)
	}
}

func BenchmarkNNLocalTraining(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	fed, err := data.Generate("femnist", data.GenerateConfig{Clients: 1, Alpha: 0.1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	m, err := nn.NewModel("resnet34", fed.Profile.Dim, fed.Profile.Classes, rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := nn.TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.1, GradClip: 5, Seed: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Train(fed.Train[0], cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptQuantize8(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	v := tensor.NewVector(8192)
	tensor.RandnInto(v, 1, rng)
	b.SetBytes(int64(len(v) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := v.Clone()
		opt.Quantize(w, 8, rng)
	}
}

func BenchmarkOptPrune50(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	v := tensor.NewVector(8192)
	tensor.RandnInto(v, 1, rng)
	b.SetBytes(int64(len(v) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := v.Clone()
		opt.PruneSmallest(w, 0.5)
	}
}

func BenchmarkOptCodecRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	v := tensor.NewVector(8192)
	tensor.RandnInto(v, 1, rng)
	opt.PruneSmallest(v, 0.5)
	b.SetBytes(int64(len(v) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := opt.CompressUpdate(v, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := opt.DecompressUpdate(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRLUpdate measures the per-round RLHF training overhead the
// paper bounds at "less than one millisecond" (Fig 8's companion claim).
func BenchmarkRLUpdate(b *testing.B) {
	a := rl.NewAgent(rl.Config{Seed: 8})
	s := rl.State{GB: 1, GE: 1, GK: 1, CPU: 2, Mem: 3, Net: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		act := a.SelectAction(s)
		if err := a.Update(i%300, s, act, i%2 == 0, 0.1, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRLSelectAction(b *testing.B) {
	a := rl.NewAgent(rl.Config{Seed: 9})
	states := make([]rl.State, 125)
	for i := range states {
		states[i] = rl.State{CPU: i % 5, Mem: (i / 5) % 5, Net: (i / 25) % 5}
		act := a.SelectAction(states[i])
		if err := a.Update(0, states[i], act, true, 0.1, states[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SelectAction(states[i%len(states)])
	}
}

// --- BENCH_*.json artifact ---

// benchOut, when set, makes the test binary skip the regular test run and
// instead execute the curated benchmark set below via testing.Benchmark,
// writing a machine-readable BENCH_*.json artifact:
//
//	go test -run NONE -bench-out BENCH_roundtrip.json .
//
// The committed BENCH_roundtrip.json at the repo root records the measured
// ref-vs-fast speedup; CI regenerates a fresh one per run and uploads it
// as a workflow artifact for trend tracking.
var benchOut = flag.String("bench-out", "", "write a JSON benchmark artifact to this path and skip the test run")

// benchRecord is one benchmark measurement in the artifact.
type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchArtifact is the BENCH_*.json schema. SpeedupVsRef holds, per
// workload, fast's throughput gain over ref (ref ns / fast ns; >1 means
// fast is faster).
type benchArtifact struct {
	Schema       string             `json:"schema"`
	GoVersion    string             `json:"go_version"`
	GOOS         string             `json:"goos"`
	GOARCH       string             `json:"goarch"`
	NumCPU       int                `json:"num_cpu"`
	Benchmarks   []benchRecord      `json:"benchmarks"`
	SpeedupVsRef map[string]float64 `json:"speedup_vs_ref"`
}

func writeBenchArtifact(path string) error {
	// The curated set: the end-to-end round benches on both backends plus
	// the per-backend kernel benches that explain any movement in them.
	par := runtime.NumCPU()
	if par < 4 {
		par = 4
	}
	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"round_sequential/ref", func(b *testing.B) { benchRounds(b, 1, "ref") }},
		{"round_sequential/fast", func(b *testing.B) { benchRounds(b, 1, "fast") }},
		{"round_parallel/ref", func(b *testing.B) { benchRounds(b, par, "ref") }},
		{"round_parallel/fast", func(b *testing.B) { benchRounds(b, par, "fast") }},
	}
	perBackend := []struct {
		name    string
		factory func(be tensor.Backend) func(b *testing.B)
	}{
		{"backend_train_local", trainLocalBench},
		{"backend_matvec", matVecBench},
		{"backend_matmul_nt", matMulNTBench},
		{"backend_softmax_xent", softmaxXentBench},
	}
	for _, pb := range perBackend {
		for _, name := range tensor.Backends() {
			be, err := tensor.Lookup(name)
			if err != nil {
				return err
			}
			cases = append(cases, struct {
				name string
				fn   func(b *testing.B)
			}{pb.name + "/" + name, pb.factory(be)})
		}
	}

	art := benchArtifact{
		Schema:       "floatfl-bench/v1",
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		SpeedupVsRef: map[string]float64{},
	}
	nsByName := map[string]float64{}
	for _, c := range cases {
		r := testing.Benchmark(c.fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		nsByName[c.name] = ns
		art.Benchmarks = append(art.Benchmarks, benchRecord{
			Name:        c.name,
			Iterations:  r.N,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "bench %-28s %14.0f ns/op %8d allocs/op (n=%d)\n",
			c.name, ns, r.AllocsPerOp(), r.N)
	}
	for name, fastNs := range nsByName {
		base, suffix := splitBackendSuffix(name)
		if suffix != "fast" || base == "" {
			continue
		}
		if refNs, ok := nsByName[base+"/ref"]; ok && fastNs > 0 {
			art.SpeedupVsRef[base] = refNs / fastNs
		}
	}
	blob, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// splitBackendSuffix splits "round_parallel/fast" into ("round_parallel",
// "fast"); names without a slash return ("", name).
func splitBackendSuffix(name string) (base, suffix string) {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[:i], name[i+1:]
		}
	}
	return "", name
}

// TestMain lets -bench-out divert the binary into artifact mode; without
// the flag the regular test run proceeds untouched.
func TestMain(m *testing.M) {
	flag.Parse()
	if *benchOut != "" {
		if err := writeBenchArtifact(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "bench-out:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func BenchmarkDeviceExecute(b *testing.B) {
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: 32, Scenario: trace.ScenarioDynamic, Seed: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	w := device.WorkSpec{RefFLOPsPerSample: 22e9, RefParams: 21_800_000, Samples: 60, Epochs: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := device.Execute(pop[i%len(pop)], i%64, w, opt.TechQuant8, 600); err != nil {
			b.Fatal(err)
		}
	}
}
