// Command floatbench regenerates the paper's evaluation figures as text
// tables. Each figure of FLOAT's evaluation (and each design ablation) is
// a named experiment; run them all or cherry-pick.
//
// Usage:
//
//	floatbench -fig all                 # every figure at quick scale
//	floatbench -fig 12 -scale paper     # the end-to-end grid at paper scale
//	floatbench -fig 2,3,6
//	floatbench -list
//
// With -compare it instead diffs two BENCH_*.json artifacts (written by
// `go test -run NONE -bench-out`) and exits 1 when the new artifact
// regresses past the per-metric tolerances — the CI perf ratchet:
//
//	floatbench -compare BENCH_roundtrip.json BENCH_ci.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"floatfl/internal/bench"
	"floatfl/internal/experiment"
	"floatfl/internal/obs"
)

// writeTelemetry writes one telemetry artifact to path ("-" = stdout).
func writeTelemetry(path string, write func(io.Writer) error) {
	if path == "-" {
		if err := write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "floatbench: telemetry:", err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floatbench: telemetry:", err)
		return
	}
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "floatbench: telemetry:", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "floatbench: telemetry:", err)
	}
}

func main() {
	var (
		figs    = flag.String("fig", "all", "comma-separated figure names, or 'all'")
		format  = flag.String("format", "text", "output format: text | json")
		scale   = flag.String("scale", "quick", "experiment scale: quick | paper")
		list    = flag.Bool("list", false, "list available figures and exit")
		clients = flag.Int("clients", 0, "override client count")
		rounds  = flag.Int("rounds", 0, "override round count")
		seed    = flag.Int64("seed", 0, "override RNG seed")
		par     = flag.Int("parallel", 0, "client-execution workers per round (0 = all CPU cores; results are identical for any value)")
		backend = flag.String("backend", "ref", "tensor backend for local training: ref (bit-stable determinism oracle) | fast (blocked/tiled kernels)")
		metOut  = flag.String("metrics-out", "", "write the end-of-run metrics snapshot (text exposition) to this file ('-' = stdout)")
		trOut   = flag.String("trace-out", "", "write the JSONL phase trace to this file ('-' = stdout; analyze with floatreport -trace)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file; samples carry phase labels (select | train | aggregate)")
		compare = flag.String("compare", "", "baseline BENCH_*.json; compares against the artifact named by the positional arg and exits 1 on regression")
		timeTol = flag.Float64("max-time-ratio", 0, "compare: max allowed new/old ns_per_op (default 3; wall time is noisy on CI)")
		alcTol  = flag.Float64("max-alloc-ratio", 0, "compare: max allowed new/old allocs_per_op (default 1.25; a zero-alloc baseline must stay zero)")
	)
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: floatbench -compare OLD.json NEW.json")
			os.Exit(2)
		}
		os.Exit(runCompare(*compare, flag.Arg(0),
			bench.Tolerance{TimeRatio: *timeTol, AllocRatio: *alcTol}))
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "floatbench: cpuprofile:", err)
			}
		}()
	}

	if *list {
		fmt.Println("available figures:")
		for _, name := range experiment.FigureNames() {
			fmt.Printf("  %s\n", name)
		}
		return
	}

	sc, err := pickScale(*scale)
	if err != nil {
		fatal(err)
	}
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *rounds > 0 {
		sc.Rounds = *rounds
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *par > 0 {
		sc.Parallelism = *par
	}
	sc.Backend = *backend
	if *metOut != "" {
		sc.Metrics = obs.NewRegistry()
	}
	if *trOut != "" {
		sc.Tracer = obs.NewTracer()
	}
	// Telemetry accumulates across every figure run this invocation.
	defer func() {
		if sc.Metrics != nil {
			writeTelemetry(*metOut, sc.Metrics.WriteText)
		}
		if sc.Tracer != nil {
			writeTelemetry(*trOut, sc.Tracer.WriteJSONL)
		}
	}()

	names := experiment.FigureNames()
	if *figs != "all" {
		names = strings.Split(*figs, ",")
	}
	jsonOut := map[string][]experiment.Table{}
	for _, name := range names {
		name = strings.TrimSpace(name)
		//lint:allow no-wall-clock benchmark harness reports real elapsed time per figure
		start := time.Now()
		tables, err := experiment.ByName(name, sc)
		if err != nil {
			fatal(err)
		}
		if *format == "json" {
			jsonOut[name] = tables
			continue
		}
		for i := range tables {
			tables[i].Fprint(os.Stdout)
		}
		//lint:allow no-wall-clock benchmark harness reports real elapsed time per figure
		fmt.Printf("[fig %s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fatal(err)
		}
	}
}

func pickScale(name string) (experiment.Scale, error) {
	switch name {
	case "quick":
		return experiment.Quick, nil
	case "paper":
		return experiment.Paper, nil
	default:
		return experiment.Scale{}, fmt.Errorf("unknown scale %q (quick | paper)", name)
	}
}

// runCompare implements the perf ratchet: exit 0 when every baseline
// metric stays within tolerance, 1 on any regression, 2 on read errors.
func runCompare(oldPath, newPath string, tol bench.Tolerance) int {
	baseline, err := bench.LoadFile(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floatbench:", err)
		return 2
	}
	fresh, err := bench.LoadFile(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floatbench:", err)
		return 2
	}
	regs := bench.Compare(baseline, fresh, tol)
	bench.FprintComparison(os.Stdout, baseline, fresh, regs)
	if len(regs) > 0 {
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floatbench:", err)
	os.Exit(1)
}
