// Command floatd runs the distributed FL aggregator: an HTTP server that
// registers clients, hands out the global model with a FLOAT-assigned
// acceleration technique per client, and aggregates codec-compressed
// updates. Pair it with the client runtime in internal/dist (see
// examples/distributed for a complete localhost deployment).
//
// Usage:
//
//	floatd -addr :8080 -dataset femnist -controller float -k 8 -lease 60 -round-sec 120
//
// Fault tolerance: every handed-out task carries a lease (-lease); a
// client that goes silent past it has its slot reclaimed and the dropout
// reported to the controller. A round stuck below -k updates for
// -round-sec seconds aggregates whatever arrived (at least -min-updates).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"

	"floatfl/internal/core"
	"floatfl/internal/data"
	"floatfl/internal/dist"
	"floatfl/internal/fl"
	"floatfl/internal/rl"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dataset    = flag.String("dataset", "femnist", "dataset profile (shapes the model and holdout)")
		arch       = flag.String("arch", "resnet18", "model architecture")
		controller = flag.String("controller", "float", "float | heuristic | none")
		k          = flag.Int("k", 8, "updates per aggregation")
		epochs     = flag.Int("epochs", 2, "local epochs")
		batch      = flag.Int("batch", 16, "local batch size")
		lr         = flag.Float64("lr", 0.1, "local learning rate")
		seed       = flag.Int64("seed", 42, "RNG seed")
		deadline   = flag.Float64("deadline", 0, "round deadline seconds reported to the controller (0 = default)")
		lease      = flag.Float64("lease", 0, "task lease seconds before a silent client's slot is reclaimed (0 = 2x deadline)")
		roundSec   = flag.Float64("round-sec", 0, "round timer seconds before a partial buffer is aggregated (0 = 2x lease)")
		minUpdates = flag.Int("min-updates", 0, "minimum buffered updates the round timer will aggregate (0 = 1)")
		pprofOn    = flag.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/")
		resume     = flag.String("resume", "", "restore aggregator state from a snapshot file (fetch one from GET /v1/snapshot, ideally after POST /v1/drain)")
	)
	flag.Parse()

	profile, err := data.LookupProfile(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	// A small server-side holdout tracks convergence (synthetic here; a
	// real deployment would plug in its own evaluation stream).
	fed, err := data.Generate(*dataset, data.GenerateConfig{Clients: 1, Alpha: 100, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	var ctrl fl.Controller = fl.NoOpController{}
	switch *controller {
	case "float":
		ctrl = core.New(core.Config{
			Agent:           rl.Config{Seed: *seed, TotalRounds: 300},
			BatchSize:       *batch,
			Epochs:          *epochs,
			ClientsPerRound: *k,
		})
	case "heuristic":
		ctrl = core.NewHeuristic(*seed)
	case "none":
	default:
		log.Fatalf("floatd: unknown controller %q", *controller)
	}

	srv, err := dist.NewServer(dist.ServerConfig{
		Spec: dist.TrainSpec{
			Arch: *arch, InDim: profile.Dim, Classes: profile.Classes,
			Epochs: *epochs, BatchSize: *batch, LR: *lr,
		},
		AggregateK:      *k,
		Controller:      ctrl,
		Holdout:         fed.GlobalTest,
		DeadlineSeconds: *deadline,
		LeaseSeconds:    *lease,
		RoundSeconds:    *roundSec,
		MinUpdates:      *minUpdates,
		Seed:            *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *resume != "" {
		blob, err := os.ReadFile(*resume)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.RestoreSnapshot(blob); err != nil {
			log.Fatalf("floatd: resume %s: %v", *resume, err)
		}
		fmt.Printf("floatd: resumed from %s at round %d\n", *resume, srv.Round())
	}
	// The aggregator's mux already serves /v1/metrics; pprof is opt-in so
	// a default deployment exposes no profiling surface.
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	fmt.Printf("floatd: serving %s/%s on %s (controller=%s, k=%d, pprof=%v)\n",
		*dataset, *arch, *addr, ctrl.Name(), *k, *pprofOn)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
