package main

import (
	"testing"

	"floatfl/internal/lint"
)

func TestSelectRules(t *testing.T) {
	all := lint.RuleNames()

	cases := []struct {
		name    string
		spec    string
		want    []string // nil means "all rules" (enabled == nil)
		wantErr bool
	}{
		{name: "empty means all", spec: "", want: nil},
		{name: "all keyword", spec: "all", want: nil},
		{name: "single select", spec: "no-wall-clock", want: []string{"no-wall-clock"}},
		{name: "multi select", spec: "no-wall-clock, map-order-hazard",
			want: []string{"no-wall-clock", "map-order-hazard"}},
		{name: "skip one", spec: "-naked-goroutine",
			want: remove(all, "naked-goroutine")},
		{name: "skip two", spec: "-naked-goroutine,-no-global-rand",
			want: remove(remove(all, "naked-goroutine"), "no-global-rand")},
		{name: "unknown rule", spec: "no-such-rule", wantErr: true},
		{name: "unknown skip", spec: "-no-such-rule", wantErr: true},
		{name: "mixing select and skip", spec: "no-wall-clock,-naked-goroutine", wantErr: true},
		{name: "skip everything", spec: "-" + join(all, ",-"), wantErr: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			enabled, err := selectRules(tc.spec)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("selectRules(%q) = %v, want error", tc.spec, enabled)
				}
				return
			}
			if err != nil {
				t.Fatalf("selectRules(%q): %v", tc.spec, err)
			}
			if tc.want == nil {
				if enabled != nil {
					t.Fatalf("selectRules(%q) = %v, want nil (all rules)", tc.spec, enabled)
				}
				return
			}
			if len(enabled) != len(tc.want) {
				t.Fatalf("selectRules(%q) enabled %d rules %v, want %d %v",
					tc.spec, len(enabled), enabled, len(tc.want), tc.want)
			}
			for _, name := range tc.want {
				if !enabled[name] {
					t.Errorf("selectRules(%q) did not enable %s", tc.spec, name)
				}
			}
		})
	}
}

func remove(names []string, drop string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n != drop {
			out = append(out, n)
		}
	}
	return out
}

func join(names []string, sep string) string {
	s := ""
	for i, n := range names {
		if i > 0 {
			s += sep
		}
		s += n
	}
	return s
}
