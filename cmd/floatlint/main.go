// Command floatlint runs the repository's invariant analyzers — the
// determinism, aliasing, clock-injection, and cross-package dataflow
// rules in internal/lint — over the module and exits non-zero on
// findings. It is the CI gate that keeps wall-clock reads, global
// randomness, unsorted map iteration, parameter-view aliasing bugs,
// unjoinable goroutines, escaped RNG streams, under-checkpointed state,
// and fan-out phase violations out of the aggregation paths.
//
// Usage:
//
//	floatlint [-json] [-sarif file] [-baseline file] [-write-baseline]
//	          [-unused-directives] [-rules list] [-list] [packages...]
//
// With no package patterns it sweeps ./... from the enclosing module
// root. -rules selects analyzers: a comma-separated list of names runs
// only those; prefixing a name with '-' skips it and runs the rest
// (e.g. -rules -naked-goroutine). Findings suppressed with an inline
// `//lint:allow <rule> <reason>` directive are not reported;
// -unused-directives additionally reports directives that suppress
// nothing. -baseline filters findings through a committed acceptance
// ledger (novel findings still fail; stale entries are reported on
// stderr), and -write-baseline regenerates that file from the current
// findings instead of failing. -sarif writes a SARIF 2.1.0 document
// ("-" for stdout) with the post-baseline findings for code-scanning
// upload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"floatfl/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	sarifOut := flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
	baselinePath := flag.String("baseline", "", "filter findings through this committed baseline file")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite -baseline from current findings and exit 0")
	unusedDirectives := flag.Bool("unused-directives", false, "report //lint:allow directives that suppress nothing")
	rules := flag.String("rules", "", "comma-separated rules to run, or -name entries to skip (default: all)")
	list := flag.Bool("list", false, "list registered rules and exit")
	flag.Parse()

	if *list {
		for _, r := range lint.Rules {
			fmt.Printf("%-20s %s\n", r.Name, r.Doc)
		}
		return
	}
	if *writeBaseline && *baselinePath == "" {
		fatal(fmt.Errorf("-write-baseline requires -baseline"))
	}

	enabled, err := selectRules(*rules)
	if err != nil {
		fatal(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(root)
	pkgs, err := loader.Packages(flag.Args()...)
	if err != nil {
		fatal(err)
	}

	findings := lint.RunOpts(pkgs, lint.Options{
		Enabled:          enabled,
		UnusedDirectives: *unusedDirectives,
	})

	if *writeBaseline {
		data, err := lint.NewBaseline(findings, root).Encode()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "floatlint: wrote %s (%d finding(s) accepted)\n", *baselinePath, len(findings))
		return
	}

	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fatal(err)
		}
		base, err := lint.ParseBaseline(data)
		if err != nil {
			fatal(err)
		}
		novel, stale := base.Filter(findings, root)
		findings = novel
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "floatlint: baseline entry no longer fires (%d stale): [%s] %s: %s\n",
				e.Count, e.Rule, e.File, e.Message)
		}
	}

	if *sarifOut != "" {
		data, err := lint.SARIF(findings, root)
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *sarifOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*sarifOut, data, 0o644); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else if *sarifOut != "-" {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut && *sarifOut != "-" {
			fmt.Fprintf(os.Stderr, "floatlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floatlint:", err)
	os.Exit(2)
}

// selectRules parses the -rules flag into an enabled set (nil = all).
func selectRules(spec string) (map[string]bool, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, name := range lint.RuleNames() {
		known[name] = true
	}
	enabled := map[string]bool{}
	var skips []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, isSkip := strings.CutPrefix(part, "-"); isSkip {
			skips = append(skips, name)
			continue
		}
		if !known[part] {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", part, strings.Join(lint.RuleNames(), ", "))
		}
		enabled[part] = true
	}
	if len(skips) > 0 {
		if len(enabled) > 0 {
			return nil, fmt.Errorf("-rules cannot mix selections and -skips")
		}
		for _, name := range lint.RuleNames() {
			enabled[name] = true
		}
		for _, name := range skips {
			if !known[name] {
				return nil, fmt.Errorf("unknown rule %q (known: %s)", name, strings.Join(lint.RuleNames(), ", "))
			}
			delete(enabled, name)
		}
	}
	if len(enabled) == 0 {
		return nil, fmt.Errorf("-rules selected nothing")
	}
	return enabled, nil
}
