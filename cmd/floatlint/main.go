// Command floatlint runs the repository's invariant analyzers — the
// determinism, aliasing, and clock-injection rules in internal/lint —
// over the module and exits non-zero on findings. It is the CI gate that
// keeps wall-clock reads, global randomness, unsorted map iteration,
// parameter-view aliasing bugs, and unjoinable goroutines out of the
// aggregation paths.
//
// Usage:
//
//	floatlint [-json] [-rules list] [-list] [packages...]
//
// With no package patterns it sweeps ./... from the enclosing module
// root. -rules selects analyzers: a comma-separated list of names runs
// only those; prefixing a name with '-' skips it and runs the rest
// (e.g. -rules -naked-goroutine). Findings suppressed with an inline
// `//lint:allow <rule> <reason>` directive are not reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"floatfl/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	rules := flag.String("rules", "", "comma-separated rules to run, or -name entries to skip (default: all)")
	list := flag.Bool("list", false, "list registered rules and exit")
	flag.Parse()

	if *list {
		for _, r := range lint.Rules {
			fmt.Printf("%-20s %s\n", r.Name, r.Doc)
		}
		return
	}

	enabled, err := selectRules(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floatlint:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "floatlint:", err)
		os.Exit(2)
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floatlint:", err)
		os.Exit(2)
	}
	loader := lint.NewLoader(root)
	pkgs, err := loader.Packages(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floatlint:", err)
		os.Exit(2)
	}

	findings := lint.Run(pkgs, enabled)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "floatlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "floatlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// selectRules parses the -rules flag into an enabled set (nil = all).
func selectRules(spec string) (map[string]bool, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, name := range lint.RuleNames() {
		known[name] = true
	}
	enabled := map[string]bool{}
	var skips []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, isSkip := strings.CutPrefix(part, "-"); isSkip {
			skips = append(skips, name)
			continue
		}
		if !known[part] {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", part, strings.Join(lint.RuleNames(), ", "))
		}
		enabled[part] = true
	}
	if len(skips) > 0 {
		if len(enabled) > 0 {
			return nil, fmt.Errorf("-rules cannot mix selections and -skips")
		}
		for _, name := range lint.RuleNames() {
			enabled[name] = true
		}
		for _, name := range skips {
			if !known[name] {
				return nil, fmt.Errorf("unknown rule %q (known: %s)", name, strings.Join(lint.RuleNames(), ", "))
			}
			delete(enabled, name)
		}
	}
	if len(enabled) == 0 {
		return nil, fmt.Errorf("-rules selected nothing")
	}
	return enabled, nil
}
