// Command floatreport summarizes a JSONL training log produced by the FL
// engines (fl.Config.Logger / floatsim -log): participation and dropout
// breakdowns, per-technique outcomes, per-round completion trend, and
// resource totals — the analog of analyzing the paper artifact's
// `<dataset>_logging` output.
//
// With -trace it instead summarizes a JSONL phase trace (floatsim
// -trace-out): phase time breakdown, slowest clients, and the
// drop/lease/timer event timeline.
//
// Usage:
//
//	floatsim -dataset femnist -controller float -log run.jsonl
//	floatreport -in run.jsonl
//	floatreport -in run.jsonl -trend
//	floatsim -dataset femnist -trace-out run.trace.jsonl
//	floatreport -trace run.trace.jsonl
//
// The diff subcommand compares two timeline exports (floatsim
// -timeline-out) and reports the first divergent round per series. It
// exits 0 when the runs are identical and 1 on any divergence, so it
// doubles as a determinism check in CI:
//
//	floatreport diff run-a.timeline run-b.timeline
package main

import (
	"flag"
	"fmt"
	"os"

	"floatfl/internal/report"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:]))
	}
	var (
		in    = flag.String("in", "", "path to a JSONL training log")
		trace = flag.String("trace", "", "path to a JSONL phase trace (floatsim -trace-out); prints the trace summary instead")
		trend = flag.Bool("trend", false, "also print the per-round completion trend")
	)
	flag.Parse()
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		ts, err := report.ParseTrace(f)
		if err != nil {
			fatal(err)
		}
		ts.Fprint(os.Stdout)
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "floatreport: -in or -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	sum, err := report.Parse(f)
	if err != nil {
		fatal(err)
	}
	sum.Fprint(os.Stdout)

	if *trend {
		fmt.Println("\nper-round completion fraction:")
		for i, frac := range sum.ParticipationTrend() {
			bar := ""
			for j := 0; j < int(frac*40); j++ {
				bar += "#"
			}
			fmt.Printf("  round %3d  %5.1f%%  %s\n", sum.Rounds[i].Round, frac*100, bar)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floatreport:", err)
	os.Exit(1)
}

// runDiff implements `floatreport diff A B`: exit 0 when the two
// timeline exports are identical, 1 on divergence, 2 on usage or read
// errors.
func runDiff(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: floatreport diff <run-a.timeline> <run-b.timeline>")
		return 2
	}
	runs := make([]*report.TimelineRun, 2)
	for i, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "floatreport:", err)
			return 2
		}
		runs[i], err = report.LoadTimelineRun(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "floatreport: %s: %v\n", path, err)
			return 2
		}
	}
	d := report.DiffTimelines(runs[0], runs[1])
	d.Fprint(os.Stdout, args[0], args[1])
	if d.Identical() {
		return 0
	}
	return 1
}
