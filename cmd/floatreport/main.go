// Command floatreport summarizes a JSONL training log produced by the FL
// engines (fl.Config.Logger / floatsim -log): participation and dropout
// breakdowns, per-technique outcomes, per-round completion trend, and
// resource totals — the analog of analyzing the paper artifact's
// `<dataset>_logging` output.
//
// With -trace it instead summarizes a JSONL phase trace (floatsim
// -trace-out): phase time breakdown, slowest clients, and the
// drop/lease/timer event timeline.
//
// Usage:
//
//	floatsim -dataset femnist -controller float -log run.jsonl
//	floatreport -in run.jsonl
//	floatreport -in run.jsonl -trend
//	floatsim -dataset femnist -trace-out run.trace.jsonl
//	floatreport -trace run.trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"floatfl/internal/report"
)

func main() {
	var (
		in    = flag.String("in", "", "path to a JSONL training log")
		trace = flag.String("trace", "", "path to a JSONL phase trace (floatsim -trace-out); prints the trace summary instead")
		trend = flag.Bool("trend", false, "also print the per-round completion trend")
	)
	flag.Parse()
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		ts, err := report.ParseTrace(f)
		if err != nil {
			fatal(err)
		}
		ts.Fprint(os.Stdout)
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "floatreport: -in or -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	sum, err := report.Parse(f)
	if err != nil {
		fatal(err)
	}
	sum.Fprint(os.Stdout)

	if *trend {
		fmt.Println("\nper-round completion fraction:")
		for i, frac := range sum.ParticipationTrend() {
			bar := ""
			for j := 0; j < int(frac*40); j++ {
				bar += "#"
			}
			fmt.Printf("  round %3d  %5.1f%%  %s\n", sum.Rounds[i].Round, frac*100, bar)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floatreport:", err)
	os.Exit(1)
}
