// Command floatqtable inspects a saved RLHF agent Q-table — the analog of
// the paper artifact's load_Q.py. It prints the visit-weighted per-action
// objectives (the Fig 10 panels) and, with -states, the per-state greedy
// policy.
//
// Usage:
//
//	floatsim -dataset femnist -controller float -save-agent agent.json
//	floatqtable -in agent.json
//	floatqtable -in agent.json -states
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"floatfl/internal/rl"
)

func main() {
	var (
		in     = flag.String("in", "", "path to a saved agent Q-table (JSON)")
		states = flag.Bool("states", false, "also dump the per-state greedy policy")
		csvOut = flag.Bool("csv", false, "emit the per-state policy as CSV (for plotting Fig 10 heat maps)")
		bins   = flag.Int("bins", rl.DefaultBins, "bin resolution the agent was trained with")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "floatqtable: -in is required")
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	agent := rl.NewAgent(rl.Config{Bins: *bins})
	if err := agent.Load(f); err != nil {
		fatal(err)
	}

	fmt.Printf("agent: %d states, %.1f KB\n\n", agent.StatesVisited(), float64(agent.MemoryBytes())/1024)
	fmt.Println("per-action learned objectives (visit-weighted across states):")
	fmt.Printf("  %-10s %12s %12s %8s\n", "action", "P(success)", "acc-improve", "visits")
	summary := agent.ActionSummary()
	sort.Slice(summary, func(i, j int) bool { return summary[i].Visits > summary[j].Visits })
	for _, st := range summary {
		fmt.Printf("  %-10s %12.3f %12.3f %8d\n", st.Technique, st.Part, st.Acc, st.Visits)
	}

	if *csvOut {
		w := csv.NewWriter(os.Stdout)
		if err := w.Write([]string{"gb", "ge", "gk", "cpu", "mem", "net", "hf", "action", "q", "visits"}); err != nil {
			fatal(err)
		}
		for _, ps := range agent.PolicyDump() {
			st := ps.State
			if err := w.Write([]string{
				strconv.Itoa(st.GB), strconv.Itoa(st.GE), strconv.Itoa(st.GK),
				strconv.Itoa(st.CPU), strconv.Itoa(st.Mem), strconv.Itoa(st.Net), strconv.Itoa(st.HF),
				ps.Action.String(),
				strconv.FormatFloat(ps.Q, 'f', 4, 64),
				strconv.Itoa(ps.Visits),
			}); err != nil {
				fatal(err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fatal(err)
		}
		return
	}

	if *states {
		fmt.Println("\nper-state greedy policy (CPU/Mem/Net/HF bins -> action):")
		for _, ps := range agent.PolicyDump() {
			fmt.Printf("  %-24s -> %-10s (Q=%.3f, visits=%d)\n", ps.State, ps.Action, ps.Q, ps.Visits)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floatqtable:", err)
	os.Exit(1)
}
