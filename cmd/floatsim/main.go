// Command floatsim runs a single federated-learning experiment — a
// dataset, a client-selection algorithm, an optional FLOAT / heuristic /
// static controller, and an interference scenario — and prints a per-run
// report: accuracy statistics, dropout causes, resource inefficiency, and
// (for FLOAT) the learned per-action Q summary. With -save-agent the
// trained RLHF agent is written to disk for later fine-tuning (the paper's
// pre-train-and-transfer workflow).
//
// Examples:
//
//	floatsim -dataset femnist -algo fedavg
//	floatsim -dataset femnist -algo oort -controller float
//	floatsim -dataset cifar10 -algo fedbuff -controller float -scale paper
//	floatsim -dataset femnist -algo fedavg -controller static:prune50
//	floatsim -dataset femnist -controller float -save-agent agent.json
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"

	"floatfl/internal/checkpoint"
	"floatfl/internal/core"
	"floatfl/internal/device"
	"floatfl/internal/experiment"
	"floatfl/internal/fl"
	"floatfl/internal/obs"
	"floatfl/internal/rl"
	"floatfl/internal/trace"
)

// writeTelemetry writes one telemetry artifact to path ("-" = stdout).
func writeTelemetry(path string, write func(io.Writer) error) {
	if path == "-" {
		if err := write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "floatsim: telemetry:", err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floatsim: telemetry:", err)
		return
	}
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "floatsim: telemetry:", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "floatsim: telemetry:", err)
	}
}

func main() {
	var (
		dataset    = flag.String("dataset", "femnist", "dataset profile: femnist | cifar10 | openimage | speech | emnist")
		algo       = flag.String("algo", "fedavg", "selection algorithm: fedavg | oort | refl | fedbuff")
		controller = flag.String("controller", "none", "none | float | float-rl | heuristic | static:<technique>")
		scenario   = flag.String("scenario", "dynamic", "interference: none | static | dynamic")
		alpha      = flag.Float64("alpha", 0.1, "Dirichlet concentration (non-IID strength)")
		scale      = flag.String("scale", "quick", "experiment scale: quick | paper")
		clients    = flag.Int("clients", 0, "override client count")
		rounds     = flag.Int("rounds", 0, "override round count")
		perRound   = flag.Int("per-round", 0, "override clients per round")
		deadlinePc = flag.Float64("deadline-pct", 0, "deadline percentile of population response time")
		seed       = flag.Int64("seed", 0, "override RNG seed")
		parallel   = flag.Int("parallel", 0, "client-execution workers per round (0 = all CPU cores; results are identical for any value)")
		backend    = flag.String("backend", "ref", "tensor backend for local training: ref (bit-stable determinism oracle) | fast (blocked/tiled kernels)")
		lazy       = flag.Bool("lazy", false, "derive client state lazily from (seed, clientID) instead of materializing the population; auto-enabled at -clients >= 50000")
		cacheSize  = flag.Int("cache-clients", 4096, "lazy mode: bound on cached (unpinned) client states; round memory is O(cache + per-round)")
		evalCap    = flag.Int("eval-clients", 0, "cap the final per-client evaluation sweep (0 = evaluate everyone)")
		saveAgent  = flag.String("save-agent", "", "write the FLOAT agent's Q-table to this file")
		logPath    = flag.String("log", "", "write a JSONL training log to this file (analyze with floatreport)")
		metricsOut = flag.String("metrics-out", "", "write the end-of-run metrics snapshot (text exposition) to this file ('-' = stdout)")
		traceOut   = flag.String("trace-out", "", "write the JSONL phase trace to this file ('-' = stdout; analyze with floatreport -trace)")
		tlOut      = flag.String("timeline-out", "", "write the per-round run timeline (delta-encoded JSONL) to this file ('-' = stdout; compare runs with floatreport diff)")
		httpAddr   = flag.String("http", "", "serve GET /v1/metrics and /v1/timeline on this address (e.g. :8080) while the run executes")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file; samples carry phase labels (select | train | aggregate)")
		seeds      = flag.Int("seeds", 0, "run a seed sweep of this size and report mean±std instead of a single run")
		ckptPath   = flag.String("checkpoint", "", "write crash-safe snapshots to this file (periodically with -checkpoint-every, and on SIGINT/SIGTERM)")
		ckptEvery  = flag.Int("checkpoint-every", 0, "snapshot every N rounds (sync) or aggregations (async); requires -checkpoint")
		resumePath = flag.String("resume", "", "resume a run from a snapshot file written by -checkpoint; rounds already completed are skipped and the output is bit-identical to an uninterrupted run")
	)
	flag.Parse()

	sc := experiment.Quick
	switch *scale {
	case "quick":
	case "paper":
		sc = experiment.Paper
	default:
		fatal(fmt.Errorf("unknown scale %q (quick | paper)", *scale))
	}
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *rounds > 0 {
		sc.Rounds = *rounds
	}
	if *perRound > 0 {
		sc.PerRound = *perRound
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *parallel > 0 {
		sc.Parallelism = *parallel
	}
	sc.Backend = *backend
	// Huge populations are infeasible to materialize; switch to lazy
	// derivation automatically unless the user explicitly said -lazy=false.
	lazySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "lazy" {
			lazySet = true
		}
	})
	if !lazySet && sc.Clients >= 50_000 {
		*lazy = true
		fmt.Fprintf(os.Stderr, "floatsim: %d clients — enabling lazy population (override with -lazy=false)\n", sc.Clients)
	}
	sc.Lazy = *lazy
	sc.CacheClients = *cacheSize
	sc.EvalClients = *evalCap
	if *metricsOut != "" {
		sc.Metrics = obs.NewRegistry()
	}
	if *traceOut != "" {
		sc.Tracer = obs.NewTracer()
	}
	if *tlOut != "" || *httpAddr != "" {
		// The timeline samples the registry, so one is created on demand.
		if sc.Metrics == nil {
			sc.Metrics = obs.NewRegistry()
		}
		sc.Timeline = obs.NewTimeline(sc.Metrics, obs.DefaultTimelineCapacity)
	}
	// Telemetry outputs are flushed at exit even on the sweep path (the
	// registry then accumulates across all sweep runs).
	defer func() {
		if *metricsOut != "" {
			writeTelemetry(*metricsOut, sc.Metrics.WriteText)
		}
		if sc.Tracer != nil {
			writeTelemetry(*traceOut, sc.Tracer.WriteJSONL)
		}
		if *tlOut != "" {
			writeTelemetry(*tlOut, sc.Timeline.WriteJSONL)
		}
	}()

	if *httpAddr != "" {
		// Live inspection plane: the handlers read the same registry and
		// timeline ring the engine writes, so a browser or curl can watch
		// the run converge without perturbing it.
		mux := http.NewServeMux()
		mux.Handle("/v1/metrics", obs.MetricsHandler(sc.Metrics))
		mux.Handle("/v1/timeline", obs.TimelineHandler(sc.Timeline))
		//lint:allow naked-goroutine inspection server lives for the process lifetime; the listener dies at exit
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "floatsim: http:", err)
			}
		}()
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "floatsim: cpuprofile:", err)
			}
		}()
	}

	sn, err := trace.ParseScenario(*scenario)
	if err != nil {
		fatal(err)
	}
	spec := experiment.RunSpec{
		Dataset:            *dataset,
		Algo:               *algo,
		Alpha:              *alpha,
		Scenario:           sn,
		DeadlinePercentile: *deadlinePc,
	}
	switch {
	case *controller == "none":
	case *controller == "float":
		spec.Float = true
	case *controller == "float-rl":
		spec.Float = true
		cfg := rl.Config{DisableHF: true}
		spec.FloatCfg = &cfg
	case *controller == "heuristic":
		spec.Heur = true
	case strings.HasPrefix(*controller, "static:"):
		spec.Static = strings.TrimPrefix(*controller, "static:")
	default:
		fatal(fmt.Errorf("unknown controller %q", *controller))
	}

	if *ckptEvery > 0 && *ckptPath == "" {
		fatal(fmt.Errorf("-checkpoint-every requires -checkpoint"))
	}
	if *ckptPath != "" || *resumePath != "" {
		if *seeds > 0 {
			fatal(fmt.Errorf("-checkpoint/-resume cannot be combined with -seeds"))
		}
		ck := &fl.CheckpointConfig{Every: *ckptEvery}
		if *ckptPath != "" {
			path := *ckptPath
			ck.Sink = func(b []byte) error { return checkpoint.WriteRaw(path, b) }
			// A SIGINT/SIGTERM requests a graceful stop: the engine finishes
			// the in-flight round, snapshots at its quiescent boundary, and
			// returns a partial Result instead of dying mid-mutation.
			sigc := make(chan os.Signal, 1)
			signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
			ck.Stop = func() bool {
				select {
				case <-sigc:
					fmt.Fprintln(os.Stderr, "floatsim: signal — snapshotting and stopping at the next quiescent boundary")
					return true
				default:
					return false
				}
			}
		}
		if *resumePath != "" {
			blob, err := os.ReadFile(*resumePath)
			if err != nil {
				fatal(err)
			}
			ck.Resume = blob
		}
		sc.Checkpoint = ck
	}

	if *seeds > 0 {
		sweep, err := experiment.Sweep(sc, spec, *seeds)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("seed sweep (n=%d): dataset=%s algo=%s controller=%s\n\n",
			*seeds, *dataset, *algo, *controller)
		fmt.Printf("  avg accuracy      %s\n", sweep.AvgAccuracy)
		fmt.Printf("  dropped rounds    %s\n", sweep.Dropped)
		fmt.Printf("  wasted compute-h  %s\n", sweep.WastedCompute)
		fmt.Printf("  wasted comm-h     %s\n", sweep.WastedComm)
		return
	}

	if *logPath != "" {
		logFile, err := os.Create(*logPath)
		if err != nil {
			fatal(err)
		}
		defer logFile.Close()
		jl := fl.NewJSONLLogger(logFile)
		spec.Logger = jl
		defer func() {
			if err := jl.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "floatsim: log writer:", err)
			}
		}()
	}

	res, ctrl, err := experiment.RunWithController(sc, spec)
	if err != nil {
		fatal(err)
	}

	printReport(res)

	if sc.Checkpoint != nil && res.CompletedRounds < sc.Rounds {
		fmt.Printf("\nstopped after %d/%d rounds — continue with -resume %s\n",
			res.CompletedRounds, sc.Rounds, *ckptPath)
	}

	if f, ok := ctrl.(*core.Float); ok {
		printAgentSummary(f)
		if *saveAgent != "" && f.Agent() != nil {
			out, err := os.Create(*saveAgent)
			if err != nil {
				fatal(err)
			}
			if err := f.SaveAgent(out); err != nil {
				fatal(err)
			}
			if err := out.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("\nagent Q-table written to %s (%d states)\n", *saveAgent, f.Agent().StatesVisited())
		}
	}
}

func printReport(res *fl.Result) {
	fmt.Printf("run: algo=%s controller=%s deadline=%.1fs\n\n",
		res.Algorithm, res.Controller, res.DeadlineSec)

	fmt.Println("accuracy (final global model on clients' local test splits):")
	s := res.FinalAccStats
	fmt.Printf("  top-10%%: %.1f%%   average: %.1f%%   bottom-10%%: %.1f%%   global holdout: %.1f%%\n\n",
		s.Top10*100, s.Average*100, s.Bottom10*100, res.FinalGlobalAcc*100)

	fmt.Println("convergence (global holdout accuracy per eval point):")
	for i, acc := range res.GlobalAccHistory {
		fmt.Printf("  round %4d: %.1f%%\n", res.EvalRounds[i], acc*100)
	}
	fmt.Println()

	l := res.Ledger
	fmt.Printf("participation: %d client-rounds, %d completed, %d dropped (%.1f%% drop rate)\n",
		l.TotalRounds, l.TotalRounds-l.TotalDrops, l.TotalDrops, l.DropRate()*100)
	for _, reason := range []device.DropReason{
		device.DropDeadline, device.DropUnavailable, device.DropMemory, device.DropEnergy,
	} {
		if n := l.DropsByReason[reason]; n > 0 {
			fmt.Printf("  dropouts by %s: %d\n", reason, n)
		}
	}
	fmt.Printf("selection bias: %.1f%% never selected, %.1f%% never completed, gini %.3f, jain %.3f\n\n",
		l.NeverSelectedFraction()*100, l.NeverCompletedFraction()*100,
		l.SelectionGini(), l.SelectionJainIndex())

	fmt.Println("resource inefficiency (wasted by dropped clients):")
	fmt.Printf("  compute %.2f h   communication %.2f h   memory %.3f TB\n",
		l.Wasted.ComputeHours, l.Wasted.CommHours, l.Wasted.MemoryTB)
	fmt.Printf("useful resource usage: compute %.2f h   communication %.2f h\n",
		l.Useful.ComputeHours, l.Useful.CommHours)
	fmt.Printf("wall clock: %.2f h\n", res.WallClockSeconds/3600)
}

func printAgentSummary(f *core.Float) {
	sum := f.Summary()
	fmt.Printf("\nFLOAT: %d agent(s), %d states visited, %d updates, %.1f KB Q-table(s)\n",
		sum.Agents, sum.States, sum.Updates, float64(sum.MemoryBytes)/1024)
	fmt.Println("per-action learned objectives (visit-weighted):")
	fmt.Printf("  %-10s %12s %12s %8s\n", "action", "P(success)", "acc-improve", "visits")
	for _, st := range sum.Actions {
		fmt.Printf("  %-10s %12.3f %12.3f %8d\n", st.Technique, st.Part, st.Acc, st.Visits)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floatsim:", err)
	os.Exit(1)
}
