// Command floattrace generates and exports the synthetic client resource
// traces the simulator runs on — the stand-ins for the paper artifact's
// device_info directory (4G/5G bandwidth measurements, the AI-Benchmark
// compute population, and the smartphone availability trace). Output is
// CSV on stdout, one generator per -kind.
//
// Usage:
//
//	floattrace -kind bandwidth -net 5g -steps 500 -clients 3
//	floattrace -kind compute -clients 1000
//	floattrace -kind availability -steps 300 -clients 5
//	floattrace -kind interference -scenario dynamic -steps 200 -clients 2
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"floatfl/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "bandwidth", "bandwidth | compute | availability | interference")
		netKind  = flag.String("net", "4g", "bandwidth technology: 4g | 5g")
		scenario = flag.String("scenario", "dynamic", "interference scenario: none | static | dynamic")
		steps    = flag.Int("steps", 300, "time steps per client")
		clients  = flag.Int("clients", 5, "number of clients / devices")
		seed     = flag.Int64("seed", 42, "RNG seed")
	)
	flag.Parse()

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	var err error
	switch *kind {
	case "bandwidth":
		err = exportBandwidth(w, *netKind, *clients, *steps, *seed)
	case "compute":
		err = exportCompute(w, *clients, *seed)
	case "availability":
		err = exportAvailability(w, *clients, *steps, *seed)
	case "interference":
		err = exportInterference(w, *scenario, *clients, *steps, *seed)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "floattrace:", err)
		os.Exit(1)
	}
}

func exportBandwidth(w *csv.Writer, netKind string, clients, steps int, seed int64) error {
	var kind trace.NetKind
	switch netKind {
	case "4g":
		kind = trace.Net4G
	case "5g":
		kind = trace.Net5G
	default:
		return fmt.Errorf("unknown network %q", netKind)
	}
	if err := w.Write([]string{"client", "step", "mbps"}); err != nil {
		return err
	}
	for c := 0; c < clients; c++ {
		tr := trace.NewBandwidthTrace(kind, seed+int64(c))
		for t := 0; t < steps; t++ {
			if err := w.Write([]string{
				strconv.Itoa(c), strconv.Itoa(t),
				strconv.FormatFloat(tr.At(t), 'f', 3, 64),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func exportCompute(w *csv.Writer, clients int, seed int64) error {
	if err := w.Write([]string{"device", "class", "gflops", "memory_mb", "energy_capacity_h"}); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < clients; c++ {
		p := trace.SampleComputeProfile(rng)
		if err := w.Write([]string{
			strconv.Itoa(c), p.Class.String(),
			strconv.FormatFloat(p.GFLOPS, 'f', 2, 64),
			strconv.FormatFloat(p.MemoryMB, 'f', 0, 64),
			strconv.FormatFloat(p.EnergyCapacity, 'f', 2, 64),
		}); err != nil {
			return err
		}
	}
	return nil
}

func exportAvailability(w *csv.Writer, clients, steps int, seed int64) error {
	if err := w.Write([]string{"client", "step", "available", "battery"}); err != nil {
		return err
	}
	for c := 0; c < clients; c++ {
		tr := trace.NewAvailabilityTrace(trace.AvailabilityConfig{Seed: seed + int64(c)})
		for t := 0; t < steps; t++ {
			avail := "0"
			if tr.Available(t) {
				avail = "1"
			}
			if err := w.Write([]string{
				strconv.Itoa(c), strconv.Itoa(t), avail,
				strconv.FormatFloat(tr.BatteryAt(t), 'f', 3, 64),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func exportInterference(w *csv.Writer, scenario string, clients, steps int, seed int64) error {
	sn, err := trace.ParseScenario(scenario)
	if err != nil {
		return err
	}
	if err := w.Write([]string{"client", "step", "cpu_frac", "mem_frac", "net_frac"}); err != nil {
		return err
	}
	for c := 0; c < clients; c++ {
		in := trace.NewInterference(sn, seed+int64(c))
		for t := 0; t < steps; t++ {
			cpu, mem, net := in.At(t)
			if err := w.Write([]string{
				strconv.Itoa(c), strconv.Itoa(t),
				strconv.FormatFloat(cpu, 'f', 3, 64),
				strconv.FormatFloat(mem, 'f', 3, 64),
				strconv.FormatFloat(net, 'f', 3, 64),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
