// Package wset implements the bounded working-set cache behind the lazy
// population providers: a pinned LRU keyed by client ID. The cache holds at
// most Capacity *unpinned* entries — pinned entries (clients currently
// owned by an in-flight round) are never evicted and do not count against
// the bound, so total residency is always ≤ capacity + pinned. Eviction
// order is strict LRU over unpinned entries, which makes hit/miss/eviction
// counts a pure function of the access sequence: the engines only touch
// the cache from their single-threaded dispatch/collect passes, so cache
// telemetry is byte-reproducible across any Parallelism.
package wset

import "sync"

// Stats is a point-in-time snapshot of cache activity counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Resident  int // entries currently held (pinned + unpinned)
	Peak      int // high-water mark of Resident
}

type entry[K comparable, V any] struct {
	key        K
	val        V
	pins       int
	prev, next *entry[K, V] // LRU list links; nil links while pinned
}

// Cache is a pinned LRU working-set cache. The zero value is not usable;
// construct with New. All methods are safe for concurrent use, but the
// determinism contract (reproducible counters) additionally requires a
// deterministic call sequence — the engines guarantee that by confining
// cache access to single-threaded passes.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[K]*entry[K, V]
	// head is most-recently-used, tail least-recently-used; only unpinned
	// entries are linked.
	head, tail *entry[K, V]
	unpinned   int
	onEvict    func(K, V)
	stats      Stats
}

// New constructs a cache bounding the unpinned working set to capacity
// entries (minimum 1). onEvict, when non-nil, observes each evicted
// key/value — the device provider uses it to persist drain logs.
func New[K comparable, V any](capacity int, onEvict func(K, V)) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		capacity: capacity,
		entries:  make(map[K]*entry[K, V], capacity+1),
		onEvict:  onEvict,
	}
}

// Get returns the cached value, marking the entry most-recently-used.
// Counts one hit or one miss.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		var zero V
		return zero, false
	}
	c.stats.Hits++
	if e.pins == 0 {
		c.unlink(e)
		c.pushFront(e)
	}
	return e.val, true
}

// Add inserts (or replaces) a value as most-recently-used, then evicts
// least-recently-used unpinned entries until the unpinned count is within
// capacity.
func (c *Cache[K, V]) Add(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		e.val = v
		if e.pins == 0 {
			c.unlink(e)
			c.pushFront(e)
		}
		return
	}
	e := &entry[K, V]{key: k, val: v}
	c.entries[k] = e
	c.pushFront(e)
	if len(c.entries) > c.stats.Peak {
		c.stats.Peak = len(c.entries)
	}
	c.evictOver()
}

// Pin marks the entry un-evictable until a matching Unpin. Pinning is
// reference-counted: a client acquired by overlapping owners stays resident
// until the last one releases it. Pin of a missing key reports false.
func (c *Cache[K, V]) Pin(k K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return false
	}
	if e.pins == 0 {
		c.unlink(e)
	}
	e.pins++
	return true
}

// Unpin drops one pin reference; the entry re-enters the LRU list as
// most-recently-used when the count reaches zero (and may then be evicted
// if the cache is over capacity).
func (c *Cache[K, V]) Unpin(k K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok || e.pins == 0 {
		return
	}
	e.pins--
	if e.pins == 0 {
		c.pushFront(e)
		c.evictOver()
	}
}

// Len returns the number of resident entries (pinned + unpinned).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the activity counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Resident = len(c.entries)
	return s
}

// SetStats overwrites the activity counters (Resident is derived and
// ignored). Checkpoint restore uses this after residency is rebuilt, so
// the rebuild's own hits/misses/evictions never reach telemetry.
func (c *Cache[K, V]) SetStats(s Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, Peak: s.Peak}
}

// UnpinnedKeys returns the unpinned resident keys in least-recently-used
// first order — the exact order that, replayed through Add on an empty
// cache, reconstructs this LRU list. Pinned entries are excluded; their
// residency is rebuilt by re-acquisition, not replay.
func (c *Cache[K, V]) UnpinnedKeys() []K {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]K, 0, c.unpinned)
	for e := c.tail; e != nil; e = e.prev {
		keys = append(keys, e.key)
	}
	return keys
}

// Range calls f for every resident entry (pinned and unpinned) in map
// order, holding the cache lock — f must not call back into the cache.
// Callers needing determinism must collect and sort; the checkpoint
// writers do exactly that with the int-keyed caches.
func (c *Cache[K, V]) Range(f func(k K, v V, pinned bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		f(k, e.val, e.pins > 0)
	}
}

func (c *Cache[K, V]) evictOver() {
	for c.unpinned > c.capacity && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.stats.Evictions++
		if c.onEvict != nil {
			c.onEvict(victim.key, victim.val)
		}
	}
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
	c.unpinned++
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	c.unpinned--
}
