package wset

import "testing"

func TestLRUEviction(t *testing.T) {
	var evicted []int
	c := New[int, string](2, func(k int, _ string) { evicted = append(evicted, k) })
	c.Add(1, "a")
	c.Add(2, "b")
	c.Add(3, "c") // evicts 1 (LRU)
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", evicted)
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("evicted entry still resident")
	}
	// Touch 2 so 3 becomes LRU.
	if _, ok := c.Get(2); !ok {
		t.Fatal("entry 2 missing")
	}
	c.Add(4, "d") // evicts 3
	if len(evicted) != 2 || evicted[1] != 3 {
		t.Fatalf("evicted %v, want [1 3]", evicted)
	}
}

func TestPinBlocksEviction(t *testing.T) {
	var evicted []int
	c := New[int, int](1, func(k, _ int) { evicted = append(evicted, k) })
	c.Add(1, 10)
	if !c.Pin(1) {
		t.Fatal("pin of resident entry failed")
	}
	c.Add(2, 20)
	c.Add(3, 30) // evicts 2, not pinned 1
	if _, ok := c.Get(1); !ok {
		t.Fatal("pinned entry was evicted")
	}
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted %v, want [2]", evicted)
	}
	// Unpin re-enters the LRU as MRU; 3 is now the victim.
	c.Unpin(1)
	if _, ok := c.Get(1); !ok {
		t.Fatal("unpinned entry should survive as MRU")
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("entry 3 should have been evicted on unpin overflow")
	}
}

func TestPinRefcount(t *testing.T) {
	c := New[int, int](1, nil)
	c.Add(1, 1)
	c.Pin(1)
	c.Pin(1)
	c.Unpin(1)
	c.Add(2, 2)
	c.Add(3, 3)
	if _, ok := c.Get(1); !ok {
		t.Fatal("entry with remaining pin was evicted")
	}
	c.Unpin(1)
	if c.Len() > 2 {
		t.Fatalf("resident %d after final unpin, want ≤ 2", c.Len())
	}
}

func TestStatsDeterministic(t *testing.T) {
	run := func() Stats {
		c := New[int, int](2, nil)
		for i := 0; i < 10; i++ {
			k := i % 4
			if _, ok := c.Get(k); !ok {
				c.Add(k, k)
			}
		}
		return c.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same access sequence produced different stats: %+v vs %+v", a, b)
	}
	if a.Hits+a.Misses != 10 {
		t.Fatalf("hits+misses = %d, want 10", a.Hits+a.Misses)
	}
	if a.Peak > 3 {
		t.Fatalf("peak resident %d exceeds capacity+1", a.Peak)
	}
}

func TestResidencyBound(t *testing.T) {
	c := New[int, int](4, nil)
	pinned := 0
	for i := 0; i < 100; i++ {
		c.Add(i, i)
		if i%10 == 0 {
			c.Pin(i)
			pinned++
		}
		if got, bound := c.Len(), 4+pinned; got > bound {
			t.Fatalf("resident %d exceeds capacity+pinned = %d", got, bound)
		}
	}
}

// TestUnpinnedKeysReplay pins the checkpoint contract: feeding
// UnpinnedKeys back through Add on an empty cache reconstructs the same
// LRU list, byte for byte, under further identical traffic.
func TestUnpinnedKeysReplay(t *testing.T) {
	build := func() *Cache[int, string] {
		c := New[int, string](3, nil)
		for _, k := range []int{1, 2, 3} {
			c.Add(k, "v")
		}
		c.Get(1) // order now: 2 (LRU), 3, 1 (MRU)
		return c
	}
	c := build()
	keys := c.UnpinnedKeys()
	want := []int{2, 3, 1}
	if len(keys) != len(want) {
		t.Fatalf("UnpinnedKeys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("UnpinnedKeys = %v, want %v", keys, want)
		}
	}

	replay := New[int, string](3, nil)
	for _, k := range keys {
		replay.Add(k, "v")
	}
	// Identical traffic must now evict identically on both caches.
	c.Add(9, "v")
	replay.Add(9, "v")
	a, b := c.UnpinnedKeys(), replay.UnpinnedKeys()
	if len(a) != len(b) {
		t.Fatalf("diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged after replay: %v vs %v", a, b)
		}
	}
}

// TestSetStatsOverwrites proves rebuild noise is erased and Resident stays
// derived from actual residency.
func TestSetStatsOverwrites(t *testing.T) {
	c := New[int, int](2, nil)
	c.Add(1, 1)
	c.Get(1)
	c.Get(42) // miss noise
	c.SetStats(Stats{Hits: 10, Misses: 20, Evictions: 30, Peak: 40, Resident: 999})
	s := c.Stats()
	if s.Hits != 10 || s.Misses != 20 || s.Evictions != 30 || s.Peak != 40 {
		t.Fatalf("SetStats not applied: %+v", s)
	}
	if s.Resident != 1 {
		t.Fatalf("Resident = %d, want 1 (derived, not restored)", s.Resident)
	}
}

// TestRangeSeesPinnedAndUnpinned covers the capture path: every resident
// entry is visited exactly once with its pin state.
func TestRangeSeesPinnedAndUnpinned(t *testing.T) {
	c := New[int, int](2, nil)
	c.Add(1, 10)
	c.Add(2, 20)
	c.Pin(2)
	seen := map[int]bool{}
	c.Range(func(k, v int, pinned bool) {
		if seen[k] {
			t.Fatalf("key %d visited twice", k)
		}
		seen[k] = true
		if pinned != (k == 2) {
			t.Fatalf("key %d pinned=%v", k, pinned)
		}
	})
	if len(seen) != 2 {
		t.Fatalf("Range visited %d entries, want 2", len(seen))
	}
}
