package device

import "floatfl/internal/obs"

// numDropReasons sizes per-reason counter slices; DropDeadline is the
// last enum value.
const numDropReasons = int(DropDeadline) + 1

// Observer translates execution Outcomes into registry metrics: total
// executions, completions, drops by reason, and compute/comm duration
// distributions. Handles are registered once at construction, so Record
// is allocation-free; a nil *Observer (or one built from a nil registry)
// is a no-op.
type Observer struct {
	executions  *obs.Counter
	completions *obs.Counter
	drops       [numDropReasons]*obs.Counter
	compute     *obs.Histogram
	comm        *obs.Histogram
}

// NewObserver registers the device metrics on reg. A nil reg yields an
// observer whose handles all no-op.
func NewObserver(reg *obs.Registry) *Observer {
	o := &Observer{
		executions:  reg.Counter("device_executions_total"),
		completions: reg.Counter("device_completions_total"),
		compute:     reg.Histogram("device_compute_seconds", []float64{1, 5, 15, 30, 60, 120, 300, 600}),
		comm:        reg.Histogram("device_comm_seconds", []float64{0.1, 0.5, 1, 5, 15, 30, 60, 120}),
	}
	for r := DropNone; r <= DropDeadline; r++ {
		o.drops[int(r)] = reg.Counter(`device_drops_total{reason="` + r.String() + `"}`)
	}
	return o
}

// Record ingests one execution outcome. Only incomplete outcomes count as
// drops; cost durations are recorded either way (a deadline-dropped
// client still burned its compute).
func (o *Observer) Record(out Outcome) {
	if o == nil {
		return
	}
	o.executions.Inc()
	if out.Completed {
		o.completions.Inc()
	} else if r := int(out.Reason); r >= 0 && r < numDropReasons {
		o.drops[r].Inc()
	}
	o.compute.Observe(out.Cost.ComputeSeconds)
	o.comm.Observe(out.Cost.CommSeconds)
}
