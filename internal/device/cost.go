package device

import (
	"fmt"
	"math"

	"floatfl/internal/opt"
)

// WorkSpec describes one round of local training at real-model scale: the
// cost model consumes the *reference* FLOP/parameter counts of the named
// architecture (see nn.Spec), so simulated latencies match real workloads.
type WorkSpec struct {
	// RefFLOPsPerSample is forward+backward FLOPs per sample.
	RefFLOPsPerSample int64
	// RefParams is the parameter count of the reference model.
	RefParams int64
	Samples   int
	Epochs    int
}

// Validate reports whether the work spec is well-formed.
func (w WorkSpec) Validate() error {
	if w.RefFLOPsPerSample <= 0 || w.RefParams <= 0 || w.Samples <= 0 || w.Epochs <= 0 {
		return fmt.Errorf("device: invalid WorkSpec %+v", w)
	}
	return nil
}

// Cost aggregates the resources one client round consumes.
type Cost struct {
	ComputeSeconds float64
	CommSeconds    float64
	// TotalSeconds is the client's response time (compute + comm).
	TotalSeconds  float64
	UploadBytes   float64
	DownloadBytes float64
	// MemoryBytes is peak training memory.
	MemoryBytes float64
	// EnergyHours is battery consumed, in training-hours.
	EnergyHours float64
}

// DropReason explains why a client failed to return its update.
type DropReason int

const (
	// DropNone: the client completed within the deadline.
	DropNone DropReason = iota
	// DropUnavailable: the client was offline (energy/user activity).
	DropUnavailable
	// DropMemory: training memory exceeded what interference left free.
	DropMemory
	// DropEnergy: the battery could not sustain the round.
	DropEnergy
	// DropDeadline: compute+comm exceeded the round deadline.
	DropDeadline
)

func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "none"
	case DropUnavailable:
		return "unavailable"
	case DropMemory:
		return "memory"
	case DropEnergy:
		return "energy"
	case DropDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// Outcome is the result of executing one client round under the cost model.
type Outcome struct {
	Completed bool
	Reason    DropReason
	// Cost is what the round actually consumed — on a dropout, the
	// resources are consumed *and wasted* (the paper's inefficiency
	// metrics count exactly this waste).
	Cost Cost
	// DeadlineDiff is the human-feedback signal: how far past the deadline
	// the client would have finished, as a fraction of the deadline
	// (0 when it finished in time).
	DeadlineDiff float64
	// Resources snapshots what the client had at execution time.
	Resources Resources
}

// bytesPerParam: the paper's systems ship float32 models.
const bytesPerParam = 4

// uplinkShare: cellular uplink is a fraction of downlink throughput.
const uplinkShare = 0.35

// memOverheadFactor: training holds weights + gradients + optimizer/
// activation state; 3x the raw model is a standard rule of thumb.
const memOverheadFactor = 3

// Estimate computes the full-round cost for a client's resources under an
// acceleration technique, without executing dropout logic. gflops is the
// device's sustained training throughput.
func Estimate(w WorkSpec, r Resources, eff opt.Effects, gflops float64) Cost {
	cpu := r.CPUFrac
	if cpu < 0.01 {
		cpu = 0.01
	}
	net := r.NetFrac
	if net < 0.02 {
		net = 0.02
	}
	return estimate(w, r, eff, cpu, net, gflops)
}

func estimate(w WorkSpec, r Resources, eff opt.Effects, cpu, net, gflops float64) Cost {
	speed := gflops
	if speed <= 0 {
		speed = 1
	}
	flops := float64(w.RefFLOPsPerSample) * float64(w.Samples) * float64(w.Epochs)
	computeSec := flops / (speed * 1e9 * cpu) * eff.ComputeFactor

	modelBytes := float64(w.RefParams) * bytesPerParam
	df := eff.DownloadFactor
	if df <= 0 {
		df = 1
	}
	downloadBytes := modelBytes * df
	uploadBytes := modelBytes * eff.CommFactor

	downMbps := r.BandwidthMbps * net
	if downMbps < 0.05 {
		downMbps = 0.05
	}
	upMbps := downMbps * uplinkShare
	commSec := downloadBytes*8/(downMbps*1e6) + uploadBytes*8/(upMbps*1e6)

	memBytes := modelBytes * memOverheadFactor * eff.MemoryFactor

	c := Cost{
		ComputeSeconds: computeSec,
		CommSeconds:    commSec,
		TotalSeconds:   computeSec + commSec,
		UploadBytes:    uploadBytes,
		DownloadBytes:  downloadBytes,
		MemoryBytes:    memBytes,
		EnergyHours:    computeSec / 3600,
	}
	return c
}

// drainFor charges the battery for a round's actual consumption: compute
// energy plus a radio overhead for communication time, normalized by the
// device's capacity, plus a small fixed wake-up cost.
func drainFor(c *Client, cost Cost) {
	capacity := c.Compute.EnergyCapacity
	if capacity <= 0 || math.IsNaN(capacity) {
		// A zero/negative capacity would make the normalization below
		// non-finite and silently corrupt the availability trace (NaN
		// battery disables the low-water cutoff forever); charge only the
		// fixed wake-up cost.
		c.Avail.RecordUseAmount(0.005)
		return
	}
	commHours := cost.CommSeconds / 3600
	frac := (cost.EnergyHours + 0.3*commHours) / capacity
	if frac < 0 || math.IsNaN(frac) {
		frac = 0
	}
	c.Avail.RecordUseAmount(frac + 0.005)
}

// Execute runs one client round at time step t: it samples resources,
// estimates costs with the client's actual GFLOPS, and applies the dropout
// rules (availability, memory, energy, deadline). Battery drain is
// recorded on the availability trace so future rounds see it.
//
// Concurrency contract: Execute mutates only the receiver client's traces
// (lazy extension plus battery drain), so calls for *distinct* clients may
// run concurrently — this is what lets the fl engines fan a round's
// selected clients across workers. Calls touching the same client must be
// serialized by the caller, and a single client's calls must keep a
// deterministic order (the engines execute each client at most once per
// round/task, in simulation order).
func Execute(c *Client, t int, w WorkSpec, tech opt.Technique, deadlineSec float64) (Outcome, error) {
	if err := w.Validate(); err != nil {
		return Outcome{}, err
	}
	if deadlineSec <= 0 {
		return Outcome{}, fmt.Errorf("device: non-positive deadline %v", deadlineSec)
	}
	r := c.ResourcesAt(t)
	eff := tech.Effects()

	if !r.Available {
		// The server learns quickly that the client is gone; only the
		// download it pushed is wasted.
		cost := Cost{DownloadBytes: float64(w.RefParams) * bytesPerParam}
		return Outcome{Completed: false, Reason: DropUnavailable, Cost: cost, Resources: r}, nil
	}

	cpu := r.CPUFrac
	if cpu < 0.01 {
		cpu = 0.01
	}
	net := r.NetFrac
	if net < 0.02 {
		net = 0.02
	}
	full := estimate(w, r, eff, cpu, net, c.Compute.GFLOPS)

	memAvailBytes := c.Compute.MemoryMB * 1e6 * r.MemFrac
	if full.MemoryBytes > memAvailBytes {
		// Training aborts early (allocation failure): the download and a
		// sliver of compute are wasted.
		cost := full
		cost.ComputeSeconds *= 0.1
		cost.CommSeconds = 0
		cost.UploadBytes = 0
		cost.TotalSeconds = cost.ComputeSeconds
		cost.EnergyHours = cost.ComputeSeconds / 3600
		drainFor(c, cost)
		return Outcome{Completed: false, Reason: DropMemory, Cost: cost, Resources: r}, nil
	}

	energyAvail := r.Battery * c.Compute.EnergyCapacity
	if full.EnergyHours > energyAvail {
		// Battery dies partway: the fraction of compute that fit is wasted.
		frac := energyAvail / full.EnergyHours
		if frac < 0 || math.IsNaN(frac) {
			// Degenerate capacity (zero/negative) must not produce a
			// negative or NaN partial cost.
			frac = 0
		}
		cost := full
		cost.ComputeSeconds *= frac
		cost.CommSeconds = 0
		cost.UploadBytes = 0
		cost.TotalSeconds = cost.ComputeSeconds
		cost.EnergyHours = energyAvail
		drainFor(c, cost)
		return Outcome{Completed: false, Reason: DropEnergy, Cost: cost, Resources: r}, nil
	}

	if full.TotalSeconds > deadlineSec {
		// The client worked until the deadline and was cut off; everything
		// it consumed is wasted. DeadlineDiff is the human-feedback signal
		// the paper's Table 1 describes: percentage more time than the set
		// deadline the client would have needed.
		spentFrac := deadlineSec / full.TotalSeconds
		cost := full
		cost.ComputeSeconds *= spentFrac
		cost.CommSeconds *= spentFrac
		cost.UploadBytes *= spentFrac
		cost.TotalSeconds = deadlineSec
		cost.EnergyHours = cost.ComputeSeconds / 3600
		drainFor(c, cost)
		return Outcome{
			Completed:    false,
			Reason:       DropDeadline,
			Cost:         cost,
			DeadlineDiff: (full.TotalSeconds - deadlineSec) / deadlineSec,
			Resources:    r,
		}, nil
	}

	if !c.Avail.Available(t + 1) {
		// The client went offline partway through the round (user picked
		// up the phone, battery saver kicked in, connectivity vanished):
		// roughly half the round's work is wasted and no upload happens.
		cost := full
		cost.ComputeSeconds *= 0.5
		cost.CommSeconds *= 0.25
		cost.UploadBytes = 0
		cost.TotalSeconds = cost.ComputeSeconds + cost.CommSeconds
		cost.EnergyHours = cost.ComputeSeconds / 3600
		drainFor(c, cost)
		return Outcome{Completed: false, Reason: DropUnavailable, Cost: cost, Resources: r}, nil
	}

	drainFor(c, full)
	return Outcome{Completed: true, Reason: DropNone, Cost: full, Resources: r}, nil
}

// EstimateCleanResponseSeconds estimates the client's full-round response
// time with no interference at all (full CPU/memory shares, unshared
// network at its step-0 bandwidth). Round deadlines are budgeted against
// this clean baseline, so the dropouts that occur at runtime are the ones
// caused by interference and resource dips — exactly what adaptive
// acceleration can compensate for.
func EstimateCleanResponseSeconds(c *Client, w WorkSpec) float64 {
	r := Resources{
		Available:     true,
		CPUFrac:       0.8,
		MemFrac:       0.8,
		NetFrac:       1,
		BandwidthMbps: c.Net.At(0),
		Battery:       1,
	}
	return estimate(w, r, opt.TechNone.Effects(), r.CPUFrac, r.NetFrac, c.Compute.GFLOPS).TotalSeconds
}

// EstimateResponseSeconds is the selection-time latency prediction used by
// Oort-style algorithms: the full-round duration with no acceleration,
// assuming the most recent resource snapshot holds.
func EstimateResponseSeconds(c *Client, t int, w WorkSpec) float64 {
	r := c.ResourcesAt(t)
	cpu := r.CPUFrac
	if cpu < 0.01 {
		cpu = 0.01
	}
	net := r.NetFrac
	if net < 0.02 {
		net = 0.02
	}
	return estimate(w, r, opt.TechNone.Effects(), cpu, net, c.Compute.GFLOPS).TotalSeconds
}
