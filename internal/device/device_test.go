package device

import (
	"math"
	"testing"

	"floatfl/internal/opt"
	"floatfl/internal/trace"
)

func testWork() WorkSpec {
	// Roughly a ResNet-34 round: 22 GFLOPs/sample, 21.8M params, 60
	// samples, 5 epochs.
	return WorkSpec{RefFLOPsPerSample: 22_000_000_000, RefParams: 21_800_000, Samples: 60, Epochs: 5}
}

func testPopulation(t *testing.T, n int, s trace.Scenario) []*Client {
	t.Helper()
	pop, err := NewPopulation(PopulationConfig{Clients: n, Scenario: s, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestNewPopulation(t *testing.T) {
	pop := testPopulation(t, 50, trace.ScenarioDynamic)
	if len(pop) != 50 {
		t.Fatalf("population size %d, want 50", len(pop))
	}
	seen4, seen5 := false, false
	for i, c := range pop {
		if c.ID != i {
			t.Fatalf("client %d has ID %d", i, c.ID)
		}
		if c.Compute.GFLOPS <= 0 {
			t.Fatalf("client %d has no compute", i)
		}
		switch c.NetKind {
		case trace.Net4G:
			seen4 = true
		case trace.Net5G:
			seen5 = true
		}
	}
	if !seen4 || !seen5 {
		t.Fatal("population should mix 4G and 5G clients")
	}
	if _, err := NewPopulation(PopulationConfig{Clients: 0}); err == nil {
		t.Fatal("NewPopulation accepted zero clients")
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a := testPopulation(t, 10, trace.ScenarioDynamic)
	b := testPopulation(t, 10, trace.ScenarioDynamic)
	for i := range a {
		if a[i].Compute.GFLOPS != b[i].Compute.GFLOPS || a[i].NetKind != b[i].NetKind {
			t.Fatal("populations differ under identical seeds")
		}
		ra, rb := a[i].ResourcesAt(3), b[i].ResourcesAt(3)
		if ra != rb {
			t.Fatal("resource streams differ under identical seeds")
		}
	}
}

func TestResourcesAtRanges(t *testing.T) {
	pop := testPopulation(t, 20, trace.ScenarioDynamic)
	for _, c := range pop {
		for step := 0; step < 50; step++ {
			r := c.ResourcesAt(step)
			if r.CPUFrac < 0 || r.CPUFrac > 1 || r.MemFrac < 0 || r.MemFrac > 1 ||
				r.NetFrac < 0 || r.NetFrac > 1 {
				t.Fatalf("resource fractions out of range: %+v", r)
			}
			if r.BandwidthMbps <= 0 {
				t.Fatalf("non-positive bandwidth: %+v", r)
			}
			if r.Battery < 0 || r.Battery > 1 {
				t.Fatalf("battery out of range: %+v", r)
			}
		}
	}
}

func TestWorkSpecValidate(t *testing.T) {
	if err := testWork().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testWork()
	bad.Samples = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted zero samples")
	}
}

func fullResources() Resources {
	return Resources{Available: true, CPUFrac: 0.8, MemFrac: 0.8, NetFrac: 1, BandwidthMbps: 50, Battery: 1}
}

func TestEstimateBasics(t *testing.T) {
	w := testWork()
	c := Estimate(w, fullResources(), opt.TechNone.Effects(), 20)
	if c.ComputeSeconds <= 0 || c.CommSeconds <= 0 || c.MemoryBytes <= 0 {
		t.Fatalf("estimate produced non-positive costs: %+v", c)
	}
	if c.TotalSeconds != c.ComputeSeconds+c.CommSeconds {
		t.Fatal("TotalSeconds must be compute + comm")
	}
	if c.DownloadBytes != float64(w.RefParams)*bytesPerParam {
		t.Fatal("download must be the full model")
	}
	if c.UploadBytes != c.DownloadBytes {
		t.Fatal("unoptimized upload must equal the full model")
	}
}

func TestEstimateFasterDeviceIsFaster(t *testing.T) {
	w := testWork()
	slow := Estimate(w, fullResources(), opt.TechNone.Effects(), 4)
	fast := Estimate(w, fullResources(), opt.TechNone.Effects(), 120)
	if fast.ComputeSeconds >= slow.ComputeSeconds {
		t.Fatal("faster device must compute faster")
	}
}

func TestEstimateInterferenceSlowsDown(t *testing.T) {
	w := testWork()
	full := fullResources()
	squeezed := full
	squeezed.CPUFrac, squeezed.NetFrac = 0.1, 0.1
	a := Estimate(w, full, opt.TechNone.Effects(), 20)
	b := Estimate(w, squeezed, opt.TechNone.Effects(), 20)
	if b.ComputeSeconds <= a.ComputeSeconds || b.CommSeconds <= a.CommSeconds {
		t.Fatal("interference must slow both compute and comm")
	}
}

func TestEstimateTechniqueEffects(t *testing.T) {
	w := testWork()
	r := fullResources()
	base := Estimate(w, r, opt.TechNone.Effects(), 20)

	q8 := Estimate(w, r, opt.TechQuant8.Effects(), 20)
	if q8.UploadBytes >= base.UploadBytes/3 {
		t.Fatalf("quant8 upload %v should be ~25%% of base %v", q8.UploadBytes, base.UploadBytes)
	}
	if q8.ComputeSeconds < base.ComputeSeconds {
		t.Fatal("quant8 must not reduce compute time")
	}

	p75 := Estimate(w, r, opt.TechPrune75.Effects(), 20)
	if p75.ComputeSeconds >= base.ComputeSeconds || p75.UploadBytes >= base.UploadBytes {
		t.Fatal("prune75 must reduce compute and upload")
	}

	t75 := Estimate(w, r, opt.TechPartial75.Effects(), 20)
	if t75.ComputeSeconds >= p75.ComputeSeconds {
		t.Fatal("partial75 should save more compute than prune75")
	}
	if t75.UploadBytes <= p75.UploadBytes {
		t.Fatal("partial75 should save less communication than prune75")
	}
}

func TestExecuteSuccess(t *testing.T) {
	pop := testPopulation(t, 30, trace.ScenarioNone)
	w := testWork()
	succeeded := false
	for _, c := range pop {
		out, err := Execute(c, 0, w, opt.TechNone, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		if out.Completed {
			succeeded = true
			if out.Reason != DropNone {
				t.Fatalf("completed with reason %v", out.Reason)
			}
			if out.DeadlineDiff != 0 {
				t.Fatal("completed round must have zero deadline diff")
			}
			if out.Cost.TotalSeconds <= 0 {
				t.Fatal("completed round must have positive cost")
			}
		}
	}
	if !succeeded {
		t.Fatal("no client completed with an enormous deadline")
	}
}

func TestExecuteDeadlineDropout(t *testing.T) {
	pop := testPopulation(t, 30, trace.ScenarioNone)
	w := testWork()
	dropped := false
	for _, c := range pop {
		out, err := Execute(c, 0, w, opt.TechNone, 0.5) // half a second: impossible
		if err != nil {
			t.Fatal(err)
		}
		if out.Completed {
			t.Fatal("no client can finish a ResNet-34 round in half a second")
		}
		if out.Reason == DropDeadline {
			dropped = true
			if out.DeadlineDiff <= 0 {
				t.Fatal("deadline dropout must report positive deadline diff")
			}
			if out.Cost.TotalSeconds > 0.5+1e-9 {
				t.Fatal("deadline dropout cannot consume more than the deadline")
			}
			if out.Cost.UploadBytes >= float64(w.RefParams)*bytesPerParam {
				t.Fatal("deadline dropout should waste only partial upload")
			}
		}
	}
	if !dropped {
		t.Fatal("expected at least one deadline dropout")
	}
}

func TestExecuteUnavailableDropout(t *testing.T) {
	pop := testPopulation(t, 60, trace.ScenarioDynamic)
	w := testWork()
	seen := false
	for _, c := range pop {
		for step := 0; step < 20 && !seen; step++ {
			r := c.ResourcesAt(step)
			if r.Available {
				continue
			}
			out, err := Execute(c, step, w, opt.TechNone, 1e6)
			if err != nil {
				t.Fatal(err)
			}
			if out.Completed || out.Reason != DropUnavailable {
				t.Fatalf("offline client produced %+v", out)
			}
			if out.Cost.UploadBytes != 0 || out.Cost.ComputeSeconds != 0 {
				t.Fatal("offline client should only waste the download")
			}
			seen = true
		}
	}
	if !seen {
		t.Skip("no offline client found in the first 20 steps (seed-dependent)")
	}
}

func TestExecuteMemoryDropout(t *testing.T) {
	pop := testPopulation(t, 1, trace.ScenarioNone)
	c := pop[0]
	// A model too large for any phone: 10B params.
	w := WorkSpec{RefFLOPsPerSample: 1e9, RefParams: 10_000_000_000, Samples: 10, Epochs: 1}
	out, err := Execute(c, 0, w, opt.TechNone, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed || out.Reason != DropMemory {
		t.Fatalf("want memory dropout, got %+v", out)
	}
	if out.Cost.UploadBytes != 0 {
		t.Fatal("memory dropout should not upload")
	}
}

func TestExecuteEnergyDropout(t *testing.T) {
	pop := testPopulation(t, 40, trace.ScenarioNone)
	// Enormous compute with a tiny model: memory fits, battery cannot.
	w := WorkSpec{RefFLOPsPerSample: 8e12, RefParams: 1_000_000, Samples: 200, Epochs: 10}
	seen := false
	for _, c := range pop {
		out, err := Execute(c, 0, w, opt.TechNone, 1e12)
		if err != nil {
			t.Fatal(err)
		}
		if out.Reason == DropEnergy {
			seen = true
			if out.Cost.EnergyHours <= 0 {
				t.Fatal("energy dropout must consume energy")
			}
			break
		}
	}
	if !seen {
		t.Fatal("expected at least one energy dropout on an enormous job")
	}
}

func TestExecuteValidation(t *testing.T) {
	pop := testPopulation(t, 1, trace.ScenarioNone)
	if _, err := Execute(pop[0], 0, WorkSpec{}, opt.TechNone, 10); err == nil {
		t.Fatal("Execute accepted invalid work spec")
	}
	if _, err := Execute(pop[0], 0, testWork(), opt.TechNone, 0); err == nil {
		t.Fatal("Execute accepted zero deadline")
	}
}

func TestAccelerationRescuesStragglers(t *testing.T) {
	// The core premise of the paper: a deadline that drops a client under
	// TechNone can be met under an aggressive optimization.
	pop := testPopulation(t, 100, trace.ScenarioDynamic)
	w := testWork()
	rescued := 0
	for _, c := range pop {
		r := c.ResourcesAt(0)
		if !r.Available {
			continue
		}
		base := Estimate(w, r, opt.TechNone.Effects(), c.Compute.GFLOPS)
		deadline := base.TotalSeconds * 0.6 // 40% too tight for TechNone
		outNone, err := Execute(c, 0, w, opt.TechNone, deadline)
		if err != nil {
			t.Fatal(err)
		}
		if outNone.Completed {
			continue
		}
		outOpt, err := Execute(c, 0, w, opt.TechPartial75, deadline)
		if err != nil {
			t.Fatal(err)
		}
		if outOpt.Completed {
			rescued++
		}
	}
	if rescued == 0 {
		t.Fatal("partial75 rescued no straggler — acceleration has no effect")
	}
}

func TestEstimateResponseSeconds(t *testing.T) {
	pop := testPopulation(t, 5, trace.ScenarioNone)
	w := testWork()
	for _, c := range pop {
		est := EstimateResponseSeconds(c, 0, w)
		if est <= 0 {
			t.Fatalf("non-positive response estimate %v", est)
		}
	}
}

func TestDropReasonString(t *testing.T) {
	for r, want := range map[DropReason]string{
		DropNone: "none", DropUnavailable: "unavailable", DropMemory: "memory",
		DropEnergy: "energy", DropDeadline: "deadline",
	} {
		if r.String() != want {
			t.Fatalf("DropReason(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
	if DropReason(77).String() == "" {
		t.Fatal("unknown DropReason should render")
	}
}

// TestDrainForGuardsDegenerateEnergyCapacity: a client misconfigured with
// zero (or negative) EnergyCapacity must not corrupt its availability
// trace — the old normalization divided by the capacity and pushed
// NaN/Inf drain into the battery series, which silently disabled the
// low-water availability cutoff for every later round.
func TestDrainForGuardsDegenerateEnergyCapacity(t *testing.T) {
	for _, capacity := range []float64{0, -1, math.NaN()} {
		pop := testPopulation(t, 1, trace.ScenarioNone)
		c := pop[0]
		c.Compute.EnergyCapacity = capacity
		w := testWork()
		for step := 0; step < 30; step++ {
			out, err := Execute(c, step, w, opt.TechNone, 1e9)
			if err != nil {
				t.Fatal(err)
			}
			if out.Cost.ComputeSeconds < 0 || math.IsNaN(out.Cost.ComputeSeconds) ||
				out.Cost.TotalSeconds < 0 || math.IsNaN(out.Cost.TotalSeconds) {
				t.Fatalf("capacity %v step %d: degenerate cost %+v", capacity, step, out.Cost)
			}
			b := c.Avail.BatteryAt(step + 1)
			if math.IsNaN(b) || b < 0 || b > 1 {
				t.Fatalf("capacity %v step %d: battery trace corrupted: %v", capacity, step, b)
			}
		}
	}
	// A sane capacity still drains: pending use applies when the trace
	// extends past the step Execute already touched (t+1), so compare the
	// level one step later.
	pop := testPopulation(t, 1, trace.ScenarioNone)
	c := pop[0]
	c.Compute.EnergyCapacity = 2
	out, err := Execute(c, 0, testWork(), opt.TechNone, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if out.Reason != DropUnavailable { // an offline step records no use
		before := c.Avail.BatteryAt(1)
		after := c.Avail.BatteryAt(2)
		if math.IsNaN(after) || after >= before {
			t.Fatalf("healthy drain broken: battery %v -> %v (reason %v)", before, after, out.Reason)
		}
	}
}
