package device

import (
	"fmt"
	"math/rand"

	"floatfl/internal/data"
	"floatfl/internal/trace"
	"floatfl/internal/wset"
)

// normalizePopulation applies NewPopulation's defaulting rules so lazy and
// eager derivation agree on the effective 5G share.
func normalizePopulation(cfg PopulationConfig) PopulationConfig {
	if cfg.FiveGShare <= 0 {
		cfg.FiveGShare = 0.3
	}
	return cfg
}

// DeriveClient derives client id's device state purely from (cfg.Seed, id):
// network kind, compute profile, and the three trace processes, all seeded
// from the client's private stream (data.ClientSeed). Like the data-side
// derivation it is order-independent, unlike the sequential single-stream
// NewPopulation.
func DeriveClient(cfg PopulationConfig, id int) *Client {
	cfg = normalizePopulation(cfg)
	rng := rand.New(rand.NewSource(data.ClientSeed(cfg.Seed, int64(id))))
	kind := trace.Net4G
	if rng.Float64() < cfg.FiveGShare {
		kind = trace.Net5G
	}
	return &Client{
		ID:      id,
		Compute: trace.SampleComputeProfile(rng),
		NetKind: kind,
		Net:     trace.NewBandwidthTrace(kind, rng.Int63()),
		Avail:   trace.NewAvailabilityTrace(trace.AvailabilityConfig{Seed: rng.Int63()}),
		Interf:  trace.NewInterference(cfg.Scenario, rng.Int63()),
	}
}

// Provider derives device clients on demand and keeps a bounded LRU
// working set resident. Device state is the one mutable piece of a client
// (training drains its battery), so eviction persists the availability
// trace's drain log and re-derivation replays it — an evicted-and-rederived
// client is bit-identical to one that stayed resident. The drain-log store
// grows with the number of *distinct clients that ever trained*, a compact
// event list each, not with the population.
//
// Like the data provider, all access is confined to the engines'
// single-threaded passes, making cache counters deterministic.
type Provider struct {
	cfg   PopulationConfig
	cache *wset.Cache[int, *Client]
	// drainLogs holds the battery history of evicted clients that trained.
	drainLogs map[int][]trace.DrainEvent
}

// NewProvider constructs a lazy device provider. cacheClients bounds the
// unpinned resident working set (≤ 0 defaults to 4096).
func NewProvider(cfg PopulationConfig, cacheClients int) (*Provider, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("device: provider needs positive client count, got %d", cfg.Clients)
	}
	if cacheClients <= 0 {
		cacheClients = 4096
	}
	p := &Provider{
		cfg:       normalizePopulation(cfg),
		drainLogs: make(map[int][]trace.DrainEvent),
	}
	p.cache = wset.New[int, *Client](cacheClients, func(id int, c *Client) {
		if log := c.Avail.DrainLog(); log != nil {
			p.drainLogs[id] = log
		}
	})
	return p, nil
}

// NumClients returns the population size.
func (p *Provider) NumClients() int { return p.cfg.Clients }

// Client returns client id, deriving it on a cache miss and replaying any
// drain log captured when it was last evicted.
func (p *Provider) Client(id int) *Client {
	if c, ok := p.cache.Get(id); ok {
		return c
	}
	c := DeriveClient(p.cfg, id)
	if log, ok := p.drainLogs[id]; ok {
		c.Avail.ReplayDrains(log)
	}
	p.cache.Add(id, c)
	return c
}

// Acquire returns client id pinned against eviction until the matching
// Release. The engines pin every dispatched client for its round: workers
// mutate the client's traces (battery drain), which must land on the same
// instance the collect pass releases.
func (p *Provider) Acquire(id int) *Client {
	c := p.Client(id)
	p.cache.Pin(id)
	return c
}

// Release drops one pin reference on client id.
func (p *Provider) Release(id int) { p.cache.Unpin(id) }

// EstimateClean derives client id ephemerally — without touching the cache
// or drain store — and returns its clean response-time estimate for w.
// Used by deadline auto-derivation, which samples the population before
// any client has mutable state.
func (p *Provider) EstimateClean(id int, w WorkSpec) float64 {
	return EstimateCleanResponseSeconds(DeriveClient(p.cfg, id), w)
}

// Stats returns the working-set cache counters.
func (p *Provider) Stats() wset.Stats { return p.cache.Stats() }

// DrainState returns a copy of every drain log the provider knows about:
// the evicted-client store plus the logs of currently resident (pinned or
// not) clients. Together with the population config it is the provider's
// complete client-visible mutable state.
func (p *Provider) DrainState() map[int][]trace.DrainEvent {
	logs := make(map[int][]trace.DrainEvent, len(p.drainLogs))
	for id, log := range p.drainLogs {
		logs[id] = append([]trace.DrainEvent(nil), log...)
	}
	p.cache.Range(func(id int, c *Client, pinned bool) {
		if log := c.Avail.DrainLog(); log != nil {
			logs[id] = log
		}
	})
	return logs
}

// RestoreDrainState installs a captured drain-log map. The provider must
// be fresh — never having derived a client — so every future derivation
// replays its log from step zero.
func (p *Provider) RestoreDrainState(logs map[int][]trace.DrainEvent) error {
	if p.cache.Len() != 0 || len(p.drainLogs) != 0 {
		return fmt.Errorf("device: drain-state restore requires a fresh provider (cache %d, logs %d)",
			p.cache.Len(), len(p.drainLogs))
	}
	for id, log := range logs {
		p.drainLogs[id] = append([]trace.DrainEvent(nil), log...)
	}
	return nil
}

// UnpinnedResidents returns the unpinned resident client IDs in
// least-recently-used-first order — the replay order WarmCache needs to
// reconstruct the LRU list.
func (p *Provider) UnpinnedResidents() []int { return p.cache.UnpinnedKeys() }

// WarmCache derives the given clients in order, re-populating cache
// residency after a restore. The caller overwrites cache stats afterwards
// (SetCacheStats), so the warm-up's own misses never reach telemetry.
func (p *Provider) WarmCache(ids []int) {
	for _, id := range ids {
		p.Client(id)
	}
}

// SetCacheStats overwrites the cache activity counters with captured ones.
func (p *Provider) SetCacheStats(s wset.Stats) { p.cache.SetStats(s) }

// Materialize eagerly derives the whole population — the adapter for dense
// []*Client consumers and the oracle for order-independence tests. It
// bypasses the cache; any previously captured drain logs are replayed so
// the materialized clients carry the same history.
func (p *Provider) Materialize() []*Client {
	out := make([]*Client, p.cfg.Clients)
	for i := range out {
		c := DeriveClient(p.cfg, i)
		if log, ok := p.drainLogs[i]; ok {
			c.Avail.ReplayDrains(log)
		}
		out[i] = c
	}
	return out
}
