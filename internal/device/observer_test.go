package device

import (
	"testing"

	"floatfl/internal/obs"
)

func TestObserverRecords(t *testing.T) {
	reg := obs.NewRegistry()
	o := NewObserver(reg)
	o.Record(Outcome{Completed: true, Cost: Cost{ComputeSeconds: 10, CommSeconds: 2}})
	o.Record(Outcome{Completed: false, Reason: DropDeadline, Cost: Cost{ComputeSeconds: 90, CommSeconds: 1}})
	o.Record(Outcome{Completed: false, Reason: DropUnavailable})

	if got := reg.Counter("device_executions_total").Value(); got != 3 {
		t.Fatalf("executions = %d, want 3", got)
	}
	if got := reg.Counter("device_completions_total").Value(); got != 1 {
		t.Fatalf("completions = %d, want 1", got)
	}
	if got := reg.Counter(`device_drops_total{reason="deadline"}`).Value(); got != 1 {
		t.Fatalf("deadline drops = %d, want 1", got)
	}
	if got := reg.Counter(`device_drops_total{reason="unavailable"}`).Value(); got != 1 {
		t.Fatalf("unavailable drops = %d, want 1", got)
	}
	if got := reg.Histogram("device_compute_seconds", nil).Count(); got != 3 {
		t.Fatalf("compute samples = %d, want 3", got)
	}
}

func TestObserverNilSafe(t *testing.T) {
	var nilObs *Observer
	nilObs.Record(Outcome{Completed: true})
	NewObserver(nil).Record(Outcome{Completed: true}) // nil registry: all handles no-op
}
