package device

import (
	"math"
	"testing"
	"testing/quick"

	"floatfl/internal/opt"
	"floatfl/internal/trace"
)

// Property: Execute never produces negative or non-finite costs, never
// exceeds the deadline on a completed round, and reports a drop reason
// exactly when it did not complete.
func TestExecuteInvariantsQuick(t *testing.T) {
	pop, err := NewPopulation(PopulationConfig{
		Clients: 64, Scenario: trace.ScenarioDynamic, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := WorkSpec{RefFLOPsPerSample: 22e9, RefParams: 21_800_000, Samples: 60, Epochs: 2}

	f := func(clientRaw, stepRaw, techRaw uint8, deadlineRaw uint16) bool {
		c := pop[int(clientRaw)%len(pop)]
		step := int(stepRaw) % 64
		tech := opt.All()[int(techRaw)%opt.NumTechniques]
		deadline := 1 + float64(deadlineRaw)*2 // 1 .. ~130k seconds

		out, err := Execute(c, step, w, tech, deadline)
		if err != nil {
			return false
		}
		cost := out.Cost
		for _, v := range []float64{
			cost.ComputeSeconds, cost.CommSeconds, cost.TotalSeconds,
			cost.UploadBytes, cost.DownloadBytes, cost.MemoryBytes, cost.EnergyHours,
		} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		if out.Completed {
			if out.Reason != DropNone || out.DeadlineDiff != 0 {
				return false
			}
			if cost.TotalSeconds > deadline+1e-9 {
				return false
			}
		} else {
			if out.Reason == DropNone {
				return false
			}
			// A deadline dropout never consumes more than the deadline.
			if out.Reason == DropDeadline && cost.TotalSeconds > deadline+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: a more aggressive technique never increases the estimated
// total round time relative to TechNone for the same resources (all
// actions trade accuracy for speed; none slow the round down except
// quantization's small compute overhead, which its comm savings dominate
// on any cellular link).
func TestEstimateMonotoneQuick(t *testing.T) {
	pop, err := NewPopulation(PopulationConfig{
		Clients: 32, Scenario: trace.ScenarioDynamic, Seed: 78,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := WorkSpec{RefFLOPsPerSample: 22e9, RefParams: 21_800_000, Samples: 60, Epochs: 2}
	f := func(clientRaw, stepRaw uint8) bool {
		c := pop[int(clientRaw)%len(pop)]
		r := c.ResourcesAt(int(stepRaw) % 32)
		base := Estimate(w, r, opt.TechNone.Effects(), c.Compute.GFLOPS)
		for _, tech := range []opt.Technique{opt.TechPrune75, opt.TechPartial75} {
			e := Estimate(w, r, tech.Effects(), c.Compute.GFLOPS)
			if e.TotalSeconds > base.TotalSeconds {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeated execution drains the battery monotonically downward
// relative to an idle client with the same seed.
func TestBatteryDrainMonotone(t *testing.T) {
	mk := func() *Client {
		pop, err := NewPopulation(PopulationConfig{
			Clients: 1, Scenario: trace.ScenarioNone, Seed: 79,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pop[0]
	}
	busy, idle := mk(), mk()
	w := WorkSpec{RefFLOPsPerSample: 22e9, RefParams: 21_800_000, Samples: 100, Epochs: 5}
	for step := 0; step < 10; step++ {
		if _, err := Execute(busy, step, w, opt.TechNone, 1e9); err != nil {
			t.Fatal(err)
		}
		idle.ResourcesAt(step)
	}
	if busy.ResourcesAt(10).Battery > idle.ResourcesAt(10).Battery {
		t.Fatalf("training client's battery (%v) above idle client's (%v)",
			busy.ResourcesAt(10).Battery, idle.ResourcesAt(10).Battery)
	}
}

// Property: acceleration preserves battery — partial75 drains less energy
// than TechNone for the same work.
func TestAccelerationSavesEnergy(t *testing.T) {
	mk := func() *Client {
		pop, err := NewPopulation(PopulationConfig{
			Clients: 1, Scenario: trace.ScenarioNone, Seed: 80,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pop[0]
	}
	heavy, light := mk(), mk()
	w := WorkSpec{RefFLOPsPerSample: 22e9, RefParams: 21_800_000, Samples: 100, Epochs: 5}
	for step := 0; step < 8; step++ {
		if _, err := Execute(heavy, step, w, opt.TechNone, 1e9); err != nil {
			t.Fatal(err)
		}
		if _, err := Execute(light, step, w, opt.TechPartial75, 1e9); err != nil {
			t.Fatal(err)
		}
	}
	if light.ResourcesAt(8).Battery < heavy.ResourcesAt(8).Battery {
		t.Fatalf("accelerated client drained more battery (%v) than unaccelerated (%v)",
			light.ResourcesAt(8).Battery, heavy.ResourcesAt(8).Battery)
	}
}
