package device

import (
	"testing"

	"floatfl/internal/trace"
)

// clientStateEqual compares the observable state of two clients over a
// time horizon, bit-exactly.
func clientStateEqual(t *testing.T, a, b *Client, horizon int) {
	t.Helper()
	if a.ID != b.ID || a.NetKind != b.NetKind || a.Compute != b.Compute {
		t.Fatalf("client %d: static fields differ", a.ID)
	}
	for s := 0; s <= horizon; s++ {
		ra, rb := a.ResourcesAt(s), b.ResourcesAt(s)
		if ra != rb {
			t.Fatalf("client %d step %d: resources %+v vs %+v", a.ID, s, ra, rb)
		}
	}
}

// TestDeriveClientOrderIndependent: deriving device clients in any order
// yields the same state; they match nothing *sequential* (NewPopulation
// keeps its legacy stream for golden compatibility), but each derived
// client must be self-consistent across orders and re-derivations.
func TestDeriveClientOrderIndependent(t *testing.T) {
	cfg := PopulationConfig{Clients: 20, Scenario: trace.ScenarioDynamic, Seed: 11}
	// Derivation order must not matter: derive 13 after 2 vs before 2.
	a13 := DeriveClient(cfg, 13)
	_ = DeriveClient(cfg, 2)
	b13 := DeriveClient(cfg, 13)
	clientStateEqual(t, a13, b13, 50)
}

// TestProviderEvictionReplaysDrains is the heart of the lazy device
// contract: a client that trained (drained battery), was evicted, and is
// re-derived must be bit-identical to one that stayed resident the whole
// time.
func TestProviderEvictionReplaysDrains(t *testing.T) {
	cfg := PopulationConfig{Clients: 40, Scenario: trace.ScenarioDynamic, Seed: 7}

	// Reference: a big-cache provider where client 5 is never evicted.
	ref, err := NewProvider(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Thrashing: capacity 1, so touching any other client evicts 5.
	tiny, err := NewProvider(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}

	drain := func(p *Provider, step int) {
		c := p.Client(5)
		c.Avail.Available(step)
		c.Avail.RecordUseAmount(0.12)
	}
	for step := 0; step < 6; step++ {
		drain(ref, step)
		drain(tiny, step)
		// Evict client 5 from the tiny provider between every touch.
		tiny.Client(17 + step)
	}
	if evs := tiny.Stats().Evictions; evs == 0 {
		t.Fatal("tiny cache never evicted; test exercises nothing")
	}
	clientStateEqual(t, ref.Client(5), tiny.Client(5), 30)
}

// TestProviderPinBlocksEviction: a pinned (in-round) client survives
// arbitrary churn and stays the same instance.
func TestProviderPinBlocksEviction(t *testing.T) {
	p, err := NewProvider(PopulationConfig{Clients: 100, Seed: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Acquire(42)
	for id := 0; id < 100; id++ {
		p.Client(id)
	}
	if got := p.Client(42); got != c {
		t.Fatal("pinned client was evicted and re-derived mid-round")
	}
	p.Release(42)
	if got, bound := p.Stats().Resident, 3+1; got > bound {
		t.Fatalf("resident %d after release, want ≤ %d", got, bound)
	}
}

// TestMaterializeMatchesProvider: the eager adapter agrees with on-demand
// derivation, including replayed drain history.
func TestMaterializeMatchesProvider(t *testing.T) {
	cfg := PopulationConfig{Clients: 10, Scenario: trace.ScenarioStatic, Seed: 5}
	p, err := NewProvider(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	c3 := p.Client(3)
	c3.Avail.Available(2)
	c3.Avail.RecordUseAmount(0.2)
	for id := 0; id < 10; id++ { // churn 3 out
		p.Client(id)
	}
	all := p.Materialize()
	if len(all) != 10 {
		t.Fatalf("materialized %d clients, want 10", len(all))
	}
	clientStateEqual(t, all[3], p.Client(3), 25)
}
