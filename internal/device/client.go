// Package device simulates the client side of cross-device FL: each client
// owns a compute profile, a cellular bandwidth trace, an energy-driven
// availability trace, and an interference process, and the cost model maps
// (workload, resources, acceleration technique) to training latency,
// communication latency, memory footprint, energy use, and — when a
// deadline, memory cap, or battery is exceeded — a dropout with its cause.
// This package plays the role FedScale's device simulator plays for the
// paper, extended (as FLOAT extends FedScale) with dynamic per-round
// resource availability.
package device

import (
	"fmt"
	"math/rand"

	"floatfl/internal/trace"
)

// Client is one simulated device in the federation.
type Client struct {
	ID      int
	Compute trace.ComputeProfile
	NetKind trace.NetKind
	Net     *trace.BandwidthTrace
	Avail   *trace.AvailabilityTrace
	Interf  *trace.Interference
}

// Resources is the snapshot of what a client can devote to FL at a given
// round: availability fractions from the interference process, the raw
// bandwidth sample, and the battery level.
type Resources struct {
	Available bool
	// CPUFrac, MemFrac, NetFrac are the fractions of each resource left
	// for FL training (interference-adjusted), in [0,1].
	CPUFrac, MemFrac, NetFrac float64
	// BandwidthMbps is the raw downlink bandwidth sample.
	BandwidthMbps float64
	// Battery in [0,1].
	Battery float64
}

// ResourcesAt samples the client's resource state at round t.
func (c *Client) ResourcesAt(t int) Resources {
	cpu, mem, net := c.Interf.At(t)
	return Resources{
		Available:     c.Avail.Available(t),
		CPUFrac:       cpu,
		MemFrac:       mem,
		NetFrac:       net,
		BandwidthMbps: c.Net.At(t),
		Battery:       c.Avail.BatteryAt(t),
	}
}

// PopulationConfig controls client population synthesis.
type PopulationConfig struct {
	Clients  int
	Scenario trace.Scenario
	// FiveGShare is the fraction of clients on 5G (default 0.3).
	FiveGShare float64
	Seed       int64
}

// NewPopulation builds a heterogeneous client population. Every stochastic
// stream is seeded from cfg.Seed so populations are reproducible.
func NewPopulation(cfg PopulationConfig) ([]*Client, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("device: population needs positive client count, got %d", cfg.Clients)
	}
	share := cfg.FiveGShare
	if share <= 0 {
		share = 0.3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*Client, cfg.Clients)
	for i := range out {
		kind := trace.Net4G
		if rng.Float64() < share {
			kind = trace.Net5G
		}
		out[i] = &Client{
			ID:      i,
			Compute: trace.SampleComputeProfile(rng),
			NetKind: kind,
			Net:     trace.NewBandwidthTrace(kind, rng.Int63()),
			Avail:   trace.NewAvailabilityTrace(trace.AvailabilityConfig{Seed: rng.Int63()}),
			Interf:  trace.NewInterference(cfg.Scenario, rng.Int63()),
		}
	}
	return out, nil
}
