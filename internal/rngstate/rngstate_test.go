package rngstate

import (
	"math/rand"
	"testing"
)

// TestStreamIdentity pins the wrapper's core contract: a rand.Rand built
// on a Source produces exactly the stream of one built on rand.NewSource
// with the same seed, across every drawing method the repo uses. The
// engines' committed goldens depend on this.
func TestStreamIdentity(t *testing.T) {
	want := rand.New(rand.NewSource(42))
	got := rand.New(New(42))
	for i := 0; i < 2000; i++ {
		switch i % 6 {
		case 0:
			if w, g := want.Float64(), got.Float64(); w != g {
				t.Fatalf("Float64 #%d: got %v want %v", i, g, w)
			}
		case 1:
			if w, g := want.Intn(17), got.Intn(17); w != g {
				t.Fatalf("Intn #%d: got %d want %d", i, g, w)
			}
		case 2:
			if w, g := want.Int63(), got.Int63(); w != g {
				t.Fatalf("Int63 #%d: got %d want %d", i, g, w)
			}
		case 3:
			if w, g := want.Uint64(), got.Uint64(); w != g {
				t.Fatalf("Uint64 #%d: got %d want %d", i, g, w)
			}
		case 4:
			if w, g := want.NormFloat64(), got.NormFloat64(); w != g {
				t.Fatalf("NormFloat64 #%d: got %v want %v", i, g, w)
			}
		case 5:
			w := want.Perm(9)
			g := got.Perm(9)
			for j := range w {
				if w[j] != g[j] {
					t.Fatalf("Perm #%d: got %v want %v", i, g, w)
				}
			}
		}
	}
}

// TestSeekTo proves restore-by-discard: capture Pos mid-stream, drain a
// fresh Source to that position, and require the continuations to match
// value for value.
func TestSeekTo(t *testing.T) {
	for _, burn := range []int{0, 1, 7, 100, 1777} {
		src := New(7)
		r := rand.New(src)
		for i := 0; i < burn; i++ {
			r.Float64()
		}
		pos := src.Pos()

		restored := New(7)
		restored.SeekTo(pos)
		if restored.Pos() != pos {
			t.Fatalf("burn=%d: Pos after SeekTo = %d, want %d", burn, restored.Pos(), pos)
		}
		r2 := rand.New(restored)
		for i := 0; i < 500; i++ {
			if w, g := r.Float64(), r2.Float64(); w != g {
				t.Fatalf("burn=%d draw %d: got %v want %v", burn, i, g, w)
			}
		}
	}
}

// TestPosCountsEveryEntryPoint verifies Int63 and Uint64 each advance the
// position by exactly one — the invariant SeekTo's discard loop relies on.
func TestPosCountsEveryEntryPoint(t *testing.T) {
	s := New(3)
	if s.Pos() != 0 {
		t.Fatalf("fresh Pos = %d, want 0", s.Pos())
	}
	s.Int63()
	s.Uint64()
	s.Int63()
	if s.Pos() != 3 {
		t.Fatalf("Pos = %d after 3 draws, want 3", s.Pos())
	}
	s.Seed(3)
	if s.Pos() != 0 {
		t.Fatalf("Pos = %d after reseed, want 0", s.Pos())
	}
}

// TestInt63MatchesUint64Discard pins that discarding with Uint64 lands on
// the same state even when the original stream was drawn via Int63 — the
// two entry points advance the same underlying sequence.
func TestInt63MatchesUint64Discard(t *testing.T) {
	src := New(11)
	for i := 0; i < 123; i++ {
		src.Int63()
	}
	next := src.Int63()

	re := New(11)
	re.SeekTo(123)
	if got := re.Int63(); got != next {
		t.Fatalf("after SeekTo(123): got %d want %d", got, next)
	}
}
