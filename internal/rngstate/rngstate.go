// Package rngstate provides a position-counting math/rand source so RNG
// streams can be checkpointed and restored bit-identically.
//
// Every seeded stream in the repo bottoms out in rand.NewSource(seed): a
// pure function of (seed, draws-so-far). Source wraps such a source and
// counts draws, which makes the stream position serializable as a single
// uint64; restoring is reseeding and discarding that many draws. Wrapping
// does not change the values produced — Source forwards to the underlying
// generator verbatim, and it implements rand.Source64 exactly like the
// runtime's own source, so rand.Rand takes the same fast paths and all
// committed goldens keep their bytes.
package rngstate

import "math/rand"

// Source is a rand.Source64 that counts how many values have been drawn.
// It is not safe for concurrent use, matching math/rand sources; all the
// engines draw only from their single-threaded dispatch/collect passes.
type Source struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

// New returns a counting source seeded with seed, producing the exact
// stream of rand.NewSource(seed).
func New(seed int64) *Source {
	return &Source{seed: seed, src: newSource64(seed)}
}

// newSource64 centralizes the Source64 assertion: rand.NewSource's
// concrete type has implemented Source64 since Go 1.8, and the engines
// depend on the 64-bit path for stream identity with their pre-wrapper
// goldens.
func newSource64(seed int64) rand.Source64 {
	return rand.NewSource(seed).(rand.Source64)
}

// Int63 implements rand.Source. The underlying generator advances one
// step per call regardless of which method is used, so both entry points
// count a single draw.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count with the stream.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// Pos returns the stream position: the number of values drawn since the
// last (re)seed. Together with the seed it identifies the stream state.
func (s *Source) Pos() uint64 { return s.draws }

// SeekTo rewinds the source to its seed and discards draws values, leaving
// the stream at exactly the position a fresh Source would reach after that
// many draws. Seeking is O(draws); checkpoints store positions, not
// generator internals, so the format stays independent of math/rand's
// unexported state.
func (s *Source) SeekTo(draws uint64) {
	s.src.Seed(s.seed)
	s.draws = draws
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
}
