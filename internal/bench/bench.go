// Package bench loads and compares BENCH_*.json benchmark artifacts
// (schema floatfl-bench/v1, written by `go test -run NONE -bench-out`).
// Compare backs the CI perf ratchet: a fresh artifact is diffed against
// the committed baseline and any metric past its tolerance fails the
// build instead of silently drifting.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Schema is the artifact schema identifier this package understands.
const Schema = "floatfl-bench/v1"

// Record is one benchmark measurement in the artifact.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Artifact is the BENCH_*.json payload.
type Artifact struct {
	Schema       string             `json:"schema"`
	GoVersion    string             `json:"go_version"`
	GOOS         string             `json:"goos"`
	GOARCH       string             `json:"goarch"`
	NumCPU       int                `json:"num_cpu"`
	Benchmarks   []Record           `json:"benchmarks"`
	SpeedupVsRef map[string]float64 `json:"speedup_vs_ref"`
}

// Load parses and validates one artifact.
func Load(r io.Reader) (*Artifact, error) {
	var a Artifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("bench: parse artifact: %w", err)
	}
	if a.Schema != Schema {
		return nil, fmt.Errorf("bench: schema %q, want %q", a.Schema, Schema)
	}
	if len(a.Benchmarks) == 0 {
		return nil, fmt.Errorf("bench: artifact has no benchmarks")
	}
	return &a, nil
}

// LoadFile loads an artifact from disk.
func LoadFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// Tolerance bounds how much a metric may regress before Compare flags it.
// Wall time is inherently noisy on shared CI machines, so its default is
// generous; allocation counts are deterministic, so theirs is tight.
type Tolerance struct {
	// TimeRatio is the max allowed new/old ns_per_op (<=0 defaults to 3).
	TimeRatio float64
	// AllocRatio is the max allowed new/old allocs_per_op (<=0 defaults
	// to 1.25). A baseline of zero allocs must stay at zero.
	AllocRatio float64
}

func (t Tolerance) withDefaults() Tolerance {
	if t.TimeRatio <= 0 {
		t.TimeRatio = 3
	}
	if t.AllocRatio <= 0 {
		t.AllocRatio = 1.25
	}
	return t
}

// Regression is one tolerance violation found by Compare.
type Regression struct {
	// Bench is the benchmark name; Metric is "ns_per_op",
	// "allocs_per_op", or "missing" (the baseline benchmark vanished from
	// the new artifact).
	Bench  string
	Metric string
	// Old and New are the measured values; Limit is the threshold New had
	// to stay under. All zero for Metric "missing".
	Old, New, Limit float64
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline, missing from new artifact", r.Bench)
	}
	return fmt.Sprintf("%s: %s %.6g -> %.6g (limit %.6g)", r.Bench, r.Metric, r.Old, r.New, r.Limit)
}

// Compare checks every baseline benchmark against the new artifact and
// returns the tolerance violations, sorted by benchmark name. Benchmarks
// that exist only in the new artifact are additions, not regressions.
func Compare(baseline, fresh *Artifact, tol Tolerance) []Regression {
	tol = tol.withDefaults()
	byName := make(map[string]Record, len(fresh.Benchmarks))
	for _, r := range fresh.Benchmarks {
		byName[r.Name] = r
	}
	var regs []Regression
	for _, old := range baseline.Benchmarks {
		cur, ok := byName[old.Name]
		if !ok {
			regs = append(regs, Regression{Bench: old.Name, Metric: "missing"})
			continue
		}
		if old.NsPerOp > 0 {
			if limit := old.NsPerOp * tol.TimeRatio; cur.NsPerOp > limit {
				regs = append(regs, Regression{
					Bench: old.Name, Metric: "ns_per_op",
					Old: old.NsPerOp, New: cur.NsPerOp, Limit: limit,
				})
			}
		}
		allocLimit := float64(old.AllocsPerOp) * tol.AllocRatio
		if float64(cur.AllocsPerOp) > allocLimit {
			regs = append(regs, Regression{
				Bench: old.Name, Metric: "allocs_per_op",
				Old: float64(old.AllocsPerOp), New: float64(cur.AllocsPerOp), Limit: allocLimit,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Bench != regs[j].Bench {
			return regs[i].Bench < regs[j].Bench
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

// FprintComparison renders the full per-benchmark comparison (all
// metrics, not just violations) followed by any regressions.
func FprintComparison(w io.Writer, baseline, fresh *Artifact, regs []Regression) {
	byName := make(map[string]Record, len(fresh.Benchmarks))
	for _, r := range fresh.Benchmarks {
		byName[r.Name] = r
	}
	fmt.Fprintf(w, "%-32s %14s %14s %8s %10s %10s\n",
		"benchmark", "old ns/op", "new ns/op", "ratio", "old allocs", "new allocs")
	for _, old := range baseline.Benchmarks {
		cur, ok := byName[old.Name]
		if !ok {
			fmt.Fprintf(w, "%-32s %14.0f %14s\n", old.Name, old.NsPerOp, "(missing)")
			continue
		}
		ratio := 0.0
		if old.NsPerOp > 0 {
			ratio = cur.NsPerOp / old.NsPerOp
		}
		fmt.Fprintf(w, "%-32s %14.0f %14.0f %7.2fx %10d %10d\n",
			old.Name, old.NsPerOp, cur.NsPerOp, ratio, old.AllocsPerOp, cur.AllocsPerOp)
	}
	if len(regs) == 0 {
		fmt.Fprintln(w, "\nno regressions")
		return
	}
	fmt.Fprintf(w, "\n%d regression(s):\n", len(regs))
	for _, r := range regs {
		fmt.Fprintf(w, "  %s\n", r)
	}
}
