package bench

import (
	"strings"
	"testing"
)

func artifact(records ...Record) *Artifact {
	return &Artifact{Schema: Schema, Benchmarks: records}
}

func TestLoadValidates(t *testing.T) {
	cases := map[string]string{
		"not json":   "nope",
		"bad schema": `{"schema":"other/v1","benchmarks":[{"name":"a"}]}`,
		"empty":      `{"schema":"floatfl-bench/v1","benchmarks":[]}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	good := `{"schema":"floatfl-bench/v1","benchmarks":[{"name":"a","ns_per_op":10,"allocs_per_op":2}]}`
	a, err := Load(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Benchmarks) != 1 || a.Benchmarks[0].NsPerOp != 10 {
		t.Fatalf("artifact = %+v", a)
	}
}

func TestCompareWithinToleranceIsClean(t *testing.T) {
	baseline := artifact(
		Record{Name: "round", NsPerOp: 100, AllocsPerOp: 100},
		Record{Name: "kernel", NsPerOp: 10, AllocsPerOp: 0},
	)
	fresh := artifact(
		Record{Name: "round", NsPerOp: 250, AllocsPerOp: 110}, // 2.5x time, 1.1x allocs
		Record{Name: "kernel", NsPerOp: 12, AllocsPerOp: 0},
		Record{Name: "brand_new", NsPerOp: 1, AllocsPerOp: 9}, // additions are fine
	)
	if regs := Compare(baseline, fresh, Tolerance{}); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	baseline := artifact(
		Record{Name: "slow", NsPerOp: 100, AllocsPerOp: 100},
		Record{Name: "leaky", NsPerOp: 100, AllocsPerOp: 100},
		Record{Name: "zero_alloc", NsPerOp: 100, AllocsPerOp: 0},
		Record{Name: "gone", NsPerOp: 100, AllocsPerOp: 0},
	)
	fresh := artifact(
		Record{Name: "slow", NsPerOp: 301, AllocsPerOp: 100},     // > 3x time
		Record{Name: "leaky", NsPerOp: 100, AllocsPerOp: 126},    // > 1.25x allocs
		Record{Name: "zero_alloc", NsPerOp: 100, AllocsPerOp: 1}, // zero baseline must stay zero
	)
	regs := Compare(baseline, fresh, Tolerance{})
	if len(regs) != 4 {
		t.Fatalf("regressions = %v, want 4", regs)
	}
	byKey := map[string]string{}
	for _, r := range regs {
		byKey[r.Bench] = r.Metric
	}
	want := map[string]string{
		"slow": "ns_per_op", "leaky": "allocs_per_op",
		"zero_alloc": "allocs_per_op", "gone": "missing",
	}
	for bench, metric := range want {
		if byKey[bench] != metric {
			t.Errorf("%s: metric = %q, want %q", bench, byKey[bench], metric)
		}
	}
}

func TestCompareCustomTolerance(t *testing.T) {
	baseline := artifact(Record{Name: "a", NsPerOp: 100, AllocsPerOp: 10})
	fresh := artifact(Record{Name: "a", NsPerOp: 140, AllocsPerOp: 10})
	if regs := Compare(baseline, fresh, Tolerance{TimeRatio: 1.2}); len(regs) != 1 {
		t.Fatalf("tight tolerance: regs = %v, want 1", regs)
	}
	if regs := Compare(baseline, fresh, Tolerance{TimeRatio: 1.5}); len(regs) != 0 {
		t.Fatalf("loose tolerance: regs = %v, want none", regs)
	}
}
