// Package report post-processes the JSONL training logs emitted by the fl
// engines (fl.JSONLLogger) into the summaries the paper's artifact derives
// from its `<dataset>_logging` files: per-round participation curves,
// per-technique outcome tallies, dropout-cause breakdowns, per-client
// participation histograms, and resource totals. It is the analysis half
// of the logging pipeline, used by the floatreport CLI and by tests that
// validate the logs' integrity.
package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"floatfl/internal/fl"
)

// Summary is the aggregate view of one training log.
type Summary struct {
	ClientRounds int
	Completed    int
	Dropped      int

	// ByTechnique maps technique name to (success, failure) counts.
	ByTechnique map[string]Outcomes
	// ByReason maps dropout reason to count.
	ByReason map[string]int

	// PerClient maps client ID to its participation record.
	PerClient map[int]Outcomes

	// Rounds is the per-round summary series in order of appearance.
	Rounds []fl.RoundSummaryLog

	// Totals across every client-round record.
	ComputeHours   float64
	CommHours      float64
	UploadGB       float64
	DownloadGB     float64
	MeanAccGain    float64
	accGainSamples int
}

// Outcomes is a success/failure pair.
type Outcomes struct {
	Success int
	Failure int
}

// Total returns Success + Failure.
func (o Outcomes) Total() int { return o.Success + o.Failure }

// Parse reads a JSONL training log and builds the summary. Unknown record
// types are skipped (forward compatibility); malformed lines are errors.
func Parse(r io.Reader) (*Summary, error) {
	s := &Summary{
		ByTechnique: make(map[string]Outcomes),
		ByReason:    make(map[string]int),
		PerClient:   make(map[int]Outcomes),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var env struct {
			Type string          `json:"type"`
			Data json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(line, &env); err != nil {
			return nil, fmt.Errorf("report: line %d: %w", lineNo, err)
		}
		switch env.Type {
		case "client_round":
			var rec fl.ClientRoundLog
			if err := json.Unmarshal(env.Data, &rec); err != nil {
				return nil, fmt.Errorf("report: line %d: %w", lineNo, err)
			}
			s.ingestClientRound(rec)
		case "round_summary":
			var rec fl.RoundSummaryLog
			if err := json.Unmarshal(env.Data, &rec); err != nil {
				return nil, fmt.Errorf("report: line %d: %w", lineNo, err)
			}
			s.Rounds = append(s.Rounds, rec)
		default:
			// Skip unknown record types.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("report: reading log: %w", err)
	}
	if s.accGainSamples > 0 {
		s.MeanAccGain /= float64(s.accGainSamples)
	}
	return s, nil
}

func (s *Summary) ingestClientRound(rec fl.ClientRoundLog) {
	s.ClientRounds++
	tech := s.ByTechnique[rec.Technique]
	client := s.PerClient[rec.ClientID]
	if rec.Completed {
		s.Completed++
		tech.Success++
		client.Success++
		s.MeanAccGain += rec.AccImprove
		s.accGainSamples++
	} else {
		s.Dropped++
		tech.Failure++
		client.Failure++
		if rec.Reason != "" {
			s.ByReason[rec.Reason]++
		}
	}
	s.ByTechnique[rec.Technique] = tech
	s.PerClient[rec.ClientID] = client
	s.ComputeHours += rec.ComputeSeconds / 3600
	s.CommHours += rec.CommSeconds / 3600
	s.UploadGB += rec.UploadBytes / 1e9
	s.DownloadGB += rec.DownloadBytes / 1e9
}

// DropRate returns dropped / total client-rounds.
func (s *Summary) DropRate() float64 {
	if s.ClientRounds == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(s.ClientRounds)
}

// TechniqueNames returns the observed techniques sorted by total usage
// (descending), ties broken alphabetically.
func (s *Summary) TechniqueNames() []string {
	names := make([]string, 0, len(s.ByTechnique))
	for name := range s.ByTechnique {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ti, tj := s.ByTechnique[names[i]].Total(), s.ByTechnique[names[j]].Total()
		if ti != tj {
			return ti > tj
		}
		return names[i] < names[j]
	})
	return names
}

// NeverCompleted returns the IDs of clients that were selected but never
// completed a round, sorted ascending.
func (s *Summary) NeverCompleted() []int {
	var out []int
	for id, o := range s.PerClient {
		if o.Success == 0 && o.Failure > 0 {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// ParticipationTrend returns per-round completion fractions from the
// round summaries (empty if none were logged).
func (s *Summary) ParticipationTrend() []float64 {
	out := make([]float64, 0, len(s.Rounds))
	for _, r := range s.Rounds {
		if r.Selected == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, float64(r.Completed)/float64(r.Selected))
	}
	return out
}

// Fprint renders the summary as human-readable text.
func (s *Summary) Fprint(w io.Writer) {
	fmt.Fprintf(w, "client-rounds: %d   completed: %d   dropped: %d (%.1f%%)\n",
		s.ClientRounds, s.Completed, s.Dropped, s.DropRate()*100)
	if len(s.ByReason) > 0 {
		fmt.Fprintln(w, "dropout causes:")
		reasons := make([]string, 0, len(s.ByReason))
		for r := range s.ByReason {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Fprintf(w, "  %-12s %d\n", r, s.ByReason[r])
		}
	}
	fmt.Fprintln(w, "per-technique outcomes:")
	for _, name := range s.TechniqueNames() {
		o := s.ByTechnique[name]
		fmt.Fprintf(w, "  %-10s success %5d   failure %5d\n", name, o.Success, o.Failure)
	}
	fmt.Fprintf(w, "resources: compute %.2f h   comm %.2f h   upload %.2f GB   download %.2f GB\n",
		s.ComputeHours, s.CommHours, s.UploadGB, s.DownloadGB)
	fmt.Fprintf(w, "mean accuracy gain per completed round: %+.4f\n", s.MeanAccGain)
	if never := s.NeverCompleted(); len(never) > 0 {
		fmt.Fprintf(w, "clients never completing: %v\n", never)
	}
}
