package report

import (
	"bytes"
	"strings"
	"testing"

	"floatfl/internal/obs"
)

func traceFixture() []obs.Span {
	return []obs.Span{
		{T: 0, Dur: 0.1, Kind: "select", Round: 0, Client: -1},
		{T: 0.1, Dur: 0.05, Kind: "decide", Round: 0, Client: -1},
		{T: 0.15, Dur: 10, Kind: "train", Round: 0, Client: 3, Note: "quant8"},
		{T: 10.15, Dur: 2, Kind: "comm", Round: 0, Client: 3},
		{T: 0.15, Dur: 25, Kind: "train", Round: 0, Client: 7, Note: "none"},
		{T: 25.15, Dur: 5, Kind: "comm", Round: 0, Client: 7},
		{T: 31, Dur: 0, Kind: "drop", Round: 0, Client: 9, Note: "deadline"},
		{T: 31, Dur: 0.2, Kind: "aggregate", Round: 0, Client: -1},
		{T: 40, Dur: 0, Kind: "lease_expiry", Round: 1, Client: 4},
	}
}

func TestSummarizeTrace(t *testing.T) {
	ts := SummarizeTrace(traceFixture())
	if ts.Spans != 9 {
		t.Fatalf("Spans = %d, want 9", ts.Spans)
	}
	if len(ts.Phases) == 0 || ts.Phases[0].Kind != "train" {
		t.Fatalf("dominant phase = %+v, want train first", ts.Phases)
	}
	if ts.Phases[0].Seconds != 35 || ts.Phases[0].Count != 2 {
		t.Fatalf("train phase = %+v, want 35s over 2 spans", ts.Phases[0])
	}
	if len(ts.SlowestClients) != 2 || ts.SlowestClients[0].Client != 7 {
		t.Fatalf("SlowestClients = %+v, want client 7 first", ts.SlowestClients)
	}
	if ts.SlowestClients[0].Seconds != 30 {
		t.Fatalf("client 7 busy = %v, want 30", ts.SlowestClients[0].Seconds)
	}
	if len(ts.Events) != 2 || ts.Events[0].Kind != "drop" || ts.Events[1].Kind != "lease_expiry" {
		t.Fatalf("Events = %+v, want [drop lease_expiry]", ts.Events)
	}
}

func TestParseTraceRoundTrip(t *testing.T) {
	tr := obs.NewTracer()
	for _, s := range traceFixture() {
		tr.Emit(s)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	ts, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Spans != 9 {
		t.Fatalf("Spans = %d, want 9", ts.Spans)
	}
	var out strings.Builder
	ts.Fprint(&out)
	for _, want := range []string{"phase time breakdown", "train", "slowest clients", "event timeline", "(deadline)"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("Fprint output missing %q:\n%s", want, out.String())
		}
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	if _, err := ParseTrace(strings.NewReader("{\"t\":0}\nnot json\n")); err == nil {
		t.Fatal("want error on malformed trace line")
	}
}
