package report

import (
	"fmt"
	"io"
	"sort"

	"floatfl/internal/obs"
)

// TraceSummary is the aggregate view of one JSONL phase trace
// (obs.Tracer output, written by floatsim/floatbench -trace-out or the
// aggregator's tracer): where the virtual time went per phase, which
// clients were slowest, and the timeline of noteworthy events (drops,
// lease expiries, round-timer fires, stale discards).
type TraceSummary struct {
	Spans int
	// Phases is the total duration per span kind, sorted by descending
	// total (ties by name) so the dominant phase leads.
	Phases []PhaseTotal
	// SlowestClients ranks clients by summed train+comm span duration,
	// descending, capped at ten entries.
	SlowestClients []ClientTotal
	// Events is every zero-duration incident span (drop, discard,
	// lease_expiry, round_timer, register) in emission order.
	Events []obs.Span
}

// PhaseTotal is one phase's share of the trace.
type PhaseTotal struct {
	Kind    string
	Count   int
	Seconds float64
}

// ClientTotal is one client's summed busy time.
type ClientTotal struct {
	Client  int
	Spans   int
	Seconds float64
}

// eventKinds are the incident span kinds surfaced on the timeline.
var eventKinds = map[string]bool{
	"drop":         true,
	"discard":      true,
	"lease_expiry": true,
	"round_timer":  true,
	"register":     true,
}

// ParseTrace reads a JSONL span trace and builds the summary.
func ParseTrace(r io.Reader) (*TraceSummary, error) {
	spans, err := obs.ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	return SummarizeTrace(spans), nil
}

// SummarizeTrace builds the summary from in-memory spans.
func SummarizeTrace(spans []obs.Span) *TraceSummary {
	ts := &TraceSummary{Spans: len(spans)}
	phase := make(map[string]*PhaseTotal)
	client := make(map[int]*ClientTotal)
	for _, s := range spans {
		p := phase[s.Kind]
		if p == nil {
			p = &PhaseTotal{Kind: s.Kind}
			phase[s.Kind] = p
		}
		p.Count++
		p.Seconds += s.Dur
		if s.Client >= 0 && (s.Kind == "train" || s.Kind == "comm") {
			c := client[s.Client]
			if c == nil {
				c = &ClientTotal{Client: s.Client}
				client[s.Client] = c
			}
			c.Spans++
			c.Seconds += s.Dur
		}
		if eventKinds[s.Kind] {
			ts.Events = append(ts.Events, s)
		}
	}
	// Collect-then-sort: map order never reaches the output.
	for _, p := range phase {
		ts.Phases = append(ts.Phases, *p)
	}
	sort.Slice(ts.Phases, func(i, j int) bool {
		if ts.Phases[i].Seconds != ts.Phases[j].Seconds {
			return ts.Phases[i].Seconds > ts.Phases[j].Seconds
		}
		return ts.Phases[i].Kind < ts.Phases[j].Kind
	})
	for _, c := range client {
		ts.SlowestClients = append(ts.SlowestClients, *c)
	}
	sort.Slice(ts.SlowestClients, func(i, j int) bool {
		if ts.SlowestClients[i].Seconds != ts.SlowestClients[j].Seconds {
			return ts.SlowestClients[i].Seconds > ts.SlowestClients[j].Seconds
		}
		return ts.SlowestClients[i].Client < ts.SlowestClients[j].Client
	})
	if len(ts.SlowestClients) > 10 {
		ts.SlowestClients = ts.SlowestClients[:10]
	}
	return ts
}

// Fprint renders the trace summary as aligned text.
func (ts *TraceSummary) Fprint(w io.Writer) {
	fmt.Fprintf(w, "trace: %d spans\n\n", ts.Spans)

	fmt.Fprintln(w, "phase time breakdown:")
	var total float64
	for _, p := range ts.Phases {
		total += p.Seconds
	}
	for _, p := range ts.Phases {
		pct := 0.0
		if total > 0 {
			pct = p.Seconds / total * 100
		}
		fmt.Fprintf(w, "  %-12s %8d spans  %12.2fs  %5.1f%%\n", p.Kind, p.Count, p.Seconds, pct)
	}

	if len(ts.SlowestClients) > 0 {
		fmt.Fprintln(w, "\nslowest clients (train+comm):")
		for _, c := range ts.SlowestClients {
			fmt.Fprintf(w, "  client %4d  %6d spans  %12.2fs\n", c.Client, c.Spans, c.Seconds)
		}
	}

	if len(ts.Events) > 0 {
		fmt.Fprintln(w, "\nevent timeline:")
		for _, e := range ts.Events {
			note := e.Note
			if note != "" {
				note = " (" + note + ")"
			}
			fmt.Fprintf(w, "  t=%10.2fs  round %4d  client %4d  %s%s\n",
				e.T, e.Round, e.Client, e.Kind, note)
		}
	}
}
