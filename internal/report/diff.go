package report

import (
	"fmt"
	"io"
	"sort"

	"floatfl/internal/obs"
)

// TimelineRun is a timeline JSONL export reconstructed into absolute
// per-round series values: the delta encoding is carried forward so every
// retained round has the full value map, which makes two runs directly
// comparable round by round.
type TimelineRun struct {
	Header obs.TimelineHeader
	// Rounds lists the retained rounds in export order (strictly
	// increasing by construction).
	Rounds []int
	// Clock maps round → simulated/serving clock at that sample.
	Clock map[int]float64
	// ByRound maps round → absolute value of every series known at that
	// round.
	ByRound map[int]map[string]float64
}

// LoadTimelineRun parses a timeline export (obs.Timeline.WriteJSONL) and
// resolves the delta encoding into absolute per-round tables.
func LoadTimelineRun(r io.Reader) (*TimelineRun, error) {
	hdr, samples, err := obs.ReadTimeline(r)
	if err != nil {
		return nil, err
	}
	run := &TimelineRun{
		Header:  hdr,
		Clock:   make(map[int]float64, len(samples)),
		ByRound: make(map[int]map[string]float64, len(samples)),
	}
	cur := make(map[string]float64)
	for _, s := range samples {
		for k, v := range s.Values {
			cur[k] = v
		}
		row := make(map[string]float64, len(cur))
		for k, v := range cur {
			row[k] = v
		}
		run.Rounds = append(run.Rounds, s.Round)
		run.Clock[s.Round] = s.Clock
		run.ByRound[s.Round] = row
	}
	return run, nil
}

// SeriesDiff reports the first round at which one series disagrees
// between two runs.
type SeriesDiff struct {
	Name  string
	Round int
	// A and B are the absolute values at Round; HasA/HasB are false when
	// the series does not exist in that run at that round (presence
	// itself is the divergence).
	A, B       float64
	HasA, HasB bool
}

// Delta returns B-A when both sides are present, 0 otherwise.
func (d SeriesDiff) Delta() float64 {
	if d.HasA && d.HasB {
		return d.B - d.A
	}
	return 0
}

// TimelineDiff is the comparison of two timeline exports.
type TimelineDiff struct {
	RoundsA, RoundsB int
	// RoundMismatch is set when the retained round sequences themselves
	// differ (different lengths or values) — the runs cannot be fully
	// aligned; the common prefix is still compared.
	RoundMismatch bool
	// Series holds one entry per divergent series, sorted by name.
	Series []SeriesDiff
}

// Identical reports whether the two exports describe the same run.
func (d *TimelineDiff) Identical() bool {
	return !d.RoundMismatch && len(d.Series) == 0
}

// FirstDivergentRound returns the earliest round at which any series
// diverges, or -1 when the runs are identical round-for-round.
func (d *TimelineDiff) FirstDivergentRound() int {
	first := -1
	for _, s := range d.Series {
		if first == -1 || s.Round < first {
			first = s.Round
		}
	}
	return first
}

// DiffTimelines aligns two reconstructed runs round by round and returns
// the first divergence per series. The clock is compared as the
// pseudo-series "(clock)".
func DiffTimelines(a, b *TimelineRun) *TimelineDiff {
	d := &TimelineDiff{RoundsA: len(a.Rounds), RoundsB: len(b.Rounds)}
	common := len(a.Rounds)
	if len(b.Rounds) < common {
		common = len(b.Rounds)
	}
	for i := 0; i < common; i++ {
		if a.Rounds[i] != b.Rounds[i] {
			d.RoundMismatch = true
			common = i
			break
		}
	}
	if len(a.Rounds) != len(b.Rounds) {
		d.RoundMismatch = true
	}

	// Union of series names across every compared round, sorted so the
	// report (and the walk below) is deterministic.
	nameSet := make(map[string]bool)
	for i := 0; i < common; i++ {
		for k := range a.ByRound[a.Rounds[i]] {
			nameSet[k] = true
		}
		for k := range b.ByRound[b.Rounds[i]] {
			nameSet[k] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for k := range nameSet {
		names = append(names, k)
	}
	sort.Strings(names)

	for i := 0; i < common; i++ {
		round := a.Rounds[i]
		if a.Clock[round] != b.Clock[round] {
			d.Series = append(d.Series, SeriesDiff{
				Name: "(clock)", Round: round,
				A: a.Clock[round], B: b.Clock[round], HasA: true, HasB: true,
			})
			break
		}
	}
	for _, name := range names {
		for i := 0; i < common; i++ {
			round := a.Rounds[i]
			va, oka := a.ByRound[round][name]
			vb, okb := b.ByRound[round][name]
			if oka != okb || va != vb {
				d.Series = append(d.Series, SeriesDiff{
					Name: name, Round: round,
					A: va, B: vb, HasA: oka, HasB: okb,
				})
				break
			}
		}
	}
	sort.Slice(d.Series, func(i, j int) bool { return d.Series[i].Name < d.Series[j].Name })
	return d
}

// Fprint renders the diff. labelA/labelB identify the two inputs (file
// names in the CLI).
func (d *TimelineDiff) Fprint(w io.Writer, labelA, labelB string) {
	fmt.Fprintf(w, "timeline diff: A=%s (%d rounds)  B=%s (%d rounds)\n",
		labelA, d.RoundsA, labelB, d.RoundsB)
	if d.Identical() {
		fmt.Fprintln(w, "  identical")
		return
	}
	if d.RoundMismatch {
		fmt.Fprintln(w, "  retained round sequences differ; comparing common prefix")
	}
	if first := d.FirstDivergentRound(); first >= 0 {
		fmt.Fprintf(w, "  first divergent round: %d\n", first)
	}
	if len(d.Series) > 0 {
		fmt.Fprintf(w, "  %-40s %8s %14s %14s %14s\n", "series", "round", "A", "B", "delta")
		for _, s := range d.Series {
			av, bv := fmtSeriesVal(s.A, s.HasA), fmtSeriesVal(s.B, s.HasB)
			fmt.Fprintf(w, "  %-40s %8d %14s %14s %14.6g\n", s.Name, s.Round, av, bv, s.Delta())
		}
	}
}

func fmtSeriesVal(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.6g", v)
}
