package report

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"floatfl/internal/obs"
)

// exportTimeline samples a scripted sequence of registry states into a
// fresh timeline and returns its JSONL export.
func exportTimeline(t *testing.T, rounds []map[string]float64) string {
	t.Helper()
	tl := obs.NewTimeline(nil, 16)
	for round, values := range rounds {
		extra := make([]obs.SeriesValue, 0, len(values))
		// Deterministic order not required for correctness (Sample builds a
		// map), but keep the fixture simple: one series per entry.
		for _, name := range sortedKeys(values) {
			extra = append(extra, obs.SeriesValue{Name: name, Value: values[name]})
		}
		tl.Sample(round, float64(round), extra...)
	}
	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestLoadTimelineRunCarriesDeltasForward(t *testing.T) {
	export := exportTimeline(t, []map[string]float64{
		{"acc": 0.1, "sel": 4},
		{"acc": 0.2, "sel": 4}, // sel unchanged → delta omits it
		{"acc": 0.3, "sel": 5},
	})
	run, err := LoadTimelineRun(strings.NewReader(export))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Rounds) != 3 {
		t.Fatalf("rounds = %v", run.Rounds)
	}
	// Round 1's absolute table must carry sel=4 forward even though the
	// delta-encoded sample omitted it.
	if got := run.ByRound[1]["sel"]; got != 4 {
		t.Fatalf("round 1 sel = %v, want 4 (carried forward)", got)
	}
	if got := run.ByRound[2]["sel"]; got != 5 {
		t.Fatalf("round 2 sel = %v, want 5", got)
	}
}

func TestDiffTimelinesIdentical(t *testing.T) {
	rounds := []map[string]float64{
		{"acc": 0.1, "sel": 4},
		{"acc": 0.2, "sel": 4},
	}
	a, err := LoadTimelineRun(strings.NewReader(exportTimeline(t, rounds)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadTimelineRun(strings.NewReader(exportTimeline(t, rounds)))
	if err != nil {
		t.Fatal(err)
	}
	d := DiffTimelines(a, b)
	if !d.Identical() {
		t.Fatalf("want identical, got %+v", d)
	}
	if d.FirstDivergentRound() != -1 {
		t.Fatalf("first divergent round = %d, want -1", d.FirstDivergentRound())
	}
	var out bytes.Buffer
	d.Fprint(&out, "a", "b")
	if !strings.Contains(out.String(), "identical") {
		t.Fatalf("render = %q", out.String())
	}
}

func TestDiffTimelinesReportsFirstDivergentRoundPerSeries(t *testing.T) {
	a, err := LoadTimelineRun(strings.NewReader(exportTimeline(t, []map[string]float64{
		{"acc": 0.1, "sel": 4},
		{"acc": 0.2, "sel": 4},
		{"acc": 0.3, "sel": 4},
	})))
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadTimelineRun(strings.NewReader(exportTimeline(t, []map[string]float64{
		{"acc": 0.1, "sel": 4},
		{"acc": 0.25, "sel": 4}, // acc diverges at round 1
		{"acc": 0.35, "sel": 6}, // sel diverges at round 2
	})))
	if err != nil {
		t.Fatal(err)
	}
	d := DiffTimelines(a, b)
	if d.Identical() {
		t.Fatal("want divergence")
	}
	if got := d.FirstDivergentRound(); got != 1 {
		t.Fatalf("first divergent round = %d, want 1", got)
	}
	byName := map[string]SeriesDiff{}
	for _, s := range d.Series {
		byName[s.Name] = s
	}
	if s := byName["acc"]; s.Round != 1 || s.A != 0.2 || s.B != 0.25 {
		t.Fatalf("acc diff = %+v", s)
	}
	if s := byName["sel"]; s.Round != 2 || s.A != 4 || s.B != 6 {
		t.Fatalf("sel diff = %+v", s)
	}
	var out bytes.Buffer
	d.Fprint(&out, "a", "b")
	if !strings.Contains(out.String(), "first divergent round: 1") {
		t.Fatalf("render = %q", out.String())
	}
}

func TestDiffTimelinesSeriesPresenceAndLengthMismatch(t *testing.T) {
	a, err := LoadTimelineRun(strings.NewReader(exportTimeline(t, []map[string]float64{
		{"acc": 0.1, "only_a": 1},
		{"acc": 0.2, "only_a": 1},
	})))
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadTimelineRun(strings.NewReader(exportTimeline(t, []map[string]float64{
		{"acc": 0.1},
	})))
	if err != nil {
		t.Fatal(err)
	}
	d := DiffTimelines(a, b)
	if !d.RoundMismatch {
		t.Fatal("want RoundMismatch for different lengths")
	}
	found := false
	for _, s := range d.Series {
		if s.Name == "only_a" && s.HasA && !s.HasB && s.Round == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing presence divergence for only_a: %+v", d.Series)
	}
}
