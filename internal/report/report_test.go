package report

import (
	"bytes"
	"strings"
	"testing"

	"floatfl/internal/core"
	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/fl"
	"floatfl/internal/rl"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

// trainingLog runs a short FLOAT training and returns its JSONL log.
func trainingLog(t *testing.T) (*bytes.Buffer, *fl.Result) {
	t.Helper()
	fed, err := data.Generate("femnist", data.GenerateConfig{Clients: 20, Alpha: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: 20, Scenario: trace.ScenarioDynamic, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ctrl := core.New(core.Config{
		Agent:     rl.Config{Seed: 4, TotalRounds: 10},
		BatchSize: 16, Epochs: 1, ClientsPerRound: 8,
	})
	res, err := fl.RunSync(fed, pop, selection.NewRandom(4), ctrl, fl.Config{
		Arch: "resnet18", Rounds: 10, ClientsPerRound: 8,
		Epochs: 1, BatchSize: 16, LR: 0.1, DeadlinePercentile: 50,
		Seed: 5, Logger: fl.NewJSONLLogger(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &buf, res
}

func TestParseMatchesLedger(t *testing.T) {
	buf, res := trainingLog(t)
	sum, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Ledger
	if sum.ClientRounds != l.TotalRounds {
		t.Fatalf("client-rounds %d, ledger %d", sum.ClientRounds, l.TotalRounds)
	}
	if sum.Dropped != l.TotalDrops {
		t.Fatalf("dropped %d, ledger %d", sum.Dropped, l.TotalDrops)
	}
	if sum.Completed != l.TotalRounds-l.TotalDrops {
		t.Fatalf("completed %d", sum.Completed)
	}
	// Per-technique tallies must match the ledger exactly.
	for name, o := range sum.ByTechnique {
		found := false
		for tech, n := range l.TechSuccess {
			if tech.String() == name && n == o.Success {
				found = true
			}
		}
		if o.Success > 0 && !found {
			t.Fatalf("technique %s success=%d not in ledger", name, o.Success)
		}
	}
	if len(sum.Rounds) != 10 {
		t.Fatalf("round summaries %d, want 10", len(sum.Rounds))
	}
	if sum.ComputeHours <= 0 || sum.DownloadGB <= 0 {
		t.Fatalf("resource totals not accumulated: %+v", sum)
	}
}

func TestParseEmptyAndGarbage(t *testing.T) {
	sum, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if sum.ClientRounds != 0 || sum.DropRate() != 0 {
		t.Fatal("empty log should produce an empty summary")
	}
	if _, err := Parse(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	// Unknown record types are skipped.
	sum, err = Parse(strings.NewReader(`{"type":"future_thing","data":{}}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.ClientRounds != 0 {
		t.Fatal("unknown record type was counted")
	}
}

func TestParseMalformedData(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"type":"client_round","data":"nope"}` + "\n")); err == nil {
		t.Fatal("malformed client_round accepted")
	}
	if _, err := Parse(strings.NewReader(`{"type":"round_summary","data":[1]}` + "\n")); err == nil {
		t.Fatal("malformed round_summary accepted")
	}
}

func TestTechniqueNamesOrdering(t *testing.T) {
	s := &Summary{ByTechnique: map[string]Outcomes{
		"a": {Success: 1}, "b": {Success: 5}, "c": {Success: 1},
	}}
	names := s.TechniqueNames()
	if names[0] != "b" {
		t.Fatalf("most-used technique should sort first: %v", names)
	}
	if names[1] != "a" || names[2] != "c" {
		t.Fatalf("ties should break alphabetically: %v", names)
	}
}

func TestNeverCompleted(t *testing.T) {
	s := &Summary{PerClient: map[int]Outcomes{
		0: {Success: 2, Failure: 1},
		3: {Failure: 4},
		7: {Failure: 1},
	}}
	got := s.NeverCompleted()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("NeverCompleted = %v", got)
	}
}

func TestParticipationTrend(t *testing.T) {
	s := &Summary{Rounds: []fl.RoundSummaryLog{
		{Selected: 10, Completed: 5},
		{Selected: 10, Completed: 8},
		{Selected: 0, Completed: 0},
	}}
	trend := s.ParticipationTrend()
	if len(trend) != 3 || trend[0] != 0.5 || trend[1] != 0.8 || trend[2] != 0 {
		t.Fatalf("trend = %v", trend)
	}
}

func TestFprintRenders(t *testing.T) {
	buf, _ := trainingLog(t)
	sum, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sum.Fprint(&out)
	text := out.String()
	for _, want := range []string{"client-rounds:", "per-technique outcomes:", "resources:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}

func TestOutcomesTotal(t *testing.T) {
	if (Outcomes{Success: 2, Failure: 3}).Total() != 5 {
		t.Fatal("Total broken")
	}
}
