// Package backendtests is the cross-backend conformance suite for
// tensor.Backend implementations. Every registered backend must pass the
// same table: golden kernel values, shape edge cases (empty, 1×N, N×1,
// non-square), documented aliasing contracts, Softmax edge semantics, and
// shape-mismatch panics. A separate cross-backend pass compares each
// backend against "ref" on deterministic pseudo-random inputs under the
// tolerance policy below.
//
// Tolerance policy: ref is the bit-exactness oracle — goldens and the
// P=1≡P=8 determinism tests bind to its operation order. Other backends
// may reorder floating-point sums (tiling, unrolling, fusion), so they
// are held to agreement with ref within maxUlps last-place units or
// absTol absolute, whichever admits the value. Each backend individually
// must still be deterministic: the suite runs every kernel twice and
// requires bit-identical results.
package backendtests

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"floatfl/internal/tensor"
)

const (
	// maxUlps bounds the acceptable units-in-the-last-place distance
	// between a backend's result and ref's for reordered summations.
	maxUlps = 1024
	// absTol admits tiny absolute disagreement around zero, where ulp
	// distance is meaningless (crossing zero costs ~2^62 ulps).
	absTol = 1e-9
)

// ulpDiff returns the distance in representable float64 values between a
// and b, or MaxUint64 if either is NaN or they differ in sign.
func ulpDiff(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxUint64
	}
	if math.Signbit(a) != math.Signbit(b) {
		if a == b { // +0 vs -0
			return 0
		}
		return math.MaxUint64
	}
	ua, ub := math.Float64bits(a), math.Float64bits(b)
	if ua > ub {
		return ua - ub
	}
	return ub - ua
}

// close2 reports whether got agrees with want under the conformance
// tolerance policy. NaN agrees only with NaN; infinities must match
// exactly.
func close2(got, want float64) bool {
	if math.IsNaN(want) {
		return math.IsNaN(got)
	}
	if got == want {
		return true
	}
	if math.Abs(got-want) <= absTol {
		return true
	}
	return ulpDiff(got, want) <= maxUlps
}

func checkVec(t *testing.T, name string, got, want tensor.Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if !close2(got[i], want[i]) {
			t.Errorf("%s: [%d] = %v, want %v (ulp %d)", name, i, got[i], want[i], ulpDiff(got[i], want[i]))
		}
	}
}

func checkScalar(t *testing.T, name string, got, want float64) {
	t.Helper()
	if !close2(got, want) {
		t.Errorf("%s: got %v, want %v (ulp %d)", name, got, want, ulpDiff(got, want))
	}
}

// Run exercises the full conformance table against b. Call it from a
// per-backend subtest; it fans out into named sub-subtests.
func Run(t *testing.T, b tensor.Backend) {
	t.Run("VectorKernels", func(t *testing.T) { runVectorKernels(t, b) })
	t.Run("MatVecKernels", func(t *testing.T) { runMatVecKernels(t, b) })
	t.Run("MatMulKernels", func(t *testing.T) { runMatMulKernels(t, b) })
	t.Run("Softmax", func(t *testing.T) { runSoftmax(t, b) })
	t.Run("SoftmaxXent", func(t *testing.T) { runSoftmaxXent(t, b) })
	t.Run("Aliasing", func(t *testing.T) { runAliasing(t, b) })
	t.Run("ShapePanics", func(t *testing.T) { runShapePanics(t, b) })
	t.Run("SelfDeterminism", func(t *testing.T) { runSelfDeterminism(t, b) })
	t.Run("CrossBackendVsRef", func(t *testing.T) { runCrossBackend(t, b) })
}

func runVectorKernels(t *testing.T, b tensor.Backend) {
	t.Run("Dot", func(t *testing.T) {
		cases := []struct {
			a, b tensor.Vector
			want float64
		}{
			{tensor.Vector{}, tensor.Vector{}, 0},
			{tensor.Vector{3}, tensor.Vector{-2}, -6},
			{tensor.Vector{1, 2, 3}, tensor.Vector{4, 5, 6}, 32},
			// Length 7 exercises unrolled-loop fringes (7 = 4+2+1).
			{tensor.Vector{1, -1, 2, -2, 3, -3, 4}, tensor.Vector{1, 1, 1, 1, 1, 1, 1}, 4},
		}
		for _, tc := range cases {
			checkScalar(t, "Dot", b.Dot(tc.a, tc.b), tc.want)
		}
	})
	t.Run("AddScaled", func(t *testing.T) {
		dst := tensor.Vector{1, 2, 3}
		b.AddScaled(dst, 2, tensor.Vector{10, 20, 30})
		checkVec(t, "AddScaled", dst, tensor.Vector{21, 42, 63})
		empty := tensor.Vector{}
		b.AddScaled(empty, 5, tensor.Vector{}) // must not panic
	})
	t.Run("ScaledDiff", func(t *testing.T) {
		dst := tensor.NewVector(3)
		b.ScaledDiff(dst, 0.5, tensor.Vector{4, 8, 12}, tensor.Vector{2, 4, 6})
		checkVec(t, "ScaledDiff", dst, tensor.Vector{1, 2, 3})
	})
	t.Run("AddWeighted", func(t *testing.T) {
		dst := tensor.Vector{1, 1}
		b.AddWeighted(dst, []float64{2, -1}, []tensor.Vector{{1, 2}, {3, 4}})
		checkVec(t, "AddWeighted", dst, tensor.Vector{0, 1})
		b.AddWeighted(dst, nil, nil) // zero terms: no-op
		checkVec(t, "AddWeighted/empty", dst, tensor.Vector{0, 1})
	})
}

func runMatVecKernels(t *testing.T, b tensor.Backend) {
	// m = [[1 2 3], [4 5 6]]  (2×3, non-square)
	m := tensor.NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})

	t.Run("MatVec", func(t *testing.T) {
		dst := tensor.NewVector(2)
		b.MatVec(m, dst, tensor.Vector{1, 0, -1})
		checkVec(t, "MatVec", dst, tensor.Vector{-2, -2})
	})
	t.Run("MatVecT", func(t *testing.T) {
		dst := tensor.NewVector(3)
		b.MatVecT(m, dst, tensor.Vector{1, -1})
		checkVec(t, "MatVecT", dst, tensor.Vector{-3, -3, -3})
	})
	t.Run("AddOuterScaled", func(t *testing.T) {
		acc := tensor.NewMatrix(2, 3)
		copy(acc.Data, []float64{1, 1, 1, 1, 1, 1})
		b.AddOuterScaled(acc, 2, tensor.Vector{1, -1}, tensor.Vector{1, 2, 3})
		checkVec(t, "AddOuterScaled", acc.Data, tensor.Vector{3, 5, 7, -1, -3, -5})
	})
	t.Run("RowAndColumnVectors", func(t *testing.T) {
		// 1×N and N×1 shapes.
		row := tensor.NewMatrix(1, 4)
		copy(row.Data, []float64{1, 2, 3, 4})
		d1 := tensor.NewVector(1)
		b.MatVec(row, d1, tensor.Vector{1, 1, 1, 1})
		checkVec(t, "MatVec/1xN", d1, tensor.Vector{10})

		col := tensor.NewMatrix(4, 1)
		copy(col.Data, []float64{1, 2, 3, 4})
		d4 := tensor.NewVector(4)
		b.MatVec(col, d4, tensor.Vector{2})
		checkVec(t, "MatVec/Nx1", d4, tensor.Vector{2, 4, 6, 8})

		dT := tensor.NewVector(1)
		b.MatVecT(col, dT, tensor.Vector{1, 1, 1, 1})
		checkVec(t, "MatVecT/Nx1", dT, tensor.Vector{10})
	})
}

func runMatMulKernels(t *testing.T, b tensor.Backend) {
	// a = [[1 2], [3 4], [5 6]] (3×2); w = [[1 0], [0 1], [1 1]] (3×2).
	a := tensor.NewMatrix(3, 2)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	w := tensor.NewMatrix(3, 2)
	copy(w.Data, []float64{1, 0, 0, 1, 1, 1})

	t.Run("MatMulNT", func(t *testing.T) {
		// dst = a·wᵀ: 3×3.
		dst := tensor.NewMatrix(3, 3)
		b.MatMulNT(dst, a, w)
		checkVec(t, "MatMulNT", dst.Data, tensor.Vector{1, 2, 3, 3, 4, 7, 5, 6, 11})
	})
	t.Run("MatMulNN", func(t *testing.T) {
		// dst = a·m where m = [[1 2 0], [0 1 2]] (2×3); dst: 3×3.
		m := tensor.NewMatrix(2, 3)
		copy(m.Data, []float64{1, 2, 0, 0, 1, 2})
		dst := tensor.NewMatrix(3, 3)
		// Pre-fill to verify the kernel overwrites rather than accumulates.
		dst.Data[0] = 99
		b.MatMulNN(dst, a, m)
		checkVec(t, "MatMulNN", dst.Data, tensor.Vector{1, 4, 4, 3, 10, 8, 5, 16, 12})
	})
	t.Run("AddMatMulTN", func(t *testing.T) {
		// dst += aᵀ·w: 2×2 over shared dim 3.
		dst := tensor.NewMatrix(2, 2)
		copy(dst.Data, []float64{1, 0, 0, 1})
		b.AddMatMulTN(dst, a, w)
		// aᵀ·w = [[1+0+5, 0+3+5], [2+0+6, 0+4+6]] = [[6 8],[8 10]]
		checkVec(t, "AddMatMulTN", dst.Data, tensor.Vector{7, 8, 8, 11})
	})
	t.Run("DegenerateShapes", func(t *testing.T) {
		// 1×1 everywhere.
		one := tensor.NewMatrix(1, 1)
		one.Data[0] = 3
		two := tensor.NewMatrix(1, 1)
		two.Data[0] = -2
		dst := tensor.NewMatrix(1, 1)
		b.MatMulNT(dst, one, two)
		checkScalar(t, "MatMulNT/1x1", dst.Data[0], -6)
		b.MatMulNN(dst, one, two)
		checkScalar(t, "MatMulNN/1x1", dst.Data[0], -6)
		b.AddMatMulTN(dst, one, two)
		checkScalar(t, "AddMatMulTN/1x1", dst.Data[0], -12)
	})
}

func runSoftmax(t *testing.T, b tensor.Backend) {
	t.Run("Basic", func(t *testing.T) {
		dst := tensor.NewVector(3)
		b.Softmax(dst, tensor.Vector{0, 0, 0})
		checkVec(t, "Softmax/uniform", dst, tensor.Vector{1.0 / 3, 1.0 / 3, 1.0 / 3})

		b.Softmax(dst, tensor.Vector{1, 2, 3})
		sum := 0.0
		for _, p := range dst {
			sum += p
		}
		checkScalar(t, "Softmax/sum", sum, 1)
		if !(dst[0] < dst[1] && dst[1] < dst[2]) {
			t.Errorf("Softmax not monotone: %v", dst)
		}
	})
	t.Run("SingleElement", func(t *testing.T) {
		dst := tensor.NewVector(1)
		b.Softmax(dst, tensor.Vector{-123.5})
		checkVec(t, "Softmax/single", dst, tensor.Vector{1})
	})
	t.Run("Empty", func(t *testing.T) {
		b.Softmax(tensor.Vector{}, tensor.Vector{}) // must not panic
	})
	t.Run("LargeMagnitudes", func(t *testing.T) {
		// Without max-subtraction these overflow exp.
		dst := tensor.NewVector(2)
		b.Softmax(dst, tensor.Vector{1000, 1000})
		checkVec(t, "Softmax/large", dst, tensor.Vector{0.5, 0.5})
	})
	t.Run("AllNegInf", func(t *testing.T) {
		dst := tensor.NewVector(4)
		b.Softmax(dst, tensor.Vector{math.Inf(-1), math.Inf(-1), math.Inf(-1), math.Inf(-1)})
		checkVec(t, "Softmax/allneginf", dst, tensor.Vector{0.25, 0.25, 0.25, 0.25})
	})
	t.Run("PartialNegInf", func(t *testing.T) {
		dst := tensor.NewVector(3)
		b.Softmax(dst, tensor.Vector{math.Inf(-1), 0, math.Inf(-1)})
		checkVec(t, "Softmax/partialneginf", dst, tensor.Vector{0, 1, 0})
	})
	t.Run("PosInf", func(t *testing.T) {
		dst := tensor.NewVector(3)
		b.Softmax(dst, tensor.Vector{0, math.Inf(1), 0})
		checkVec(t, "Softmax/posinf", dst, tensor.Vector{0, 1, 0})
		b.Softmax(dst, tensor.Vector{math.Inf(1), 5, math.Inf(1)})
		checkVec(t, "Softmax/posinf-tie", dst, tensor.Vector{0.5, 0, 0.5})
	})
	t.Run("NaNPropagates", func(t *testing.T) {
		dst := tensor.NewVector(3)
		b.Softmax(dst, tensor.Vector{0, math.NaN(), 1})
		checkVec(t, "Softmax/nan", dst, tensor.Vector{math.NaN(), math.NaN(), math.NaN()})
		// NaN mixed with either infinity must still propagate, not hit the
		// uniform or winner-takes-all branches.
		b.Softmax(dst, tensor.Vector{math.Inf(-1), math.NaN(), math.Inf(-1)})
		checkVec(t, "Softmax/nan+neginf", dst, tensor.Vector{math.NaN(), math.NaN(), math.NaN()})
		b.Softmax(dst, tensor.Vector{math.Inf(1), math.NaN(), 0})
		checkVec(t, "Softmax/nan+posinf", dst, tensor.Vector{math.NaN(), math.NaN(), math.NaN()})
	})
}

func runSoftmaxXent(t *testing.T, b tensor.Backend) {
	t.Run("Uniform", func(t *testing.T) {
		n := 4
		probs, grad := tensor.NewVector(n), tensor.NewVector(n)
		loss := b.SoftmaxXent(probs, grad, tensor.Vector{0, 0, 0, 0}, 2)
		checkScalar(t, "SoftmaxXent/loss", loss, math.Log(4))
		checkVec(t, "SoftmaxXent/probs", probs, tensor.Vector{0.25, 0.25, 0.25, 0.25})
		checkVec(t, "SoftmaxXent/grad", grad, tensor.Vector{0.25, 0.25, -0.75, 0.25})
	})
	t.Run("MatchesUnfused", func(t *testing.T) {
		logits := tensor.Vector{0.3, -1.2, 2.5, 0.01, -0.4}
		ref := tensor.Default()
		wantP, wantG := tensor.NewVector(5), tensor.NewVector(5)
		wantLoss := ref.SoftmaxXent(wantP, wantG, logits, 3)

		probs, grad := tensor.NewVector(5), tensor.NewVector(5)
		loss := b.SoftmaxXent(probs, grad, logits.Clone(), 3)
		checkScalar(t, "SoftmaxXent/fused loss", loss, wantLoss)
		checkVec(t, "SoftmaxXent/fused probs", probs, wantP)
		checkVec(t, "SoftmaxXent/fused grad", grad, wantG)
	})
	t.Run("VanishingProbability", func(t *testing.T) {
		// label probability underflows to 0: loss must clamp at -log(1e-12),
		// not return +Inf.
		probs, grad := tensor.NewVector(2), tensor.NewVector(2)
		loss := b.SoftmaxXent(probs, grad, tensor.Vector{0, 10000}, 0)
		checkScalar(t, "SoftmaxXent/clamped loss", loss, -math.Log(1e-12))
		if math.IsInf(loss, 1) {
			t.Errorf("SoftmaxXent: loss overflowed to +Inf")
		}
	})
	t.Run("AllNegInf", func(t *testing.T) {
		// Degenerate logits take the uniform branch; the fused kernel must
		// agree with ref's composition of Softmax + copy + subtract.
		n := 3
		probs, grad := tensor.NewVector(n), tensor.NewVector(n)
		inf := math.Inf(-1)
		loss := b.SoftmaxXent(probs, grad, tensor.Vector{inf, inf, inf}, 1)
		checkScalar(t, "SoftmaxXent/allneginf loss", loss, -math.Log(1.0/3))
		checkVec(t, "SoftmaxXent/allneginf probs", probs, tensor.Vector{1.0 / 3, 1.0 / 3, 1.0 / 3})
		checkVec(t, "SoftmaxXent/allneginf grad", grad, tensor.Vector{1.0 / 3, 1.0/3 - 1, 1.0 / 3})
	})
}

func runAliasing(t *testing.T, b tensor.Backend) {
	t.Run("SoftmaxDstAliasesSrc", func(t *testing.T) {
		v := tensor.Vector{1, 2, 3}
		want := tensor.NewVector(3)
		b.Softmax(want, v.Clone())
		b.Softmax(v, v)
		checkVec(t, "Softmax/dst==src", v, want)
	})
	t.Run("SoftmaxXentProbsAliasLogits", func(t *testing.T) {
		logits := tensor.Vector{0.5, -0.5, 1.5}
		wantP, wantG := tensor.NewVector(3), tensor.NewVector(3)
		wantLoss := b.SoftmaxXent(wantP, wantG, logits.Clone(), 0)

		v := logits.Clone()
		grad := tensor.NewVector(3)
		loss := b.SoftmaxXent(v, grad, v, 0)
		checkScalar(t, "SoftmaxXent/probs==logits loss", loss, wantLoss)
		checkVec(t, "SoftmaxXent/probs==logits probs", v, wantP)
		checkVec(t, "SoftmaxXent/probs==logits grad", grad, wantG)
	})
	t.Run("ScaledDiffDstAliasesA", func(t *testing.T) {
		a := tensor.Vector{4, 8}
		b.ScaledDiff(a, 0.5, a, tensor.Vector{2, 4})
		checkVec(t, "ScaledDiff/dst==a", a, tensor.Vector{1, 2})
	})
	t.Run("ScaledDiffDstAliasesB", func(t *testing.T) {
		bb := tensor.Vector{2, 4}
		b.ScaledDiff(bb, 0.5, tensor.Vector{4, 8}, bb)
		checkVec(t, "ScaledDiff/dst==b", bb, tensor.Vector{1, 2})
	})
}

func runShapePanics(t *testing.T, b tensor.Backend) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s: shape mismatch did not panic", name)
			} else if msg, ok := r.(string); ok && !strings.Contains(msg, "tensor:") {
				t.Errorf("%s: panic %q lacks tensor: prefix", name, msg)
			}
		}()
		f()
	}
	m23 := tensor.NewMatrix(2, 3)
	m22 := tensor.NewMatrix(2, 2)
	mustPanic("MatMulNT", func() { b.MatMulNT(m22, m23, m22) })
	mustPanic("MatMulNN", func() { b.MatMulNN(m22, m23, m23) })
	mustPanic("AddMatMulTN", func() { b.AddMatMulTN(m23, m23, m22) })
	mustPanic("SoftmaxXent/len", func() {
		b.SoftmaxXent(tensor.NewVector(2), tensor.NewVector(3), tensor.NewVector(3), 0)
	})
	mustPanic("SoftmaxXent/label", func() {
		b.SoftmaxXent(tensor.NewVector(3), tensor.NewVector(3), tensor.NewVector(3), 3)
	})
}

// runSelfDeterminism runs each kernel twice on identical inputs and
// requires bit-identical output — every backend must be deterministic for
// a fixed binary, whatever its summation order.
func runSelfDeterminism(t *testing.T, b tensor.Backend) {
	rng := rand.New(rand.NewSource(7))
	const m, k, n = 5, 7, 3
	a := randMatrix(rng, m, k)
	bt := randMatrix(rng, n, k)
	run := func() tensor.Vector {
		dst := tensor.NewMatrix(m, n)
		b.MatMulNT(dst, a, bt)
		x := randVecFrom(rand.New(rand.NewSource(9)), k)
		mv := tensor.NewVector(m)
		b.MatVec(a, mv, x)
		sm := tensor.NewVector(k)
		b.Softmax(sm, x)
		out := append(tensor.Vector{}, dst.Data...)
		out = append(out, mv...)
		out = append(out, sm...)
		return out
	}
	first, second := run(), run()
	for i := range first {
		if math.Float64bits(first[i]) != math.Float64bits(second[i]) {
			t.Fatalf("backend %q is nondeterministic at output %d: %v vs %v",
				b.Name(), i, first[i], second[i])
		}
	}
}

// runCrossBackend compares b against ref on deterministic pseudo-random
// inputs over sizes chosen to hit tiled/unrolled fringes (odd and even,
// below and above block sizes).
func runCrossBackend(t *testing.T, b tensor.Backend) {
	ref := tensor.Default()
	if b.Name() == ref.Name() {
		t.Skip("ref is the oracle")
	}
	rng := rand.New(rand.NewSource(1))
	sizes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 2, 2}, {3, 5, 2}, {4, 4, 4}, {5, 7, 3},
		{8, 8, 8}, {9, 13, 7}, {16, 17, 15}, {1, 32, 1}, {31, 1, 31},
	}
	for _, sz := range sizes {
		a := randMatrix(rng, sz.m, sz.k)
		w := randMatrix(rng, sz.n, sz.k)
		x := randVecFrom(rng, sz.k)
		y := randVecFrom(rng, sz.m)

		// MatVec / MatVecT / AddOuterScaled.
		wantV, gotV := tensor.NewVector(sz.m), tensor.NewVector(sz.m)
		ref.MatVec(a, wantV, x)
		b.MatVec(a, gotV, x)
		checkVec(t, "cross/MatVec", gotV, wantV)

		wantT, gotT := tensor.NewVector(sz.k), tensor.NewVector(sz.k)
		ref.MatVecT(a, wantT, y)
		b.MatVecT(a, gotT, y)
		checkVec(t, "cross/MatVecT", gotT, wantT)

		wantM, gotM := a.Clone(), a.Clone()
		ref.AddOuterScaled(wantM, 0.3, y, x)
		b.AddOuterScaled(gotM, 0.3, y, x)
		checkVec(t, "cross/AddOuterScaled", gotM.Data, wantM.Data)

		// GEMM shapes.
		wantNT, gotNT := tensor.NewMatrix(sz.m, sz.n), tensor.NewMatrix(sz.m, sz.n)
		ref.MatMulNT(wantNT, a, w)
		b.MatMulNT(gotNT, a, w)
		checkVec(t, "cross/MatMulNT", gotNT.Data, wantNT.Data)

		bm := randMatrix(rng, sz.k, sz.n)
		wantNN, gotNN := tensor.NewMatrix(sz.m, sz.n), tensor.NewMatrix(sz.m, sz.n)
		ref.MatMulNN(wantNN, a, bm)
		b.MatMulNN(gotNN, a, bm)
		checkVec(t, "cross/MatMulNN", gotNN.Data, wantNN.Data)

		am := randMatrix(rng, sz.k, sz.m)
		wantTN, gotTN := tensor.NewMatrix(sz.m, sz.n), tensor.NewMatrix(sz.m, sz.n)
		ref.AddMatMulTN(wantTN, am, bm)
		b.AddMatMulTN(gotTN, am, bm)
		checkVec(t, "cross/AddMatMulTN", gotTN.Data, wantTN.Data)

		// Softmax + fused xent on the same logits.
		logits := randVecFrom(rng, sz.k)
		for i := range logits {
			logits[i] *= 5 // spread to make exp() nontrivial
		}
		wantSM, gotSM := tensor.NewVector(sz.k), tensor.NewVector(sz.k)
		ref.Softmax(wantSM, logits)
		b.Softmax(gotSM, logits)
		checkVec(t, "cross/Softmax", gotSM, wantSM)

		label := sz.k / 2
		wp, wg := tensor.NewVector(sz.k), tensor.NewVector(sz.k)
		gp, gg := tensor.NewVector(sz.k), tensor.NewVector(sz.k)
		wantLoss := ref.SoftmaxXent(wp, wg, logits, label)
		gotLoss := b.SoftmaxXent(gp, gg, logits, label)
		checkScalar(t, "cross/SoftmaxXent loss", gotLoss, wantLoss)
		checkVec(t, "cross/SoftmaxXent probs", gp, wp)
		checkVec(t, "cross/SoftmaxXent grad", gg, wg)

		// Vector kernels.
		checkScalar(t, "cross/Dot", b.Dot(x, x), ref.Dot(x, x))
	}
}

func randMatrix(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randVecFrom(rng *rand.Rand, n int) tensor.Vector {
	v := tensor.NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
