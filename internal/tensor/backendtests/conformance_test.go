package backendtests

import (
	"testing"

	"floatfl/internal/tensor"
)

// TestConformance runs the full suite against every registered backend.
// Registering a new backend makes it show up here automatically.
func TestConformance(t *testing.T) {
	names := tensor.Backends()
	if len(names) < 2 {
		t.Fatalf("expected at least ref and fast registered, got %v", names)
	}
	for _, name := range names {
		b, err := tensor.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) { Run(t, b) })
	}
}

// TestRegistry pins the registry's behavior: sorted names, lookup errors
// naming the known set, and Default being ref.
func TestRegistry(t *testing.T) {
	names := tensor.Backends()
	want := []string{"fast", "ref"}
	if len(names) != len(want) {
		t.Fatalf("Backends() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Backends() = %v, want %v", names, want)
		}
	}
	if got := tensor.Default().Name(); got != "ref" {
		t.Fatalf("Default().Name() = %q, want ref", got)
	}
	if _, err := tensor.Lookup("no-such-backend"); err == nil {
		t.Fatal("Lookup of unknown backend did not error")
	}
}

// TestKernelsDoNotAllocate pins the "no kernel allocates" contract for
// every backend on representative hot-path shapes.
func TestKernelsDoNotAllocate(t *testing.T) {
	const m, k, n = 16, 32, 10
	a := tensor.NewMatrix(m, k)
	w := tensor.NewMatrix(n, k)
	dstNT := tensor.NewMatrix(m, n)
	x := tensor.NewVector(k)
	y := tensor.NewVector(m)
	logits := tensor.NewVector(n)
	probs, grad := tensor.NewVector(n), tensor.NewVector(n)
	for i := range a.Data {
		a.Data[i] = float64(i%7) - 3
	}
	for i := range w.Data {
		w.Data[i] = float64(i%5) - 2
	}
	for i := range x {
		x[i] = float64(i%3) - 1
	}
	for i := range logits {
		logits[i] = float64(i) / 10
	}

	for _, name := range tensor.Backends() {
		b, err := tensor.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			allocs := testing.AllocsPerRun(10, func() {
				b.MatVec(a, y, x)
				b.MatVecT(a, x, y)
				b.AddOuterScaled(a, 0.01, y, x)
				b.MatMulNT(dstNT, a, w)
				b.Softmax(probs, logits)
				b.SoftmaxXent(probs, grad, logits, 3)
				_ = b.Dot(x, x)
			})
			if allocs != 0 {
				t.Errorf("backend %q kernels allocate: %.1f allocs/run", name, allocs)
			}
		})
	}
}
