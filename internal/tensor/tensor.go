// Package tensor provides the dense numerical kernels used by the
// neural-network substrate: vectors, row-major matrices, and the handful of
// BLAS-like operations (axpy, dot, matmul, softmax) that model training
// needs. Everything is float64 and allocation-conscious: the hot paths
// (MatVec, AddScaled) write into caller-provided destinations so the
// training loop can reuse buffers across steps.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense 1-D array of float64.
type Vector []float64

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Zero sets every element of v to zero.
func (v Vector) Zero() { v.Fill(0) }

// Dot returns the inner product of v and w. It panics if the lengths differ,
// because a length mismatch is always a programming error in this codebase.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// AddScaled performs v += alpha*w (the classic axpy).
func (v Vector) AddScaled(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale performs v *= alpha.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// AddScaledDiff performs v += alpha*(a - b), the fused kernel behind the
// FedProx proximal gradient (grad += mu·(w - anchor)) on flat buffers.
func (v Vector) AddScaledDiff(alpha float64, a, b Vector) {
	if len(v) != len(a) || len(v) != len(b) {
		panic(fmt.Sprintf("tensor: AddScaledDiff length mismatch %d vs %d vs %d",
			len(v), len(a), len(b)))
	}
	for i := range v {
		v[i] += alpha * (a[i] - b[i])
	}
}

// ScaledDiff writes dst = alpha*(a - b) without allocating — the one-pass
// delta kernel (delta = after - before) of the FL hot path. dst may alias
// a or b.
func ScaledDiff(dst Vector, alpha float64, a, b Vector) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic(fmt.Sprintf("tensor: ScaledDiff length mismatch %d vs %d vs %d",
			len(dst), len(a), len(b)))
	}
	for i := range dst {
		dst[i] = alpha * (a[i] - b[i])
	}
}

// AddWeighted performs dst += Σ_k weights[k]·vecs[k], accumulating directly
// into dst (typically a model's flat parameter buffer). The terms are
// applied in slice order as a sequence of axpys, so the floating-point
// result is independent of everything but the given ordering.
func AddWeighted(dst Vector, weights []float64, vecs []Vector) {
	if len(weights) != len(vecs) {
		panic(fmt.Sprintf("tensor: AddWeighted %d weights for %d vectors",
			len(weights), len(vecs)))
	}
	for k, v := range vecs {
		dst.AddScaled(weights[k], v)
	}
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// MaxAbs returns the largest absolute element of v, or 0 for an empty vector.
func (v Vector) MaxAbs() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Argmax returns the index of the largest element. Ties resolve to the
// lowest index. It returns -1 for an empty vector.
func (v Vector) Argmax() int {
	if len(v) == 0 {
		return -1
	}
	best, bestIdx := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, bestIdx = v[i], i
		}
	}
	return bestIdx
}

// Softmax writes the softmax of src into dst (which may alias src).
// It uses the max-subtraction trick for numerical stability.
//
// Edge-case semantics, shared by every backend and pinned by regression
// tests:
//
//   - empty src: no-op.
//   - single element: dst[0] = 1 exactly, whatever the input (including
//     -Inf: a one-way choice has probability one).
//   - a row whose maximum is -Inf (every element -Inf): the uniform
//     distribution 1/n — the limit of softmax as all logits sink together,
//     and the only answer that keeps a downstream cross-entropy finite.
//   - any NaN input: every output is NaN (deliberate propagation; a NaN
//     logit is a training bug the aggregator's finite-ness guard must see,
//     not a value to launder into a probability).
//   - a row containing +Inf: the +Inf entries split all the mass evenly
//     and every finite entry gets 0 — the limit distribution, instead of
//     the exp(Inf-Inf)=NaN the naive loop would produce.
func Softmax(dst, src Vector) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Softmax length mismatch %d vs %d", len(dst), len(src)))
	}
	if len(src) == 0 {
		return
	}
	max := src[0]
	for _, x := range src[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		// All-(-Inf) row: exp(-Inf - -Inf) would be NaN. Off the hot path
		// (the max scan resolved to -Inf), so scan for NaN to preserve
		// propagation, then fall back to uniform.
		for _, x := range src {
			if math.IsNaN(x) {
				dst.Fill(math.NaN())
				return
			}
		}
		dst.Fill(1 / float64(len(dst)))
		return
	}
	if math.IsInf(max, 1) {
		// +Inf logit(s): exp(+Inf - +Inf) would be NaN. Also off the hot
		// path; NaN still poisons the row, then the +Inf entries split the
		// mass (ties included) and finite entries get zero.
		winners := 0
		for _, x := range src {
			if math.IsNaN(x) {
				dst.Fill(math.NaN())
				return
			}
			if math.IsInf(x, 1) {
				winners++
			}
		}
		p := 1 / float64(winners)
		for i, x := range src {
			if math.IsInf(x, 1) {
				dst[i] = p
			} else {
				dst[i] = 0
			}
		}
		return
	}
	var sum float64
	for i, x := range src {
		e := math.Exp(x - max)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       Vector // len == Rows*Cols
}

// NewMatrix returns a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: NewVector(rows * cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, x float64) { m.Data[r*m.Cols+c] = x }

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) Vector { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// MatVec computes dst = m · x where x has length m.Cols and dst has length
// m.Rows. dst must not alias x.
func (m *Matrix) MatVec(dst, x Vector) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch m=%dx%d x=%d dst=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var s float64
		for c, w := range row {
			s += w * x[c]
		}
		dst[r] = s
	}
}

// MatVecT computes dst = mᵀ · x where x has length m.Rows and dst has length
// m.Cols. dst must not alias x.
func (m *Matrix) MatVecT(dst, x Vector) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVecT shape mismatch m=%dx%d x=%d dst=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	dst.Zero()
	for r := 0; r < m.Rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, w := range row {
			dst[c] += w * xr
		}
	}
}

// AddOuterScaled performs m += alpha * (a ⊗ b), the rank-1 update used by
// linear-layer backprop: a has length m.Rows, b has length m.Cols.
func (m *Matrix) AddOuterScaled(alpha float64, a, b Vector) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuterScaled shape mismatch m=%dx%d a=%d b=%d",
			m.Rows, m.Cols, len(a), len(b)))
	}
	for r := 0; r < m.Rows; r++ {
		ar := alpha * a[r]
		if ar == 0 {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c := range row {
			row[c] += ar * b[c]
		}
	}
}

// Clamp limits every element of v to the range [-limit, limit]. Gradient
// clipping keeps small-batch SGD stable on hard synthetic tasks.
func (v Vector) Clamp(limit float64) {
	for i, x := range v {
		if x > limit {
			v[i] = limit
		} else if x < -limit {
			v[i] = -limit
		}
	}
}
