package tensor

import "math"

// fastBackend is the optimized backend: register-blocked matrix kernels,
// a blocked/tiled GEMM for the batched training path, and a fused
// softmax+cross-entropy. It is deterministic (pure functions of its
// inputs, no randomness), but its reduction trees differ from ref's
// sequential loops, so results match ref only to rounding — the
// conformance suite bounds the divergence in ulps, and the fl parity test
// bounds its end-to-end effect on accuracy.
//
// The kernels stay portable Go: the unroll-by-4 independent accumulators
// break the sequential FP dependency chain (the scalar loop's latency
// bound), and the 2×2 register tiles in the GEMMs reuse each loaded
// element twice, which is where the matmul speedup comes from.
//
// fastBackend is stateless; the zero value is ready to use.
type fastBackend struct{}

func (fastBackend) Name() string  { return "fast" }
func (fastBackend) Batched() bool { return true }

// dot4 is the 4-way unrolled inner product both fast matrix kernels lean
// on: four independent accumulators, combined once at the end.
func dot4(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

func (fastBackend) Dot(a, b Vector) float64 {
	if len(a) != len(b) {
		a.Dot(b) // delegate for the canonical panic message
	}
	return dot4(a, b)
}

// AddScaled, ScaledDiff, and AddWeighted are single-pass streaming kernels
// with no reduction: the scalar loops are already memory-bound, so fast
// reuses ref's exact loops (and ordering).
func (fastBackend) AddScaled(dst Vector, alpha float64, w Vector) { dst.AddScaled(alpha, w) }
func (fastBackend) ScaledDiff(dst Vector, alpha float64, a, b Vector) {
	ScaledDiff(dst, alpha, a, b)
}
func (fastBackend) AddWeighted(dst Vector, weights []float64, vecs []Vector) {
	AddWeighted(dst, weights, vecs)
}

func (fastBackend) MatVec(m *Matrix, dst, x Vector) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		m.MatVec(dst, x) // delegate for the canonical panic message
	}
	for r := 0; r < m.Rows; r++ {
		dst[r] = dot4(m.Data[r*m.Cols:(r+1)*m.Cols], x)
	}
}

// MatVecT accumulates two source rows per pass so each dst element is
// loaded and stored half as often as in the scalar loop.
func (fastBackend) MatVecT(m *Matrix, dst, x Vector) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		m.MatVecT(dst, x)
	}
	dst.Zero()
	n := m.Cols
	r := 0
	for ; r+2 <= m.Rows; r += 2 {
		x0, x1 := x[r], x[r+1]
		if x0 == 0 && x1 == 0 {
			continue
		}
		row0 := m.Data[r*n : (r+1)*n]
		row1 := m.Data[(r+1)*n : (r+2)*n]
		for c := range dst {
			dst[c] += row0[c]*x0 + row1[c]*x1
		}
	}
	for ; r < m.Rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		row := m.Data[r*n : (r+1)*n]
		for c := range dst {
			dst[c] += row[c] * xr
		}
	}
}

// AddOuterScaled processes two rows of the rank-1 update per pass, halving
// the passes over b.
func (fastBackend) AddOuterScaled(m *Matrix, alpha float64, a, b Vector) {
	if len(a) != m.Rows || len(b) != m.Cols {
		m.AddOuterScaled(alpha, a, b)
	}
	n := m.Cols
	r := 0
	for ; r+2 <= m.Rows; r += 2 {
		a0, a1 := alpha*a[r], alpha*a[r+1]
		if a0 == 0 && a1 == 0 {
			continue
		}
		row0 := m.Data[r*n : (r+1)*n]
		row1 := m.Data[(r+1)*n : (r+2)*n]
		for c, bc := range b {
			row0[c] += a0 * bc
			row1[c] += a1 * bc
		}
	}
	for ; r < m.Rows; r++ {
		ar := alpha * a[r]
		if ar == 0 {
			continue
		}
		row := m.Data[r*n : (r+1)*n]
		for c, bc := range b {
			row[c] += ar * bc
		}
	}
}

// MatMulNT computes dst = a·bᵀ with 2×2 register tiles: two rows of a
// against two rows of b yield four accumulators per k-pass, so every
// loaded element feeds two multiplies. Both operands stream row-major —
// the cache-friendliest GEMM shape — and the fringe falls back to the
// unrolled dot.
func (fastBackend) MatMulNT(dst, a, b *Matrix) {
	checkMatMulNT(dst, a, b)
	k, n := a.Cols, dst.Cols
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		a0 := a.Data[i*k : (i+1)*k]
		a1 := a.Data[(i+1)*k : (i+2)*k]
		out0 := dst.Data[i*n : (i+1)*n]
		out1 := dst.Data[(i+1)*n : (i+2)*n]
		j := 0
		for ; j+2 <= b.Rows; j += 2 {
			b0 := b.Data[j*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			var c00, c01, c10, c11 float64
			for c := 0; c < k; c++ {
				av0, av1 := a0[c], a1[c]
				bv0, bv1 := b0[c], b1[c]
				c00 += av0 * bv0
				c01 += av0 * bv1
				c10 += av1 * bv0
				c11 += av1 * bv1
			}
			out0[j], out0[j+1] = c00, c01
			out1[j], out1[j+1] = c10, c11
		}
		for ; j < b.Rows; j++ {
			brow := b.Data[j*k : (j+1)*k]
			out0[j] = dot4(a0, brow)
			out1[j] = dot4(a1, brow)
		}
	}
	for ; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		out := dst.Data[i*n : (i+1)*n]
		for j := 0; j < b.Rows; j++ {
			out[j] = dot4(arow, b.Data[j*k:(j+1)*k])
		}
	}
}

// MatMulNN computes dst = a·b in i-k-j axpy order with two k-steps fused
// per pass over the output row, halving the dst traffic.
func (fastBackend) MatMulNN(dst, a, b *Matrix) {
	checkMatMulNN(dst, a, b)
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		out := dst.Data[i*n : (i+1)*n]
		for j := range out {
			out[j] = 0
		}
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		k := 0
		for ; k+2 <= len(arow); k += 2 {
			av0, av1 := arow[k], arow[k+1]
			if av0 == 0 && av1 == 0 {
				continue
			}
			b0 := b.Data[k*n : (k+1)*n]
			b1 := b.Data[(k+1)*n : (k+2)*n]
			for j := range out {
				out[j] += av0*b0[j] + av1*b1[j]
			}
		}
		for ; k < len(arow); k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				out[j] += av * bv
			}
		}
	}
}

// AddMatMulTN performs dst += aᵀ·b, fusing two shared rows per rank-1
// update so each dst row is revisited half as often.
func (fastBackend) AddMatMulTN(dst, a, b *Matrix) {
	checkAddMatMulTN(dst, a, b)
	n := b.Cols
	k := 0
	for ; k+2 <= a.Rows; k += 2 {
		ar0 := a.Data[k*a.Cols : (k+1)*a.Cols]
		ar1 := a.Data[(k+1)*a.Cols : (k+2)*a.Cols]
		br0 := b.Data[k*n : (k+1)*n]
		br1 := b.Data[(k+1)*n : (k+2)*n]
		for m := 0; m < dst.Rows; m++ {
			av0, av1 := ar0[m], ar1[m]
			if av0 == 0 && av1 == 0 {
				continue
			}
			out := dst.Data[m*n : (m+1)*n]
			for j := range out {
				out[j] += av0*br0[j] + av1*br1[j]
			}
		}
	}
	for ; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*n : (k+1)*n]
		for m, av := range arow {
			if av == 0 {
				continue
			}
			out := dst.Data[m*n : (m+1)*n]
			for j, bv := range brow {
				out[j] += av * bv
			}
		}
	}
}

// Softmax delegates to the reference kernel: math.Exp dominates its cost,
// so there is nothing to block or unroll, and sharing the loop keeps the
// edge-case semantics (all -Inf, NaN) identical across backends for free.
func (fastBackend) Softmax(dst, src Vector) { Softmax(dst, src) }

// SoftmaxXent is the fused kernel: one exp pass fills probs, and a single
// normalization pass writes probs and grad together — no intermediate copy
// pass like the unfused ref sequence. Degenerate rows (max of -Inf or NaN)
// delegate to ref so the documented edge semantics stay shared.
func (fastBackend) SoftmaxXent(probs, grad, logits Vector, label int) float64 {
	checkSoftmaxXent(probs, grad, logits, label)
	max := logits[0]
	for _, x := range logits[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, 0) || math.IsNaN(max) {
		// Degenerate rows (all -Inf, any +Inf, NaN max) take ref's unfused
		// path so the documented edge semantics stay shared.
		return refBackend{}.SoftmaxXent(probs, grad, logits, label)
	}
	var sum float64
	for i, x := range logits {
		e := math.Exp(x - max)
		probs[i] = e
		sum += e
	}
	inv := 1 / sum
	for i, e := range probs {
		p := e * inv
		probs[i] = p
		grad[i] = p
	}
	grad[label] -= 1
	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}
