package tensor

import "math"

// refBackend is the reference backend: the portable scalar loops this
// package started with, verbatim. Every kernel delegates to (or replicates
// operation-for-operation) the package-level functions, so switching code
// from direct kernel calls to Default()-backend calls changes no float
// anywhere — which is what lets the committed golden traces and the
// P=1≡P=8 determinism tests keep passing byte-identically across the
// backend split.
//
// refBackend is stateless; the zero value is ready to use.
type refBackend struct{}

func (refBackend) Name() string  { return "ref" }
func (refBackend) Batched() bool { return false }

func (refBackend) Dot(a, b Vector) float64                       { return a.Dot(b) }
func (refBackend) AddScaled(dst Vector, alpha float64, w Vector) { dst.AddScaled(alpha, w) }
func (refBackend) ScaledDiff(dst Vector, alpha float64, a, b Vector) {
	ScaledDiff(dst, alpha, a, b)
}
func (refBackend) AddWeighted(dst Vector, weights []float64, vecs []Vector) {
	AddWeighted(dst, weights, vecs)
}

func (refBackend) MatVec(m *Matrix, dst, x Vector)  { m.MatVec(dst, x) }
func (refBackend) MatVecT(m *Matrix, dst, x Vector) { m.MatVecT(dst, x) }
func (refBackend) AddOuterScaled(m *Matrix, alpha float64, a, b Vector) {
	m.AddOuterScaled(alpha, a, b)
}

// MatMulNT computes dst = a·bᵀ one output element at a time, each as a
// sequential dot product — the same accumulation order MatVec uses row by
// row, so a batched forward on ref reduces each output row exactly as the
// per-sample path would.
func (refBackend) MatMulNT(dst, a, b *Matrix) {
	checkMatMulNT(dst, a, b)
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		out := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float64
			for c, av := range arow {
				s += av * brow[c]
			}
			out[j] = s
		}
	}
}

// MatMulNN computes dst = a·b with the classic i-k-j axpy ordering (row of
// dst accumulated from scaled rows of b), sequential in k.
func (refBackend) MatMulNN(dst, a, b *Matrix) {
	checkMatMulNN(dst, a, b)
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		out := dst.Data[i*n : (i+1)*n]
		for j := range out {
			out[j] = 0
		}
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				out[j] += av * bv
			}
		}
	}
}

// AddMatMulTN performs dst += aᵀ·b as a sequence of rank-1 updates, one per
// shared row k, in row order — mirroring how the per-sample backward path
// accumulates AddOuterScaled updates sample by sample.
func (refBackend) AddMatMulTN(dst, a, b *Matrix) {
	checkAddMatMulTN(dst, a, b)
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*n : (k+1)*n]
		for m, av := range arow {
			if av == 0 {
				continue
			}
			out := dst.Data[m*n : (m+1)*n]
			for j, bv := range brow {
				out[j] += av * bv
			}
		}
	}
}

func (refBackend) Softmax(dst, src Vector) { Softmax(dst, src) }

// SoftmaxXent replicates the historical nn loss path operation-for-
// operation: Softmax into probs, clamp, -log, then grad = probs - onehot
// via copy and a single subtraction. Bit-identical to the pre-backend
// training sequence by construction.
func (refBackend) SoftmaxXent(probs, grad, logits Vector, label int) float64 {
	checkSoftmaxXent(probs, grad, logits, label)
	Softmax(probs, logits)
	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	loss := -math.Log(p)
	copy(grad, probs)
	grad[label] -= 1
	return loss
}
