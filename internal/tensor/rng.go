package tensor

import (
	"math"
	"math/rand"
)

// RandnInto fills v with N(0, sigma²) samples drawn from rng. Centralizing
// initialization here keeps every experiment deterministic under a seed.
func RandnInto(v Vector, sigma float64, rng *rand.Rand) {
	for i := range v {
		v[i] = rng.NormFloat64() * sigma
	}
}

// XavierInto fills v with the Glorot/Xavier-uniform initialization for a
// layer with the given fan-in and fan-out.
func XavierInto(v Vector, fanIn, fanOut int, rng *rand.Rand) {
	if fanIn+fanOut == 0 {
		v.Zero()
		return
	}
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * limit
	}
}
