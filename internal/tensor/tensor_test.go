package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestVectorDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot on mismatched lengths did not panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestAddScaled(t *testing.T) {
	v := Vector{1, 1, 1}
	v.AddScaled(2, Vector{1, 2, 3})
	want := Vector{3, 5, 7}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("AddScaled = %v, want %v", v, want)
		}
	}
}

func TestScaledDiff(t *testing.T) {
	dst := Vector{9, 9, 9}
	ScaledDiff(dst, 2, Vector{4, 5, 6}, Vector{1, 2, 4})
	want := Vector{6, 6, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("ScaledDiff = %v, want %v", dst, want)
		}
	}
	// Aliasing dst with a is explicitly allowed (in-place delta).
	a := Vector{4, 5, 6}
	ScaledDiff(a, 1, a, Vector{1, 1, 1})
	for i, w := range (Vector{3, 4, 5}) {
		if a[i] != w {
			t.Fatalf("aliased ScaledDiff = %v", a)
		}
	}
}

func TestScaledDiffMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScaledDiff on mismatched lengths did not panic")
		}
	}()
	ScaledDiff(Vector{1}, 1, Vector{1, 2}, Vector{1})
}

func TestAddScaledDiff(t *testing.T) {
	v := Vector{1, 1, 1}
	v.AddScaledDiff(3, Vector{2, 3, 4}, Vector{1, 1, 1})
	want := Vector{4, 7, 10}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("AddScaledDiff = %v, want %v", v, want)
		}
	}
}

func TestAddScaledDiffMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddScaledDiff on mismatched lengths did not panic")
		}
	}()
	Vector{1, 2}.AddScaledDiff(1, Vector{1, 2}, Vector{1})
}

func TestAddWeighted(t *testing.T) {
	dst := Vector{1, 2}
	AddWeighted(dst, []float64{0.5, 2}, []Vector{{2, 4}, {1, 1}})
	want := Vector{4, 6}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AddWeighted = %v, want %v", dst, want)
		}
	}
	// Empty term list is a no-op, not a panic.
	AddWeighted(dst, nil, nil)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("empty AddWeighted modified dst: %v", dst)
		}
	}
	// Matches the equivalent sequence of axpys bit-for-bit.
	rng := rand.New(rand.NewSource(42))
	x := NewVector(64)
	RandnInto(x, 1, rng)
	ref := x.Clone()
	vs := make([]Vector, 3)
	ws := []float64{0.25, -1.5, 3}
	for i := range vs {
		vs[i] = NewVector(64)
		RandnInto(vs[i], 1, rng)
	}
	AddWeighted(x, ws, vs)
	for k, v := range vs {
		ref.AddScaled(ws[k], v)
	}
	for i := range ref {
		if x[i] != ref[i] {
			t.Fatalf("AddWeighted diverges from axpy sequence at %d", i)
		}
	}
}

func TestAddWeightedMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddWeighted with mismatched counts did not panic")
		}
	}()
	AddWeighted(Vector{1}, []float64{1, 2}, []Vector{{1}})
}

func TestScaleAndNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := v.Norm2(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Fatalf("Norm1 = %v, want 7", got)
	}
	if got := v.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
	v.Scale(2)
	if v[0] != 6 || v[1] != -8 {
		t.Fatalf("Scale = %v", v)
	}
}

func TestArgmax(t *testing.T) {
	cases := []struct {
		v    Vector
		want int
	}{
		{Vector{}, -1},
		{Vector{1}, 0},
		{Vector{1, 3, 2}, 1},
		{Vector{5, 5, 5}, 0}, // ties resolve low
		{Vector{-2, -1, -3}, 1},
	}
	for _, c := range cases {
		if got := c.v.Argmax(); got != c.want {
			t.Errorf("Argmax(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	src := Vector{1, 2, 3, 4}
	dst := NewVector(4)
	Softmax(dst, src)
	var sum float64
	for _, x := range dst {
		if x <= 0 {
			t.Fatalf("softmax produced non-positive probability %v", x)
		}
		sum += x
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("softmax sum = %v, want 1", sum)
	}
	// Monotone: larger logits -> larger probabilities.
	for i := 1; i < len(dst); i++ {
		if dst[i] <= dst[i-1] {
			t.Fatalf("softmax not monotone: %v", dst)
		}
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	src := Vector{1000, 1001, 999}
	dst := NewVector(3)
	Softmax(dst, src)
	for _, x := range dst {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("softmax overflow on large logits: %v", dst)
		}
	}
	if dst.Argmax() != 1 {
		t.Fatalf("softmax argmax = %d, want 1", dst.Argmax())
	}
}

func TestSoftmaxInPlace(t *testing.T) {
	v := Vector{0, 0}
	Softmax(v, v)
	if !almostEqual(v[0], 0.5, 1e-12) || !almostEqual(v[1], 0.5, 1e-12) {
		t.Fatalf("in-place softmax = %v, want [0.5 0.5]", v)
	}
}

// TestSoftmaxEdgeCases pins the documented degenerate-input semantics:
// empty input is a no-op, a single element always yields probability 1,
// an all-(-Inf) row yields the uniform distribution (the historical 0/0
// behavior produced NaN), and any NaN input poisons the whole output —
// including when it hides among -Inf entries.
func TestSoftmaxEdgeCases(t *testing.T) {
	t.Run("Empty", func(t *testing.T) {
		Softmax(Vector{}, Vector{}) // must not panic
	})
	t.Run("SingleElement", func(t *testing.T) {
		for _, x := range []float64{0, -1e300, 1e300, math.Inf(-1)} {
			dst := NewVector(1)
			Softmax(dst, Vector{x})
			if dst[0] != 1 {
				t.Errorf("Softmax([%v]) = %v, want [1]", x, dst)
			}
		}
	})
	t.Run("AllNegInf", func(t *testing.T) {
		inf := math.Inf(-1)
		dst := NewVector(4)
		dst.Fill(99) // stale values must be overwritten
		Softmax(dst, Vector{inf, inf, inf, inf})
		for i, p := range dst {
			if !almostEqual(p, 0.25, 1e-15) {
				t.Fatalf("Softmax(all -Inf)[%d] = %v, want 0.25 (full: %v)", i, p, dst)
			}
		}
	})
	t.Run("NaNPropagates", func(t *testing.T) {
		cases := []Vector{
			{math.NaN(), 0, 1},
			{0, math.NaN(), 1},
			{0, 1, math.NaN()},
			{math.Inf(-1), math.NaN(), math.Inf(-1)}, // NaN among -Inf: not uniform
			{math.NaN()},
		}
		for _, src := range cases {
			dst := NewVector(len(src))
			Softmax(dst, src)
			for i, p := range dst {
				if !math.IsNaN(p) {
					t.Fatalf("Softmax(%v)[%d] = %v, want NaN (full: %v)", src, i, p, dst)
				}
			}
		}
	})
	t.Run("PosInfDominates", func(t *testing.T) {
		// A single +Inf logit takes all the mass: exp(Inf-Inf) is NaN only
		// for the ties, so pin the single-winner case that training can hit
		// after divergence.
		dst := NewVector(3)
		Softmax(dst, Vector{0, math.Inf(1), 0})
		if !(dst[1] == 1 && dst[0] == 0 && dst[2] == 0) {
			t.Fatalf("Softmax([0 +Inf 0]) = %v, want [0 1 0]", dst)
		}
	})
}

func TestMatVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, Vector{1, 2, 3, 4, 5, 6})
	x := Vector{1, 0, -1}
	dst := NewVector(2)
	m.MatVec(dst, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MatVec = %v, want [-2 -2]", dst)
	}
}

func TestMatVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, Vector{1, 2, 3, 4, 5, 6})
	x := Vector{1, 1}
	dst := NewVector(3)
	m.MatVecT(dst, x)
	want := Vector{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MatVecT = %v, want %v", dst, want)
		}
	}
}

func TestAddOuterScaled(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuterScaled(2, Vector{1, 2}, Vector{3, 4})
	want := [][]float64{{6, 8}, {12, 16}}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if m.At(r, c) != want[r][c] {
				t.Fatalf("AddOuterScaled(%d,%d) = %v, want %v", r, c, m.At(r, c), want[r][c])
			}
		}
	}
}

func TestMatrixRowAliases(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Row(1)[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("Row does not alias matrix storage")
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestClamp(t *testing.T) {
	v := Vector{-10, -1, 0, 1, 10}
	v.Clamp(2)
	want := Vector{-2, -1, 0, 1, 2}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Clamp = %v, want %v", v, want)
		}
	}
}

func TestXavierIntoBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewVector(1000)
	XavierInto(v, 30, 10, rng)
	limit := math.Sqrt(6.0 / 40.0)
	for _, x := range v {
		if math.Abs(x) > limit {
			t.Fatalf("Xavier sample %v exceeds limit %v", x, limit)
		}
	}
	if v.Norm2() == 0 {
		t.Fatal("Xavier produced all zeros")
	}
}

func TestRandnIntoDeterministic(t *testing.T) {
	a, b := NewVector(16), NewVector(16)
	RandnInto(a, 1, rand.New(rand.NewSource(7)))
	RandnInto(b, 1, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandnInto is not deterministic under a fixed seed")
		}
	}
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestDotPropertyQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		v, w := Vector(raw[:n]), Vector(raw[n:2*n])
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip degenerate inputs
			}
		}
		return almostEqual(v.Dot(w), w.Dot(v), 1e-6*(1+v.Norm2()*w.Norm2()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability distribution for any finite input.
func TestSoftmaxPropertyQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			if math.Abs(x) > 500 {
				raw[i] = math.Mod(x, 500)
			}
		}
		dst := NewVector(len(raw))
		Softmax(dst, Vector(raw))
		var sum float64
		for _, p := range dst {
			if p < 0 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MatVecT is the adjoint of MatVec: <Av, w> == <v, Aᵀw>.
func TestAdjointPropertyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 50; iter++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(rows, cols)
		RandnInto(m.Data, 1, rng)
		v, w := NewVector(cols), NewVector(rows)
		RandnInto(v, 1, rng)
		RandnInto(w, 1, rng)
		av := NewVector(rows)
		m.MatVec(av, v)
		atw := NewVector(cols)
		m.MatVecT(atw, w)
		if !almostEqual(av.Dot(w), v.Dot(atw), 1e-9) {
			t.Fatalf("adjoint identity violated: %v vs %v", av.Dot(w), v.Dot(atw))
		}
	}
}
