package tensor

import (
	"fmt"
	"sort"
	"sync"
)

// Backend is the pluggable implementation of the kernels that dominate
// training time. Two implementations ship with the repository:
//
//   - "ref": the portable scalar loops this package has always used. Its
//     results are the determinism oracle — the P=1≡P=8 golden tests and
//     every committed golden trace bind to ref's exact floating-point
//     operation order, which never changes.
//   - "fast": blocked/tiled matrix kernels with register-blocked inner
//     loops plus a fused softmax+cross-entropy. Deterministic for a fixed
//     binary (no randomness, no data races), but its summation order is
//     not ref's, so results agree with ref only to rounding (see the
//     conformance suite's ulp policy in backendtests).
//
// Contracts shared by every backend:
//
//   - Shape mismatches panic (they are programming errors, exactly as the
//     underlying kernels have always treated them).
//   - Softmax and SoftmaxXent permit dst (probs/grad) to alias src fully
//     (dst == src); partial overlap is undefined. ScaledDiff permits dst
//     to alias a or b. All other kernels require non-overlapping dst.
//   - No kernel allocates.
type Backend interface {
	// Name is the registry key ("ref", "fast").
	Name() string
	// Batched reports whether the backend wants the minibatch GEMM-shaped
	// forward/backward path: nn processes a whole batch as matrix-matrix
	// products (MatMulNT/MatMulNN/AddMatMulTN) instead of per-sample
	// MatVec calls when this is true.
	Batched() bool

	// Dot returns the inner product of a and b.
	Dot(a, b Vector) float64
	// AddScaled performs dst += alpha*w.
	AddScaled(dst Vector, alpha float64, w Vector)
	// ScaledDiff writes dst = alpha*(a-b); dst may alias a or b.
	ScaledDiff(dst Vector, alpha float64, a, b Vector)
	// AddWeighted performs dst += Σ_k weights[k]·vecs[k] in slice order.
	AddWeighted(dst Vector, weights []float64, vecs []Vector)

	// MatVec computes dst = m·x.
	MatVec(m *Matrix, dst, x Vector)
	// MatVecT computes dst = mᵀ·x.
	MatVecT(m *Matrix, dst, x Vector)
	// AddOuterScaled performs m += alpha*(a ⊗ b).
	AddOuterScaled(m *Matrix, alpha float64, a, b Vector)

	// MatMulNT computes dst = a·bᵀ (a: M×K, b: N×K, dst: M×N) — the
	// GEMM shape of a batched Dense forward (X·Wᵀ).
	MatMulNT(dst, a, b *Matrix)
	// MatMulNN computes dst = a·b (a: M×K, b: K×N, dst: M×N) — the shape
	// of batched input gradients (dY·W).
	MatMulNN(dst, a, b *Matrix)
	// AddMatMulTN performs dst += aᵀ·b (a: K×M, b: K×N, dst: M×N) — the
	// accumulating shape of batched weight gradients (dYᵀ·X).
	AddMatMulTN(dst, a, b *Matrix)

	// Softmax writes softmax(src) into dst (dst may alias src), with the
	// edge-case semantics documented on the package-level Softmax.
	Softmax(dst, src Vector)
	// SoftmaxXent fuses softmax, cross-entropy loss, and the loss
	// gradient: probs = softmax(logits), grad = probs - onehot(label),
	// returns -log(max(probs[label], 1e-12)). probs and grad must each
	// have len(logits); label must index logits.
	SoftmaxXent(probs, grad, logits Vector, label int) float64
}

var (
	backendMu  sync.RWMutex
	backendReg = map[string]Backend{}
)

// Register adds a backend to the registry. It panics on an empty name or a
// duplicate registration — backends are wired at init time, so both are
// programming errors.
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("tensor: Register called with an empty backend name")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backendReg[name]; dup {
		panic(fmt.Sprintf("tensor: backend %q registered twice", name))
	}
	backendReg[name] = b
}

// Lookup returns the named backend, or an error naming the known set.
func Lookup(name string) (Backend, error) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	if b, ok := backendReg[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("tensor: unknown backend %q (available: %v)", name, backendNamesLocked())
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backendNamesLocked()
}

func backendNamesLocked() []string {
	names := make([]string, 0, len(backendReg))
	for name := range backendReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Default returns the reference backend — the determinism oracle every
// model starts on until explicitly switched.
func Default() Backend { return refBackend{} }

func init() {
	Register(refBackend{})
	Register(fastBackend{})
}

// Shape checks shared by every backend implementation, so all backends
// panic identically on the same misuse.

func checkMatMulNT(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulNT shape mismatch dst=%dx%d a=%dx%d b=%dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func checkMatMulNN(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulNN shape mismatch dst=%dx%d a=%dx%d b=%dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func checkAddMatMulTN(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: AddMatMulTN shape mismatch dst=%dx%d a=%dx%d b=%dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func checkSoftmaxXent(probs, grad, logits Vector, label int) {
	if len(probs) != len(logits) || len(grad) != len(logits) {
		panic(fmt.Sprintf("tensor: SoftmaxXent length mismatch probs=%d grad=%d logits=%d",
			len(probs), len(grad), len(logits)))
	}
	if label < 0 || label >= len(logits) {
		panic(fmt.Sprintf("tensor: SoftmaxXent label %d out of range [0,%d)", label, len(logits)))
	}
}
