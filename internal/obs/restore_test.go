package obs

import (
	"bytes"
	"strings"
	"testing"
)

// populate builds a registry with one of everything and some activity.
func populate() *Registry {
	r := NewRegistry()
	r.Counter("events_total").Add(41)
	r.Gauge("level").Set(0.375)
	h := r.Histogram("lat_seconds", []float64{1, 5, 25})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(3)
	h.Observe(100)
	return r
}

func exposition(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRestoreIntoFreshRegistry is the resume path: a brand-new registry
// (no metrics registered yet) restored from a snapshot must expose the
// identical bytes, including recreated histograms with parsed bounds.
func TestRestoreIntoFreshRegistry(t *testing.T) {
	src := populate()
	want := exposition(t, src)

	dst := NewRegistry()
	if err := dst.RestoreSnapshot(src.Snapshot()); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if got := exposition(t, dst); got != want {
		t.Fatalf("exposition after restore diverges\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRestoreOverwritesNoise models the engine's restore ordering: the
// target registry has the metrics registered and already polluted by
// rebuild-time activity; restore must erase the noise, keep the handles
// live, and zero metrics absent from the snapshot.
func TestRestoreOverwritesNoise(t *testing.T) {
	src := populate()
	want := exposition(t, src)

	dst := NewRegistry()
	c := dst.Counter("events_total")
	c.Add(999) // warm-up noise
	g := dst.Gauge("level")
	g.Set(123)
	h := dst.Histogram("lat_seconds", []float64{1, 5, 25})
	h.Observe(7)
	extra := dst.Counter("not_in_snapshot_total")
	extra.Add(5)

	if err := dst.RestoreSnapshot(src.Snapshot()); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	// Pre-restore handles observe the restored values (no replacement).
	if c.Value() != 41 {
		t.Fatalf("counter handle reads %d after restore, want 41", c.Value())
	}
	if g.Value() != 0.375 {
		t.Fatalf("gauge handle reads %v after restore, want 0.375", g.Value())
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Fatalf("histogram handle reads count=%d sum=%v, want 4 / 106.5", h.Count(), h.Sum())
	}
	if extra.Value() != 0 {
		t.Fatalf("metric absent from snapshot reads %d, want 0 (hard reset)", extra.Value())
	}
	got := exposition(t, dst)
	if !strings.Contains(got, "not_in_snapshot_total 0\n") {
		t.Fatalf("zeroed metric missing from exposition:\n%s", got)
	}
	got = strings.Replace(got, "not_in_snapshot_total 0\n", "", 1)
	if got != want {
		t.Fatalf("exposition after noisy restore diverges\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRestoreRejectsBadSnapshots pins the validate-before-write contract.
func TestRestoreRejectsBadSnapshots(t *testing.T) {
	dst := populate()
	want := exposition(t, dst)

	cases := []Snapshot{
		// Kind clash with a registered metric.
		{Gauges: []GaugeSnapshot{{Name: "events_total", Value: 1}}},
		// Histogram without the +Inf terminator.
		{Histograms: []HistogramSnapshot{{Name: "h", Count: 1, Buckets: []Bucket{{LE: "1", Count: 1}}}}},
		// Decreasing cumulative counts.
		{Histograms: []HistogramSnapshot{{Name: "h", Count: 2, Buckets: []Bucket{
			{LE: "1", Count: 2}, {LE: "+Inf", Count: 1}}}}},
		// Bucket layout mismatch with the registered histogram.
		{Histograms: []HistogramSnapshot{{Name: "lat_seconds", Count: 0, Buckets: []Bucket{
			{LE: "1", Count: 0}, {LE: "+Inf", Count: 0}}}}},
		// Unparsable bound.
		{Histograms: []HistogramSnapshot{{Name: "h", Count: 0, Buckets: []Bucket{
			{LE: "wat", Count: 0}, {LE: "+Inf", Count: 0}}}}},
	}
	for i, snap := range cases {
		if err := dst.RestoreSnapshot(snap); err == nil {
			t.Fatalf("case %d: bad snapshot restored without error", i)
		}
		if got := exposition(t, dst); got != want {
			t.Fatalf("case %d: failed restore mutated the registry\n--- got ---\n%s--- want ---\n%s", i, got, want)
		}
	}
}

// TestRestoreNilRegistry keeps the package's nil-receiver contract.
func TestRestoreNilRegistry(t *testing.T) {
	var r *Registry
	if err := r.RestoreSnapshot(Snapshot{}); err != nil {
		t.Fatalf("nil registry restore: %v", err)
	}
}
