package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// ErrorBody is the typed JSON error envelope every obs-served endpoint
// (and the dist server's JSON endpoints) returns on client errors, so
// callers can always decode failures instead of scraping plain text.
type ErrorBody struct {
	Error string `json:"error"`
}

// WriteHTTPError writes a typed JSON error body with the given status.
func WriteHTTPError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// MetricsFormat resolves the response format for a metrics request:
// an explicit ?format=text|json wins, otherwise an Accept header naming
// application/json selects JSON, otherwise text. An unknown ?format=
// value is an error — silently serving text to a caller that asked for
// something specific hides their bug.
func MetricsFormat(r *http.Request) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "json", "text":
		return f, nil
	case "":
	default:
		return "", fmt.Errorf("unknown format %q (want \"text\" or \"json\")", f)
	}
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		return "json", nil
	}
	return "text", nil
}

// ServeMetricsSnapshot writes an already-collected snapshot honoring the
// request's format negotiation (see MetricsFormat), with an explicit
// Content-Type either way.
func ServeMetricsSnapshot(w http.ResponseWriter, r *http.Request, snap Snapshot) {
	format, err := MetricsFormat(r)
	if err != nil {
		WriteHTTPError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if format == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = snap.WriteText(w)
}

// MetricsHandler serves a registry's exposition — the handler behind
// floatsim -http's /v1/metrics (the dist server wires the same
// negotiation through its own handler so both planes behave identically).
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			WriteHTTPError(w, http.StatusMethodNotAllowed, "GET required")
			return
		}
		ServeMetricsSnapshot(w, r, reg.Snapshot())
	})
}

// TimelineResponse is the JSON body of GET /v1/timeline: the retained
// (or, with ?since=N, the incremental) samples plus the cursor a poller
// feeds back as ?since= on its next read.
type TimelineResponse struct {
	Schema  string           `json:"schema"`
	Latest  int              `json:"latest"`
	Dropped int              `json:"dropped"`
	Samples []TimelineSample `json:"samples"`
}

// TimelineHandler serves a timeline ring as incremental JSON:
// GET /v1/timeline returns every retained sample, ?since=N only samples
// with round > N. Samples are delta-encoded exactly as stored — a poller
// carries values forward across reads the same way the exporter does.
func TimelineHandler(t *Timeline) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			WriteHTTPError(w, http.StatusMethodNotAllowed, "GET required")
			return
		}
		since := -1 << 62
		if raw := r.URL.Query().Get("since"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil {
				WriteHTTPError(w, http.StatusBadRequest, "bad since %q: %v", raw, err)
				return
			}
			since = n
		}
		resp := TimelineResponse{
			Schema:  timelineSchema,
			Latest:  t.LatestRound(),
			Dropped: t.Dropped(),
			Samples: t.SamplesSince(since),
		}
		if resp.Samples == nil {
			resp.Samples = []TimelineSample{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}
