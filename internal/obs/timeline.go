package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// timelineSchema versions the timeline export and checkpoint payloads.
const timelineSchema = "floatfl-timeline/v1"

// DefaultTimelineCapacity bounds the sample ring when the caller does not
// choose a capacity. At one sample per round this covers multi-thousand
// round runs before the ring starts folding.
const DefaultTimelineCapacity = 4096

// SeriesValue is one named engine fact contributed alongside the registry
// snapshot at a sample point — per-round selected/dropped counts, the
// global accuracy, RL action visit counts. Names share the registry's
// exposition namespace, so contributors must not collide with registered
// metric names.
type SeriesValue struct {
	Name  string
	Value float64
}

// TimelineSample is one quiescent-boundary observation. Values holds only
// the series whose value changed since the previous retained sample
// (absolute values, not diffs); the oldest sample in a ring always holds
// the complete series set, so any suffix of a timeline reconstructs every
// series by carrying values forward.
type TimelineSample struct {
	Round  int                `json:"round"`
	Clock  float64            `json:"clock"`
	Values map[string]float64 `json:"values"`
}

// TimelineHeader is the first line of a timeline JSONL export.
type TimelineHeader struct {
	Schema   string `json:"schema"`
	Capacity int    `json:"capacity"`
	Dropped  int    `json:"dropped"`
}

// Timeline is a bounded ring of delta-encoded per-round samples of a
// metrics registry plus caller-supplied engine facts. Sampling happens at
// the engines' quiescent boundaries (single-threaded, after FlushObs), so
// for a fixed seed the sample stream — and therefore the JSONL export —
// is byte-identical across Parallelism, GOMAXPROCS, and eager/lazy
// populations. The mutex exists for the live inspection plane: HTTP
// readers may walk the ring while the engine owns the write side.
//
// Timeline implements checkpoint.Stateful so a resumed run continues the
// sample stream exactly where the snapshot left off (stitching invariant:
// run-N → resume-N exports the same bytes as run-2N).
//
// All methods are nil-receiver safe; an unconfigured engine pays one
// branch per boundary.
type Timeline struct {
	mu  sync.Mutex
	reg *Registry

	capacity int
	samples  []TimelineSample
	// last is the carry-forward view: the absolute value of every series
	// ever sampled, used to delta-compare the next sample.
	last map[string]float64
	// dropped counts samples evicted (folded forward) by the ring bound.
	dropped int
}

// NewTimeline builds a timeline over reg (which may be nil — then only
// the extra SeriesValues are sampled). capacity <= 0 selects
// DefaultTimelineCapacity.
func NewTimeline(reg *Registry, capacity int) *Timeline {
	if capacity <= 0 {
		capacity = DefaultTimelineCapacity
	}
	return &Timeline{
		reg:      reg,
		capacity: capacity,
		last:     make(map[string]float64),
	}
}

// flattenSnapshot projects a registry snapshot onto the flat series
// namespace used by samples, mirroring the text exposition's names:
// counters and gauges keep their own name, histograms expand to
// name_count, name_sum, and one name_bucket{le="..."} per bucket.
func flattenSnapshot(s Snapshot, dst map[string]float64) {
	for _, c := range s.Counters {
		dst[c.Name] = float64(c.Value)
	}
	for _, g := range s.Gauges {
		dst[g.Name] = g.Value
	}
	for _, h := range s.Histograms {
		dst[h.Name+"_count"] = float64(h.Count)
		dst[h.Name+"_sum"] = h.Sum
		for _, b := range h.Buckets {
			dst[h.Name+`_bucket{le="`+b.LE+`"}`] = float64(b.Count)
		}
	}
}

// Sample records one observation at (round, clock): the full registry
// snapshot plus the extra series, delta-encoded against the previous
// sample. Must be called from a quiescent, single-threaded point (no
// in-flight Observe/Inc racing the snapshot) — the engines call it at
// their end-of-round boundaries, the dist server under its mutex.
func (t *Timeline) Sample(round int, clock float64, extra ...SeriesValue) {
	if t == nil {
		return
	}
	cur := make(map[string]float64)
	if t.reg != nil {
		flattenSnapshot(t.reg.Snapshot(), cur)
	}
	for _, sv := range extra {
		cur[sv.Name] = sv.Value
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	changed := make(map[string]float64)
	for name, v := range cur {
		if prev, ok := t.last[name]; !ok || prev != v {
			changed[name] = v
			t.last[name] = v
		}
	}
	t.samples = append(t.samples, TimelineSample{Round: round, Clock: clock, Values: changed})
	for len(t.samples) > t.capacity {
		// Fold the evicted sample forward so the new oldest sample stays a
		// complete snapshot: any series it does not override keeps the
		// evicted sample's value.
		evicted := t.samples[0]
		next := t.samples[1]
		for name, v := range evicted.Values {
			if _, ok := next.Values[name]; !ok {
				next.Values[name] = v
			}
		}
		copy(t.samples, t.samples[1:])
		t.samples = t.samples[:len(t.samples)-1]
		t.dropped++
	}
}

// Len returns the number of retained samples (0 for nil).
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.samples)
}

// Dropped returns how many samples the ring bound has evicted.
func (t *Timeline) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Samples returns a deep copy of the retained samples in round order.
func (t *Timeline) Samples() []TimelineSample {
	return t.SamplesSince(-1 << 62)
}

// SamplesSince returns a deep copy of the retained samples with
// Round > since — the incremental-read primitive behind
// GET /v1/timeline?since=N. Values maps are copied so concurrent ring
// folding can never mutate a response in flight. Note the returned slice
// is a ring suffix: its first sample carries only the series that changed
// after `since`, so incremental readers must carry earlier values forward
// themselves (which they have, from the previous read).
func (t *Timeline) SamplesSince(since int) []TimelineSample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimelineSample, 0, len(t.samples))
	for _, s := range t.samples {
		if s.Round <= since {
			continue
		}
		vals := make(map[string]float64, len(s.Values))
		for name, v := range s.Values {
			vals[name] = v
		}
		out = append(out, TimelineSample{Round: s.Round, Clock: s.Clock, Values: vals})
	}
	return out
}

// LatestRound returns the round of the newest retained sample, or -1 when
// the timeline is empty — the cursor a poller feeds back as ?since=.
func (t *Timeline) LatestRound() int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.samples) == 0 {
		return -1
	}
	return t.samples[len(t.samples)-1].Round
}

// WriteJSONL renders the timeline as one header line plus one sample per
// line. encoding/json sorts map keys and uses shortest-round-trip float
// formatting, so equal timelines always produce equal bytes — the export
// is the byte-comparison surface of the determinism contract.
func (t *Timeline) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	header := TimelineHeader{Schema: timelineSchema, Capacity: t.capacity, Dropped: t.dropped}
	samples := t.samples
	// Marshal under the lock: ring folds mutate retained Values maps.
	lines := make([][]byte, 0, len(samples)+1)
	hb, err := json.Marshal(header)
	if err != nil {
		t.mu.Unlock()
		return err
	}
	lines = append(lines, hb)
	for _, s := range samples {
		b, err := json.Marshal(s)
		if err != nil {
			t.mu.Unlock()
			return err
		}
		lines = append(lines, b)
	}
	t.mu.Unlock()
	for _, line := range lines {
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ReadTimeline parses a timeline written by WriteJSONL: a header line
// followed by samples. Blank lines are skipped; a malformed line or a
// schema mismatch is an error (timelines are machine-written).
func ReadTimeline(r io.Reader) (TimelineHeader, []TimelineSample, error) {
	var header TimelineHeader
	var samples []TimelineSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !sawHeader {
			if err := json.Unmarshal(line, &header); err != nil {
				return header, nil, fmt.Errorf("obs: timeline line %d: %w", lineNo, err)
			}
			if header.Schema != timelineSchema {
				return header, nil, fmt.Errorf("obs: timeline schema %q, want %q", header.Schema, timelineSchema)
			}
			if header.Capacity <= 0 {
				return header, nil, fmt.Errorf("obs: timeline capacity %d must be positive", header.Capacity)
			}
			sawHeader = true
			continue
		}
		var s TimelineSample
		if err := json.Unmarshal(line, &s); err != nil {
			return header, nil, fmt.Errorf("obs: timeline line %d: %w", lineNo, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return header, nil, err
	}
	if !sawHeader {
		return header, nil, fmt.Errorf("obs: timeline is empty (missing header line)")
	}
	return header, samples, nil
}

// timelineState is the checkpoint payload: the complete ring plus the
// carry-forward view, so a restored timeline delta-encodes its next
// sample against exactly the state the snapshotted run saw.
type timelineState struct {
	Schema   string             `json:"schema"`
	Capacity int                `json:"capacity"`
	Dropped  int                `json:"dropped"`
	Last     map[string]float64 `json:"last"`
	Samples  []TimelineSample   `json:"samples"`
}

// CheckpointState implements checkpoint.Stateful.
func (t *Timeline) CheckpointState() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return json.Marshal(timelineState{
		Schema:   timelineSchema,
		Capacity: t.capacity,
		Dropped:  t.dropped,
		Last:     t.last,
		Samples:  t.samples,
	})
}

// RestoreCheckpoint implements checkpoint.Stateful. The payload is
// validated before any field is mutated; on error the timeline is
// unchanged. The ring capacity is restored from the snapshot (it is part
// of what makes the stitched export byte-identical to an uninterrupted
// run).
func (t *Timeline) RestoreCheckpoint(data []byte) error {
	var st timelineState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("obs: timeline restore: %w", err)
	}
	if st.Schema != timelineSchema {
		return fmt.Errorf("obs: timeline restore: schema %q, want %q", st.Schema, timelineSchema)
	}
	if st.Capacity <= 0 {
		return fmt.Errorf("obs: timeline restore: capacity %d must be positive", st.Capacity)
	}
	if len(st.Samples) > st.Capacity {
		return fmt.Errorf("obs: timeline restore: %d samples exceed capacity %d", len(st.Samples), st.Capacity)
	}
	for i := 1; i < len(st.Samples); i++ {
		if st.Samples[i].Round <= st.Samples[i-1].Round {
			return fmt.Errorf("obs: timeline restore: sample rounds not increasing at index %d", i)
		}
	}
	if st.Last == nil {
		st.Last = make(map[string]float64)
	}
	for i := range st.Samples {
		if st.Samples[i].Values == nil {
			st.Samples[i].Values = make(map[string]float64)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.capacity = st.Capacity
	t.dropped = st.Dropped
	t.last = st.Last
	t.samples = st.Samples
	return nil
}
