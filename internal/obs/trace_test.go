package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleSpans() []Span {
	return []Span{
		{T: 0, Dur: 0, Kind: "select", Round: 0, Client: -1},
		{T: 0, Dur: 2.5, Kind: "train", Round: 0, Client: 3, Note: "quant8"},
		{T: 2.5, Dur: 0.25, Kind: "comm", Round: 0, Client: 3},
		{T: 3, Dur: 0, Kind: "drop", Round: 0, Client: 7, Note: "deadline"},
		{T: 3, Dur: 0, Kind: "aggregate", Round: 0, Client: -1},
	}
}

func TestTracerRoundTrip(t *testing.T) {
	tr := NewTracer()
	for _, s := range sampleSpans() {
		tr.Emit(s)
	}
	if tr.Len() != len(sampleSpans()) {
		t.Fatalf("len = %d, want %d", tr.Len(), len(sampleSpans()))
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleSpans()) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, sampleSpans())
	}
}

func TestTracerWriteDeterministic(t *testing.T) {
	render := func() string {
		tr := NewTracer()
		for _, s := range sampleSpans() {
			tr.Emit(s)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("JSONL rendering not reproducible:\n%s\nvs\n%s", a, b)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Span{Kind: "train"})
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer must record nothing")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer WriteJSONL: err=%v len=%d", err, buf.Len())
	}
}

func TestSpansReturnsCopy(t *testing.T) {
	tr := NewTracer()
	tr.Emit(Span{Kind: "a"})
	spans := tr.Spans()
	spans[0].Kind = "mutated"
	if tr.Spans()[0].Kind != "a" {
		t.Fatal("Spans must return a copy, not the backing slice")
	}
}

func TestReadJSONLSkipsBlankRejectsGarbage(t *testing.T) {
	got, err := ReadJSONL(strings.NewReader("{\"kind\":\"x\",\"t\":1,\"dur\":0,\"round\":0,\"client\":-1}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Kind != "x" {
		t.Fatalf("got %+v", got)
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("expected error on malformed trace line")
	}
}
