package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Span is one traced event: a phase of a round (select, decide, train,
// comm, aggregate) or a point event (drop, lease_grant, lease_expiry,
// retry, fault, round_timer). T and Dur are in the caller's time domain —
// virtual simulation seconds for the FL engines, seconds since server
// start for internal/dist — never wall clock. Client is -1 for spans not
// attributed to a single client; point events have Dur 0.
type Span struct {
	T      float64 `json:"t"`
	Dur    float64 `json:"dur"`
	Kind   string  `json:"kind"`
	Round  int     `json:"round"`
	Client int     `json:"client"`
	Note   string  `json:"note,omitempty"`
}

// Tracer accumulates spans in emission order. Emission order must itself
// be deterministic — the engines emit from their single-threaded dispatch
// and collect passes, the dist server from under its mutex — so the JSONL
// export is byte-identical for a fixed seed at any Parallelism. A nil
// *Tracer is a valid no-op sink.
type Tracer struct {
	mu    sync.Mutex
	spans []Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{}
}

// Emit appends one span.
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Len returns the number of spans recorded (0 for nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in emission order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// WriteJSONL writes one span per line in emission order. encoding/json
// uses shortest-round-trip float formatting and fixed field order, so
// equal span sequences always produce equal bytes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, s := range t.Spans() {
		line, err := json.Marshal(s)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a trace written by WriteJSONL. Blank lines are
// skipped; a malformed line is an error (traces are machine-written, so
// damage should surface, not be papered over).
func ReadJSONL(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(line, &s); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}
