package obs

import (
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
)

// RestoreSnapshot overwrites the registry's state with a previously
// captured Snapshot, so a resumed run's exposition continues byte-for-byte
// where the snapshotted run left off.
//
// Semantics are hard-set, not merge: every metric named in the snapshot is
// created if absent and set to exactly the recorded value, and every
// already-registered metric absent from the snapshot is reset to zero.
// The second half matters for resume ordering — engine restore re-derives
// cached state (population warm-up, task re-acquisition) before calling
// this, and the hard overwrite erases whatever counter or histogram noise
// that rebuilding produced. Existing handles stay valid: values are stored
// through the registered objects, never by replacing them.
//
// The snapshot is validated before any metric is touched; on error the
// registry is unchanged.
func (r *Registry) RestoreSnapshot(s Snapshot) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	// Validation pass: kind clashes and malformed histograms must surface
	// before the first write, so a bad snapshot cannot half-apply.
	for _, c := range s.Counters {
		if err := r.restorableLocked(c.Name, "counter"); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := r.restorableLocked(g.Name, "gauge"); err != nil {
			return err
		}
	}
	type histPlan struct {
		snap   HistogramSnapshot
		bounds []float64 // parsed from bucket LEs when the histogram is new
		perBkt []int64   // de-cumulated per-bucket counts
	}
	plans := make([]histPlan, 0, len(s.Histograms))
	for _, hs := range s.Histograms {
		if err := r.restorableLocked(hs.Name, "histogram"); err != nil {
			return err
		}
		plan := histPlan{snap: hs}
		if len(hs.Buckets) == 0 || hs.Buckets[len(hs.Buckets)-1].LE != "+Inf" {
			return fmt.Errorf("obs: restore: histogram %q buckets must end with +Inf", hs.Name)
		}
		prev := int64(0)
		for i, b := range hs.Buckets {
			if b.Count < prev {
				return fmt.Errorf("obs: restore: histogram %q bucket %d count decreases", hs.Name, i)
			}
			plan.perBkt = append(plan.perBkt, b.Count-prev)
			prev = b.Count
			if i == len(hs.Buckets)-1 {
				continue
			}
			bound, err := strconv.ParseFloat(b.LE, 64)
			if err != nil {
				return fmt.Errorf("obs: restore: histogram %q bucket bound %q: %v", hs.Name, b.LE, err)
			}
			plan.bounds = append(plan.bounds, bound)
		}
		if h, ok := r.histograms[hs.Name]; ok {
			if len(h.counts) != len(hs.Buckets) {
				return fmt.Errorf("obs: restore: histogram %q has %d buckets registered, snapshot has %d",
					hs.Name, len(h.counts), len(hs.Buckets))
			}
			for i := range plan.bounds {
				if formatFloat(h.bounds[i]) != hs.Buckets[i].LE {
					return fmt.Errorf("obs: restore: histogram %q bucket %d bound is %s registered vs %s in snapshot",
						hs.Name, i, formatFloat(h.bounds[i]), hs.Buckets[i].LE)
				}
			}
		}
		plans = append(plans, plan)
	}

	// Apply pass. Reset everything, then set the recorded values.
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sumMicros.Store(0)
		h.total.Store(0)
	}
	for _, cs := range s.Counters {
		c, ok := r.counters[cs.Name]
		if !ok {
			c = &Counter{}
			r.counters[cs.Name] = c
		}
		c.v.Store(cs.Value)
	}
	for _, gs := range s.Gauges {
		g, ok := r.gauges[gs.Name]
		if !ok {
			g = &Gauge{}
			r.gauges[gs.Name] = g
		}
		g.bits.Store(math.Float64bits(gs.Value))
	}
	for _, plan := range plans {
		h, ok := r.histograms[plan.snap.Name]
		if !ok {
			h = &Histogram{
				bounds: plan.bounds,
				counts: make([]atomic.Int64, len(plan.snap.Buckets)),
			}
			r.histograms[plan.snap.Name] = h
		}
		for i, n := range plan.perBkt {
			h.counts[i].Store(n)
		}
		h.total.Store(plan.snap.Count)
		// Sum is the fixed-point accumulator divided by sumScale; the
		// inverse round-trips exactly at any realistic magnitude, so the
		// restored exposition renders the identical float.
		h.sumMicros.Store(int64(math.Round(plan.snap.Sum * sumScale)))
	}
	return nil
}

// restorableLocked reports whether name can be restored as kind — the
// error-returning analog of checkNameLocked (restore handles untrusted
// files, so clashes must not panic).
func (r *Registry) restorableLocked(name, kind string) error {
	if name == "" {
		return fmt.Errorf("obs: restore: empty metric name")
	}
	if _, ok := r.counters[name]; ok && kind != "counter" {
		return fmt.Errorf("obs: restore: %q already registered as a counter, snapshot has a %s", name, kind)
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		return fmt.Errorf("obs: restore: %q already registered as a gauge, snapshot has a %s", name, kind)
	}
	if _, ok := r.histograms[name]; ok && kind != "histogram" {
		return fmt.Errorf("obs: restore: %q already registered as a histogram, snapshot has a %s", name, kind)
	}
	return nil
}
