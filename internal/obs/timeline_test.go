package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// timelineFixture builds a registry with one of each instrument and a
// timeline over it.
func timelineFixture(capacity int) (*Registry, *Timeline, *Counter, *Gauge, *Histogram) {
	reg := NewRegistry()
	c := reg.Counter("t_events_total")
	g := reg.Gauge("t_level")
	h := reg.Histogram("t_latency_seconds", []float64{1, 10})
	return reg, NewTimeline(reg, capacity), c, g, h
}

func TestTimelineDeltaEncoding(t *testing.T) {
	_, tl, c, g, h := timelineFixture(16)
	c.Inc()
	g.Set(0.5)
	h.Observe(2)
	tl.Sample(0, 10, SeriesValue{Name: "extra", Value: 7})

	samples := tl.Samples()
	if len(samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(samples))
	}
	first := samples[0]
	if first.Round != 0 || first.Clock != 10 {
		t.Fatalf("first sample = %+v", first)
	}
	// The first sample is a full snapshot: every series appears even when
	// zero-valued.
	for _, name := range []string{
		"t_events_total", "t_level", "t_latency_seconds_count",
		"t_latency_seconds_sum", `t_latency_seconds_bucket{le="1"}`,
		`t_latency_seconds_bucket{le="10"}`, `t_latency_seconds_bucket{le="+Inf"}`,
		"extra",
	} {
		if _, ok := first.Values[name]; !ok {
			t.Errorf("first sample missing series %q", name)
		}
	}

	// A second sample with one counter bump carries only the changed
	// series (and drops the vanished one-shot extra).
	c.Inc()
	tl.Sample(1, 20)
	second := tl.Samples()[1]
	if got := second.Values["t_events_total"]; got != 2 {
		t.Fatalf("t_events_total = %v, want 2 (absolute, not delta)", got)
	}
	if _, ok := second.Values["t_level"]; ok {
		t.Errorf("unchanged gauge should be omitted from delta sample")
	}
	if len(second.Values) != 1 {
		t.Errorf("delta sample carries %d series, want 1: %v", len(second.Values), second.Values)
	}

	// An unchanged registry yields an empty (but still present) sample.
	tl.Sample(2, 30)
	if third := tl.Samples()[2]; len(third.Values) != 0 {
		t.Errorf("no-change sample carries values: %v", third.Values)
	}
}

func TestTimelineRingFoldPreservesAbsoluteState(t *testing.T) {
	_, tl, c, _, _ := timelineFixture(3)
	for round := 0; round < 6; round++ {
		c.Inc()
		tl.Sample(round, float64(round))
	}
	if tl.Len() != 3 {
		t.Fatalf("len = %d, want 3", tl.Len())
	}
	if tl.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tl.Dropped())
	}
	samples := tl.Samples()
	// Invariant: after eviction the oldest retained sample must still be a
	// full snapshot — the evicted samples' values folded forward — so a
	// reader reconstructs absolute state without the dropped prefix.
	oldest := samples[0]
	if oldest.Round != 3 {
		t.Fatalf("oldest round = %d, want 3", oldest.Round)
	}
	if got := oldest.Values["t_events_total"]; got != 4 {
		t.Fatalf("folded t_events_total = %v, want 4", got)
	}
	for _, name := range []string{"t_level", "t_latency_seconds_count"} {
		if _, ok := oldest.Values[name]; !ok {
			t.Errorf("fold lost series %q", name)
		}
	}
}

func TestTimelineJSONLRoundTrip(t *testing.T) {
	_, tl, c, g, _ := timelineFixture(8)
	for round := 0; round < 3; round++ {
		c.Add(int64(round + 1))
		g.Set(float64(round) / 2)
		tl.Sample(round, float64(round)*5)
	}
	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	hdr, samples, err := ReadTimeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != timelineSchema || hdr.Capacity != 8 || hdr.Dropped != 0 {
		t.Fatalf("header = %+v", hdr)
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(samples))
	}
	want := tl.Samples()
	for i := range samples {
		a, _ := json.Marshal(samples[i])
		b, _ := json.Marshal(want[i])
		if !bytes.Equal(a, b) {
			t.Errorf("sample %d: %s != %s", i, a, b)
		}
	}

	// Byte reproducibility: two exports of the same ring are identical.
	var buf2 bytes.Buffer
	if err := tl.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := tl.WriteJSONL(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Fatal("repeated exports differ")
	}
}

func TestReadTimelineRejectsMalformedInput(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "not json\n",
		"bad schema": `{"schema":"other/v9","capacity":4,"dropped":0}` + "\n",
		"bad sample": `{"schema":"floatfl-timeline/v1","capacity":4,"dropped":0}` + "\nnope\n",
		"zero cap":   `{"schema":"floatfl-timeline/v1","capacity":0,"dropped":0}` + "\n",
	}
	for name, in := range cases {
		if _, _, err := ReadTimeline(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestTimelineCheckpointRoundTrip(t *testing.T) {
	regA, tlA, cA, gA, _ := timelineFixture(4)
	for round := 0; round < 6; round++ { // overflow the ring on purpose
		cA.Inc()
		gA.Set(float64(round))
		tlA.Sample(round, float64(round))
	}
	state, err := tlA.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}

	regB := NewRegistry()
	tlB := NewTimeline(regB, 4)
	if err := tlB.RestoreCheckpoint(state); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := tlA.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := tlB.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("restored export differs:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}

	// The restored timeline keeps delta-encoding against the carried
	// `last` view: an unchanged registry must produce an empty sample,
	// exactly as the original would.
	_ = regA
	if err := regB.RestoreSnapshot(regA.Snapshot()); err != nil {
		t.Fatal(err)
	}
	tlB.Sample(6, 6)
	if s := tlB.Samples(); len(s[len(s)-1].Values) != 0 {
		t.Fatalf("post-restore sample should be empty, got %v", s[len(s)-1].Values)
	}
}

func TestTimelineRestoreRejectsInvalidState(t *testing.T) {
	_, tl, _, _, _ := timelineFixture(4)
	tl.Sample(0, 0)
	before, err := tl.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"not json":        "nope",
		"wrong schema":    `{"schema":"x","capacity":4,"dropped":0}`,
		"zero capacity":   `{"schema":"floatfl-timeline/v1","capacity":0}`,
		"overfull":        `{"schema":"floatfl-timeline/v1","capacity":1,"samples":[{"round":0,"clock":0},{"round":1,"clock":1}]}`,
		"rounds not incr": `{"schema":"floatfl-timeline/v1","capacity":4,"samples":[{"round":1,"clock":0},{"round":1,"clock":1}]}`,
	}
	for name, in := range cases {
		if err := tl.RestoreCheckpoint([]byte(in)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	// Validate-before-mutate: the failed restores left the timeline
	// untouched.
	after, err := tl.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("rejected restore mutated the timeline")
	}
}

func TestTimelineSamplesSince(t *testing.T) {
	_, tl, c, _, _ := timelineFixture(8)
	for round := 0; round < 4; round++ {
		c.Inc()
		tl.Sample(round, float64(round))
	}
	if got := len(tl.SamplesSince(-1)); got != 4 {
		t.Fatalf("since -1: %d, want 4", got)
	}
	inc := tl.SamplesSince(1)
	if len(inc) != 2 || inc[0].Round != 2 || inc[1].Round != 3 {
		t.Fatalf("since 1: %+v", inc)
	}
	if got := len(tl.SamplesSince(3)); got != 0 {
		t.Fatalf("since 3: %d, want 0", got)
	}
	if got := tl.LatestRound(); got != 3 {
		t.Fatalf("latest = %d, want 3", got)
	}
	// The returned samples are deep copies: mutating them must not corrupt
	// the ring.
	inc[0].Values["t_events_total"] = -99
	if v := tl.Samples()[2].Values["t_events_total"]; v == -99 {
		t.Fatal("SamplesSince aliases internal state")
	}
}

func TestTimelineHandlerServesIncrementalSamples(t *testing.T) {
	_, tl, c, _, _ := timelineFixture(8)
	for round := 0; round < 3; round++ {
		c.Inc()
		tl.Sample(round, float64(round))
	}
	h := TimelineHandler(tl)

	get := func(url string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		return w
	}

	w := get("/v1/timeline")
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var resp TimelineResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Schema != timelineSchema || resp.Latest != 2 || len(resp.Samples) != 3 {
		t.Fatalf("resp = %+v", resp)
	}

	if err := json.Unmarshal(get("/v1/timeline?since=1").Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Samples) != 1 || resp.Samples[0].Round != 2 {
		t.Fatalf("since=1 resp = %+v", resp)
	}

	// Caught-up poll: empty but non-null samples array.
	if err := json.Unmarshal(get("/v1/timeline?since=2").Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Samples == nil || len(resp.Samples) != 0 {
		t.Fatalf("caught-up resp = %+v", resp)
	}

	if w := get("/v1/timeline?since=abc"); w.Code != 400 {
		t.Fatalf("bad since status = %d", w.Code)
	} else if !strings.Contains(w.Body.String(), "error") {
		t.Fatalf("bad since body = %q", w.Body.String())
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/timeline", nil))
	if w.Code != 405 {
		t.Fatalf("POST status = %d", w.Code)
	}
}

func TestMetricsFormatNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m_total").Inc()
	h := MetricsHandler(reg)

	do := func(url, accept string) *httptest.ResponseRecorder {
		r := httptest.NewRequest("GET", url, nil)
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}

	if w := do("/v1/metrics", ""); w.Header().Get("Content-Type") != "text/plain; charset=utf-8" {
		t.Fatalf("default Content-Type = %q", w.Header().Get("Content-Type"))
	} else if !strings.Contains(w.Body.String(), "m_total 1") {
		t.Fatalf("text body = %q", w.Body.String())
	}

	for _, req := range []struct{ url, accept string }{
		{"/v1/metrics?format=json", ""},
		{"/v1/metrics", "application/json"},
		{"/v1/metrics", "text/html, application/json;q=0.9"},
	} {
		w := do(req.url, req.accept)
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%+v: Content-Type = %q", req, ct)
		}
		var snap Snapshot
		if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if len(snap.Counters) != 1 || snap.Counters[0].Value != 1 {
			t.Fatalf("%+v: snapshot = %+v", req, snap)
		}
	}

	// ?format= beats the Accept header.
	if w := do("/v1/metrics?format=text", "application/json"); !strings.HasPrefix(w.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("format=text Content-Type = %q", w.Header().Get("Content-Type"))
	}

	// Unknown format values get a 400 with a typed JSON body.
	w := do("/v1/metrics?format=xml", "")
	if w.Code != 400 {
		t.Fatalf("format=xml status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type = %q", ct)
	}
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error == "" {
		t.Fatalf("error body = %q (%v)", w.Body.String(), err)
	}
}
