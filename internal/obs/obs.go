// Package obs is the deterministic telemetry layer shared by the FL
// engines, the distributed aggregator, and the CLIs: a metrics registry
// (counters, gauges, fixed-bucket histograms) plus a span tracer for the
// per-round phase structure.
//
// Two properties drive the design:
//
//   - Zero-allocation hot path. Handles are pre-registered once (the only
//     map lookups happen at registration time); every event afterwards is
//     a single atomic operation on a handle the caller holds. All handle
//     methods are nil-receiver safe, so uninstrumented runs pay one
//     predictable branch per event and allocate nothing — no throwaway
//     registry, no per-call nil plumbing.
//
//   - Determinism. For a fixed seed, the exported snapshot must be
//     byte-identical regardless of Parallelism or GOMAXPROCS. Counter and
//     histogram updates are integer atomic adds (commutative, so the
//     interleaving cannot change the totals); histogram sums are stored in
//     fixed-point micro-units so no floating-point addition order ever
//     leaks into the output; gauges are only written from single-threaded
//     engine passes; and exposition collects then sorts by name, never
//     exposing map iteration order.
//
// The package deliberately has no clock: span timestamps are supplied by
// the caller (virtual simulation seconds in internal/fl, the injected
// dist.Clock in internal/dist), which keeps obs inside the repository's
// no-wall-clock determinism contract.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value of a
// nil *Counter is usable: every method no-ops (or returns zero), so
// uninstrumented call sites need no guards.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored; counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64. Writes must come from a
// single-threaded owner pass (the engines' dispatch/collect passes, or
// under the dist server's mutex) so the final value is deterministic.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// sumScale is the fixed-point resolution of histogram sums: one
// micro-unit. Storing sums as integers makes concurrent Observe calls
// commutative — float addition order can never change the snapshot.
const sumScale = 1e6

// Histogram is a fixed-bucket distribution. Bucket bounds are upper
// bounds (inclusive), with an implicit +Inf overflow bucket; counts and
// the fixed-point sum are atomic integers, so Observe is safe from any
// worker and the totals are independent of interleaving.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sumMicros atomic.Int64
	total     atomic.Int64
}

// Observe records one sample. Non-finite samples are dropped (they would
// poison the fixed-point sum).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumMicros.Add(int64(math.Round(v * sumScale)))
}

// Count returns the number of samples observed (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed samples, reconstructed from the
// fixed-point accumulator (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumMicros.Load()) / sumScale
}

// Registry owns a namespace of metrics. Registration (Counter, Gauge,
// Histogram) is idempotent per name — re-registering returns the existing
// handle, which lets independent components (e.g. per-client RL agents)
// share one set of counters — and is the only place a map is touched; the
// returned handles are then update-path-free of locks and lookups.
//
// All methods are safe on a nil *Registry and return nil handles, so a
// component can be handed "no registry" and instrument itself anyway.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter registers (or fetches) the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkNameLocked(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers (or fetches) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkNameLocked(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram registers (or fetches) the histogram with the given name.
// bounds are strictly increasing upper bounds; an implicit +Inf bucket is
// appended. Re-registration returns the existing histogram and ignores
// bounds. Invalid bounds panic: metric registration runs once at startup,
// so a bad bucket layout is a programming error, not a runtime condition.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkNameLocked(name, "histogram")
	h, ok := r.histograms[name]
	if ok {
		return h
	}
	for i := range bounds {
		if math.IsNaN(bounds[i]) || math.IsInf(bounds[i], 0) || (i > 0 && bounds[i] <= bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds must be finite and strictly increasing, got %v", name, bounds))
		}
	}
	h = &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// checkNameLocked panics on an empty name or a name already registered
// under a different metric kind than the caller's (kind).
func (r *Registry) checkNameLocked(name, kind string) {
	if name == "" {
		panic("obs: metric name must be non-empty")
	}
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: %q already registered as a counter, not a %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: %q already registered as a gauge, not a %s", name, kind))
	}
	if _, ok := r.histograms[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: %q already registered as a histogram, not a %s", name, kind))
	}
}

// CounterSnapshot is one counter's exported state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Bucket is one histogram bucket: the cumulative count of samples <= LE.
// The final bucket has LE = +Inf (serialized as the string "+Inf").
type Bucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is one histogram's exported state. Sum is
// reconstructed from the fixed-point accumulator, so it is bit-identical
// across any Observe interleaving.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a consistent, name-sorted export of a registry. Field and
// slice ordering are fixed, so both the JSON and text renderings are
// byte-identical for identical metric values.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// snapshot renders the histogram's cumulative bucket view. The bucket
// order follows h.bounds (fixed at registration), so it is deterministic
// regardless of Observe interleaving.
func (h *Histogram) snapshot(name string) HistogramSnapshot {
	hs := HistogramSnapshot{Name: name, Count: h.Count(), Sum: h.Sum()}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		hs.Buckets = append(hs.Buckets, Bucket{LE: le, Count: cum})
	}
	return hs
}

// Snapshot collects every metric, sorted by name within each kind. The
// iteration over the internal maps is collect-then-sort: map order never
// reaches the caller.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	for name, h := range r.histograms {
		snap.Histograms = append(snap.Histograms, h.snapshot(name))
	}
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// WriteText renders the snapshot in a flat, Prometheus-flavored text
// format: `name value` lines for counters and gauges, and
// `name_count` / `name_sum` / `name_bucket{le="..."}` lines per
// histogram. Output is sorted and reproducible.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}

// WriteText renders an already-collected snapshot (see Registry.WriteText).
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%s %s\n", g.Name, formatFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "%s_count %d\n%s_sum %s\n", h.Name, h.Count, h.Name, formatFloat(h.Sum)); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, b.LE, b.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat is the single float rendering used across all expositions:
// shortest round-trip representation, so equal values always produce
// equal bytes.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
