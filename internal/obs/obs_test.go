package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	if again := r.Counter("events_total"); again != c {
		t.Fatal("re-registration did not return the same handle")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("acc")
	g.Set(0.75)
	g.Set(0.5)
	if got := g.Value(); got != 0.5 {
		t.Fatalf("gauge value = %v, want 0.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 1.5, 7, 100, math.NaN(), math.Inf(1)} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5 (non-finite dropped)", got)
	}
	if got, want := h.Sum(), 110.0; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot histograms = %d, want 1", len(snap.Histograms))
	}
	buckets := snap.Histograms[0].Buckets
	// Cumulative: <=1 holds {0.5, 1}; <=5 adds 1.5; <=10 adds 7; +Inf adds 100.
	want := []Bucket{{"1", 2}, {"5", 3}, {"10", 4}, {"+Inf", 5}}
	if !reflect.DeepEqual(buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", buckets, want)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-increasing bounds")
		}
	}()
	NewRegistry().Histogram("bad", []float64{5, 1})
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering gauge over counter name")
		}
	}()
	r.Gauge("x")
}

func TestNilHandlesAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteText: err=%v len=%d", err, buf.Len())
	}
}

// TestSnapshotSorted seeds names in a scrambled order and checks the
// exposition is name-sorted — the registry must never leak map order.
func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zulu", "alpha", "mike", "bravo"} {
		r.Counter(name).Inc()
	}
	snap := r.Snapshot()
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Name >= snap.Counters[i].Name {
			t.Fatalf("counters not sorted: %q before %q", snap.Counters[i-1].Name, snap.Counters[i].Name)
		}
	}
}

// TestExpositionDeterministic builds the same metric state twice (with
// different registration and update interleavings) and requires
// byte-identical text and JSON output.
func TestExpositionDeterministic(t *testing.T) {
	build := func(reverse bool) *Registry {
		r := NewRegistry()
		names := []string{"a_total", "b_total", "c_total"}
		if reverse {
			names = []string{"c_total", "b_total", "a_total"}
		}
		for _, n := range names {
			r.Counter(n)
		}
		r.Counter("a_total").Add(1)
		r.Counter("b_total").Add(2)
		r.Counter("c_total").Add(3)
		r.Gauge("acc").Set(0.125)
		h := r.Histogram("sec", []float64{0.1, 1, 10})
		for _, v := range []float64{0.05, 0.5, 5, 50} {
			h.Observe(v)
		}
		return r
	}
	var t1, t2, j1, j2 bytes.Buffer
	if err := build(false).WriteText(&t1); err != nil {
		t.Fatal(err)
	}
	if err := build(true).WriteText(&t2); err != nil {
		t.Fatal(err)
	}
	if t1.String() != t2.String() {
		t.Fatalf("text exposition differs:\n%s\nvs\n%s", t1.String(), t2.String())
	}
	enc1 := json.NewEncoder(&j1)
	if err := enc1.Encode(build(false).Snapshot()); err != nil {
		t.Fatal(err)
	}
	enc2 := json.NewEncoder(&j2)
	if err := enc2.Encode(build(true).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Fatalf("json exposition differs:\n%s\nvs\n%s", j1.String(), j2.String())
	}
	for _, want := range []string{
		"a_total 1\n", "acc 0.125\n", "sec_count 4\n", "sec_sum 55.55\n", `sec_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(t1.String(), want) {
			t.Errorf("text exposition missing %q:\n%s", want, t1.String())
		}
	}
}

// TestConcurrentUpdatesDeterministic hammers one counter and one
// histogram from many goroutines: totals, the fixed-point sum, and bucket
// counts must equal the sequential result exactly — interleaving can
// never shift a bit of the snapshot.
func TestConcurrentUpdatesDeterministic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("v", []float64{1, 2, 4})
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%5) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// 1000 iterations cycle i%5 → values 0.5,1.5,2.5,3.5,4.5 each 200 times
	// per worker: sum per worker = 200*(0.5+1.5+2.5+3.5+4.5) = 2500.
	if got, want := h.Sum(), float64(workers*2500); got != want {
		t.Fatalf("histogram sum = %v, want %v", got, want)
	}
}

// TestHotPathZeroAlloc is the zero-alloc contract for instrumented inner
// loops: once handles are registered, Inc/Add/Set/Observe allocate
// nothing, and neither do their nil no-op twins.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{0.1, 1, 10})
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(3.5)
		h.Observe(0.42)
	}); n != 0 {
		t.Fatalf("live handle hot path allocates %v/op, want 0", n)
	}
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		nilC.Inc()
		nilG.Set(1)
		nilH.Observe(1)
	}); n != 0 {
		t.Fatalf("nil handle hot path allocates %v/op, want 0", n)
	}
}
