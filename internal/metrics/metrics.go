// Package metrics implements the paper's evaluation metrics: Top-10% /
// average / Bottom-10% client accuracy, dropout accounting by cause,
// per-technique success/failure tallies, participation-bias summaries, and
// the resource-inefficiency ledger (compute hours, communication hours, and
// memory terabytes wasted by dropped clients — Section 6.1 "Metrics").
package metrics

import (
	"math"
	"sort"

	"floatfl/internal/device"
	"floatfl/internal/opt"
)

// AccuracyStats summarizes the per-client accuracy distribution.
type AccuracyStats struct {
	Top10    float64 // mean accuracy of the best 10% of clients
	Average  float64
	Bottom10 float64 // mean accuracy of the worst 10% of clients
}

// ComputeAccuracyStats computes Top10/Average/Bottom10 over per-client
// accuracies. With fewer than 10 clients, Top10/Bottom10 degenerate to the
// single best/worst client.
func ComputeAccuracyStats(accs []float64) AccuracyStats {
	if len(accs) == 0 {
		return AccuracyStats{}
	}
	sorted := append([]float64(nil), accs...)
	sort.Float64s(sorted)
	k := len(sorted) / 10
	if k == 0 {
		k = 1
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	return AccuracyStats{
		Top10:    mean(sorted[len(sorted)-k:]),
		Average:  mean(sorted),
		Bottom10: mean(sorted[:k]),
	}
}

// Inefficiency is the paper's resource-waste triple: time spent computing
// and communicating for rounds whose results were discarded, and the
// memory those rounds held.
type Inefficiency struct {
	ComputeHours float64
	CommHours    float64
	MemoryTB     float64
}

// Add accumulates another inefficiency triple.
func (in *Inefficiency) Add(o Inefficiency) {
	in.ComputeHours += o.ComputeHours
	in.CommHours += o.CommHours
	in.MemoryTB += o.MemoryTB
}

// Ledger accumulates everything a training run needs to reproduce the
// paper's figures: per-client participation, per-technique outcomes,
// dropout causes, and wasted-versus-useful resource totals.
type Ledger struct {
	clients int

	Selected  []int // per-client selection count (dense mode; nil in sparse mode)
	Completed []int // per-client completion count (dense mode; nil in sparse mode)

	// Sparse mode (NewSparseLedger): participation tallies in sharded
	// sorted structures costing O(participants) memory — the ledger a
	// million-client lazy population uses. All aggregate methods work in
	// either mode; only the dense Selected/Completed slices are absent.
	selectedS  *ShardedCounts
	completedS *ShardedCounts

	DropsByReason map[device.DropReason]int
	TotalDrops    int
	TotalRounds   int // client-rounds executed

	// TechSuccess / TechFailure count outcomes per applied technique
	// (Fig 6 / Fig 11 right).
	TechSuccess map[opt.Technique]int
	TechFailure map[opt.Technique]int

	// Discarded counts client-rounds whose results were thrown away
	// (FedBuff over-selection and staleness).
	Discarded int

	Wasted Inefficiency
	Useful Inefficiency

	// WallClockSeconds accumulates the duration of each round (the
	// slowest completing client in synchronous FL).
	WallClockSeconds float64
}

// NewLedger creates a dense ledger for a population of the given size.
func NewLedger(clients int) *Ledger {
	return &Ledger{
		clients:       clients,
		Selected:      make([]int, clients),
		Completed:     make([]int, clients),
		DropsByReason: make(map[device.DropReason]int),
		TechSuccess:   make(map[opt.Technique]int),
		TechFailure:   make(map[opt.Technique]int),
	}
}

// NewSparseLedger creates a ledger whose per-client tallies cost
// O(participants) memory — for lazy populations where allocating a slice
// per million clients would defeat the bounded-working-set contract.
func NewSparseLedger(clients int) *Ledger {
	return &Ledger{
		clients:       clients,
		selectedS:     NewShardedCounts(),
		completedS:    NewShardedCounts(),
		DropsByReason: make(map[device.DropReason]int),
		TechSuccess:   make(map[opt.Technique]int),
		TechFailure:   make(map[opt.Technique]int),
	}
}

// Sparse reports whether the ledger tallies participation sparsely.
func (l *Ledger) Sparse() bool { return l.selectedS != nil }

// SelectedCount returns client id's selection tally in either mode.
func (l *Ledger) SelectedCount(id int) int {
	if l.Sparse() {
		return l.selectedS.Get(id)
	}
	if id >= 0 && id < len(l.Selected) {
		return l.Selected[id]
	}
	return 0
}

// CompletedCount returns client id's completion tally in either mode.
func (l *Ledger) CompletedCount(id int) int {
	if l.Sparse() {
		return l.completedS.Get(id)
	}
	if id >= 0 && id < len(l.Completed) {
		return l.Completed[id]
	}
	return 0
}

// Record ingests one client-round outcome.
func (l *Ledger) Record(clientID int, tech opt.Technique, out device.Outcome) {
	if clientID >= 0 && clientID < l.clients {
		if l.Sparse() {
			l.selectedS.Inc(clientID)
			if out.Completed {
				l.completedS.Inc(clientID)
			}
		} else {
			l.Selected[clientID]++
			if out.Completed {
				l.Completed[clientID]++
			}
		}
	}
	l.TotalRounds++
	in := Inefficiency{
		ComputeHours: out.Cost.ComputeSeconds / 3600,
		CommHours:    out.Cost.CommSeconds / 3600,
		MemoryTB:     out.Cost.MemoryBytes / 1e12,
	}
	if out.Completed {
		l.TechSuccess[tech]++
		l.Useful.Add(in)
	} else {
		l.TotalDrops++
		l.DropsByReason[out.Reason]++
		l.TechFailure[tech]++
		l.Wasted.Add(in)
	}
}

// RecordDiscarded ingests a client-round whose result was thrown away even
// though it may have completed — FedBuff's in-flight tasks at shutdown and
// over-stale updates. The resources count as wasted; the client-round
// counts toward participation but not toward dropouts.
func (l *Ledger) RecordDiscarded(clientID int, tech opt.Technique, out device.Outcome) {
	if clientID >= 0 && clientID < l.clients {
		if l.Sparse() {
			l.selectedS.Inc(clientID)
		} else {
			l.Selected[clientID]++
		}
	}
	l.TotalRounds++
	l.Discarded++
	l.Wasted.Add(Inefficiency{
		ComputeHours: out.Cost.ComputeSeconds / 3600,
		CommHours:    out.Cost.CommSeconds / 3600,
		MemoryTB:     out.Cost.MemoryBytes / 1e12,
	})
}

// NeverSelectedFraction returns the share of the population that was never
// chosen — the paper's selection-bias measure (Fig 2a discussion).
func (l *Ledger) NeverSelectedFraction() float64 {
	if l.clients == 0 {
		return 0
	}
	if l.Sparse() {
		return float64(l.clients-l.selectedS.Distinct()) / float64(l.clients)
	}
	n := 0
	for _, c := range l.Selected {
		if c == 0 {
			n++
		}
	}
	return float64(n) / float64(l.clients)
}

// NeverCompletedFraction returns the share of the population that never
// successfully contributed an update.
func (l *Ledger) NeverCompletedFraction() float64 {
	if l.clients == 0 {
		return 0
	}
	if l.Sparse() {
		return float64(l.clients-l.completedS.Distinct()) / float64(l.clients)
	}
	n := 0
	for _, c := range l.Completed {
		if c == 0 {
			n++
		}
	}
	return float64(n) / float64(l.clients)
}

// SelectionGini returns the Gini coefficient of selection counts: 0 means
// perfectly even participation, 1 means a single client absorbed all
// selections.
func (l *Ledger) SelectionGini() float64 {
	if l.Sparse() {
		return giniWithZeros(l.selectedS.Counts(), l.clients-l.selectedS.Distinct())
	}
	return giniWithZeros(l.Selected, 0)
}

// giniWithZeros computes the Gini coefficient over nonzero ∪ {0}^zeros
// without materializing the zero prefix — sparse ledgers pass only the
// participants plus the count of never-selected clients.
func giniWithZeros(nonzero []int, zeros int) float64 {
	n := len(nonzero) + zeros
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), nonzero...)
	sort.Ints(sorted)
	var cum, total float64
	for i, c := range sorted {
		// Zeros sort first and contribute nothing to either sum; the
		// nonzero element at local index i has global rank zeros+i+1.
		cum += float64(zeros+i+1) * float64(c)
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
}

// SelectionJainIndex returns Jain's fairness index over selection counts:
// 1 means perfectly even participation, 1/n means one client absorbed
// everything. It complements the Gini coefficient with the fairness
// measure most FL selection papers report.
func (l *Ledger) SelectionJainIndex() float64 {
	if l.Sparse() {
		// Counts() iterates in a fixed shard-major sorted order, so the
		// float accumulation below is byte-reproducible.
		return jainWithZeros(l.selectedS.Counts(), l.clients-l.selectedS.Distinct())
	}
	return jainWithZeros(l.Selected, 0)
}

func jainWithZeros(nonzero []int, zeros int) float64 {
	n := len(nonzero) + zeros
	if n == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, c := range nonzero {
		x := float64(c)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// DropRate returns the fraction of executed client-rounds that dropped.
func (l *Ledger) DropRate() float64 {
	if l.TotalRounds == 0 {
		return 0
	}
	return float64(l.TotalDrops) / float64(l.TotalRounds)
}

// SuccessRate returns 1 - DropRate.
func (l *Ledger) SuccessRate() float64 { return 1 - l.DropRate() }

// TotalInefficiency returns the wasted resource triple (the figures'
// "compute/communication/memory inefficiency" bars).
func (l *Ledger) TotalInefficiency() Inefficiency { return l.Wasted }

// Percentile returns the p-th percentile (0..100) of the samples using
// linear interpolation; it is used by trace-distribution figures.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of the samples (0 for empty input).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var s float64
	for _, x := range samples {
		s += x
	}
	return s / float64(len(samples))
}

// Std returns the population standard deviation of the samples.
func Std(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	m := Mean(samples)
	var s float64
	for _, x := range samples {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(samples)))
}
