package metrics

import "sort"

// countShards is the shard fan-out of ShardedCounts. Sharding keeps each
// map small under million-client populations (bounded rehash pauses) and
// gives iteration a natural deterministic order: shard-major, sorted IDs
// within each shard.
const countShards = 64

// ShardedCounts is a sparse per-client counter: memory is O(distinct
// clients counted), not O(population). It backs the ledger's Selected /
// Completed tallies in sparse mode, where a million-client run touches
// only the participants.
type ShardedCounts struct {
	shards [countShards]map[int]int
	n      int // distinct ids with a nonzero count
}

// NewShardedCounts constructs an empty sparse counter.
func NewShardedCounts() *ShardedCounts {
	s := &ShardedCounts{}
	for i := range s.shards {
		s.shards[i] = make(map[int]int)
	}
	return s
}

// Inc increments id's count.
func (s *ShardedCounts) Inc(id int) {
	m := s.shards[uint(id)%countShards]
	if _, ok := m[id]; !ok {
		s.n++
	}
	m[id]++
}

// Get returns id's count (0 if never incremented).
func (s *ShardedCounts) Get(id int) int { return s.shards[uint(id)%countShards][id] }

// Distinct returns the number of ids with a nonzero count.
func (s *ShardedCounts) Distinct() int { return s.n }

// Counts returns all nonzero counts in deterministic order: shard-major,
// ascending ID within each shard. Aggregates that are order-sensitive in
// float arithmetic (Jain's index) rely on this fixed order for
// byte-reproducible results.
func (s *ShardedCounts) Counts() []int {
	out := make([]int, 0, s.n)
	ids := make([]int, 0, 64)
	for _, m := range s.shards {
		ids = ids[:0]
		for id := range m {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			out = append(out, m[id])
		}
	}
	return out
}
