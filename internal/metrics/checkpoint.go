package metrics

import (
	"fmt"
	"sort"

	"floatfl/internal/device"
	"floatfl/internal/opt"
)

// IDCount is one (client ID, count) pair of a sparse tally's serialized
// form.
type IDCount struct {
	ID int `json:"id"`
	N  int `json:"n"`
}

// Export returns the nonzero counts as (id, count) pairs in the same
// deterministic shard-major, sorted-within-shard order Counts uses, so
// serialized ledgers are byte-stable across processes.
func (s *ShardedCounts) Export() []IDCount {
	out := make([]IDCount, 0, s.n)
	ids := make([]int, 0, 64)
	for _, m := range s.shards {
		ids = ids[:0]
		for id := range m {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			out = append(out, IDCount{ID: id, N: m[id]})
		}
	}
	return out
}

// Restore replaces the counter's contents with the exported pairs.
// Non-positive counts are dropped (Inc can never have produced them).
func (s *ShardedCounts) Restore(items []IDCount) {
	for i := range s.shards {
		s.shards[i] = make(map[int]int)
	}
	s.n = 0
	for _, it := range items {
		if it.N <= 0 {
			continue
		}
		m := s.shards[uint(it.ID)%countShards]
		if _, ok := m[it.ID]; !ok {
			s.n++
		}
		m[it.ID] = it.N
	}
}

// LedgerState is a ledger's complete serializable state. The int-typed
// enum keys (device.DropReason, opt.Technique) round-trip through JSON as
// quoted integers, keeping the format free of string parsing.
type LedgerState struct {
	Clients         int                       `json:"clients"`
	Sparse          bool                      `json:"sparse"`
	Selected        []int                     `json:"selected,omitempty"`
	Completed       []int                     `json:"completed,omitempty"`
	SelectedSparse  []IDCount                 `json:"selected_sparse,omitempty"`
	CompletedSparse []IDCount                 `json:"completed_sparse,omitempty"`
	DropsByReason   map[device.DropReason]int `json:"drops_by_reason,omitempty"`
	TotalDrops      int                       `json:"total_drops"`
	TotalRounds     int                       `json:"total_rounds"`
	TechSuccess     map[opt.Technique]int     `json:"tech_success,omitempty"`
	TechFailure     map[opt.Technique]int     `json:"tech_failure,omitempty"`
	Discarded       int                       `json:"discarded"`
	Wasted          Inefficiency              `json:"wasted"`
	Useful          Inefficiency              `json:"useful"`
	WallClock       float64                   `json:"wall_clock_seconds"`
}

// CheckpointState captures the ledger. All containers are deep-copied, so
// the state stays valid while the live ledger keeps accumulating.
func (l *Ledger) CheckpointState() *LedgerState {
	st := &LedgerState{
		Clients:       l.clients,
		Sparse:        l.Sparse(),
		DropsByReason: copyMap(l.DropsByReason),
		TotalDrops:    l.TotalDrops,
		TotalRounds:   l.TotalRounds,
		TechSuccess:   copyMap(l.TechSuccess),
		TechFailure:   copyMap(l.TechFailure),
		Discarded:     l.Discarded,
		Wasted:        l.Wasted,
		Useful:        l.Useful,
		WallClock:     l.WallClockSeconds,
	}
	if l.Sparse() {
		st.SelectedSparse = l.selectedS.Export()
		st.CompletedSparse = l.completedS.Export()
	} else {
		st.Selected = append([]int(nil), l.Selected...)
		st.Completed = append([]int(nil), l.Completed...)
	}
	return st
}

// RestoreCheckpoint replaces the ledger's state with a captured one. The
// ledger must have been constructed for the same population size and
// sparseness; on error nothing is modified.
func (l *Ledger) RestoreCheckpoint(st *LedgerState) error {
	if st == nil {
		return fmt.Errorf("metrics: nil ledger state")
	}
	if st.Clients != l.clients {
		return fmt.Errorf("metrics: ledger state for %d clients, ledger has %d", st.Clients, l.clients)
	}
	if st.Sparse != l.Sparse() {
		return fmt.Errorf("metrics: ledger state sparse=%v, ledger sparse=%v", st.Sparse, l.Sparse())
	}
	if !st.Sparse && (len(st.Selected) != l.clients || len(st.Completed) != l.clients) {
		return fmt.Errorf("metrics: dense ledger state has %d/%d tallies, want %d",
			len(st.Selected), len(st.Completed), l.clients)
	}
	if st.Sparse {
		l.selectedS.Restore(st.SelectedSparse)
		l.completedS.Restore(st.CompletedSparse)
	} else {
		copy(l.Selected, st.Selected)
		copy(l.Completed, st.Completed)
	}
	l.DropsByReason = copyMap(st.DropsByReason)
	if l.DropsByReason == nil {
		l.DropsByReason = make(map[device.DropReason]int)
	}
	l.TechSuccess = copyMap(st.TechSuccess)
	if l.TechSuccess == nil {
		l.TechSuccess = make(map[opt.Technique]int)
	}
	l.TechFailure = copyMap(st.TechFailure)
	if l.TechFailure == nil {
		l.TechFailure = make(map[opt.Technique]int)
	}
	l.TotalDrops = st.TotalDrops
	l.TotalRounds = st.TotalRounds
	l.Discarded = st.Discarded
	l.Wasted = st.Wasted
	l.Useful = st.Useful
	l.WallClockSeconds = st.WallClock
	return nil
}

// copyMap shallow-copies an enum-keyed tally map (nil in, nil out).
func copyMap[K comparable](m map[K]int) map[K]int {
	if m == nil {
		return nil
	}
	out := make(map[K]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
