package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"floatfl/internal/device"
	"floatfl/internal/opt"
)

func TestComputeAccuracyStats(t *testing.T) {
	accs := make([]float64, 100)
	for i := range accs {
		accs[i] = float64(i) / 100
	}
	s := ComputeAccuracyStats(accs)
	if s.Top10 <= s.Average || s.Average <= s.Bottom10 {
		t.Fatalf("ordering violated: %+v", s)
	}
	if math.Abs(s.Average-0.495) > 1e-9 {
		t.Fatalf("average = %v, want 0.495", s.Average)
	}
	// Top10 = mean of 0.90..0.99 = 0.945
	if math.Abs(s.Top10-0.945) > 1e-9 {
		t.Fatalf("top10 = %v, want 0.945", s.Top10)
	}
	if math.Abs(s.Bottom10-0.045) > 1e-9 {
		t.Fatalf("bottom10 = %v, want 0.045", s.Bottom10)
	}
}

func TestAccuracyStatsSmallInputs(t *testing.T) {
	if s := ComputeAccuracyStats(nil); s.Average != 0 {
		t.Fatal("empty input should produce zeros")
	}
	s := ComputeAccuracyStats([]float64{0.5})
	if s.Top10 != 0.5 || s.Bottom10 != 0.5 || s.Average != 0.5 {
		t.Fatalf("single client stats wrong: %+v", s)
	}
	s = ComputeAccuracyStats([]float64{0.2, 0.8})
	if s.Top10 != 0.8 || s.Bottom10 != 0.2 {
		t.Fatalf("two-client stats wrong: %+v", s)
	}
}

func outcome(completed bool, reason device.DropReason) device.Outcome {
	return device.Outcome{
		Completed: completed,
		Reason:    reason,
		Cost: device.Cost{
			ComputeSeconds: 3600, // 1 hour
			CommSeconds:    1800, // 0.5 hour
			MemoryBytes:    1e12, // 1 TB
		},
	}
}

func TestLedgerRecord(t *testing.T) {
	l := NewLedger(5)
	l.Record(0, opt.TechNone, outcome(true, device.DropNone))
	l.Record(1, opt.TechQuant8, outcome(false, device.DropDeadline))
	l.Record(1, opt.TechQuant8, outcome(true, device.DropNone))

	if l.TotalRounds != 3 || l.TotalDrops != 1 {
		t.Fatalf("rounds=%d drops=%d", l.TotalRounds, l.TotalDrops)
	}
	if l.Selected[1] != 2 || l.Completed[1] != 1 {
		t.Fatalf("client 1 selected=%d completed=%d", l.Selected[1], l.Completed[1])
	}
	if l.TechSuccess[opt.TechQuant8] != 1 || l.TechFailure[opt.TechQuant8] != 1 {
		t.Fatal("per-technique tallies wrong")
	}
	if l.DropsByReason[device.DropDeadline] != 1 {
		t.Fatal("dropout reason not recorded")
	}
	if math.Abs(l.Wasted.ComputeHours-1) > 1e-9 || math.Abs(l.Wasted.CommHours-0.5) > 1e-9 {
		t.Fatalf("wasted ledger wrong: %+v", l.Wasted)
	}
	if math.Abs(l.Useful.ComputeHours-2) > 1e-9 {
		t.Fatalf("useful ledger wrong: %+v", l.Useful)
	}
	if math.Abs(l.Wasted.MemoryTB-1) > 1e-9 {
		t.Fatalf("memory TB wrong: %+v", l.Wasted)
	}
	if got := l.DropRate(); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("DropRate = %v", got)
	}
	if got := l.SuccessRate(); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("SuccessRate = %v", got)
	}
}

func TestLedgerOutOfRangeClient(t *testing.T) {
	l := NewLedger(2)
	l.Record(99, opt.TechNone, outcome(true, device.DropNone)) // must not panic
	if l.TotalRounds != 1 {
		t.Fatal("out-of-range client round not counted globally")
	}
}

func TestNeverSelectedFraction(t *testing.T) {
	l := NewLedger(4)
	l.Record(0, opt.TechNone, outcome(true, device.DropNone))
	l.Record(1, opt.TechNone, outcome(false, device.DropDeadline))
	if got := l.NeverSelectedFraction(); got != 0.5 {
		t.Fatalf("NeverSelectedFraction = %v, want 0.5", got)
	}
	if got := l.NeverCompletedFraction(); got != 0.75 {
		t.Fatalf("NeverCompletedFraction = %v, want 0.75", got)
	}
}

func TestSelectionGini(t *testing.T) {
	even := NewLedger(4)
	for i := 0; i < 4; i++ {
		even.Record(i, opt.TechNone, outcome(true, device.DropNone))
	}
	if g := even.SelectionGini(); math.Abs(g) > 1e-9 {
		t.Fatalf("even selection gini = %v, want 0", g)
	}
	skew := NewLedger(4)
	for i := 0; i < 8; i++ {
		skew.Record(0, opt.TechNone, outcome(true, device.DropNone))
	}
	if g := skew.SelectionGini(); g < 0.7 {
		t.Fatalf("single-client selection gini = %v, want near (n-1)/n", g)
	}
	if NewLedger(0).SelectionGini() != 0 {
		t.Fatal("empty ledger gini should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("percentile endpoints wrong")
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %v, want 2", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Std(xs); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Std = %v, want 2", got)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty Mean/Std should be 0")
	}
}

func TestInefficiencyAdd(t *testing.T) {
	a := Inefficiency{ComputeHours: 1, CommHours: 2, MemoryTB: 3}
	a.Add(Inefficiency{ComputeHours: 0.5, CommHours: 0.5, MemoryTB: 0.5})
	if a.ComputeHours != 1.5 || a.CommHours != 2.5 || a.MemoryTB != 3.5 {
		t.Fatalf("Add = %+v", a)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneQuick(t *testing.T) {
	f := func(raw []float64, p1Raw, p2Raw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		p1 := float64(p1Raw) / 255 * 100
		p2 := float64(p2Raw) / 255 * 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := Percentile(raw, 0), Percentile(raw, 100)
		v1, v2 := Percentile(raw, p1), Percentile(raw, p2)
		return v1 <= v2+1e-12 && v1 >= lo-1e-12 && v2 <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: gini is in [0,1] for any non-negative counts.
func TestGiniBoundsQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		l := NewLedger(len(raw))
		for i, c := range raw {
			for j := 0; j < int(c)%20; j++ {
				l.Record(i, opt.TechNone, outcome(true, device.DropNone))
			}
		}
		g := l.SelectionGini()
		return g >= -1e-9 && g <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionJainIndex(t *testing.T) {
	even := NewLedger(4)
	for i := 0; i < 4; i++ {
		even.Record(i, opt.TechNone, outcome(true, device.DropNone))
	}
	if j := even.SelectionJainIndex(); math.Abs(j-1) > 1e-9 {
		t.Fatalf("even participation Jain = %v, want 1", j)
	}
	skew := NewLedger(4)
	for i := 0; i < 8; i++ {
		skew.Record(0, opt.TechNone, outcome(true, device.DropNone))
	}
	if j := skew.SelectionJainIndex(); math.Abs(j-0.25) > 1e-9 {
		t.Fatalf("single-client Jain = %v, want 1/n = 0.25", j)
	}
	if NewLedger(0).SelectionJainIndex() != 0 {
		t.Fatal("empty ledger Jain should be 0")
	}
	if NewLedger(3).SelectionJainIndex() != 0 {
		t.Fatal("zero-selection ledger Jain should be 0")
	}
}

// Property: Jain's index lies in [1/n, 1] for any ledger with selections.
func TestJainBoundsQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		l := NewLedger(len(raw))
		any := false
		for i, c := range raw {
			for j := 0; j < int(c)%10; j++ {
				l.Record(i, opt.TechNone, outcome(true, device.DropNone))
				any = true
			}
		}
		j := l.SelectionJainIndex()
		if !any {
			return j == 0
		}
		return j >= 1/float64(len(raw))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
