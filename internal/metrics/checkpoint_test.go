package metrics

import (
	"encoding/json"
	"testing"

	"floatfl/internal/device"
	"floatfl/internal/opt"
)

// exercise drives a ledger through a representative mix of outcomes.
func exercise(l *Ledger) {
	l.Record(3, opt.TechNone, device.Outcome{Completed: true, Cost: device.Cost{ComputeSeconds: 360, CommSeconds: 36}})
	l.Record(70, opt.TechQuant8, device.Outcome{Completed: false, Reason: device.DropDeadline, Cost: device.Cost{ComputeSeconds: 720}})
	l.Record(3, opt.TechPrune50, device.Outcome{Completed: true})
	l.RecordDiscarded(129, opt.TechNone, device.Outcome{Cost: device.Cost{CommSeconds: 90}})
	l.WallClockSeconds = 123.25
}

// aggregates collects every order-sensitive derived statistic.
func aggregates(l *Ledger) [6]float64 {
	return [6]float64{
		l.SelectionGini(), l.SelectionJainIndex(),
		l.NeverSelectedFraction(), l.NeverCompletedFraction(),
		l.DropRate(), l.WallClockSeconds,
	}
}

// TestLedgerCheckpointRoundTrip proves state → JSON → restore reproduces
// every tally and aggregate exactly, in both dense and sparse modes.
func TestLedgerCheckpointRoundTrip(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		mk := NewLedger
		if sparse {
			mk = NewSparseLedger
		}
		src := mk(200)
		exercise(src)
		blob, err := json.Marshal(src.CheckpointState())
		if err != nil {
			t.Fatalf("sparse=%v: marshal: %v", sparse, err)
		}
		var st LedgerState
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatalf("sparse=%v: unmarshal: %v", sparse, err)
		}
		dst := mk(200)
		if err := dst.RestoreCheckpoint(&st); err != nil {
			t.Fatalf("sparse=%v: restore: %v", sparse, err)
		}
		if aggregates(dst) != aggregates(src) {
			t.Fatalf("sparse=%v: aggregates diverge: %v vs %v", sparse, aggregates(dst), aggregates(src))
		}
		for _, id := range []int{0, 3, 70, 129, 199} {
			if dst.SelectedCount(id) != src.SelectedCount(id) || dst.CompletedCount(id) != src.CompletedCount(id) {
				t.Fatalf("sparse=%v: client %d tallies diverge", sparse, id)
			}
		}
		if dst.DropsByReason[device.DropDeadline] != 1 || dst.TechSuccess[opt.TechPrune50] != 1 ||
			dst.TechFailure[opt.TechQuant8] != 1 || dst.Discarded != 1 {
			t.Fatalf("sparse=%v: categorical tallies diverge: %+v", sparse, dst)
		}
		// The restored ledger must keep accumulating identically.
		exercise(src)
		exercise(dst)
		if aggregates(dst) != aggregates(src) {
			t.Fatalf("sparse=%v: post-restore accumulation diverges", sparse)
		}
	}
}

// TestLedgerRestoreRejectsMismatch pins the compat checks.
func TestLedgerRestoreRejectsMismatch(t *testing.T) {
	src := NewLedger(10)
	exercise(src)
	st := src.CheckpointState()
	if err := NewLedger(11).RestoreCheckpoint(st); err == nil {
		t.Fatal("restore into a different population size succeeded")
	}
	if err := NewSparseLedger(10).RestoreCheckpoint(st); err == nil {
		t.Fatal("restore of a dense state into a sparse ledger succeeded")
	}
}

// TestShardedCountsExportRestore covers the sparse container directly,
// including the deterministic export order.
func TestShardedCountsExportRestore(t *testing.T) {
	s := NewShardedCounts()
	for _, id := range []int{5, 1000003, 5, 64, 0, 977} {
		s.Inc(id)
	}
	exp := s.Export()
	r := NewShardedCounts()
	r.Restore(exp)
	if r.Distinct() != s.Distinct() {
		t.Fatalf("Distinct = %d, want %d", r.Distinct(), s.Distinct())
	}
	for _, id := range []int{5, 1000003, 64, 0, 977, 12345} {
		if r.Get(id) != s.Get(id) {
			t.Fatalf("Get(%d) = %d, want %d", id, r.Get(id), s.Get(id))
		}
	}
	exp2 := r.Export()
	if len(exp2) != len(exp) {
		t.Fatalf("re-export length %d, want %d", len(exp2), len(exp))
	}
	for i := range exp {
		if exp[i] != exp2[i] {
			t.Fatalf("export order unstable at %d: %v vs %v", i, exp[i], exp2[i])
		}
	}
}
