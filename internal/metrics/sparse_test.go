package metrics

import (
	"math/rand"
	"testing"

	"floatfl/internal/device"
	"floatfl/internal/opt"
)

// TestSparseLedgerMatchesDense feeds identical outcome streams into a
// dense and a sparse ledger and requires every aggregate to agree
// bit-for-bit — sparse mode is a representation change, not a semantic
// one.
func TestSparseLedgerMatchesDense(t *testing.T) {
	const clients = 500
	dense := NewLedger(clients)
	sparse := NewSparseLedger(clients)

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		id := rng.Intn(clients / 3) // skewed participation
		out := device.Outcome{
			Completed: rng.Float64() < 0.7,
			Cost:      device.Cost{ComputeSeconds: rng.Float64() * 100, CommSeconds: rng.Float64() * 10},
		}
		if !out.Completed {
			out.Reason = device.DropDeadline
		}
		if rng.Float64() < 0.1 {
			dense.RecordDiscarded(id, opt.TechNone, out)
			sparse.RecordDiscarded(id, opt.TechNone, out)
		} else {
			dense.Record(id, opt.TechNone, out)
			sparse.Record(id, opt.TechNone, out)
		}
	}

	type agg struct {
		neverSel, neverComp, gini, jain, dropRate float64
		totalRounds, totalDrops, discarded        int
	}
	of := func(l *Ledger) agg {
		return agg{
			neverSel:    l.NeverSelectedFraction(),
			neverComp:   l.NeverCompletedFraction(),
			gini:        l.SelectionGini(),
			jain:        l.SelectionJainIndex(),
			dropRate:    l.DropRate(),
			totalRounds: l.TotalRounds,
			totalDrops:  l.TotalDrops,
			discarded:   l.Discarded,
		}
	}
	d, s := of(dense), of(sparse)
	if d != s {
		t.Fatalf("sparse aggregates deviate from dense:\ndense  %+v\nsparse %+v", d, s)
	}
	for id := 0; id < clients; id++ {
		if dense.Selected[id] != sparse.SelectedCount(id) {
			t.Fatalf("client %d: selected %d dense vs %d sparse", id, dense.Selected[id], sparse.SelectedCount(id))
		}
		if dense.Completed[id] != sparse.CompletedCount(id) {
			t.Fatalf("client %d: completed %d dense vs %d sparse", id, dense.Completed[id], sparse.CompletedCount(id))
		}
	}
}

// TestShardedCountsDeterministicOrder pins the fixed iteration order the
// float-order-sensitive aggregates (Jain) rely on.
func TestShardedCountsDeterministicOrder(t *testing.T) {
	build := func(order []int) []int {
		s := NewShardedCounts()
		for _, id := range order {
			s.Inc(id)
		}
		return s.Counts()
	}
	a := build([]int{700, 3, 64, 3, 128, 9001, 64, 700})
	b := build([]int{64, 9001, 700, 64, 3, 128, 700, 3})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("position %d: %d vs %d (insertion order leaked into iteration order)", i, a[i], b[i])
		}
	}
}

// TestSparseLedgerEmpty guards the degenerate aggregates.
func TestSparseLedgerEmpty(t *testing.T) {
	l := NewSparseLedger(0)
	if l.NeverSelectedFraction() != 0 || l.SelectionGini() != 0 || l.SelectionJainIndex() != 0 {
		t.Fatal("empty sparse ledger aggregates must be zero")
	}
	l2 := NewSparseLedger(10)
	if got := l2.NeverSelectedFraction(); got != 1 {
		t.Fatalf("untouched ledger never-selected %v, want 1", got)
	}
}
