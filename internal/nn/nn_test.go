package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"floatfl/internal/tensor"
)

func testModel(t *testing.T, arch string) *Model {
	t.Helper()
	m, err := NewModel(arch, 8, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("NewModel(%s): %v", arch, err)
	}
	return m
}

func TestLookupSpec(t *testing.T) {
	for _, name := range []string{"resnet18", "resnet34", "resnet50", "shufflenet", "mlp-small"} {
		s, err := LookupSpec(name)
		if err != nil {
			t.Fatalf("LookupSpec(%s): %v", name, err)
		}
		if s.RefParams <= 0 || s.RefFLOPs <= 0 {
			t.Fatalf("spec %s has non-positive reference sizes: %+v", name, s)
		}
	}
	if _, err := LookupSpec("vgg99"); err == nil {
		t.Fatal("LookupSpec accepted unknown architecture")
	}
}

func TestSpecSizeOrdering(t *testing.T) {
	// Relative size ordering must mirror the real architectures, because
	// the cost model depends on it (Fig 12/13 shapes).
	get := func(n string) Spec { s, _ := LookupSpec(n); return s }
	if !(get("shufflenet").RefParams < get("resnet18").RefParams &&
		get("resnet18").RefParams < get("resnet34").RefParams &&
		get("resnet34").RefParams < get("resnet50").RefParams) {
		t.Fatal("reference parameter counts are not ordered like the real models")
	}
}

func TestModelForwardShape(t *testing.T) {
	m := testModel(t, "resnet18")
	out := m.Forward(tensor.NewVector(8))
	if len(out) != 4 {
		t.Fatalf("Forward returned %d logits, want 4", len(out))
	}
}

func TestParametersRoundTrip(t *testing.T) {
	m := testModel(t, "resnet34")
	p := m.Parameters()
	if len(p) != m.NumParams() {
		t.Fatalf("Parameters length %d, want %d", len(p), m.NumParams())
	}
	p2 := p.Clone()
	for i := range p2 {
		p2[i] += 0.5
	}
	if err := m.SetParameters(p2); err != nil {
		t.Fatal(err)
	}
	p3 := m.Parameters()
	for i := range p3 {
		if p3[i] != p2[i] {
			t.Fatal("SetParameters/Parameters round trip mismatch")
		}
	}
	if err := m.SetParameters(tensor.NewVector(3)); err == nil {
		t.Fatal("SetParameters accepted wrong length")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := testModel(t, "mlp-small")
	c := m.Clone()
	p := c.Parameters()
	p.Fill(7)
	if err := c.SetParameters(p); err != nil {
		t.Fatal(err)
	}
	if m.Parameters()[0] == 7 {
		t.Fatal("Clone shares parameter storage with original")
	}
	// Clone must be usable for training without touching the original.
	rng := rand.New(rand.NewSource(3))
	samples := makeBlobs(rng, 40, 8, 4, 2.0)
	// Snapshot (Parameters aliases m, so a live view would trivially equal
	// itself), train the clone, and check the original did not move.
	before := m.Parameters().Clone()
	if _, err := c.Train(samples, TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("training a clone modified the original model")
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := testModel(t, "shufflenet")
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	m2 := testModel(t, "shufflenet")
	if err := m2.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	a, b := m.Parameters(), m2.Parameters()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("binary round trip mismatch")
		}
	}
	if err := m2.UnmarshalBinary(blob[:4]); err == nil {
		t.Fatal("UnmarshalBinary accepted truncated buffer")
	}
}

// makeBlobs produces a linearly separable-ish Gaussian blob problem.
func makeBlobs(rng *rand.Rand, n, dim, classes int, sep float64) []Sample {
	centers := make([]tensor.Vector, classes)
	for c := range centers {
		centers[c] = tensor.NewVector(dim)
		tensor.RandnInto(centers[c], sep, rng)
	}
	out := make([]Sample, n)
	for i := range out {
		c := rng.Intn(classes)
		x := centers[c].Clone()
		noise := tensor.NewVector(dim)
		tensor.RandnInto(noise, 0.4, rng)
		x.AddScaled(1, noise)
		out[i] = Sample{X: x, Label: c}
	}
	return out
}

func TestTrainingReducesLossAndLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	train := makeBlobs(rng, 200, 8, 4, 2.0)
	test := makeBlobs(rng, 100, 8, 4, 2.0)
	// Same centers require the same rng stream; regenerate with one stream.
	rng = rand.New(rand.NewSource(11))
	all := makeBlobs(rng, 300, 8, 4, 2.0)
	train, test = all[:200], all[200:]

	m := testModel(t, "resnet18")
	accBefore, lossBefore := m.Evaluate(test)
	if _, err := m.Train(train, TrainConfig{Epochs: 10, BatchSize: 16, LR: 0.3, GradClip: 5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	accAfter, lossAfter := m.Evaluate(test)
	if accAfter <= accBefore {
		t.Fatalf("training did not improve accuracy: %v -> %v", accBefore, accAfter)
	}
	if lossAfter >= lossBefore {
		t.Fatalf("training did not reduce loss: %v -> %v", lossBefore, lossAfter)
	}
	if accAfter < 0.7 {
		t.Fatalf("model failed to learn an easy problem: accuracy %v", accAfter)
	}
}

func TestFrozenLayersDoNotMove(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := makeBlobs(rng, 60, 8, 4, 2.0)
	m := testModel(t, "resnet18")
	frozen := make([]bool, len(m.Layers))
	frozen[0] = true
	w0 := m.Layers[0].Params()[0].Clone()
	w1 := m.Layers[1].Params()[0].Clone()
	if _, err := m.Train(samples, TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.2, FrozenLayers: frozen, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	for i := range w0 {
		if m.Layers[0].Params()[0][i] != w0[i] {
			t.Fatal("frozen layer parameters changed during training")
		}
	}
	moved := false
	for i := range w1 {
		if m.Layers[1].Params()[0][i] != w1[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("unfrozen layer parameters did not change during training")
	}
}

func TestTrainValidation(t *testing.T) {
	m := testModel(t, "mlp-small")
	if _, err := m.Train(nil, TrainConfig{Epochs: 1, BatchSize: 1, LR: 0.1}); err == nil {
		t.Fatal("Train accepted empty sample set")
	}
	s := []Sample{{X: tensor.NewVector(8), Label: 0}}
	if _, err := m.Train(s, TrainConfig{Epochs: 0, BatchSize: 1, LR: 0.1}); err == nil {
		t.Fatal("Train accepted zero epochs")
	}
	if _, err := m.Train(s, TrainConfig{Epochs: 1, BatchSize: 1, LR: 0.1, FrozenLayers: []bool{true}}); err == nil {
		t.Fatal("Train accepted FrozenLayers of wrong length")
	}
}

func TestTrainDeterministicUnderSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	samples := makeBlobs(rng, 50, 8, 4, 2.0)
	run := func() tensor.Vector {
		m := testModel(t, "mlp-small")
		if _, err := m.Train(samples, TrainConfig{Epochs: 3, BatchSize: 8, LR: 0.2, Seed: 77}); err != nil {
			t.Fatal(err)
		}
		return m.Parameters()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training not deterministic under fixed seed")
		}
	}
}

func TestEvaluateEmptySet(t *testing.T) {
	m := testModel(t, "mlp-small")
	acc, loss := m.Evaluate(nil)
	if acc != 0 || loss != 0 {
		t.Fatalf("Evaluate(nil) = %v, %v; want zeros", acc, loss)
	}
}

// Property: the softmax cross-entropy gradient at the logits sums to zero
// (probs sum to 1 and the one-hot subtracts 1).
func TestGradientSumProperty(t *testing.T) {
	f := func(seed int64, labelRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewModel("mlp-small", 6, 3, rng)
		if err != nil {
			return false
		}
		x := tensor.NewVector(6)
		tensor.RandnInto(x, 1, rng)
		label := int(labelRaw) % 3
		for _, l := range m.Layers {
			l.ZeroGrad()
		}
		m.lossAndGrads(Sample{X: x, Label: label})
		// The bias gradient of the output layer equals dL/dlogits.
		last := m.Layers[len(m.Layers)-1]
		var sum float64
		grads := last.Grads()
		for _, g := range grads[len(grads)-1] {
			sum += g
		}
		return math.Abs(sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Numerical gradient check on a tiny model: analytic gradients from
// backprop must match finite differences.
func TestGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, err := NewModel("mlp-small", 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewVector(4)
	tensor.RandnInto(x, 1, rng)
	s := Sample{X: x, Label: 1}

	for _, l := range m.Layers {
		l.ZeroGrad()
	}
	m.lossAndGrads(s)
	layer0W := m.Layers[0].Params()[0]
	analytic := m.Layers[0].Grads()[0].Clone()

	const h = 1e-6
	for i := 0; i < len(layer0W); i += 7 { // sample a subset
		orig := layer0W[i]
		layer0W[i] = orig + h
		lossPlus := evalLoss(m, s)
		layer0W[i] = orig - h
		lossMinus := evalLoss(m, s)
		layer0W[i] = orig
		numeric := (lossPlus - lossMinus) / (2 * h)
		if math.Abs(numeric-analytic[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("gradient mismatch at %d: analytic %v numeric %v", i, analytic[i], numeric)
		}
	}
}

func evalLoss(m *Model, s Sample) float64 {
	logits := m.Forward(s.X)
	probs := tensor.NewVector(len(logits))
	tensor.Softmax(probs, logits)
	p := probs[s.Label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}
