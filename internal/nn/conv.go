package nn

import (
	"fmt"
	"math/rand"

	"floatfl/internal/tensor"
)

// Layer is the interface every trainable layer implements; Model composes
// a pipeline of Layers. Dense and Conv1D are the built-in implementations.
//
// Storage contract: a layer created by its constructor owns its parameter
// and gradient storage. A Model rebinds every layer into its contiguous
// flat buffers via Bind, after which Params/Grads return views that alias
// the model's flat vectors.
type Layer interface {
	// Forward runs the layer; the returned slice is owned by the layer and
	// overwritten on the next call.
	Forward(x tensor.Vector) tensor.Vector
	// Backward consumes dL/dOut (which it may modify), accumulates
	// parameter gradients, and returns dL/dIn. The returned slice is owned
	// by the layer and overwritten on the next call.
	Backward(grad tensor.Vector) tensor.Vector
	// ZeroGrad clears accumulated gradients.
	ZeroGrad()
	// ApplySGD steps the parameters against the accumulated gradients.
	ApplySGD(lr, clip float64)
	// NumParams counts trainable scalars.
	NumParams() int
	// Params returns views of the parameter storage, in a stable order
	// matched 1:1 by Grads.
	Params() []tensor.Vector
	// Grads returns views of the gradient accumulators.
	Grads() []tensor.Vector
	// OutDim is the output vector length.
	OutDim() int
	// Clone returns an independent copy of the layer — same shape and
	// parameter values, freshly allocated storage and scratch buffers.
	// Model.Clone rebinds the copy into the new model's flat buffers.
	Clone() Layer
	// Bind moves the layer's parameters and gradients into the provided
	// buffers (each exactly NumParams long): current values are copied in
	// and the layer's storage is re-pointed at views of the buffers.
	Bind(params, grads tensor.Vector)
	// SetBackend points the layer's backend-routed kernels at b. Layers
	// whose loops are not part of the tensor.Backend interface (Conv1D's
	// taps, MaxPool1D) ignore it — they are backend-invariant by
	// construction.
	SetBackend(b tensor.Backend)
}

var (
	_ Layer = (*Dense)(nil)
	_ Layer = (*Conv1D)(nil)
)

// Conv1D is a one-dimensional convolution over a single-channel signal:
// the input vector is treated as a length-W sequence, convolved with
// Filters kernels of size Kernel (stride 1, valid padding), producing a
// flattened Filters×(W-Kernel+1) output with optional ReLU. It is the
// convolutional front-end for the "convnet" architecture — the structural
// analog of the paper's CNN models.
type Conv1D struct {
	Filters int
	Kernel  int
	Act     Activation

	// W holds the kernels row-major: W.Row(f) is filter f's taps.
	W *tensor.Matrix
	B tensor.Vector

	GradW *tensor.Matrix
	GradB tensor.Vector

	inWidth int
	in      tensor.Vector
	preAct  tensor.Vector
	out     tensor.Vector
	gradIn  tensor.Vector
}

// NewConv1D builds a convolution layer for inputs of length inWidth.
func NewConv1D(inWidth, filters, kernel int, act Activation, rng *rand.Rand) *Conv1D {
	if kernel <= 0 || filters <= 0 || inWidth < kernel {
		panic(fmt.Sprintf("nn: invalid Conv1D shape inWidth=%d filters=%d kernel=%d",
			inWidth, filters, kernel))
	}
	c := &Conv1D{
		Filters: filters,
		Kernel:  kernel,
		Act:     act,
		W:       tensor.NewMatrix(filters, kernel),
		B:       tensor.NewVector(filters),
		GradW:   tensor.NewMatrix(filters, kernel),
		GradB:   tensor.NewVector(filters),
		inWidth: inWidth,
	}
	tensor.XavierInto(c.W.Data, kernel, filters, rng)
	outW := c.outWidth()
	c.preAct = tensor.NewVector(filters * outW)
	c.out = tensor.NewVector(filters * outW)
	c.gradIn = tensor.NewVector(inWidth)
	return c
}

func (c *Conv1D) outWidth() int { return c.inWidth - c.Kernel + 1 }

// SetBackend implements Layer. The convolution's tap loops are not part of
// the tensor.Backend kernel set, so every backend runs the same code here.
func (c *Conv1D) SetBackend(tensor.Backend) {}

// OutDim implements Layer.
func (c *Conv1D) OutDim() int { return c.Filters * c.outWidth() }

// InDim returns the expected input length.
func (c *Conv1D) InDim() int { return c.inWidth }

// NumParams implements Layer.
func (c *Conv1D) NumParams() int { return len(c.W.Data) + len(c.B) }

// Params implements Layer.
func (c *Conv1D) Params() []tensor.Vector { return []tensor.Vector{c.W.Data, c.B} }

// Grads implements Layer.
func (c *Conv1D) Grads() []tensor.Vector { return []tensor.Vector{c.GradW.Data, c.GradB} }

// Forward implements Layer.
func (c *Conv1D) Forward(x tensor.Vector) tensor.Vector {
	if len(x) != c.inWidth {
		panic(fmt.Sprintf("nn: Conv1D.Forward input %d, want %d", len(x), c.inWidth))
	}
	c.in = x
	outW := c.outWidth()
	for f := 0; f < c.Filters; f++ {
		taps := c.W.Row(f)
		bias := c.B[f]
		base := f * outW
		for p := 0; p < outW; p++ {
			var s float64
			for k, w := range taps {
				s += w * x[p+k]
			}
			c.preAct[base+p] = s + bias
		}
	}
	switch c.Act {
	case ActReLU:
		for i, v := range c.preAct {
			if v > 0 {
				c.out[i] = v
			} else {
				c.out[i] = 0
			}
		}
	default:
		copy(c.out, c.preAct)
	}
	return c.out
}

// Backward implements Layer.
func (c *Conv1D) Backward(grad tensor.Vector) tensor.Vector {
	outW := c.outWidth()
	if len(grad) != c.Filters*outW {
		panic(fmt.Sprintf("nn: Conv1D.Backward grad %d, want %d", len(grad), c.Filters*outW))
	}
	if c.Act == ActReLU {
		for i := range grad {
			if c.preAct[i] <= 0 {
				grad[i] = 0
			}
		}
	}
	gradIn := c.gradIn
	gradIn.Zero()
	for f := 0; f < c.Filters; f++ {
		taps := c.W.Row(f)
		gtaps := c.GradW.Row(f)
		base := f * outW
		for p := 0; p < outW; p++ {
			g := grad[base+p]
			if g == 0 {
				continue
			}
			c.GradB[f] += g
			for k := 0; k < c.Kernel; k++ {
				gtaps[k] += g * c.in[p+k]
				gradIn[p+k] += g * taps[k]
			}
		}
	}
	return gradIn
}

// ZeroGrad implements Layer.
func (c *Conv1D) ZeroGrad() {
	c.GradW.Data.Zero()
	c.GradB.Zero()
}

// ApplySGD implements Layer.
func (c *Conv1D) ApplySGD(lr, clip float64) {
	if clip > 0 {
		c.GradW.Data.Clamp(clip)
		c.GradB.Clamp(clip)
	}
	c.W.Data.AddScaled(-lr, c.GradW.Data)
	c.B.AddScaled(-lr, c.GradB)
}

// Clone implements Layer.
func (c *Conv1D) Clone() Layer {
	nc := &Conv1D{
		Filters: c.Filters,
		Kernel:  c.Kernel,
		Act:     c.Act,
		W:       c.W.Clone(),
		B:       c.B.Clone(),
		GradW:   tensor.NewMatrix(c.Filters, c.Kernel),
		GradB:   tensor.NewVector(c.Filters),
		inWidth: c.inWidth,
	}
	nc.preAct = tensor.NewVector(c.Filters * c.outWidth())
	nc.out = tensor.NewVector(c.Filters * c.outWidth())
	nc.gradIn = tensor.NewVector(c.inWidth)
	return nc
}

// Bind implements Layer: kernels first (row-major), then biases.
func (c *Conv1D) Bind(params, grads tensor.Vector) {
	nw := len(c.W.Data)
	n := nw + len(c.B)
	if len(params) != n || len(grads) != n {
		panic(fmt.Sprintf("nn: Conv1D.Bind got %d/%d scalars, want %d", len(params), len(grads), n))
	}
	copy(params[:nw], c.W.Data)
	copy(params[nw:], c.B)
	copy(grads[:nw], c.GradW.Data)
	copy(grads[nw:], c.GradB)
	c.W.Data = params[:nw:nw]
	c.B = params[nw:n:n]
	c.GradW.Data = grads[:nw:nw]
	c.GradB = grads[nw:n:n]
}
