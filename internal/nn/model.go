package nn

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"floatfl/internal/tensor"
)

// Spec describes a named model architecture. Hidden holds the widths of the
// hidden layers of the (small, actually trained) network. RefParams and
// RefFLOPs carry the parameter count and per-sample forward+backward FLOPs
// of the real model the name refers to; the device cost model uses them so
// that simulated latencies and transfer sizes match real-world workloads
// even though the trained network is tiny.
type Spec struct {
	Name   string
	Hidden []int
	// ConvFilters/ConvKernel, when positive, prepend a Conv1D front-end —
	// the structural analog of the paper's CNN architectures. PoolWidth,
	// when positive, follows the convolution with max pooling.
	ConvFilters, ConvKernel, PoolWidth int
	RefParams                          int64 // parameters of the real architecture
	RefFLOPs                           int64 // forward+backward FLOPs per sample, real architecture
}

// Registry of architectures referenced by the paper's evaluation. The
// reference numbers are the published sizes (ResNet-18: 11.7M params,
// ResNet-34: 21.8M, ResNet-50: 25.6M, ShuffleNet v2 1x: ~2.3M) with FLOPs
// approximated as 3× the forward multiply-accumulates (forward + backward).
var registry = map[string]Spec{
	"resnet18":   {Name: "resnet18", Hidden: []int{48, 48}, RefParams: 11_700_000, RefFLOPs: 10_900_000_000},
	"resnet34":   {Name: "resnet34", Hidden: []int{64, 64}, RefParams: 21_800_000, RefFLOPs: 22_000_000_000},
	"resnet50":   {Name: "resnet50", Hidden: []int{80, 80}, RefParams: 25_600_000, RefFLOPs: 24_600_000_000},
	"shufflenet": {Name: "shufflenet", Hidden: []int{32, 32}, RefParams: 2_300_000, RefFLOPs: 880_000_000},
	"mlp-small":  {Name: "mlp-small", Hidden: []int{24}, RefParams: 200_000, RefFLOPs: 1_200_000},
	// convnet: a genuine convolutional front-end (Conv1D + ReLU) over the
	// feature signal, sized like a compact mobile CNN.
	"convnet": {Name: "convnet", Hidden: []int{32}, ConvFilters: 6, ConvKernel: 5, PoolWidth: 2,
		RefParams: 4_500_000, RefFLOPs: 2_600_000_000},
}

// LookupSpec returns the Spec for a registered architecture name.
func LookupSpec(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("nn: unknown architecture %q", name)
	}
	return s, nil
}

// ArchNames returns the registered architecture names, sorted.
func ArchNames() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Model is a feed-forward classifier assembled from Layers (an optional
// Conv1D front-end followed by Dense layers).
//
// All trainable scalars live in one contiguous flat parameter vector with
// a parallel flat gradient vector; every layer's W/B/GradW/GradB are views
// into those two buffers (rebound by bindFlat). That makes Parameters a
// zero-copy view, SetParameters a single copy, and the SGD step, gradient
// clipping, and FedProx proximal term fused whole-buffer loops.
type Model struct {
	Spec   Spec
	Layers []Layer
	nIn    int
	nOut   int

	// params/grads are the flat buffers every layer aliases; offsets[i] is
	// layer i's starting index (layers appear in pipeline order, each one
	// weights-then-biases).
	params  tensor.Vector
	grads   tensor.Vector
	offsets []int

	// backend is the tensor backend training and evaluation dispatch
	// through; NewModel starts every model on tensor.Default() (ref, the
	// determinism oracle) and SetBackend swaps model and layers together.
	backend tensor.Backend
	// batch holds the layer views and scratch of the GEMM-shaped
	// minibatch training path; nil when any layer cannot batch (see
	// batch.go).
	batch *batchState

	// Scratch reused across training/evaluation calls so the steady-state
	// hot path allocates nothing.
	probs    tensor.Vector // softmax outputs
	lossGrad tensor.Vector // dL/dlogits per sample
	order    []int         // shuffled sample order, grown on demand
	trainRNG *rand.Rand    // shuffle stream, reseeded per Train call
}

// NewModel builds a model for the named architecture with the given input
// and output dimensionality, initialized deterministically from rng.
func NewModel(arch string, inDim, outDim int, rng *rand.Rand) (*Model, error) {
	spec, err := LookupSpec(arch)
	if err != nil {
		return nil, err
	}
	if inDim <= 0 || outDim <= 0 {
		return nil, fmt.Errorf("nn: invalid model dims in=%d out=%d", inDim, outDim)
	}
	m := &Model{Spec: spec, nIn: inDim, nOut: outDim, backend: tensor.Default()}
	prev := inDim
	if spec.ConvFilters > 0 && spec.ConvKernel > 0 {
		if inDim < spec.ConvKernel {
			return nil, fmt.Errorf("nn: input dim %d below conv kernel %d", inDim, spec.ConvKernel)
		}
		conv := NewConv1D(inDim, spec.ConvFilters, spec.ConvKernel, ActReLU, rng)
		m.Layers = append(m.Layers, conv)
		prev = conv.OutDim()
		if spec.PoolWidth > 0 {
			convWidth := prev / spec.ConvFilters
			pool := NewMaxPool1D(spec.ConvFilters, convWidth, spec.PoolWidth)
			m.Layers = append(m.Layers, pool)
			prev = pool.OutDim()
		}
	}
	for _, h := range spec.Hidden {
		m.Layers = append(m.Layers, NewDense(prev, h, ActReLU, rng))
		prev = h
	}
	m.Layers = append(m.Layers, NewDense(prev, outDim, ActNone, rng))
	m.bindFlat()
	return m, nil
}

// bindFlat allocates the model's flat parameter/gradient buffers and
// rebinds every layer's storage into them (Bind copies the layers' current
// values, so construction-time initialization survives).
func (m *Model) bindFlat() {
	n := 0
	m.offsets = make([]int, len(m.Layers))
	for i, l := range m.Layers {
		m.offsets[i] = n
		n += l.NumParams()
	}
	m.params = tensor.NewVector(n)
	m.grads = tensor.NewVector(n)
	for i, l := range m.Layers {
		off, end := m.offsets[i], m.offsets[i]+l.NumParams()
		l.Bind(m.params[off:end:end], m.grads[off:end:end])
	}
	m.probs = tensor.NewVector(m.nOut)
	m.lossGrad = tensor.NewVector(m.nOut)
	m.batch = buildBatchState(m.Layers)
}

// layerRange returns layer i's [start, end) slice bounds in the flat
// buffers.
func (m *Model) layerRange(i int) (int, int) {
	return m.offsets[i], m.offsets[i] + m.Layers[i].NumParams()
}

// Backend returns the tensor backend the model currently trains on.
func (m *Model) Backend() tensor.Backend { return m.backend }

// SetBackend switches the model — and every layer — to backend b. Models
// start on tensor.Default() ("ref"); switching is cheap and may happen
// between training calls, but not concurrently with them.
func (m *Model) SetBackend(b tensor.Backend) {
	m.backend = b
	for _, l := range m.Layers {
		l.SetBackend(b)
	}
}

// InDim returns the model input dimensionality.
func (m *Model) InDim() int { return m.nIn }

// OutDim returns the number of classes.
func (m *Model) OutDim() int { return m.nOut }

// NumParams returns the total number of trainable scalars (of the small
// trained network, not the reference architecture).
func (m *Model) NumParams() int { return len(m.params) }

// Forward computes the logits for one sample. The returned slice is owned
// by the final layer and overwritten on the next call.
func (m *Model) Forward(x tensor.Vector) tensor.Vector {
	h := x
	for _, l := range m.Layers {
		h = l.Forward(h)
	}
	return h
}

// Parameters returns the model's flat parameter vector, layer by layer
// (weights row-major, then biases). The returned vector ALIASES the model's
// storage — it is a zero-copy view, not a snapshot. Mutating it mutates the
// model; callers that need a frozen copy must Clone it.
func (m *Model) Parameters() tensor.Vector { return m.params }

// Gradients returns the model's flat gradient vector (a zero-copy view,
// parallel to Parameters).
func (m *Model) Gradients() tensor.Vector { return m.grads }

// SetParameters loads a flat vector produced by Parameters back into the
// model with a single copy. It returns an error on length mismatch.
// p may alias the model's own storage (the copy is then a no-op).
func (m *Model) SetParameters(p tensor.Vector) error {
	if len(p) != len(m.params) {
		return fmt.Errorf("nn: SetParameters got %d scalars, want %d", len(p), len(m.params))
	}
	copy(m.params, p)
	return nil
}

// Clone returns a deep copy of the model sharing no storage: the clone gets
// its own flat buffers and every cloned layer is rebound into them.
func (m *Model) Clone() *Model {
	c := &Model{Spec: m.Spec, nIn: m.nIn, nOut: m.nOut, backend: m.backend}
	c.Layers = make([]Layer, len(m.Layers))
	for i, l := range m.Layers {
		c.Layers[i] = l.Clone()
	}
	c.bindFlat()
	c.SetBackend(m.backend)
	return c
}

// MarshalBinary encodes the model parameters (not the architecture) as a
// little-endian float64 stream prefixed with the scalar count. It allows
// checkpointing global models between experiment phases.
func (m *Model) MarshalBinary() ([]byte, error) {
	p := m.params
	buf := make([]byte, 8+8*len(p))
	binary.LittleEndian.PutUint64(buf, uint64(len(p)))
	for i, v := range p {
		binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(v))
	}
	return buf, nil
}

// UnmarshalBinary loads parameters encoded by MarshalBinary directly into
// the model's flat buffer. The model architecture must already match.
func (m *Model) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("nn: UnmarshalBinary short buffer (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint64(data))
	if n != len(m.params) {
		return fmt.Errorf("nn: UnmarshalBinary has %d scalars, model wants %d", n, len(m.params))
	}
	if len(data) != 8+8*n {
		return fmt.Errorf("nn: UnmarshalBinary length %d, want %d", len(data), 8+8*n)
	}
	for i := range m.params {
		m.params[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8+8*i:]))
	}
	return nil
}
