package nn

import (
	"math/rand"
	"sort"
	"testing"

	"floatfl/internal/tensor"
)

// flatTestModel builds a model for any registered arch with dims every
// architecture accepts (convnet needs inDim >= its kernel width).
func flatTestModel(t *testing.T, arch string) *Model {
	t.Helper()
	m, err := NewModel(arch, 12, 5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("NewModel(%s): %v", arch, err)
	}
	return m
}

func allArchNames() []string {
	names := ArchNames()
	sort.Strings(names)
	return names
}

// The flat-layout contract: Parameters() is a zero-copy view of the same
// storage every layer aliases, so a write through either side is visible
// on the other.
func TestParametersAliasLayerStorage(t *testing.T) {
	for _, arch := range allArchNames() {
		m := flatTestModel(t, arch)
		p := m.Parameters()
		if len(p) != m.NumParams() {
			t.Fatalf("%s: Parameters length %d, want %d", arch, len(p), m.NumParams())
		}
		// Write through the flat view, read through each layer's views.
		for i := range p {
			p[i] = float64(i) + 0.25
		}
		off := 0
		for li, l := range m.Layers {
			for _, view := range l.Params() {
				for k := range view {
					if view[k] != float64(off)+0.25 {
						t.Fatalf("%s layer %d: flat write not visible through layer view at %d",
							arch, li, off)
					}
					off++
				}
			}
		}
		if off != m.NumParams() {
			t.Fatalf("%s: layer views cover %d scalars, model has %d", arch, off, m.NumParams())
		}
		// Write through a layer view, read through the flat view.
		for li, l := range m.Layers {
			views := l.Params()
			if len(views) == 0 {
				continue
			}
			views[0][0] = -99
			if p[m.offsets[li]] != -99 {
				t.Fatalf("%s layer %d: layer write not visible through Parameters()", arch, li)
			}
		}
	}
}

// Gradients() obeys the same aliasing contract against each layer's Grads.
func TestGradientsAliasLayerStorage(t *testing.T) {
	for _, arch := range allArchNames() {
		m := flatTestModel(t, arch)
		g := m.Gradients()
		if len(g) != m.NumParams() {
			t.Fatalf("%s: Gradients length %d, want %d", arch, len(g), m.NumParams())
		}
		g.Fill(3)
		for li, l := range m.Layers {
			for _, view := range l.Grads() {
				for k := range view {
					if view[k] != 3 {
						t.Fatalf("%s layer %d: flat gradient write not visible in layer view",
							arch, li)
					}
				}
			}
		}
		// ZeroGrad through layers must clear the flat buffer.
		for _, l := range m.Layers {
			l.ZeroGrad()
		}
		for i := range g {
			if g[i] != 0 {
				t.Fatalf("%s: layer ZeroGrad left flat gradient %v at %d", arch, g[i], i)
			}
		}
	}
}

// Clone must share no storage with the original: not parameters, not
// gradients, not forward/backward scratch.
func TestCloneSharesNothing(t *testing.T) {
	for _, arch := range allArchNames() {
		m := flatTestModel(t, arch)
		c := m.Clone()
		if c.NumParams() != m.NumParams() {
			t.Fatalf("%s: clone has %d params, original %d", arch, c.NumParams(), m.NumParams())
		}
		origP := m.Parameters().Clone()
		origG := m.Gradients().Clone()
		c.Parameters().Fill(7)
		c.Gradients().Fill(-7)
		// Run a forward/backward on the clone to exercise its scratch.
		x := tensor.NewVector(m.InDim())
		x.Fill(0.5)
		s := Sample{X: x, Label: 1}
		c.lossAndGrads(s)
		for i, v := range m.Parameters() {
			if v != origP[i] {
				t.Fatalf("%s: mutating clone changed original parameters at %d", arch, i)
			}
		}
		for i, v := range m.Gradients() {
			if v != origG[i] {
				t.Fatalf("%s: mutating clone changed original gradients at %d", arch, i)
			}
		}
		// And the reverse: mutate the original, clone unaffected.
		beforeCloneP := c.Parameters().Clone()
		m.Parameters().Fill(11)
		for i, v := range c.Parameters() {
			if v != beforeCloneP[i] {
				t.Fatalf("%s: mutating original changed clone at %d", arch, i)
			}
		}
	}
}

// Clone must preserve parameter values bit-exactly and train identically —
// the rebind into fresh flat buffers cannot perturb anything.
func TestCloneBitExactAndTrainsIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	samples := makeBlobs(rng, 48, 12, 5, 2.0)
	for _, arch := range allArchNames() {
		m := flatTestModel(t, arch)
		c := m.Clone()
		a, b := m.Parameters(), c.Parameters()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: clone parameter %d differs bitwise", arch, i)
			}
		}
		cfg := TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.2, GradClip: 5, Seed: 21}
		if _, err := m.Train(samples, cfg); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if _, err := c.Train(samples, cfg); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: clone diverged from original after identical training at %d", arch, i)
			}
		}
	}
}

// MarshalBinary/UnmarshalBinary must round-trip bit-exactly for every
// registered architecture, including convnet's parameter-free pool layer.
func TestBinaryRoundTripAllArchs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	samples := makeBlobs(rng, 32, 12, 5, 2.0)
	for _, arch := range allArchNames() {
		m := flatTestModel(t, arch)
		// Train a little so the buffer holds non-initialization values.
		if _, err := m.Train(samples, TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.1, Seed: 3}); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		blob, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		m2 := flatTestModel(t, arch)
		if err := m2.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		a, b := m.Parameters(), m2.Parameters()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: binary round trip not bit-exact at %d", arch, i)
			}
		}
		// The restored model must behave identically, not just compare equal.
		accA, lossA := m.Evaluate(samples)
		accB, lossB := m2.Evaluate(samples)
		if accA != accB || lossA != lossB {
			t.Fatalf("%s: restored model evaluates differently (%v/%v vs %v/%v)",
				arch, accA, lossA, accB, lossB)
		}
	}
}

// Layer offsets must tile [0, NumParams) contiguously in pipeline order.
func TestFlatOffsetsContiguous(t *testing.T) {
	for _, arch := range allArchNames() {
		m := flatTestModel(t, arch)
		off := 0
		for li, l := range m.Layers {
			if m.offsets[li] != off {
				t.Fatalf("%s layer %d: offset %d, want %d", arch, li, m.offsets[li], off)
			}
			off += l.NumParams()
		}
		if off != m.NumParams() {
			t.Fatalf("%s: offsets cover %d scalars, model has %d", arch, off, m.NumParams())
		}
	}
}

// SetParameters with the model's own view must be a harmless self-copy.
func TestSetParametersSelfAlias(t *testing.T) {
	m := flatTestModel(t, "convnet")
	want := m.Parameters().Clone()
	if err := m.SetParameters(m.Parameters()); err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Parameters() {
		if v != want[i] {
			t.Fatalf("self-aliasing SetParameters changed parameter %d", i)
		}
	}
}
