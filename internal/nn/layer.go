// Package nn is a from-scratch neural-network substrate: dense layers,
// softmax cross-entropy, SGD training, and a model registry whose named
// architectures mirror the relative sizes of the models used in the FLOAT
// paper (ResNet-18/34/50, ShuffleNet).
//
// Two scales coexist deliberately. The *trained* network is small (so the
// CPU-only simulator converges in seconds and accuracy dynamics are real),
// while each architecture also carries reference parameter/FLOP counts at
// the true model scale; the device cost model consumes the reference
// numbers so simulated training and communication times reflect real
// workloads.
//
// Memory layout: a Model keeps every trainable scalar in one contiguous
// flat parameter vector with a parallel flat gradient vector; layers hold
// aliasing views into those buffers (see DESIGN.md "Flat parameter memory
// layout"). A layer constructed directly (e.g. vfl's standalone Dense
// towers) owns its storage until a Model binds it.
package nn

import (
	"fmt"
	"math/rand"

	"floatfl/internal/tensor"
)

// Activation selects the nonlinearity applied by a Dense layer.
type Activation int

const (
	// ActNone applies no nonlinearity (used by the output layer).
	ActNone Activation = iota
	// ActReLU applies max(0, x) elementwise.
	ActReLU
)

// Dense is a fully connected layer: y = act(W·x + b).
type Dense struct {
	W   *tensor.Matrix
	B   tensor.Vector
	Act Activation

	// be is the tensor backend the matrix kernels dispatch through;
	// constructors set it to tensor.Default() (ref), Model.SetBackend
	// swaps it.
	be tensor.Backend

	// Scratch buffers reused across Forward/Backward calls. They hold the
	// most recent forward pass, which Backward consumes.
	in     tensor.Vector // last input (aliases caller data)
	preAct tensor.Vector // W·x + b before activation
	out    tensor.Vector // activated output
	gradIn tensor.Vector // dL/dIn returned by Backward, reused per call

	// Batched scratch (the GEMM-shaped minibatch path); see batch.go.
	bIn     *tensor.Matrix // last input batch (aliases caller data)
	bPre    tensor.Matrix  // X·Wᵀ + b before activation
	bOut    tensor.Matrix  // activated output batch
	bGradIn tensor.Matrix  // dL/dIn batch returned by BackwardBatch

	// Gradient accumulators, matched elementwise to W and B.
	GradW *tensor.Matrix
	GradB tensor.Vector
}

// NewDense constructs a Dense layer with Xavier-initialized weights.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		W:     tensor.NewMatrix(out, in),
		B:     tensor.NewVector(out),
		Act:   act,
		be:    tensor.Default(),
		GradW: tensor.NewMatrix(out, in),
		GradB: tensor.NewVector(out),
	}
	tensor.XavierInto(d.W.Data, in, out, rng)
	d.preAct = tensor.NewVector(out)
	d.out = tensor.NewVector(out)
	d.gradIn = tensor.NewVector(in)
	return d
}

// SetBackend implements Layer.
func (d *Dense) SetBackend(b tensor.Backend) { d.be = b }

// InDim returns the layer's input dimensionality.
func (d *Dense) InDim() int { return d.W.Cols }

// OutDim returns the layer's output dimensionality.
func (d *Dense) OutDim() int { return d.W.Rows }

// NumParams returns the number of trainable scalars in the layer.
func (d *Dense) NumParams() int { return len(d.W.Data) + len(d.B) }

// Forward runs the layer on x and returns the activated output. The
// returned slice is owned by the layer and overwritten on the next call.
func (d *Dense) Forward(x tensor.Vector) tensor.Vector {
	if len(x) != d.W.Cols {
		panic(fmt.Sprintf("nn: Dense.Forward input %d, want %d", len(x), d.W.Cols))
	}
	d.in = x
	d.be.MatVec(d.W, d.preAct, x)
	d.preAct.AddScaled(1, d.B)
	switch d.Act {
	case ActReLU:
		for i, v := range d.preAct {
			if v > 0 {
				d.out[i] = v
			} else {
				d.out[i] = 0
			}
		}
	default:
		copy(d.out, d.preAct)
	}
	return d.out
}

// Backward consumes dL/dOut, accumulates dL/dW and dL/dB into the gradient
// buffers, and returns dL/dIn. gradOut may be modified in place; the
// returned slice is owned by the layer and overwritten on the next call.
func (d *Dense) Backward(gradOut tensor.Vector) tensor.Vector {
	if len(gradOut) != d.W.Rows {
		panic(fmt.Sprintf("nn: Dense.Backward grad %d, want %d", len(gradOut), d.W.Rows))
	}
	if d.Act == ActReLU {
		for i := range gradOut {
			if d.preAct[i] <= 0 {
				gradOut[i] = 0
			}
		}
	}
	d.GradB.AddScaled(1, gradOut)
	d.be.AddOuterScaled(d.GradW, 1, gradOut, d.in)
	d.be.MatVecT(d.W, d.gradIn, gradOut)
	return d.gradIn
}

// ZeroGrad clears the accumulated gradients.
func (d *Dense) ZeroGrad() {
	d.GradW.Data.Zero()
	d.GradB.Zero()
}

// ApplySGD performs W -= lr*GradW, B -= lr*GradB with gradient clipping at
// clip (no clipping if clip <= 0).
func (d *Dense) ApplySGD(lr, clip float64) {
	if clip > 0 {
		d.GradW.Data.Clamp(clip)
		d.GradB.Clamp(clip)
	}
	d.W.Data.AddScaled(-lr, d.GradW.Data)
	d.B.AddScaled(-lr, d.GradB)
}

// Params implements Layer.
func (d *Dense) Params() []tensor.Vector { return []tensor.Vector{d.W.Data, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []tensor.Vector { return []tensor.Vector{d.GradW.Data, d.GradB} }

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	nd := &Dense{
		W:     d.W.Clone(),
		B:     d.B.Clone(),
		Act:   d.Act,
		be:    d.be,
		GradW: tensor.NewMatrix(d.W.Rows, d.W.Cols),
		GradB: tensor.NewVector(len(d.B)),
	}
	nd.preAct = tensor.NewVector(d.W.Rows)
	nd.out = tensor.NewVector(d.W.Rows)
	nd.gradIn = tensor.NewVector(d.W.Cols)
	return nd
}

// Bind implements Layer: weights first (row-major), then biases.
func (d *Dense) Bind(params, grads tensor.Vector) {
	nw := d.W.Rows * d.W.Cols
	n := nw + len(d.B)
	if len(params) != n || len(grads) != n {
		panic(fmt.Sprintf("nn: Dense.Bind got %d/%d scalars, want %d", len(params), len(grads), n))
	}
	copy(params[:nw], d.W.Data)
	copy(params[nw:], d.B)
	copy(grads[:nw], d.GradW.Data)
	copy(grads[nw:], d.GradB)
	d.W.Data = params[:nw:nw]
	d.B = params[nw:n:n]
	d.GradW.Data = grads[:nw:nw]
	d.GradB = grads[nw:n:n]
}
