package nn

import (
	"fmt"
	"math"
	"math/rand"

	"floatfl/internal/tensor"
)

// Sample is one labelled training or test example.
type Sample struct {
	X     tensor.Vector
	Label int
}

// TrainConfig controls local SGD training on a client.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	// GradClip bounds each gradient component; <= 0 disables clipping.
	GradClip float64
	// FrozenLayers marks layers excluded from the update (partial
	// training). nil or all-false trains everything. Length must equal the
	// layer count when non-nil.
	FrozenLayers []bool
	// ProxMu enables FedProx's proximal term: each parameter is pulled
	// toward ProxAnchor with strength ProxMu (gradient += mu·(w - anchor)).
	// Zero disables it. ProxAnchor must be a flat parameter vector of the
	// model's size when ProxMu > 0.
	ProxMu     float64
	ProxAnchor tensor.Vector
	// Seed drives the shuffling order so local training is reproducible.
	Seed int64
}

// LossAndGrads runs one sample through the model, accumulates gradients,
// and returns the cross-entropy loss. The caller is responsible for
// zeroing/zapplying gradients around batches.
func (m *Model) lossAndGrads(s Sample) float64 {
	logits := m.Forward(s.X)
	// Fused softmax + cross-entropy + dL/dlogits = probs - onehot(label),
	// built in the model-owned scratch so per-sample backprop allocates
	// nothing. The ref backend replicates the historical unfused sequence
	// operation-for-operation.
	loss := m.backend.SoftmaxXent(m.probs, m.lossGrad, logits, s.Label)
	grad := m.lossGrad
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
	return loss
}

// Train runs mini-batch SGD over the samples according to cfg and returns
// the mean training loss of the final epoch. Frozen layers still
// participate in forward/backward (their activations are needed) but their
// parameters are not updated — matching how partial training reduces
// update computation and communication without changing the forward pass.
func (m *Model) Train(samples []Sample, cfg TrainConfig) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("nn: Train called with no samples")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return 0, fmt.Errorf("nn: invalid TrainConfig %+v", cfg)
	}
	if cfg.FrozenLayers != nil && len(cfg.FrozenLayers) != len(m.Layers) {
		return 0, fmt.Errorf("nn: FrozenLayers has %d entries, model has %d layers",
			len(cfg.FrozenLayers), len(m.Layers))
	}
	if cfg.ProxMu > 0 && len(cfg.ProxAnchor) != m.NumParams() {
		return 0, fmt.Errorf("nn: ProxAnchor has %d scalars, model has %d",
			len(cfg.ProxAnchor), m.NumParams())
	}
	// Reuse the model-owned RNG and order scratch: reseeding produces the
	// same stream as a fresh rand.New(rand.NewSource(seed)), so repeated
	// Train calls stay deterministic without per-call allocation.
	if m.trainRNG == nil {
		m.trainRNG = rand.New(rand.NewSource(cfg.Seed))
	} else {
		m.trainRNG.Seed(cfg.Seed)
	}
	if cap(m.order) < len(samples) {
		m.order = make([]int, len(samples))
	}
	order := m.order[:len(samples)]
	for i := range order {
		order[i] = i
	}

	// The batched (GEMM-shaped) path processes each minibatch as
	// matrix-matrix products when the backend asks for it and every layer
	// supports it. Sample order, shuffling, prox, and the SGD step are
	// identical either way; only the per-batch compute shape changes.
	batched := m.backend.Batched() && m.batch != nil

	var lastEpochLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		m.trainRNG.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			m.grads.Zero()
			if batched {
				epochLoss += m.lossAndGradsBatch(samples, order[start:end])
			} else {
				for _, idx := range order[start:end] {
					epochLoss += m.lossAndGrads(samples[idx])
				}
			}
			if cfg.ProxMu > 0 {
				// FedProx proximal term as one fused flat loop; mu is scaled
				// by the batch size because gradients are batch sums.
				m.grads.AddScaledDiff(cfg.ProxMu*float64(end-start), m.params, cfg.ProxAnchor)
			}
			m.applyStep(cfg.LR/float64(end-start), cfg.GradClip, cfg.FrozenLayers)
		}
		lastEpochLoss = epochLoss / float64(len(samples))
	}
	return lastEpochLoss, nil
}

// applyStep performs the SGD update params -= lr·grads with per-component
// clipping at clip (disabled when <= 0). With no frozen layers it is two
// whole-buffer loops over the flat vectors; with frozen layers it touches
// only the unfrozen layers' ranges.
func (m *Model) applyStep(lr, clip float64, frozen []bool) {
	allTrainable := true
	if frozen != nil {
		for _, f := range frozen {
			if f {
				allTrainable = false
				break
			}
		}
	}
	if allTrainable {
		if clip > 0 {
			m.grads.Clamp(clip)
		}
		m.params.AddScaled(-lr, m.grads)
		return
	}
	for li := range m.Layers {
		if frozen[li] {
			continue
		}
		off, end := m.layerRange(li)
		g := m.grads[off:end]
		if clip > 0 {
			g.Clamp(clip)
		}
		m.params[off:end].AddScaled(-lr, g)
	}
}

// Evaluate returns classification accuracy and mean cross-entropy loss over
// the samples. It does not modify the model.
func (m *Model) Evaluate(samples []Sample) (accuracy, meanLoss float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	correct := 0
	var total float64
	for _, s := range samples {
		logits := m.Forward(s.X)
		m.backend.Softmax(m.probs, logits)
		if logits.Argmax() == s.Label {
			correct++
		}
		p := m.probs[s.Label]
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
	}
	return float64(correct) / float64(len(samples)), total / float64(len(samples))
}
