package nn

import (
	"math"
	"math/rand"
	"testing"

	"floatfl/internal/tensor"
)

func testConv(t *testing.T) *Conv1D {
	t.Helper()
	return NewConv1D(12, 3, 4, ActNone, rand.New(rand.NewSource(1)))
}

func TestConvShapes(t *testing.T) {
	c := testConv(t)
	if c.InDim() != 12 {
		t.Fatalf("InDim = %d", c.InDim())
	}
	// valid padding: 12 - 4 + 1 = 9 positions × 3 filters.
	if c.OutDim() != 27 {
		t.Fatalf("OutDim = %d, want 27", c.OutDim())
	}
	if c.NumParams() != 3*4+3 {
		t.Fatalf("NumParams = %d, want 15", c.NumParams())
	}
	out := c.Forward(tensor.NewVector(12))
	if len(out) != 27 {
		t.Fatalf("Forward produced %d outputs", len(out))
	}
}

func TestConvInvalidShapesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewConv1D accepted kernel wider than input")
		}
	}()
	NewConv1D(3, 2, 5, ActNone, rand.New(rand.NewSource(1)))
}

func TestConvForwardKnownValues(t *testing.T) {
	c := NewConv1D(4, 1, 2, ActNone, rand.New(rand.NewSource(2)))
	copy(c.W.Row(0), tensor.Vector{1, -1})
	c.B[0] = 0.5
	out := c.Forward(tensor.Vector{3, 1, 4, 1})
	want := tensor.Vector{3 - 1 + 0.5, 1 - 4 + 0.5, 4 - 1 + 0.5}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("conv output %v, want %v", out, want)
		}
	}
}

func TestConvReLUMasksNegative(t *testing.T) {
	c := NewConv1D(4, 1, 2, ActReLU, rand.New(rand.NewSource(3)))
	copy(c.W.Row(0), tensor.Vector{1, -1})
	c.B[0] = 0
	out := c.Forward(tensor.Vector{0, 5, 0, 0})
	// positions: 0-5=-5 -> 0 ; 5-0=5 ; 0-0=0
	if out[0] != 0 || out[1] != 5 || out[2] != 0 {
		t.Fatalf("ReLU conv output %v", out)
	}
}

// Numerical gradient check for Conv1D parameters and input gradient.
func TestConvGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewConv1D(10, 2, 3, ActReLU, rng)
	x := tensor.NewVector(10)
	tensor.RandnInto(x, 1, rng)

	// Loss = sum of squared outputs / 2; dL/dOut = out.
	loss := func() float64 {
		out := c.Forward(x)
		var s float64
		for _, v := range out {
			s += v * v
		}
		return s / 2
	}

	c.ZeroGrad()
	out := c.Forward(x)
	gradOut := out.Clone()
	gradIn := c.Backward(gradOut)

	const h = 1e-6
	// Weight gradients.
	analyticW := c.GradW.Data.Clone()
	for i := range c.W.Data {
		orig := c.W.Data[i]
		c.W.Data[i] = orig + h
		lp := loss()
		c.W.Data[i] = orig - h
		lm := loss()
		c.W.Data[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-analyticW[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("conv W grad mismatch at %d: analytic %v numeric %v", i, analyticW[i], numeric)
		}
	}
	// Bias gradients.
	analyticB := c.GradB.Clone()
	for i := range c.B {
		orig := c.B[i]
		c.B[i] = orig + h
		lp := loss()
		c.B[i] = orig - h
		lm := loss()
		c.B[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-analyticB[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("conv B grad mismatch at %d: analytic %v numeric %v", i, analyticB[i], numeric)
		}
	}
	// Input gradients.
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		lp := loss()
		x[i] = orig - h
		lm := loss()
		x[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-gradIn[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("conv input grad mismatch at %d: analytic %v numeric %v", i, gradIn[i], numeric)
		}
	}
}

func TestConvnetModelTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	all := makeBlobs(rng, 300, 12, 4, 2.0)
	train, test := all[:220], all[220:]

	m, err := NewModel("convnet", 12, 4, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	// The first layer must be the conv front-end.
	if _, ok := m.Layers[0].(*Conv1D); !ok {
		t.Fatalf("convnet first layer is %T, want *Conv1D", m.Layers[0])
	}
	accBefore, _ := m.Evaluate(test)
	if _, err := m.Train(train, TrainConfig{Epochs: 12, BatchSize: 16, LR: 0.2, GradClip: 5, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	accAfter, _ := m.Evaluate(test)
	if accAfter <= accBefore || accAfter < 0.6 {
		t.Fatalf("convnet failed to learn: %v -> %v", accBefore, accAfter)
	}
}

func TestConvnetCloneAndSerialize(t *testing.T) {
	m, err := NewModel("convnet", 12, 4, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	p := c.Parameters()
	p.Fill(1)
	if err := c.SetParameters(p); err != nil {
		t.Fatal(err)
	}
	if m.Parameters()[0] == 1 {
		t.Fatal("convnet clone shares storage")
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewModel("convnet", 12, 4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	a, b := m.Parameters(), m2.Parameters()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("convnet binary round trip mismatch")
		}
	}
}

func TestConvnetPartialTrainingFreezesConv(t *testing.T) {
	m, err := NewModel("convnet", 12, 4, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	samples := makeBlobs(rng, 60, 12, 4, 2.0)
	frozen := make([]bool, len(m.Layers))
	frozen[0] = true // freeze the conv front-end
	w0 := m.Layers[0].Params()[0].Clone()
	if _, err := m.Train(samples, TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.2, FrozenLayers: frozen, Seed: 12}); err != nil {
		t.Fatal(err)
	}
	for i := range w0 {
		if m.Layers[0].Params()[0][i] != w0[i] {
			t.Fatal("frozen conv layer moved during training")
		}
	}
}

func TestMaxPoolShapes(t *testing.T) {
	p := NewMaxPool1D(2, 9, 2) // trailing partial window kept: ceil(9/2)=5
	if p.InDim() != 18 || p.OutDim() != 10 || p.NumParams() != 0 {
		t.Fatalf("pool dims wrong: in=%d out=%d", p.InDim(), p.OutDim())
	}
	if p.Params() != nil || p.Grads() != nil {
		t.Fatal("pooling must be parameter-free")
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool1D(1, 4, 2)
	out := p.Forward(tensor.Vector{1, 5, 2, 3})
	if out[0] != 5 || out[1] != 3 {
		t.Fatalf("pool forward = %v, want [5 3]", out)
	}
	gradIn := p.Backward(tensor.Vector{10, 20})
	want := tensor.Vector{0, 10, 0, 20}
	for i := range want {
		if gradIn[i] != want[i] {
			t.Fatalf("pool backward = %v, want %v", gradIn, want)
		}
	}
	// ZeroGrad / ApplySGD must be harmless no-ops.
	p.ZeroGrad()
	p.ApplySGD(0.1, 1)
}

func TestMaxPoolInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMaxPool1D accepted window wider than input")
		}
	}()
	NewMaxPool1D(1, 2, 5)
}

func TestConvnetHasPoolingLayer(t *testing.T) {
	m, err := NewModel("convnet", 12, 4, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Layers[1].(*MaxPool1D); !ok {
		t.Fatalf("convnet second layer is %T, want *MaxPool1D", m.Layers[1])
	}
	// End-to-end forward must still produce class logits.
	out := m.Forward(tensor.NewVector(12))
	if len(out) != 4 {
		t.Fatalf("convnet forward produced %d logits", len(out))
	}
}
