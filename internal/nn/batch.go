package nn

import (
	"fmt"

	"floatfl/internal/tensor"
)

// batchLayer is implemented by layers that can process a whole minibatch
// as one matrix-matrix product: rows are samples. The returned matrix is
// owned by the layer and overwritten on the next call, mirroring the
// per-sample Forward/Backward contract.
type batchLayer interface {
	ForwardBatch(x *tensor.Matrix) *tensor.Matrix
	BackwardBatch(gradOut *tensor.Matrix) *tensor.Matrix
}

var _ batchLayer = (*Dense)(nil)

// batchState is the model-level scratch of the batched training path,
// built by bindFlat only when every layer batches (pure-Dense pipelines —
// the conv front-end falls back to the per-sample path, which still runs
// on the selected backend's vector kernels).
type batchState struct {
	layers []batchLayer
	x      tensor.Matrix // packed input minibatch
	grad   tensor.Matrix // dL/dlogits rows
}

// batchView reslices m to rows×cols, growing its backing storage only when
// the capacity is insufficient — steady-state reuse allocates nothing.
func batchView(m *tensor.Matrix, rows, cols int) *tensor.Matrix {
	need := rows * cols
	if cap(m.Data) < need {
		m.Data = tensor.NewVector(need)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:need]
	return m
}

// ForwardBatch implements batchLayer: Y = act(X·Wᵀ + b) for a batch×InDim
// input, one MatMulNT instead of batch MatVec calls.
func (d *Dense) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != d.W.Cols {
		panic(fmt.Sprintf("nn: Dense.ForwardBatch input %dx%d, want cols %d", x.Rows, x.Cols, d.W.Cols))
	}
	d.bIn = x
	n := x.Rows
	pre := batchView(&d.bPre, n, d.W.Rows)
	d.be.MatMulNT(pre, x, d.W)
	out := batchView(&d.bOut, n, d.W.Rows)
	for r := 0; r < n; r++ {
		pre.Row(r).AddScaled(1, d.B)
	}
	switch d.Act {
	case ActReLU:
		for i, v := range pre.Data {
			if v > 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = 0
			}
		}
	default:
		copy(out.Data, pre.Data)
	}
	return out
}

// BackwardBatch implements batchLayer: consumes dL/dOut rows (which it may
// modify), accumulates dL/dW and dL/dB, and returns dL/dIn rows. The
// weight gradient is one accumulating GEMM (dYᵀ·X) instead of batch
// rank-1 updates, and the input gradient one GEMM (dY·W) instead of batch
// MatVecT calls.
func (d *Dense) BackwardBatch(gradOut *tensor.Matrix) *tensor.Matrix {
	n := gradOut.Rows
	if gradOut.Cols != d.W.Rows || d.bIn == nil || d.bIn.Rows != n {
		panic(fmt.Sprintf("nn: Dense.BackwardBatch grad %dx%d does not match forward batch",
			gradOut.Rows, gradOut.Cols))
	}
	if d.Act == ActReLU {
		for i := range gradOut.Data {
			if d.bPre.Data[i] <= 0 {
				gradOut.Data[i] = 0
			}
		}
	}
	for r := 0; r < n; r++ {
		d.GradB.AddScaled(1, gradOut.Row(r))
	}
	d.be.AddMatMulTN(d.GradW, gradOut, d.bIn)
	gin := batchView(&d.bGradIn, n, d.W.Cols)
	d.be.MatMulNN(gin, gradOut, d.W)
	return gin
}

// buildBatchState returns the batched-path state, or nil when some layer
// cannot batch.
func buildBatchState(layers []Layer) *batchState {
	bls := make([]batchLayer, 0, len(layers))
	for _, l := range layers {
		bl, ok := l.(batchLayer)
		if !ok {
			return nil
		}
		bls = append(bls, bl)
	}
	return &batchState{layers: bls}
}

// lossAndGradsBatch is the minibatch counterpart of lossAndGrads: it packs
// the indexed samples into one matrix, runs the batched forward, applies
// the fused softmax+cross-entropy row by row, and backpropagates the whole
// batch through the GEMM-shaped backward path. Returns the summed loss.
func (m *Model) lossAndGradsBatch(samples []Sample, idxs []int) float64 {
	bs := m.batch
	n := len(idxs)
	x := batchView(&bs.x, n, m.nIn)
	for r, idx := range idxs {
		copy(x.Row(r), samples[idx].X)
	}
	h := x
	for _, l := range bs.layers {
		h = l.ForwardBatch(h)
	}
	g := batchView(&bs.grad, n, m.nOut)
	var loss float64
	for r, idx := range idxs {
		loss += m.backend.SoftmaxXent(m.probs, g.Row(r), h.Row(r), samples[idx].Label)
	}
	grad := g
	for i := len(bs.layers) - 1; i >= 0; i-- {
		grad = bs.layers[i].BackwardBatch(grad)
	}
	return loss
}
