package nn

import (
	"fmt"

	"floatfl/internal/tensor"
)

// MaxPool1D downsamples a Conv1D output: for each of Channels feature
// maps of width InWidth, it takes the maximum over non-overlapping windows
// of Width positions (stride = Width; a trailing partial window is kept).
// It holds no parameters; Backward routes each gradient to the position
// that won the max.
type MaxPool1D struct {
	Channels int
	InWidth  int
	Width    int

	out    tensor.Vector
	argmax []int         // winning input index per output element
	gradIn tensor.Vector // dL/dIn returned by Backward, reused per call
}

var _ Layer = (*MaxPool1D)(nil)

// NewMaxPool1D builds a pooling layer over channels × inWidth inputs.
func NewMaxPool1D(channels, inWidth, width int) *MaxPool1D {
	if channels <= 0 || inWidth <= 0 || width <= 0 || width > inWidth {
		panic(fmt.Sprintf("nn: invalid MaxPool1D shape channels=%d inWidth=%d width=%d",
			channels, inWidth, width))
	}
	p := &MaxPool1D{Channels: channels, InWidth: inWidth, Width: width}
	p.out = tensor.NewVector(p.OutDim())
	p.argmax = make([]int, p.OutDim())
	p.gradIn = tensor.NewVector(p.InDim())
	return p
}

func (p *MaxPool1D) outWidth() int { return (p.InWidth + p.Width - 1) / p.Width }

// OutDim implements Layer.
func (p *MaxPool1D) OutDim() int { return p.Channels * p.outWidth() }

// InDim returns the expected input length.
func (p *MaxPool1D) InDim() int { return p.Channels * p.InWidth }

// NumParams implements Layer (pooling is parameter-free).
func (p *MaxPool1D) NumParams() int { return 0 }

// Params implements Layer.
func (p *MaxPool1D) Params() []tensor.Vector { return nil }

// Grads implements Layer.
func (p *MaxPool1D) Grads() []tensor.Vector { return nil }

// ZeroGrad implements Layer.
func (p *MaxPool1D) ZeroGrad() {}

// SetBackend implements Layer (pooling has no backend-routed kernels).
func (p *MaxPool1D) SetBackend(tensor.Backend) {}

// ApplySGD implements Layer.
func (p *MaxPool1D) ApplySGD(lr, clip float64) {}

// Forward implements Layer.
func (p *MaxPool1D) Forward(x tensor.Vector) tensor.Vector {
	if len(x) != p.InDim() {
		panic(fmt.Sprintf("nn: MaxPool1D.Forward input %d, want %d", len(x), p.InDim()))
	}
	ow := p.outWidth()
	for c := 0; c < p.Channels; c++ {
		inBase := c * p.InWidth
		outBase := c * ow
		for o := 0; o < ow; o++ {
			start := o * p.Width
			end := start + p.Width
			if end > p.InWidth {
				end = p.InWidth
			}
			best, bestIdx := x[inBase+start], inBase+start
			for i := start + 1; i < end; i++ {
				if x[inBase+i] > best {
					best, bestIdx = x[inBase+i], inBase+i
				}
			}
			p.out[outBase+o] = best
			p.argmax[outBase+o] = bestIdx
		}
	}
	return p.out
}

// Backward implements Layer: gradients flow only to the max positions. The
// returned slice is owned by the layer and overwritten on the next call.
func (p *MaxPool1D) Backward(grad tensor.Vector) tensor.Vector {
	if len(grad) != p.OutDim() {
		panic(fmt.Sprintf("nn: MaxPool1D.Backward grad %d, want %d", len(grad), p.OutDim()))
	}
	gradIn := p.gradIn
	gradIn.Zero()
	for i, g := range grad {
		gradIn[p.argmax[i]] += g
	}
	return gradIn
}

// Clone implements Layer.
func (p *MaxPool1D) Clone() Layer {
	return NewMaxPool1D(p.Channels, p.InWidth, p.Width)
}

// Bind implements Layer (pooling holds no parameters).
func (p *MaxPool1D) Bind(params, grads tensor.Vector) {
	if len(params) != 0 || len(grads) != 0 {
		panic(fmt.Sprintf("nn: MaxPool1D.Bind got %d/%d scalars, want 0", len(params), len(grads)))
	}
}
