package nn

import (
	"math/rand"
	"testing"

	"floatfl/internal/tensor"
)

func deltaNorm(t *testing.T, mu float64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	samples := makeBlobs(rng, 80, 8, 4, 2.0)
	m := testModel(t, "resnet18")
	// Parameters() aliases the model; the anchor must be a frozen snapshot.
	anchor := m.Parameters().Clone()
	cfg := TrainConfig{Epochs: 3, BatchSize: 16, LR: 0.3, GradClip: 5, Seed: 9}
	if mu > 0 {
		cfg.ProxMu = mu
		cfg.ProxAnchor = anchor
	}
	if _, err := m.Train(samples, cfg); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters().Clone()
	after.AddScaled(-1, anchor)
	return after.Norm2()
}

func TestProximalTermLimitsDrift(t *testing.T) {
	free := deltaNorm(t, 0)
	constrained := deltaNorm(t, 0.5)
	if constrained >= free {
		t.Fatalf("FedProx term did not limit drift: mu=0.5 norm %v >= mu=0 norm %v",
			constrained, free)
	}
	// Monotone in mu (within the stable step-size regime:
	// lr/batch · mu·batch must stay well below 1 or the proximal pull
	// overshoots the anchor and oscillates).
	tight := deltaNorm(t, 1.5)
	if tight >= constrained {
		t.Fatalf("larger mu should constrain more: mu=1.5 norm %v >= mu=0.5 norm %v",
			tight, constrained)
	}
}

func TestProximalStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	samples := makeBlobs(rng, 150, 8, 4, 2.0)
	m := testModel(t, "resnet18")
	anchor := m.Parameters().Clone()
	accBefore, _ := m.Evaluate(samples)
	if _, err := m.Train(samples, TrainConfig{
		Epochs: 8, BatchSize: 16, LR: 0.3, GradClip: 5, Seed: 10,
		ProxMu: 0.05, ProxAnchor: anchor,
	}); err != nil {
		t.Fatal(err)
	}
	accAfter, _ := m.Evaluate(samples)
	if accAfter <= accBefore {
		t.Fatalf("mild proximal term prevented learning: %v -> %v", accBefore, accAfter)
	}
}

func TestProxValidation(t *testing.T) {
	m := testModel(t, "mlp-small")
	s := []Sample{{X: tensor.NewVector(8), Label: 0}}
	_, err := m.Train(s, TrainConfig{
		Epochs: 1, BatchSize: 1, LR: 0.1, ProxMu: 0.1, ProxAnchor: tensor.NewVector(3),
	})
	if err == nil {
		t.Fatal("Train accepted ProxAnchor of wrong length")
	}
}
