package experiment

import (
	"testing"
	"time"
)

// TestFig8FakeClockDeterministic injects a fake wall clock that advances a
// fixed step per read and checks Fig 8's timing columns come out exactly
// as the step dictates: the only genuine wall-clock read in the package is
// behind the injectable timeNow, so the figure is reproducible under test.
func TestFig8FakeClockDeterministic(t *testing.T) {
	var now time.Time
	restore := setTimeNow(func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	})
	defer restore()

	tables, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("Fig8 returned %d tables, want 1", len(tables))
	}
	tab := tables[0]
	if len(tab.Rows) == 0 {
		t.Fatal("Fig8 produced no rows")
	}
	// Each timing window is bounded by two reads of the fake clock, so the
	// measured interval is exactly one step (1ms) over 2000 iterations:
	// 1000us / 2000 = 0.5us per op, for both columns of every row.
	for i, row := range tab.Rows {
		if len(row) != 4 {
			t.Fatalf("row %d has %d columns, want 4: %v", i, len(row), row)
		}
		if row[2] != "0.500" || row[3] != "0.500" {
			t.Errorf("row %d timing columns = (%s, %s), want (0.500, 0.500) under the fake clock",
				i, row[2], row[3])
		}
	}
}
