package experiment

import (
	"fmt"

	"floatfl/internal/core"
	"floatfl/internal/opt"
	"floatfl/internal/rl"
	"floatfl/internal/trace"
)

// ablationArm names one agent-configuration variant.
type ablationArm struct {
	name      string
	cfg       rl.Config
	perClient bool
}

// runAblation executes each arm as FLOAT(FedAvg) on FEMNIST-like data
// under dynamic interference and reports the headline outcomes.
func runAblation(sc Scale, title string, arms []ablationArm) ([]Table, error) {
	tab := Table{
		Title:  title,
		Header: []string{"variant", "avg-acc%", "dropped", "mean-reward(last-25%)", "states"},
	}
	for _, arm := range arms {
		cfg := arm.cfg
		res, ctrl, err := RunWithController(sc, RunSpec{
			Dataset: "femnist", Algo: "fedavg", Float: true, FloatCfg: &cfg,
			FloatPerClient: arm.perClient,
			Alpha:          0.1, Scenario: trace.ScenarioDynamic, DeadlinePercentile: 45,
		})
		if err != nil {
			return nil, err
		}
		f, ok := ctrl.(*core.Float)
		if !ok {
			return nil, fmt.Errorf("experiment: ablation controller is %T, want *core.Float", ctrl)
		}
		sum := f.Summary()
		tab.Rows = append(tab.Rows, []string{
			arm.name, f1(res.FinalAccStats.Average * 100), d(res.Ledger.TotalDrops),
			f3(sum.MeanRecentReward), d(sum.States),
		})
	}
	return []Table{tab}, nil
}

// AblationReward compares RQ6's moving-average reward against the raw
// additive accumulation it replaced.
func AblationReward(sc Scale) ([]Table, error) {
	return runAblation(sc, "Ablation: moving-average vs additive rewards", []ablationArm{
		{name: "moving-average", cfg: rl.Config{}},
		{name: "additive", cfg: rl.Config{AdditiveRewards: true}},
	})
}

// AblationExploration compares balanced (least-visited-first) exploration
// against plain uniform epsilon-greedy.
func AblationExploration(sc Scale) ([]Table, error) {
	return runAblation(sc, "Ablation: balanced vs uniform exploration", []ablationArm{
		{name: "balanced", cfg: rl.Config{}},
		{name: "uniform", cfg: rl.Config{DisableBalancedExploration: true}},
	})
}

// AblationLearningRate compares the dynamic (progress-scaled) learning
// rate against a fixed rate.
func AblationLearningRate(sc Scale) ([]Table, error) {
	return runAblation(sc, "Ablation: dynamic vs fixed learning rate", []ablationArm{
		{name: "dynamic", cfg: rl.Config{}},
		{name: "fixed-0.1", cfg: rl.Config{FixedLR: true, BaseLR: 0.1}},
	})
}

// AblationFeedbackCache compares RQ7's dropout-feedback synthesis against
// discarding dropped clients' accuracy signal.
func AblationFeedbackCache(sc Scale) ([]Table, error) {
	return runAblation(sc, "Ablation: dropout feedback cache on vs off", []ablationArm{
		{name: "cache-on", cfg: rl.Config{}},
		{name: "cache-off", cfg: rl.Config{DisableFeedbackCache: true}},
	})
}

// AblationPerClient compares the collective aggregator-side Q-table
// against per-client private tables (RQ2's two deployment modes).
func AblationPerClient(sc Scale) ([]Table, error) {
	return runAblation(sc, "Ablation: collective vs per-client Q-tables", []ablationArm{
		{name: "collective", cfg: rl.Config{}},
		{name: "per-client", cfg: rl.Config{}, perClient: true},
	})
}

// AblationActionSpace compares the paper's 8-action space against the
// extended 9-action space that adds the lossless-compression technique —
// the "new acceleration technique" growth path of RQ5.
func AblationActionSpace(sc Scale) ([]Table, error) {
	extended := append(opt.Actions(), opt.TechCompress)
	return runAblation(sc, "Ablation: 8-action vs extended 9-action space", []ablationArm{
		{name: "8-actions", cfg: rl.Config{}},
		{name: "9-actions(+compress)", cfg: rl.Config{Actions: extended}},
	})
}

// AblationBins compares RQ5's 5-bin discretization against coarser and
// finer resolutions.
func AblationBins(sc Scale) ([]Table, error) {
	return runAblation(sc, "Ablation: state discretization resolution", []ablationArm{
		{name: "3-bins", cfg: rl.Config{Bins: 3}},
		{name: "5-bins", cfg: rl.Config{Bins: 5}},
		{name: "7-bins", cfg: rl.Config{Bins: 7}},
	})
}

// SweepFig6 runs the Fig 6 comparison (FedAvg vs heuristic vs FLOAT) over
// several seeds and reports mean ± std — quantifying how much of the
// single-seed figures is noise.
func SweepFig6(sc Scale) ([]Table, error) {
	const seeds = 3
	arms := []struct {
		name string
		spec RunSpec
	}{
		{"fedavg", RunSpec{Dataset: "femnist", Algo: "fedavg"}},
		{"heuristic", RunSpec{Dataset: "femnist", Algo: "fedavg", Heur: true}},
		{"float", RunSpec{Dataset: "femnist", Algo: "fedavg", Float: true}},
	}
	tab := Table{
		Title:  fmt.Sprintf("Seed sweep (n=%d): Fig 6 arms, mean ± std", seeds),
		Header: []string{"controller", "avg-acc", "dropped", "wasted-compute-h", "wasted-comm-h"},
	}
	for _, arm := range arms {
		spec := arm.spec
		spec.Alpha = 0.1
		spec.Scenario = trace.ScenarioDynamic
		spec.DeadlinePercentile = 45
		res, err := Sweep(sc, spec, seeds)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			arm.name, res.AvgAccuracy.String(), res.Dropped.String(),
			res.WastedCompute.String(), res.WastedComm.String(),
		})
	}
	return []Table{tab}, nil
}

// Figures maps figure/ablation names to their runners; the floatbench CLI
// and the bench suite both dispatch through it.
var Figures = map[string]func(Scale) ([]Table, error){
	"2":                  Fig2,
	"3":                  Fig3,
	"4":                  Fig4,
	"5":                  Fig5,
	"6":                  Fig6,
	"8":                  func(Scale) ([]Table, error) { return Fig8() },
	"9":                  Fig9,
	"10":                 Fig10,
	"11":                 Fig11,
	"12":                 Fig12,
	"13":                 Fig13,
	"ablation-reward":    AblationReward,
	"ablation-explore":   AblationExploration,
	"ablation-lr":        AblationLearningRate,
	"ablation-cache":     AblationFeedbackCache,
	"ablation-bins":      AblationBins,
	"ablation-perclient": AblationPerClient,
	"ablation-actions":   AblationActionSpace,
	"sweep-6":            SweepFig6,
}

// FigureNames returns the dispatchable experiment names in display order.
func FigureNames() []string {
	return []string{"2", "3", "4", "5", "6", "8", "9", "10", "11", "12", "13",
		"ablation-reward", "ablation-explore", "ablation-lr", "ablation-cache",
		"ablation-bins", "ablation-perclient", "ablation-actions", "sweep-6"}
}

// ByName runs the named figure at the given scale.
func ByName(name string, sc Scale) ([]Table, error) {
	fn, ok := Figures[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (known: %v)", errUnknownFigure, name, FigureNames())
	}
	return fn(sc)
}
