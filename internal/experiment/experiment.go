// Package experiment wires the full stack together into one named,
// reproducible experiment per figure of the paper's evaluation. The same
// functions back the floatbench CLI, the examples, and the repository's
// bench suite, so every consumer prints identical rows.
//
// Each experiment accepts a Scale: Quick (seconds, CI-friendly) keeps the
// paper's shapes; Paper matches the published configuration (200 clients,
// 30 per round, 300 rounds) and runs in minutes on a laptop CPU.
package experiment

import (
	"fmt"
	"io"
	"strings"

	"floatfl/internal/core"
	"floatfl/internal/data"
	"floatfl/internal/fl"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/rl"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

// Scale dials the size of every experiment.
type Scale struct {
	Clients  int
	Rounds   int
	PerRound int
	Epochs   int
	BatchSz  int
	Seed     int64
	// AsyncConcurrency and AsyncBuffer configure FedBuff runs.
	AsyncConcurrency int
	AsyncBuffer      int
	// Parallelism is the per-round client-execution worker count handed to
	// fl.Config.Parallelism. Results are bit-identical for every value;
	// <= 0 defaults to runtime.NumCPU().
	Parallelism int
	// Metrics and Tracer, when non-nil, receive the engine's telemetry
	// (fl.Config.Metrics / fl.Config.Tracer); nil keeps runs
	// instrumentation-free with zero overhead.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	// Timeline, when non-nil, receives one delta-encoded sample of Metrics
	// plus per-round engine facts at every end-of-round boundary
	// (fl.Config.Timeline). Requires Metrics to be useful; nil disables
	// sampling.
	Timeline *obs.Timeline
	// Backend selects the tensor backend for local training ("ref" |
	// "fast"; empty = "ref"). Published figures and goldens bind to "ref".
	Backend string
	// Lazy derives client state on demand from (seed, clientID) instead of
	// materializing the whole population up front, bounding memory to the
	// working-set cache plus the per-round selection — the only feasible
	// mode at million-client scale. Requires a lazy-capable selector (all
	// built-ins qualify).
	Lazy bool
	// CacheClients bounds the lazy working-set caches (<= 0 defaults to
	// 4096). Ignored when Lazy is false.
	CacheClients int
	// EvalClients caps the final per-client evaluation sweep (<= 0
	// evaluates everyone — the classic behavior, infeasible at scale).
	EvalClients int
	// Checkpoint, when non-nil, threads crash-safe snapshot/resume hooks
	// into the run (fl.Config.Checkpoint). Nil keeps the engines on the
	// zero-overhead path used by every published figure and bench.
	Checkpoint *fl.CheckpointConfig
}

// Quick is a CI-sized scale that preserves the figures' shapes.
var Quick = Scale{
	Clients: 40, Rounds: 30, PerRound: 10, Epochs: 2, BatchSz: 16,
	Seed: 42, AsyncConcurrency: 20, AsyncBuffer: 8,
}

// Paper mirrors the published evaluation configuration (Section 6.1).
var Paper = Scale{
	Clients: 200, Rounds: 300, PerRound: 30, Epochs: 5, BatchSz: 20,
	Seed: 42, AsyncConcurrency: 100, AsyncBuffer: 30,
}

// Table is one printable result block (a figure panel or table).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

// f2 formats a float with two decimals; f1/f3 vary precision.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func d(x int) string      { return fmt.Sprintf("%d", x) }

// archFor maps datasets to the paper's model choice: ShuffleNet for
// OpenImage (matching [2, 39]), ResNet-34 elsewhere (Section 6.1).
func archFor(dataset string) string {
	if dataset == "openimage" {
		return "shufflenet"
	}
	return "resnet34"
}

// RunSpec describes one training run within an experiment.
type RunSpec struct {
	Dataset  string
	Algo     string // fedavg | oort | refl | fedbuff
	Float    bool   // wrap with the FLOAT controller
	FloatCfg *rl.Config
	// FloatPerClient trains one Q-table per client (privacy mode).
	FloatPerClient bool
	Heur           bool   // use the heuristic controller instead
	Static         string // non-empty: use a static technique controller
	Alpha          float64
	Scenario       trace.Scenario
	Arch           string // override archFor(Dataset)
	// FourGOnly forces a 4G-only population (the "unstable network"
	// scenario of Fig 10c).
	FourGOnly bool
	// Logger receives structured per-round events (nil discards them).
	Logger fl.RoundLogger
	// DeadlinePercentile overrides the default 60.
	DeadlinePercentile float64
	SeedOffset         int64
}

// Run executes one training run at the given scale.
func Run(sc Scale, spec RunSpec) (*fl.Result, error) {
	res, _, err := runInternal(sc, spec, nil)
	return res, err
}

// generateFederation synthesizes the federated dataset for a run.
func generateFederation(dataset string, clients int, alpha float64, seed int64) (*data.Federation, error) {
	return data.Generate(dataset, data.GenerateConfig{
		Clients: clients, Alpha: alpha, Seed: seed,
	})
}

// techniqueOrder is the stable display order of the action space plus the
// no-op baseline.
func techniqueOrder() []opt.Technique { return opt.All() }

func controllerFor(sc Scale, spec RunSpec, seed int64) fl.Controller {
	switch {
	case spec.Float:
		agentCfg := rl.Config{Seed: seed + 2, TotalRounds: sc.Rounds}
		if spec.FloatCfg != nil {
			agentCfg = *spec.FloatCfg
			if agentCfg.TotalRounds == 0 {
				agentCfg.TotalRounds = sc.Rounds
			}
			if agentCfg.Seed == 0 {
				agentCfg.Seed = seed + 2
			}
		}
		return core.New(core.Config{
			Agent:           agentCfg,
			BatchSize:       sc.BatchSz,
			Epochs:          sc.Epochs,
			ClientsPerRound: sc.PerRound,
			PerClient:       spec.FloatPerClient,
			Metrics:         sc.Metrics,
		})
	case spec.Heur:
		return core.NewHeuristic(seed + 3)
	case spec.Static != "":
		tech, err := opt.Parse(spec.Static)
		if err == nil {
			return fl.StaticController{Tech: tech}
		}
		return fl.NoOpController{}
	default:
		return fl.NoOpController{}
	}
}

func selectorFor(algo string, seed int64) (selection.Selector, error) {
	switch algo {
	case "fedavg", "fedprox", "":
		return selection.NewRandom(seed + 10), nil
	case "oort":
		return selection.NewOort(selection.OortConfig{Seed: seed + 11}), nil
	case "refl":
		return selection.NewREFL(selection.REFLConfig{Seed: seed + 12}), nil
	default:
		return nil, fmt.Errorf("experiment: unknown algorithm %q", algo)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
