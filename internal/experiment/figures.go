package experiment

import (
	"fmt"
	"sort"

	"floatfl/internal/device"
	"floatfl/internal/fl"
	"floatfl/internal/metrics"
	"floatfl/internal/population"
	"floatfl/internal/trace"
)

// RunWithController is Run, but also returns the controller so callers can
// inspect FLOAT's agent afterwards (Q-table dumps, transfer).
func RunWithController(sc Scale, spec RunSpec) (*fl.Result, fl.Controller, error) {
	// Duplicate of Run's body is avoided by threading the controller
	// through a package-level hook: Run builds the controller via
	// controllerFor, so rebuild it here with the same seed and pass it in.
	res, ctrl, err := runInternal(sc, spec, nil)
	return res, ctrl, err
}

// runInternal executes one training run; if ctrlOverride is non-nil it is
// used instead of the spec-derived controller (transfer experiments reuse
// a pre-trained FLOAT controller across runs).
func runInternal(sc Scale, spec RunSpec, ctrlOverride fl.Controller) (*fl.Result, fl.Controller, error) {
	seed := sc.Seed + spec.SeedOffset
	ctrl := ctrlOverride
	if ctrl == nil {
		ctrl = controllerFor(sc, spec, seed)
	}
	res, err := runWith(sc, spec, ctrl)
	return res, ctrl, err
}

// Fig2 reproduces the motivation experiment (Fig 2a/2b): participation
// bias of selected (C) vs successfully completed (S) clients, and
// accumulated resource usage plus wall-clock time, across FedAvg, Oort,
// REFL (synchronous) and FedBuff (asynchronous). EMNIST-like data,
// Dirichlet alpha 0.05.
func Fig2(sc Scale) ([]Table, error) {
	algos := []string{"fedavg", "oort", "refl", "fedbuff"}
	bias := Table{
		Title:  "Fig 2a: participation bias (selected vs completed)",
		Header: []string{"algo", "selected(C)", "completed(S)", "never-selected%", "never-completed%", "gini", "jain"},
	}
	usage := Table{
		Title:  "Fig 2b: accumulated resource usage and wall-clock time",
		Header: []string{"algo", "compute-h(total)", "comm-h(total)", "wall-clock-h", "client-rounds"},
	}
	for _, algo := range algos {
		res, err := Run(sc, RunSpec{
			Dataset: "emnist", Algo: algo, Alpha: 0.05, Scenario: trace.ScenarioDynamic,
		})
		if err != nil {
			return nil, err
		}
		l := res.Ledger
		selected, completed := 0, 0
		for i := range l.Selected {
			selected += l.Selected[i]
			completed += l.Completed[i]
		}
		bias.Rows = append(bias.Rows, []string{
			algo, d(selected), d(completed),
			f1(l.NeverSelectedFraction() * 100), f1(l.NeverCompletedFraction() * 100),
			f3(l.SelectionGini()), f3(l.SelectionJainIndex()),
		})
		total := l.Useful
		total.Add(l.Wasted)
		usage.Rows = append(usage.Rows, []string{
			algo, f2(total.ComputeHours), f2(total.CommHours),
			f2(res.WallClockSeconds / 3600), d(l.TotalRounds),
		})
	}
	return []Table{bias, usage}, nil
}

// Fig3 reproduces the dropout-impact experiment: Top-10%, average, and
// Bottom-10% client accuracy under no dropouts (ND: unbounded deadline, no
// interference) versus dropouts (D: dynamic interference, tight deadline).
func Fig3(sc Scale) ([]Table, error) {
	algos := []string{"fedavg", "oort", "refl", "fedbuff"}
	tab := Table{
		Title:  "Fig 3: accuracy with no dropouts (ND) vs dropouts (D)",
		Header: []string{"algo", "arm", "top10%", "avg%", "bottom10%", "drops"},
	}
	for _, algo := range algos {
		for _, arm := range []string{"ND", "D"} {
			spec := RunSpec{Dataset: "emnist", Algo: algo, Alpha: 0.05}
			if arm == "ND" {
				spec.Scenario = trace.ScenarioNone
				spec.DeadlinePercentile = 99.9
			} else {
				spec.Scenario = trace.ScenarioDynamic
				spec.DeadlinePercentile = 50
			}
			res, err := Run(sc, spec)
			if err != nil {
				return nil, err
			}
			s := res.FinalAccStats
			tab.Rows = append(tab.Rows, []string{
				algo, arm, f1(s.Top10 * 100), f1(s.Average * 100), f1(s.Bottom10 * 100),
				d(res.Ledger.TotalDrops),
			})
		}
	}
	return []Table{tab}, nil
}

// Fig4 reproduces the resource-variation distributions: effective compute
// (GFLOPS × CPU availability) and effective bandwidth (Mbps × network
// availability) percentiles under the three interference scenarios.
func Fig4(sc Scale) ([]Table, error) {
	scenarios := []trace.Scenario{trace.ScenarioNone, trace.ScenarioStatic, trace.ScenarioDynamic}
	comp := Table{
		Title:  "Fig 4 (compute): effective GFLOPS available for FL",
		Header: []string{"scenario", "p10", "p50", "p90", "mean", "std"},
	}
	band := Table{
		Title:  "Fig 4 (network): effective bandwidth Mbps available for FL",
		Header: []string{"scenario", "p10", "p50", "p90", "mean", "std"},
	}
	for _, sn := range scenarios {
		pop, err := device.NewPopulation(device.PopulationConfig{
			Clients: sc.Clients, Scenario: sn, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		var gflops, mbps []float64
		steps := maxInt(sc.Rounds, 10)
		for _, c := range pop {
			for t := 0; t < steps; t++ {
				r := c.ResourcesAt(t)
				gflops = append(gflops, c.Compute.GFLOPS*r.CPUFrac)
				mbps = append(mbps, r.BandwidthMbps*r.NetFrac)
			}
		}
		comp.Rows = append(comp.Rows, []string{
			sn.String(),
			f1(metrics.Percentile(gflops, 10)), f1(metrics.Percentile(gflops, 50)),
			f1(metrics.Percentile(gflops, 90)), f1(metrics.Mean(gflops)), f1(metrics.Std(gflops)),
		})
		band.Rows = append(band.Rows, []string{
			sn.String(),
			f1(metrics.Percentile(mbps, 10)), f1(metrics.Percentile(mbps, 50)),
			f1(metrics.Percentile(mbps, 90)), f1(metrics.Mean(mbps)), f1(metrics.Std(mbps)),
		})
	}
	return []Table{comp, band}, nil
}

// Fig5 reproduces the static-optimization study: accuracy, successful and
// dropped clients for one static technique per family (top row) and for
// the three pruning configurations (bottom row), across the three
// interference scenarios. FEMNIST-like data, FedAvg selection, tight
// deadline so optimizations matter.
func Fig5(sc Scale) ([]Table, error) {
	scenarios := []trace.Scenario{trace.ScenarioNone, trace.ScenarioStatic, trace.ScenarioDynamic}
	techSets := []struct {
		title string
		techs []string
	}{
		{"Fig 5 (top): static techniques", []string{"none", "quant8", "prune50", "partial50"}},
		{"Fig 5 (bottom): pruning configurations", []string{"prune25", "prune50", "prune75"}},
	}
	var tables []Table
	for _, set := range techSets {
		tab := Table{
			Title:  set.title,
			Header: []string{"scenario", "technique", "avg-acc%", "successful", "dropped"},
		}
		for _, sn := range scenarios {
			for _, tech := range set.techs {
				res, err := Run(sc, RunSpec{
					Dataset: "femnist", Algo: "fedavg", Static: tech,
					Scenario: sn, DeadlinePercentile: 45,
				})
				if err != nil {
					return nil, err
				}
				l := res.Ledger
				tab.Rows = append(tab.Rows, []string{
					sn.String(), tech, f1(res.FinalAccStats.Average * 100),
					d(l.TotalRounds - l.TotalDrops), d(l.TotalDrops),
				})
			}
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

// techBreakdownTable renders per-technique success/failure counts — the
// right-hand panels of Fig 6 and Fig 11.
func techBreakdownTable(title string, results map[string]*fl.Result) Table {
	tab := Table{
		Title:  title,
		Header: []string{"controller", "technique", "success", "failure"},
	}
	// Rows come out in controller-name order; ranging the map directly
	// would shuffle the table between runs.
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res := results[name]
		for _, tech := range techniqueOrder() {
			s := res.Ledger.TechSuccess[tech]
			f := res.Ledger.TechFailure[tech]
			if s == 0 && f == 0 {
				continue
			}
			tab.Rows = append(tab.Rows, []string{name, tech.String(), d(s), d(f)})
		}
	}
	return tab
}

// Fig6 reproduces the heuristic-vs-FLOAT comparison: FedAvg baseline, the
// Section 4.4 heuristic, and FLOAT, on FEMNIST-like data with Dirichlet
// alpha 0.01 under dynamic interference. Three panels: accuracy/clients,
// resource inefficiency, per-technique success/failure counts.
func Fig6(sc Scale) ([]Table, error) {
	arms := []struct {
		name string
		spec RunSpec
	}{
		{"fedavg", RunSpec{Dataset: "femnist", Algo: "fedavg"}},
		{"heuristic", RunSpec{Dataset: "femnist", Algo: "fedavg", Heur: true}},
		{"float", RunSpec{Dataset: "femnist", Algo: "fedavg", Float: true}},
	}
	acc := Table{
		Title:  "Fig 6 (left): accuracy, successful and dropped clients",
		Header: []string{"controller", "top10%", "avg%", "bottom10%", "successful", "dropped"},
	}
	ineff := Table{
		Title:  "Fig 6 (mid): resource inefficiency from dropped clients",
		Header: []string{"controller", "compute-h", "comm-h", "memory-TB"},
	}
	byName := map[string]*fl.Result{}
	for _, arm := range arms {
		arm.spec.Alpha = 0.01
		arm.spec.Scenario = trace.ScenarioDynamic
		arm.spec.DeadlinePercentile = 45
		res, err := Run(sc, arm.spec)
		if err != nil {
			return nil, err
		}
		byName[arm.name] = res
		l := res.Ledger
		s := res.FinalAccStats
		acc.Rows = append(acc.Rows, []string{
			arm.name, f1(s.Top10 * 100), f1(s.Average * 100), f1(s.Bottom10 * 100),
			d(l.TotalRounds - l.TotalDrops), d(l.TotalDrops),
		})
		w := l.Wasted
		ineff.Rows = append(ineff.Rows, []string{
			arm.name, f2(w.ComputeHours), f2(w.CommHours), f3(w.MemoryTB),
		})
	}
	breakdown := techBreakdownTable(
		"Fig 6 (right): per-technique success and failure counts",
		map[string]*fl.Result{"heuristic": byName["heuristic"], "float": byName["float"]})
	return []Table{acc, ineff, breakdown}, nil
}

// runWith executes one run with an explicit controller (shared by Run and
// the transfer/Q-table experiments).
func runWith(sc Scale, spec RunSpec, ctrl fl.Controller) (*fl.Result, error) {
	alpha := spec.Alpha
	if alpha <= 0 {
		alpha = 0.1
	}
	seed := sc.Seed + spec.SeedOffset
	arch := spec.Arch
	if arch == "" {
		arch = archFor(spec.Dataset)
	}
	cfg := fl.Config{
		Arch:               arch,
		Rounds:             sc.Rounds,
		ClientsPerRound:    sc.PerRound,
		Epochs:             sc.Epochs,
		BatchSize:          sc.BatchSz,
		LR:                 0.1,
		DeadlinePercentile: spec.DeadlinePercentile,
		EvalEvery:          maxInt(1, sc.Rounds/10),
		Seed:               seed + 1,
		Concurrency:        sc.AsyncConcurrency,
		BufferK:            sc.AsyncBuffer,
		Parallelism:        sc.Parallelism,
		Backend:            sc.Backend,
		EvalClients:        sc.EvalClients,
		Logger:             spec.Logger,
		Metrics:            sc.Metrics,
		Tracer:             sc.Tracer,
		Timeline:           sc.Timeline,
		Checkpoint:         sc.Checkpoint,
	}
	if spec.Algo == "fedprox" {
		cfg.ProxMu = 0.01
	}
	var p *population.Population
	if sc.Lazy {
		var err error
		p, err = population.NewLazy(population.Config{
			Dataset:      spec.Dataset,
			Clients:      sc.Clients,
			Alpha:        alpha,
			Seed:         seed,
			Scenario:     spec.Scenario,
			FiveGShare:   spec.fiveGShare(),
			CacheClients: sc.CacheClients,
		})
		if err != nil {
			return nil, err
		}
		p.Instrument(sc.Metrics)
	} else {
		fedData, err := generateFederation(spec.Dataset, sc.Clients, alpha, seed)
		if err != nil {
			return nil, err
		}
		pop, err := device.NewPopulation(device.PopulationConfig{
			Clients: sc.Clients, Scenario: spec.Scenario, Seed: seed,
			FiveGShare: spec.fiveGShare(),
		})
		if err != nil {
			return nil, err
		}
		p, err = population.WrapEager(fedData, pop)
		if err != nil {
			return nil, err
		}
	}
	if spec.Algo == "fedbuff" {
		return fl.RunAsyncPop(p, ctrl, cfg)
	}
	sel, err := selectorFor(spec.Algo, seed)
	if err != nil {
		return nil, err
	}
	return fl.RunSyncPop(p, sel, ctrl, cfg)
}

// fiveGShare lets network-stress specs force a 4G-only population.
func (s RunSpec) fiveGShare() float64 {
	if s.FourGOnly {
		return 0.0001
	}
	return 0
}

var errUnknownFigure = fmt.Errorf("experiment: unknown figure")
