package experiment

import (
	"testing"

	"floatfl/internal/trace"
)

// shapesScale is large enough for the paper's qualitative orderings to be
// stable under the fixed seed, small enough for CI.
var shapesScale = Scale{
	Clients: 40, Rounds: 30, PerRound: 12, Epochs: 2, BatchSz: 16,
	Seed: 42, AsyncConcurrency: 20, AsyncBuffer: 8,
}

func runShape(t *testing.T, spec RunSpec) (drops int, acc float64) {
	t.Helper()
	spec.Scenario = trace.ScenarioDynamic
	if spec.DeadlinePercentile == 0 {
		spec.DeadlinePercentile = 50
	}
	res, err := Run(shapesScale, spec)
	if err != nil {
		t.Fatal(err)
	}
	return res.Ledger.TotalDrops, res.FinalAccStats.Average
}

// TestShapeFloatBeatsBaselineAndHeuristic is the repository's headline
// integration assertion: on the Fig 6 workload, FLOAT drops fewer clients
// than both plain FedAvg and the Section 4.4 heuristic, and does not lose
// accuracy doing it.
func TestShapeFloatBeatsBaselineAndHeuristic(t *testing.T) {
	baseDrops, baseAcc := runShape(t, RunSpec{Dataset: "femnist", Algo: "fedavg"})
	heurDrops, _ := runShape(t, RunSpec{Dataset: "femnist", Algo: "fedavg", Heur: true})
	floatDrops, floatAcc := runShape(t, RunSpec{Dataset: "femnist", Algo: "fedavg", Float: true})

	if floatDrops >= baseDrops {
		t.Fatalf("FLOAT did not reduce dropouts: float=%d baseline=%d", floatDrops, baseDrops)
	}
	if floatDrops >= heurDrops {
		t.Fatalf("FLOAT did not beat the heuristic on dropouts: float=%d heuristic=%d",
			floatDrops, heurDrops)
	}
	if floatAcc < baseAcc-0.02 {
		t.Fatalf("FLOAT sacrificed accuracy: float=%.3f baseline=%.3f", floatAcc, baseAcc)
	}
}

// TestShapeFloatCutsWaste: FLOAT's completed rounds waste less of every
// resource than the baseline's (Fig 12 bottom rows).
func TestShapeFloatCutsWaste(t *testing.T) {
	spec := RunSpec{Dataset: "femnist", Algo: "fedavg", Scenario: trace.ScenarioDynamic, DeadlinePercentile: 50}
	base, err := Run(shapesScale, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Float = true
	float, err := Run(shapesScale, spec)
	if err != nil {
		t.Fatal(err)
	}
	bw, fw := base.Ledger.Wasted, float.Ledger.Wasted
	if fw.ComputeHours >= bw.ComputeHours {
		t.Fatalf("wasted compute not reduced: %.2f vs %.2f", fw.ComputeHours, bw.ComputeHours)
	}
	if fw.CommHours >= bw.CommHours {
		t.Fatalf("wasted communication not reduced: %.2f vs %.2f", fw.CommHours, bw.CommHours)
	}
	if fw.MemoryTB >= bw.MemoryTB {
		t.Fatalf("wasted memory not reduced: %.3f vs %.3f", fw.MemoryTB, bw.MemoryTB)
	}
}

// TestShapeREFLMostBiased: REFL excludes more of the population than
// FedAvg (Fig 2a's headline).
func TestShapeREFLMostBiased(t *testing.T) {
	run := func(algo string) float64 {
		res, err := Run(shapesScale, RunSpec{
			Dataset: "emnist", Algo: algo, Alpha: 0.05, Scenario: trace.ScenarioDynamic,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Ledger.SelectionGini()
	}
	if refl, fedavg := run("refl"), run("fedavg"); refl <= fedavg {
		t.Fatalf("REFL should be more biased than FedAvg: gini %.3f vs %.3f", refl, fedavg)
	}
}

// TestShapeDropoutsHurtAccuracy: the same algorithm scores lower with
// dropouts than without (Fig 3).
func TestShapeDropoutsHurtAccuracy(t *testing.T) {
	nd, err := Run(shapesScale, RunSpec{
		Dataset: "emnist", Algo: "fedavg", Alpha: 0.05,
		Scenario: trace.ScenarioNone, DeadlinePercentile: 99.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(shapesScale, RunSpec{
		Dataset: "emnist", Algo: "fedavg", Alpha: 0.05,
		Scenario: trace.ScenarioDynamic, DeadlinePercentile: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Ledger.TotalDrops <= nd.Ledger.TotalDrops {
		t.Fatal("dropout arm did not drop more clients")
	}
	if d.FinalAccStats.Average >= nd.FinalAccStats.Average {
		t.Fatalf("dropouts did not hurt accuracy: D=%.3f ND=%.3f",
			d.FinalAccStats.Average, nd.FinalAccStats.Average)
	}
}

// TestShapeFedBuffTradeoff: FedBuff finishes faster than synchronous FL
// on wall-clock but consumes more client-rounds (Fig 2b).
func TestShapeFedBuffTradeoff(t *testing.T) {
	syncRes, err := Run(shapesScale, RunSpec{
		Dataset: "emnist", Algo: "fedavg", Alpha: 0.05, Scenario: trace.ScenarioDynamic,
	})
	if err != nil {
		t.Fatal(err)
	}
	asyncRes, err := Run(shapesScale, RunSpec{
		Dataset: "emnist", Algo: "fedbuff", Alpha: 0.05, Scenario: trace.ScenarioDynamic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if asyncRes.WallClockSeconds >= syncRes.WallClockSeconds {
		t.Fatalf("FedBuff should be faster on wall-clock: async=%.0fs sync=%.0fs",
			asyncRes.WallClockSeconds, syncRes.WallClockSeconds)
	}
	// Over-selection: FedBuff starts strictly more client-rounds than the
	// minimum its buffer needs (paper: up to 5× with concurrency 100 and
	// buffer 30; the ratio scales with concurrency/buffer).
	minimum := shapesScale.Rounds * shapesScale.AsyncBuffer
	if asyncRes.Ledger.TotalRounds <= minimum {
		t.Fatalf("FedBuff shows no over-selection: %d client-rounds for a %d minimum",
			asyncRes.Ledger.TotalRounds, minimum)
	}
}

// TestShapeSpeechEasiest: the speech workload converges to the highest
// accuracy with the fewest dropout-driven losses (Fig 12 discussion).
func TestShapeSpeechEasiest(t *testing.T) {
	speech, err := Run(shapesScale, RunSpec{Dataset: "speech", Algo: "fedavg",
		Scenario: trace.ScenarioDynamic, DeadlinePercentile: 50})
	if err != nil {
		t.Fatal(err)
	}
	vision, err := Run(shapesScale, RunSpec{Dataset: "cifar10", Algo: "fedavg",
		Scenario: trace.ScenarioDynamic, DeadlinePercentile: 50})
	if err != nil {
		t.Fatal(err)
	}
	if speech.FinalAccStats.Average <= vision.FinalAccStats.Average {
		t.Fatalf("speech should be the easiest workload: speech=%.3f cifar10=%.3f",
			speech.FinalAccStats.Average, vision.FinalAccStats.Average)
	}
}
