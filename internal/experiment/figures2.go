package experiment

import (
	"bytes"
	"fmt"

	"floatfl/internal/core"
	"floatfl/internal/fl"
	"floatfl/internal/opt"
	"floatfl/internal/rl"
	"floatfl/internal/trace"
)

// Fig8 reproduces the RLHF overhead study: Q-table memory and per-update
// training time as the number of materialized states grows. The paper's
// operating point (125 resource-state combinations × 8 actions) is marked.
func Fig8() ([]Table, error) {
	tab := Table{
		Title:  "Fig 8: RLHF agent overhead vs number of states (125 = FLOAT operating point)",
		Header: []string{"states", "memory-KB", "update-us", "select-us"},
	}
	for _, nStates := range []int{1, 8, 27, 64, 125, 512, 1000, 4096} {
		a := rl.NewAgent(rl.Config{Seed: 7, Bins: 64}) // wide bins: room for many states
		states := make([]rl.State, nStates)
		for i := range states {
			states[i] = rl.State{CPU: i % 64, Mem: (i / 64) % 64, Net: (i / 4096) % 64}
		}
		// Materialize every state and settle the table.
		for i, s := range states {
			act := a.SelectAction(s)
			if err := a.Update(i%300, s, act, i%2 == 0, 0.1, s); err != nil {
				return nil, err
			}
		}
		const iters = 2000
		start := timeNow()
		for i := 0; i < iters; i++ {
			s := states[i%nStates]
			if err := a.Update(i%300, s, opt.TechQuant8, true, 0.1, s); err != nil {
				return nil, err
			}
		}
		updateUS := float64(timeNow().Sub(start).Microseconds()) / iters
		start = timeNow()
		for i := 0; i < iters; i++ {
			a.SelectAction(states[i%nStates])
		}
		selectUS := float64(timeNow().Sub(start).Microseconds()) / iters
		tab.Rows = append(tab.Rows, []string{
			d(nStates), f2(float64(a.MemoryBytes()) / 1024), f3(updateUS), f3(selectUS),
		})
	}
	return []Table{tab}, nil
}

// Fig9 reproduces the RLHF reusability study: pre-train FLOAT's agent on
// FEMNIST-like data with ResNet-18, then deploy it on CIFAR10-like data
// with ResNet-50 and compare fine-tuning convergence against a cold start.
// The reported series is the mean combined reward per reward window.
func Fig9(sc Scale) ([]Table, error) {
	makeFloat := func(seed int64) *core.Float {
		return core.New(core.Config{
			Agent:           rl.Config{Seed: seed, TotalRounds: sc.Rounds},
			BatchSize:       sc.BatchSz,
			Epochs:          sc.Epochs,
			ClientsPerRound: sc.PerRound,
		})
	}

	// Phase 1: pre-train on FEMNIST + ResNet-18.
	pre := makeFloat(sc.Seed + 100)
	if _, err := runWith(sc, RunSpec{
		Dataset: "femnist", Algo: "fedavg", Arch: "resnet18",
		Scenario: trace.ScenarioDynamic, DeadlinePercentile: 45,
	}, pre); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := pre.SaveAgent(&buf); err != nil {
		return nil, err
	}

	// Phase 2: CIFAR10 + ResNet-50, warm vs cold.
	warm := makeFloat(sc.Seed + 101)
	if err := warm.LoadAgent(bytes.NewReader(buf.Bytes())); err != nil {
		return nil, err
	}
	cold := makeFloat(sc.Seed + 101)
	spec := RunSpec{
		Dataset: "cifar10", Algo: "fedavg", Arch: "resnet50",
		Scenario: trace.ScenarioDynamic, DeadlinePercentile: 45, SeedOffset: 7,
	}
	if _, err := runWith(sc, spec, warm); err != nil {
		return nil, err
	}
	if _, err := runWith(sc, spec, cold); err != nil {
		return nil, err
	}

	tab := Table{
		Title:  "Fig 9: RLHF agent reusability — mean reward per window, pre-trained vs cold start on CIFAR10/ResNet-50",
		Header: []string{"window", "pretrained-reward", "coldstart-reward"},
	}
	wh, ch := warm.Agent().RewardHistory(), cold.Agent().RewardHistory()
	windows := 6
	n := len(wh)
	if len(ch) < n {
		n = len(ch)
	}
	if n == 0 {
		return nil, fmt.Errorf("experiment: no reward history recorded")
	}
	step := maxInt(1, n/windows)
	for start := 0; start < n; start += step {
		end := start + step
		if end > n {
			end = n
		}
		mean := func(h []float64) float64 {
			var s float64
			for _, r := range h[start:end] {
				s += r
			}
			return s / float64(end-start)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d-%d", start, end), f3(mean(wh)), f3(mean(ch)),
		})
	}
	return []Table{tab}, nil
}

// Fig10 reproduces the fine-tuned Q-table inspection: for three resource
// scenarios (IID data, dynamic non-IID, unstable 4G-only network) it dumps
// the agent's per-action participation-success and accuracy-improvement
// estimates, visit-weighted across states.
func Fig10(sc Scale) ([]Table, error) {
	scenarios := []struct {
		name string
		spec RunSpec
	}{
		{"iid", RunSpec{Dataset: "femnist", Algo: "fedavg", Float: true,
			Alpha: 100, Scenario: trace.ScenarioDynamic, DeadlinePercentile: 45}},
		{"dynamic-noniid", RunSpec{Dataset: "femnist", Algo: "fedavg", Float: true,
			Alpha: 0.1, Scenario: trace.ScenarioDynamic, DeadlinePercentile: 45}},
		{"unstable-network", RunSpec{Dataset: "femnist", Algo: "fedavg", Float: true,
			Alpha: 0.1, Scenario: trace.ScenarioDynamic, FourGOnly: true, DeadlinePercentile: 45}},
	}
	var tables []Table
	for _, sn := range scenarios {
		_, ctrl, err := RunWithController(sc, sn.spec)
		if err != nil {
			return nil, err
		}
		f, ok := ctrl.(*core.Float)
		if !ok {
			return nil, fmt.Errorf("experiment: Fig10 controller is %T, want *core.Float", ctrl)
		}
		tab := Table{
			Title:  fmt.Sprintf("Fig 10 (%s): fine-tuned Q-table per action", sn.name),
			Header: []string{"action", "participation-success", "accuracy-improvement", "visits"},
		}
		for _, st := range f.Agent().ActionSummary() {
			tab.Rows = append(tab.Rows, []string{
				st.Technique.String(), f3(st.Part), f3(st.Acc), d(st.Visits),
			})
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

// Fig11 reproduces the human-feedback ablation: FLOAT-RLHF (full design)
// versus FLOAT-RL (deadline-difference state disabled) under dynamic
// interference, with the same three panels as Fig 6.
func Fig11(sc Scale) ([]Table, error) {
	arms := []struct {
		name string
		cfg  rl.Config
	}{
		{"float-rlhf", rl.Config{}},
		{"float-rl", rl.Config{DisableHF: true}},
	}
	acc := Table{
		Title:  "Fig 11 (left): accuracy, successful and dropped clients",
		Header: []string{"controller", "top10%", "avg%", "bottom10%", "successful", "dropped"},
	}
	ineff := Table{
		Title:  "Fig 11 (mid): resource inefficiency from dropped clients",
		Header: []string{"controller", "compute-h", "comm-h", "memory-TB"},
	}
	byName := map[string]*fl.Result{}
	for _, arm := range arms {
		cfg := arm.cfg
		res, err := Run(sc, RunSpec{
			Dataset: "femnist", Algo: "fedavg", Float: true, FloatCfg: &cfg,
			Alpha: 0.1, Scenario: trace.ScenarioDynamic, DeadlinePercentile: 45,
		})
		if err != nil {
			return nil, err
		}
		byName[arm.name] = res
		l := res.Ledger
		s := res.FinalAccStats
		acc.Rows = append(acc.Rows, []string{
			arm.name, f1(s.Top10 * 100), f1(s.Average * 100), f1(s.Bottom10 * 100),
			d(l.TotalRounds - l.TotalDrops), d(l.TotalDrops),
		})
		w := l.Wasted
		ineff.Rows = append(ineff.Rows, []string{
			arm.name, f2(w.ComputeHours), f2(w.CommHours), f3(w.MemoryTB),
		})
	}
	breakdown := techBreakdownTable("Fig 11 (right): per-technique success and failure counts", byName)
	return []Table{acc, ineff, breakdown}, nil
}

// endToEnd runs the Fig 12/13 grid for one dataset: every baseline with
// and without FLOAT (REFL is never paired with FLOAT, matching the paper's
// Section 6.1 rationale).
func endToEnd(sc Scale, dataset string) ([]Table, error) {
	type arm struct {
		label string
		spec  RunSpec
	}
	arms := []arm{
		{"fedavg", RunSpec{Dataset: dataset, Algo: "fedavg"}},
		{"float(fedavg)", RunSpec{Dataset: dataset, Algo: "fedavg", Float: true}},
		{"oort", RunSpec{Dataset: dataset, Algo: "oort"}},
		{"float(oort)", RunSpec{Dataset: dataset, Algo: "oort", Float: true}},
		{"refl", RunSpec{Dataset: dataset, Algo: "refl"}},
		{"fedbuff", RunSpec{Dataset: dataset, Algo: "fedbuff"}},
		{"float(fedbuff)", RunSpec{Dataset: dataset, Algo: "fedbuff", Float: true}},
	}
	acc := Table{
		Title:  fmt.Sprintf("%s (top): accuracy, successful and dropped clients", dataset),
		Header: []string{"arm", "top10%", "avg%", "bottom10%", "successful", "dropped"},
	}
	ineff := Table{
		Title:  fmt.Sprintf("%s (bottom): compute, communication, and memory inefficiency", dataset),
		Header: []string{"arm", "compute-h", "comm-h", "memory-TB", "wall-clock-h"},
	}
	for _, a := range arms {
		a.spec.Alpha = 0.1
		a.spec.Scenario = trace.ScenarioDynamic
		a.spec.DeadlinePercentile = 50
		res, err := Run(sc, a.spec)
		if err != nil {
			return nil, err
		}
		l := res.Ledger
		s := res.FinalAccStats
		acc.Rows = append(acc.Rows, []string{
			a.label, f1(s.Top10 * 100), f1(s.Average * 100), f1(s.Bottom10 * 100),
			d(l.TotalRounds - l.TotalDrops), d(l.TotalDrops),
		})
		w := l.Wasted
		ineff.Rows = append(ineff.Rows, []string{
			a.label, f2(w.ComputeHours), f2(w.CommHours), f3(w.MemoryTB),
			f2(res.WallClockSeconds / 3600),
		})
	}
	return []Table{acc, ineff}, nil
}

// Fig12 reproduces the end-to-end evaluation across FEMNIST, CIFAR10, and
// Speech with ResNet-34 (Section 6.2).
func Fig12(sc Scale) ([]Table, error) {
	var tables []Table
	for _, ds := range []string{"femnist", "cifar10", "speech"} {
		ts, err := endToEnd(sc, ds)
		if err != nil {
			return nil, err
		}
		tables = append(tables, ts...)
	}
	return tables, nil
}

// Fig13 reproduces the complex-dataset evaluation: OpenImage with
// ShuffleNet.
func Fig13(sc Scale) ([]Table, error) {
	return endToEnd(sc, "openimage")
}
