package experiment

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"floatfl/internal/trace"
)

// tiny keeps the full-stack tests fast while still exercising every code
// path of each figure.
var tiny = Scale{
	Clients: 16, Rounds: 6, PerRound: 5, Epochs: 1, BatchSz: 8,
	Seed: 1, AsyncConcurrency: 8, AsyncBuffer: 3,
}

func TestTableFprint(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"x", "1"}, {"longer-cell", "2"}},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a", "long-column", "longer-cell"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(tiny, RunSpec{Dataset: "femnist", Algo: "fedavg", Scenario: trace.ScenarioDynamic})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "fedavg" {
		t.Fatalf("algorithm %q", res.Algorithm)
	}
	if res.Ledger.TotalRounds != tiny.Rounds*tiny.PerRound {
		t.Fatalf("client-rounds %d", res.Ledger.TotalRounds)
	}
}

func TestRunUnknownAlgo(t *testing.T) {
	if _, err := Run(tiny, RunSpec{Dataset: "femnist", Algo: "sgd"}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
	if _, err := Run(tiny, RunSpec{Dataset: "mnist-3d", Algo: "fedavg"}); err == nil {
		t.Fatal("accepted unknown dataset")
	}
}

func TestRunAllControllers(t *testing.T) {
	specs := []RunSpec{
		{Dataset: "femnist", Algo: "fedavg", Float: true},
		{Dataset: "femnist", Algo: "fedavg", Heur: true},
		{Dataset: "femnist", Algo: "fedavg", Static: "prune50"},
		{Dataset: "femnist", Algo: "oort"},
		{Dataset: "femnist", Algo: "refl"},
		{Dataset: "femnist", Algo: "fedprox"},
		{Dataset: "femnist", Algo: "fedbuff", Float: true},
	}
	wantCtrl := []string{"float", "heuristic", "static-prune50", "none", "none", "none", "float"}
	for i, spec := range specs {
		spec.Scenario = trace.ScenarioDynamic
		res, err := Run(tiny, spec)
		if err != nil {
			t.Fatalf("spec %+v: %v", spec, err)
		}
		if res.Controller != wantCtrl[i] {
			t.Fatalf("spec %d controller %q, want %q", i, res.Controller, wantCtrl[i])
		}
	}
}

func TestFourGOnlyPopulation(t *testing.T) {
	res, err := Run(tiny, RunSpec{
		Dataset: "femnist", Algo: "fedavg", FourGOnly: true, Scenario: trace.ScenarioDynamic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.TotalRounds == 0 {
		t.Fatal("4G-only run executed nothing")
	}
}

func TestEachFigureRuns(t *testing.T) {
	for _, name := range FigureNames() {
		name := name
		t.Run("fig"+name, func(t *testing.T) {
			tables, err := ByName(name, tiny)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("figure produced no tables")
			}
			for _, tab := range tables {
				if tab.Title == "" || len(tab.Header) == 0 {
					t.Fatalf("malformed table %+v", tab)
				}
				if len(tab.Rows) == 0 {
					t.Fatalf("table %q has no rows", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Fatalf("table %q row width %d, header %d", tab.Title, len(row), len(tab.Header))
					}
				}
				var buf bytes.Buffer
				tab.Fprint(&buf)
				if buf.Len() == 0 {
					t.Fatal("Fprint produced nothing")
				}
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	_, err := ByName("99", tiny)
	if err == nil {
		t.Fatal("accepted unknown figure")
	}
	if !errors.Is(err, errUnknownFigure) {
		t.Fatalf("error should wrap errUnknownFigure, got %v", err)
	}
}

func TestFig2ShapesHold(t *testing.T) {
	// Shape assertion from the paper: FedBuff executes more client-rounds
	// than any synchronous algorithm (over-selection), and REFL excludes
	// more clients than FedAvg.
	sc := tiny
	sc.Rounds = 10
	tables, err := Fig2(sc)
	if err != nil {
		t.Fatal(err)
	}
	bias, usage := tables[0], tables[1]
	row := func(t_ *Table, algo string) []string {
		for _, r := range t_.Rows {
			if r[0] == algo {
				return r
			}
		}
		return nil
	}
	if row(&bias, "fedavg") == nil || row(&bias, "refl") == nil || row(&usage, "fedbuff") == nil {
		t.Fatal("expected rows missing")
	}
}

func TestFig10QTableHasVisits(t *testing.T) {
	tables, err := Fig10(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Fig10 should produce 3 scenario tables, got %d", len(tables))
	}
	// At least one action must have been visited in each scenario.
	for _, tab := range tables {
		any := false
		for _, r := range tab.Rows {
			if r[3] != "0" {
				any = true
			}
		}
		if !any {
			t.Fatalf("Q-table %q has no visits", tab.Title)
		}
	}
}
