package experiment

import "time"

// timeNow is the package's single wall-clock source, injected so the
// overhead figures (Fig 8's per-update/per-select microsecond columns)
// can be driven by a fake clock in tests and reproduced deterministically.
// Everything else in the package is simulated time; only the RLHF-overhead
// measurement genuinely reads the wall clock.
//
//lint:allow no-wall-clock single injectable wall-clock source; tests substitute a fake via setTimeNow
var timeNow = time.Now

// setTimeNow swaps the wall-clock source and returns a restore function
// (test hook).
func setTimeNow(now func() time.Time) (restore func()) {
	prev := timeNow
	timeNow = now
	return func() { timeNow = prev }
}
