package experiment

import (
	"math"
	"testing"

	"floatfl/internal/trace"
)

func TestSweepStats(t *testing.T) {
	s := newSweepStats([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 || math.Abs(s.Std-2) > 1e-9 || s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Fatalf("stats = %+v", s)
	}
	if newSweepStats(nil).N != 0 {
		t.Fatal("empty stats should be zero")
	}
	if s.String() == "" {
		t.Fatal("String should render")
	}
}

func TestSweepRunsAndVaries(t *testing.T) {
	res, err := Sweep(tiny, RunSpec{
		Dataset: "femnist", Algo: "fedavg",
		Scenario: trace.ScenarioDynamic, DeadlinePercentile: 50,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds != 3 || res.AvgAccuracy.N != 3 {
		t.Fatalf("sweep shape wrong: %+v", res)
	}
	// Independent seeds must actually change the outcome.
	if res.Dropped.Min == res.Dropped.Max && res.AvgAccuracy.Min == res.AvgAccuracy.Max {
		t.Fatal("sweep seeds produced identical runs")
	}
	if res.WastedCompute.Mean <= 0 {
		t.Fatal("wasted compute not aggregated")
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(tiny, RunSpec{Dataset: "femnist"}, 0); err == nil {
		t.Fatal("accepted zero seeds")
	}
	if _, err := Sweep(tiny, RunSpec{Dataset: "nope"}, 1); err == nil {
		t.Fatal("accepted unknown dataset")
	}
	if _, _, _, err := SweepCompare(tiny, RunSpec{}, RunSpec{}, 0); err == nil {
		t.Fatal("SweepCompare accepted zero seeds")
	}
}

func TestSweepCompareFloatWins(t *testing.T) {
	sc := tiny
	sc.Rounds = 10
	base := RunSpec{Dataset: "femnist", Algo: "fedavg",
		Scenario: trace.ScenarioDynamic, DeadlinePercentile: 45}
	float := base
	float.Float = true
	resF, resB, winRate, err := SweepCompare(sc, float, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resF.Seeds != 3 || resB.Seeds != 3 {
		t.Fatal("sweep sizes wrong")
	}
	// FLOAT should win on dropouts in a majority of paired seeds even at
	// this tiny scale.
	if winRate < 0.5 {
		t.Fatalf("FLOAT paired win rate %.2f (dropped %s vs %s)",
			winRate, resF.Dropped, resB.Dropped)
	}
}
