package experiment

import (
	"fmt"

	"floatfl/internal/metrics"
)

// SweepStats summarizes one metric across seeds.
type SweepStats struct {
	Mean, Std, Min, Max float64
	N                   int
}

func newSweepStats(xs []float64) SweepStats {
	if len(xs) == 0 {
		return SweepStats{}
	}
	s := SweepStats{
		Mean: metrics.Mean(xs),
		Std:  metrics.Std(xs),
		Min:  xs[0],
		Max:  xs[0],
		N:    len(xs),
	}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// String renders "mean ± std".
func (s SweepStats) String() string { return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.Std) }

// SweepResult aggregates a run spec's headline metrics over several seeds.
type SweepResult struct {
	Spec  RunSpec
	Seeds int

	AvgAccuracy   SweepStats
	Dropped       SweepStats
	WastedCompute SweepStats // hours
	WastedComm    SweepStats // hours
}

// Sweep runs the spec across `seeds` independent seeds (data, population,
// and agent all reseeded) and returns mean ± std for the headline metrics.
// The figures in the paper are single runs; sweeps quantify how much of a
// measured gap is seed noise.
func Sweep(sc Scale, spec RunSpec, seeds int) (*SweepResult, error) {
	if seeds <= 0 {
		return nil, fmt.Errorf("experiment: Sweep needs a positive seed count, got %d", seeds)
	}
	var accs, drops, wastedC, wastedM []float64
	for i := 0; i < seeds; i++ {
		s := spec
		s.SeedOffset = spec.SeedOffset + int64(i)*7919
		res, err := Run(sc, s)
		if err != nil {
			return nil, err
		}
		accs = append(accs, res.FinalAccStats.Average)
		drops = append(drops, float64(res.Ledger.TotalDrops))
		wastedC = append(wastedC, res.Ledger.Wasted.ComputeHours)
		wastedM = append(wastedM, res.Ledger.Wasted.CommHours)
	}
	return &SweepResult{
		Spec:          spec,
		Seeds:         seeds,
		AvgAccuracy:   newSweepStats(accs),
		Dropped:       newSweepStats(drops),
		WastedCompute: newSweepStats(wastedC),
		WastedComm:    newSweepStats(wastedM),
	}, nil
}

// SweepCompare runs two specs over the same seeds and reports both plus
// the per-seed win rate of A over B on dropouts (lower is better) — a
// paired comparison that cancels most seed noise.
func SweepCompare(sc Scale, a, b RunSpec, seeds int) (resA, resB *SweepResult, aWinRate float64, err error) {
	if seeds <= 0 {
		return nil, nil, 0, fmt.Errorf("experiment: SweepCompare needs a positive seed count")
	}
	var accsA, dropsA, wcA, wmA []float64
	var accsB, dropsB, wcB, wmB []float64
	wins := 0
	for i := 0; i < seeds; i++ {
		off := int64(i) * 7919
		sa, sb := a, b
		sa.SeedOffset += off
		sb.SeedOffset += off
		ra, err := Run(sc, sa)
		if err != nil {
			return nil, nil, 0, err
		}
		rb, err := Run(sc, sb)
		if err != nil {
			return nil, nil, 0, err
		}
		accsA = append(accsA, ra.FinalAccStats.Average)
		dropsA = append(dropsA, float64(ra.Ledger.TotalDrops))
		wcA = append(wcA, ra.Ledger.Wasted.ComputeHours)
		wmA = append(wmA, ra.Ledger.Wasted.CommHours)
		accsB = append(accsB, rb.FinalAccStats.Average)
		dropsB = append(dropsB, float64(rb.Ledger.TotalDrops))
		wcB = append(wcB, rb.Ledger.Wasted.ComputeHours)
		wmB = append(wmB, rb.Ledger.Wasted.CommHours)
		if ra.Ledger.TotalDrops < rb.Ledger.TotalDrops {
			wins++
		}
	}
	resA = &SweepResult{Spec: a, Seeds: seeds,
		AvgAccuracy: newSweepStats(accsA), Dropped: newSweepStats(dropsA),
		WastedCompute: newSweepStats(wcA), WastedComm: newSweepStats(wmA)}
	resB = &SweepResult{Spec: b, Seeds: seeds,
		AvgAccuracy: newSweepStats(accsB), Dropped: newSweepStats(dropsB),
		WastedCompute: newSweepStats(wcB), WastedComm: newSweepStats(wmB)}
	return resA, resB, float64(wins) / float64(seeds), nil
}
