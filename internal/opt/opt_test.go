package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"floatfl/internal/tensor"
)

func TestActionsAndAll(t *testing.T) {
	if len(Actions()) != 8 {
		t.Fatalf("FLOAT's action space must have 8 actions, got %d", len(Actions()))
	}
	if len(All()) != NumTechniques {
		t.Fatalf("All() returned %d, want %d", len(All()), NumTechniques)
	}
	for _, a := range Actions() {
		if a == TechNone {
			t.Fatal("Actions must not include TechNone")
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, tech := range All() {
		got, err := Parse(tech.String())
		if err != nil || got != tech {
			t.Fatalf("Parse(%q) = %v, %v", tech.String(), got, err)
		}
	}
	if _, err := Parse("turbo"); err == nil {
		t.Fatal("Parse accepted unknown technique")
	}
	if Technique(99).String() == "" {
		t.Fatal("unknown technique should render something")
	}
}

func TestEffectsShapes(t *testing.T) {
	// Paper-mandated cost shapes.
	q8, q16 := TechQuant8.Effects(), TechQuant16.Effects()
	if q8.CommFactor >= q16.CommFactor {
		t.Fatal("8-bit quantization must compress communication more than 16-bit")
	}
	if q8.ComputeFactor < 1 || q16.ComputeFactor < 1 {
		t.Fatal("quantization must not reduce compute (it adds overhead)")
	}
	p25, p75 := TechPrune25.Effects(), TechPrune75.Effects()
	if p75.CommFactor >= p25.CommFactor || p75.ComputeFactor >= p25.ComputeFactor {
		t.Fatal("more pruning must save more communication and compute")
	}
	t25, t75 := TechPartial25.Effects(), TechPartial75.Effects()
	if t75.ComputeFactor >= t25.ComputeFactor {
		t.Fatal("more partial training must save more compute")
	}
	// Partial training relieves compute more than communication; pruning
	// relieves communication more than partial training does (Section 5,
	// Fig 10c discussion).
	if t75.ComputeFactor > p75.ComputeFactor {
		t.Fatal("partial75 should save at least as much compute as prune75")
	}
	if t75.CommFactor < p75.CommFactor {
		t.Fatal("prune75 should save more communication than partial75")
	}
	if q8.CommFactor > p75.CommFactor+0.1 {
		t.Fatal("8-bit quantization should be among the best communication savers")
	}
	none := TechNone.Effects()
	if none.ComputeFactor != 1 || none.CommFactor != 1 || none.MemoryFactor != 1 {
		t.Fatal("TechNone must be cost-neutral")
	}
}

func TestEffectsAllPositive(t *testing.T) {
	for _, tech := range All() {
		e := tech.Effects()
		if e.ComputeFactor <= 0 || e.CommFactor <= 0 || e.MemoryFactor <= 0 {
			t.Fatalf("%v has non-positive cost factor: %+v", tech, e)
		}
	}
}

func TestAggressivenessOrdering(t *testing.T) {
	if TechNone.Aggressiveness() != 0 {
		t.Fatal("TechNone aggressiveness must be 0")
	}
	if !(TechPrune25.Aggressiveness() < TechPrune50.Aggressiveness() &&
		TechPrune50.Aggressiveness() < TechPrune75.Aggressiveness()) {
		t.Fatal("pruning aggressiveness must increase with fraction")
	}
	if TechQuant8.Aggressiveness() <= TechQuant16.Aggressiveness() {
		t.Fatal("8-bit quantization is more aggressive than 16-bit")
	}
}

func TestQuantizeUnbiasedAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := tensor.NewVector(2000)
	tensor.RandnInto(orig, 1, rng)
	v := orig.Clone()
	Quantize(v, 8, rng)
	// Bounded error: |err| <= scale.
	scale := orig.MaxAbs() / 127
	var sumErr float64
	for i := range v {
		err := v[i] - orig[i]
		if math.Abs(err) > scale+1e-12 {
			t.Fatalf("quantization error %v exceeds one grid step %v", err, scale)
		}
		sumErr += err
	}
	// Stochastic rounding is unbiased: mean error near zero.
	if math.Abs(sumErr/float64(len(v))) > scale/4 {
		t.Fatalf("quantization looks biased: mean error %v", sumErr/float64(len(v)))
	}
}

func TestQuantizeEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := tensor.Vector{}
	Quantize(v, 8, rng) // must not panic
	z := tensor.NewVector(5)
	Quantize(z, 8, rng)
	for _, x := range z {
		if x != 0 {
			t.Fatal("quantizing zeros must stay zero")
		}
	}
	w := tensor.Vector{1, -1, 0.5}
	orig := w.Clone()
	Quantize(w, 32, rng)
	for i := range w {
		if w[i] != orig[i] {
			t.Fatal("32-bit quantization must be identity")
		}
	}
	// Fewer bits -> coarser grid -> larger typical error.
	coarse := orig.Clone()
	Quantize(coarse, 2, rng)
}

func TestQuantizeHugeBitWidthsAreIdentity(t *testing.T) {
	// Regression: bit widths above 62 must take the >= 32 no-op path. If
	// they ever reached the level computation, int64(1)<<(bits-1) would
	// overflow (63 -> MinInt64, >= 64 -> undefined for the signed width)
	// and corrupt the update with a negative or NaN grid scale.
	rng := rand.New(rand.NewSource(5))
	orig := tensor.Vector{1.5, -2.25, 0.125, 1e-9, -3e4}
	for _, bits := range []int{32, 62, 63, 64, 100, math.MaxInt32} {
		v := orig.Clone()
		Quantize(v, bits, rng)
		for i := range v {
			if v[i] != orig[i] {
				t.Fatalf("Quantize with bits=%d modified the vector: %v -> %v",
					bits, orig[i], v[i])
			}
		}
	}
}

func TestQuant8CoarserThanQuant16(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := tensor.NewVector(5000)
	tensor.RandnInto(orig, 1, rng)
	errOf := func(bits int) float64 {
		v := orig.Clone()
		Quantize(v, bits, rand.New(rand.NewSource(4)))
		var s float64
		for i := range v {
			d := v[i] - orig[i]
			s += d * d
		}
		return s
	}
	if errOf(8) <= errOf(16) {
		t.Fatal("8-bit quantization must distort more than 16-bit")
	}
}

func TestPruneSmallestExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		v := tensor.NewVector(1000)
		tensor.RandnInto(v, 1, rng)
		PruneSmallest(v, frac)
		zeros := 0
		for _, x := range v {
			if x == 0 {
				zeros++
			}
		}
		want := int(math.Round(frac * 1000))
		if zeros != want {
			t.Fatalf("frac=%v pruned %d entries, want %d", frac, zeros, want)
		}
	}
}

func TestPruneKeepsLargest(t *testing.T) {
	v := tensor.Vector{0.1, -5, 0.2, 4, -0.05, 3}
	PruneSmallest(v, 0.5)
	if v[1] != -5 || v[3] != 4 || v[5] != 3 {
		t.Fatalf("pruning removed large-magnitude entries: %v", v)
	}
	if v[0] != 0 || v[2] != 0 || v[4] != 0 {
		t.Fatalf("pruning kept small-magnitude entries: %v", v)
	}
}

func TestPruneEdgeCases(t *testing.T) {
	v := tensor.Vector{1, 2, 3}
	PruneSmallest(v, 0)
	if v[0] != 1 {
		t.Fatal("frac=0 must be a no-op")
	}
	PruneSmallest(v, 2)
	for _, x := range v {
		if x != 0 {
			t.Fatal("frac>1 must zero everything")
		}
	}
	var empty tensor.Vector
	PruneSmallest(empty, 0.5) // must not panic
	// Ties at threshold: exactly k zeroed.
	tied := tensor.Vector{1, 1, 1, 1}
	PruneSmallest(tied, 0.5)
	zeros := 0
	for _, x := range tied {
		if x == 0 {
			zeros++
		}
	}
	if zeros != 2 {
		t.Fatalf("tie handling pruned %d, want 2", zeros)
	}
}

func TestFrozenLayerMask(t *testing.T) {
	if FrozenLayerMask(4, 0) != nil {
		t.Fatal("frac=0 should return nil")
	}
	if FrozenLayerMask(1, 0.9) != nil {
		t.Fatal("single-layer model cannot freeze anything")
	}
	m := FrozenLayerMask(4, 0.5)
	if len(m) != 4 || !m[0] || !m[1] || m[2] || m[3] {
		t.Fatalf("frac=0.5 over 4 layers = %v, want [T T F F]", m)
	}
	// Output layer always trainable even at frac=1.
	m = FrozenLayerMask(3, 1.0)
	if m[len(m)-1] {
		t.Fatal("output layer must never be frozen")
	}
	frozenCount := 0
	for _, f := range m {
		if f {
			frozenCount++
		}
	}
	if frozenCount != 2 {
		t.Fatalf("frac=1 over 3 layers should freeze 2, froze %d", frozenCount)
	}
}

func TestApplyToUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	v := tensor.NewVector(400)
	tensor.RandnInto(v, 1, rng)
	orig := v.Clone()
	ApplyToUpdate(TechPrune50, v, rng)
	zeros := 0
	for _, x := range v {
		if x == 0 {
			zeros++
		}
	}
	if zeros < 190 {
		t.Fatalf("ApplyToUpdate(prune50) zeroed only %d of 400", zeros)
	}
	v2 := orig.Clone()
	ApplyToUpdate(TechNone, v2, rng)
	for i := range v2 {
		if v2[i] != orig[i] {
			t.Fatal("TechNone must not modify the update")
		}
	}
	v3 := orig.Clone()
	ApplyToUpdate(TechQuant8, v3, rng)
	changed := false
	for i := range v3 {
		if v3[i] != orig[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("quantization did not alter the update")
	}
	// Partial training acts at training time, so update-side is a no-op.
	v4 := orig.Clone()
	ApplyToUpdate(TechPartial75, v4, rng)
	for i := range v4 {
		if v4[i] != orig[i] {
			t.Fatal("partial training must not modify the update")
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := tensor.NewVector(512)
	tensor.RandnInto(v, 1, rng)
	PruneSmallest(v, 0.5)
	blob, err := CompressUpdate(v, 16)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressUpdate(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(v) {
		t.Fatalf("round trip length %d, want %d", len(back), len(v))
	}
	scale := v.MaxAbs() / 32767
	for i := range v {
		if math.Abs(back[i]-v[i]) > scale/2+1e-12 {
			t.Fatalf("round trip error at %d: %v vs %v", i, back[i], v[i])
		}
		if v[i] == 0 && back[i] != 0 {
			t.Fatal("zero entries must round trip exactly")
		}
	}
}

func TestCodecZeroVector(t *testing.T) {
	v := tensor.NewVector(100)
	blob, err := CompressUpdate(v, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > 20 {
		t.Fatalf("all-zero vector should compress to a few bytes, got %d", len(blob))
	}
	back, err := DecompressUpdate(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range back {
		if x != 0 {
			t.Fatal("zero vector did not round trip")
		}
	}
}

func TestCodecValidation(t *testing.T) {
	if _, err := CompressUpdate(tensor.Vector{1}, 1); err == nil {
		t.Fatal("CompressUpdate accepted bits=1")
	}
	if _, err := CompressUpdate(tensor.Vector{1}, 64); err == nil {
		t.Fatal("CompressUpdate accepted bits=64")
	}
	if _, err := DecompressUpdate([]byte{1, 2}); err == nil {
		t.Fatal("DecompressUpdate accepted short buffer")
	}
	blob, _ := CompressUpdate(tensor.Vector{1, 0, 2}, 8)
	if _, err := DecompressUpdate(blob[:len(blob)-1]); err == nil {
		t.Fatal("DecompressUpdate accepted truncated body")
	}
}

func TestCompressionMatchesCommFactorShape(t *testing.T) {
	// The codec is the ground truth for CommFactor shapes: pruning 75%
	// must yield a smaller wire size than pruning 25%, and 8-bit smaller
	// than 16-bit.
	rng := rand.New(rand.NewSource(8))
	base := tensor.NewVector(4096)
	tensor.RandnInto(base, 1, rng)

	size := func(frac float64, bits int) int {
		v := base.Clone()
		PruneSmallest(v, frac)
		n, err := CompressedSize(v, bits)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if size(0.75, 16) >= size(0.25, 16) {
		t.Fatal("prune75 wire size should be below prune25")
	}
	if size(0, 8) >= size(0, 16) {
		t.Fatal("8-bit wire size should be below 16-bit")
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(x int64) bool {
		if x == math.MinInt64 {
			return true // zigzag of MinInt64 overflows the +1 offset domain
		}
		return unzigzag(zigzag(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: codec round trip preserves zero positions and approximates
// values within one grid step for random sparse vectors.
func TestCodecPropertyQuick(t *testing.T) {
	f := func(seed int64, nRaw, fracRaw uint8) bool {
		n := 1 + int(nRaw)%256
		rng := rand.New(rand.NewSource(seed))
		v := tensor.NewVector(n)
		tensor.RandnInto(v, 1, rng)
		PruneSmallest(v, float64(fracRaw)/255)
		blob, err := CompressUpdate(v, 16)
		if err != nil {
			return false
		}
		back, err := DecompressUpdate(blob)
		if err != nil || len(back) != n {
			return false
		}
		scale := v.MaxAbs() / 32767
		for i := range v {
			if math.Abs(back[i]-v[i]) > scale/2+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressRejectsHugeDeclaredLength(t *testing.T) {
	blob, err := CompressUpdate(tensor.Vector{1, 2, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Forge an absurd element count in the header.
	blob[0], blob[1], blob[2], blob[3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := DecompressUpdate(blob); err == nil {
		t.Fatal("decoder accepted a multi-gigabyte declared length")
	}
}
