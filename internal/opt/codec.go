package opt

import (
	"encoding/binary"
	"fmt"
	"math"

	"floatfl/internal/tensor"
)

// The wire codec serializes a quantized model update losslessly: values are
// mapped onto the quantization grid, zigzag-varint encoded, and runs of
// zeros (abundant after pruning) are run-length encoded. It exists both as
// the transport format of the simulator and as a ground truth check that a
// technique's CommFactor approximates what the bytes on the wire actually
// do (see opt tests and the Fig. 4/5 benches).

// CompressUpdate encodes v as a b-bit quantized, zero-run-compressed
// byte stream. v is not modified; quantize first with Quantize if lossy
// quantization is intended — CompressUpdate itself snaps to the grid
// deterministically (round to nearest) to remain self-contained.
func CompressUpdate(v tensor.Vector, bits int) ([]byte, error) {
	if bits < 2 || bits > 32 {
		return nil, fmt.Errorf("opt: CompressUpdate bits %d out of [2,32]", bits)
	}
	maxAbs := v.MaxAbs()
	levels := float64(int64(1)<<(bits-1)) - 1
	scale := 0.0
	if maxAbs > 0 {
		scale = maxAbs / levels
	}

	buf := make([]byte, 0, len(v)/2+16)
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(v)))
	binary.LittleEndian.PutUint64(hdr[4:12], math.Float64bits(scale))
	hdr[12] = byte(bits)
	buf = append(buf, hdr[:]...)

	var tmp [binary.MaxVarintLen64]byte
	i := 0
	for i < len(v) {
		var q int64
		if scale > 0 {
			q = int64(math.Round(v[i] / scale))
		}
		if q == 0 {
			run := 1
			for i+run < len(v) {
				var qn int64
				if scale > 0 {
					qn = int64(math.Round(v[i+run] / scale))
				}
				if qn != 0 {
					break
				}
				run++
			}
			n := binary.PutUvarint(tmp[:], 0) // zero marker
			buf = append(buf, tmp[:n]...)
			n = binary.PutUvarint(tmp[:], uint64(run))
			buf = append(buf, tmp[:n]...)
			i += run
			continue
		}
		n := binary.PutUvarint(tmp[:], zigzag(q))
		buf = append(buf, tmp[:n]...)
		i++
	}
	return buf, nil
}

// MaxDecodedLen bounds the element count DecompressUpdate will allocate
// for — a hostile header must not be able to demand gigabytes. 2^24
// scalars (128 MiB as float64) is far above any model in the registry.
const MaxDecodedLen = 1 << 24

// DecompressUpdate reverses CompressUpdate. The result contains the
// grid-snapped values (lossless with respect to the encoded stream).
func DecompressUpdate(data []byte) (tensor.Vector, error) {
	if len(data) < 13 {
		return nil, fmt.Errorf("opt: DecompressUpdate short header (%d bytes)", len(data))
	}
	count := int(binary.LittleEndian.Uint32(data[0:4]))
	if count > MaxDecodedLen {
		return nil, fmt.Errorf("opt: DecompressUpdate declared length %d exceeds cap %d",
			count, MaxDecodedLen)
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(data[4:12]))
	body := data[13:]

	out := tensor.NewVector(count)
	pos, i := 0, 0
	for i < count {
		u, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("opt: DecompressUpdate corrupt varint at offset %d", pos)
		}
		pos += n
		if u == 0 { // zero run
			run, n2 := binary.Uvarint(body[pos:])
			if n2 <= 0 || run == 0 {
				return nil, fmt.Errorf("opt: DecompressUpdate corrupt zero run at offset %d", pos)
			}
			pos += n2
			if i+int(run) > count {
				return nil, fmt.Errorf("opt: DecompressUpdate zero run overflows payload")
			}
			i += int(run) // entries already zero
			continue
		}
		out[i] = float64(unzigzag(u)) * scale
		i++
	}
	return out, nil
}

// zigzag maps signed integers onto unsigned so small magnitudes stay small.
// Values are offset by 1 so that 0 can never collide with the zero-run
// marker (a true zero is always emitted as a run).
func zigzag(x int64) uint64 {
	u := uint64((x << 1) ^ (x >> 63))
	return u + 1
}

func unzigzag(u uint64) int64 {
	u--
	return int64(u>>1) ^ -int64(u&1)
}

// CompressedSize returns the wire size in bytes of v under the codec — the
// simulator's exact communication volume for quantized/pruned uploads.
func CompressedSize(v tensor.Vector, bits int) (int, error) {
	b, err := CompressUpdate(v, bits)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}
