package opt

import (
	"math"
	"math/rand"
	"testing"

	"floatfl/internal/tensor"
)

// FuzzDecompressUpdate hardens the wire decoder against malformed input:
// whatever bytes arrive, it must return an error or a well-formed vector —
// never panic, never hang, never emit non-finite values.
func FuzzDecompressUpdate(f *testing.F) {
	// Seed with valid streams of several shapes.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 128} {
		v := tensor.NewVector(n)
		tensor.RandnInto(v, 1, rng)
		if n > 2 {
			PruneSmallest(v, 0.5)
		}
		blob, err := CompressUpdate(v, 16)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecompressUpdate(data)
		if err != nil {
			return
		}
		for _, x := range out {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				// Non-finite values can only come from a corrupt scale
				// field; the decoder passes them through as data, which is
				// acceptable — the aggregation layer rejects them — but
				// they must not crash anything here.
				return
			}
		}
	})
}

// FuzzCompressRoundTrip: any finite vector must survive a compress/
// decompress round trip within one quantization step.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(8))
	f.Add(int64(42), uint16(300))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16) {
		n := int(nRaw) % 1024
		rng := rand.New(rand.NewSource(seed))
		v := tensor.NewVector(n)
		tensor.RandnInto(v, 1, rng)
		blob, err := CompressUpdate(v, 16)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecompressUpdate(blob)
		if err != nil {
			t.Fatalf("valid stream failed to decode: %v", err)
		}
		if len(back) != n {
			t.Fatalf("round trip length %d, want %d", len(back), n)
		}
		step := v.MaxAbs() / 32767
		for i := range v {
			if math.Abs(back[i]-v[i]) > step/2+1e-12 {
				t.Fatalf("round trip error at %d: %v vs %v", i, back[i], v[i])
			}
		}
	})
}
