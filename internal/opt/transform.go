package opt

import (
	"math"
	"math/rand"
	"sort"

	"floatfl/internal/tensor"
)

// Quantize rounds every entry of v onto a symmetric b-bit integer grid
// using stochastic rounding (unbiased: E[quantized] = original). The grid
// scale adapts to the update's max magnitude, as FedPAQ-style update
// quantization does. b must be in [2, 32]; b >= 32 is a no-op.
//
// The no-op guard must stay ahead of the level computation: for bits > 62,
// int64(1)<<(bits-1) would overflow (bits == 63 yields math.MinInt64, and
// larger shifts are undefined for the signed width), turning the grid scale
// negative or NaN and corrupting the update instead of passing it through.
func Quantize(v tensor.Vector, bits int, rng *rand.Rand) {
	if bits >= 32 || len(v) == 0 {
		// Covers the whole bits >= 32 range, so the shift below is always
		// taken with bits in [2, 31] and cannot overflow.
		return
	}
	if bits < 2 {
		bits = 2
	}
	maxAbs := v.MaxAbs()
	if maxAbs == 0 {
		return
	}
	levels := float64(int64(1)<<(bits-1)) - 1 // e.g. 127 for 8-bit
	scale := maxAbs / levels
	for i, x := range v {
		q := x / scale
		floor := math.Floor(q)
		frac := q - floor
		if rng.Float64() < frac {
			floor++
		}
		v[i] = floor * scale
	}
}

// PruneSmallest zeroes the frac fraction of entries of v with smallest
// absolute value (magnitude pruning of the update). frac outside (0,1) is
// clamped; frac <= 0 is a no-op.
func PruneSmallest(v tensor.Vector, frac float64) {
	if frac <= 0 || len(v) == 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	k := int(math.Round(frac * float64(len(v))))
	if k <= 0 {
		return
	}
	if k >= len(v) {
		v.Zero()
		return
	}
	mags := make([]float64, len(v))
	for i, x := range v {
		mags[i] = math.Abs(x)
	}
	sort.Float64s(mags)
	threshold := mags[k-1]
	zeroed := 0
	// First pass: zero strictly-below-threshold entries.
	for i, x := range v {
		if math.Abs(x) < threshold {
			v[i] = 0
			zeroed++
		}
	}
	// Second pass: zero at-threshold entries until exactly k are zeroed
	// (ties at the threshold would otherwise over- or under-prune).
	for i, x := range v {
		if zeroed >= k {
			break
		}
		if x != 0 && math.Abs(x) == threshold {
			v[i] = 0
			zeroed++
		}
	}
}

// FrozenLayerMask returns the per-layer freeze mask for partial training:
// the first round(frac·n) layers are frozen, but the output layer always
// stays trainable (freezing the classifier head would make local training
// useless). frac <= 0 returns nil, meaning "train everything".
func FrozenLayerMask(numLayers int, frac float64) []bool {
	if frac <= 0 || numLayers <= 1 {
		return nil
	}
	if frac > 1 {
		frac = 1
	}
	k := int(math.Round(frac * float64(numLayers)))
	if k >= numLayers {
		k = numLayers - 1
	}
	if k <= 0 {
		return nil
	}
	mask := make([]bool, numLayers)
	for i := 0; i < k; i++ {
		mask[i] = true
	}
	return mask
}

// ApplyToUpdate applies the technique's update-side transformation (prune
// and/or quantize) to a model delta in place. Partial training acts during
// training (via FrozenLayerMask), not here.
func ApplyToUpdate(t Technique, delta tensor.Vector, rng *rand.Rand) {
	e := t.Effects()
	if e.PruneFrac > 0 {
		PruneSmallest(delta, e.PruneFrac)
	}
	if e.QuantBits > 0 {
		Quantize(delta, e.QuantBits, rng)
	}
}
