// Package opt implements the client-side acceleration techniques FLOAT
// chooses among: model-update quantization (8/16 bit), magnitude pruning
// (25/50/75%), and partial training (25/50/75% of layers frozen), plus a
// lossless varint/RLE codec used to size quantized sparse updates on the
// wire. Each technique has two faces kept deliberately in sync:
//
//   - a *semantic* effect on the model update (quantization noise, zeroed
//     weights, frozen layers) that genuinely alters training accuracy, and
//   - a *cost* effect (multipliers on compute time, bytes on the wire, and
//     training memory) consumed by the device simulator.
//
// The relative cost shapes follow the paper's observations: quantization
// mostly relieves communication; pruning relieves both communication and
// computation; partial training primarily relieves computation.
package opt

import "fmt"

// Technique enumerates the optimization actions. TechNone is the
// "no acceleration" baseline; the remaining eight are FLOAT's action space
// (the paper's RLHF agent uses 8 actions).
type Technique int

const (
	// TechNone applies no acceleration.
	TechNone Technique = iota
	// TechQuant16 quantizes the model update to 16-bit integers.
	TechQuant16
	// TechQuant8 quantizes the model update to 8-bit integers.
	TechQuant8
	// TechPrune25 zeroes the 25% smallest-magnitude update entries.
	TechPrune25
	// TechPrune50 zeroes the 50% smallest-magnitude update entries.
	TechPrune50
	// TechPrune75 zeroes the 75% smallest-magnitude update entries.
	TechPrune75
	// TechPartial25 freezes ~25% of layers during local training.
	TechPartial25
	// TechPartial50 freezes ~50% of layers during local training.
	TechPartial50
	// TechPartial75 freezes ~75% of layers during local training.
	TechPartial75
	// TechCompress applies the lossless varint/RLE codec to a 16-bit
	// quantized update: smaller uploads than raw float32 at a small
	// compression compute cost, with no additional accuracy loss beyond
	// 16-bit quantization. Not part of the paper's 8-action space; it is
	// the reference "new acceleration technique" for extending the agent
	// (the linear search-space growth claim of RQ5).
	TechCompress

	// NumTechniques counts all techniques including TechNone.
	NumTechniques = int(TechCompress) + 1
)

// Actions returns FLOAT's 8-action space (everything except TechNone).
func Actions() []Technique {
	return []Technique{
		TechQuant16, TechQuant8,
		TechPrune25, TechPrune50, TechPrune75,
		TechPartial25, TechPartial50, TechPartial75,
	}
}

// All returns every technique including TechNone and the extension
// techniques outside the paper's 8-action space.
func All() []Technique {
	out := make([]Technique, 0, NumTechniques)
	for t := TechNone; int(t) < NumTechniques; t++ {
		out = append(out, t)
	}
	return out
}

func (t Technique) String() string {
	switch t {
	case TechNone:
		return "none"
	case TechQuant16:
		return "quant16"
	case TechQuant8:
		return "quant8"
	case TechPrune25:
		return "prune25"
	case TechPrune50:
		return "prune50"
	case TechPrune75:
		return "prune75"
	case TechPartial25:
		return "partial25"
	case TechPartial50:
		return "partial50"
	case TechPartial75:
		return "partial75"
	case TechCompress:
		return "compress"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Parse maps a technique name back to its value.
func Parse(s string) (Technique, error) {
	for _, t := range All() {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("opt: unknown technique %q", s)
}

// Effects captures both the semantic parameters and the cost multipliers of
// a technique. Factors multiply the unoptimized cost (1.0 = unchanged).
type Effects struct {
	// QuantBits is 8 or 16 when quantizing, else 0.
	QuantBits int
	// PruneFrac is the fraction of update entries zeroed (0 = none).
	PruneFrac float64
	// PartialFrac is the fraction of layers frozen during training.
	PartialFrac float64

	// ComputeFactor scales local training time.
	ComputeFactor float64
	// CommFactor scales the bytes of the uploaded model update.
	CommFactor float64
	// DownloadFactor scales the bytes of the downloaded global model
	// (quantized or pruned global models ship smaller; partial training
	// still needs the full model for its forward pass).
	DownloadFactor float64
	// MemoryFactor scales peak training memory.
	MemoryFactor float64
}

// Effects returns the technique's semantic/cost description.
func (t Technique) Effects() Effects {
	switch t {
	case TechQuant16:
		// Halves bytes both ways; quantize/dequantize adds a little compute.
		return Effects{QuantBits: 16, ComputeFactor: 1.03, CommFactor: 0.5, DownloadFactor: 0.5, MemoryFactor: 0.95}
	case TechQuant8:
		return Effects{QuantBits: 8, ComputeFactor: 1.05, CommFactor: 0.25, DownloadFactor: 0.25, MemoryFactor: 0.9}
	case TechPrune25:
		return pruneEffects(0.25)
	case TechPrune50:
		return pruneEffects(0.50)
	case TechPrune75:
		return pruneEffects(0.75)
	case TechPartial25:
		return partialEffects(0.25)
	case TechPartial50:
		return partialEffects(0.50)
	case TechPartial75:
		return partialEffects(0.75)
	case TechCompress:
		// Lossless beyond the 16-bit grid: ~0.45x upload in practice for
		// sparse-ish updates, with compression CPU overhead and no extra
		// accuracy degradation.
		return Effects{QuantBits: 16, ComputeFactor: 1.08, CommFactor: 0.45, DownloadFactor: 0.5, MemoryFactor: 1}
	default:
		return Effects{ComputeFactor: 1, CommFactor: 1, DownloadFactor: 1, MemoryFactor: 1}
	}
}

// pruneEffects: pruning relieves communication proportionally (sparse
// upload with ~5% index overhead) and computation sub-proportionally
// (masked weights skip multiply-accumulates but the dense schedule keeps
// some overhead), and trims training memory.
func pruneEffects(frac float64) Effects {
	return Effects{
		PruneFrac:      frac,
		ComputeFactor:  1 - 0.7*frac,
		CommFactor:     (1 - frac) + 0.03*frac,
		DownloadFactor: (1 - frac) + 0.03*frac,
		MemoryFactor:   1 - 0.5*frac,
	}
}

// partialEffects: freezing layers removes their backward pass and update —
// a strong compute saving — but the forward pass and download are intact,
// so communication barely improves (only frozen layers are omitted from
// the upload, offset by bookkeeping) and memory improves modestly.
func partialEffects(frac float64) Effects {
	return Effects{
		PartialFrac:    frac,
		ComputeFactor:  1 - 0.9*frac,
		CommFactor:     1 - 0.35*frac,
		DownloadFactor: 1,
		MemoryFactor:   1 - 0.4*frac,
	}
}

// Aggressiveness returns a scalar in [0,1] ranking how much a technique
// distorts training (used by tests and by the heuristic controller). None
// is 0; 8-bit quantization and 75% variants are the most aggressive.
func (t Technique) Aggressiveness() float64 {
	switch t {
	case TechNone:
		return 0
	case TechQuant16:
		return 0.2
	case TechQuant8:
		return 0.6
	case TechPrune25:
		return 0.25
	case TechPrune50:
		return 0.5
	case TechPrune75:
		return 0.8
	case TechPartial25:
		return 0.25
	case TechPartial50:
		return 0.5
	case TechPartial75:
		return 0.8
	case TechCompress:
		return 0.2 // only 16-bit quantization noise
	default:
		return 0
	}
}
