package opt_test

import (
	"fmt"
	"math/rand"

	"floatfl/internal/opt"
	"floatfl/internal/tensor"
)

// Applying a technique to a model update: prune the smallest half of the
// entries, then size the result on the wire with the lossless codec.
func ExampleApplyToUpdate() {
	rng := rand.New(rand.NewSource(1))
	update := tensor.Vector{0.9, -0.01, 0.4, 0.002, -0.7, 0.03, 0.5, -0.004}

	opt.ApplyToUpdate(opt.TechPrune50, update, rng)

	zeros := 0
	for _, x := range update {
		if x == 0 {
			zeros++
		}
	}
	fmt.Printf("zeroed %d of %d entries\n", zeros, len(update))
	fmt.Printf("largest kept: %.1f\n", update.MaxAbs())
	// Output:
	// zeroed 4 of 8 entries
	// largest kept: 0.9
}

// Every technique declares how it shifts the cost balance between
// computation, communication, and memory.
func ExampleTechnique_Effects() {
	for _, tech := range []opt.Technique{opt.TechQuant8, opt.TechPrune75, opt.TechPartial75} {
		e := tech.Effects()
		fmt.Printf("%-10s compute ×%.2f  upload ×%.2f\n", tech, e.ComputeFactor, e.CommFactor)
	}
	// Output:
	// quant8     compute ×1.05  upload ×0.25
	// prune75    compute ×0.48  upload ×0.27
	// partial75  compute ×0.32  upload ×0.74
}

// The wire codec losslessly round-trips a quantized sparse update and is
// the ground truth for how many bytes a technique saves.
func ExampleCompressUpdate() {
	v := tensor.NewVector(1024)
	v[10], v[500], v[900] = 1.5, -0.75, 0.25

	blob, err := opt.CompressUpdate(v, 16)
	if err != nil {
		panic(err)
	}
	back, err := opt.DecompressUpdate(blob)
	if err != nil {
		panic(err)
	}
	fmt.Printf("raw float32 size: %d bytes\n", len(v)*4)
	fmt.Printf("wire size: %d bytes\n", len(blob))
	fmt.Printf("round trip intact: %v\n", back[10] != 0 && back[0] == 0)
	// Output:
	// raw float32 size: 4096 bytes
	// wire size: 31 bytes
	// round trip intact: true
}
