package fl

import (
	"floatfl/internal/device"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
)

// engineObs bundles every telemetry handle the engines touch, registered
// once per run before the first round. All handles are nil-safe, so an
// uninstrumented run (Config.Metrics and Config.Tracer both nil) pays one
// branch per event and allocates nothing on the hot path.
//
// Determinism rules for everything recorded here:
//   - counters and histograms are commutative atomics, safe to update
//     from fan-out workers (trainCalls is the only one that is);
//   - gauges and spans are written only from the engines'
//     single-threaded dispatch/collect passes, in dispatch order;
//   - no recorded quantity may depend on Parallelism or GOMAXPROCS —
//     fanoutJobs records jobs per fan-out (work offered), never busy
//     workers, for exactly that reason.
type engineObs struct {
	tracer *obs.Tracer

	rounds     *obs.Counter
	selected   *obs.Counter
	completed  *obs.Counter
	dropped    *obs.Counter
	discarded  *obs.Counter
	trainCalls *obs.Counter
	evals      *obs.Counter

	globalAcc *obs.Gauge

	roundWall  *obs.Histogram
	fanoutJobs *obs.Histogram

	// decide outcomes per technique, indexed by int(opt.Technique).
	techCounts [opt.NumTechniques]*obs.Counter

	dev *device.Observer
}

func newEngineObs(reg *obs.Registry, tracer *obs.Tracer) *engineObs {
	eo := &engineObs{
		tracer:     tracer,
		rounds:     reg.Counter("fl_rounds_total"),
		selected:   reg.Counter("fl_clients_selected_total"),
		completed:  reg.Counter("fl_clients_completed_total"),
		dropped:    reg.Counter("fl_clients_dropped_total"),
		discarded:  reg.Counter("fl_updates_discarded_total"),
		trainCalls: reg.Counter("fl_train_calls_total"),
		evals:      reg.Counter("fl_evals_total"),
		globalAcc:  reg.Gauge("fl_global_acc"),
		roundWall:  reg.Histogram("fl_round_wall_seconds", []float64{5, 15, 30, 60, 120, 300, 600, 1200}),
		fanoutJobs: reg.Histogram("fl_fanout_jobs", []float64{1, 2, 4, 8, 16, 32, 64, 128}),
		dev:        device.NewObserver(reg),
	}
	for _, tech := range opt.All() {
		eo.techCounts[int(tech)] = reg.Counter(`fl_decide_total{tech="` + tech.String() + `"}`)
	}
	return eo
}

// decide records one controller decision.
func (eo *engineObs) decide(tech opt.Technique) {
	if i := int(tech); i >= 0 && i < len(eo.techCounts) {
		eo.techCounts[i].Inc()
	}
}

// span emits one trace span; a plain forwarding helper so engine code
// reads as eo.span(...) next to the counter calls.
func (eo *engineObs) span(s obs.Span) { eo.tracer.Emit(s) }

// clientSpans emits the train+comm (or drop) spans for one executed
// client, anchored at the virtual time the client started. Must be called
// from a single-threaded collect pass.
func (eo *engineObs) clientSpans(start float64, round, clientID int, tech opt.Technique, out device.Outcome) {
	if eo.tracer == nil {
		return
	}
	if out.Completed {
		eo.span(obs.Span{T: start, Dur: out.Cost.ComputeSeconds, Kind: "train", Round: round, Client: clientID, Note: tech.String()})
		eo.span(obs.Span{T: start + out.Cost.ComputeSeconds, Dur: out.Cost.CommSeconds, Kind: "comm", Round: round, Client: clientID})
		return
	}
	eo.span(obs.Span{T: start + out.Cost.TotalSeconds, Kind: "drop", Round: round, Client: clientID, Note: out.Reason.String()})
}
