// Package fl implements the federated-learning engines the paper
// evaluates: a synchronous round-based engine (FedAvg-style, used with the
// Random/Oort/REFL selectors) and an asynchronous buffered engine
// (FedBuff). Both train real models on the synthetic federation while a
// device cost model decides which clients drop out, and both delegate
// per-client acceleration decisions to a Controller — the hook FLOAT (or a
// heuristic, or a static technique) plugs into, which is exactly the
// paper's "non-intrusive integration" property.
package fl

import (
	"fmt"
	"math"

	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/metrics"
	"floatfl/internal/nn"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/population"
	"floatfl/internal/tensor"
)

// Controller decides, per selected client and round, which acceleration
// technique to apply, and receives feedback after execution. Controllers
// must be safe for sequential use only: even when the engines fan client
// work out across workers (Config.Parallelism), Decide runs on the
// dispatch pass and Feedback on the collect pass of a single goroutine, in
// dispatch order. Feedback for a batch of concurrently-executed clients is
// delivered after the whole batch completes (end of round for the sync
// engine, aggregation barrier for the async engine), so Decide observes
// controller state as of the previous batch boundary.
type Controller interface {
	Name() string
	// Decide picks a technique given the client's resource snapshot and
	// the most recent human-feedback deadline difference for this client
	// (0 when the client has no missed-deadline history).
	Decide(round int, c *device.Client, res device.Resources, hfDeadlineDiff float64) opt.Technique
	// Feedback reports the executed outcome plus the client's accuracy
	// improvement (post-round local accuracy minus pre-round, may be
	// negative).
	Feedback(round int, c *device.Client, tech opt.Technique, out device.Outcome, accImprove float64)
}

// NoOpController always chooses TechNone — the unmodified baselines.
type NoOpController struct{}

// Name implements Controller.
func (NoOpController) Name() string { return "none" }

// Decide implements Controller.
func (NoOpController) Decide(int, *device.Client, device.Resources, float64) opt.Technique {
	return opt.TechNone
}

// Feedback implements Controller.
func (NoOpController) Feedback(int, *device.Client, opt.Technique, device.Outcome, float64) {}

// StaticController always applies one fixed technique — the paper's
// "static optimizations" strawman (Fig 5).
type StaticController struct{ Tech opt.Technique }

// Name implements Controller.
func (s StaticController) Name() string { return "static-" + s.Tech.String() }

// Decide implements Controller.
func (s StaticController) Decide(int, *device.Client, device.Resources, float64) opt.Technique {
	return s.Tech
}

// Feedback implements Controller.
func (s StaticController) Feedback(int, *device.Client, opt.Technique, device.Outcome, float64) {}

// Config parameterizes a training run.
type Config struct {
	Arch            string
	Rounds          int
	ClientsPerRound int
	Epochs          int
	BatchSize       int
	LR              float64
	GradClip        float64
	// DeadlineSec is the synchronous round deadline. Zero auto-derives it
	// from the population (see DeadlinePercentile).
	DeadlineSec float64
	// DeadlinePercentile picks the auto deadline as this percentile of the
	// population's estimated unoptimized response time (default 60).
	DeadlinePercentile float64
	// EvalEvery evaluates the global model each N rounds (default 10).
	EvalEvery int
	Seed      int64

	// Async (FedBuff) knobs.
	// Concurrency is the number of clients training simultaneously
	// (default 100 in the paper's FedBuff setup).
	Concurrency int
	// BufferK aggregates once this many updates arrive (default 30).
	BufferK int
	// StalenessCap discards updates older than this many versions
	// (default 20).
	StalenessCap int

	// Parallelism is the number of workers executing per-client rounds
	// (device cost model + local training) concurrently. Results are
	// collected in dispatch order, so any value produces bit-identical
	// results to Parallelism=1. <= 0 defaults to runtime.NumCPU().
	Parallelism int

	// Backend names the tensor backend local training runs on ("ref" |
	// "fast"; empty defaults to "ref"). The determinism invariants — the
	// P=1≡P=8 golden tests and the committed trace goldens — bind to
	// "ref"; "fast" trades bit-stability across backend versions for
	// speed while remaining deterministic for a fixed binary.
	Backend string

	// Logger receives structured per-client-round and per-round events
	// (nil discards them).
	Logger RoundLogger

	// Metrics receives engine counters/gauges/histograms (nil disables
	// metric collection at zero cost beyond a nil check per event).
	Metrics *obs.Registry
	// Tracer receives the per-round phase spans — select/decide/train/
	// comm/drop/aggregate — timestamped in virtual simulation seconds
	// (nil disables tracing).
	Tracer *obs.Tracer
	// Timeline receives one delta-encoded sample of Metrics plus per-round
	// engine facts at every quiescent boundary (end of round for the sync
	// engine, aggregation barrier for the async engine). Controllers
	// implementing TimelineContributor add their own series — core.Float
	// contributes the RL action-visit distribution. Nil disables sampling.
	Timeline *obs.Timeline

	// ProxMu enables FedProx's proximal term during local training
	// (0 = plain FedAvg local SGD).
	ProxMu float64

	// EvalClients caps how many clients the end-of-run per-client
	// evaluation touches (a deterministic strided sample; 0 evaluates
	// all). Million-client lazy runs set this so final evaluation costs
	// O(sample), not O(population).
	EvalClients int

	// Checkpoint wires snapshot/resume and graceful-stop control into the
	// run (nil disables; the hot loops then pay one nil check per
	// boundary).
	Checkpoint *CheckpointConfig

	// forceLazySelection routes selection through the LazySelector path
	// even for an eager population. Test-only: it lets the equivalence
	// tests run the identical selection schedule against eager and lazy
	// backings of the same population.
	forceLazySelection bool
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 20
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.GradClip <= 0 {
		c.GradClip = 5
	}
	if c.DeadlinePercentile <= 0 {
		c.DeadlinePercentile = 60
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 10
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 100
	}
	if c.BufferK <= 0 {
		c.BufferK = 30
	}
	if c.StalenessCap <= 0 {
		c.StalenessCap = 20
	}
	if c.Parallelism <= 0 {
		c.Parallelism = defaultParallelism()
	}
	if c.Backend == "" {
		c.Backend = "ref"
	}
	if c.Logger == nil {
		c.Logger = NopLogger{}
	}
	return c
}

func (c Config) validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("fl: Rounds must be positive, got %d", c.Rounds)
	}
	if c.ClientsPerRound <= 0 {
		return fmt.Errorf("fl: ClientsPerRound must be positive, got %d", c.ClientsPerRound)
	}
	if c.Arch == "" {
		return fmt.Errorf("fl: Arch is required")
	}
	return nil
}

// Result is the outcome of a complete training run.
type Result struct {
	Algorithm  string
	Controller string

	Ledger *metrics.Ledger

	// GlobalAccHistory[i] is the global-model accuracy on the balanced
	// holdout at EvalRounds[i].
	GlobalAccHistory []float64
	EvalRounds       []int

	// FinalClientAccs holds the final global model's accuracy on each
	// client's local (non-IID) test split; FinalAccStats summarizes it.
	FinalClientAccs []float64
	FinalAccStats   metrics.AccuracyStats
	FinalGlobalAcc  float64

	WallClockSeconds float64
	DeadlineSec      float64

	// CompletedRounds is how many rounds (sync) or aggregations (async)
	// actually executed — equal to Config.Rounds for a full run, fewer
	// when a CheckpointConfig.Stop drain ended the run early. A resumed
	// run counts from round zero, so an N-round snapshot resumed for N
	// more reports 2N.
	CompletedRounds int
	// SimClockSeconds is the engine's virtual clock at the end of the run.
	// For a full run it equals WallClockSeconds; it is reported separately
	// so partial (drained) runs still expose the exact simulation time
	// their snapshot will resume from.
	SimClockSeconds float64

	// FinalParams is a frozen copy of the global model's flat parameter
	// vector at the end of the run. It is what the determinism regression
	// tests compare bit-for-bit across worker counts.
	FinalParams tensor.Vector
}

// autoDeadlineSampleCap bounds how many clients AutoDeadline estimates
// over: populations within the cap are measured exactly (preserving every
// committed golden), larger ones through a deterministic strided sample —
// a percentile over 2048 evenly-spaced clients of a million-client
// population is statistically indistinguishable from the full scan at
// 1/500th the cost.
const autoDeadlineSampleCap = 2048

// AutoDeadline derives the synchronous round deadline as a percentile of
// the population's *clean* (interference-free) response-time estimates,
// padded with 50% slack. Budgeting against the clean baseline mirrors how
// deployments pick deadlines: generous for healthy devices, so runtime
// dropouts are caused by interference and resource dips — the regime where
// adaptive acceleration pays off. Populations larger than
// autoDeadlineSampleCap are estimated via a deterministic strided sample;
// an empty population falls back to the 60-second default.
func AutoDeadline(pop []*device.Client, w device.WorkSpec, percentile float64) float64 {
	count := len(pop)
	if count > autoDeadlineSampleCap {
		count = autoDeadlineSampleCap
	}
	ests := make([]float64, 0, count)
	for i := 0; i < count; i++ {
		ests = append(ests, device.EstimateCleanResponseSeconds(pop[i*len(pop)/count], w))
	}
	return deadlineFromEstimates(ests, percentile)
}

// deadlineFromEstimates applies AutoDeadline's percentile-and-slack rule
// to a precomputed estimate sample (the lazy population path, which
// derives its sample without materializing clients).
func deadlineFromEstimates(ests []float64, percentile float64) float64 {
	d := metrics.Percentile(ests, percentile) * 1.5
	if d <= 0 {
		d = 60
	}
	return d
}

// setModelBackend resolves cfg.Backend by name and installs it on the
// global model; every per-worker clone inherits it (nn.Model.Clone
// propagates the backend), so one call here switches the whole run's
// training kernels.
func setModelBackend(m *nn.Model, name string) error {
	be, err := tensor.Lookup(name)
	if err != nil {
		return fmt.Errorf("fl: Config.Backend: %w", err)
	}
	m.SetBackend(be)
	return nil
}

// meanShardSize returns the average client shard size, guarding the
// degenerate cases (no clients, all-empty shards) that would otherwise
// divide by zero; workSpecFor treats the floor of 1 as "one sample".
func meanShardSize(shards [][]nn.Sample) int {
	if len(shards) == 0 {
		return 1
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	m := total / len(shards)
	if m <= 0 {
		m = 1
	}
	return m
}

// workSpecFor builds the client-round work spec from the architecture's
// reference scale and the client's shard size.
func workSpecFor(spec nn.Spec, samples, epochs int) device.WorkSpec {
	if samples <= 0 {
		samples = 1
	}
	return device.WorkSpec{
		RefFLOPsPerSample: spec.RefFLOPs,
		RefParams:         spec.RefParams,
		Samples:           samples,
		Epochs:            epochs,
	}
}

// localTrainResult is what a completed client round produces.
type localTrainResult struct {
	delta       tensor.Vector
	weight      float64
	statUtility float64
	accImprove  float64
}

// trainSeed is the per-(run, round, client) seed every stochastic stream
// of one client round derives from. Keeping it a pure function of
// (Seed, round, clientID) is what lets client rounds run on any worker in
// any order and still reproduce the sequential schedule bit-for-bit.
func trainSeed(cfg Config, round, clientID int) int64 {
	return cfg.Seed*1_000_003 + int64(round)*10_007 + int64(clientID)
}

// updateRNGSalt decorrelates the update-transform stream (stochastic
// quantization rounding) from the batch-shuffle stream nn.Train derives
// from the same base seed.
const updateRNGSalt = 0x5DEECE66D

// trainLocal loads the `before` parameter snapshot into the context's
// reusable local model, runs local SGD under the technique's semantic
// effects (frozen layers / pruned + quantized update), and writes the
// transformed delta into the caller-provided slot buffer, returning it
// plus the reward signals. It touches no shared mutable state: before is
// only read, all mutable scratch lives in ctx (owned by one worker) or
// delta (owned by one slot), and all randomness comes from per-client
// streams seeded by trainSeed — so concurrent calls for distinct
// (round, client) pairs on distinct contexts are race-free and
// order-independent. Steady-state calls allocate nothing.
func trainLocal(ctx *trainContext, delta tensor.Vector, proto *nn.Model,
	before tensor.Vector, shard, localTest []nn.Sample,
	tech opt.Technique, cfg Config, round, clientID int) (localTrainResult, error) {

	var res localTrainResult
	ctx.ensure(proto)
	local := ctx.local
	if err := local.SetParameters(before); err != nil {
		return res, err
	}
	eff := tech.Effects()
	seed := trainSeed(cfg, round, clientID)

	accBefore, _ := local.Evaluate(localTest)
	tc := nn.TrainConfig{
		Epochs:       cfg.Epochs,
		BatchSize:    cfg.BatchSize,
		LR:           cfg.LR,
		GradClip:     cfg.GradClip,
		FrozenLayers: opt.FrozenLayerMask(len(local.Layers), eff.PartialFrac),
		Seed:         seed,
	}
	if cfg.ProxMu > 0 {
		tc.ProxMu = cfg.ProxMu
		tc.ProxAnchor = before
	}
	loss, err := local.Train(shard, tc)
	if err != nil {
		return res, err
	}

	rng := ctx.seedUpdateRNG(seed ^ updateRNGSalt)
	tensor.ScaledDiff(delta, 1, local.Parameters(), before)
	opt.ApplyToUpdate(tech, delta, rng)

	// Accuracy improvement the client would see if it adopted its own
	// (transformed) update — the Acc_i reward component.
	applied := ctx.applied
	copy(applied, before)
	applied.AddScaled(1, delta)
	if err := local.SetParameters(applied); err != nil {
		return res, err
	}
	accAfter, _ := local.Evaluate(localTest)

	res.delta = delta
	res.weight = float64(len(shard))
	// Oort's statistical utility for a client is |B_i| · sqrt(mean squared
	// sample loss over its shard B_i). The engine only sees the mean final
	// epoch loss, so |B|·|loss| is the standard single-scalar proxy (loss
	// is a mean of non-negative cross-entropies, but |·| guards the FedProx
	// path where the reported value could in principle go negative).
	res.statUtility = float64(len(shard)) * math.Abs(loss)
	res.accImprove = accAfter - accBefore
	return res, nil
}

// applyAggregate accumulates the weighted mean of deltas directly into the
// global model's flat parameter buffer (no intermediate aggregate vector).
// Non-finite deltas (a diverged or malicious client) are discarded rather
// than allowed to poison the global model.
func applyAggregate(global *nn.Model, deltas []tensor.Vector, weights []float64) error {
	if len(deltas) == 0 {
		return nil
	}
	var totalW float64
	kept := deltas[:0]
	keptW := weights[:0]
	for i, d := range deltas {
		if !isFinite(d) || weights[i] <= 0 {
			continue
		}
		kept = append(kept, d)
		keptW = append(keptW, weights[i])
		totalW += weights[i]
	}
	if totalW <= 0 {
		return nil
	}
	for i := range keptW {
		keptW[i] /= totalW
	}
	//lint:allow flat-view-mutation aggregator owns the global model; in-place update is the sanctioned fast path (DESIGN.md buffer ownership)
	tensor.AddWeighted(global.Parameters(), keptW, kept)
	return nil
}

func isFinite(v tensor.Vector) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// evaluateClients returns the model's accuracy on every client's local
// test split.
func evaluateClients(m *nn.Model, fed *data.Federation) []float64 {
	accs := make([]float64, len(fed.LocalTest))
	for i, ts := range fed.LocalTest {
		accs[i], _ = m.Evaluate(ts)
	}
	return accs
}

// evaluateClientsPop returns the model's accuracy on clients' local test
// splits through the population seam. limit ≤ 0 (or ≥ population)
// evaluates every client — identical to evaluateClients for an eager
// population; a positive limit evaluates a deterministic strided sample,
// the only affordable option at million-client scale. Lazy shards stream
// through the bounded cache, so residency never exceeds its capacity.
func evaluateClientsPop(m *nn.Model, p *population.Population, limit int) []float64 {
	n := p.NumClients()
	count := n
	if limit > 0 && limit < n {
		count = limit
	}
	accs := make([]float64, count)
	for i := 0; i < count; i++ {
		shard := p.Shard(i * n / count)
		accs[i], _ = m.Evaluate(shard.LocalTest)
	}
	return accs
}
