package fl

import (
	"testing"

	"floatfl/internal/device"
	"floatfl/internal/opt"
	"floatfl/internal/tensor"
	"floatfl/internal/trace"
)

// TestIsTooStaleBoundary pins FedBuff's admission rule at the boundary:
// staleness of exactly StalenessCap is the last admissible value; one past
// it is discarded, and a missing base-version snapshot always discards.
func TestIsTooStaleBoundary(t *testing.T) {
	const cap = 3
	cases := []struct {
		staleness   int
		haveVersion bool
		want        bool
	}{
		{0, true, false},
		{cap - 1, true, false},
		{cap, true, false},    // inclusive boundary: exactly cap is usable
		{cap + 1, true, true}, // one past the cap is not
		{cap + 10, true, true},
		{0, false, true}, // snapshot evicted => unusable regardless
		{cap, false, true},
	}
	for _, c := range cases {
		if got := isTooStale(c.staleness, cap, c.haveVersion); got != c.want {
			t.Errorf("isTooStale(%d, %d, %v) = %v, want %v",
				c.staleness, cap, c.haveVersion, got, c.want)
		}
	}
}

// TestEvictStaleVersionWindow: after advancing to version v, the retained
// snapshot set is exactly {v-cap .. v} — enough that any update with
// admissible staleness still finds its base parameters, and nothing more.
func TestEvictStaleVersionWindow(t *testing.T) {
	const cap = 2
	versions := map[int]tensor.Vector{0: tensor.NewVector(1)}
	for v := 1; v <= 10; v++ {
		versions[v] = tensor.NewVector(1)
		evictStaleVersion(versions, v, cap)

		lo := v - cap
		if lo < 0 {
			lo = 0
		}
		if len(versions) != v-lo+1 {
			t.Fatalf("at version %d: %d snapshots retained, want %d", v, len(versions), v-lo+1)
		}
		for k := lo; k <= v; k++ {
			if _, ok := versions[k]; !ok {
				t.Fatalf("at version %d: snapshot %d missing from window", v, k)
			}
		}
	}
}

// countingController tallies Feedback deliveries by outcome so the test
// can check that discarded-as-stale updates still reach the Controller —
// the adaptation loop must learn from wasted work, not only from updates
// that made it into an aggregate.
type countingController struct {
	completedFeedback int
	dropFeedback      int
}

func (c *countingController) Name() string { return "counting" }

func (c *countingController) Decide(int, *device.Client, device.Resources, float64) opt.Technique {
	return opt.TechNone
}

func (c *countingController) Feedback(_ int, _ *device.Client, _ opt.Technique,
	out device.Outcome, _ float64) {
	if out.Completed {
		c.completedFeedback++
	} else {
		c.dropFeedback++
	}
}

// TestAsyncDiscardedUpdatesStillFeedback: under a tight staleness cap some
// completed updates are discarded before aggregation — but the Controller
// must still receive Feedback for every one of them. Only BufferK×Rounds
// completed updates can have been aggregated, so any completed-feedback
// count above that floor is attributable to discarded updates.
func TestAsyncDiscardedUpdatesStillFeedback(t *testing.T) {
	fed, pop := testSetup(t, 30, trace.ScenarioNone)
	cfg := smallConfig()
	cfg.Rounds = 8
	cfg.Concurrency = 25
	cfg.BufferK = 3
	cfg.StalenessCap = 1
	ctrl := &countingController{}
	res, err := RunAsync(fed, pop, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.Discarded == 0 {
		t.Skip("no update exceeded the staleness cap at this seed")
	}
	aggregated := cfg.BufferK * cfg.Rounds
	// Discards at the final barrier belong to a batch that never fills, so
	// only those popped before the last aggregation are guaranteed to have
	// been delivered; the seed above produces plenty.
	if ctrl.completedFeedback <= aggregated {
		t.Fatalf("completed feedback %d not above the aggregated floor %d despite %d discards",
			ctrl.completedFeedback, aggregated, res.Ledger.Discarded)
	}
}
