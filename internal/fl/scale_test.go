package fl

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"floatfl/internal/population"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

// popScaleEnv gates the million-client test: it allocates hundreds of MB
// and runs for tens of seconds, so plain `go test ./...` skips it.
//
//	FLOAT_POP_SCALE=1 go test ./internal/fl -run TestMillionClientBoundedMemory -v
//
// FLOAT_POP_CLIENTS / FLOAT_POP_PER_ROUND override the scale (CI runs a
// reduced configuration); FLOAT_POP_BENCH_OUT, when set, writes the
// BENCH_population.json artifact to that path.
const popScaleEnv = "FLOAT_POP_SCALE"

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// populationBenchArtifact is the BENCH_population.json schema: the lazy
// population's startup cost, steady-state round cost, and the resident
// footprint per population client — the numbers that justify "round cost
// is O(selected), not O(population)".
type populationBenchArtifact struct {
	Schema           string  `json:"schema"`
	GoVersion        string  `json:"go_version"`
	Clients          int     `json:"clients"`
	PerRound         int     `json:"per_round"`
	CacheClients     int     `json:"cache_clients"`
	Rounds           int     `json:"rounds"`
	StartupSec       float64 `json:"startup_sec"`
	RoundSec         float64 `json:"round_sec"`
	HeapAllocBytes   uint64  `json:"heap_alloc_bytes"`
	BytesPerClient   float64 `json:"bytes_per_client"`
	ShardPeak        int     `json:"shard_resident_peak"`
	DevicePeak       int     `json:"device_resident_peak"`
	ResidencyCeiling int     `json:"residency_ceiling"`
}

// TestMillionClientBoundedMemory is the tentpole's scale acceptance test:
// a million-client lazy population must start up in O(1), run rounds whose
// resident working set never exceeds cache capacity + the selected set,
// and keep total heap a small constant per population client (an eager
// population at this scale would need tens of GB).
func TestMillionClientBoundedMemory(t *testing.T) {
	if os.Getenv(popScaleEnv) == "" {
		t.Skipf("set %s=1 to run the million-client scale test", popScaleEnv)
	}
	clients := envInt("FLOAT_POP_CLIENTS", 1_000_000)
	perRound := envInt("FLOAT_POP_PER_ROUND", 10_000)
	const cacheClients = 4096
	const rounds = 2

	start := time.Now()
	p, err := population.NewLazy(population.Config{
		Dataset:      "femnist",
		Clients:      clients,
		Alpha:        0.1,
		Seed:         42,
		Scenario:     trace.ScenarioDynamic,
		CacheClients: cacheClients,
	})
	if err != nil {
		t.Fatal(err)
	}
	startupSec := time.Since(start).Seconds()
	t.Logf("startup: %.3fs for %d clients", startupSec, clients)

	cfg := Config{
		Arch:            "mlp-small",
		Rounds:          rounds,
		ClientsPerRound: perRound,
		Epochs:          1,
		BatchSize:       16,
		LR:              0.1,
		EvalEvery:       rounds,
		Seed:            42,
		EvalClients:     256,
	}
	runStart := time.Now()
	res, err := RunSyncPop(p, selection.NewRandom(42), NoOpController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	roundSec := time.Since(runStart).Seconds() / rounds
	t.Logf("round: %.3fs avg over %d rounds (%d selected/round)", roundSec, rounds, perRound)

	if res.Ledger.TotalRounds == 0 {
		t.Fatal("no client-rounds executed")
	}
	if !res.Ledger.Sparse() {
		t.Fatal("million-client run must use the sparse ledger")
	}

	// The acceptance bound: resident client state never exceeded the cache
	// capacity plus one round's pinned selection.
	ceiling := cacheClients + perRound
	shard, dev := p.Stats()
	if shard.Peak > ceiling {
		t.Errorf("shard cache peak residency %d exceeds ceiling %d (cache %d + selected %d)",
			shard.Peak, ceiling, cacheClients, perRound)
	}
	if dev.Peak > ceiling {
		t.Errorf("device cache peak residency %d exceeds ceiling %d (cache %d + selected %d)",
			dev.Peak, ceiling, cacheClients, perRound)
	}
	if shard.Evictions == 0 && shard.Misses > int64(2*cacheClients) {
		t.Error("shard cache never evicted despite deriving past capacity — residency bound untested")
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	bytesPerClient := float64(ms.HeapAlloc) / float64(clients)
	t.Logf("heap after run: %.1f MB (%.1f bytes per population client; peaks shard=%d device=%d)",
		float64(ms.HeapAlloc)/(1<<20), bytesPerClient, shard.Peak, dev.Peak)
	// An eager femnist client costs tens of KB (samples + traces). The
	// lazy run must stay orders of magnitude below that per *population*
	// client at the full 1M scale; the reduced CI scale gets a looser
	// bound since the fixed costs (model, pools, goldens) dominate.
	maxBytesPerClient := 2048.0
	if clients < 500_000 {
		maxBytesPerClient = 65536
	}
	if bytesPerClient > maxBytesPerClient {
		t.Errorf("resident heap %.0f bytes per population client exceeds %.0f — population memory is not bounded",
			bytesPerClient, maxBytesPerClient)
	}

	if out := os.Getenv("FLOAT_POP_BENCH_OUT"); out != "" {
		art := populationBenchArtifact{
			Schema:           "floatfl-population-bench/v1",
			GoVersion:        runtime.Version(),
			Clients:          clients,
			PerRound:         perRound,
			CacheClients:     cacheClients,
			Rounds:           rounds,
			StartupSec:       startupSec,
			RoundSec:         roundSec,
			HeapAllocBytes:   ms.HeapAlloc,
			BytesPerClient:   bytesPerClient,
			ShardPeak:        shard.Peak,
			DevicePeak:       dev.Peak,
			ResidencyCeiling: ceiling,
		}
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}
