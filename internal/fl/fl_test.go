package fl

import (
	"testing"

	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/opt"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

func testSetup(t *testing.T, clients int, scenario trace.Scenario) (*data.Federation, []*device.Client) {
	t.Helper()
	fed, err := data.Generate("femnist", data.GenerateConfig{Clients: clients, Alpha: 0.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: clients, Scenario: scenario, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fed, pop
}

func smallConfig() Config {
	return Config{
		Arch:            "resnet18",
		Rounds:          12,
		ClientsPerRound: 8,
		Epochs:          2,
		BatchSize:       16,
		LR:              0.1,
		EvalEvery:       4,
		Seed:            5,
	}
}

func TestRunSyncBasics(t *testing.T) {
	fed, pop := testSetup(t, 24, trace.ScenarioDynamic)
	res, err := RunSync(fed, pop, selection.NewRandom(1), NoOpController{}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "fedavg" || res.Controller != "none" {
		t.Fatalf("labels wrong: %s/%s", res.Algorithm, res.Controller)
	}
	if res.Ledger.TotalRounds != 12*8 {
		t.Fatalf("client-rounds = %d, want 96", res.Ledger.TotalRounds)
	}
	if len(res.GlobalAccHistory) == 0 || len(res.GlobalAccHistory) != len(res.EvalRounds) {
		t.Fatalf("eval history malformed: %d points, %d rounds",
			len(res.GlobalAccHistory), len(res.EvalRounds))
	}
	if len(res.FinalClientAccs) != 24 {
		t.Fatalf("final client accs = %d, want 24", len(res.FinalClientAccs))
	}
	if res.DeadlineSec <= 0 {
		t.Fatal("auto deadline not derived")
	}
	if res.WallClockSeconds <= 0 {
		t.Fatal("wall clock not accumulated")
	}
	if res.FinalAccStats.Top10 < res.FinalAccStats.Bottom10 {
		t.Fatal("accuracy stats ordering violated")
	}
}

func TestRunSyncLearns(t *testing.T) {
	fed, pop := testSetup(t, 24, trace.ScenarioNone)
	cfg := smallConfig()
	cfg.Rounds = 20
	cfg.DeadlineSec = 1e9 // no dropouts: isolate the learning dynamics
	res, err := RunSync(fed, pop, selection.NewRandom(2), NoOpController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.GlobalAccHistory[0]
	last := res.GlobalAccHistory[len(res.GlobalAccHistory)-1]
	if last <= first {
		t.Fatalf("global accuracy did not improve: %v -> %v", first, last)
	}
	chance := 1.0 / float64(fed.Profile.Classes)
	if last < chance*2 {
		t.Fatalf("final accuracy %v barely above chance %v", last, chance)
	}
	// An infinite deadline rules out deadline dropouts; availability and
	// energy dropouts can still occur (Random ignores availability).
	if n := res.Ledger.DropsByReason[device.DropDeadline]; n != 0 {
		t.Fatalf("infinite deadline still recorded %d deadline drops", n)
	}
}

func TestRunSyncDeterministic(t *testing.T) {
	run := func() *Result {
		fed, pop := testSetup(t, 16, trace.ScenarioDynamic)
		cfg := smallConfig()
		cfg.Rounds = 6
		res, err := RunSync(fed, pop, selection.NewRandom(3), NoOpController{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FinalGlobalAcc != b.FinalGlobalAcc {
		t.Fatalf("runs differ under identical seeds: %v vs %v", a.FinalGlobalAcc, b.FinalGlobalAcc)
	}
	if a.Ledger.TotalDrops != b.Ledger.TotalDrops {
		t.Fatal("dropout counts differ under identical seeds")
	}
}

func TestRunSyncTightDeadlineDrops(t *testing.T) {
	fed, pop := testSetup(t, 24, trace.ScenarioDynamic)
	cfg := smallConfig()
	cfg.Rounds = 6
	cfg.DeadlinePercentile = 20 // only the fastest 20% can finish
	res, err := RunSync(fed, pop, selection.NewRandom(4), NoOpController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.TotalDrops == 0 {
		t.Fatal("tight deadline produced no dropouts")
	}
	if res.Ledger.Wasted.ComputeHours <= 0 {
		t.Fatal("dropouts produced no wasted compute")
	}
}

func TestStaticControllerRescuesClients(t *testing.T) {
	// Fig 5's mechanism: a static optimization lifts participation under a
	// deadline that TechNone cannot meet.
	fed, pop := testSetup(t, 30, trace.ScenarioDynamic)
	cfg := smallConfig()
	cfg.Rounds = 8
	cfg.DeadlinePercentile = 35

	resNone, err := RunSync(fed, pop, selection.NewRandom(5), NoOpController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fed2, pop2 := testSetup(t, 30, trace.ScenarioDynamic)
	resOpt, err := RunSync(fed2, pop2, selection.NewRandom(5), StaticController{Tech: opt.TechPartial75}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resOpt.Ledger.TotalDrops >= resNone.Ledger.TotalDrops {
		t.Fatalf("partial75 did not reduce dropouts: %d vs %d",
			resOpt.Ledger.TotalDrops, resNone.Ledger.TotalDrops)
	}
}

func TestRunSyncValidation(t *testing.T) {
	fed, pop := testSetup(t, 8, trace.ScenarioNone)
	bad := smallConfig()
	bad.Rounds = 0
	if _, err := RunSync(fed, pop, selection.NewRandom(1), NoOpController{}, bad); err == nil {
		t.Fatal("accepted zero rounds")
	}
	bad = smallConfig()
	bad.Arch = "nope"
	if _, err := RunSync(fed, pop, selection.NewRandom(1), NoOpController{}, bad); err == nil {
		t.Fatal("accepted unknown architecture")
	}
	if _, err := RunSync(fed, pop[:4], selection.NewRandom(1), NoOpController{}, smallConfig()); err == nil {
		t.Fatal("accepted mismatched population")
	}
	// An empty population must error, not divide by zero on the mean
	// shard size.
	if _, err := RunSync(&data.Federation{}, nil, selection.NewRandom(1), NoOpController{}, smallConfig()); err == nil {
		t.Fatal("accepted empty population")
	}
}

func TestRunAsyncBasics(t *testing.T) {
	fed, pop := testSetup(t, 30, trace.ScenarioDynamic)
	cfg := smallConfig()
	cfg.Rounds = 5 // aggregations
	cfg.Concurrency = 15
	cfg.BufferK = 5
	res, err := RunAsync(fed, pop, NoOpController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "fedbuff" {
		t.Fatalf("algorithm label %q", res.Algorithm)
	}
	if res.WallClockSeconds <= 0 {
		t.Fatal("async wall clock not tracked")
	}
	if res.Ledger.TotalRounds < cfg.Rounds*cfg.BufferK {
		t.Fatalf("too few client-rounds executed: %d", res.Ledger.TotalRounds)
	}
	if len(res.FinalClientAccs) != 30 {
		t.Fatal("final client accuracies missing")
	}
	if len(res.GlobalAccHistory) == 0 {
		t.Fatal("no eval points recorded")
	}
}

func TestRunAsyncOverSelectsVsSync(t *testing.T) {
	// Fig 2b: async FL consumes far more client-rounds (and thus
	// resources) than synchronous FL for the same number of aggregations.
	fed, pop := testSetup(t, 30, trace.ScenarioDynamic)
	cfg := smallConfig()
	cfg.Rounds = 5
	cfg.Concurrency = 20
	cfg.BufferK = 5
	async, err := RunAsync(fed, pop, NoOpController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fed2, pop2 := testSetup(t, 30, trace.ScenarioDynamic)
	cfgSync := smallConfig()
	cfgSync.Rounds = 5
	cfgSync.ClientsPerRound = 5
	sync, err := RunSync(fed2, pop2, selection.NewRandom(6), NoOpController{}, cfgSync)
	if err != nil {
		t.Fatal(err)
	}
	if async.Ledger.TotalRounds <= sync.Ledger.TotalRounds {
		t.Fatalf("FedBuff should execute more client-rounds: async=%d sync=%d",
			async.Ledger.TotalRounds, sync.Ledger.TotalRounds)
	}
}

func TestRunAsyncValidation(t *testing.T) {
	fed, pop := testSetup(t, 8, trace.ScenarioNone)
	bad := smallConfig()
	bad.Rounds = 0
	if _, err := RunAsync(fed, pop, NoOpController{}, bad); err == nil {
		t.Fatal("accepted zero rounds")
	}
	if _, err := RunAsync(fed, pop[:4], NoOpController{}, smallConfig()); err == nil {
		t.Fatal("accepted mismatched population")
	}
	if _, err := RunAsync(&data.Federation{}, nil, NoOpController{}, smallConfig()); err == nil {
		t.Fatal("accepted empty population")
	}
}

func TestControllersMetadata(t *testing.T) {
	var c Controller = NoOpController{}
	if c.Name() != "none" {
		t.Fatal("NoOpController name")
	}
	if c.Decide(0, nil, device.Resources{}, 0) != opt.TechNone {
		t.Fatal("NoOpController must decide TechNone")
	}
	s := StaticController{Tech: opt.TechQuant8}
	if s.Name() != "static-quant8" {
		t.Fatalf("StaticController name %q", s.Name())
	}
	if s.Decide(0, nil, device.Resources{}, 0) != opt.TechQuant8 {
		t.Fatal("StaticController must decide its technique")
	}
}

func TestAutoDeadline(t *testing.T) {
	_, pop := testSetup(t, 20, trace.ScenarioNone)
	w := device.WorkSpec{RefFLOPsPerSample: 1e9, RefParams: 1e6, Samples: 50, Epochs: 5}
	d50 := AutoDeadline(pop, w, 50)
	d90 := AutoDeadline(pop, w, 90)
	if d50 <= 0 || d90 < d50 {
		t.Fatalf("AutoDeadline not monotone: p50=%v p90=%v", d50, d90)
	}
}

func TestRunAsyncDiscardsStaleUpdates(t *testing.T) {
	// A tiny staleness cap with heavy concurrency forces some completed
	// updates to arrive too stale to aggregate; they must be accounted as
	// discarded waste, not useful work.
	fed, pop := testSetup(t, 30, trace.ScenarioNone)
	cfg := smallConfig()
	cfg.Rounds = 8
	cfg.Concurrency = 25
	cfg.BufferK = 3
	cfg.StalenessCap = 1
	res, err := RunAsync(fed, pop, NoOpController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.Discarded == 0 {
		t.Skip("no update exceeded the staleness cap in this seed")
	}
	if res.Ledger.Wasted.ComputeHours <= 0 {
		t.Fatal("discarded updates did not count as wasted compute")
	}
}

func TestRunSyncWallClockUsesDeadlineOnTimeout(t *testing.T) {
	fed, pop := testSetup(t, 20, trace.ScenarioDynamic)
	cfg := smallConfig()
	cfg.Rounds = 5
	cfg.DeadlinePercentile = 20 // guarantees timeouts
	res, err := RunSync(fed, pop, selection.NewRandom(9), NoOpController{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.DropsByReason[device.DropDeadline] == 0 {
		t.Skip("no deadline timeouts at this seed")
	}
	// Wall clock can never exceed rounds × deadline, and a timeout round
	// contributes exactly the deadline.
	if res.WallClockSeconds > float64(cfg.Rounds)*res.DeadlineSec+1e-6 {
		t.Fatalf("wall clock %v exceeds rounds×deadline %v",
			res.WallClockSeconds, float64(cfg.Rounds)*res.DeadlineSec)
	}
	if res.WallClockSeconds < res.DeadlineSec {
		t.Fatalf("wall clock %v below one deadline despite a timeout round", res.WallClockSeconds)
	}
}
