package fl

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"floatfl/internal/obs"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

// runSyncTelemetry runs the standard parallel-determinism experiment with
// a fresh registry and tracer attached and returns the text exposition
// and the JSONL trace.
func runSyncTelemetry(t *testing.T, par int) (string, string) {
	t.Helper()
	fed, pop := testSetup(t, 20, trace.ScenarioDynamic)
	cfg := parSyncConfig(par)
	cfg.Metrics = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer()
	if _, err := RunSync(fed, pop, selection.NewRandom(7), newFeedbackDriven(), cfg); err != nil {
		t.Fatal(err)
	}
	return exportTelemetry(t, cfg.Metrics, cfg.Tracer)
}

func runAsyncTelemetry(t *testing.T, par int) (string, string) {
	t.Helper()
	fed, pop := testSetup(t, 24, trace.ScenarioDynamic)
	cfg := parSyncConfig(par)
	cfg.Rounds = 5
	cfg.Concurrency = 12
	cfg.BufferK = 4
	cfg.Metrics = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer()
	if _, err := RunAsync(fed, pop, newFeedbackDriven(), cfg); err != nil {
		t.Fatal(err)
	}
	return exportTelemetry(t, cfg.Metrics, cfg.Tracer)
}

func exportTelemetry(t *testing.T, reg *obs.Registry, tr *obs.Tracer) (string, string) {
	t.Helper()
	var mb, tb bytes.Buffer
	if err := reg.WriteText(&mb); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&tb); err != nil {
		t.Fatal(err)
	}
	return mb.String(), tb.String()
}

// TestSyncTelemetryParallelismInvariant: the metrics exposition and the
// phase trace must be byte-identical between Parallelism=1 and
// Parallelism=8 — telemetry is part of the determinism contract, not an
// exception to it.
func TestSyncTelemetryParallelismInvariant(t *testing.T) {
	m1, tr1 := runSyncTelemetry(t, 1)
	m8, tr8 := runSyncTelemetry(t, 8)
	if m1 != m8 {
		t.Errorf("metrics exposition differs between P=1 and P=8:\n--- P=1 ---\n%s--- P=8 ---\n%s", m1, m8)
	}
	if tr1 != tr8 {
		t.Errorf("trace JSONL differs between P=1 and P=8 (%d vs %d bytes)", len(tr1), len(tr8))
	}
	if !strings.Contains(m1, "fl_rounds_total 6\n") {
		t.Errorf("exposition missing fl_rounds_total 6:\n%s", m1)
	}
	for _, kind := range []string{`"kind":"select"`, `"kind":"train"`, `"kind":"aggregate"`} {
		if !strings.Contains(tr1, kind) {
			t.Errorf("trace missing %s span", kind)
		}
	}
}

func TestAsyncTelemetryParallelismInvariant(t *testing.T) {
	m1, tr1 := runAsyncTelemetry(t, 1)
	m8, tr8 := runAsyncTelemetry(t, 8)
	if m1 != m8 {
		t.Errorf("metrics exposition differs between P=1 and P=8:\n--- P=1 ---\n%s--- P=8 ---\n%s", m1, m8)
	}
	if tr1 != tr8 {
		t.Errorf("trace JSONL differs between P=1 and P=8 (%d vs %d bytes)", len(tr1), len(tr8))
	}
	if !strings.Contains(m1, "fl_rounds_total 5\n") {
		t.Errorf("exposition missing fl_rounds_total 5:\n%s", m1)
	}
}

// TestSyncTraceGolden pins the trace byte stream to a checked-in golden
// file, so any drift in span structure, ordering, or encoding is an
// explicit diff in review. Regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./internal/fl -run TestSyncTraceGolden
func TestSyncTraceGolden(t *testing.T) {
	_, got := runSyncTelemetry(t, 8)
	golden := filepath.Join("testdata", "trace_sync.golden.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace deviates from golden %s (%d vs %d bytes); regenerate with UPDATE_GOLDEN=1 if the change is intended",
			golden, len(got), len(want))
	}
}
