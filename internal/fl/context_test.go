package fl

import (
	"math/rand"
	"testing"

	"floatfl/internal/data"
	"floatfl/internal/nn"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/trace"
)

// BenchmarkTrainLocal measures one steady-state client round against a warm
// trainContext. The flat-parameter refactor's contract is that this path
// allocates nothing: the context owns the local model and scratch, the slot
// owns the delta buffer, and nn.Train reuses its RNG/order/gradient state.
// The telemetry ops the engines issue per client round (counter increment,
// histogram observe) run inside the loop too, proving the instrumented hot
// path stays allocation-free.
func BenchmarkTrainLocal(b *testing.B) {
	fed, err := data.Generate("femnist", data.GenerateConfig{Clients: 8, Alpha: 0.1, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Arch: "resnet18", Rounds: 1, ClientsPerRound: 1,
		Epochs: 2, BatchSize: 16, LR: 0.1, Seed: 5,
	}.withDefaults()
	proto, err := nn.NewModel(cfg.Arch, fed.Profile.Dim, fed.Profile.Classes,
		rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		b.Fatal(err)
	}
	before := proto.Parameters().Clone()
	pool := newContextPool(proto)
	pool.ensure(1, 1)

	// Warm up: first call builds the context's model and scratch.
	if _, err := trainLocal(pool.ctx(0), pool.delta(0), proto, before,
		fed.Train[0], fed.LocalTest[0], opt.TechNone, cfg, 0, 0); err != nil {
		b.Fatal(err)
	}

	reg := obs.NewRegistry()
	trainCalls := reg.Counter("fl_train_calls_total")
	computeHist := reg.Histogram("device_compute_seconds", []float64{1, 5, 15, 30, 60})

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trainCalls.Inc()
		if _, err := trainLocal(pool.ctx(0), pool.delta(0), proto, before,
			fed.Train[0], fed.LocalTest[0], opt.TechNone, cfg, 1, 0); err != nil {
			b.Fatal(err)
		}
		computeHist.Observe(12.5)
	}
}

// TestTrainContextReuseMatchesFreshContext pins the reuse semantics: a
// context that has already executed other client rounds must produce
// bit-identical results to a brand-new one, because every piece of cached
// state (model parameters, RNG streams, order scratch) is re-initialized
// per call.
func TestTrainContextReuseMatchesFreshContext(t *testing.T) {
	fed, _ := testSetup(t, 4, trace.ScenarioNone)
	cfg := smallConfig().withDefaults()
	proto, err := nn.NewModel(cfg.Arch, fed.Profile.Dim, fed.Profile.Classes,
		rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	before := proto.Parameters().Clone()

	// Warm context: run two unrelated client rounds first.
	warm := &trainContext{}
	warmDelta := make([]float64, proto.NumParams())
	for id := 1; id <= 2; id++ {
		if _, err := trainLocal(warm, warmDelta, proto, before,
			fed.Train[id], fed.LocalTest[id], opt.TechQuant8, cfg, 0, id); err != nil {
			t.Fatal(err)
		}
	}
	gotWarm, err := trainLocal(warm, warmDelta, proto, before,
		fed.Train[0], fed.LocalTest[0], opt.TechQuant8, cfg, 3, 0)
	if err != nil {
		t.Fatal(err)
	}

	fresh := &trainContext{}
	freshDelta := make([]float64, proto.NumParams())
	gotFresh, err := trainLocal(fresh, freshDelta, proto, before,
		fed.Train[0], fed.LocalTest[0], opt.TechQuant8, cfg, 3, 0)
	if err != nil {
		t.Fatal(err)
	}

	if gotWarm.weight != gotFresh.weight ||
		gotWarm.statUtility != gotFresh.statUtility ||
		gotWarm.accImprove != gotFresh.accImprove {
		t.Fatalf("warm context result differs: %+v vs %+v", gotWarm, gotFresh)
	}
	for i := range gotWarm.delta {
		if gotWarm.delta[i] != gotFresh.delta[i] {
			t.Fatalf("warm context delta differs at %d: %v vs %v",
				i, gotWarm.delta[i], gotFresh.delta[i])
		}
	}
}

// TestContextPoolEnsureGrowsMonotonically checks pool growth and identity
// stability: ensure never shrinks, and existing contexts/buffers keep their
// identity so cached models survive.
func TestContextPoolEnsureGrowsMonotonically(t *testing.T) {
	proto, err := nn.NewModel("mlp-small", 8, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	pool := newContextPool(proto)
	pool.ensure(2, 3)
	c0 := pool.ctx(0)
	d0 := &pool.delta(0)[0]
	pool.ensure(4, 8)
	if pool.ctx(0) != c0 {
		t.Fatal("ensure replaced an existing context")
	}
	if &pool.delta(0)[0] != d0 {
		t.Fatal("ensure replaced an existing delta buffer")
	}
	pool.ensure(1, 1)
	if len(pool.workers) != 4 || len(pool.deltas) != 8 {
		t.Fatalf("ensure shrank the pool: %d workers, %d deltas",
			len(pool.workers), len(pool.deltas))
	}
	for slot := 0; slot < 8; slot++ {
		if len(pool.delta(slot)) != proto.NumParams() {
			t.Fatalf("delta %d has %d scalars, want %d",
				slot, len(pool.delta(slot)), proto.NumParams())
		}
	}
}
