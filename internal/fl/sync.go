package fl

import (
	"fmt"
	"math/rand"

	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/metrics"
	"floatfl/internal/nn"
	"floatfl/internal/selection"
	"floatfl/internal/tensor"
)

// RunSync executes synchronous federated training: each round the selector
// picks ClientsPerRound clients, every selected client trains locally under
// the controller's chosen technique, completions are FedAvg-aggregated, and
// the round's wall clock is the slowest participant (or the deadline when
// anyone timed out). This is the engine behind FedAvg, Oort, and REFL runs,
// with or without FLOAT.
func RunSync(fed *data.Federation, pop []*device.Client, sel selection.Selector,
	ctrl Controller, cfg Config) (*Result, error) {

	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(fed.Train) != len(pop) {
		return nil, fmt.Errorf("fl: federation has %d clients, population has %d",
			len(fed.Train), len(pop))
	}
	spec, err := nn.LookupSpec(cfg.Arch)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	global, err := nn.NewModel(cfg.Arch, fed.Profile.Dim, fed.Profile.Classes, rng)
	if err != nil {
		return nil, err
	}

	meanShard := 0
	for _, s := range fed.Train {
		meanShard += len(s)
	}
	meanShard /= len(fed.Train)
	refWork := workSpecFor(spec, meanShard, cfg.Epochs)

	deadline := cfg.DeadlineSec
	if deadline <= 0 {
		deadline = AutoDeadline(pop, refWork, cfg.DeadlinePercentile)
	}

	res := &Result{
		Algorithm:   sel.Name(),
		Controller:  ctrl.Name(),
		Ledger:      metrics.NewLedger(len(pop)),
		DeadlineSec: deadline,
	}
	// hfDiff tracks the latest deadline-difference human feedback per client.
	hfDiff := make([]float64, len(pop))

	for round := 0; round < cfg.Rounds; round++ {
		info := selection.RoundInfo{Round: round, Work: refWork, DeadlineSec: deadline}
		// Real FL servers dispatch only to clients that checked in: filter
		// the pool to currently-available devices. Clients can still drop
		// out mid-round if they go offline after selection.
		checkedIn := make([]*device.Client, 0, len(pop))
		for _, c := range pop {
			if c.ResourcesAt(round).Available {
				checkedIn = append(checkedIn, c)
			}
		}
		if len(checkedIn) == 0 {
			continue
		}
		ids := sel.Select(info, checkedIn, cfg.ClientsPerRound)

		var deltas []tensor.Vector
		var weights []float64
		var roundWall float64
		anyTimeout := false

		for _, id := range ids {
			c := pop[id]
			shard := fed.Train[id]
			work := workSpecFor(spec, len(shard), cfg.Epochs)
			resSnap := c.ResourcesAt(round)
			tech := ctrl.Decide(round, c, resSnap, hfDiff[id])

			out, err := device.Execute(c, round, work, tech, deadline)
			if err != nil {
				return nil, err
			}
			res.Ledger.Record(id, tech, out)
			if out.Reason == device.DropDeadline {
				anyTimeout = true
				hfDiff[id] = out.DeadlineDiff
			} else if out.Completed {
				hfDiff[id] = 0
			}

			var statUtil, accImprove float64
			if out.Completed {
				lt, err := trainLocal(global, shard, fed.LocalTest[id], tech, cfg, round, id, rng)
				if err != nil {
					return nil, err
				}
				deltas = append(deltas, lt.delta)
				weights = append(weights, lt.weight)
				statUtil = lt.statUtility
				accImprove = lt.accImprove
				if out.Cost.TotalSeconds > roundWall {
					roundWall = out.Cost.TotalSeconds
				}
			}
			sel.Observe(selection.Feedback{ClientID: id, Round: round, Outcome: out, StatUtility: statUtil})
			ctrl.Feedback(round, c, tech, out, accImprove)
			cfg.Logger.LogClientRound(clientRoundLog(round, id, tech, out, accImprove))
		}

		if err := applyAggregate(global, deltas, weights); err != nil {
			return nil, err
		}
		if anyTimeout {
			roundWall = deadline
		}
		res.Ledger.WallClockSeconds += roundWall
		res.WallClockSeconds += roundWall

		summary := RoundSummaryLog{
			Round:       round,
			Selected:    len(ids),
			Completed:   len(deltas),
			Dropped:     len(ids) - len(deltas),
			WallSeconds: roundWall,
		}
		if (round+1)%cfg.EvalEvery == 0 || round == cfg.Rounds-1 {
			acc, _ := global.Evaluate(fed.GlobalTest)
			res.GlobalAccHistory = append(res.GlobalAccHistory, acc)
			res.EvalRounds = append(res.EvalRounds, round+1)
			summary.GlobalAcc = acc
		}
		cfg.Logger.LogRoundSummary(summary)
	}

	res.FinalClientAccs = evaluateClients(global, fed)
	res.FinalAccStats = metrics.ComputeAccuracyStats(res.FinalClientAccs)
	res.FinalGlobalAcc, _ = global.Evaluate(fed.GlobalTest)
	return res, nil
}
