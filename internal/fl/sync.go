package fl

import (
	"fmt"
	"math/rand"

	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/metrics"
	"floatfl/internal/nn"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/population"
	"floatfl/internal/rngstate"
	"floatfl/internal/selection"
	"floatfl/internal/tensor"
)

// syncJob is one selected client's dispatch record: everything decided and
// resolved on the single-threaded pass before the round fans out. The
// client pointer and shard slices are acquired (pinned) from the
// population at dispatch, so workers never touch the provider caches — the
// cache's hit/miss schedule, like every other order-sensitive effect,
// belongs to the sequential passes.
type syncJob struct {
	id        int
	tech      opt.Technique
	client    *device.Client
	train     []nn.Sample
	localTest []nn.Sample
}

// syncResult is what one worker produces for its slot. Workers write only
// their own slot; the collector reads all slots in dispatch order.
type syncResult struct {
	out     device.Outcome
	lt      localTrainResult
	trained bool
	err     error
}

// RunSync executes synchronous federated training over the classic dense
// federation/population pair. It is a thin wrapper over RunSyncPop with an
// eager population — bit-identical to the historical engine (the committed
// goldens pin this).
func RunSync(fed *data.Federation, pop []*device.Client, sel selection.Selector,
	ctrl Controller, cfg Config) (*Result, error) {

	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(pop) == 0 {
		return nil, fmt.Errorf("fl: population is empty")
	}
	p, err := population.WrapEager(fed, pop)
	if err != nil {
		return nil, err
	}
	return RunSyncPop(p, sel, ctrl, cfg)
}

// RunSyncPop executes synchronous federated training: each round the
// selector picks ClientsPerRound clients, every selected client trains
// locally under the controller's chosen technique, completions are
// FedAvg-aggregated, and the round's wall clock is the slowest participant
// (or the deadline when anyone timed out). This is the engine behind
// FedAvg, Oort, and REFL runs, with or without FLOAT.
//
// Each round runs in three phases: a sequential dispatch pass (selection,
// client/shard acquisition, resource snapshot + controller decision per
// client, in selection order), a parallel fan-out (device.Execute +
// trainLocal against a snapshot of the global model, Config.Parallelism
// workers), and a sequential collect pass that applies deltas, ledger
// records, selector feedback, and controller feedback in selection order,
// then releases the round's clients. The fan-out schedule cannot influence
// the results, so any Parallelism produces bit-identical output.
//
// With an eager population the selector sees the classic checked-in dense
// pool; a lazy population requires a selection.LazySelector, which probes
// O(selected) clients instead of scanning the population. Memory per round
// is then bounded by the provider cache capacity plus the selected set.
func RunSyncPop(p *population.Population, sel selection.Selector,
	ctrl Controller, cfg Config) (*Result, error) {

	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := p.NumClients()
	if n == 0 {
		return nil, fmt.Errorf("fl: population is empty")
	}
	useLazySel := !p.Eager() || cfg.forceLazySelection
	lazySel, isLazySel := sel.(selection.LazySelector)
	if useLazySel && !isLazySel {
		return nil, fmt.Errorf("fl: selector %q cannot drive a lazy population (implement selection.LazySelector)", sel.Name())
	}
	spec, err := nn.LookupSpec(cfg.Arch)
	if err != nil {
		return nil, err
	}
	profile := p.Profile()
	src := rngstate.New(cfg.Seed)
	rng := rand.New(src)
	global, err := nn.NewModel(cfg.Arch, profile.Dim, profile.Classes, rng)
	if err != nil {
		return nil, err
	}
	if err := setModelBackend(global, cfg.Backend); err != nil {
		return nil, err
	}

	refWork := workSpecFor(spec, p.MeanShardSize(), cfg.Epochs)

	deadline := cfg.DeadlineSec
	if deadline <= 0 {
		deadline = deadlineFromEstimates(p.CleanResponseEstimates(refWork), cfg.DeadlinePercentile)
	}

	ledger := metrics.NewLedger(n)
	if !p.Eager() {
		ledger = metrics.NewSparseLedger(n)
	}
	res := &Result{
		Algorithm:   sel.Name(),
		Controller:  ctrl.Name(),
		Ledger:      ledger,
		DeadlineSec: deadline,
	}
	// hfDiff tracks the latest deadline-difference human feedback per
	// client — sparse, because a million-client run only ever touches the
	// participants.
	hfDiff := make(map[int]float64)

	// Reusable per-worker training contexts and per-slot delta buffers:
	// grown once, then every steady-state client round allocates nothing.
	pool := newContextPool(global)
	eo := newEngineObs(cfg.Metrics, cfg.Tracer)
	pop := p.AllClients() // nil in lazy mode

	// Checkpoint seam: restore runs against the freshly initialized state
	// above, before the first round; boundary hooks fire at the end of
	// every round — the engine's quiescent point.
	ckState := &syncRunState{
		cfg: cfg, p: p, sel: sel, ctrl: ctrl, global: global, res: res,
		hfDiff: hfDiff, src: src, deadline: deadline, useLazySel: useLazySel,
	}
	startRound := 0
	if cfg.Checkpoint != nil && len(cfg.Checkpoint.Resume) > 0 {
		r, err := ckState.restore(cfg.Checkpoint.Resume)
		if err != nil {
			return nil, fmt.Errorf("fl: resume: %w", err)
		}
		startRound = r
	}
	completed := startRound

	for round := startRound; round < cfg.Rounds; round++ {
		// Virtual time at which this round starts; all spans for the round
		// are anchored to it, so traces never depend on wall clock.
		roundStart := res.WallClockSeconds
		info := selection.RoundInfo{Round: round, Work: refWork, DeadlineSec: deadline}
		var ids []int
		emptyRound := false
		withPhase("select", func() {
			if useLazySel {
				// Lazy selection probes availability itself — an O(selected)
				// walk instead of the eager path's O(population) check-in scan.
				ids = lazySel.SelectLazy(info, p, cfg.ClientsPerRound)
				emptyRound = len(ids) == 0
			} else {
				// Real FL servers dispatch only to clients that checked in:
				// filter the pool to currently-available devices. Clients can
				// still drop out mid-round if they go offline after selection.
				checkedIn := make([]*device.Client, 0, len(pop))
				for _, c := range pop {
					if c.ResourcesAt(round).Available {
						checkedIn = append(checkedIn, c)
					}
				}
				if len(checkedIn) == 0 {
					emptyRound = true
				} else {
					ids = sel.Select(info, checkedIn, cfg.ClientsPerRound)
				}
			}
		})
		if emptyRound {
			completed = round + 1
			sampleRoundTimeline(cfg.Timeline, ctrl, round, res.WallClockSeconds,
				obs.SeriesValue{Name: "round_selected"},
				obs.SeriesValue{Name: "round_completed"},
				obs.SeriesValue{Name: "round_dropped"},
				obs.SeriesValue{Name: "round_wall_seconds"})
			if stop, err := ckState.boundary(completed); err != nil {
				return nil, err
			} else if stop {
				break
			}
			continue
		}
		eo.span(obs.Span{T: roundStart, Kind: "select", Round: round, Client: -1})
		eo.selected.Add(int64(len(ids)))

		// Dispatch pass: acquire (derive + pin) each selected client and
		// its shard, snapshot resources, and let the controller decide, in
		// selection order, before anything executes. All decisions in a
		// round therefore observe controller state as of the round start,
		// and workers receive fully-resolved jobs — they never touch the
		// population caches.
		jobs := make([]syncJob, len(ids))
		for slot, id := range ids {
			c := p.AcquireClient(id)
			shard := p.AcquireShard(id)
			snap := c.ResourcesAt(round)
			jobs[slot] = syncJob{
				id:        id,
				client:    c,
				train:     shard.Train,
				localTest: shard.LocalTest,
				tech:      ctrl.Decide(round, c, snap, hfDiff[id]),
			}
			eo.decide(jobs[slot].tech)
		}
		eo.span(obs.Span{T: roundStart, Kind: "decide", Round: round, Client: -1})
		// Jobs offered per fan-out — deliberately not busy workers, which
		// would vary with Parallelism and break cross-P byte identity.
		eo.fanoutJobs.Observe(float64(len(jobs)))

		// Fan-out: per-client cost-model execution and local training
		// against a frozen snapshot of the global parameters. Concurrent
		// device.Execute calls are safe only across distinct clients, so a
		// duplicate-bearing selection degrades to the sequential schedule.
		par := cfg.Parallelism
		if hasDuplicateIDs(ids) {
			par = 1
		}
		pool.ensure(par, len(jobs))
		// Parameters() is a zero-copy view; it is safe to share across the
		// fan-out because the global model is frozen until applyAggregate.
		globalParams := global.Parameters()
		results := make([]syncResult, len(jobs))
		withPhase("train", func() {
			forEachSlot(len(jobs), par, func(worker, slot int) {
				j := jobs[slot]
				work := workSpecFor(spec, len(j.train), cfg.Epochs)
				out, err := device.Execute(j.client, round, work, j.tech, deadline)
				if err != nil {
					results[slot].err = err
					return
				}
				results[slot].out = out
				if !out.Completed {
					return
				}
				eo.trainCalls.Inc()
				lt, err := trainLocal(pool.ctx(worker), pool.delta(slot), global,
					globalParams, j.train, j.localTest, j.tech, cfg, round, j.id)
				if err != nil {
					results[slot].err = err
					return
				}
				results[slot].lt = lt
				results[slot].trained = true
			})
		})

		// Collect pass: apply every order-sensitive side effect in
		// selection order on this goroutine. Ledger, selector, controller,
		// and logger stay single-threaded by construction.
		var deltas []tensor.Vector
		var weights []float64
		var roundWall float64
		anyTimeout := false
		for slot, j := range jobs {
			r := results[slot]
			if r.err != nil {
				return nil, r.err
			}
			out := r.out
			res.Ledger.Record(j.id, j.tech, out)
			eo.dev.Record(out)
			eo.clientSpans(roundStart, round, j.id, j.tech, out)
			if out.Reason == device.DropDeadline {
				anyTimeout = true
				hfDiff[j.id] = out.DeadlineDiff
			} else if out.Completed {
				hfDiff[j.id] = 0
			}

			var statUtil, accImprove float64
			if r.trained {
				deltas = append(deltas, r.lt.delta)
				weights = append(weights, r.lt.weight)
				statUtil = r.lt.statUtility
				accImprove = r.lt.accImprove
				if out.Cost.TotalSeconds > roundWall {
					roundWall = out.Cost.TotalSeconds
				}
			}
			sel.Observe(selection.Feedback{ClientID: j.id, Round: round, Outcome: out, StatUtility: statUtil})
			ctrl.Feedback(round, j.client, j.tech, out, accImprove)
			cfg.Logger.LogClientRound(clientRoundLog(round, j.id, j.tech, out, accImprove))
		}

		var aggErr error
		withPhase("aggregate", func() { aggErr = applyAggregate(global, deltas, weights) })
		if aggErr != nil {
			return nil, aggErr
		}
		// The round's pins are dropped only after every side effect that
		// needs the client instance has run.
		for _, id := range ids {
			p.Release(id)
		}
		if anyTimeout {
			roundWall = deadline
		}
		res.Ledger.WallClockSeconds += roundWall
		res.WallClockSeconds += roundWall
		eo.span(obs.Span{T: roundStart + roundWall, Kind: "aggregate", Round: round, Client: -1})
		eo.rounds.Inc()
		eo.completed.Add(int64(len(deltas)))
		eo.dropped.Add(int64(len(ids) - len(deltas)))
		eo.roundWall.Observe(roundWall)

		summary := RoundSummaryLog{
			Round:       round,
			Selected:    len(ids),
			Completed:   len(deltas),
			Dropped:     len(ids) - len(deltas),
			WallSeconds: roundWall,
		}
		if (round+1)%cfg.EvalEvery == 0 || round == cfg.Rounds-1 {
			acc, _ := global.Evaluate(p.GlobalTest())
			res.GlobalAccHistory = append(res.GlobalAccHistory, acc)
			res.EvalRounds = append(res.EvalRounds, round+1)
			summary.GlobalAcc = &acc
			eo.evals.Inc()
			eo.globalAcc.Set(acc)
		}
		cfg.Logger.LogRoundSummary(summary)
		// Publish population-cache telemetry at this schedule-determined
		// point so exposition bytes never depend on Parallelism.
		p.FlushObs()
		completed = round + 1
		// Sample before the checkpoint hook so every snapshot carries the
		// timeline through its own round — the stitching invariant.
		sampleRoundTimeline(cfg.Timeline, ctrl, round, res.WallClockSeconds,
			obs.SeriesValue{Name: "round_selected", Value: float64(len(ids))},
			obs.SeriesValue{Name: "round_completed", Value: float64(len(deltas))},
			obs.SeriesValue{Name: "round_dropped", Value: float64(len(ids) - len(deltas))},
			obs.SeriesValue{Name: "round_wall_seconds", Value: roundWall})
		if stop, err := ckState.boundary(completed); err != nil {
			return nil, err
		} else if stop {
			break
		}
	}

	res.CompletedRounds = completed
	res.SimClockSeconds = res.WallClockSeconds
	res.FinalClientAccs = evaluateClientsPop(global, p, cfg.EvalClients)
	res.FinalAccStats = metrics.ComputeAccuracyStats(res.FinalClientAccs)
	res.FinalGlobalAcc, _ = global.Evaluate(p.GlobalTest())
	res.FinalParams = global.Parameters().Clone()
	p.FlushObs()
	return res, nil
}
