package fl

import (
	"bytes"
	"container/heap"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"

	"floatfl/internal/checkpoint"
	"floatfl/internal/device"
	"floatfl/internal/metrics"
	"floatfl/internal/nn"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/population"
	"floatfl/internal/rngstate"
	"floatfl/internal/selection"
	"floatfl/internal/tensor"
)

// Snapshot kinds written by the two engines. Decode enforces them, so a
// sync snapshot can never silently resume an async run (or vice versa).
const (
	SyncSnapshotKind  = "engine-sync"
	AsyncSnapshotKind = "engine-async"
)

// CheckpointConfig wires crash-safe checkpointing into a run. All hooks
// are polled or invoked only at the engines' quiescent boundaries (end of
// round for the sync engine, end of aggregation barrier for the async
// engine), on the engine goroutine — implementations need no locking
// beyond their own if they are shared with other goroutines.
type CheckpointConfig struct {
	// Every snapshots after each N completed rounds (sync) or aggregations
	// (async), counted from round zero — absolute, so a resumed run
	// snapshots on the same schedule as an uninterrupted one. Zero disables
	// periodic snapshots.
	Every int
	// Sink receives each encoded snapshot (a framed, checksummed blob
	// suitable for checkpoint.WriteFile's payload — it is already framed;
	// write it to disk as-is). A snapshot error aborts the run. Nil
	// disables snapshotting entirely (Every and Request are then inert).
	Sink func(snapshot []byte) error
	// Request is polled at every boundary; returning true triggers an
	// immediate snapshot (live /v1/snapshot-style control). Nil means
	// never.
	Request func() bool
	// Stop is polled at every boundary; returning true takes a final
	// snapshot (when Sink is set) and ends the run gracefully with a
	// partial Result and a nil error — Result.CompletedRounds tells the
	// caller how far it got. Nil means never.
	Stop func() bool
	// Resume, when non-empty, restores this snapshot (as produced via
	// Sink) before the first round. The run's configuration must match the
	// snapshot's fingerprint, and the population must be freshly
	// constructed (no trace steps generated, nothing resident).
	Resume []byte
}

// fingerprint pins every configuration dimension that affects the
// deterministic schedule. Rounds is deliberately absent — resuming with a
// larger Rounds is the supported way to extend a run — as are Parallelism
// (bit-identical by construction) and the checkpoint knobs themselves.
type fingerprint struct {
	Engine             string  `json:"engine"`
	Arch               string  `json:"arch"`
	Seed               int64   `json:"seed"`
	ClientsPerRound    int     `json:"clients_per_round"`
	Epochs             int     `json:"epochs"`
	BatchSize          int     `json:"batch_size"`
	LR                 float64 `json:"lr"`
	GradClip           float64 `json:"grad_clip"`
	DeadlineSec        float64 `json:"deadline_sec"`
	DeadlinePercentile float64 `json:"deadline_percentile"`
	EvalEvery          int     `json:"eval_every"`
	Concurrency        int     `json:"concurrency"`
	BufferK            int     `json:"buffer_k"`
	StalenessCap       int     `json:"staleness_cap"`
	Backend            string  `json:"backend"`
	ProxMu             float64 `json:"prox_mu"`
	EvalClients        int     `json:"eval_clients"`
	Population         int     `json:"population"`
	LazySelection      bool    `json:"lazy_selection"`
	Selector           string  `json:"selector"`
	Controller         string  `json:"controller"`
}

// mismatch returns a field-level CompatError when two fingerprints differ
// (nil when identical).
func (got fingerprint) mismatch(want fingerprint) error {
	if got == want {
		return nil
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	var gm, wm map[string]json.RawMessage
	_ = json.Unmarshal(gb, &gm)
	_ = json.Unmarshal(wb, &wm)
	keys := make([]string, 0, len(gm))
	for k := range gm {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !bytes.Equal(gm[k], wm[k]) {
			return &checkpoint.CompatError{Field: k, Got: string(gm[k]), Want: string(wm[k])}
		}
	}
	return &checkpoint.CompatError{Field: "fingerprint", Got: string(gb), Want: string(wb)}
}

// encodeParams serializes a parameter vector exactly: little-endian IEEE
// 754 bits, base64. Bit-exact for every value including NaN payloads, and
// ~3x more compact than decimal JSON.
func encodeParams(v tensor.Vector) string {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// decodeParams inverts encodeParams, enforcing the expected length.
func decodeParams(s string, want int) (tensor.Vector, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, &checkpoint.FormatError{Reason: "parameter blob is not base64: " + err.Error()}
	}
	if len(raw) != 8*want {
		return nil, &checkpoint.CompatError{Field: "parameter count",
			Got: strconv.Itoa(len(raw) / 8), Want: strconv.Itoa(want)}
	}
	v := make(tensor.Vector, want)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return v, nil
}

// captureStateful captures v's checkpoint state when it implements
// checkpoint.Stateful (structurally); stateless components contribute nil.
func captureStateful(v any) ([]byte, error) {
	if s, ok := v.(checkpoint.Stateful); ok {
		return s.CheckpointState()
	}
	return nil, nil
}

// restoreStateful applies a captured blob to v. A blob for a stateless
// component is a format error (the fingerprint matched, so the component
// names agree — the build must have lost the implementation).
func restoreStateful(v any, blob []byte, what string) error {
	if len(blob) == 0 {
		return nil
	}
	s, ok := v.(checkpoint.Stateful)
	if !ok {
		return &checkpoint.FormatError{Reason: what + " snapshot present but the component is stateless"}
	}
	return s.RestoreCheckpoint(blob)
}

// hfDiffOut converts the sparse human-feedback map to its serialized form
// (string keys marshal with sorted keys — deterministic bytes).
func hfDiffOut(m map[int]float64) map[string]float64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]float64, len(m))
	for id, v := range m {
		out[strconv.Itoa(id)] = v
	}
	return out
}

// hfDiffIn inverts hfDiffOut.
func hfDiffIn(m map[string]float64) (map[int]float64, error) {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		id, err := strconv.Atoi(k)
		if err != nil {
			return nil, &checkpoint.FormatError{Reason: "bad hf-diff client key " + strconv.Quote(k)}
		}
		out[id] = v
	}
	return out, nil
}

// runSnap is the state shared by both engines' snapshots.
type runSnap struct {
	Fingerprint fingerprint          `json:"fingerprint"`
	Completed   int                  `json:"completed"` // rounds (sync) or aggregations (async)
	Wall        float64              `json:"wall_clock_seconds"`
	Params      string               `json:"params"`
	ParamCount  int                  `json:"param_count"`
	AccHistory  []float64            `json:"acc_history,omitempty"`
	EvalRounds  []int                `json:"eval_rounds,omitempty"`
	HFDiff      map[string]float64   `json:"hf_diff,omitempty"`
	Draws       uint64               `json:"draws"`
	Ledger      *metrics.LedgerState `json:"ledger"`
	Selector    []byte               `json:"selector,omitempty"`
	Controller  []byte               `json:"controller,omitempty"`
	Population  *population.State    `json:"population"`
	Obs         *obs.Snapshot        `json:"obs,omitempty"`
	Timeline    []byte               `json:"timeline,omitempty"`
}

// taskSnap is one in-flight async task. The heap's backing array is
// serialized in array order and restored verbatim: heap.Init on an
// already-valid heap performs no swaps, so pop order — including ties on
// finishAt — is preserved exactly.
type taskSnap struct {
	ClientID     int            `json:"client_id"`
	StartVersion int            `json:"start_version"`
	FinishAt     float64        `json:"finish_at"`
	Tech         opt.Technique  `json:"tech"`
	Outcome      device.Outcome `json:"outcome"`
}

// versionSnap is one retained global-parameter version of the async
// engine's staleness window.
type versionSnap struct {
	Version int    `json:"version"`
	Params  string `json:"params"`
}

// asyncSnap extends runSnap with the async engine's event-loop state.
type asyncSnap struct {
	runSnap
	Version       int           `json:"version"`
	Now           float64       `json:"now"`
	EvalCountdown int           `json:"eval_countdown"`
	Versions      []versionSnap `json:"versions"`
	Tasks         []taskSnap    `json:"tasks,omitempty"`
}

// syncRunState bundles the sync engine's mutable loop state so the
// snapshot/restore seams can live here rather than inline in the loop.
type syncRunState struct {
	cfg        Config
	p          *population.Population
	sel        selection.Selector
	ctrl       Controller
	global     *nn.Model
	res        *Result
	hfDiff     map[int]float64
	src        *rngstate.Source
	deadline   float64
	useLazySel bool
}

func (s *syncRunState) fingerprint() fingerprint {
	return fingerprint{
		Engine:             "sync",
		Arch:               s.cfg.Arch,
		Seed:               s.cfg.Seed,
		ClientsPerRound:    s.cfg.ClientsPerRound,
		Epochs:             s.cfg.Epochs,
		BatchSize:          s.cfg.BatchSize,
		LR:                 s.cfg.LR,
		GradClip:           s.cfg.GradClip,
		DeadlineSec:        s.deadline,
		DeadlinePercentile: s.cfg.DeadlinePercentile,
		EvalEvery:          s.cfg.EvalEvery,
		Backend:            s.cfg.Backend,
		ProxMu:             s.cfg.ProxMu,
		EvalClients:        s.cfg.EvalClients,
		Population:         s.p.NumClients(),
		LazySelection:      s.useLazySel,
		Selector:           s.sel.Name(),
		Controller:         s.ctrl.Name(),
	}
}

// snapshot captures the complete run state at the end-of-round boundary.
func (s *syncRunState) snapshot(roundsDone int) ([]byte, error) {
	snap, err := s.buildRunSnap(roundsDone)
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	return checkpoint.EncodeBytes(SyncSnapshotKind, payload)
}

func (s *syncRunState) buildRunSnap(roundsDone int) (runSnap, error) {
	params := s.global.Parameters()
	snap := runSnap{
		Fingerprint: s.fingerprint(),
		Completed:   roundsDone,
		Wall:        s.res.WallClockSeconds,
		Params:      encodeParams(params),
		ParamCount:  len(params),
		AccHistory:  append([]float64(nil), s.res.GlobalAccHistory...),
		EvalRounds:  append([]int(nil), s.res.EvalRounds...),
		HFDiff:      hfDiffOut(s.hfDiff),
		Draws:       s.src.Pos(),
		Ledger:      s.res.Ledger.CheckpointState(),
	}
	var err error
	if snap.Selector, err = captureStateful(s.sel); err != nil {
		return snap, err
	}
	if snap.Controller, err = captureStateful(s.ctrl); err != nil {
		return snap, err
	}
	if snap.Population, err = s.p.CheckpointState(); err != nil {
		return snap, err
	}
	if s.cfg.Metrics != nil {
		o := s.cfg.Metrics.Snapshot()
		snap.Obs = &o
	}
	if s.cfg.Timeline != nil {
		if snap.Timeline, err = s.cfg.Timeline.CheckpointState(); err != nil {
			return snap, err
		}
	}
	return snap, nil
}

// restore applies a snapshot to a freshly initialized run, returning the
// round index to resume from. The decode + validation phase completes
// before any engine state is mutated, so a corrupt or incompatible
// snapshot leaves the run untouched.
func (s *syncRunState) restore(data []byte) (int, error) {
	payload, err := checkpoint.DecodeBytes(data, SyncSnapshotKind)
	if err != nil {
		return 0, err
	}
	var snap runSnap
	if err := json.Unmarshal(payload, &snap); err != nil {
		return 0, &checkpoint.FormatError{Reason: "sync snapshot payload: " + err.Error()}
	}
	if err := snap.Fingerprint.mismatch(s.fingerprint()); err != nil {
		return 0, err
	}
	if snap.Completed > s.cfg.Rounds {
		return 0, &checkpoint.CompatError{Field: "completed rounds",
			Got: strconv.Itoa(snap.Completed), Want: "<= " + strconv.Itoa(s.cfg.Rounds)}
	}
	params, err := decodeParams(snap.Params, len(s.global.Parameters()))
	if err != nil {
		return 0, err
	}
	hf, err := hfDiffIn(snap.HFDiff)
	if err != nil {
		return 0, err
	}

	// Mutation phase. Population drain logs must land before anything
	// probes a trace; the LRU/stat overwrite happens last because nothing
	// is pinned at a sync boundary.
	if err := s.p.RestoreDrainLogs(snap.Population); err != nil {
		return 0, err
	}
	if err := s.global.SetParameters(params); err != nil {
		return 0, err
	}
	if err := s.res.Ledger.RestoreCheckpoint(snap.Ledger); err != nil {
		return 0, err
	}
	s.res.WallClockSeconds = snap.Wall
	s.res.GlobalAccHistory = append([]float64(nil), snap.AccHistory...)
	s.res.EvalRounds = append([]int(nil), snap.EvalRounds...)
	for id, v := range hf {
		s.hfDiff[id] = v
	}
	if err := restoreStateful(s.sel, snap.Selector, "selector"); err != nil {
		return 0, err
	}
	if err := restoreStateful(s.ctrl, snap.Controller, "controller"); err != nil {
		return 0, err
	}
	s.p.RestoreResidency(snap.Population)
	if s.cfg.Metrics != nil && snap.Obs != nil {
		if err := s.cfg.Metrics.RestoreSnapshot(*snap.Obs); err != nil {
			return 0, err
		}
	}
	if s.cfg.Timeline != nil && len(snap.Timeline) > 0 {
		if err := s.cfg.Timeline.RestoreCheckpoint(snap.Timeline); err != nil {
			return 0, err
		}
	}
	s.src.SeekTo(snap.Draws)
	return snap.Completed, nil
}

// boundary runs the checkpoint hooks at a quiescent point. roundsDone is
// the absolute number of completed rounds. It reports whether the run
// should stop gracefully.
func (s *syncRunState) boundary(roundsDone int) (bool, error) {
	return checkpointBoundary(s.cfg.Checkpoint, roundsDone, s.snapshot)
}

// asyncRunState bundles the async engine's mutable loop state. Pointer
// fields alias the loop's local variables so snapshots always observe the
// live values.
type asyncRunState struct {
	cfg           Config
	p             *population.Population
	ctrl          Controller
	global        *nn.Model
	res           *Result
	hfDiff        map[int]float64
	src           *rngstate.Source
	timeout       float64
	useLazyLaunch bool

	versions      map[int]tensor.Vector
	version       *int
	now           *float64
	evalCountdown *int
	tasks         *taskHeap
	inFlight      map[int]bool
}

func (s *asyncRunState) fingerprint() fingerprint {
	return fingerprint{
		Engine:             "async",
		Arch:               s.cfg.Arch,
		Seed:               s.cfg.Seed,
		ClientsPerRound:    s.cfg.ClientsPerRound,
		Epochs:             s.cfg.Epochs,
		BatchSize:          s.cfg.BatchSize,
		LR:                 s.cfg.LR,
		GradClip:           s.cfg.GradClip,
		DeadlineSec:        s.timeout,
		DeadlinePercentile: s.cfg.DeadlinePercentile,
		EvalEvery:          s.cfg.EvalEvery,
		Concurrency:        s.cfg.Concurrency,
		BufferK:            s.cfg.BufferK,
		StalenessCap:       s.cfg.StalenessCap,
		Backend:            s.cfg.Backend,
		ProxMu:             s.cfg.ProxMu,
		EvalClients:        s.cfg.EvalClients,
		Population:         s.p.NumClients(),
		LazySelection:      s.useLazyLaunch,
		Selector:           "fedbuff",
		Controller:         s.ctrl.Name(),
	}
}

// snapshot captures the complete run state at the aggregation-barrier
// boundary. The buffered-job and pending-event queues are empty there by
// construction, so in-flight tasks are the only extra event-loop state.
func (s *asyncRunState) snapshot(aggregations int) ([]byte, error) {
	params := s.global.Parameters()
	snap := asyncSnap{
		runSnap: runSnap{
			Fingerprint: s.fingerprint(),
			Completed:   aggregations,
			Wall:        *s.now,
			Params:      encodeParams(params),
			ParamCount:  len(params),
			AccHistory:  append([]float64(nil), s.res.GlobalAccHistory...),
			EvalRounds:  append([]int(nil), s.res.EvalRounds...),
			HFDiff:      hfDiffOut(s.hfDiff),
			Draws:       s.src.Pos(),
			Ledger:      s.res.Ledger.CheckpointState(),
		},
		Version:       *s.version,
		Now:           *s.now,
		EvalCountdown: *s.evalCountdown,
	}
	var err error
	if snap.Controller, err = captureStateful(s.ctrl); err != nil {
		return nil, err
	}
	if snap.Population, err = s.p.CheckpointState(); err != nil {
		return nil, err
	}
	if s.cfg.Metrics != nil {
		o := s.cfg.Metrics.Snapshot()
		snap.Obs = &o
	}
	if s.cfg.Timeline != nil {
		if snap.Timeline, err = s.cfg.Timeline.CheckpointState(); err != nil {
			return nil, err
		}
	}
	vs := make([]int, 0, len(s.versions))
	for v := range s.versions {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	for _, v := range vs {
		snap.Versions = append(snap.Versions, versionSnap{Version: v, Params: encodeParams(s.versions[v])})
	}
	for _, t := range *s.tasks {
		snap.Tasks = append(snap.Tasks, taskSnap{
			ClientID:     t.clientID,
			StartVersion: t.startVersion,
			FinishAt:     t.finishAt,
			Tech:         t.tech,
			Outcome:      t.outcome,
		})
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	return checkpoint.EncodeBytes(AsyncSnapshotKind, payload)
}

// restore applies a snapshot to a freshly initialized async run, returning
// the aggregation count to resume from. Decode + validation completes
// before any mutation; then state lands in dependency order — drain logs,
// params/versions, ledger/result, controller, task re-pinning, unpinned
// residency, metric overwrite, RNG seek.
func (s *asyncRunState) restore(data []byte) (int, error) {
	payload, err := checkpoint.DecodeBytes(data, AsyncSnapshotKind)
	if err != nil {
		return 0, err
	}
	var snap asyncSnap
	if err := json.Unmarshal(payload, &snap); err != nil {
		return 0, &checkpoint.FormatError{Reason: "async snapshot payload: " + err.Error()}
	}
	if err := snap.Fingerprint.mismatch(s.fingerprint()); err != nil {
		return 0, err
	}
	if snap.Completed > s.cfg.Rounds {
		return 0, &checkpoint.CompatError{Field: "completed aggregations",
			Got: strconv.Itoa(snap.Completed), Want: "<= " + strconv.Itoa(s.cfg.Rounds)}
	}
	dim := len(s.global.Parameters())
	params, err := decodeParams(snap.Params, dim)
	if err != nil {
		return 0, err
	}
	versions := make(map[int]tensor.Vector, len(snap.Versions))
	for _, v := range snap.Versions {
		pv, err := decodeParams(v.Params, dim)
		if err != nil {
			return 0, err
		}
		versions[v.Version] = pv
	}
	n := s.p.NumClients()
	for _, t := range snap.Tasks {
		if t.ClientID < 0 || t.ClientID >= n {
			return 0, &checkpoint.FormatError{Reason: fmt.Sprintf("in-flight task for client %d, population has %d", t.ClientID, n)}
		}
	}
	hf, err := hfDiffIn(snap.HFDiff)
	if err != nil {
		return 0, err
	}

	// Mutation phase.
	if err := s.p.RestoreDrainLogs(snap.Population); err != nil {
		return 0, err
	}
	if err := s.global.SetParameters(params); err != nil {
		return 0, err
	}
	for v := range s.versions {
		delete(s.versions, v)
	}
	for v, pv := range versions {
		s.versions[v] = pv
	}
	if err := s.res.Ledger.RestoreCheckpoint(snap.Ledger); err != nil {
		return 0, err
	}
	s.res.GlobalAccHistory = append([]float64(nil), snap.AccHistory...)
	s.res.EvalRounds = append([]int(nil), snap.EvalRounds...)
	for id, v := range hf {
		s.hfDiff[id] = v
	}
	if err := restoreStateful(s.ctrl, snap.Controller, "controller"); err != nil {
		return 0, err
	}
	// Re-pin every in-flight client before warming the unpinned LRU:
	// Acquire passes transiently through the unpinned list, so pinning
	// into an already-warmed full cache would momentarily overflow it and
	// evict an entry the capture knew was resident.
	*s.tasks = (*s.tasks)[:0]
	for _, t := range snap.Tasks {
		c := s.p.AcquireClient(t.ClientID)
		shard := s.p.AcquireShard(t.ClientID)
		*s.tasks = append(*s.tasks, asyncTask{
			clientID:     t.ClientID,
			client:       c,
			train:        shard.Train,
			localTest:    shard.LocalTest,
			startVersion: t.StartVersion,
			finishAt:     t.FinishAt,
			outcome:      t.Outcome,
			tech:         t.Tech,
		})
		s.inFlight[t.ClientID] = true
	}
	heap.Init(s.tasks)
	s.p.RestoreResidency(snap.Population)
	if s.cfg.Metrics != nil && snap.Obs != nil {
		if err := s.cfg.Metrics.RestoreSnapshot(*snap.Obs); err != nil {
			return 0, err
		}
	}
	if s.cfg.Timeline != nil && len(snap.Timeline) > 0 {
		if err := s.cfg.Timeline.RestoreCheckpoint(snap.Timeline); err != nil {
			return 0, err
		}
	}
	*s.version = snap.Version
	*s.now = snap.Now
	*s.evalCountdown = snap.EvalCountdown
	s.src.SeekTo(snap.Draws)
	return snap.Completed, nil
}

// boundary runs the checkpoint hooks at the aggregation barrier.
func (s *asyncRunState) boundary(aggregations int) (bool, error) {
	return checkpointBoundary(s.cfg.Checkpoint, aggregations, s.snapshot)
}

// checkpointBoundary implements the shared hook protocol: poll Stop, then
// decide whether a snapshot is due (stop with a sink, the periodic
// schedule, or an explicit request) and deliver it. Returns whether the
// run should end gracefully.
func checkpointBoundary(ck *CheckpointConfig, done int, snapshot func(int) ([]byte, error)) (bool, error) {
	if ck == nil {
		return false, nil
	}
	stop := ck.Stop != nil && ck.Stop()
	want := false
	if ck.Sink != nil {
		want = stop ||
			(ck.Every > 0 && done%ck.Every == 0) ||
			(ck.Request != nil && ck.Request())
	}
	if want {
		blob, err := snapshot(done)
		if err != nil {
			return stop, fmt.Errorf("fl: checkpoint at %d: %w", done, err)
		}
		if err := ck.Sink(blob); err != nil {
			return stop, fmt.Errorf("fl: checkpoint sink at %d: %w", done, err)
		}
	}
	return stop, nil
}
