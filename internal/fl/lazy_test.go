package fl

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"floatfl/internal/device"
	"floatfl/internal/metrics"
	"floatfl/internal/obs"
	"floatfl/internal/population"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

// lazyPopConfig is the small-scale lazy population every equivalence test
// uses: large enough to exercise selection and dropouts, small enough to
// materialize for the eager reference, with a cache far smaller than the
// population so eviction/re-derivation is constantly exercised.
func lazyPopConfig(clients int) population.Config {
	return population.Config{
		Dataset:      "femnist",
		Clients:      clients,
		Alpha:        0.1,
		Seed:         29,
		Scenario:     trace.ScenarioDynamic,
		CacheClients: 4,
	}
}

// lazyEagerPair builds a lazy population and an eager population backed by
// its materialization — the same client universe held two different ways.
func lazyEagerPair(t *testing.T, clients int) (lazy, eager *population.Population) {
	t.Helper()
	lazy, err := population.NewLazy(lazyPopConfig(clients))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := population.NewLazy(lazyPopConfig(clients))
	if err != nil {
		t.Fatal(err)
	}
	fed, pop := ref.Materialize()
	eager, err = population.WrapEager(fed, pop)
	if err != nil {
		t.Fatal(err)
	}
	return lazy, eager
}

// ledgerAggregates flattens a ledger's mode-independent surface so sparse
// (lazy) and dense (eager) ledgers can be compared for semantic equality.
type ledgerAggregates struct {
	totalRounds, totalDrops, discarded        int
	neverSel, neverComp, gini, jain, dropRate float64
	wall                                      float64
	wasted                                    metrics.Inefficiency
}

func aggregatesOf(l *metrics.Ledger) ledgerAggregates {
	return ledgerAggregates{
		totalRounds: l.TotalRounds,
		totalDrops:  l.TotalDrops,
		discarded:   l.Discarded,
		neverSel:    l.NeverSelectedFraction(),
		neverComp:   l.NeverCompletedFraction(),
		gini:        l.SelectionGini(),
		jain:        l.SelectionJainIndex(),
		dropRate:    l.DropRate(),
		wall:        l.WallClockSeconds,
		wasted:      l.TotalInefficiency(),
	}
}

// assertLazyEagerIdentical requires bit-for-bit equality of everything the
// two runs report except the ledger representation, which is compared
// through its semantic surface (aggregates + per-client tallies).
func assertLazyEagerIdentical(t *testing.T, label string, lazyRes, eagerRes *Result, clients int) {
	t.Helper()
	if !reflect.DeepEqual(lazyRes.FinalParams, eagerRes.FinalParams) {
		t.Errorf("%s: FinalParams differ — lazy derivation is not bit-identical to eager state", label)
	}
	if !reflect.DeepEqual(lazyRes.GlobalAccHistory, eagerRes.GlobalAccHistory) {
		t.Errorf("%s: GlobalAccHistory differs:\n  lazy=%v\n  eager=%v", label, lazyRes.GlobalAccHistory, eagerRes.GlobalAccHistory)
	}
	if !reflect.DeepEqual(lazyRes.FinalClientAccs, eagerRes.FinalClientAccs) {
		t.Errorf("%s: FinalClientAccs differ", label)
	}
	if lazyRes.FinalGlobalAcc != eagerRes.FinalGlobalAcc {
		t.Errorf("%s: FinalGlobalAcc %v vs %v", label, lazyRes.FinalGlobalAcc, eagerRes.FinalGlobalAcc)
	}
	if lazyRes.WallClockSeconds != eagerRes.WallClockSeconds {
		t.Errorf("%s: WallClockSeconds %v vs %v", label, lazyRes.WallClockSeconds, eagerRes.WallClockSeconds)
	}
	if lazyRes.DeadlineSec != eagerRes.DeadlineSec {
		t.Errorf("%s: DeadlineSec %v vs %v", label, lazyRes.DeadlineSec, eagerRes.DeadlineSec)
	}
	if !lazyRes.Ledger.Sparse() {
		t.Errorf("%s: lazy run should carry a sparse ledger", label)
	}
	if eagerRes.Ledger.Sparse() {
		t.Errorf("%s: eager run should carry a dense ledger", label)
	}
	if la, ea := aggregatesOf(lazyRes.Ledger), aggregatesOf(eagerRes.Ledger); la != ea {
		t.Errorf("%s: ledger aggregates differ:\n  lazy=%+v\n  eager=%+v", label, la, ea)
	}
	for id := 0; id < clients; id++ {
		if lazyRes.Ledger.SelectedCount(id) != eagerRes.Ledger.SelectedCount(id) {
			t.Fatalf("%s: client %d selected %d lazy vs %d eager", label, id,
				lazyRes.Ledger.SelectedCount(id), eagerRes.Ledger.SelectedCount(id))
		}
		if lazyRes.Ledger.CompletedCount(id) != eagerRes.Ledger.CompletedCount(id) {
			t.Fatalf("%s: client %d completed %d lazy vs %d eager", label, id,
				lazyRes.Ledger.CompletedCount(id), eagerRes.Ledger.CompletedCount(id))
		}
	}
}

// TestRunSyncLazyMatchesEager is the tentpole acceptance test: a lazy run
// (tiny cache, constant eviction and re-derivation) must produce the same
// bits as an eager run over the materialized population — final
// parameters, accuracy trajectories, wall clock, per-client ledger, and
// the JSONL run log. forceLazySelection routes the eager run through the
// same SelectLazy schedule so the comparison isolates state derivation.
func TestRunSyncLazyMatchesEager(t *testing.T) {
	const clients = 48
	for _, selName := range []string{"random", "oort"} {
		t.Run(selName, func(t *testing.T) {
			newSel := func() selection.Selector {
				if selName == "oort" {
					return selection.NewOort(selection.OortConfig{Seed: 7})
				}
				return selection.NewRandom(7)
			}
			run := func(p *population.Population, forceLazy bool) (*Result, string) {
				var buf bytes.Buffer
				cfg := parSyncConfig(4)
				cfg.forceLazySelection = forceLazy
				cfg.Logger = NewJSONLLogger(&buf)
				res, err := RunSyncPop(p, newSel(), newFeedbackDriven(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res, buf.String()
			}
			lazy, eager := lazyEagerPair(t, clients)
			lazyRes, lazyLog := run(lazy, false)
			eagerRes, eagerLog := run(eager, true)
			assertLazyEagerIdentical(t, "sync "+selName, lazyRes, eagerRes, clients)
			if lazyLog != eagerLog {
				t.Errorf("JSONL logs differ (%d vs %d bytes)", len(lazyLog), len(eagerLog))
			}
		})
	}
}

// TestRunAsyncLazyMatchesEager mirrors the sync equivalence for the
// FedBuff engine: forceLazySelection routes the eager run through the same
// probe-budgeted permutation launcher, so both runs share the event
// schedule and must agree bit-for-bit.
func TestRunAsyncLazyMatchesEager(t *testing.T) {
	const clients = 48
	run := func(p *population.Population, forceLazy bool) (*Result, string) {
		var buf bytes.Buffer
		cfg := parSyncConfig(4)
		cfg.Rounds = 5
		cfg.Concurrency = 12
		cfg.BufferK = 4
		cfg.forceLazySelection = forceLazy
		cfg.Logger = NewJSONLLogger(&buf)
		res, err := RunAsyncPop(p, newFeedbackDriven(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	lazy, eager := lazyEagerPair(t, clients)
	lazyRes, lazyLog := run(lazy, false)
	eagerRes, eagerLog := run(eager, true)
	assertLazyEagerIdentical(t, "async", lazyRes, eagerRes, clients)
	if lazyLog != eagerLog {
		t.Errorf("JSONL logs differ (%d vs %d bytes)", len(lazyLog), len(eagerLog))
	}
}

// TestLazyTelemetryParallelismInvariant extends the determinism contract
// to the population-cache metrics: a lazy run's full exposition — engine
// counters plus pop_cache_* series — must be byte-identical across
// Parallelism, because cache traffic happens only on the single-threaded
// passes and is flushed at schedule-determined points.
func TestLazyTelemetryParallelismInvariant(t *testing.T) {
	run := func(par int) string {
		p, err := population.NewLazy(lazyPopConfig(48))
		if err != nil {
			t.Fatal(err)
		}
		cfg := parSyncConfig(par)
		cfg.Metrics = obs.NewRegistry()
		p.Instrument(cfg.Metrics)
		if _, err := RunSyncPop(p, selection.NewRandom(7), newFeedbackDriven(), cfg); err != nil {
			t.Fatal(err)
		}
		var mb bytes.Buffer
		if err := cfg.Metrics.WriteText(&mb); err != nil {
			t.Fatal(err)
		}
		return mb.String()
	}
	m1, m8 := run(1), run(8)
	if m1 != m8 {
		t.Errorf("lazy metrics exposition differs between P=1 and P=8:\n--- P=1 ---\n%s--- P=8 ---\n%s", m1, m8)
	}
	for _, series := range []string{
		`pop_cache_hits_total{kind="shard"}`,
		`pop_cache_misses_total{kind="device"}`,
		`pop_cache_evictions_total{kind="shard"}`,
		`pop_resident_clients{kind="device"}`,
		`pop_derive_samples_count`,
	} {
		if !strings.Contains(m1, series) {
			t.Errorf("exposition missing %s:\n%s", series, m1)
		}
	}
	// A 4-client cache under a 48-client population must actually evict —
	// a zero counter would mean the run never thrashed the cache and the
	// byte-equality above proved nothing about eviction accounting.
	if strings.Contains(m1, `pop_cache_evictions_total{kind="shard"} 0`+"\n") {
		t.Errorf("shard cache never evicted; exposition:\n%s", m1)
	}
}

// TestRunSyncPopLazyRequiresLazySelector pins the error path: a lazy
// population cannot run behind a selector that needs the dense pool.
func TestRunSyncPopLazyRequiresLazySelector(t *testing.T) {
	p, err := population.NewLazy(lazyPopConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunSyncPop(p, eagerOnlySelector{}, NoOpController{}, parSyncConfig(1))
	if err == nil || !strings.Contains(err.Error(), "LazySelector") {
		t.Fatalf("want LazySelector error, got %v", err)
	}
}

// eagerOnlySelector implements only the dense Selector interface.
type eagerOnlySelector struct{}

func (eagerOnlySelector) Name() string { return "eager-only" }
func (eagerOnlySelector) Select(selection.RoundInfo, []*device.Client, int) []int {
	return nil
}
func (eagerOnlySelector) Observe(selection.Feedback) {}
