package fl

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the engines' parallel execution layer. Both engines fan the
// per-client work of a round — device.Execute plus trainLocal, the two hot
// paths — out to a pool of Parallelism workers, and collect results into a
// slot-indexed array so everything order-sensitive (aggregation, ledger
// records, selector feedback, controller feedback, logging) is applied in
// the original dispatch order by a single goroutine.
//
// The determinism contract: for a fixed Config, Parallelism=N produces
// bit-identical results to Parallelism=1. Three properties guarantee it:
//
//  1. Per-client work is a pure function of per-client state. Each job
//     reads the shared global model only through Clone()/Parameters()
//     (never mutated during a fan-out) and mutates only its own client's
//     traces; its RNG is derived from (Seed, round, clientID), never
//     shared.
//  2. Results land in slots indexed by dispatch order, so the collector
//     applies them in the same sequence regardless of which worker
//     finished first.
//  3. Every stateful callback (metrics.Ledger, selection.Selector.Observe,
//     Controller.Feedback, RoundLogger) runs on the collector goroutine
//     only — they stay single-threaded by construction.
func defaultParallelism() int { return runtime.NumCPU() }

// forEachSlot runs fn(worker, slot) for every slot in [0, n) across up to
// `parallelism` goroutines. worker identifies the executing goroutine
// (0 ≤ worker < parallelism) so fn can use per-worker scratch (see
// contextPool); fn must only write state owned by its slot or its worker.
// The call returns once every slot has run. parallelism <= 1 runs inline
// as worker 0, which is the reference sequential schedule the parallel
// schedules must match bit-for-bit.
func forEachSlot(n, parallelism int, fn func(worker, slot int)) {
	if n <= 0 {
		return
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// hasDuplicateIDs reports whether a selection contains the same client
// twice. Concurrent device.Execute calls are only safe across *distinct*
// clients (each call mutates that client's battery/availability traces),
// so a duplicate-bearing selection falls back to the sequential schedule —
// which is bit-identical anyway.
func hasDuplicateIDs(ids []int) bool {
	seen := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		if _, ok := seen[id]; ok {
			return true
		}
		seen[id] = struct{}{}
	}
	return false
}
