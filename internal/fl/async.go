package fl

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/metrics"
	"floatfl/internal/nn"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/population"
	"floatfl/internal/rngstate"
	"floatfl/internal/selection"
	"floatfl/internal/tensor"
)

// asyncTask is one in-flight client execution in the FedBuff simulation.
// The client pointer and shard slices are pinned at launch and released
// when the task's barrier event is delivered (or in the end-of-run drain),
// so eviction can never invalidate an in-flight task.
type asyncTask struct {
	clientID     int
	client       *device.Client
	train        []nn.Sample
	localTest    []nn.Sample
	startVersion int
	finishAt     float64
	outcome      device.Outcome
	tech         opt.Technique
}

type taskHeap []asyncTask

func (h taskHeap) Len() int            { return len(h) }
func (h taskHeap) Less(i, j int) bool  { return h[i].finishAt < h[j].finishAt }
func (h taskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(asyncTask)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// asyncTrainJob is one buffered local-training job awaiting the next
// aggregation barrier. Everything it needs is captured at pop time (the
// version snapshot it trains against, the version used as its seed round,
// its staleness discount, the still-pinned shard slices), so the job is a
// pure function and can run on any worker.
type asyncTrainJob struct {
	clientID    int
	tech        opt.Technique
	round       int // model version at pop time; seeds the client's RNG streams
	staleness   int
	startParams tensor.Vector
	train       []nn.Sample
	localTest   []nn.Sample

	lt  localTrainResult
	err error
}

// asyncEvent records one popped task's deferred callbacks. Controller
// feedback and logging for all tasks popped since the previous barrier are
// delivered in pop order at the barrier, after the batch's training jobs
// have finished — keeping both single-threaded and giving every
// Parallelism the same delivery schedule. The client pin taken at launch
// is released right after the event is delivered.
type asyncEvent struct {
	version  int
	clientID int
	client   *device.Client
	tech     opt.Technique
	out      device.Outcome
	trainIdx int // index into the pending job batch, -1 when the task produced no update
}

// isTooStale implements FedBuff's staleness admission rule: an update is
// usable only while its base version snapshot is still retained and its
// staleness is at most the cap — a staleness of exactly StalenessCap is
// the last admissible value (the boundary is inclusive).
func isTooStale(staleness, cap int, haveVersion bool) bool {
	return !haveVersion || staleness > cap
}

// evictStaleVersion drops the one snapshot that just aged out of the
// admissible window after advancing to `version`: any update based on it
// would have staleness > cap by the time the next aggregation completes.
// The retained window is exactly {version-cap .. version}.
func evictStaleVersion(versions map[int]tensor.Vector, version, cap int) {
	delete(versions, version-cap-1)
}

// RunAsync executes FedBuff over the classic dense federation/population
// pair. It is a thin wrapper over RunAsyncPop with an eager population —
// bit-identical to the historical engine (the committed goldens pin this).
func RunAsync(fed *data.Federation, pop []*device.Client, ctrl Controller, cfg Config) (*Result, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(pop) == 0 {
		return nil, fmt.Errorf("fl: population is empty")
	}
	p, err := population.WrapEager(fed, pop)
	if err != nil {
		return nil, err
	}
	return RunAsyncPop(p, ctrl, cfg)
}

// RunAsyncPop executes FedBuff: Concurrency clients train simultaneously
// and asynchronously against the model version they started from;
// completed updates enter a buffer and every BufferK arrivals are
// aggregated with staleness-discounted weights. FedBuff has no hard round
// deadline — tasks run until a generous timeout — which is why it
// tolerates dropouts but burns far more resources than synchronous FL
// (Fig 2b, Fig 12).
//
// The discrete-event loop (launch decisions, cost-model execution, pops,
// ledger records) stays on one goroutine; the expensive part — local
// training of buffered updates — fans out across Config.Parallelism
// workers at each aggregation barrier, where the whole batch is collected
// in pop order. Controller feedback is therefore batch-delivered at
// barriers; launch-time decisions observe controller state as of the last
// aggregation, identically for every Parallelism.
//
// With an eager population the launcher scans the dense pool for eligible
// clients, exactly as the historical engine did. A lazy population is
// sampled instead: each launch pass walks a fresh random permutation under
// a probe budget of O(concurrency), deriving only the clients it actually
// considers, so resident state stays bounded by the provider caches plus
// the in-flight set.
func RunAsyncPop(p *population.Population, ctrl Controller, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := p.NumClients()
	if n == 0 {
		return nil, fmt.Errorf("fl: population is empty")
	}
	spec, err := nn.LookupSpec(cfg.Arch)
	if err != nil {
		return nil, err
	}
	profile := p.Profile()
	src := rngstate.New(cfg.Seed)
	rng := rand.New(src)
	global, err := nn.NewModel(cfg.Arch, profile.Dim, profile.Classes, rng)
	if err != nil {
		return nil, err
	}
	if err := setModelBackend(global, cfg.Backend); err != nil {
		return nil, err
	}

	refWork := workSpecFor(spec, p.MeanShardSize(), cfg.Epochs)

	// FedBuff is lenient: the per-task timeout is twice the synchronous
	// auto deadline (explicit DeadlineSec overrides).
	timeout := cfg.DeadlineSec
	if timeout <= 0 {
		timeout = 2 * deadlineFromEstimates(p.CleanResponseEstimates(refWork), cfg.DeadlinePercentile)
	}
	// Traces advance one step per timeout interval of virtual time.
	stepSec := timeout
	stepOf := func(now float64) int { return int(now / stepSec) }

	ledger := metrics.NewLedger(n)
	if !p.Eager() {
		ledger = metrics.NewSparseLedger(n)
	}
	res := &Result{
		Algorithm:   "fedbuff",
		Controller:  ctrl.Name(),
		Ledger:      ledger,
		DeadlineSec: timeout,
	}
	hfDiff := make(map[int]float64)
	eo := newEngineObs(cfg.Metrics, cfg.Tracer)

	// Version-indexed snapshots of global parameters for stale training.
	// Snapshot vectors are immutable once stored: pending training jobs
	// read them concurrently. Parameters() aliases the (mutating) global
	// model, so every snapshot must be cloned.
	versions := map[int]tensor.Vector{0: global.Parameters().Clone()}
	version := 0

	inFlight := make(map[int]bool, cfg.Concurrency)
	var tasks taskHeap
	heap.Init(&tasks)
	now := 0.0
	pop := p.AllClients() // nil in lazy mode

	// launchOne pins client id, runs the cost model, and pushes the task.
	launchOne := func(id int) error {
		c := p.AcquireClient(id)
		shard := p.AcquireShard(id)
		step := stepOf(now)
		snap := c.ResourcesAt(step)
		tech := ctrl.Decide(version, c, snap, hfDiff[id])
		eo.decide(tech)
		eo.selected.Inc()
		work := workSpecFor(spec, len(shard.Train), cfg.Epochs)
		out, err := device.Execute(c, step, work, tech, timeout)
		if err != nil {
			p.Release(id)
			return err
		}
		dur := out.Cost.TotalSeconds
		if dur <= 0 {
			dur = 1 // unavailability is detected after a short ping
		}
		inFlight[id] = true
		heap.Push(&tasks, asyncTask{
			clientID:     id,
			client:       c,
			train:        shard.Train,
			localTest:    shard.LocalTest,
			startVersion: version,
			finishAt:     now + dur,
			outcome:      out,
			tech:         tech,
		})
		return nil
	}

	useLazyLaunch := !p.Eager() || cfg.forceLazySelection
	launch := func() error {
		step0 := stepOf(now)
		if !useLazyLaunch {
			eligible := make([]int, 0, len(pop))
			for _, c := range pop {
				if !inFlight[c.ID] && c.ResourcesAt(step0).Available {
					eligible = append(eligible, c.ID)
				}
			}
			rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
			for len(inFlight) < cfg.Concurrency && len(eligible) > 0 {
				id := eligible[0]
				eligible = eligible[1:]
				if err := launchOne(id); err != nil {
					return err
				}
			}
			return nil
		}
		// Lazy launch: walk a fresh random permutation under a probe budget
		// proportional to the open slots — deriving only probed clients —
		// instead of the eager path's O(population) eligibility scan. A
		// probe derives through the unpinned cache; only actual launches
		// pin.
		want := cfg.Concurrency - len(inFlight)
		if want <= 0 {
			return nil
		}
		probes := 8*want + 64
		if probes > n {
			probes = n
		}
		ps := selection.NewPermSampler(rng, n)
		for ; probes > 0 && len(inFlight) < cfg.Concurrency; probes-- {
			id, ok := ps.Next()
			if !ok {
				break
			}
			if inFlight[id] {
				continue
			}
			if !p.Client(id).ResourcesAt(step0).Available {
				continue
			}
			if err := launchOne(id); err != nil {
				return err
			}
		}
		return nil
	}

	var pendingJobs []asyncTrainJob
	var pendingEvents []asyncEvent
	pool := newContextPool(global)

	aggregations := 0
	evalCountdown := cfg.EvalEvery

	// Checkpoint seam: restore against the freshly initialized state
	// above; boundary hooks fire at the end of every aggregation barrier —
	// the async engine's quiescent point, where the buffered-job and
	// pending-event queues are empty and only the task heap is in flight.
	ckState := &asyncRunState{
		cfg: cfg, p: p, ctrl: ctrl, global: global, res: res,
		hfDiff: hfDiff, src: src, timeout: timeout, useLazyLaunch: useLazyLaunch,
		versions: versions, version: &version, now: &now,
		evalCountdown: &evalCountdown, tasks: &tasks, inFlight: inFlight,
	}
	if cfg.Checkpoint != nil && len(cfg.Checkpoint.Resume) > 0 {
		a, err := ckState.restore(cfg.Checkpoint.Resume)
		if err != nil {
			return nil, fmt.Errorf("fl: resume: %w", err)
		}
		aggregations = a
	}

	for aggregations < cfg.Rounds {
		var launchErr error
		withPhase("select", func() { launchErr = launch() })
		if launchErr != nil {
			return nil, launchErr
		}
		if tasks.Len() == 0 {
			return nil, fmt.Errorf("fl: FedBuff deadlocked with no in-flight tasks")
		}
		task := heap.Pop(&tasks).(asyncTask)
		now = task.finishAt
		delete(inFlight, task.clientID)

		out := task.outcome
		if out.Reason == device.DropDeadline {
			hfDiff[task.clientID] = out.DeadlineDiff
		} else if out.Completed {
			hfDiff[task.clientID] = 0
		}

		startParams, haveVersion := versions[task.startVersion]
		staleness := version - task.startVersion
		tooStale := isTooStale(staleness, cfg.StalenessCap, haveVersion)
		eo.dev.Record(out)
		eo.clientSpans(task.finishAt-out.Cost.TotalSeconds, task.startVersion, task.clientID, task.tech, out)
		if out.Completed && tooStale {
			// The update arrived but its base version is ancient: FedBuff
			// discards it, so every resource it consumed is waste.
			res.Ledger.RecordDiscarded(task.clientID, task.tech, out)
			eo.discarded.Inc()
			eo.span(obs.Span{T: task.finishAt, Kind: "discard", Round: task.startVersion, Client: task.clientID, Note: "stale"})
		} else {
			res.Ledger.Record(task.clientID, task.tech, out)
			if out.Completed {
				eo.completed.Inc()
			} else {
				eo.dropped.Inc()
			}
		}
		trainIdx := -1
		if out.Completed && !tooStale {
			trainIdx = len(pendingJobs)
			pendingJobs = append(pendingJobs, asyncTrainJob{
				clientID:    task.clientID,
				tech:        task.tech,
				round:       version,
				staleness:   staleness,
				startParams: startParams,
				train:       task.train,
				localTest:   task.localTest,
			})
		}
		pendingEvents = append(pendingEvents, asyncEvent{
			version:  version,
			clientID: task.clientID,
			client:   task.client,
			tech:     task.tech,
			out:      out,
			trainIdx: trainIdx,
		})

		if len(pendingJobs) < cfg.BufferK {
			continue
		}

		// Aggregation barrier: train the whole buffered batch in parallel
		// (the global model is frozen until the batch is applied), then
		// collect in pop order on this goroutine.
		jobs := pendingJobs
		pool.ensure(cfg.Parallelism, len(jobs))
		eo.fanoutJobs.Observe(float64(len(jobs)))
		withPhase("train", func() {
			forEachSlot(len(jobs), cfg.Parallelism, func(worker, slot int) {
				j := &jobs[slot]
				eo.trainCalls.Inc()
				j.lt, j.err = trainLocal(pool.ctx(worker), pool.delta(slot), global,
					j.startParams, j.train, j.localTest, j.tech, cfg, j.round, j.clientID)
			})
		})
		for i := range jobs {
			if jobs[i].err != nil {
				return nil, jobs[i].err
			}
		}

		bufDeltas := make([]tensor.Vector, len(jobs))
		bufWeights := make([]float64, len(jobs))
		for i := range jobs {
			// FedBuff's staleness discount.
			bufDeltas[i] = jobs[i].lt.delta
			bufWeights[i] = jobs[i].lt.weight / math.Sqrt(1+float64(jobs[i].staleness))
		}
		for _, ev := range pendingEvents {
			var accImprove float64
			if ev.trainIdx >= 0 {
				accImprove = jobs[ev.trainIdx].lt.accImprove
			}
			ctrl.Feedback(ev.version, ev.client, ev.tech, ev.out, accImprove)
			cfg.Logger.LogClientRound(clientRoundLog(ev.version, ev.clientID, ev.tech, ev.out, accImprove))
			// The launch-time pin is dropped once the event — the last
			// consumer of this task's client instance — has been delivered.
			p.Release(ev.clientID)
		}
		pendingJobs = pendingJobs[:0]
		pendingEvents = pendingEvents[:0]

		var aggErr error
		withPhase("aggregate", func() { aggErr = applyAggregate(global, bufDeltas, bufWeights) })
		if aggErr != nil {
			return nil, aggErr
		}
		eo.span(obs.Span{T: now, Kind: "aggregate", Round: version, Client: -1})
		eo.rounds.Inc()
		version++
		versions[version] = global.Parameters().Clone()
		evictStaleVersion(versions, version, cfg.StalenessCap)
		aggregations++
		evalCountdown--
		if evalCountdown <= 0 || aggregations == cfg.Rounds {
			acc, _ := global.Evaluate(p.GlobalTest())
			res.GlobalAccHistory = append(res.GlobalAccHistory, acc)
			res.EvalRounds = append(res.EvalRounds, aggregations)
			evalCountdown = cfg.EvalEvery
			eo.evals.Inc()
			eo.globalAcc.Set(acc)
		}
		// Publish population-cache telemetry at this schedule-determined
		// point so exposition bytes never depend on Parallelism.
		p.FlushObs()
		// Sample before the checkpoint hook so every snapshot carries the
		// timeline through its own aggregation — the stitching invariant.
		sampleRoundTimeline(cfg.Timeline, ctrl, aggregations-1, now,
			obs.SeriesValue{Name: "round_buffered_jobs", Value: float64(len(jobs))},
			obs.SeriesValue{Name: "model_version", Value: float64(version)})
		if stop, err := ckState.boundary(aggregations); err != nil {
			return nil, err
		} else if stop {
			break
		}
	}

	// FedBuff's over-selection bill: every task still in flight when the
	// target aggregation count is reached consumed resources that never
	// reach the model (Fig 2b / Fig 12's FedBuff inefficiency). On a
	// graceful checkpoint stop the same drain applies — the discards land
	// in this (partial) Result but not in the snapshot, which captured the
	// tasks as still in flight so the resumed run can finish them.
	for tasks.Len() > 0 {
		task := heap.Pop(&tasks).(asyncTask)
		res.Ledger.RecordDiscarded(task.clientID, task.tech, task.outcome)
		eo.discarded.Inc()
		eo.span(obs.Span{T: task.finishAt, Kind: "discard", Round: version, Client: task.clientID, Note: "overrun"})
		p.Release(task.clientID)
	}

	res.WallClockSeconds = now
	res.Ledger.WallClockSeconds = now
	res.CompletedRounds = aggregations
	res.SimClockSeconds = now
	res.FinalClientAccs = evaluateClientsPop(global, p, cfg.EvalClients)
	res.FinalAccStats = metrics.ComputeAccuracyStats(res.FinalClientAccs)
	res.FinalGlobalAcc, _ = global.Evaluate(p.GlobalTest())
	res.FinalParams = global.Parameters().Clone()
	p.FlushObs()
	return res, nil
}
