package fl

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/metrics"
	"floatfl/internal/nn"
	"floatfl/internal/opt"
	"floatfl/internal/tensor"
)

// asyncTask is one in-flight client execution in the FedBuff simulation.
type asyncTask struct {
	clientID     int
	startVersion int
	finishAt     float64
	outcome      device.Outcome
	tech         opt.Technique
}

type taskHeap []asyncTask

func (h taskHeap) Len() int            { return len(h) }
func (h taskHeap) Less(i, j int) bool  { return h[i].finishAt < h[j].finishAt }
func (h taskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(asyncTask)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// RunAsync executes FedBuff: Concurrency clients train simultaneously and
// asynchronously against the model version they started from; completed
// updates enter a buffer and every BufferK arrivals are aggregated with
// staleness-discounted weights. FedBuff has no hard round deadline — tasks
// run until a generous timeout — which is why it tolerates dropouts but
// burns far more resources than synchronous FL (Fig 2b, Fig 12).
func RunAsync(fed *data.Federation, pop []*device.Client, ctrl Controller, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(fed.Train) != len(pop) {
		return nil, fmt.Errorf("fl: federation has %d clients, population has %d",
			len(fed.Train), len(pop))
	}
	spec, err := nn.LookupSpec(cfg.Arch)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	global, err := nn.NewModel(cfg.Arch, fed.Profile.Dim, fed.Profile.Classes, rng)
	if err != nil {
		return nil, err
	}
	scratch := global.Clone()

	meanShard := 0
	for _, s := range fed.Train {
		meanShard += len(s)
	}
	meanShard /= len(fed.Train)
	refWork := workSpecFor(spec, meanShard, cfg.Epochs)

	// FedBuff is lenient: the per-task timeout is twice the synchronous
	// auto deadline (explicit DeadlineSec overrides).
	timeout := cfg.DeadlineSec
	if timeout <= 0 {
		timeout = 2 * AutoDeadline(pop, refWork, cfg.DeadlinePercentile)
	}
	// Traces advance one step per timeout interval of virtual time.
	stepSec := timeout
	stepOf := func(now float64) int { return int(now / stepSec) }

	res := &Result{
		Algorithm:   "fedbuff",
		Controller:  ctrl.Name(),
		Ledger:      metrics.NewLedger(len(pop)),
		DeadlineSec: timeout,
	}
	hfDiff := make([]float64, len(pop))

	// Version-indexed snapshots of global parameters for stale training.
	versions := map[int]tensor.Vector{0: global.Parameters()}
	version := 0

	inFlight := make(map[int]bool, cfg.Concurrency)
	var tasks taskHeap
	heap.Init(&tasks)
	now := 0.0

	var bufDeltas []tensor.Vector
	var bufWeights []float64

	launch := func() error {
		step0 := stepOf(now)
		eligible := make([]int, 0, len(pop))
		for _, c := range pop {
			if !inFlight[c.ID] && c.ResourcesAt(step0).Available {
				eligible = append(eligible, c.ID)
			}
		}
		rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
		for len(inFlight) < cfg.Concurrency && len(eligible) > 0 {
			id := eligible[0]
			eligible = eligible[1:]
			c := pop[id]
			step := stepOf(now)
			snap := c.ResourcesAt(step)
			tech := ctrl.Decide(version, c, snap, hfDiff[id])
			work := workSpecFor(spec, len(fed.Train[id]), cfg.Epochs)
			out, err := device.Execute(c, step, work, tech, timeout)
			if err != nil {
				return err
			}
			dur := out.Cost.TotalSeconds
			if dur <= 0 {
				dur = 1 // unavailability is detected after a short ping
			}
			inFlight[id] = true
			heap.Push(&tasks, asyncTask{
				clientID:     id,
				startVersion: version,
				finishAt:     now + dur,
				outcome:      out,
				tech:         tech,
			})
		}
		return nil
	}

	aggregations := 0
	evalCountdown := cfg.EvalEvery
	for aggregations < cfg.Rounds {
		if err := launch(); err != nil {
			return nil, err
		}
		if tasks.Len() == 0 {
			return nil, fmt.Errorf("fl: FedBuff deadlocked with no in-flight tasks")
		}
		task := heap.Pop(&tasks).(asyncTask)
		now = task.finishAt
		delete(inFlight, task.clientID)

		out := task.outcome
		if out.Reason == device.DropDeadline {
			hfDiff[task.clientID] = out.DeadlineDiff
		} else if out.Completed {
			hfDiff[task.clientID] = 0
		}

		var accImprove float64
		startParams, haveVersion := versions[task.startVersion]
		staleness := version - task.startVersion
		tooStale := !haveVersion || staleness > cfg.StalenessCap
		if out.Completed && tooStale {
			// The update arrived but its base version is ancient: FedBuff
			// discards it, so every resource it consumed is waste.
			res.Ledger.RecordDiscarded(task.clientID, task.tech, out)
		} else {
			res.Ledger.Record(task.clientID, task.tech, out)
		}
		if out.Completed && !tooStale {
			if err := scratch.SetParameters(startParams); err != nil {
				return nil, err
			}
			lt, err := trainLocal(scratch, fed.Train[task.clientID],
				fed.LocalTest[task.clientID], task.tech, cfg, version, task.clientID, rng)
			if err != nil {
				return nil, err
			}
			accImprove = lt.accImprove
			// FedBuff's staleness discount.
			w := lt.weight / math.Sqrt(1+float64(staleness))
			bufDeltas = append(bufDeltas, lt.delta)
			bufWeights = append(bufWeights, w)
		}
		ctrl.Feedback(version, pop[task.clientID], task.tech, out, accImprove)
		cfg.Logger.LogClientRound(clientRoundLog(version, task.clientID, task.tech, out, accImprove))

		if len(bufDeltas) >= cfg.BufferK {
			if err := applyAggregate(global, bufDeltas, bufWeights); err != nil {
				return nil, err
			}
			bufDeltas = bufDeltas[:0]
			bufWeights = bufWeights[:0]
			version++
			versions[version] = global.Parameters()
			delete(versions, version-cfg.StalenessCap-1)
			aggregations++
			evalCountdown--
			if evalCountdown <= 0 || aggregations == cfg.Rounds {
				acc, _ := global.Evaluate(fed.GlobalTest)
				res.GlobalAccHistory = append(res.GlobalAccHistory, acc)
				res.EvalRounds = append(res.EvalRounds, aggregations)
				evalCountdown = cfg.EvalEvery
			}
		}
	}

	// FedBuff's over-selection bill: every task still in flight when the
	// target aggregation count is reached consumed resources that never
	// reach the model (Fig 2b / Fig 12's FedBuff inefficiency).
	for tasks.Len() > 0 {
		task := heap.Pop(&tasks).(asyncTask)
		res.Ledger.RecordDiscarded(task.clientID, task.tech, task.outcome)
	}

	res.WallClockSeconds = now
	res.Ledger.WallClockSeconds = now
	res.FinalClientAccs = evaluateClients(global, fed)
	res.FinalAccStats = metrics.ComputeAccuracyStats(res.FinalClientAccs)
	res.FinalGlobalAcc, _ = global.Evaluate(fed.GlobalTest)
	return res, nil
}
