package fl

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"floatfl/internal/selection"
	"floatfl/internal/tensor"
	"floatfl/internal/trace"
)

// goldenFingerprint is the committed record of a fixed-seed reference run.
// Params is the SHA-256 of the final global parameter vector serialized as
// little-endian float64 bits — any single-bit deviation in any parameter
// changes it. The accuracy history and wall clock ride along so a mismatch
// report says *what* moved, not just that something did.
type goldenFingerprint struct {
	Params           string    `json:"params_sha256"`
	NumParams        int       `json:"num_params"`
	GlobalAccHistory []float64 `json:"global_acc_history"`
	FinalGlobalAcc   float64   `json:"final_global_acc"`
	WallClockSeconds float64   `json:"wall_clock_seconds"`
}

func paramsSHA256(p tensor.Vector) string {
	h := sha256.New()
	var buf [8]byte
	for _, v := range p {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func fingerprintOf(res *Result) goldenFingerprint {
	return goldenFingerprint{
		Params:           paramsSHA256(res.FinalParams),
		NumParams:        len(res.FinalParams),
		GlobalAccHistory: res.GlobalAccHistory,
		FinalGlobalAcc:   res.FinalGlobalAcc,
		WallClockSeconds: res.WallClockSeconds,
	}
}

// goldenRun is the fixed-seed experiment the backend fingerprint tests pin:
// dynamic interference, stochastic update transforms via the feedback-driven
// controller, and multiple workers, so every hot kernel is on the path.
func goldenRun(t *testing.T, backend string) *Result {
	t.Helper()
	fed, pop := testSetup(t, 20, trace.ScenarioDynamic)
	cfg := parSyncConfig(4)
	cfg.Backend = backend
	res, err := RunSync(fed, pop, selection.NewRandom(7), newFeedbackDriven(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRefBackendGolden asserts the ref backend reproduces the pre-backend-
// split seed results bit-for-bit: the golden file was generated from the
// scalar kernels before the Backend interface existed, so this test proves
// the refactor changed no float anywhere in a training run. Regenerate with
// UPDATE_GOLDEN=1 only for an intended semantic change.
func TestRefBackendGolden(t *testing.T) {
	got := fingerprintOf(goldenRun(t, "ref"))
	golden := filepath.Join("testdata", "backend_ref.golden.json")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	var want goldenFingerprint
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if got.Params != want.Params || got.NumParams != want.NumParams {
		t.Errorf("final params deviate from the pre-PR seed: sha %s (n=%d), want %s (n=%d)",
			got.Params, got.NumParams, want.Params, want.NumParams)
	}
	if len(got.GlobalAccHistory) != len(want.GlobalAccHistory) {
		t.Fatalf("acc history length %d, want %d", len(got.GlobalAccHistory), len(want.GlobalAccHistory))
	}
	for i, acc := range got.GlobalAccHistory {
		if acc != want.GlobalAccHistory[i] {
			t.Errorf("acc history [%d] = %v, want %v (bit-exact)", i, acc, want.GlobalAccHistory[i])
		}
	}
	if got.FinalGlobalAcc != want.FinalGlobalAcc {
		t.Errorf("final global acc %v, want %v (bit-exact)", got.FinalGlobalAcc, want.FinalGlobalAcc)
	}
	if got.WallClockSeconds != want.WallClockSeconds {
		t.Errorf("wall clock %v, want %v (bit-exact)", got.WallClockSeconds, want.WallClockSeconds)
	}
}

// TestFastBackendParity runs the same fixed-seed experiment on the fast
// backend. fast reorders floating-point sums (tiling, batching, fusion),
// so bit-identity with ref is impossible by design — instead the test
// bounds the end-to-end effect: the run must complete, produce finite
// parameters, and land within an accuracy tolerance of ref's golden. The
// simulated wall clock is float-free bookkeeping and must stay bit-exact.
func TestFastBackendParity(t *testing.T) {
	ref := fingerprintOf(goldenRun(t, "ref"))
	fast := fingerprintOf(goldenRun(t, "fast"))

	if fast.NumParams != ref.NumParams {
		t.Fatalf("fast param count %d, want %d", fast.NumParams, ref.NumParams)
	}
	if fast.WallClockSeconds != ref.WallClockSeconds {
		t.Errorf("simulated wall clock diverged: fast %v, ref %v (device simulation must not depend on the backend)",
			fast.WallClockSeconds, ref.WallClockSeconds)
	}
	const tol = 0.05
	if d := math.Abs(fast.FinalGlobalAcc - ref.FinalGlobalAcc); d > tol {
		t.Errorf("fast final accuracy %v vs ref %v: |Δ|=%v exceeds %v",
			fast.FinalGlobalAcc, ref.FinalGlobalAcc, d, tol)
	}
	if len(fast.GlobalAccHistory) != len(ref.GlobalAccHistory) {
		t.Fatalf("fast acc history length %d, want %d", len(fast.GlobalAccHistory), len(ref.GlobalAccHistory))
	}
}

// TestFastBackendDeterministic pins that fast, while not bit-identical to
// ref, is bit-identical to itself: two runs of the same seed produce the
// same parameter hash. Determinism is a per-backend contract, not a
// ref-only property.
func TestFastBackendDeterministic(t *testing.T) {
	a := fingerprintOf(goldenRun(t, "fast"))
	b := fingerprintOf(goldenRun(t, "fast"))
	if a.Params != b.Params {
		t.Errorf("fast backend nondeterministic: run 1 sha %s, run 2 sha %s", a.Params, b.Params)
	}
	for _, v := range []float64{a.FinalGlobalAcc} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("fast backend produced non-finite accuracy %v", v)
		}
	}
}

// TestConfigUnknownBackend pins the error path: a typo'd backend name must
// fail fast with an error naming the known set, not silently train on ref.
func TestConfigUnknownBackend(t *testing.T) {
	fed, pop := testSetup(t, 4, trace.ScenarioNone)
	cfg := parSyncConfig(1)
	cfg.Backend = "no-such-backend"
	if _, err := RunSync(fed, pop, selection.NewRandom(7), NoOpController{}, cfg); err == nil {
		t.Fatal("RunSync with unknown backend did not error")
	}
	if _, err := RunAsync(fed, pop, NoOpController{}, cfg); err == nil {
		t.Fatal("RunAsync with unknown backend did not error")
	}
}
