package fl

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"floatfl/internal/obs"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

// runSyncUnderProcs runs a complete sync-engine experiment with the JSONL
// metrics logger, the obs registry, and the phase tracer attached while
// GOMAXPROCS is pinned to procs, restoring the previous value before
// returning. The parallel worker pool is kept at 8 so the runtime
// scheduler — not the engine's slot assignment — is the only thing that
// changes between calls. Returns the result, the JSONL log, the metrics
// text exposition, and the trace JSONL.
func runSyncUnderProcs(t *testing.T, procs int) (*Result, string, string, string) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	fed, pop := testSetup(t, 20, trace.ScenarioDynamic)
	var buf bytes.Buffer
	logger := NewJSONLLogger(&buf)
	cfg := parSyncConfig(8)
	cfg.Logger = logger
	cfg.Metrics = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer()
	res, err := RunSync(fed, pop, selection.NewRandom(7), newFeedbackDriven(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := logger.Err(); err != nil {
		t.Fatal(err)
	}
	metricsText, traceJSONL := exportTelemetry(t, cfg.Metrics, cfg.Tracer)
	return res, buf.String(), metricsText, traceJSONL
}

// TestRunSyncGOMAXPROCSInvariant is the determinism regression test the
// static analyzer backs up: the same seeded experiment run on a single OS
// thread and on eight must produce bit-identical final parameters and a
// byte-identical JSONL metrics log. Any wall-clock read, global-rand draw,
// or map-order dependence on the training path shows up here as a diff.
func TestRunSyncGOMAXPROCSInvariant(t *testing.T) {
	resOne, logOne, metOne, trOne := runSyncUnderProcs(t, 1)
	resMany, logMany, metMany, trMany := runSyncUnderProcs(t, 8)

	assertIdenticalResults(t, "sync procs1-vs-procs8", resOne, resMany)

	if len(resOne.FinalParams) == 0 {
		t.Fatal("FinalParams not populated by RunSync")
	}
	if len(resOne.FinalParams) != len(resMany.FinalParams) {
		t.Fatalf("FinalParams lengths differ: %d vs %d", len(resOne.FinalParams), len(resMany.FinalParams))
	}
	for i := range resOne.FinalParams {
		a, b := resOne.FinalParams[i], resMany.FinalParams[i]
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("FinalParams[%d] differs bitwise: %x (%v) vs %x (%v)",
				i, math.Float64bits(a), a, math.Float64bits(b), b)
		}
	}

	if logOne != logMany {
		t.Errorf("JSONL metrics logs differ between GOMAXPROCS=1 and GOMAXPROCS=8 (%d vs %d bytes)",
			len(logOne), len(logMany))
	}
	if logOne == "" {
		t.Error("JSONL metrics log is empty; the logger was not exercised")
	}
	if metOne != metMany {
		t.Errorf("metrics exposition differs between GOMAXPROCS=1 and GOMAXPROCS=8:\n--- 1 ---\n%s--- 8 ---\n%s",
			metOne, metMany)
	}
	if trOne != trMany {
		t.Errorf("trace JSONL differs between GOMAXPROCS=1 and GOMAXPROCS=8 (%d vs %d bytes)",
			len(trOne), len(trMany))
	}
	if metOne == "" || trOne == "" {
		t.Error("telemetry outputs are empty; registry/tracer were not exercised")
	}
}
