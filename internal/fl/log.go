package fl

import (
	"encoding/json"
	"fmt"
	"io"

	"floatfl/internal/device"
	"floatfl/internal/opt"
)

// ClientRoundLog is one structured per-client-round record — the analog of
// the artifact's `<dataset>_logging` output, which the paper's A.4.1
// evaluation workflow reads "at the granularity of per round".
type ClientRoundLog struct {
	Round     int    `json:"round"`
	ClientID  int    `json:"client_id"`
	Technique string `json:"technique"`
	Completed bool   `json:"completed"`
	Reason    string `json:"drop_reason,omitempty"`
	// Resource snapshot at execution time.
	CPUFrac       float64 `json:"cpu_frac"`
	MemFrac       float64 `json:"mem_frac"`
	NetFrac       float64 `json:"net_frac"`
	BandwidthMbps float64 `json:"bandwidth_mbps"`
	Battery       float64 `json:"battery"`
	// Costs actually incurred.
	ComputeSeconds float64 `json:"compute_s"`
	CommSeconds    float64 `json:"comm_s"`
	UploadBytes    float64 `json:"upload_bytes"`
	DownloadBytes  float64 `json:"download_bytes"`
	MemoryBytes    float64 `json:"memory_bytes"`
	// DeadlineDiff is always emitted: a zero is a legitimate value (the
	// client finished exactly on the deadline), not an absent one, so it
	// must not be dropped by omitempty.
	DeadlineDiff float64 `json:"deadline_diff"`
	AccImprove   float64 `json:"acc_improve"`
}

// RoundSummaryLog is one per-round aggregate record. GlobalAcc is a
// pointer because absence ("no eval this round") and a measured accuracy
// of exactly zero are different facts; a plain float64 with omitempty
// silently conflated them.
type RoundSummaryLog struct {
	Round       int      `json:"round"`
	Selected    int      `json:"selected"`
	Completed   int      `json:"completed"`
	Dropped     int      `json:"dropped"`
	WallSeconds float64  `json:"wall_s"`
	GlobalAcc   *float64 `json:"global_acc,omitempty"`
}

// RoundLogger receives structured training events. Implementations must
// tolerate being called once per client-round (hot path); the JSONL logger
// buffers through its writer.
type RoundLogger interface {
	LogClientRound(ClientRoundLog)
	LogRoundSummary(RoundSummaryLog)
}

// NopLogger discards all events.
type NopLogger struct{}

// LogClientRound implements RoundLogger.
func (NopLogger) LogClientRound(ClientRoundLog) {}

// LogRoundSummary implements RoundLogger.
func (NopLogger) LogRoundSummary(RoundSummaryLog) {}

// JSONLLogger writes one JSON object per line, tagged with a record type.
type JSONLLogger struct {
	w   io.Writer
	err error
}

// NewJSONLLogger wraps w; callers own w's lifecycle.
func NewJSONLLogger(w io.Writer) *JSONLLogger { return &JSONLLogger{w: w} }

// Err returns the first write error encountered, if any.
func (l *JSONLLogger) Err() error { return l.err }

type taggedRecord struct {
	Type string      `json:"type"`
	Data interface{} `json:"data"`
}

func (l *JSONLLogger) emit(typ string, data interface{}) {
	if l.err != nil {
		return
	}
	b, err := json.Marshal(taggedRecord{Type: typ, Data: data})
	if err != nil {
		l.err = fmt.Errorf("fl: marshaling %s log: %w", typ, err)
		return
	}
	b = append(b, '\n')
	if _, err := l.w.Write(b); err != nil {
		l.err = fmt.Errorf("fl: writing %s log: %w", typ, err)
	}
}

// LogClientRound implements RoundLogger.
func (l *JSONLLogger) LogClientRound(rec ClientRoundLog) { l.emit("client_round", rec) }

// LogRoundSummary implements RoundLogger.
func (l *JSONLLogger) LogRoundSummary(rec RoundSummaryLog) { l.emit("round_summary", rec) }

// clientRoundLog builds the per-client record from an execution outcome.
func clientRoundLog(round, clientID int, tech opt.Technique, out device.Outcome, accImprove float64) ClientRoundLog {
	rec := ClientRoundLog{
		Round:          round,
		ClientID:       clientID,
		Technique:      tech.String(),
		Completed:      out.Completed,
		CPUFrac:        out.Resources.CPUFrac,
		MemFrac:        out.Resources.MemFrac,
		NetFrac:        out.Resources.NetFrac,
		BandwidthMbps:  out.Resources.BandwidthMbps,
		Battery:        out.Resources.Battery,
		ComputeSeconds: out.Cost.ComputeSeconds,
		CommSeconds:    out.Cost.CommSeconds,
		UploadBytes:    out.Cost.UploadBytes,
		DownloadBytes:  out.Cost.DownloadBytes,
		MemoryBytes:    out.Cost.MemoryBytes,
		DeadlineDiff:   out.DeadlineDiff,
		AccImprove:     accImprove,
	}
	if !out.Completed {
		rec.Reason = out.Reason.String()
	}
	return rec
}
