package fl

import (
	"context"
	"runtime/pprof"

	"floatfl/internal/obs"
)

// TimelineContributor is implemented by controllers that expose extra
// per-round timeline series beyond what the metrics registry already
// records — core.Float contributes the RL agent's per-action visit
// distribution, which is how a timeline shows *when* the policy shifted.
// TimelineSeries is called only at the engines' quiescent boundaries
// (single-threaded), must be read-only, and must return name-sorted,
// deterministically computed values: the series land verbatim in the
// byte-compared timeline export.
type TimelineContributor interface {
	TimelineSeries() []obs.SeriesValue
}

// sampleRoundTimeline records one timeline sample at a quiescent
// boundary: the full registry snapshot, the engine's per-round facts
// (extra), and the controller's contributed series. It must run at the
// same schedule-determined point as p.FlushObs — after all of the
// round's metric updates, before the checkpoint boundary hook — so the
// sample stream is identical across Parallelism and lands inside every
// snapshot that covers its round.
func sampleRoundTimeline(tl *obs.Timeline, ctrl Controller, round int, clock float64, extra ...obs.SeriesValue) {
	if tl == nil {
		return
	}
	if tc, ok := ctrl.(TimelineContributor); ok {
		extra = append(extra, tc.TimelineSeries()...)
	}
	tl.Sample(round, clock, extra...)
}

// withPhase runs fn under a pprof "phase" label so -cpuprofile output
// attributes samples to round phases (select/train/aggregate). Goroutines
// spawned inside fn — the forEachSlot worker pool — inherit the label, so
// fan-out training time is attributed too. Labels live outside the
// determinism contract: they annotate the profiler's sampling, never the
// run's outputs.
func withPhase(name string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("phase", name), func(context.Context) {
		fn()
	})
}
