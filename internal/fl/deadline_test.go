package fl

import (
	"testing"

	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/metrics"
	"floatfl/internal/population"
	"floatfl/internal/trace"
)

// TestAutoDeadlineEmptyPopulation pins the degenerate fallback: no clients
// means no estimates, which must yield the 60-second default rather than a
// zero (or NaN) deadline that would drop every round.
func TestAutoDeadlineEmptyPopulation(t *testing.T) {
	w := device.WorkSpec{RefFLOPsPerSample: 1e6, RefParams: 2e5, Samples: 32, Epochs: 2}
	if got := AutoDeadline(nil, w, 90); got != 60 {
		t.Fatalf("AutoDeadline(nil) = %v, want 60", got)
	}
	if got := AutoDeadline([]*device.Client{}, w, 90); got != 60 {
		t.Fatalf("AutoDeadline(empty) = %v, want 60", got)
	}
}

// TestDeadlineFromEstimatesDegenerate covers the shared percentile-and-
// slack rule behind both the eager and lazy deadline paths.
func TestDeadlineFromEstimatesDegenerate(t *testing.T) {
	if got := deadlineFromEstimates(nil, 90); got != 60 {
		t.Fatalf("no estimates: %v, want 60", got)
	}
	if got := deadlineFromEstimates([]float64{0, 0, 0}, 90); got != 60 {
		t.Fatalf("all-zero estimates: %v, want 60", got)
	}
	if got, want := deadlineFromEstimates([]float64{10}, 50), 15.0; got != want {
		t.Fatalf("single estimate: %v, want %v", got, want)
	}
}

// TestAutoDeadlineExactWithinCap: populations at or under the sample cap
// are measured exactly — the sampled implementation must reproduce the
// historical full-scan formula bit-for-bit, because the committed goldens
// embed its deadlines.
func TestAutoDeadlineExactWithinCap(t *testing.T) {
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: 50, Scenario: trace.ScenarioStatic, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := device.WorkSpec{RefFLOPsPerSample: 2e6, RefParams: 2e5, Samples: 48, Epochs: 2}
	ests := make([]float64, len(pop))
	for i, c := range pop {
		ests[i] = device.EstimateCleanResponseSeconds(c, w)
	}
	want := metrics.Percentile(ests, 90) * 1.5
	if got := AutoDeadline(pop, w, 90); got != want {
		t.Fatalf("AutoDeadline(n=50) = %v, want full-scan %v", got, want)
	}
}

// TestAutoDeadlineSampledOverCap: above the cap, AutoDeadline must equal
// the deterministic strided sample (not the full scan), and the sampled
// deadline must land inside the full population's estimate envelope.
func TestAutoDeadlineSampledOverCap(t *testing.T) {
	const n = autoDeadlineSampleCap + 1000
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: n, Scenario: trace.ScenarioStatic, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := device.WorkSpec{RefFLOPsPerSample: 2e6, RefParams: 2e5, Samples: 48, Epochs: 2}
	ests := make([]float64, 0, autoDeadlineSampleCap)
	for i := 0; i < autoDeadlineSampleCap; i++ {
		ests = append(ests, device.EstimateCleanResponseSeconds(pop[i*n/autoDeadlineSampleCap], w))
	}
	want := deadlineFromEstimates(ests, 90)
	got := AutoDeadline(pop, w, 90)
	if got != want {
		t.Fatalf("AutoDeadline(n=%d) = %v, want strided-sample %v", n, got, want)
	}
	lo, hi := ests[0], ests[0]
	for _, c := range pop {
		e := device.EstimateCleanResponseSeconds(c, w)
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	if got < lo || got > hi*1.5 {
		t.Fatalf("sampled deadline %v outside population envelope [%v, %v]", got, lo, hi*1.5)
	}
}

// TestPopulationMeanShardSizeDegenerate: the population facade's exact
// eager path must keep meanShardSize's historical floor-at-1 guards.
func TestPopulationMeanShardSizeDegenerate(t *testing.T) {
	p, err := population.WrapEager(&data.Federation{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MeanShardSize(); got != 1 {
		t.Fatalf("empty eager population mean shard size %d, want 1", got)
	}
}
