package fl

import (
	"bytes"
	"strings"
	"testing"

	"floatfl/internal/obs"
	"floatfl/internal/selection"
)

// runTimelineCell runs one cell of the determinism matrix and returns the
// timeline JSONL export plus the run result.
func runTimelineCell(t *testing.T, engine string, lazy bool, par int) (string, *Result) {
	t.Helper()
	const clients = 24
	p := ckptPop(t, clients, lazy)
	reg := obs.NewRegistry()
	if lazy {
		p.Instrument(reg)
	}
	cfg := ckptConfig(engine, 4)
	cfg.Parallelism = par
	cfg.Metrics = reg
	cfg.Timeline = obs.NewTimeline(reg, 64)

	var res *Result
	var err error
	if engine == "async" {
		res, err = RunAsyncPop(p, newCkptCtrl(), cfg)
	} else {
		res, err = RunSyncPop(p, selection.NewRandom(7), newCkptCtrl(), cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Timeline.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), res
}

// TestTimelineDeterminismMatrix is the tentpole acceptance test for the
// run timeline: for each engine over each population mode, the timeline
// export must be byte-identical between Parallelism=1 and Parallelism=8.
// Sampling happens at the engines' quiescent boundaries, so worker count
// must be invisible in every sampled series.
func TestTimelineDeterminismMatrix(t *testing.T) {
	for _, engine := range []string{"sync-random", "async"} {
		for _, lazy := range []bool{false, true} {
			name := engine + "/eager"
			if lazy {
				name = engine + "/lazy"
			}
			t.Run(name, func(t *testing.T) {
				e1, res := runTimelineCell(t, engine, lazy, 1)
				e8, _ := runTimelineCell(t, engine, lazy, 8)
				if e1 != e8 {
					t.Errorf("timeline differs between P=1 and P=8:\n--- P=1 ---\n%s--- P=8 ---\n%s", e1, e8)
				}

				lines := strings.Split(strings.TrimRight(e1, "\n"), "\n")
				// Header + one sample per completed round/aggregation.
				if want := res.CompletedRounds + 1; len(lines) != want {
					t.Errorf("export has %d lines, want %d (header + %d samples)",
						len(lines), want, res.CompletedRounds)
				}
				// Engine facts ride along with the registry series.
				extras := []string{`"round_selected"`, `"round_completed"`, `"round_dropped"`, `"round_wall_seconds"`}
				if engine == "async" {
					extras = []string{`"round_buffered_jobs"`, `"model_version"`}
				}
				for _, series := range append(extras, `"fl_rounds_total"`) {
					if !strings.Contains(e1, series) {
						t.Errorf("export missing series %s", series)
					}
				}
			})
		}
	}
}
