package fl

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"

	"floatfl/internal/checkpoint"
	"floatfl/internal/device"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/population"
	"floatfl/internal/selection"
)

// ckptCtrl is a deterministic stateful controller implementing
// checkpoint.Stateful: its decision stream depends on accumulated
// feedback, so any divergence in restored controller state changes every
// later decision.
type ckptCtrl struct {
	techs []opt.Technique
	step  int
	acc   float64
}

func newCkptCtrl() *ckptCtrl {
	return &ckptCtrl{
		techs: []opt.Technique{opt.TechNone, opt.TechQuant8, opt.TechPrune50, opt.TechQuant16, opt.TechPartial50},
	}
}

func (c *ckptCtrl) Name() string { return "ckpt-ctrl" }

func (c *ckptCtrl) Decide(int, *device.Client, device.Resources, float64) opt.Technique {
	return c.techs[c.step%len(c.techs)]
}

func (c *ckptCtrl) Feedback(_ int, _ *device.Client, _ opt.Technique, out device.Outcome, accImprove float64) {
	c.step += 1 + int(math.Abs(accImprove)*1e6)%5
	if out.Completed {
		c.acc += accImprove
	}
}

type ckptCtrlState struct {
	Step int     `json:"step"`
	Acc  float64 `json:"acc"`
}

func (c *ckptCtrl) CheckpointState() ([]byte, error) {
	return json.Marshal(ckptCtrlState{Step: c.step, Acc: c.acc})
}

func (c *ckptCtrl) RestoreCheckpoint(data []byte) error {
	var st ckptCtrlState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	c.step, c.acc = st.Step, st.Acc
	return nil
}

// ckptPop builds a fresh population — lazy (tiny cache, constant
// eviction) or eager (materialized from the same universe).
func ckptPop(t *testing.T, clients int, lazy bool) *population.Population {
	t.Helper()
	if lazy {
		p, err := population.NewLazy(lazyPopConfig(clients))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	ref, err := population.NewLazy(lazyPopConfig(clients))
	if err != nil {
		t.Fatal(err)
	}
	fed, pop := ref.Materialize()
	eager, err := population.WrapEager(fed, pop)
	if err != nil {
		t.Fatal(err)
	}
	return eager
}

func ckptConfig(engine string, rounds int) Config {
	cfg := Config{
		Arch:            "resnet18",
		Rounds:          rounds,
		ClientsPerRound: 5,
		Epochs:          1,
		BatchSize:       8,
		LR:              0.1,
		EvalEvery:       3,
		Seed:            5,
		Parallelism:     2,
	}
	if engine == "async" {
		cfg.Concurrency = 10
		cfg.BufferK = 3
	}
	return cfg
}

type ckptRunOut struct {
	res      *Result
	log      string
	metrics  string
	timeline string
}

// runCkpt executes one run of the matrix on a fresh population, returning
// the result, JSONL log, full metrics exposition, and timeline export.
func runCkpt(t *testing.T, engine string, clients, rounds int, lazy bool, ck *CheckpointConfig) ckptRunOut {
	t.Helper()
	p := ckptPop(t, clients, lazy)
	reg := obs.NewRegistry()
	if lazy {
		p.Instrument(reg)
	}
	var logBuf bytes.Buffer
	cfg := ckptConfig(engine, rounds)
	cfg.Metrics = reg
	cfg.Timeline = obs.NewTimeline(reg, 64)
	cfg.Logger = NewJSONLLogger(&logBuf)
	cfg.Checkpoint = ck

	var res *Result
	var err error
	switch engine {
	case "async":
		res, err = RunAsyncPop(p, newCkptCtrl(), cfg)
	case "sync-oort":
		res, err = RunSyncPop(p, selection.NewOort(selection.OortConfig{Seed: 7}), newCkptCtrl(), cfg)
	default: // sync-random
		res, err = RunSyncPop(p, selection.NewRandom(7), newCkptCtrl(), cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	var mb, tb bytes.Buffer
	if err := reg.WriteText(&mb); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Timeline.WriteJSONL(&tb); err != nil {
		t.Fatal(err)
	}
	return ckptRunOut{res: res, log: logBuf.String(), metrics: mb.String(), timeline: tb.String()}
}

// assertResumedMatchesFull is the acceptance bar: a resumed run must be
// bit-identical to the uninterrupted one on parameters, accuracy
// trajectories, JSONL logs (prefix + tail == full), ledger content, and
// the metrics exposition bytes.
func assertResumedMatchesFull(t *testing.T, full, prefix, resumed ckptRunOut, clients int) {
	t.Helper()
	if !reflect.DeepEqual(resumed.res.FinalParams, full.res.FinalParams) {
		t.Errorf("FinalParams differ after resume")
	}
	if !reflect.DeepEqual(resumed.res.GlobalAccHistory, full.res.GlobalAccHistory) {
		t.Errorf("GlobalAccHistory differs:\n  resumed=%v\n  full=%v",
			resumed.res.GlobalAccHistory, full.res.GlobalAccHistory)
	}
	if !reflect.DeepEqual(resumed.res.FinalClientAccs, full.res.FinalClientAccs) {
		t.Errorf("FinalClientAccs differ")
	}
	if resumed.res.WallClockSeconds != full.res.WallClockSeconds {
		t.Errorf("WallClockSeconds %v vs %v", resumed.res.WallClockSeconds, full.res.WallClockSeconds)
	}
	if resumed.res.CompletedRounds != full.res.CompletedRounds {
		t.Errorf("CompletedRounds %d vs %d", resumed.res.CompletedRounds, full.res.CompletedRounds)
	}
	if prefix.log+resumed.log != full.log {
		t.Errorf("JSONL logs: prefix(%dB) + resumed(%dB) != full(%dB)",
			len(prefix.log), len(resumed.log), len(full.log))
	}
	if resumed.metrics != full.metrics {
		t.Errorf("metrics exposition differs:\n--- resumed ---\n%s--- full ---\n%s", resumed.metrics, full.metrics)
	}
	// Stitching invariant: the snapshot carries the timeline ring, so the
	// resumed run's export (prefix samples restored + tail sampled live)
	// must be byte-identical to the uninterrupted run's.
	if resumed.timeline != full.timeline {
		t.Errorf("timeline export differs:\n--- resumed ---\n%s--- full ---\n%s", resumed.timeline, full.timeline)
	}
	if ra, fa := aggregatesOf(resumed.res.Ledger), aggregatesOf(full.res.Ledger); ra != fa {
		t.Errorf("ledger aggregates differ:\n  resumed=%+v\n  full=%+v", ra, fa)
	}
	for id := 0; id < clients; id++ {
		if resumed.res.Ledger.SelectedCount(id) != full.res.Ledger.SelectedCount(id) ||
			resumed.res.Ledger.CompletedCount(id) != full.res.Ledger.CompletedCount(id) {
			t.Fatalf("client %d tallies diverge after resume", id)
		}
	}
}

// TestResumeMatrix is the tentpole acceptance test: for each engine
// (sync/random, sync/oort, async FedBuff) over each population mode
// (eager, lazy), run-2N must equal run-N → snapshot → restore into a
// fresh process-equivalent run → run-N, bit for bit.
func TestResumeMatrix(t *testing.T) {
	const clients = 32
	const half = 3
	for _, engine := range []string{"sync-random", "sync-oort", "async"} {
		for _, lazy := range []bool{false, true} {
			name := engine + "/eager"
			if lazy {
				name = engine + "/lazy"
			}
			t.Run(name, func(t *testing.T) {
				full := runCkpt(t, engine, clients, 2*half, lazy, nil)

				var snap []byte
				prefix := runCkpt(t, engine, clients, half, lazy, &CheckpointConfig{
					Every: half,
					Sink:  func(b []byte) error { snap = b; return nil },
				})
				if snap == nil {
					t.Fatal("periodic snapshot never fired")
				}
				if prefix.res.CompletedRounds != half {
					t.Fatalf("prefix completed %d rounds, want %d", prefix.res.CompletedRounds, half)
				}

				resumed := runCkpt(t, engine, clients, 2*half, lazy, &CheckpointConfig{Resume: snap})
				assertResumedMatchesFull(t, full, prefix, resumed, clients)
			})
		}
	}
}

// chaosLogger forwards to an inner logger and raises the kill flag the
// moment it sees a client event of the target round — modeling a signal
// arriving mid-round; the engine must carry on to its quiescent boundary
// before snapshotting.
type chaosLogger struct {
	inner     RoundLogger
	killRound int
	killed    *bool
}

func (l chaosLogger) LogClientRound(e ClientRoundLog) {
	if e.Round >= l.killRound {
		*l.killed = true
	}
	l.inner.LogClientRound(e)
}

func (l chaosLogger) LogRoundSummary(e RoundSummaryLog) { l.inner.LogRoundSummary(e) }

// TestChaosKillResume kills a run mid-round via the polled Stop hook,
// restores the emitted snapshot into a fresh run, and requires the
// stitched execution to be byte-equal to an uninterrupted one — for both
// engines. Run under -race this also proves the snapshot path is free of
// data races with the training fan-out.
func TestChaosKillResume(t *testing.T) {
	const clients = 32
	const rounds = 6
	for _, engine := range []string{"sync-random", "async"} {
		t.Run(engine, func(t *testing.T) {
			full := runCkpt(t, engine, clients, rounds, true, nil)

			// Interrupted run: the kill lands mid-round 2.
			p := ckptPop(t, clients, true)
			reg := obs.NewRegistry()
			p.Instrument(reg)
			var logBuf bytes.Buffer
			killed := false
			var snap []byte
			cfg := ckptConfig(engine, rounds)
			cfg.Metrics = reg
			cfg.Timeline = obs.NewTimeline(reg, 64)
			cfg.Logger = chaosLogger{inner: NewJSONLLogger(&logBuf), killRound: 2, killed: &killed}
			cfg.Checkpoint = &CheckpointConfig{
				Stop: func() bool { return killed },
				Sink: func(b []byte) error { snap = b; return nil },
			}
			var res *Result
			var err error
			if engine == "async" {
				res, err = RunAsyncPop(p, newCkptCtrl(), cfg)
			} else {
				res, err = RunSyncPop(p, selection.NewRandom(7), newCkptCtrl(), cfg)
			}
			if err != nil {
				t.Fatalf("interrupted run errored: %v", err)
			}
			if snap == nil {
				t.Fatal("stop did not produce a snapshot")
			}
			if res.CompletedRounds <= 0 || res.CompletedRounds >= rounds {
				t.Fatalf("interrupted run completed %d of %d rounds — kill did not land mid-run", res.CompletedRounds, rounds)
			}

			resumed := runCkpt(t, engine, clients, rounds, true, &CheckpointConfig{Resume: snap})
			if !reflect.DeepEqual(resumed.res.FinalParams, full.res.FinalParams) {
				t.Errorf("FinalParams differ after chaos resume")
			}
			if logBuf.String()+resumed.log != full.log {
				t.Errorf("JSONL logs: interrupted(%dB) + resumed(%dB) != full(%dB)",
					logBuf.Len(), len(resumed.log), len(full.log))
			}
			if resumed.metrics != full.metrics {
				t.Errorf("metrics exposition differs after chaos resume")
			}
			if resumed.timeline != full.timeline {
				t.Errorf("timeline export differs after chaos resume")
			}
		})
	}
}

// snapshotOf captures one sync snapshot for the corruption/compat tests.
func snapshotOf(t *testing.T, clients int) []byte {
	t.Helper()
	var snap []byte
	runCkpt(t, "sync-random", clients, 3, false, &CheckpointConfig{
		Every: 3,
		Sink:  func(b []byte) error { snap = b; return nil },
	})
	if snap == nil {
		t.Fatal("no snapshot produced")
	}
	return snap
}

// TestCorruptSnapshotFailsCleanly flips a payload byte and requires the
// resume to fail with the typed checksum error before mutating anything:
// the same population object then runs from scratch and must match a
// clean-population run exactly.
func TestCorruptSnapshotFailsCleanly(t *testing.T) {
	const clients = 32
	snap := snapshotOf(t, clients)
	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)/2] ^= 0x41

	p := ckptPop(t, clients, false)
	cfg := ckptConfig("sync-random", 3)
	cfg.Checkpoint = &CheckpointConfig{Resume: corrupt}
	_, err := RunSyncPop(p, selection.NewRandom(7), newCkptCtrl(), cfg)
	if !errors.Is(err, checkpoint.ErrChecksum) {
		t.Fatalf("corrupt resume: got %v, want ErrChecksum", err)
	}

	// Zero partial mutation: the failed resume must have left the
	// population untouched, so running it normally matches a fresh one.
	cfg.Checkpoint = nil
	after, err := RunSyncPop(p, selection.NewRandom(7), newCkptCtrl(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := runCkpt(t, "sync-random", clients, 3, false, nil)
	if !reflect.DeepEqual(after.FinalParams, clean.res.FinalParams) {
		t.Errorf("population was mutated by the failed restore")
	}

	// Truncation gets its own typed error.
	cfgT := ckptConfig("sync-random", 3)
	cfgT.Checkpoint = &CheckpointConfig{Resume: snap[:len(snap)-5]}
	_, err = RunSyncPop(ckptPop(t, clients, false), selection.NewRandom(7), newCkptCtrl(), cfgT)
	if !errors.Is(err, checkpoint.ErrTruncated) {
		t.Fatalf("truncated resume: got %v, want ErrTruncated", err)
	}
}

// TestResumeRejectsMismatchedConfig pins the fingerprint check (field-level
// CompatError) and the engine-kind check (a sync snapshot cannot resume an
// async run).
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	const clients = 32
	snap := snapshotOf(t, clients)

	cfg := ckptConfig("sync-random", 3)
	cfg.Seed = 6
	cfg.Checkpoint = &CheckpointConfig{Resume: snap}
	_, err := RunSyncPop(ckptPop(t, clients, false), selection.NewRandom(7), newCkptCtrl(), cfg)
	var ce *checkpoint.CompatError
	if !errors.As(err, &ce) {
		t.Fatalf("seed mismatch: got %v, want CompatError", err)
	}
	if ce.Field != "seed" {
		t.Fatalf("CompatError field %q, want \"seed\"", ce.Field)
	}

	acfg := ckptConfig("async", 3)
	acfg.Checkpoint = &CheckpointConfig{Resume: snap}
	_, err = RunAsyncPop(ckptPop(t, clients, false), newCkptCtrl(), acfg)
	var fe *checkpoint.FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("engine-kind mismatch: got %v, want FormatError", err)
	}
}

// TestCompletedRoundsReported pins the new Result fields on an ordinary
// uncheckpointed run.
func TestCompletedRoundsReported(t *testing.T) {
	out := runCkpt(t, "sync-random", 32, 3, false, nil)
	if out.res.CompletedRounds != 3 {
		t.Fatalf("CompletedRounds = %d, want 3", out.res.CompletedRounds)
	}
	if out.res.SimClockSeconds != out.res.WallClockSeconds {
		t.Fatalf("SimClockSeconds %v != WallClockSeconds %v", out.res.SimClockSeconds, out.res.WallClockSeconds)
	}
}
