package fl

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"floatfl/internal/device"
	"floatfl/internal/opt"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

// feedbackDrivenController is a deterministic stand-in for a learning
// controller: its decisions depend on every Feedback call it has received,
// including the exact accuracy-improvement values and their delivery
// order. If the engines delivered feedback out of order, concurrently, or
// with different values under parallelism, its decision sequence — and
// with it the whole run — would diverge. It cycles through techniques that
// exercise the stochastic update transforms (quantization, pruning), so
// the per-client RNG derivation is under test too.
type feedbackDrivenController struct {
	techs []opt.Technique
	step  int
	acc   float64
}

func newFeedbackDriven() *feedbackDrivenController {
	return &feedbackDrivenController{
		techs: []opt.Technique{opt.TechNone, opt.TechQuant8, opt.TechPrune50, opt.TechQuant16, opt.TechPartial50},
	}
}

func (c *feedbackDrivenController) Name() string { return "feedback-driven" }

func (c *feedbackDrivenController) Decide(int, *device.Client, device.Resources, float64) opt.Technique {
	return c.techs[c.step%len(c.techs)]
}

func (c *feedbackDrivenController) Feedback(_ int, _ *device.Client, _ opt.Technique,
	out device.Outcome, accImprove float64) {
	// Advance by a feedback-value-dependent stride so any perturbation of
	// delivery order or training results changes all later decisions.
	c.step += 1 + int(math.Abs(accImprove)*1e6)%5
	if out.Completed {
		c.acc += accImprove
	}
}

func parSyncConfig(par int) Config {
	cfg := smallConfig()
	cfg.Rounds = 6
	cfg.Parallelism = par
	return cfg
}

func runSyncAt(t *testing.T, par int) (*Result, *feedbackDrivenController) {
	t.Helper()
	fed, pop := testSetup(t, 20, trace.ScenarioDynamic)
	ctrl := newFeedbackDriven()
	res, err := RunSync(fed, pop, selection.NewRandom(7), ctrl, parSyncConfig(par))
	if err != nil {
		t.Fatal(err)
	}
	return res, ctrl
}

func runAsyncAt(t *testing.T, par int) (*Result, *feedbackDrivenController) {
	t.Helper()
	fed, pop := testSetup(t, 24, trace.ScenarioDynamic)
	cfg := parSyncConfig(par)
	cfg.Rounds = 5 // aggregations
	cfg.Concurrency = 12
	cfg.BufferK = 4
	ctrl := newFeedbackDriven()
	res, err := RunAsync(fed, pop, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, ctrl
}

// assertIdenticalResults requires bit-for-bit equality of everything a run
// reports: accuracy trajectories, wall clock, and the full ledger.
func assertIdenticalResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.GlobalAccHistory, b.GlobalAccHistory) {
		t.Errorf("%s: GlobalAccHistory differs:\n  a=%v\n  b=%v", label, a.GlobalAccHistory, b.GlobalAccHistory)
	}
	if !reflect.DeepEqual(a.EvalRounds, b.EvalRounds) {
		t.Errorf("%s: EvalRounds differ: %v vs %v", label, a.EvalRounds, b.EvalRounds)
	}
	if a.FinalGlobalAcc != b.FinalGlobalAcc {
		t.Errorf("%s: FinalGlobalAcc differs: %v vs %v", label, a.FinalGlobalAcc, b.FinalGlobalAcc)
	}
	if a.WallClockSeconds != b.WallClockSeconds {
		t.Errorf("%s: WallClockSeconds differs: %v vs %v", label, a.WallClockSeconds, b.WallClockSeconds)
	}
	if !reflect.DeepEqual(a.FinalClientAccs, b.FinalClientAccs) {
		t.Errorf("%s: FinalClientAccs differ", label)
	}
	if a.FinalAccStats != b.FinalAccStats {
		t.Errorf("%s: FinalAccStats differ: %+v vs %+v", label, a.FinalAccStats, b.FinalAccStats)
	}
	if !reflect.DeepEqual(a.Ledger, b.Ledger) {
		t.Errorf("%s: ledgers differ:\n  a=%+v\n  b=%+v", label, a.Ledger, b.Ledger)
	}
	if !reflect.DeepEqual(a.FinalParams, b.FinalParams) {
		t.Errorf("%s: FinalParams differ", label)
	}
}

// TestRunSyncParallelismBitIdentical is the determinism golden test:
// Parallelism=8 must reproduce Parallelism=1 exactly, down to the last
// bit of every accuracy value, wall-clock second, and ledger counter.
func TestRunSyncParallelismBitIdentical(t *testing.T) {
	seq, seqCtrl := runSyncAt(t, 1)
	par, parCtrl := runSyncAt(t, 8)
	assertIdenticalResults(t, "sync p1-vs-p8", seq, par)
	if seqCtrl.step != parCtrl.step || seqCtrl.acc != parCtrl.acc {
		t.Errorf("controller state diverged: (%d, %v) vs (%d, %v)",
			seqCtrl.step, seqCtrl.acc, parCtrl.step, parCtrl.acc)
	}
}

// TestRunSyncParallelRepeatable proves the parallel schedule itself is
// stable: two back-to-back Parallelism=8 runs must match exactly (no
// map-iteration or goroutine-scheduling nondeterminism).
func TestRunSyncParallelRepeatable(t *testing.T) {
	a, _ := runSyncAt(t, 8)
	b, _ := runSyncAt(t, 8)
	assertIdenticalResults(t, "sync p8-vs-p8", a, b)
}

func TestRunAsyncParallelismBitIdentical(t *testing.T) {
	seq, seqCtrl := runAsyncAt(t, 1)
	par, parCtrl := runAsyncAt(t, 8)
	assertIdenticalResults(t, "async p1-vs-p8", seq, par)
	if seqCtrl.step != parCtrl.step || seqCtrl.acc != parCtrl.acc {
		t.Errorf("controller state diverged: (%d, %v) vs (%d, %v)",
			seqCtrl.step, seqCtrl.acc, parCtrl.step, parCtrl.acc)
	}
}

func TestRunAsyncParallelRepeatable(t *testing.T) {
	a, _ := runAsyncAt(t, 8)
	b, _ := runAsyncAt(t, 8)
	assertIdenticalResults(t, "async p8-vs-p8", a, b)
}

// TestParallelExecutionRaceStress exists to give `go test -race` real
// concurrency to inspect: multi-round sync and async simulations with more
// workers than clients per round, a learning controller, and stochastic
// update transforms. Before the worker-pool layer the engines were fully
// sequential and race runs passed vacuously.
func TestParallelExecutionRaceStress(t *testing.T) {
	fed, pop := testSetup(t, 32, trace.ScenarioDynamic)
	cfg := smallConfig()
	cfg.Rounds = 8
	cfg.ClientsPerRound = 16
	cfg.Parallelism = 16
	if _, err := RunSync(fed, pop, selection.NewRandom(13), newFeedbackDriven(), cfg); err != nil {
		t.Fatal(err)
	}

	fed2, pop2 := testSetup(t, 32, trace.ScenarioDynamic)
	acfg := smallConfig()
	acfg.Rounds = 6
	acfg.Concurrency = 20
	acfg.BufferK = 8
	acfg.Parallelism = 16
	if _, err := RunAsync(fed2, pop2, newFeedbackDriven(), acfg); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSlot(t *testing.T) {
	for _, tc := range []struct{ n, par int }{
		{0, 4}, {1, 1}, {1, 8}, {5, 1}, {7, 3}, {16, 32}, {100, 8},
	} {
		visits := make([]int32, tc.n)
		maxWorkers := tc.par
		if tc.n < maxWorkers {
			maxWorkers = tc.n
		}
		var badWorker int32
		forEachSlot(tc.n, tc.par, func(worker, slot int) {
			if worker < 0 || worker >= maxWorkers {
				atomic.StoreInt32(&badWorker, int32(worker)+1)
			}
			atomic.AddInt32(&visits[slot], 1)
		})
		if badWorker != 0 {
			t.Fatalf("n=%d par=%d: worker index %d out of range", tc.n, tc.par, badWorker-1)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d par=%d: slot %d visited %d times", tc.n, tc.par, i, v)
			}
		}
	}
}

func TestHasDuplicateIDs(t *testing.T) {
	if hasDuplicateIDs([]int{1, 2, 3}) {
		t.Fatal("distinct IDs flagged as duplicates")
	}
	if !hasDuplicateIDs([]int{1, 2, 1}) {
		t.Fatal("duplicate IDs not detected")
	}
	if hasDuplicateIDs(nil) {
		t.Fatal("empty selection flagged as duplicates")
	}
}

func TestConfigParallelismDefault(t *testing.T) {
	cfg := Config{Rounds: 1, ClientsPerRound: 1, Arch: "mlp-small"}.withDefaults()
	if cfg.Parallelism < 1 {
		t.Fatalf("default Parallelism %d, want >= 1", cfg.Parallelism)
	}
	cfg = Config{Parallelism: 3}.withDefaults()
	if cfg.Parallelism != 3 {
		t.Fatalf("explicit Parallelism overridden: %d", cfg.Parallelism)
	}
}
