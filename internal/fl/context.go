package fl

import (
	"math/rand"

	"floatfl/internal/nn"
	"floatfl/internal/tensor"
)

// trainContext is the per-worker scratch for trainLocal: one local model
// clone plus the buffers a client round needs. Contexts are created empty
// and populated lazily on first use, then reused for every subsequent
// client round that worker executes — so steady-state rounds allocate
// nothing.
//
// A context belongs to exactly one worker goroutine for the duration of a
// fan-out; the pool itself is only grown on the single-threaded dispatch
// pass (contextPool.ensure).
type trainContext struct {
	local     *nn.Model     // reusable local model, re-loaded per client
	applied   tensor.Vector // before + transformed delta scratch
	updateRNG *rand.Rand    // update-transform stream, reseeded per client
}

// ensure lazily builds the context's model and scratch for proto's
// architecture.
func (c *trainContext) ensure(proto *nn.Model) {
	if c.local == nil {
		c.local = proto.Clone()
		c.applied = tensor.NewVector(proto.NumParams())
	}
}

// seedUpdateRNG resets the context's update-transform stream to the given
// seed, producing the same stream as a fresh rand.New(rand.NewSource(seed))
// without allocating.
func (c *trainContext) seedUpdateRNG(seed int64) *rand.Rand {
	if c.updateRNG == nil {
		c.updateRNG = rand.New(rand.NewSource(seed))
	} else {
		c.updateRNG.Seed(seed)
	}
	return c.updateRNG
}

// contextPool owns the engines' reusable training state: one trainContext
// per worker (models and scratch follow the worker, whichever slots it
// steals) and one delta buffer per slot (a delta must survive until the
// ordered collect pass consumes it, after the whole fan-out completes).
//
// ensure must be called on the single-threaded pass before each fan-out;
// workers then access disjoint contexts (by worker index) and disjoint
// delta buffers (by slot index) without synchronization.
type contextPool struct {
	proto   *nn.Model
	workers []*trainContext
	deltas  []tensor.Vector
}

func newContextPool(proto *nn.Model) *contextPool {
	return &contextPool{proto: proto}
}

// ensure grows the pool to at least `workers` contexts and `slots` delta
// buffers. Contexts start empty (their model is built on first use), so
// over-provisioned workers cost nothing.
func (p *contextPool) ensure(workers, slots int) {
	for len(p.workers) < workers {
		p.workers = append(p.workers, &trainContext{})
	}
	for len(p.deltas) < slots {
		p.deltas = append(p.deltas, tensor.NewVector(p.proto.NumParams()))
	}
}

func (p *contextPool) ctx(worker int) *trainContext { return p.workers[worker] }
func (p *contextPool) delta(slot int) tensor.Vector { return p.deltas[slot] }
