package fl

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"floatfl/internal/device"
	"floatfl/internal/opt"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

func TestJSONLLoggerRecords(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONLLogger(&buf)
	l.LogClientRound(ClientRoundLog{Round: 3, ClientID: 7, Technique: "quant8", Completed: true})
	l.LogRoundSummary(RoundSummaryLog{Round: 3, Selected: 10, Completed: 8, Dropped: 2})
	if l.Err() != nil {
		t.Fatal(l.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 JSONL lines, got %d", len(lines))
	}
	var rec taggedRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Type != "client_round" {
		t.Fatalf("first record type %q", rec.Type)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Type != "round_summary" {
		t.Fatalf("second record type %q", rec.Type)
	}
}

// TestLogZeroValuesSurvive is the regression test for the omitempty bug:
// a measured global accuracy of exactly zero and a deadline diff of
// exactly zero are legitimate values and must appear in the JSON, while
// an eval-free round must still omit global_acc entirely.
func TestLogZeroValuesSurvive(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONLLogger(&buf)
	zero := 0.0
	l.LogRoundSummary(RoundSummaryLog{Round: 1, Selected: 4, GlobalAcc: &zero})
	l.LogRoundSummary(RoundSummaryLog{Round: 2, Selected: 4}) // no eval this round
	l.LogClientRound(ClientRoundLog{Round: 1, ClientID: 0, Completed: true, DeadlineDiff: 0})
	if l.Err() != nil {
		t.Fatal(l.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 JSONL lines, got %d", len(lines))
	}
	if !strings.Contains(lines[0], `"global_acc":0`) {
		t.Errorf("zero global accuracy dropped from the record: %s", lines[0])
	}
	if strings.Contains(lines[1], "global_acc") {
		t.Errorf("eval-free round must omit global_acc: %s", lines[1])
	}
	if !strings.Contains(lines[2], `"deadline_diff":0`) {
		t.Errorf("zero deadline diff dropped from the record: %s", lines[2])
	}

	// Decoding round-trips the distinction: present-and-zero vs absent.
	var withEval, withoutEval RoundSummaryLog
	var env struct {
		Data json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &env); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(env.Data, &withEval); err != nil {
		t.Fatal(err)
	}
	if withEval.GlobalAcc == nil || *withEval.GlobalAcc != 0 {
		t.Errorf("decoded GlobalAcc = %v, want pointer to 0", withEval.GlobalAcc)
	}
	if err := json.Unmarshal([]byte(lines[1]), &env); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(env.Data, &withoutEval); err != nil {
		t.Fatal(err)
	}
	if withoutEval.GlobalAcc != nil {
		t.Errorf("decoded GlobalAcc = %v for eval-free round, want nil", *withoutEval.GlobalAcc)
	}
}

type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, &json.UnsupportedValueError{}
}

func TestJSONLLoggerStopsAfterError(t *testing.T) {
	fw := &failingWriter{}
	l := NewJSONLLogger(fw)
	l.LogClientRound(ClientRoundLog{})
	if l.Err() == nil {
		t.Fatal("write error not captured")
	}
	l.LogClientRound(ClientRoundLog{})
	if fw.n != 1 {
		t.Fatalf("logger kept writing after error: %d writes", fw.n)
	}
}

func TestClientRoundLogFromOutcome(t *testing.T) {
	out := device.Outcome{
		Completed:    false,
		Reason:       device.DropDeadline,
		Cost:         device.Cost{ComputeSeconds: 10, CommSeconds: 5, UploadBytes: 100},
		Resources:    device.Resources{CPUFrac: 0.3, NetFrac: 0.4, BandwidthMbps: 12, Battery: 0.8},
		DeadlineDiff: 0.25,
	}
	rec := clientRoundLog(9, 4, opt.TechPrune50, out, -0.01)
	if rec.Round != 9 || rec.ClientID != 4 || rec.Technique != "prune50" {
		t.Fatalf("identity fields wrong: %+v", rec)
	}
	if rec.Completed || rec.Reason != "deadline" {
		t.Fatalf("dropout fields wrong: %+v", rec)
	}
	if rec.ComputeSeconds != 10 || rec.DeadlineDiff != 0.25 || rec.AccImprove != -0.01 {
		t.Fatalf("cost/reward fields wrong: %+v", rec)
	}
	// Completed outcomes leave Reason empty (omitted in JSON).
	out.Completed = true
	out.Reason = device.DropNone
	rec = clientRoundLog(9, 4, opt.TechPrune50, out, 0.02)
	if rec.Reason != "" {
		t.Fatalf("completed record should omit reason, got %q", rec.Reason)
	}
}

func TestRunSyncEmitsLogs(t *testing.T) {
	fed, pop := testSetup(t, 16, trace.ScenarioDynamic)
	var buf bytes.Buffer
	cfg := smallConfig()
	cfg.Rounds = 4
	cfg.Logger = NewJSONLLogger(&buf)
	if _, err := RunSync(fed, pop, selection.NewRandom(3), NoOpController{}, cfg); err != nil {
		t.Fatal(err)
	}
	var clientRecs, summaryRecs int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec taggedRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line: %v", err)
		}
		switch rec.Type {
		case "client_round":
			clientRecs++
		case "round_summary":
			summaryRecs++
		default:
			t.Fatalf("unknown record type %q", rec.Type)
		}
	}
	if clientRecs != 4*cfg.ClientsPerRound {
		t.Fatalf("client records %d, want %d", clientRecs, 4*cfg.ClientsPerRound)
	}
	if summaryRecs != 4 {
		t.Fatalf("summary records %d, want 4", summaryRecs)
	}
}

func TestRunAsyncEmitsLogs(t *testing.T) {
	fed, pop := testSetup(t, 20, trace.ScenarioDynamic)
	var buf bytes.Buffer
	cfg := smallConfig()
	cfg.Rounds = 3
	cfg.Concurrency = 10
	cfg.BufferK = 4
	cfg.Logger = NewJSONLLogger(&buf)
	if _, err := RunAsync(fed, pop, NoOpController{}, cfg); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("async run emitted no logs")
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var rec taggedRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line: %v", err)
		}
		n++
	}
	if n < cfg.Rounds*cfg.BufferK {
		t.Fatalf("too few async log records: %d", n)
	}
}
