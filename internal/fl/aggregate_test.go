package fl

import (
	"math"
	"math/rand"
	"testing"

	"floatfl/internal/nn"
	"floatfl/internal/tensor"
)

func aggModel(t *testing.T) *nn.Model {
	t.Helper()
	m, err := nn.NewModel("mlp-small", 6, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestApplyAggregateWeightedMean(t *testing.T) {
	m := aggModel(t)
	before := m.Parameters().Clone()
	n := m.NumParams()
	d1 := tensor.NewVector(n)
	d1.Fill(1)
	d2 := tensor.NewVector(n)
	d2.Fill(3)
	// weights 1 and 3 -> mean = (1*1 + 3*3)/4 = 2.5
	if err := applyAggregate(m, []tensor.Vector{d1, d2}, []float64{1, 3}); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters()
	for i := range after {
		if math.Abs(after[i]-(before[i]+2.5)) > 1e-12 {
			t.Fatalf("weighted mean wrong at %d: %v -> %v", i, before[i], after[i])
		}
	}
}

func TestApplyAggregateEmptyAndZeroWeights(t *testing.T) {
	m := aggModel(t)
	before := m.Parameters().Clone()
	if err := applyAggregate(m, nil, nil); err != nil {
		t.Fatal(err)
	}
	d := tensor.NewVector(m.NumParams())
	d.Fill(1)
	if err := applyAggregate(m, []tensor.Vector{d}, []float64{0}); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters()
	for i := range after {
		if after[i] != before[i] {
			t.Fatal("empty/zero-weight aggregation modified the model")
		}
	}
}

func TestApplyAggregateDiscardsNonFinite(t *testing.T) {
	m := aggModel(t)
	before := m.Parameters().Clone()
	n := m.NumParams()

	good := tensor.NewVector(n)
	good.Fill(1)
	poisonNaN := tensor.NewVector(n)
	poisonNaN.Fill(1)
	poisonNaN[3] = math.NaN()
	poisonInf := tensor.NewVector(n)
	poisonInf.Fill(1)
	poisonInf[0] = math.Inf(1)

	if err := applyAggregate(m,
		[]tensor.Vector{poisonNaN, good, poisonInf},
		[]float64{5, 2, 5}); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters()
	for i := range after {
		if math.IsNaN(after[i]) || math.IsInf(after[i], 0) {
			t.Fatal("poisoned delta reached the global model")
		}
		// Only the good delta should have applied, at full weight.
		if math.Abs(after[i]-(before[i]+1)) > 1e-12 {
			t.Fatalf("aggregation mixed in a discarded delta at %d", i)
		}
	}
}

func TestApplyAggregateAllPoisoned(t *testing.T) {
	m := aggModel(t)
	before := m.Parameters().Clone()
	bad := tensor.NewVector(m.NumParams())
	bad[0] = math.NaN()
	if err := applyAggregate(m, []tensor.Vector{bad}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters()
	for i := range after {
		if after[i] != before[i] {
			t.Fatal("all-poisoned round should be a no-op")
		}
	}
}

func TestApplyAggregateZeroCompletedClients(t *testing.T) {
	// A round where every selected client dropped out aggregates nothing:
	// empty and nil slices must both be no-ops, not panics.
	m := aggModel(t)
	before := m.Parameters().Clone()
	if err := applyAggregate(m, []tensor.Vector{}, []float64{}); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters()
	for i := range after {
		if after[i] != before[i] {
			t.Fatal("zero-completed aggregation modified the model")
		}
	}
}

func TestApplyAggregateAllZeroWeights(t *testing.T) {
	// Weights can all be zero (e.g. every completed client had an empty
	// shard); total weight 0 must not divide.
	m := aggModel(t)
	before := m.Parameters().Clone()
	n := m.NumParams()
	d1 := tensor.NewVector(n)
	d1.Fill(2)
	d2 := tensor.NewVector(n)
	d2.Fill(-3)
	if err := applyAggregate(m, []tensor.Vector{d1, d2}, []float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters()
	for i := range after {
		if after[i] != before[i] {
			t.Fatal("all-zero-weight aggregation modified the model")
		}
	}
}

func TestApplyAggregateSingleClientRound(t *testing.T) {
	// One completed client: its delta applies at full strength regardless
	// of its absolute weight.
	m := aggModel(t)
	before := m.Parameters().Clone()
	d := tensor.NewVector(m.NumParams())
	d.Fill(0.25)
	if err := applyAggregate(m, []tensor.Vector{d}, []float64{17}); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters()
	for i := range after {
		if math.Abs(after[i]-(before[i]+0.25)) > 1e-12 {
			t.Fatalf("single-client delta not applied at full weight at %d", i)
		}
	}
}

func TestMeanShardSize(t *testing.T) {
	if got := meanShardSize(nil); got != 1 {
		t.Fatalf("empty federation mean shard = %d, want 1", got)
	}
	if got := meanShardSize([][]nn.Sample{{}, {}}); got != 1 {
		t.Fatalf("all-empty shards mean = %d, want 1", got)
	}
	shards := [][]nn.Sample{make([]nn.Sample, 10), make([]nn.Sample, 20)}
	if got := meanShardSize(shards); got != 15 {
		t.Fatalf("mean shard = %d, want 15", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !isFinite(tensor.Vector{1, -2, 0}) {
		t.Fatal("finite vector rejected")
	}
	if isFinite(tensor.Vector{1, math.NaN()}) {
		t.Fatal("NaN accepted")
	}
	if isFinite(tensor.Vector{math.Inf(-1)}) {
		t.Fatal("Inf accepted")
	}
	if !isFinite(nil) {
		t.Fatal("empty vector should be finite")
	}
}
