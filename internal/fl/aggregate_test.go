package fl

import (
	"math"
	"math/rand"
	"testing"

	"floatfl/internal/nn"
	"floatfl/internal/tensor"
)

func aggModel(t *testing.T) *nn.Model {
	t.Helper()
	m, err := nn.NewModel("mlp-small", 6, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestApplyAggregateWeightedMean(t *testing.T) {
	m := aggModel(t)
	before := m.Parameters()
	n := m.NumParams()
	d1 := tensor.NewVector(n)
	d1.Fill(1)
	d2 := tensor.NewVector(n)
	d2.Fill(3)
	// weights 1 and 3 -> mean = (1*1 + 3*3)/4 = 2.5
	if err := applyAggregate(m, []tensor.Vector{d1, d2}, []float64{1, 3}); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters()
	for i := range after {
		if math.Abs(after[i]-(before[i]+2.5)) > 1e-12 {
			t.Fatalf("weighted mean wrong at %d: %v -> %v", i, before[i], after[i])
		}
	}
}

func TestApplyAggregateEmptyAndZeroWeights(t *testing.T) {
	m := aggModel(t)
	before := m.Parameters()
	if err := applyAggregate(m, nil, nil); err != nil {
		t.Fatal(err)
	}
	d := tensor.NewVector(m.NumParams())
	d.Fill(1)
	if err := applyAggregate(m, []tensor.Vector{d}, []float64{0}); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters()
	for i := range after {
		if after[i] != before[i] {
			t.Fatal("empty/zero-weight aggregation modified the model")
		}
	}
}

func TestApplyAggregateDiscardsNonFinite(t *testing.T) {
	m := aggModel(t)
	before := m.Parameters()
	n := m.NumParams()

	good := tensor.NewVector(n)
	good.Fill(1)
	poisonNaN := tensor.NewVector(n)
	poisonNaN.Fill(1)
	poisonNaN[3] = math.NaN()
	poisonInf := tensor.NewVector(n)
	poisonInf.Fill(1)
	poisonInf[0] = math.Inf(1)

	if err := applyAggregate(m,
		[]tensor.Vector{poisonNaN, good, poisonInf},
		[]float64{5, 2, 5}); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters()
	for i := range after {
		if math.IsNaN(after[i]) || math.IsInf(after[i], 0) {
			t.Fatal("poisoned delta reached the global model")
		}
		// Only the good delta should have applied, at full weight.
		if math.Abs(after[i]-(before[i]+1)) > 1e-12 {
			t.Fatalf("aggregation mixed in a discarded delta at %d", i)
		}
	}
}

func TestApplyAggregateAllPoisoned(t *testing.T) {
	m := aggModel(t)
	before := m.Parameters()
	bad := tensor.NewVector(m.NumParams())
	bad[0] = math.NaN()
	if err := applyAggregate(m, []tensor.Vector{bad}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	after := m.Parameters()
	for i := range after {
		if after[i] != before[i] {
			t.Fatal("all-poisoned round should be a no-op")
		}
	}
}

func TestIsFinite(t *testing.T) {
	if !isFinite(tensor.Vector{1, -2, 0}) {
		t.Fatal("finite vector rejected")
	}
	if isFinite(tensor.Vector{1, math.NaN()}) {
		t.Fatal("NaN accepted")
	}
	if isFinite(tensor.Vector{math.Inf(-1)}) {
		t.Fatal("Inf accepted")
	}
	if !isFinite(nil) {
		t.Fatal("empty vector should be finite")
	}
}
