package data

import (
	"fmt"
	"math"
	"math/rand"

	"floatfl/internal/nn"
	"floatfl/internal/tensor"
	"floatfl/internal/wset"
)

// ClientSeed mixes the federation seed with a client ID into the seed of
// that client's private RNG stream (splitmix64-style finalizer). Every
// stream is independent of every other, so client i's shard can be derived
// without generating clients 0..i-1 — the property the lazy population
// stands on. Negative IDs are reserved for shared streams (class centers,
// global test set).
func ClientSeed(seed, id int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1) // rand.NewSource wants a non-negative-friendly seed; any value works, keep it positive for readability
}

// Reserved pseudo-client IDs for the federation's shared streams.
const (
	centersStreamID    = -1
	globalTestStreamID = -2
)

// ClientShard is one client's lazily-derived data: its training set and
// local test split. Shards are immutable once derived; callers must not
// mutate the samples (they may be shared by a cache).
type ClientShard struct {
	Train     []nn.Sample
	LocalTest []nn.Sample
}

// normalizeGenerate applies Generate's defaulting rules so the lazy and
// eager paths agree on effective alpha / test fraction.
func normalizeGenerate(cfg GenerateConfig) GenerateConfig {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.1
	}
	if cfg.LocalTestFraction <= 0 || cfg.LocalTestFraction >= 1 {
		cfg.LocalTestFraction = 0.25
	}
	return cfg
}

// DeriveCenters derives the federation's shared class centers from the
// seed's dedicated stream. All clients of a federation share one centers
// slice; the vectors are immutable after derivation.
func DeriveCenters(p Profile, seed int64) []tensor.Vector {
	rng := rand.New(rand.NewSource(ClientSeed(seed, centersStreamID)))
	centers := make([]tensor.Vector, p.Classes)
	for c := range centers {
		centers[c] = tensor.NewVector(p.Dim)
		tensor.RandnInto(centers[c], p.Sep, rng)
	}
	return centers
}

// deriveSample draws one sample of the given class: center plus profile
// noise from the caller's stream.
func deriveSample(p Profile, centers []tensor.Vector, class int, rng *rand.Rand) nn.Sample {
	x := centers[class].Clone()
	noise := tensor.NewVector(p.Dim)
	tensor.RandnInto(noise, p.Noise, rng)
	x.AddScaled(1, noise)
	return nn.Sample{X: x, Label: class}
}

// DeriveClient derives client id's shard purely from (cfg.Seed, id): label
// distribution, sample volume, then train and local-test samples, all from
// the client's private RNG stream. The derivation is order-independent —
// deriving client 7 first and client 3 second yields bit-identical shards
// to any other order, unlike the sequential single-stream Generate.
func DeriveClient(p Profile, cfg GenerateConfig, centers []tensor.Vector, id int) ClientShard {
	cfg = normalizeGenerate(cfg)
	rng := rand.New(rand.NewSource(ClientSeed(cfg.Seed, int64(id))))
	labelDist := SampleDirichlet(p.Classes, cfg.Alpha, rng)
	n := sampleClientVolume(p.MeanSamplesPerClient, rng)
	nTest := int(math.Round(float64(n) * cfg.LocalTestFraction))
	if nTest < 2 {
		nTest = 2
	}
	train := make([]nn.Sample, 0, n)
	for s := 0; s < n; s++ {
		train = append(train, deriveSample(p, centers, sampleCategorical(labelDist, rng), rng))
	}
	test := make([]nn.Sample, 0, nTest)
	for s := 0; s < nTest; s++ {
		test = append(test, deriveSample(p, centers, sampleCategorical(labelDist, rng), rng))
	}
	return ClientShard{Train: train, LocalTest: test}
}

// DeriveShardSize derives only client id's sample count — the label-
// distribution and volume draws, without synthesizing any sample vectors.
// Used by provider statistics (mean shard size) at a tiny fraction of the
// cost of a full derivation.
func DeriveShardSize(p Profile, cfg GenerateConfig, id int) int {
	cfg = normalizeGenerate(cfg)
	rng := rand.New(rand.NewSource(ClientSeed(cfg.Seed, int64(id))))
	SampleDirichlet(p.Classes, cfg.Alpha, rng)
	return sampleClientVolume(p.MeanSamplesPerClient, rng)
}

// DeriveGlobalTest derives the class-balanced holdout from its dedicated
// stream.
func DeriveGlobalTest(p Profile, seed int64, centers []tensor.Vector) []nn.Sample {
	rng := rand.New(rand.NewSource(ClientSeed(seed, globalTestStreamID)))
	out := make([]nn.Sample, 0, p.TestSamples)
	for s := 0; s < p.TestSamples; s++ {
		out = append(out, deriveSample(p, centers, s%p.Classes, rng))
	}
	return out
}

// Provider derives client shards on demand from (seed, clientID) and keeps
// a bounded LRU working set resident. It is the lazy counterpart of
// Generate: a Provider with capacity ≥ Clients that touches every client
// produces the same federation Materialize would, but a round that touches
// only selected clients costs O(selected) memory instead of O(population).
//
// Providers are confined to the engines' single-threaded dispatch/collect
// passes (the same contract selectors and controllers already obey), which
// makes cache hit/miss/eviction counts deterministic.
type Provider struct {
	profile Profile
	cfg     GenerateConfig
	centers []tensor.Vector

	cache      *wset.Cache[int, ClientShard]
	globalTest []nn.Sample

	// OnDerive, when non-nil, observes each full shard derivation with the
	// number of samples synthesized (population telemetry hook).
	OnDerive func(samples int)
}

// NewProvider constructs a lazy shard provider. cacheClients bounds the
// unpinned resident working set (≤ 0 defaults to 4096). Only the shared
// state — class centers and the global test set — is derived eagerly.
func NewProvider(profileName string, cfg GenerateConfig, cacheClients int) (*Provider, error) {
	p, err := LookupProfile(profileName)
	if err != nil {
		return nil, err
	}
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("data: provider requires positive client count, got %d", cfg.Clients)
	}
	if cacheClients <= 0 {
		cacheClients = 4096
	}
	cfg = normalizeGenerate(cfg)
	centers := DeriveCenters(p, cfg.Seed)
	return &Provider{
		profile:    p,
		cfg:        cfg,
		centers:    centers,
		cache:      wset.New[int, ClientShard](cacheClients, nil),
		globalTest: DeriveGlobalTest(p, cfg.Seed, centers),
	}, nil
}

// Profile returns the dataset profile.
func (pr *Provider) Profile() Profile { return pr.profile }

// NumClients returns the population size.
func (pr *Provider) NumClients() int { return pr.cfg.Clients }

// Alpha returns the effective Dirichlet concentration.
func (pr *Provider) Alpha() float64 { return pr.cfg.Alpha }

// GlobalTest returns the shared class-balanced holdout.
func (pr *Provider) GlobalTest() []nn.Sample { return pr.globalTest }

// Shard returns client id's shard, deriving it on a cache miss.
func (pr *Provider) Shard(id int) ClientShard {
	if s, ok := pr.cache.Get(id); ok {
		return s
	}
	s := DeriveClient(pr.profile, pr.cfg, pr.centers, id)
	if pr.OnDerive != nil {
		pr.OnDerive(len(s.Train) + len(s.LocalTest))
	}
	pr.cache.Add(id, s)
	return s
}

// Acquire returns client id's shard pinned against eviction until the
// matching Release — the engines pin every selected client for the
// duration of its round so parallel workers never observe an evicted
// shard.
func (pr *Provider) Acquire(id int) ClientShard {
	s := pr.Shard(id)
	pr.cache.Pin(id)
	return s
}

// Release drops one pin reference on client id.
func (pr *Provider) Release(id int) { pr.cache.Unpin(id) }

// ShardSize returns client id's sample count without synthesizing samples
// or touching the cache.
func (pr *Provider) ShardSize(id int) int {
	return DeriveShardSize(pr.profile, pr.cfg, id)
}

// MeanShardSize estimates the population's mean shard size from a strided
// deterministic sample of at most sampleCap clients (≤ 0 defaults to 1024).
// The estimate is exact for populations within the cap.
func (pr *Provider) MeanShardSize(sampleCap int) int {
	if sampleCap <= 0 {
		sampleCap = 1024
	}
	n := pr.cfg.Clients
	if n <= 0 {
		return 1
	}
	count := n
	if count > sampleCap {
		count = sampleCap
	}
	total := 0
	for i := 0; i < count; i++ {
		total += pr.ShardSize(i * n / count)
	}
	m := total / count
	if m <= 0 {
		m = 1
	}
	return m
}

// Stats returns the working-set cache counters.
func (pr *Provider) Stats() wset.Stats { return pr.cache.Stats() }

// UnpinnedResidents returns the unpinned resident shard IDs in
// least-recently-used-first order. Shards are immutable, so residency plus
// cache stats is the provider's whole checkpointable state.
func (pr *Provider) UnpinnedResidents() []int { return pr.cache.UnpinnedKeys() }

// WarmCache derives the given shards in order, re-populating cache
// residency after a restore; the caller overwrites stats afterwards.
func (pr *Provider) WarmCache(ids []int) {
	for _, id := range ids {
		pr.Shard(id)
	}
}

// SetCacheStats overwrites the cache activity counters with captured ones.
func (pr *Provider) SetCacheStats(s wset.Stats) { pr.cache.SetStats(s) }

// Materialize eagerly derives every client into a Federation — the
// adapter that lets lazy-provider populations feed any API still wanting
// dense arrays, and the oracle the order-independence tests compare
// against. It bypasses the cache (materializing a million clients through
// an LRU would just thrash it).
func (pr *Provider) Materialize() *Federation {
	fed := &Federation{Profile: pr.profile, Alpha: pr.cfg.Alpha}
	fed.Train = make([][]nn.Sample, pr.cfg.Clients)
	fed.LocalTest = make([][]nn.Sample, pr.cfg.Clients)
	for i := 0; i < pr.cfg.Clients; i++ {
		s := DeriveClient(pr.profile, pr.cfg, pr.centers, i)
		fed.Train[i] = s.Train
		fed.LocalTest[i] = s.LocalTest
	}
	fed.GlobalTest = pr.globalTest
	return fed
}
