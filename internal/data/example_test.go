package data_test

import (
	"fmt"

	"floatfl/internal/data"
)

// Generating a non-IID federation: a small Dirichlet concentration makes
// each client's shard nearly single-class.
func ExampleGenerate() {
	fed, err := data.Generate("femnist", data.GenerateConfig{
		Clients: 4, Alpha: 0.05, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("clients: %d\n", len(fed.Train))
	fmt.Printf("feature dim: %d, classes: %d\n", fed.Profile.Dim, fed.Profile.Classes)
	for i, shard := range fed.Train {
		fmt.Printf("client %d: %d samples, skew %.2f\n",
			i, len(shard), data.SkewIndex(shard, fed.Profile.Classes))
	}
	// Output:
	// clients: 4
	// feature dim: 32, classes: 12
	// client 0: 143 samples, skew 0.86
	// client 1: 24 samples, skew 1.00
	// client 2: 120 samples, skew 1.00
	// client 3: 81 samples, skew 0.91
}
