package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLookupProfile(t *testing.T) {
	for _, name := range []string{"femnist", "cifar10", "openimage", "speech", "emnist"} {
		p, err := LookupProfile(name)
		if err != nil {
			t.Fatalf("LookupProfile(%s): %v", name, err)
		}
		if p.Dim <= 0 || p.Classes < 2 || p.Sep <= 0 || p.Noise <= 0 {
			t.Fatalf("profile %s malformed: %+v", name, p)
		}
	}
	if _, err := LookupProfile("imagenet"); err == nil {
		t.Fatal("LookupProfile accepted unknown dataset")
	}
}

func TestSampleGammaPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range []float64{0.01, 0.1, 0.5, 1, 2, 10} {
		for i := 0; i < 200; i++ {
			g := sampleGamma(shape, rng)
			if g < 0 || math.IsNaN(g) || math.IsInf(g, 0) {
				t.Fatalf("sampleGamma(%v) produced %v", shape, g)
			}
		}
	}
}

func TestSampleGammaMean(t *testing.T) {
	// E[Gamma(shape,1)] = shape. Check within sampling error.
	rng := rand.New(rand.NewSource(2))
	for _, shape := range []float64{0.5, 2, 5} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += sampleGamma(shape, rng)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.1*shape {
			t.Fatalf("Gamma(%v) sample mean %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestDirichletSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, alpha := range []float64{0.01, 0.1, 1, 100} {
		p := SampleDirichlet(10, alpha, rng)
		var sum float64
		for _, x := range p {
			if x < 0 {
				t.Fatalf("Dirichlet(%v) produced negative mass %v", alpha, x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet(%v) sums to %v", alpha, sum)
		}
	}
	if SampleDirichlet(0, 1, rng) != nil {
		t.Fatal("Dirichlet with k=0 should return nil")
	}
}

func TestDirichletConcentrationControlsSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	maxMass := func(alpha float64) float64 {
		var total float64
		for i := 0; i < 200; i++ {
			p := SampleDirichlet(10, alpha, rng)
			m := 0.0
			for _, x := range p {
				if x > m {
					m = x
				}
			}
			total += m
		}
		return total / 200
	}
	low, high := maxMass(0.05), maxMass(100)
	if low <= high {
		t.Fatalf("small alpha should concentrate mass: max-mass alpha=0.05 %v vs alpha=100 %v", low, high)
	}
	if low < 0.6 {
		t.Fatalf("alpha=0.05 should be near one-hot, got mean max mass %v", low)
	}
	if high > 0.2 {
		t.Fatalf("alpha=100 should be near uniform, got mean max mass %v", high)
	}
}

func TestGenerateShapes(t *testing.T) {
	fed, err := Generate("femnist", GenerateConfig{Clients: 25, Alpha: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Train) != 25 || len(fed.LocalTest) != 25 {
		t.Fatalf("wrong client count: %d train, %d test", len(fed.Train), len(fed.LocalTest))
	}
	if len(fed.GlobalTest) != fed.Profile.TestSamples {
		t.Fatalf("global test size %d, want %d", len(fed.GlobalTest), fed.Profile.TestSamples)
	}
	for i, shard := range fed.Train {
		if len(shard) < 8 {
			t.Fatalf("client %d shard too small: %d", i, len(shard))
		}
		for _, s := range shard {
			if len(s.X) != fed.Profile.Dim {
				t.Fatalf("sample dim %d, want %d", len(s.X), fed.Profile.Dim)
			}
			if s.Label < 0 || s.Label >= fed.Profile.Classes {
				t.Fatalf("label %d out of range", s.Label)
			}
		}
		if len(fed.LocalTest[i]) < 2 {
			t.Fatalf("client %d local test too small", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate("nope", GenerateConfig{Clients: 5}); err == nil {
		t.Fatal("Generate accepted unknown profile")
	}
	if _, err := Generate("femnist", GenerateConfig{Clients: 0}); err == nil {
		t.Fatal("Generate accepted zero clients")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("cifar10", GenerateConfig{Clients: 10, Alpha: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("cifar10", GenerateConfig{Clients: 10, Alpha: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train {
		if len(a.Train[i]) != len(b.Train[i]) {
			t.Fatal("shard sizes differ under identical seeds")
		}
		for j := range a.Train[i] {
			if a.Train[i][j].Label != b.Train[i][j].Label ||
				a.Train[i][j].X[0] != b.Train[i][j].X[0] {
				t.Fatal("samples differ under identical seeds")
			}
		}
	}
}

func TestAlphaControlsClientSkew(t *testing.T) {
	skew := func(alpha float64) float64 {
		fed, err := Generate("femnist", GenerateConfig{Clients: 30, Alpha: alpha, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, shard := range fed.Train {
			total += SkewIndex(shard, fed.Profile.Classes)
		}
		return total / float64(len(fed.Train))
	}
	nonIID, iid := skew(0.05), skew(100)
	if nonIID <= iid {
		t.Fatalf("alpha=0.05 skew %v should exceed alpha=100 skew %v", nonIID, iid)
	}
	if nonIID < 0.6 {
		t.Fatalf("alpha=0.05 shards should be highly skewed, got %v", nonIID)
	}
}

func TestSkewIndexBounds(t *testing.T) {
	fed, err := Generate("femnist", GenerateConfig{Clients: 10, Alpha: 0.05, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, shard := range fed.Train {
		s := SkewIndex(shard, fed.Profile.Classes)
		if s < 0 || s > 1.0000001 {
			t.Fatalf("SkewIndex out of [0,1]: %v", s)
		}
	}
	if SkewIndex(nil, 10) != 0 {
		t.Fatal("SkewIndex of empty shard should be 0")
	}
}

func TestLabelHistogram(t *testing.T) {
	fed, err := Generate("speech", GenerateConfig{Clients: 5, Alpha: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	h := LabelHistogram(fed.Train[0], fed.Profile.Classes)
	sum := 0
	for _, c := range h {
		sum += c
	}
	if sum != len(fed.Train[0]) {
		t.Fatalf("histogram sums to %d, want %d", sum, len(fed.Train[0]))
	}
}

// Property: any Dirichlet draw is a valid probability vector.
func TestDirichletPropertyQuick(t *testing.T) {
	f := func(seed int64, kRaw, aRaw uint8) bool {
		k := 1 + int(kRaw)%20
		alpha := 0.01 + float64(aRaw)/25.5 // 0.01 .. ~10
		rng := rand.New(rand.NewSource(seed))
		p := SampleDirichlet(k, alpha, rng)
		if len(p) != k {
			return false
		}
		var sum float64
		for _, x := range p {
			if x < 0 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalTestBalanced(t *testing.T) {
	fed, err := Generate("cifar10", GenerateConfig{Clients: 5, Alpha: 0.1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	h := LabelHistogram(fed.GlobalTest, fed.Profile.Classes)
	min, max := h[0], h[0]
	for _, c := range h {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Fatalf("global test not class-balanced: %v", h)
	}
}
