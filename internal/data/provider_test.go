package data

import (
	"testing"

	"floatfl/internal/nn"
)

func sampleEqual(a, b nn.Sample) bool {
	if a.Label != b.Label || len(a.X) != len(b.X) {
		return false
	}
	for i := range a.X {
		if a.X[i] != b.X[i] { // bit-exact, not approximate
			return false
		}
	}
	return true
}

func shardEqual(a, b ClientShard) bool {
	if len(a.Train) != len(b.Train) || len(a.LocalTest) != len(b.LocalTest) {
		return false
	}
	for i := range a.Train {
		if !sampleEqual(a.Train[i], b.Train[i]) {
			return false
		}
	}
	for i := range a.LocalTest {
		if !sampleEqual(a.LocalTest[i], b.LocalTest[i]) {
			return false
		}
	}
	return true
}

// TestDeriveClientOrderIndependent is the lazy-population correctness
// contract: for every dataset profile, deriving client i through a
// provider equals the eagerly Materialized federation's client i
// bit-for-bit, no matter in which order clients are accessed — including
// re-derivation after eviction (the tiny cache forces constant thrash).
func TestDeriveClientOrderIndependent(t *testing.T) {
	const clients = 12
	for _, name := range ProfileNames() {
		t.Run(name, func(t *testing.T) {
			cfg := GenerateConfig{Clients: clients, Alpha: 0.1, Seed: 11}

			eagerP, err := NewProvider(name, cfg, clients)
			if err != nil {
				t.Fatal(err)
			}
			fed := eagerP.Materialize()

			// Order A: forward. Order B: a scattered order with repeats,
			// through a cache of 2 so most accesses re-derive after
			// eviction.
			lazy, err := NewProvider(name, cfg, 2)
			if err != nil {
				t.Fatal(err)
			}
			orderA := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
			orderB := []int{7, 2, 11, 2, 0, 9, 7, 4, 1, 10, 3, 8, 5, 6, 0, 11}
			for _, order := range [][]int{orderB, orderA} {
				for _, id := range order {
					got := lazy.Shard(id)
					want := ClientShard{Train: fed.Train[id], LocalTest: fed.LocalTest[id]}
					if !shardEqual(got, want) {
						t.Fatalf("client %d: lazy shard deviates from materialized federation", id)
					}
				}
			}
			if len(lazy.GlobalTest()) != len(fed.GlobalTest) {
				t.Fatalf("global test length %d, want %d", len(lazy.GlobalTest()), len(fed.GlobalTest))
			}
			for i := range fed.GlobalTest {
				if !sampleEqual(lazy.GlobalTest()[i], fed.GlobalTest[i]) {
					t.Fatalf("global test sample %d deviates", i)
				}
			}
		})
	}
}

// TestDeriveShardSizeMatchesDerivation pins that the cheap size-only
// derivation agrees with the full one (they share a stream prefix, so a
// drift here means the streams were reordered).
func TestDeriveShardSizeMatchesDerivation(t *testing.T) {
	p, err := NewProvider("femnist", GenerateConfig{Clients: 50, Seed: 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 50; id += 7 {
		if got, want := p.ShardSize(id), len(p.Shard(id).Train); got != want {
			t.Fatalf("client %d: ShardSize %d, full derivation %d", id, got, want)
		}
	}
}

// TestMeanShardSizeSampled covers the provider-statistics path AutoDeadline
// and workSpecFor depend on: exact within the cap, sampled and positive
// beyond it, and stable across calls.
func TestMeanShardSizeSampled(t *testing.T) {
	p, err := NewProvider("femnist", GenerateConfig{Clients: 200, Seed: 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	exact := p.MeanShardSize(200)
	if exact <= 0 {
		t.Fatalf("exact mean shard size %d, want positive", exact)
	}
	sampled := p.MeanShardSize(32)
	if sampled <= 0 {
		t.Fatalf("sampled mean shard size %d, want positive", sampled)
	}
	if again := p.MeanShardSize(32); again != sampled {
		t.Fatalf("sampled mean not deterministic: %d then %d", sampled, again)
	}
	// The lognormal volume distribution concentrates near the profile mean;
	// a 32-client stride sample must land in the same ballpark.
	if sampled < exact/2 || sampled > exact*2 {
		t.Fatalf("sampled mean %d implausibly far from exact %d", sampled, exact)
	}
}

// TestProviderCacheBound asserts residency stays within capacity + pins.
func TestProviderCacheBound(t *testing.T) {
	p, err := NewProvider("femnist", GenerateConfig{Clients: 100, Seed: 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pinned := 0
	for id := 0; id < 100; id++ {
		if id%10 == 0 {
			p.Acquire(id)
			pinned++
		} else {
			p.Shard(id)
		}
		if got, bound := p.Stats().Resident, 4+pinned; got > bound {
			t.Fatalf("resident %d exceeds capacity+pinned %d", got, bound)
		}
	}
	for id := 0; id < 100; id += 10 {
		p.Release(id)
	}
	if got := p.Stats().Resident; got > 5 {
		t.Fatalf("resident %d after releases, want ≤ capacity+1", got)
	}
}
