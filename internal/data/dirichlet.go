package data

import (
	"math"
	"math/rand"
)

// sampleGamma draws from Gamma(shape, 1) using the Marsaglia–Tsang method,
// with the standard boosting trick for shape < 1. The Dirichlet sampler
// builds on it. shape must be positive.
func sampleGamma(shape float64, rng *rand.Rand) float64 {
	if shape <= 0 {
		panic("data: sampleGamma requires positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(shape+1, rng) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// SampleDirichlet draws a point from the (k-1)-simplex with concentration
// alpha (symmetric Dirichlet). Small alpha yields near-one-hot label
// distributions — the paper's highly non-IID regime (alpha = 0.01–0.1);
// large alpha approaches uniform (IID).
func SampleDirichlet(k int, alpha float64, rng *rand.Rand) []float64 {
	if k <= 0 {
		return nil
	}
	out := make([]float64, k)
	var sum float64
	for i := range out {
		g := sampleGamma(alpha, rng)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// All draws underflowed (possible for tiny alpha): fall back to a
		// one-hot distribution on a random class, which is the alpha→0 limit.
		out[rng.Intn(k)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// sampleCategorical draws an index according to the probability vector p.
func sampleCategorical(p []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var acc float64
	for i, pi := range p {
		acc += pi
		if u < acc {
			return i
		}
	}
	return len(p) - 1
}
