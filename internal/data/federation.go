package data

import (
	"fmt"
	"math"
	"math/rand"

	"floatfl/internal/nn"
	"floatfl/internal/tensor"
)

// Federation is a complete federated dataset: per-client training shards, a
// shared held-out test set, and per-client local test splits (the paper
// evaluates accuracy on clients' own non-IID data because a server-side IID
// holdout is unrealistic — Section 6.1).
type Federation struct {
	Profile Profile
	// Train[i] is client i's local training set.
	Train [][]nn.Sample
	// LocalTest[i] is client i's local evaluation split, drawn from the
	// same (non-IID) label distribution as its training set.
	LocalTest [][]nn.Sample
	// GlobalTest is a class-balanced holdout used for convergence plots.
	GlobalTest []nn.Sample
	// Alpha records the Dirichlet concentration used for partitioning.
	Alpha float64
}

// GenerateConfig controls federated dataset synthesis.
type GenerateConfig struct {
	Clients int
	// Alpha is the Dirichlet concentration; <= 0 defaults to 0.1 (the
	// paper's end-to-end setting). Use >= 100 for effectively IID shards.
	Alpha float64
	Seed  int64
	// LocalTestFraction of each client's samples goes to its local test
	// split; defaults to 0.25.
	LocalTestFraction float64
}

// Generate synthesizes a federation for the named dataset profile.
func Generate(profileName string, cfg GenerateConfig) (*Federation, error) {
	p, err := LookupProfile(profileName)
	if err != nil {
		return nil, err
	}
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("data: Generate requires positive client count, got %d", cfg.Clients)
	}
	alpha := cfg.Alpha
	if alpha <= 0 {
		alpha = 0.1
	}
	testFrac := cfg.LocalTestFraction
	if testFrac <= 0 || testFrac >= 1 {
		testFrac = 0.25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centers := make([]tensor.Vector, p.Classes)
	for c := range centers {
		centers[c] = tensor.NewVector(p.Dim)
		tensor.RandnInto(centers[c], p.Sep, rng)
	}
	draw := func(class int) nn.Sample {
		x := centers[class].Clone()
		noise := tensor.NewVector(p.Dim)
		tensor.RandnInto(noise, p.Noise, rng)
		x.AddScaled(1, noise)
		return nn.Sample{X: x, Label: class}
	}

	fed := &Federation{Profile: p, Alpha: alpha}
	fed.Train = make([][]nn.Sample, cfg.Clients)
	fed.LocalTest = make([][]nn.Sample, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		labelDist := SampleDirichlet(p.Classes, alpha, rng)
		n := sampleClientVolume(p.MeanSamplesPerClient, rng)
		nTest := int(math.Round(float64(n) * testFrac))
		if nTest < 2 {
			nTest = 2
		}
		train := make([]nn.Sample, 0, n)
		for s := 0; s < n; s++ {
			train = append(train, draw(sampleCategorical(labelDist, rng)))
		}
		test := make([]nn.Sample, 0, nTest)
		for s := 0; s < nTest; s++ {
			test = append(test, draw(sampleCategorical(labelDist, rng)))
		}
		fed.Train[i] = train
		fed.LocalTest[i] = test
	}

	fed.GlobalTest = make([]nn.Sample, 0, p.TestSamples)
	for s := 0; s < p.TestSamples; s++ {
		fed.GlobalTest = append(fed.GlobalTest, draw(s%p.Classes))
	}
	return fed, nil
}

// sampleClientVolume draws a per-client sample count from a lognormal
// distribution around the profile mean (sigma 0.45 gives the skew observed
// in FedScale client populations), floored at 8 samples.
func sampleClientVolume(mean int, rng *rand.Rand) int {
	const sigma = 0.45
	mu := math.Log(float64(mean)) - sigma*sigma/2
	n := int(math.Round(math.Exp(mu + sigma*rng.NormFloat64())))
	if n < 8 {
		n = 8
	}
	return n
}

// LabelHistogram returns the per-class sample counts of a shard; used by
// tests and by statistical-utility computations (Oort).
func LabelHistogram(samples []nn.Sample, classes int) []int {
	h := make([]int, classes)
	for _, s := range samples {
		if s.Label >= 0 && s.Label < classes {
			h[s.Label]++
		}
	}
	return h
}

// SkewIndex summarizes how non-IID a shard is: 0 means uniform over
// classes, 1 means single-class. It is the normalized L1 distance between
// the shard's label distribution and uniform.
func SkewIndex(samples []nn.Sample, classes int) float64 {
	if len(samples) == 0 || classes <= 1 {
		return 0
	}
	h := LabelHistogram(samples, classes)
	var l1 float64
	for _, c := range h {
		l1 += math.Abs(float64(c)/float64(len(samples)) - 1/float64(classes))
	}
	// Max possible L1 distance is 2*(1 - 1/classes).
	return l1 / (2 * (1 - 1/float64(classes)))
}
