// Package data generates the synthetic federated datasets that stand in
// for FEMNIST, CIFAR10, OpenImage, Google Speech Commands, and EMNIST in
// this reproduction. Each dataset profile is a seeded Gaussian
// class-cluster classification problem whose difficulty, class count, and
// per-client volume echo the original workload, partitioned across clients
// with a Dirichlet label distribution exactly as the paper's experiments
// configure (alpha = 0.01 ... 0.1 for non-IID, large alpha for IID).
package data

import (
	"fmt"
	"sort"
)

// Profile describes one synthetic dataset family.
type Profile struct {
	Name    string
	Dim     int // feature dimensionality
	Classes int
	// Sep scales the distance between class centers; Noise is the sample
	// standard deviation around a center. Lower Sep/Noise ratio = harder.
	Sep   float64
	Noise float64
	// MeanSamplesPerClient controls per-client dataset volume (lognormal
	// spread around this mean, mirroring FedScale's skewed client sizes).
	MeanSamplesPerClient int
	// TestSamples is the size of the held-out evaluation set.
	TestSamples int
	// RefSampleBytes approximates the storage size of one real example of
	// the original dataset (input to the memory-inefficiency metric).
	RefSampleBytes int64
}

var profiles = map[string]Profile{
	// FEMNIST: 62-class handwritten characters; moderately hard, small
	// images (28x28 grayscale ≈ 784 bytes).
	"femnist": {Name: "femnist", Dim: 32, Classes: 12, Sep: 0.3, Noise: 1.0,
		MeanSamplesPerClient: 80, TestSamples: 600, RefSampleBytes: 784},
	// CIFAR10: 10-class natural images; harder than FEMNIST (32x32x3 ≈ 3 KB).
	"cifar10": {Name: "cifar10", Dim: 32, Classes: 10, Sep: 0.24, Noise: 1.0,
		MeanSamplesPerClient: 60, TestSamples: 500, RefSampleBytes: 3072},
	// OpenImage: FLOAT's "complex" workload (1.6M images, many classes).
	"openimage": {Name: "openimage", Dim: 48, Classes: 20, Sep: 0.2, Noise: 1.0,
		MeanSamplesPerClient: 120, TestSamples: 800, RefSampleBytes: 49152},
	// Google Speech Commands: converges quickly with lower resource needs
	// (the paper observes few dropouts and small FLOAT gains here).
	"speech": {Name: "speech", Dim: 24, Classes: 10, Sep: 0.55, Noise: 0.9,
		MeanSamplesPerClient: 50, TestSamples: 400, RefSampleBytes: 16000},
	// EMNIST: used by the motivation experiments (Section 4).
	"emnist": {Name: "emnist", Dim: 32, Classes: 10, Sep: 0.32, Noise: 1.0,
		MeanSamplesPerClient: 70, TestSamples: 500, RefSampleBytes: 784},
}

// LookupProfile returns the profile registered under name.
func LookupProfile(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("data: unknown dataset profile %q", name)
	}
	return p, nil
}

// ProfileNames returns the registered dataset names, sorted.
func ProfileNames() []string {
	out := make([]string, 0, len(profiles))
	for k := range profiles {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
