package vfl

import (
	"fmt"
	"math"
	"math/rand"

	"floatfl/internal/device"
	"floatfl/internal/fl"
	"floatfl/internal/nn"
	"floatfl/internal/opt"
	"floatfl/internal/tensor"
	"floatfl/internal/trace"
)

// NewFederation builds the parties (bottom models + simulated devices) and
// the coordinator for a split dataset.
func NewFederation(ds *SplitDataset, cfg Config, scenario trace.Scenario) ([]*Party, *Coordinator, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: len(ds.Dims), Scenario: scenario, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	parties := make([]*Party, len(ds.Dims))
	for i, d := range ds.Dims {
		parties[i] = &Party{
			ID:     i,
			Bottom: nn.NewDense(d, cfg.EmbeddingDim, nn.ActReLU, rng),
			Device: pop[i],
		}
	}
	coord := &Coordinator{
		Top: nn.NewDense(cfg.EmbeddingDim*len(parties), ds.Classes, nn.ActNone, rng),
	}
	return parties, coord, nil
}

// partyWork approximates one VFL round's workload for the device cost
// model: the bottom model's forward+backward over the round's samples,
// and embedding/gradient traffic in place of model weights.
func partyWork(p *Party, cfg Config) device.WorkSpec {
	samplesPerRound := cfg.BatchSize * cfg.StepsPerRound
	// Real VFL bottom models are CNN/MLP towers; scale the reference FLOPs
	// with the party's feature share the way nn.Spec does for named models.
	flopsPerSample := int64(3 * 2 * p.Bottom.InDim() * p.Bottom.OutDim() * 2000)
	// Embedding + gradient exchange per sample, expressed in parameter
	// units (4 bytes each) so WorkSpec's RefParams accounting applies.
	commScalars := int64(2*cfg.EmbeddingDim*samplesPerRound) * 120
	if commScalars <= 0 {
		commScalars = 1
	}
	return device.WorkSpec{
		RefFLOPsPerSample: flopsPerSample,
		RefParams:         commScalars,
		Samples:           samplesPerRound,
		Epochs:            1,
	}
}

// Run executes VFL training: every round, every party's device executes
// under the controller's chosen technique; parties that miss the deadline
// contribute zero embeddings for the round (the VFL analog of a dropout).
// Completed parties' techniques also act semantically: their embeddings
// are quantized, their bottom updates pruned, or their bottom layer frozen.
func Run(ds *SplitDataset, parties []*Party, coord *Coordinator, ctrl fl.Controller, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("vfl: Rounds must be positive, got %d", cfg.Rounds)
	}
	if len(parties) != len(ds.Dims) {
		return nil, fmt.Errorf("vfl: %d parties for %d feature slices", len(parties), len(ds.Dims))
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	deadline := cfg.DeadlineSec
	if deadline <= 0 {
		// Budget against the slowest party's clean estimate.
		var worst float64
		for _, p := range parties {
			est := device.EstimateCleanResponseSeconds(p.Device, partyWork(p, cfg))
			worst = math.Max(worst, est)
		}
		deadline = worst * 1.5
	}

	res := &Result{
		Controller: ctrl.Name(),
		PartyDrops: make([]int, len(parties)),
	}
	hfDiff := make([]float64, len(parties))

	// Round-loop scratch, allocated once: per-party bottom-weight anchors
	// for update pruning, and the split-step buffers trainStep reuses.
	scratch := newRunScratch(ds, parties, cfg)

	for round := 0; round < cfg.Rounds; round++ {
		wall, err := runRound(ds, parties, coord, ctrl, cfg, round, deadline, hfDiff, res, rng, scratch)
		if err != nil {
			return nil, err
		}
		res.WallClockSeconds += wall
		acc := Evaluate(ds, parties, coord)
		res.TestAccHistory = append(res.TestAccHistory, acc)
	}
	res.FinalTestAcc = res.TestAccHistory[len(res.TestAccHistory)-1]
	return res, nil
}

// runScratch is the buffer set the round loop reuses: weight anchors for
// update-side pruning and trainStep's per-batch vectors.
type runScratch struct {
	anchors  []tensor.Vector // per-party bottom-weight snapshot at round start
	joint    tensor.Vector   // concatenated party embeddings
	probs    tensor.Vector   // coordinator softmax output
	lossGrad tensor.Vector   // dL/dlogits per sample
}

// newRunScratch sizes a runScratch for one federation. cfg must already
// have defaults applied.
func newRunScratch(ds *SplitDataset, parties []*Party, cfg Config) *runScratch {
	s := &runScratch{
		anchors:  make([]tensor.Vector, len(parties)),
		joint:    tensor.NewVector(cfg.EmbeddingDim * len(parties)),
		probs:    tensor.NewVector(ds.Classes),
		lossGrad: tensor.NewVector(ds.Classes),
	}
	for i, p := range parties {
		s.anchors[i] = tensor.NewVector(len(p.Bottom.W.Data))
	}
	return s
}

// runRound executes one VFL round: per-party device execution under the
// controller's techniques (phase 1), then split training with the
// technique semantics applied (phase 2). It mutates hfDiff and res's
// dropout/waste accounting and returns the round's wall-clock seconds.
func runRound(ds *SplitDataset, parties []*Party, coord *Coordinator, ctrl fl.Controller,
	cfg Config, round int, deadline float64, hfDiff []float64, res *Result,
	rng *rand.Rand, scratch *runScratch) (float64, error) {

	techs := make([]opt.Technique, len(parties))
	active := make([]bool, len(parties))
	var roundWall float64
	for i, p := range parties {
		snap := p.Device.ResourcesAt(round)
		tech := ctrl.Decide(round, p.Device, snap, hfDiff[i])
		techs[i] = tech
		out, err := device.Execute(p.Device, round, partyWork(p, cfg), tech, deadline)
		if err != nil {
			return 0, err
		}
		active[i] = out.Completed
		if out.Completed {
			hfDiff[i] = 0
			roundWall = math.Max(roundWall, out.Cost.TotalSeconds)
		} else {
			res.PartyDrops[i]++
			res.TotalDrops++
			res.WastedComputeHours += out.Cost.ComputeSeconds / 3600
			if out.Reason == device.DropDeadline {
				hfDiff[i] = out.DeadlineDiff
				roundWall = math.Max(roundWall, deadline)
			}
		}
		// VFL reports participation immediately and uses a zero accuracy
		// signal — the participation objective dominates party-side
		// decisions here.
		ctrl.Feedback(round, p.Device, tech, out, 0)
	}

	anchor := scratch.anchors
	for i, p := range parties {
		copy(anchor[i], p.Bottom.W.Data)
	}
	for step := 0; step < cfg.StepsPerRound; step++ {
		batch := sampleBatch(len(ds.Labels), cfg.BatchSize, rng)
		trainStep(ds, parties, coord, batch, active, techs, cfg, rng, scratch)
	}
	// Update-side technique semantics on bottom models: prune the round's
	// weight delta for pruning techniques. The delta is formed in place in
	// the weight buffer (W -= anchor; prune; W += anchor) so no scratch
	// vector is needed.
	for i, p := range parties {
		if !active[i] {
			continue
		}
		eff := techs[i].Effects()
		if eff.PruneFrac > 0 {
			w := p.Bottom.W.Data
			w.AddScaled(-1, anchor[i])
			opt.PruneSmallest(w, eff.PruneFrac)
			w.AddScaled(1, anchor[i])
		}
	}
	return roundWall, nil
}

func sampleBatch(n, k int, rng *rand.Rand) []int {
	if k > n {
		k = n
	}
	out := make([]int, k)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}

// trainStep runs one split forward/backward over a batch. Inactive parties
// contribute zero embeddings and receive no gradients. Quantizing parties
// ship quantized embeddings (and receive quantized gradients), injecting
// the technique's genuine accuracy noise. Partial-training parties freeze
// their bottom model (the forward pass still runs).
func trainStep(ds *SplitDataset, parties []*Party, coord *Coordinator, batch []int,
	active []bool, techs []opt.Technique, cfg Config, rng *rand.Rand,
	scratch *runScratch) {

	embDim := cfg.EmbeddingDim
	coord.Top.ZeroGrad()
	for _, p := range parties {
		p.Bottom.ZeroGrad()
	}

	joint, probs := scratch.joint, scratch.probs
	for _, idx := range batch {
		// Forward: parties produce (possibly quantized) embeddings;
		// inactive parties contribute zeros. Embeddings are copied into the
		// joint buffer and quantized in place there — no per-sample clone.
		for pi, p := range parties {
			slot := joint[pi*embDim : (pi+1)*embDim]
			if !active[pi] {
				slot.Zero()
				continue
			}
			copy(slot, p.Bottom.Forward(ds.Features[pi][idx]))
			if bits := techs[pi].Effects().QuantBits; bits > 0 {
				opt.Quantize(slot, bits, rng)
			}
		}

		logits := coord.Top.Forward(joint)
		tensor.Default().Softmax(probs, logits)
		grad := scratch.lossGrad
		copy(grad, probs)
		grad[ds.Labels[idx]] -= 1
		gradJoint := coord.Top.Backward(grad)

		// Backward to parties: each party consumes its disjoint slice of
		// the joint gradient (quantized in place for quantizing parties —
		// the slice is not read again this sample).
		for pi, p := range parties {
			if !active[pi] {
				continue
			}
			eff := techs[pi].Effects()
			if eff.PartialFrac > 0 {
				continue // bottom frozen this round
			}
			g := gradJoint[pi*embDim : (pi+1)*embDim]
			if eff.QuantBits > 0 {
				opt.Quantize(g, eff.QuantBits, rng)
			}
			p.Bottom.Forward(ds.Features[pi][idx]) // refresh layer scratch
			p.Bottom.Backward(g)
		}
	}

	lr := cfg.LR / float64(len(batch))
	coord.Top.ApplySGD(lr, 5)
	for pi, p := range parties {
		if !active[pi] || techs[pi].Effects().PartialFrac > 0 {
			continue
		}
		p.Bottom.ApplySGD(lr, 5)
	}
}

// Evaluate returns the coordinator's accuracy on the held-out split with
// all parties participating (deployment-time inference).
func Evaluate(ds *SplitDataset, parties []*Party, coord *Coordinator) float64 {
	if len(ds.TestLabels) == 0 {
		return 0
	}
	embDim := parties[0].Bottom.OutDim()
	joint := tensor.NewVector(embDim * len(parties))
	correct := 0
	for i, label := range ds.TestLabels {
		for pi, p := range parties {
			e := p.Bottom.Forward(ds.TestFeatures[pi][i])
			copy(joint[pi*embDim:(pi+1)*embDim], e)
		}
		logits := coord.Top.Forward(joint)
		if logits.Argmax() == label {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.TestLabels))
}
