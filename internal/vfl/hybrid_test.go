package vfl

import (
	"testing"

	"floatfl/internal/core"
	"floatfl/internal/fl"
	"floatfl/internal/rl"
	"floatfl/internal/trace"
)

func testHybrid(t *testing.T, scenario trace.Scenario, rounds int) *Hybrid {
	t.Helper()
	cfg := Config{
		EmbeddingDim: 8, Rounds: rounds, BatchSize: 16,
		LR: 0.3, StepsPerRound: 6, Seed: 31,
	}
	h, err := NewHybrid("femnist", 3, 4, 300, 120, cfg, scenario, 31)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHybridValidation(t *testing.T) {
	if _, err := NewHybrid("femnist", 1, 4, 100, 50, Config{Rounds: 1}, trace.ScenarioNone, 1); err == nil {
		t.Fatal("accepted single silo")
	}
	if _, err := NewHybrid("nope", 2, 4, 100, 50, Config{Rounds: 1}, trace.ScenarioNone, 1); err == nil {
		t.Fatal("accepted unknown profile")
	}
}

func TestHybridShapes(t *testing.T) {
	h := testHybrid(t, trace.ScenarioNone, 1)
	if len(h.Silos) != 3 {
		t.Fatalf("silo count %d", len(h.Silos))
	}
	for si, silo := range h.Silos {
		if len(silo.Parties) != 4 {
			t.Fatalf("silo %d has %d parties", si, len(silo.Parties))
		}
		// All silos share one feature schema.
		for pi := range silo.Parties {
			if silo.Data.Dims[pi] != h.Silos[0].Data.Dims[pi] {
				t.Fatal("silos disagree on the feature schema")
			}
		}
	}
}

func TestHybridLearns(t *testing.T) {
	h := testHybrid(t, trace.ScenarioNone, 30)
	res, err := h.Run(fl.NoOpController{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTestAcc <= res.TestAccHistory[0] {
		t.Fatalf("hybrid FL did not learn: %v -> %v", res.TestAccHistory[0], res.FinalTestAcc)
	}
	if res.FinalTestAcc < 0.17 { // well above 1/12 chance
		t.Fatalf("hybrid final accuracy too low: %v", res.FinalTestAcc)
	}
}

func TestHybridAveragingSynchronizesSilos(t *testing.T) {
	h := testHybrid(t, trace.ScenarioNone, 1)
	if _, err := h.Run(fl.NoOpController{}); err != nil {
		t.Fatal(err)
	}
	// After a global round every silo holds identical split models.
	ref := h.Silos[0]
	for _, silo := range h.Silos[1:] {
		for pi := range silo.Parties {
			a, b := ref.Parties[pi].Bottom.W.Data, silo.Parties[pi].Bottom.W.Data
			for i := range a {
				if a[i] != b[i] {
					t.Fatal("silo bottom models diverge after averaging")
				}
			}
		}
		a, b := ref.Coord.Top.W.Data, silo.Coord.Top.W.Data
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("silo top models diverge after averaging")
			}
		}
	}
}

func TestHybridWithFloat(t *testing.T) {
	h := testHybrid(t, trace.ScenarioDynamic, 15)
	float := core.New(core.Config{
		Agent:           rl.Config{Seed: 33, TotalRounds: 15},
		BatchSize:       16,
		Epochs:          1,
		ClientsPerRound: 12,
	})
	res, err := h.Run(float)
	if err != nil {
		t.Fatal(err)
	}
	if res.Controller != "float" {
		t.Fatalf("controller label %q", res.Controller)
	}
	// 3 silos × 4 parties × 15 rounds = 180 decisions.
	if float.Agent().Updates() != 180 {
		t.Fatalf("agent updates = %d, want 180", float.Agent().Updates())
	}
	sum := 0
	for _, d := range res.SiloDrops {
		sum += d
	}
	if sum != res.TotalDrops {
		t.Fatalf("per-silo drops %d != total %d", sum, res.TotalDrops)
	}
}

func TestHybridRejectsZeroRounds(t *testing.T) {
	h := testHybrid(t, trace.ScenarioNone, 1)
	h.cfg.Rounds = 0
	if _, err := h.Run(fl.NoOpController{}); err == nil {
		t.Fatal("accepted zero rounds")
	}
}
