package vfl

import (
	"testing"

	"floatfl/internal/core"
	"floatfl/internal/fl"
	"floatfl/internal/opt"
	"floatfl/internal/rl"
	"floatfl/internal/trace"
)

func testSplit(t *testing.T, parties int) *SplitDataset {
	t.Helper()
	ds, err := Split("femnist", parties, 300, 150, 11)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSplitShapes(t *testing.T) {
	ds := testSplit(t, 4)
	if len(ds.Dims) != 4 {
		t.Fatalf("dims %v", ds.Dims)
	}
	total := 0
	for _, d := range ds.Dims {
		if d <= 0 {
			t.Fatalf("empty party slice: %v", ds.Dims)
		}
		total += d
	}
	if total != 32 { // femnist profile dim
		t.Fatalf("feature split loses columns: %d", total)
	}
	if len(ds.Labels) != 300 || len(ds.TestLabels) != 150 {
		t.Fatalf("sample counts wrong: %d/%d", len(ds.Labels), len(ds.TestLabels))
	}
	for pi, feats := range ds.Features {
		if len(feats) != 300 {
			t.Fatalf("party %d has %d samples", pi, len(feats))
		}
		if len(feats[0]) != ds.Dims[pi] {
			t.Fatalf("party %d slice dim %d, want %d", pi, len(feats[0]), ds.Dims[pi])
		}
	}
}

func TestSplitValidation(t *testing.T) {
	if _, err := Split("femnist", 1, 100, 50, 1); err == nil {
		t.Fatal("accepted single party")
	}
	if _, err := Split("femnist", 100, 100, 50, 1); err == nil {
		t.Fatal("accepted more parties than features")
	}
	if _, err := Split("nope", 4, 100, 50, 1); err == nil {
		t.Fatal("accepted unknown profile")
	}
	if _, err := Split("femnist", 4, 0, 50, 1); err == nil {
		t.Fatal("accepted zero samples")
	}
}

func TestSplitDims(t *testing.T) {
	d := splitDims(10, 4)
	if d[0] != 3 || d[1] != 3 || d[2] != 2 || d[3] != 2 {
		t.Fatalf("splitDims(10,4) = %v", d)
	}
	total := 0
	for _, x := range splitDims(7, 3) {
		total += x
	}
	if total != 7 {
		t.Fatal("splitDims loses columns")
	}
}

func runVFL(t *testing.T, ctrl fl.Controller, scenario trace.Scenario, rounds int) *Result {
	t.Helper()
	ds := testSplit(t, 4)
	cfg := Config{EmbeddingDim: 8, Rounds: rounds, BatchSize: 16, LR: 0.3, StepsPerRound: 8, Seed: 13}
	parties, coord, err := NewFederation(ds, cfg, scenario)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ds, parties, coord, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVFLLearns(t *testing.T) {
	res := runVFL(t, fl.NoOpController{}, trace.ScenarioNone, 25)
	first, last := res.TestAccHistory[0], res.FinalTestAcc
	if last <= first {
		t.Fatalf("VFL did not learn: %v -> %v", first, last)
	}
	if last < 0.2 { // well above 1/12 chance
		t.Fatalf("VFL final accuracy too low: %v", last)
	}
}

func TestVFLDropoutsUnderInterference(t *testing.T) {
	res := runVFL(t, fl.NoOpController{}, trace.ScenarioDynamic, 20)
	if res.TotalDrops == 0 {
		t.Skip("no party dropped in this seed")
	}
	if res.WastedComputeHours <= 0 {
		t.Fatal("party drops did not waste compute")
	}
	sum := 0
	for _, d := range res.PartyDrops {
		sum += d
	}
	if sum != res.TotalDrops {
		t.Fatalf("per-party drops %d != total %d", sum, res.TotalDrops)
	}
}

func TestVFLWithFloatController(t *testing.T) {
	float := core.New(core.Config{
		Agent:           rl.Config{Seed: 17, TotalRounds: 20},
		BatchSize:       16,
		Epochs:          1,
		ClientsPerRound: 4,
	})
	res := runVFL(t, float, trace.ScenarioDynamic, 20)
	if res.Controller != "float" {
		t.Fatalf("controller label %q", res.Controller)
	}
	if float.Agent().Updates() == 0 {
		t.Fatal("FLOAT agent received no feedback from the VFL engine")
	}
	if len(res.TestAccHistory) != 20 {
		t.Fatalf("accuracy history has %d points", len(res.TestAccHistory))
	}
}

func TestVFLStaticQuantizationStillLearns(t *testing.T) {
	res := runVFL(t, fl.StaticController{Tech: opt.TechQuant8}, trace.ScenarioNone, 25)
	if res.FinalTestAcc < 0.15 {
		t.Fatalf("quantized embeddings destroyed learning: %v", res.FinalTestAcc)
	}
}

func TestVFLValidation(t *testing.T) {
	ds := testSplit(t, 3)
	cfg := Config{Rounds: 0, Seed: 1}
	parties, coord, err := NewFederation(ds, cfg, trace.ScenarioNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ds, parties, coord, fl.NoOpController{}, cfg); err == nil {
		t.Fatal("accepted zero rounds")
	}
	if _, err := Run(ds, parties[:2], coord, fl.NoOpController{}, Config{Rounds: 1}); err == nil {
		t.Fatal("accepted mismatched party count")
	}
}
