// Package vfl implements Vertical Federated Learning, the non-horizontal
// setting Section 7 of the paper argues FLOAT extends to "without needing
// structural adjustments". In VFL a fixed set of parties holds disjoint
// *feature* slices of the same samples; one coordinator holds the labels
// and the top model. Each training step the parties run their bottom
// models forward, ship embeddings to the coordinator, receive embedding
// gradients back, and update locally — so every party is on the critical
// path of every step, and a single resource-starved party stalls the whole
// federation. That makes VFL an even stronger fit for per-party adaptive
// acceleration than horizontal FL, which is exactly what this package
// demonstrates: the same fl.Controller (FLOAT, heuristic, static, none)
// decides each party's technique each round.
package vfl

import (
	"fmt"
	"math/rand"

	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/nn"
	"floatfl/internal/tensor"
)

// SplitDataset is a vertically partitioned dataset: every party sees all
// samples but only its own feature columns; labels live with the
// coordinator.
type SplitDataset struct {
	// Features[p][i] is party p's feature slice of sample i.
	Features [][]tensor.Vector
	Labels   []int
	// TestFeatures/TestLabels form the held-out evaluation split.
	TestFeatures [][]tensor.Vector
	TestLabels   []int
	// Dims[p] is party p's feature dimensionality.
	Dims    []int
	Classes int
}

// Split vertically partitions a generated dataset profile across parties.
// The profile's feature dimensions are divided contiguously; parties
// receive at least one column each.
func Split(profileName string, parties, samples, testSamples int, seed int64) (*SplitDataset, error) {
	p, err := data.LookupProfile(profileName)
	if err != nil {
		return nil, err
	}
	if parties < 2 {
		return nil, fmt.Errorf("vfl: need at least 2 parties, got %d", parties)
	}
	if parties > p.Dim {
		return nil, fmt.Errorf("vfl: %d parties cannot split %d features", parties, p.Dim)
	}
	if samples <= 0 || testSamples <= 0 {
		return nil, fmt.Errorf("vfl: non-positive sample counts %d/%d", samples, testSamples)
	}
	// Reuse the horizontal generator with a single "client" so the class
	// geometry matches the named profile, then slice features per party.
	fed, err := data.Generate(profileName, data.GenerateConfig{Clients: 1, Alpha: 100, Seed: seed})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	draw := func(n int) ([]tensor.Vector, []int) {
		xs := make([]tensor.Vector, n)
		ys := make([]int, n)
		pool := append(append([]nn.Sample(nil), fed.Train[0]...), fed.GlobalTest...)
		for i := 0; i < n; i++ {
			s := pool[rng.Intn(len(pool))]
			xs[i] = s.X
			ys[i] = s.Label
		}
		return xs, ys
	}
	trainX, trainY := draw(samples)
	testX, testY := draw(testSamples)

	ds := &SplitDataset{Classes: p.Classes, Labels: trainY, TestLabels: testY}
	ds.Dims = splitDims(p.Dim, parties)
	slice := func(xs []tensor.Vector) [][]tensor.Vector {
		out := make([][]tensor.Vector, parties)
		for pi := range out {
			out[pi] = make([]tensor.Vector, len(xs))
		}
		for i, x := range xs {
			off := 0
			for pi, d := range ds.Dims {
				out[pi][i] = x[off : off+d]
				off += d
			}
		}
		return out
	}
	ds.Features = slice(trainX)
	ds.TestFeatures = slice(testX)
	return ds, nil
}

func splitDims(dim, parties int) []int {
	base := dim / parties
	rem := dim % parties
	out := make([]int, parties)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Party is one feature-holding participant: a bottom model mapping its
// feature slice to an embedding, plus the simulated device it runs on.
type Party struct {
	ID     int
	Bottom *nn.Dense
	Device *device.Client
}

// Coordinator holds the labels and the top model.
type Coordinator struct {
	Top *nn.Dense
}

// Config tunes a VFL training run.
type Config struct {
	EmbeddingDim int
	Rounds       int
	BatchSize    int
	LR           float64
	// StepsPerRound is the number of mini-batch steps per communication
	// round (each step exchanges embeddings and gradients).
	StepsPerRound int
	// DeadlineSec bounds each party's per-round time; 0 auto-derives.
	DeadlineSec float64
	Seed        int64
}

func (c Config) withDefaults() Config {
	if c.EmbeddingDim <= 0 {
		c.EmbeddingDim = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.LR <= 0 {
		c.LR = 0.1
	}
	if c.StepsPerRound <= 0 {
		c.StepsPerRound = 4
	}
	return c
}

// Result summarizes a VFL run.
type Result struct {
	Controller string
	// TestAccHistory is the coordinator's test accuracy per round.
	TestAccHistory []float64
	FinalTestAcc   float64
	// PartyDrops[p] counts the rounds party p missed its deadline (its
	// embeddings were zero-filled for the whole round).
	PartyDrops []int
	TotalDrops int
	// WallClockSeconds accumulates per-round maxima across parties.
	WallClockSeconds float64
	// WastedComputeHours counts compute spent by parties whose embeddings
	// were dropped.
	WastedComputeHours float64
}
