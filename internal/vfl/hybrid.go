package vfl

import (
	"fmt"
	"math/rand"

	"floatfl/internal/device"
	"floatfl/internal/fl"
	"floatfl/internal/nn"
	"floatfl/internal/tensor"
	"floatfl/internal/trace"
)

// Hybrid FL (paper Section 7) combines horizontal and vertical FL: several
// silos each hold a vertical federation over the *same feature schema* but
// over *different sample populations* (e.g. regional consortia of the same
// bank/retailer/telco split). Every global round each silo runs one local
// VFL round — with per-party FLOAT decisions exactly as in plain VFL —
// and the global server then averages the silos' split models
// horizontally. The paper's claim that FLOAT integrates "without needing
// structural adjustments" is literal here: the same fl.Controller instance
// serves every party of every silo.

// Silo is one vertical federation inside a hybrid deployment.
type Silo struct {
	Data    *SplitDataset
	Parties []*Party
	Coord   *Coordinator
	// hfDiff carries deadline human feedback between this silo's rounds.
	hfDiff  []float64
	rng     *rand.Rand
	scratch *runScratch
}

// Hybrid is the full cross-silo deployment.
type Hybrid struct {
	Silos []*Silo
	cfg   Config
}

// HybridResult summarizes a hybrid run.
type HybridResult struct {
	Controller string
	// TestAccHistory is the averaged global split model's accuracy on the
	// pooled held-out samples, per global round.
	TestAccHistory []float64
	FinalTestAcc   float64
	TotalDrops     int
	// SiloDrops[s] is silo s's party-round dropout count.
	SiloDrops          []int
	WallClockSeconds   float64
	WastedComputeHours float64
}

// NewHybrid builds a hybrid deployment: silos × parties devices, all
// sharing one feature schema. Each silo's samples are drawn independently
// (different seed), making the silos statistically heterogeneous.
func NewHybrid(profileName string, silos, parties, samplesPerSilo, testPerSilo int,
	cfg Config, scenario trace.Scenario, seed int64) (*Hybrid, error) {

	if silos < 2 {
		return nil, fmt.Errorf("vfl: hybrid needs at least 2 silos, got %d", silos)
	}
	cfg = cfg.withDefaults()
	h := &Hybrid{cfg: cfg}
	for s := 0; s < silos; s++ {
		ds, err := Split(profileName, parties, samplesPerSilo, testPerSilo, seed+int64(s)*101)
		if err != nil {
			return nil, err
		}
		siloCfg := cfg
		siloCfg.Seed = seed + int64(s)*977
		ps, coord, err := NewFederation(ds, siloCfg, scenario)
		if err != nil {
			return nil, err
		}
		h.Silos = append(h.Silos, &Silo{
			Data:    ds,
			Parties: ps,
			Coord:   coord,
			hfDiff:  make([]float64, parties),
			rng:     rand.New(rand.NewSource(siloCfg.Seed + 7)),
			scratch: newRunScratch(ds, ps, siloCfg),
		})
	}
	return h, nil
}

// Run executes hybrid training for cfg.Rounds global rounds.
func (h *Hybrid) Run(ctrl fl.Controller) (*HybridResult, error) {
	cfg := h.cfg
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("vfl: Rounds must be positive, got %d", cfg.Rounds)
	}
	// Deadline budgeted against the slowest party anywhere.
	deadline := cfg.DeadlineSec
	if deadline <= 0 {
		var worst float64
		for _, silo := range h.Silos {
			for _, p := range silo.Parties {
				if est := device.EstimateCleanResponseSeconds(p.Device, partyWork(p, cfg)); est > worst {
					worst = est
				}
			}
		}
		deadline = worst * 1.5
	}

	res := &HybridResult{
		Controller: ctrl.Name(),
		SiloDrops:  make([]int, len(h.Silos)),
	}
	for round := 0; round < cfg.Rounds; round++ {
		var roundWall float64
		for si, silo := range h.Silos {
			// Reuse the plain-VFL round with a silo-local result shim so
			// the dropout/waste accounting lands per silo.
			shim := &Result{PartyDrops: make([]int, len(silo.Parties))}
			wall, err := runRound(silo.Data, silo.Parties, silo.Coord, ctrl,
				cfg, round, deadline, silo.hfDiff, shim, silo.rng, silo.scratch)
			if err != nil {
				return nil, err
			}
			res.SiloDrops[si] += shim.TotalDrops
			res.TotalDrops += shim.TotalDrops
			res.WastedComputeHours += shim.WastedComputeHours
			// Silos train in parallel: the global round's wall clock is
			// the slowest silo.
			if wall > roundWall {
				roundWall = wall
			}
		}
		res.WallClockSeconds += roundWall

		// Horizontal phase: average the split models across silos and
		// redistribute — vanilla FedAvg over bottoms (per party index)
		// and tops.
		h.averageAcrossSilos()
		res.TestAccHistory = append(res.TestAccHistory, h.evaluatePooled())
	}
	res.FinalTestAcc = res.TestAccHistory[len(res.TestAccHistory)-1]
	return res, nil
}

// averageAcrossSilos FedAvg-merges every bottom model (per party index)
// and the coordinators' top models, then writes the averages back into
// every silo.
func (h *Hybrid) averageAcrossSilos() {
	nSilos := float64(len(h.Silos))
	parties := len(h.Silos[0].Parties)

	avgDense := func(pick func(*Silo) *nn.Dense) {
		first := pick(h.Silos[0])
		wSum := tensor.NewVector(len(first.W.Data))
		bSum := tensor.NewVector(len(first.B))
		for _, silo := range h.Silos {
			d := pick(silo)
			wSum.AddScaled(1/nSilos, d.W.Data)
			bSum.AddScaled(1/nSilos, d.B)
		}
		for _, silo := range h.Silos {
			d := pick(silo)
			copy(d.W.Data, wSum)
			copy(d.B, bSum)
		}
	}
	for pi := 0; pi < parties; pi++ {
		pi := pi
		avgDense(func(s *Silo) *nn.Dense { return s.Parties[pi].Bottom })
	}
	avgDense(func(s *Silo) *nn.Dense { return s.Coord.Top })
}

// evaluatePooled scores the (now synchronized) global split model on the
// union of silo test sets.
func (h *Hybrid) evaluatePooled() float64 {
	var correctWeighted, total float64
	for _, silo := range h.Silos {
		acc := Evaluate(silo.Data, silo.Parties, silo.Coord)
		n := float64(len(silo.Data.TestLabels))
		correctWeighted += acc * n
		total += n
	}
	if total == 0 {
		return 0
	}
	return correctWeighted / total
}
