// Package population unifies the two ways a federation's client state can
// be held: eagerly (the classic *data.Federation + []*device.Client pair,
// everything resident) or lazily (data/device Providers deriving client i
// from (seed, clientID) on demand, with only a bounded LRU working set
// resident). The fl engines run against this seam, so a round costs
// O(selected) — not O(population) — memory when the population is lazy,
// while the eager path stays a zero-overhead thin wrapper that keeps every
// committed golden bit-identical.
//
// Ownership contract: the engines touch a Population only from their
// single-threaded dispatch/collect passes. Dispatch Acquires (derive +
// pin) every selected client before fan-out; workers receive the resolved
// *device.Client and sample slices in their job structs and never touch
// the cache; collect Releases the pins. Cache hit/miss/eviction counters
// are therefore a pure function of the schedule and byte-reproducible
// across any Parallelism.
package population

import (
	"fmt"

	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/nn"
	"floatfl/internal/obs"
	"floatfl/internal/trace"
	"floatfl/internal/wset"
)

// Config parameterizes a lazy population.
type Config struct {
	// Dataset names the data profile (femnist | cifar10 | ...).
	Dataset string
	Clients int
	// Alpha is the Dirichlet concentration (≤ 0 defaults to 0.1).
	Alpha float64
	// LocalTestFraction defaults to 0.25.
	LocalTestFraction float64
	Seed              int64
	Scenario          trace.Scenario
	// FiveGShare defaults to 0.3.
	FiveGShare float64
	// CacheClients bounds each working-set cache's unpinned residency
	// (≤ 0 defaults to 4096).
	CacheClients int
	// StatSample caps the deterministic strided sample behind population
	// statistics — mean shard size, auto-deadline estimates (≤ 0 defaults
	// to 1024).
	StatSample int
}

// Population is the engines' view of a federation's client state.
type Population struct {
	n int

	// Eager backing (nil in lazy mode).
	fed     *data.Federation
	clients []*device.Client

	// Lazy backing (nil in eager mode).
	dataP      *data.Provider
	devP       *device.Provider
	statSample int

	// Telemetry handles (nil-safe when not instrumented).
	shardHits, shardMisses, shardEvictions *obs.Counter
	devHits, devMisses, devEvictions       *obs.Counter
	shardResident, devResident             *obs.Gauge
	shardPeak, devPeak                     *obs.Gauge
	deriveSamples                          *obs.Histogram
	lastShard, lastDev                     wset.Stats
}

// WrapEager adapts the classic dense pair into a Population. The wrapper
// adds no indirection cost that could perturb results: shards and clients
// are returned by direct index, acquire/release are no-ops.
func WrapEager(fed *data.Federation, clients []*device.Client) (*Population, error) {
	if fed == nil {
		return nil, fmt.Errorf("population: nil federation")
	}
	if len(fed.Train) != len(clients) {
		return nil, fmt.Errorf("fl: federation has %d clients, population has %d",
			len(fed.Train), len(clients))
	}
	return &Population{n: len(clients), fed: fed, clients: clients}, nil
}

// NewLazy constructs a provider-backed population deriving client state on
// demand.
func NewLazy(cfg Config) (*Population, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("population: needs positive client count, got %d", cfg.Clients)
	}
	if cfg.StatSample <= 0 {
		cfg.StatSample = 1024
	}
	dataP, err := data.NewProvider(cfg.Dataset, data.GenerateConfig{
		Clients:           cfg.Clients,
		Alpha:             cfg.Alpha,
		Seed:              cfg.Seed,
		LocalTestFraction: cfg.LocalTestFraction,
	}, cfg.CacheClients)
	if err != nil {
		return nil, err
	}
	devP, err := device.NewProvider(device.PopulationConfig{
		Clients:    cfg.Clients,
		Scenario:   cfg.Scenario,
		FiveGShare: cfg.FiveGShare,
		Seed:       cfg.Seed,
	}, cfg.CacheClients)
	if err != nil {
		return nil, err
	}
	return &Population{n: cfg.Clients, dataP: dataP, devP: devP, statSample: cfg.StatSample}, nil
}

// Eager reports whether the population is dense-backed.
func (p *Population) Eager() bool { return p.dataP == nil }

// NumClients returns the population size.
func (p *Population) NumClients() int { return p.n }

// Profile returns the dataset profile.
func (p *Population) Profile() data.Profile {
	if p.Eager() {
		return p.fed.Profile
	}
	return p.dataP.Profile()
}

// GlobalTest returns the shared class-balanced holdout.
func (p *Population) GlobalTest() []nn.Sample {
	if p.Eager() {
		return p.fed.GlobalTest
	}
	return p.dataP.GlobalTest()
}

// Federation returns the dense federation in eager mode, nil otherwise.
func (p *Population) Federation() *data.Federation { return p.fed }

// AllClients returns the dense client slice in eager mode, nil otherwise.
func (p *Population) AllClients() []*device.Client { return p.clients }

// Client returns client id, deriving it on demand in lazy mode. The
// returned pointer is stable only while the client is resident; callers
// holding it across other cache traffic must Acquire instead.
func (p *Population) Client(id int) *device.Client {
	if p.Eager() {
		return p.clients[id]
	}
	return p.devP.Client(id)
}

// AcquireClient returns client id pinned against eviction until Release.
func (p *Population) AcquireClient(id int) *device.Client {
	if p.Eager() {
		return p.clients[id]
	}
	return p.devP.Acquire(id)
}

// AcquireShard returns client id's data shard pinned until Release.
func (p *Population) AcquireShard(id int) data.ClientShard {
	if p.Eager() {
		return data.ClientShard{Train: p.fed.Train[id], LocalTest: p.fed.LocalTest[id]}
	}
	return p.dataP.Acquire(id)
}

// Shard returns client id's data shard without pinning.
func (p *Population) Shard(id int) data.ClientShard {
	if p.Eager() {
		return data.ClientShard{Train: p.fed.Train[id], LocalTest: p.fed.LocalTest[id]}
	}
	return p.dataP.Shard(id)
}

// Release drops the pins AcquireClient + AcquireShard took on client id.
func (p *Population) Release(id int) {
	if p.Eager() {
		return
	}
	p.dataP.Release(id)
	p.devP.Release(id)
}

// MeanShardSize returns the (estimated) mean client shard size, floored at
// 1. Eager populations compute it exactly — the value feeds the reference
// work spec the committed goldens pin — while lazy populations estimate it
// from a strided deterministic sample of derivation-cheap size draws.
func (p *Population) MeanShardSize() int {
	if p.Eager() {
		if p.n == 0 {
			return 1
		}
		total := 0
		for _, s := range p.fed.Train {
			total += len(s)
		}
		m := total / p.n
		if m <= 0 {
			m = 1
		}
		return m
	}
	return p.dataP.MeanShardSize(p.statSample)
}

// CleanResponseEstimates returns clean (interference-free) response-time
// estimates for a strided deterministic sample of at most StatSample
// clients — the lazy input to deadline auto-derivation. Sampled clients
// are derived ephemerally and never enter the cache.
func (p *Population) CleanResponseEstimates(w device.WorkSpec) []float64 {
	count := p.n
	if !p.Eager() && count > p.statSample {
		count = p.statSample
	}
	ests := make([]float64, 0, count)
	for i := 0; i < count; i++ {
		id := i * p.n / count
		if p.Eager() {
			ests = append(ests, device.EstimateCleanResponseSeconds(p.clients[id], w))
		} else {
			ests = append(ests, p.devP.EstimateClean(id, w))
		}
	}
	return ests
}

// Stats returns the shard- and device-cache counters (zero in eager mode).
func (p *Population) Stats() (shard, dev wset.Stats) {
	if p.Eager() {
		return wset.Stats{}, wset.Stats{}
	}
	return p.dataP.Stats(), p.devP.Stats()
}

// Instrument registers the population-cache metrics on reg and starts
// feeding them; FlushObs pushes counter deltas at deterministic schedule
// points (the engines call it once per round/barrier).
func (p *Population) Instrument(reg *obs.Registry) {
	if reg == nil || p.Eager() {
		return
	}
	p.shardHits = reg.Counter(`pop_cache_hits_total{kind="shard"}`)
	p.shardMisses = reg.Counter(`pop_cache_misses_total{kind="shard"}`)
	p.shardEvictions = reg.Counter(`pop_cache_evictions_total{kind="shard"}`)
	p.devHits = reg.Counter(`pop_cache_hits_total{kind="device"}`)
	p.devMisses = reg.Counter(`pop_cache_misses_total{kind="device"}`)
	p.devEvictions = reg.Counter(`pop_cache_evictions_total{kind="device"}`)
	p.shardResident = reg.Gauge(`pop_resident_clients{kind="shard"}`)
	p.devResident = reg.Gauge(`pop_resident_clients{kind="device"}`)
	p.shardPeak = reg.Gauge(`pop_resident_peak{kind="shard"}`)
	p.devPeak = reg.Gauge(`pop_resident_peak{kind="device"}`)
	// Derivation cost is observed in deterministic units — samples
	// synthesized per derivation — not wall time, which would break the
	// byte-reproducible exposition contract.
	p.deriveSamples = reg.Histogram("pop_derive_samples", []float64{8, 16, 32, 64, 128, 256, 512, 1024})
	p.dataP.OnDerive = func(samples int) { p.deriveSamples.Observe(float64(samples)) }
}

// FlushObs publishes cache-counter deltas and residency gauges. The
// engines call it at schedule-determined points (end of each collect pass)
// so exposition bytes never depend on Parallelism.
func (p *Population) FlushObs() {
	if p.Eager() || p.shardHits == nil {
		return
	}
	shard, dev := p.Stats()
	p.shardHits.Add(shard.Hits - p.lastShard.Hits)
	p.shardMisses.Add(shard.Misses - p.lastShard.Misses)
	p.shardEvictions.Add(shard.Evictions - p.lastShard.Evictions)
	p.devHits.Add(dev.Hits - p.lastDev.Hits)
	p.devMisses.Add(dev.Misses - p.lastDev.Misses)
	p.devEvictions.Add(dev.Evictions - p.lastDev.Evictions)
	p.shardResident.Set(float64(shard.Resident))
	p.devResident.Set(float64(dev.Resident))
	p.shardPeak.Set(float64(shard.Peak))
	p.devPeak.Set(float64(dev.Peak))
	p.lastShard, p.lastDev = shard, dev
}

// Materialize converts a lazy population into the dense pair (eager
// populations return their backing directly). Intended for small-scale
// equivalence tests and adapters, not for million-client runs.
func (p *Population) Materialize() (*data.Federation, []*device.Client) {
	if p.Eager() {
		return p.fed, p.clients
	}
	return p.dataP.Materialize(), p.devP.Materialize()
}
