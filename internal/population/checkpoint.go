package population

import (
	"fmt"
	"sort"

	"floatfl/internal/trace"
	"floatfl/internal/wset"
)

// State is a population's residency-independent checkpoint: everything
// needed to make a freshly constructed population of the same Config
// behave bit-identically to the captured one.
//
// Client state itself is never serialized — it is a pure function of
// (seed, clientID) plus each client's battery drain log, so the drain logs
// are the only per-client payload. For lazy populations the working-set
// caches additionally matter for telemetry (hit/miss/eviction counts
// depend on residency), so the unpinned LRU orders and the cache counters
// are captured too; pinned residency is deliberately absent — pins belong
// to in-flight work, and the engine rebuilds them by re-acquiring the
// clients its restored tasks reference.
type State struct {
	DrainLogs []ClientDrainLog `json:"drain_logs,omitempty"`
	// ShardLRU / DevLRU hold the unpinned resident IDs of the two lazy
	// caches in least-recently-used-first order (empty in eager mode).
	ShardLRU []int `json:"shard_lru,omitempty"`
	DevLRU   []int `json:"dev_lru,omitempty"`
	// ShardStats / DevStats are the captured cache counters; they also
	// re-baseline FlushObs's delta tracking on restore.
	ShardStats wset.Stats `json:"shard_stats"`
	DevStats   wset.Stats `json:"dev_stats"`
}

// ClientDrainLog pairs a client ID with its battery drain log.
type ClientDrainLog struct {
	Client int                `json:"client"`
	Drains []trace.DrainEvent `json:"drains"`
}

// CheckpointState captures the population's state. Must be called from
// the engines' single-threaded quiescent boundary.
func (p *Population) CheckpointState() (*State, error) {
	st := &State{}
	if p.Eager() {
		for id, c := range p.clients {
			if log := c.Avail.DrainLog(); log != nil {
				st.DrainLogs = append(st.DrainLogs, ClientDrainLog{Client: id, Drains: log})
			}
		}
		return st, nil
	}
	logs := p.devP.DrainState()
	ids := make([]int, 0, len(logs))
	for id := range logs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st.DrainLogs = append(st.DrainLogs, ClientDrainLog{Client: id, Drains: logs[id]})
	}
	st.ShardLRU = p.dataP.UnpinnedResidents()
	st.DevLRU = p.devP.UnpinnedResidents()
	st.ShardStats, st.DevStats = p.Stats()
	return st, nil
}

// RestoreDrainLogs is restore phase one: install the captured drain logs
// on a freshly constructed population. For eager populations the logs are
// replayed onto the dense clients (which must not have generated any
// trace steps yet); for lazy populations they seed the provider's drain
// store so every future derivation replays them.
//
// The engine then re-acquires any in-flight clients (rebuilding pinned
// residency) before calling RestoreResidency.
func (p *Population) RestoreDrainLogs(st *State) error {
	if st == nil {
		return fmt.Errorf("population: nil checkpoint state")
	}
	if p.Eager() {
		for _, cl := range st.DrainLogs {
			if cl.Client < 0 || cl.Client >= p.n {
				return fmt.Errorf("population: drain log for client %d, population has %d", cl.Client, p.n)
			}
			av := p.clients[cl.Client].Avail
			if av.StepsGenerated() > 0 {
				return fmt.Errorf("population: restore requires a fresh population (client %d already generated %d steps)",
					cl.Client, av.StepsGenerated())
			}
			av.ReplayDrains(cl.Drains)
		}
		return nil
	}
	logs := make(map[int][]trace.DrainEvent, len(st.DrainLogs))
	for _, cl := range st.DrainLogs {
		if cl.Client < 0 || cl.Client >= p.n {
			return fmt.Errorf("population: drain log for client %d, population has %d", cl.Client, p.n)
		}
		logs[cl.Client] = cl.Drains
	}
	return p.devP.RestoreDrainState(logs)
}

// RestoreResidency is restore phase two (lazy mode only; a no-op when
// eager): replay the unpinned LRU orders through the caches, then
// overwrite the cache counters and FlushObs baselines with the captured
// values so the rebuild itself leaves no telemetry trace. Call after any
// pinned clients have been re-acquired: an Acquire passes transiently
// through the unpinned list before pinning, so acquiring into an
// already-warmed full cache would overflow capacity for an instant and
// evict an entry the capture knew was resident.
func (p *Population) RestoreResidency(st *State) {
	if p.Eager() || st == nil {
		return
	}
	p.dataP.WarmCache(st.ShardLRU)
	p.devP.WarmCache(st.DevLRU)
	p.dataP.SetCacheStats(st.ShardStats)
	p.devP.SetCacheStats(st.DevStats)
	p.lastShard, p.lastDev = st.ShardStats, st.DevStats
}
