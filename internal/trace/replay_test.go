package trace

import (
	"math/rand"
	"testing"
)

// TestDrainLogReplayBitIdentical is the contract the lazy population's
// eviction path stands on: a trace's DrainLog plus its construction config
// fully determine its series. Interleave reads and drains on a live trace,
// then rebuild a fresh trace from the log and check every step bit-for-bit.
func TestDrainLogReplayBitIdentical(t *testing.T) {
	cfg := AvailabilityConfig{Seed: 42, DiurnalPeriod: 24}
	live := NewAvailabilityTrace(cfg)

	rng := rand.New(rand.NewSource(7))
	step := 0
	for i := 0; i < 40; i++ {
		step += rng.Intn(5)
		live.Available(step)
		live.BatteryAt(step)
		switch rng.Intn(3) {
		case 0:
			live.RecordUse()
		case 1:
			live.RecordUseAmount(0.01 + 0.1*rng.Float64())
		}
	}
	horizon := step + 10
	live.Available(horizon)

	replayed := NewAvailabilityTrace(cfg)
	replayed.ReplayDrains(live.DrainLog())
	for s := 0; s <= horizon; s++ {
		if got, want := replayed.Available(s), live.Available(s); got != want {
			t.Fatalf("step %d: replayed availability %v, live %v", s, got, want)
		}
		if got, want := replayed.BatteryAt(s), live.BatteryAt(s); got != want {
			t.Fatalf("step %d: replayed battery %v, live %v (must be bit-exact)", s, got, want)
		}
	}
}

// TestDrainLogEmpty pins that an untouched trace has a nil log and that
// replaying a nil log is a no-op equivalent to a fresh trace.
func TestDrainLogEmpty(t *testing.T) {
	a := NewAvailabilityTrace(AvailabilityConfig{Seed: 3})
	a.Available(20)
	if got := a.DrainLog(); got != nil {
		t.Fatalf("trace without recorded use has log %v, want nil", got)
	}

	b := NewAvailabilityTrace(AvailabilityConfig{Seed: 3})
	b.ReplayDrains(nil)
	for s := 0; s <= 20; s++ {
		if b.BatteryAt(s) != a.BatteryAt(s) {
			t.Fatalf("step %d: nil-replay battery %v, fresh %v", s, b.BatteryAt(s), a.BatteryAt(s))
		}
	}
}

// TestReplayAfterGenerationPanics pins the misuse guard: replay is only
// meaningful on a trace whose series has not started.
func TestReplayAfterGenerationPanics(t *testing.T) {
	a := NewAvailabilityTrace(AvailabilityConfig{Seed: 5})
	a.Available(0)
	defer func() {
		if recover() == nil {
			t.Fatal("ReplayDrains after generation did not panic")
		}
	}()
	a.ReplayDrains([]DrainEvent{{Step: 0, Frac: 0.1}})
}
