package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBandwidthPositiveAndDeterministic(t *testing.T) {
	for _, kind := range []NetKind{Net4G, Net5G} {
		a := NewBandwidthTrace(kind, 42)
		b := NewBandwidthTrace(kind, 42)
		for i := 0; i < 500; i++ {
			va, vb := a.At(i), b.At(i)
			if va <= 0 || math.IsNaN(va) {
				t.Fatalf("%v bandwidth at %d is %v", kind, i, va)
			}
			if va != vb {
				t.Fatalf("%v trace not deterministic at step %d", kind, i)
			}
		}
	}
}

func TestBandwidthMemoized(t *testing.T) {
	tr := NewBandwidthTrace(Net4G, 1)
	v1 := tr.At(10)
	_ = tr.At(500)
	if tr.At(10) != v1 {
		t.Fatal("At is not stable across later lookups")
	}
	if tr.At(-5) != tr.At(0) {
		t.Fatal("negative t should clamp to 0")
	}
}

func Test5GFasterThan4GOnAverage(t *testing.T) {
	mean := func(kind NetKind) float64 {
		var total float64
		const n = 2000
		tr := NewBandwidthTrace(kind, 7)
		for i := 0; i < n; i++ {
			total += tr.At(i)
		}
		return total / n
	}
	m4, m5 := mean(Net4G), mean(Net5G)
	if m5 < 3*m4 {
		t.Fatalf("5G mean %v should be far above 4G mean %v", m5, m4)
	}
}

func TestBandwidthVariability(t *testing.T) {
	// The Markov modulation must actually produce regime changes: the
	// coefficient of variation should be substantial.
	tr := NewBandwidthTrace(Net5G, 3)
	var sum, sumSq float64
	const n = 3000
	for i := 0; i < n; i++ {
		v := tr.At(i)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if std/mean < 0.3 {
		t.Fatalf("5G trace too smooth: cv = %v", std/mean)
	}
}

func TestNetKindStringsAndCaps(t *testing.T) {
	if Net4G.String() != "4G" || Net5G.String() != "5G" {
		t.Fatal("NetKind String broken")
	}
	if NetKind(9).String() == "" {
		t.Fatal("unknown NetKind should still produce a string")
	}
	if Net5G.MaxMbps() <= Net4G.MaxMbps() {
		t.Fatal("5G capacity ceiling should exceed 4G")
	}
}

func TestComputePopulationHeterogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	counts := map[DeviceClass]int{}
	var minG, maxG float64 = math.Inf(1), 0
	for i := 0; i < 3000; i++ {
		p := SampleComputeProfile(rng)
		if p.GFLOPS <= 0 || p.MemoryMB <= 0 || p.EnergyCapacity <= 0 {
			t.Fatalf("non-positive compute profile: %+v", p)
		}
		counts[p.Class]++
		if p.GFLOPS < minG {
			minG = p.GFLOPS
		}
		if p.GFLOPS > maxG {
			maxG = p.GFLOPS
		}
	}
	for _, c := range []DeviceClass{DeviceLowEnd, DeviceMidRange, DeviceHighEnd, DeviceEdge} {
		if counts[c] == 0 {
			t.Fatalf("device class %v never sampled", c)
		}
	}
	if maxG/minG < 10 {
		t.Fatalf("population not heterogeneous enough: %v..%v GFLOPS", minG, maxG)
	}
	if counts[DeviceLowEnd] < counts[DeviceEdge] {
		t.Fatal("low-end devices should dominate edge devices in the mix")
	}
}

func TestDeviceClassString(t *testing.T) {
	names := map[DeviceClass]string{
		DeviceLowEnd: "low-end", DeviceMidRange: "mid-range",
		DeviceHighEnd: "high-end", DeviceEdge: "edge", DeviceClass(99): "unknown",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("DeviceClass(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestAvailabilityWindowsVary(t *testing.T) {
	a := NewAvailabilityTrace(AvailabilityConfig{Seed: 11})
	// Collect ON-window lengths; they must vary (not a fixed linear window).
	var windows []int
	cur := 0
	for i := 0; i < 3000; i++ {
		if a.Available(i) {
			cur++
		} else if cur > 0 {
			windows = append(windows, cur)
			cur = 0
		}
	}
	if len(windows) < 10 {
		t.Fatalf("too few availability windows: %d", len(windows))
	}
	first := windows[0]
	varies := false
	for _, w := range windows {
		if w != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("availability windows are all identical — fixed-window assumption would hold")
	}
}

func TestAvailabilityBatteryDrain(t *testing.T) {
	a := NewAvailabilityTrace(AvailabilityConfig{Seed: 2, DrainPerUse: 0.5})
	level0 := a.BatteryAt(0)
	a.RecordUse()
	level1 := a.BatteryAt(1)
	if level1 >= level0 {
		t.Fatalf("battery did not drain after use: %v -> %v", level0, level1)
	}
	// With no use, battery should recover over time.
	for i := 2; i < 40; i++ {
		a.BatteryAt(i)
	}
	if a.BatteryAt(40) <= level1 {
		t.Fatalf("battery did not recharge while idle: %v -> %v", level1, a.BatteryAt(40))
	}
}

func TestAvailabilityBatteryBounds(t *testing.T) {
	a := NewAvailabilityTrace(AvailabilityConfig{Seed: 3, DrainPerUse: 0.9})
	for i := 0; i < 200; i++ {
		a.RecordUse()
		lvl := a.BatteryAt(i)
		if lvl < 0 || lvl > 1 {
			t.Fatalf("battery out of bounds: %v", lvl)
		}
	}
}

func TestLowBatteryForcesUnavailable(t *testing.T) {
	a := NewAvailabilityTrace(AvailabilityConfig{Seed: 4, DrainPerUse: 1.0, ChargePerStep: 0.0001})
	a.RecordUse()
	// After a full drain the client must be unavailable regardless of the
	// ON/OFF process.
	if a.BatteryAt(1) > 0.15 {
		t.Skip("drain did not push battery below low water in one step")
	}
	if a.Available(1) {
		t.Fatal("client available with battery below low-water mark")
	}
}

func TestInterferenceScenarios(t *testing.T) {
	for _, s := range []Scenario{ScenarioNone, ScenarioStatic, ScenarioDynamic} {
		in := NewInterference(s, 9)
		for i := 0; i < 300; i++ {
			cpu, mem, net := in.At(i)
			if cpu < 0 || cpu > cpuCap+1e-9 {
				t.Fatalf("%v cpu availability out of range: %v", s, cpu)
			}
			if mem < 0 || mem > cpuCap+1e-9 {
				t.Fatalf("%v mem availability out of range: %v", s, mem)
			}
			if net < 0 || net > 1+1e-9 {
				t.Fatalf("%v net availability out of range: %v", s, net)
			}
		}
	}
}

func TestInterferenceNoneIsFull(t *testing.T) {
	in := NewInterference(ScenarioNone, 1)
	cpu, mem, net := in.At(5)
	if cpu != cpuCap || mem != cpuCap || net != 1 {
		t.Fatalf("no-interference should give full availability, got %v %v %v", cpu, mem, net)
	}
}

func TestInterferenceStaticIsConstant(t *testing.T) {
	in := NewInterference(ScenarioStatic, 2)
	c0, m0, n0 := in.At(0)
	for i := 1; i < 100; i++ {
		c, m, n := in.At(i)
		if c != c0 || m != m0 || n != n0 {
			t.Fatal("static interference should be constant over time")
		}
	}
	if c0 >= cpuCap || n0 >= 1 {
		t.Fatalf("static interference should reserve some resources, got cpu=%v net=%v", c0, n0)
	}
}

func TestInterferenceDynamicVaries(t *testing.T) {
	in := NewInterference(ScenarioDynamic, 3)
	c0, _, _ := in.At(0)
	varies := false
	for i := 1; i < 50; i++ {
		c, _, _ := in.At(i)
		if c != c0 {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("dynamic interference never varied")
	}
}

func TestParseScenario(t *testing.T) {
	cases := map[string]Scenario{
		"none": ScenarioNone, "no-interference": ScenarioNone,
		"static": ScenarioStatic, "static-interference": ScenarioStatic,
		"dynamic": ScenarioDynamic, "dynamic-interference": ScenarioDynamic,
	}
	for s, want := range cases {
		got, err := ParseScenario(s)
		if err != nil || got != want {
			t.Fatalf("ParseScenario(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScenario("chaotic"); err == nil {
		t.Fatal("ParseScenario accepted unknown scenario")
	}
	if ScenarioDynamic.String() != "dynamic-interference" {
		t.Fatal("Scenario String broken")
	}
	if Scenario(42).String() == "" {
		t.Fatal("unknown Scenario should still render")
	}
}

// Property: interference availability always lies in the legal box.
func TestInterferencePropertyQuick(t *testing.T) {
	f := func(seed int64, sRaw, tRaw uint8) bool {
		s := Scenario(int(sRaw) % 3)
		in := NewInterference(s, seed)
		cpu, mem, net := in.At(int(tRaw))
		return cpu >= 0 && cpu <= cpuCap+1e-9 &&
			mem >= 0 && mem <= cpuCap+1e-9 &&
			net >= 0 && net <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDiurnalAvailabilityCycle(t *testing.T) {
	const period = 48
	a := NewAvailabilityTrace(AvailabilityConfig{Seed: 21, DiurnalPeriod: period})
	nightOn, nightTotal, dayOn, dayTotal := 0, 0, 0, 0
	for i := 0; i < period*40; i++ {
		phase := i % period
		avail := a.Available(i)
		if phase < period/2 {
			nightTotal++
			if avail {
				nightOn++
			}
		} else {
			dayTotal++
			if avail {
				dayOn++
			}
		}
	}
	nightFrac := float64(nightOn) / float64(nightTotal)
	dayFrac := float64(dayOn) / float64(dayTotal)
	if nightFrac <= dayFrac {
		t.Fatalf("diurnal cycle missing: night availability %.2f <= day %.2f", nightFrac, dayFrac)
	}
}

func TestDiurnalZeroPeriodIsStationary(t *testing.T) {
	// Without a period the trace must behave exactly as before (no panic,
	// sane availability fraction).
	a := NewAvailabilityTrace(AvailabilityConfig{Seed: 22})
	on := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if a.Available(i) {
			on++
		}
	}
	frac := float64(on) / n
	if frac < 0.4 || frac > 0.98 {
		t.Fatalf("stationary availability fraction out of range: %.2f", frac)
	}
}
