package trace

import "math/rand"

// AvailabilityTrace models energy-driven client availability as an ON/OFF
// semi-Markov process with geometric dwell times plus a battery level that
// drains under training load and recharges while idle. This deliberately
// violates the "fixed linear availability window" assumption that the paper
// criticizes in REFL: window lengths are random and correlated with
// consumption, so window prediction from history is genuinely hard.
type AvailabilityTrace struct {
	rng *rand.Rand
	// pOffToOn and pOnToOff are per-step switch probabilities.
	pOffToOn, pOnToOff float64
	diurnalPeriod      int
	// battery in [0,1]; device is unavailable below lowWater regardless of
	// the ON/OFF state, and recovers above highWater.
	battery             float64
	lowWater, highWater float64
	drainPerUse         float64
	chargePerStep       float64

	on      bool
	series  []bool
	levels  []float64
	pending float64 // drain requested for the next step
}

// AvailabilityConfig tunes an availability trace.
type AvailabilityConfig struct {
	Seed int64
	// MeanOnSteps / MeanOffSteps set expected dwell times (geometric).
	MeanOnSteps, MeanOffSteps float64
	// DrainPerUse is battery drained by one round of training.
	DrainPerUse float64
	// ChargePerStep is battery recovered per idle step.
	ChargePerStep float64
	// DiurnalPeriod, when positive, modulates availability with a daily
	// cycle of this many steps: devices are most available (idle and
	// charging) during the "night" half of the cycle — the dominant
	// pattern of the smartphone availability study the paper draws on.
	DiurnalPeriod int
}

// NewAvailabilityTrace constructs a trace; zero-valued config fields get
// defaults matching a phone that is usable roughly 80% of the time.
func NewAvailabilityTrace(cfg AvailabilityConfig) *AvailabilityTrace {
	if cfg.MeanOnSteps <= 0 {
		cfg.MeanOnSteps = 30
	}
	if cfg.MeanOffSteps <= 0 {
		cfg.MeanOffSteps = 6
	}
	if cfg.DrainPerUse <= 0 {
		cfg.DrainPerUse = 0.08
	}
	if cfg.ChargePerStep <= 0 {
		cfg.ChargePerStep = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &AvailabilityTrace{
		rng:           rng,
		pOffToOn:      1 / cfg.MeanOffSteps,
		pOnToOff:      1 / cfg.MeanOnSteps,
		diurnalPeriod: cfg.DiurnalPeriod,
		battery:       0.5 + 0.5*rng.Float64(),
		lowWater:      0.15,
		highWater:     0.35,
		drainPerUse:   cfg.DrainPerUse,
		chargePerStep: cfg.ChargePerStep,
		on:            rng.Float64() < 0.8,
	}
}

// Available reports whether the client can participate at step t.
func (a *AvailabilityTrace) Available(t int) bool {
	a.extend(t)
	return a.series[t]
}

// BatteryAt returns the battery level in [0,1] at step t.
func (a *AvailabilityTrace) BatteryAt(t int) float64 {
	a.extend(t)
	return a.levels[t]
}

// RecordUse registers that the client trained during the current step,
// draining the configured per-use battery amount.
func (a *AvailabilityTrace) RecordUse() { a.pending += a.drainPerUse }

// RecordUseAmount drains an explicit battery fraction — used by the cost
// model to charge each round proportionally to the energy it actually
// consumed, so acceleration techniques that cut compute also preserve
// battery (and with it future availability).
func (a *AvailabilityTrace) RecordUseAmount(frac float64) {
	if frac > 0 {
		a.pending += frac
	}
}

func (a *AvailabilityTrace) extend(t int) {
	if t < 0 {
		t = 0
	}
	for len(a.series) <= t {
		// apply pending drain, else charge
		if a.pending > 0 {
			a.battery -= a.pending
			a.pending = 0
		} else {
			a.battery += a.chargePerStep
		}
		if a.battery < 0 {
			a.battery = 0
		}
		if a.battery > 1 {
			a.battery = 1
		}
		// ON/OFF switching; a diurnal cycle tilts the switch rates so the
		// "night" half of the period is markedly more available.
		pOff, pOn := a.pOnToOff, a.pOffToOn
		if a.diurnalPeriod > 0 {
			phase := len(a.series) % a.diurnalPeriod
			if phase < a.diurnalPeriod/2 { // night: sticky ON
				pOff /= 3
				pOn *= 3
			} else { // day: sticky OFF
				pOff *= 3
				pOn /= 3
			}
			if pOn > 1 {
				pOn = 1
			}
		}
		if a.on {
			if a.rng.Float64() < pOff {
				a.on = false
			}
		} else {
			if a.rng.Float64() < pOn {
				a.on = true
			}
		}
		avail := a.on
		if a.battery < a.lowWater {
			avail = false
		}
		a.series = append(a.series, avail)
		a.levels = append(a.levels, a.battery)
	}
}
