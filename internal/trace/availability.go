package trace

import "math/rand"

// AvailabilityTrace models energy-driven client availability as an ON/OFF
// semi-Markov process with geometric dwell times plus a battery level that
// drains under training load and recharges while idle. This deliberately
// violates the "fixed linear availability window" assumption that the paper
// criticizes in REFL: window lengths are random and correlated with
// consumption, so window prediction from history is genuinely hard.
type AvailabilityTrace struct {
	rng *rand.Rand
	// pOffToOn and pOnToOff are per-step switch probabilities.
	pOffToOn, pOnToOff float64
	diurnalPeriod      int
	// battery in [0,1]; device is unavailable below lowWater regardless of
	// the ON/OFF state, and recovers above highWater.
	battery             float64
	lowWater, highWater float64
	drainPerUse         float64
	chargePerStep       float64

	on     bool
	series []bool
	levels []float64
	// drains is the append-only log of battery-drain requests, each tagged
	// with the series step whose generation consumes it. Together with the
	// seed it is the *complete* mutable state of the trace: replaying the
	// log on a freshly-constructed trace reproduces the series bit-for-bit,
	// which is what lets a lazy population evict and re-derive clients.
	drains   []DrainEvent
	drainIdx int // first unconsumed entry of drains
}

// DrainEvent records one battery-drain request: Frac battery fraction,
// consumed when series step Step is generated. Events are logged in
// nondecreasing Step order.
type DrainEvent struct {
	Step int
	Frac float64
}

// AvailabilityConfig tunes an availability trace.
type AvailabilityConfig struct {
	Seed int64
	// MeanOnSteps / MeanOffSteps set expected dwell times (geometric).
	MeanOnSteps, MeanOffSteps float64
	// DrainPerUse is battery drained by one round of training.
	DrainPerUse float64
	// ChargePerStep is battery recovered per idle step.
	ChargePerStep float64
	// DiurnalPeriod, when positive, modulates availability with a daily
	// cycle of this many steps: devices are most available (idle and
	// charging) during the "night" half of the cycle — the dominant
	// pattern of the smartphone availability study the paper draws on.
	DiurnalPeriod int
}

// NewAvailabilityTrace constructs a trace; zero-valued config fields get
// defaults matching a phone that is usable roughly 80% of the time.
func NewAvailabilityTrace(cfg AvailabilityConfig) *AvailabilityTrace {
	if cfg.MeanOnSteps <= 0 {
		cfg.MeanOnSteps = 30
	}
	if cfg.MeanOffSteps <= 0 {
		cfg.MeanOffSteps = 6
	}
	if cfg.DrainPerUse <= 0 {
		cfg.DrainPerUse = 0.08
	}
	if cfg.ChargePerStep <= 0 {
		cfg.ChargePerStep = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &AvailabilityTrace{
		rng:           rng,
		pOffToOn:      1 / cfg.MeanOffSteps,
		pOnToOff:      1 / cfg.MeanOnSteps,
		diurnalPeriod: cfg.DiurnalPeriod,
		battery:       0.5 + 0.5*rng.Float64(),
		lowWater:      0.15,
		highWater:     0.35,
		drainPerUse:   cfg.DrainPerUse,
		chargePerStep: cfg.ChargePerStep,
		on:            rng.Float64() < 0.8,
	}
}

// Available reports whether the client can participate at step t.
func (a *AvailabilityTrace) Available(t int) bool {
	a.extend(t)
	return a.series[t]
}

// BatteryAt returns the battery level in [0,1] at step t.
func (a *AvailabilityTrace) BatteryAt(t int) float64 {
	a.extend(t)
	return a.levels[t]
}

// RecordUse registers that the client trained during the current step,
// draining the configured per-use battery amount.
func (a *AvailabilityTrace) RecordUse() {
	a.drains = append(a.drains, DrainEvent{Step: len(a.series), Frac: a.drainPerUse})
}

// RecordUseAmount drains an explicit battery fraction — used by the cost
// model to charge each round proportionally to the energy it actually
// consumed, so acceleration techniques that cut compute also preserve
// battery (and with it future availability).
func (a *AvailabilityTrace) RecordUseAmount(frac float64) {
	if frac > 0 {
		a.drains = append(a.drains, DrainEvent{Step: len(a.series), Frac: frac})
	}
}

// DrainLog returns a copy of the drain-event log. A trace constructed with
// the same config and then ReplayDrains'd with this log is bit-identical to
// the receiver — the log plus the seed is the trace's whole mutable state.
func (a *AvailabilityTrace) DrainLog() []DrainEvent {
	if len(a.drains) == 0 {
		return nil
	}
	return append([]DrainEvent(nil), a.drains...)
}

// ReplayDrains installs a previously-captured drain log on a trace that has
// not yet generated any steps. It is the re-derivation half of the lazy
// population contract: evict a client, keep only its DrainLog, and a fresh
// NewAvailabilityTrace + ReplayDrains reproduces its battery/availability
// series exactly. Panics if called after the series started generating,
// because the replayed past could no longer take effect.
func (a *AvailabilityTrace) ReplayDrains(log []DrainEvent) {
	if len(a.series) > 0 {
		panic("trace: ReplayDrains called on a trace with generated steps")
	}
	a.drains = append([]DrainEvent(nil), log...)
	a.drainIdx = 0
}

// StepsGenerated returns how many series steps the trace has produced.
// Checkpoint restore uses it as a guard: drain logs may only be replayed
// onto a pristine trace (see ReplayDrains), and a nonzero value means the
// target population was already used.
func (a *AvailabilityTrace) StepsGenerated() int { return len(a.series) }

func (a *AvailabilityTrace) extend(t int) {
	if t < 0 {
		t = 0
	}
	for len(a.series) <= t {
		// Consume every drain logged for this step, in log order (the same
		// accumulation order the old pending-sum used, so the float math is
		// unchanged); an undrained step charges instead.
		var drain float64
		for a.drainIdx < len(a.drains) && a.drains[a.drainIdx].Step <= len(a.series) {
			drain += a.drains[a.drainIdx].Frac
			a.drainIdx++
		}
		if drain > 0 {
			a.battery -= drain
		} else {
			a.battery += a.chargePerStep
		}
		if a.battery < 0 {
			a.battery = 0
		}
		if a.battery > 1 {
			a.battery = 1
		}
		// ON/OFF switching; a diurnal cycle tilts the switch rates so the
		// "night" half of the period is markedly more available.
		pOff, pOn := a.pOnToOff, a.pOffToOn
		if a.diurnalPeriod > 0 {
			phase := len(a.series) % a.diurnalPeriod
			if phase < a.diurnalPeriod/2 { // night: sticky ON
				pOff /= 3
				pOn *= 3
			} else { // day: sticky OFF
				pOff *= 3
				pOn /= 3
			}
			if pOn > 1 {
				pOn = 1
			}
		}
		if a.on {
			if a.rng.Float64() < pOff {
				a.on = false
			}
		} else {
			if a.rng.Float64() < pOn {
				a.on = true
			}
		}
		avail := a.on
		if a.battery < a.lowWater {
			avail = false
		}
		a.series = append(a.series, avail)
		a.levels = append(a.levels, a.battery)
	}
}
