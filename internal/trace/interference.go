package trace

import (
	"fmt"
	"math/rand"
)

// Scenario selects the co-located application interference model from
// Section 4.3 of the paper.
type Scenario int

const (
	// ScenarioNone: all client resources are dedicated to FL training.
	ScenarioNone Scenario = iota
	// ScenarioStatic: high-priority applications consistently reserve a
	// fixed share of each resource.
	ScenarioStatic
	// ScenarioDynamic: concurrent applications dynamically consume
	// resources — the realistic setting every end-to-end experiment uses.
	ScenarioDynamic
)

func (s Scenario) String() string {
	switch s {
	case ScenarioNone:
		return "no-interference"
	case ScenarioStatic:
		return "static-interference"
	case ScenarioDynamic:
		return "dynamic-interference"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// ParseScenario maps a CLI string to a Scenario.
func ParseScenario(s string) (Scenario, error) {
	switch s {
	case "none", "no-interference":
		return ScenarioNone, nil
	case "static", "static-interference":
		return ScenarioStatic, nil
	case "dynamic", "dynamic-interference":
		return ScenarioDynamic, nil
	}
	return 0, fmt.Errorf("trace: unknown interference scenario %q", s)
}

// Interference produces, per time step, the fraction of each resource
// (CPU, memory, network) left available to FL training. Dynamic
// interference is a mean-reverting AR(1) process per resource, clipped to
// [floor, cap]; the cap of 0.8 reflects Table 1's observation that even an
// idle device never hands 100% of CPU/memory to training.
type Interference struct {
	Scenario Scenario
	rng      *rand.Rand

	// static shares (scenario static): fixed per-client draw.
	staticCPU, staticMem, staticNet float64

	// AR(1) state (scenario dynamic).
	cpu, mem, net             float64
	meanCPU, meanMem, meanNet float64

	series [][3]float64 // memoized (cpu, mem, net) availability
}

// cpuCap is the maximum fraction of CPU/memory ever available to FL
// (Table 1's bins stop at "Very High (61-80%)").
const cpuCap = 0.8

// NewInterference builds the interference process for a client.
func NewInterference(s Scenario, seed int64) *Interference {
	rng := rand.New(rand.NewSource(seed))
	in := &Interference{Scenario: s, rng: rng}
	switch s {
	case ScenarioStatic:
		// High-priority apps hold a stable 30-70% of each resource.
		in.staticCPU = clip(cpuCap*(0.35+0.4*rng.Float64()), 0.1, cpuCap)
		in.staticMem = clip(cpuCap*(0.4+0.4*rng.Float64()), 0.1, cpuCap)
		in.staticNet = clip(0.35+0.4*rng.Float64(), 0.1, 1)
	case ScenarioDynamic:
		in.meanCPU = clip(cpuCap*(0.4+0.45*rng.Float64()), 0.15, cpuCap)
		in.meanMem = clip(cpuCap*(0.45+0.45*rng.Float64()), 0.15, cpuCap)
		in.meanNet = clip(0.35+0.5*rng.Float64(), 0.15, 1)
		in.cpu, in.mem, in.net = in.meanCPU, in.meanMem, in.meanNet
	}
	return in
}

// At returns the (cpuAvail, memAvail, netAvail) fractions at step t.
func (in *Interference) At(t int) (cpu, mem, net float64) {
	if t < 0 {
		t = 0
	}
	for len(in.series) <= t {
		in.series = append(in.series, in.step())
	}
	v := in.series[t]
	return v[0], v[1], v[2]
}

func (in *Interference) step() [3]float64 {
	switch in.Scenario {
	case ScenarioNone:
		return [3]float64{cpuCap, cpuCap, 1}
	case ScenarioStatic:
		return [3]float64{in.staticCPU, in.staticMem, in.staticNet}
	default:
		const rho = 0.7    // mean reversion
		const sigma = 0.10 // innovation stddev
		in.cpu = clip(in.meanCPU+rho*(in.cpu-in.meanCPU)+sigma*in.rng.NormFloat64(), 0.05, cpuCap)
		in.mem = clip(in.meanMem+rho*(in.mem-in.meanMem)+sigma*in.rng.NormFloat64(), 0.05, cpuCap)
		in.net = clip(in.meanNet+rho*(in.net-in.meanNet)+sigma*in.rng.NormFloat64(), 0.08, 1)
		return [3]float64{in.cpu, in.mem, in.net}
	}
}

func clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
