// Package trace synthesizes the client resource traces that the paper
// takes from real measurements: 4G/5G network bandwidth [Narayanan et al.],
// per-device compute capability [AI-Benchmark], and energy-driven
// availability [Yang et al.]. Each generator is a seeded stochastic process
// so experiments are reproducible, and each is shaped to preserve the
// statistical features the FLOAT agent must adapt to: bursty
// regime-switching bandwidth, a heavy-tailed device-speed population, and
// ON/OFF availability windows that are *not* fixed linear windows.
package trace

import (
	"fmt"
	"math/rand"
)

// NetKind selects the cellular technology of a bandwidth trace.
type NetKind int

const (
	// Net4G models LTE: lower means, frequent degradation.
	Net4G NetKind = iota
	// Net5G models mmWave/sub-6 5G: much higher peaks, but highly bursty
	// (the measurement study's key finding).
	Net5G
)

func (k NetKind) String() string {
	switch k {
	case Net4G:
		return "4G"
	case Net5G:
		return "5G"
	default:
		return fmt.Sprintf("NetKind(%d)", int(k))
	}
}

// bandwidth regimes: each NetKind has four Markov states with lognormal-ish
// jitter around a state mean (Mbps). Transition probabilities favour
// self-loops with occasional regime switches, mirroring the walking/driving
// traces used by the paper.
type netRegime struct {
	meanMbps float64
	jitter   float64 // multiplicative jitter stddev
}

var netRegimes = map[NetKind][]netRegime{
	Net4G: {
		{meanMbps: 1.5, jitter: 0.4}, // congested / edge of coverage
		{meanMbps: 8, jitter: 0.35},  // fair
		{meanMbps: 25, jitter: 0.3},  // good
		{meanMbps: 55, jitter: 0.25}, // excellent
	},
	Net5G: {
		{meanMbps: 15, jitter: 0.5},   // fallback to LTE-like throughput
		{meanMbps: 120, jitter: 0.4},  // mid-band
		{meanMbps: 450, jitter: 0.35}, // strong mmWave
		{meanMbps: 900, jitter: 0.3},  // peak
	},
}

// regime transition matrix (shared shape): sticky with occasional moves.
var regimeTransition = [4][4]float64{
	{0.80, 0.15, 0.04, 0.01},
	{0.10, 0.75, 0.12, 0.03},
	{0.03, 0.12, 0.75, 0.10},
	{0.01, 0.05, 0.16, 0.78},
}

// BandwidthTrace is a Markov-modulated bandwidth process. At(t) is
// deterministic for a given (kind, seed): the trace is generated lazily and
// memoized, so arbitrary lookahead costs only the steps generated.
type BandwidthTrace struct {
	Kind   NetKind
	rng    *rand.Rand
	state  int
	series []float64 // memoized samples, Mbps
}

// NewBandwidthTrace constructs a trace for the given technology and seed.
func NewBandwidthTrace(kind NetKind, seed int64) *BandwidthTrace {
	rng := rand.New(rand.NewSource(seed))
	return &BandwidthTrace{Kind: kind, rng: rng, state: rng.Intn(4)}
}

// At returns the bandwidth in Mbps at discrete time step t (t >= 0).
func (b *BandwidthTrace) At(t int) float64 {
	if t < 0 {
		t = 0
	}
	for len(b.series) <= t {
		b.series = append(b.series, b.step())
	}
	return b.series[t]
}

func (b *BandwidthTrace) step() float64 {
	// advance regime
	u := b.rng.Float64()
	var acc float64
	row := regimeTransition[b.state]
	next := b.state
	for j, p := range row {
		acc += p
		if u < acc {
			next = j
			break
		}
	}
	b.state = next
	r := netRegimes[b.Kind][b.state]
	// multiplicative jitter, floored so bandwidth never hits zero (a
	// disconnected client is modelled by the availability trace instead).
	f := 1 + r.jitter*b.rng.NormFloat64()
	if f < 0.1 {
		f = 0.1
	}
	return r.meanMbps * f
}

// MaxMbps returns the practical ceiling of the technology (used to express
// bandwidth as a fraction of capacity for state discretization).
func (k NetKind) MaxMbps() float64 {
	switch k {
	case Net5G:
		return 1100
	default:
		return 70
	}
}
