package trace

import "math/rand"

// DeviceClass labels a tier of the mobile/edge device population, echoing
// the AI-Benchmark compute trace's spread across ~950 devices.
type DeviceClass int

const (
	// DeviceLowEnd: budget phones, old SoCs.
	DeviceLowEnd DeviceClass = iota
	// DeviceMidRange: mainstream phones.
	DeviceMidRange
	// DeviceHighEnd: flagship phones.
	DeviceHighEnd
	// DeviceEdge: plugged-in edge boxes / tablets with active cooling.
	DeviceEdge
)

func (c DeviceClass) String() string {
	switch c {
	case DeviceLowEnd:
		return "low-end"
	case DeviceMidRange:
		return "mid-range"
	case DeviceHighEnd:
		return "high-end"
	case DeviceEdge:
		return "edge"
	default:
		return "unknown"
	}
}

// ComputeProfile describes one device's training capability.
type ComputeProfile struct {
	Class DeviceClass
	// GFLOPS is the sustained training throughput in billions of
	// float operations per second.
	GFLOPS float64
	// MemoryMB is the RAM the device can dedicate to training at best.
	MemoryMB float64
	// EnergyCapacity abstracts battery size in "training-hours".
	EnergyCapacity float64
}

// population mix: most clients are low/mid devices — this skew is what
// creates stragglers in the first place.
var classMix = []struct {
	class DeviceClass
	p     float64
	// lognormal-ish GFLOPS range
	gflopsMean, gflopsJitter float64
	memMean, memJitter       float64
	energyMean               float64
}{
	{DeviceLowEnd, 0.35, 6, 0.30, 1500, 0.25, 1.5},
	{DeviceMidRange, 0.40, 16, 0.25, 3000, 0.25, 2.5},
	{DeviceHighEnd, 0.18, 38, 0.22, 6000, 0.20, 3.5},
	{DeviceEdge, 0.07, 80, 0.20, 12000, 0.20, 24},
}

// SampleComputeProfile draws one device from the heterogeneous population.
func SampleComputeProfile(rng *rand.Rand) ComputeProfile {
	u := rng.Float64()
	var acc float64
	for _, m := range classMix {
		acc += m.p
		if u < acc {
			return ComputeProfile{
				Class:          m.class,
				GFLOPS:         positiveJitter(m.gflopsMean, m.gflopsJitter, rng),
				MemoryMB:       positiveJitter(m.memMean, m.memJitter, rng),
				EnergyCapacity: positiveJitter(m.energyMean, 0.2, rng),
			}
		}
	}
	// float rounding fallthrough: return the last class.
	m := classMix[len(classMix)-1]
	return ComputeProfile{
		Class:          m.class,
		GFLOPS:         positiveJitter(m.gflopsMean, m.gflopsJitter, rng),
		MemoryMB:       positiveJitter(m.memMean, m.memJitter, rng),
		EnergyCapacity: positiveJitter(m.energyMean, 0.2, rng),
	}
}

func positiveJitter(mean, jitter float64, rng *rand.Rand) float64 {
	f := 1 + jitter*rng.NormFloat64()
	if f < 0.2 {
		f = 0.2
	}
	return mean * f
}
