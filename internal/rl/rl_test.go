package rl

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"floatfl/internal/opt"
)

func TestDiscretizeGlobals(t *testing.T) {
	cases := []struct {
		batch, epochs, k int
		gb, ge, gk       int
	}{
		{4, 2, 5, 0, 0, 0},
		{8, 5, 10, 1, 1, 1},
		{20, 5, 30, 1, 1, 1}, // the paper's end-to-end settings
		{32, 10, 50, 2, 2, 2},
		{100, 20, 500, 2, 2, 2},
	}
	for _, c := range cases {
		gb, ge, gk := DiscretizeGlobals(c.batch, c.epochs, c.k)
		if gb != c.gb || ge != c.ge || gk != c.gk {
			t.Fatalf("DiscretizeGlobals(%d,%d,%d) = %d,%d,%d; want %d,%d,%d",
				c.batch, c.epochs, c.k, gb, ge, gk, c.gb, c.ge, c.gk)
		}
	}
}

func TestDiscretizeResources(t *testing.T) {
	// Table 1 bins at the default resolution.
	cpu, mem, net := DiscretizeResources(0, 0, 0.01, DefaultBins)
	if cpu != 0 || mem != 0 || net != 0 {
		t.Fatalf("low availability bins = %d %d %d", cpu, mem, net)
	}
	cpu, _, net = DiscretizeResources(0.8, 0.8, 1.0, DefaultBins)
	if cpu != DefaultBins-1 || net != DefaultBins-1 {
		t.Fatalf("full availability should hit the top bin, got cpu=%d net=%d", cpu, net)
	}
	// Monotone in the fraction.
	prev := -1
	for f := 0.0; f <= 0.8; f += 0.05 {
		b, _, _ := DiscretizeResources(f, 0, 0, DefaultBins)
		if b < prev {
			t.Fatalf("cpu bin not monotone at %v", f)
		}
		prev = b
	}
}

func TestDiscretizeDeadlineDiff(t *testing.T) {
	if DiscretizeDeadlineDiff(0, 5) != 0 {
		t.Fatal("meeting the deadline must map to bin 0 (None)")
	}
	if DiscretizeDeadlineDiff(0.05, 5) != 1 {
		t.Fatal("<10% overrun must map to bin 1 (Low)")
	}
	if DiscretizeDeadlineDiff(0.15, 5) != 2 {
		t.Fatal("<20% overrun must map to bin 2 (Moderate)")
	}
	if DiscretizeDeadlineDiff(0.25, 5) != 3 {
		t.Fatal("<30% overrun must map to bin 3 (High)")
	}
	if DiscretizeDeadlineDiff(0.5, 5) != 4 || DiscretizeDeadlineDiff(10, 5) != 4 {
		t.Fatal(">=30% overrun must map to the top bin (Very High)")
	}
}

func TestStateKeyUnique(t *testing.T) {
	seen := map[int]State{}
	for gb := 0; gb < 3; gb++ {
		for cpu := 0; cpu < 5; cpu++ {
			for mem := 0; mem < 5; mem++ {
				for net := 0; net < 5; net++ {
					for hf := 0; hf < 5; hf++ {
						s := State{GB: gb, CPU: cpu, Mem: mem, Net: net, HF: hf}
						k := s.Key(5)
						if prev, dup := seen[k]; dup {
							t.Fatalf("key collision: %v and %v -> %d", prev, s, k)
						}
						seen[k] = s
					}
				}
			}
		}
	}
}

func TestNumResourceStates(t *testing.T) {
	if NumResourceStates(5) != 125 {
		t.Fatalf("the paper's 125 state combinations: got %d", NumResourceStates(5))
	}
	if NumResourceStates(0) != 125 {
		t.Fatal("default bins should be 5")
	}
	if NumResourceStates(3) != 27 {
		t.Fatal("3-bin resolution should give 27")
	}
}

func TestAgentDefaults(t *testing.T) {
	a := NewAgent(Config{Seed: 1})
	cfg := a.Config()
	if cfg.Bins != 5 || cfg.Epsilon != 0.15 || cfg.WP != 0.6 || cfg.WA != 0.4 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if len(a.Actions()) != 8 {
		t.Fatalf("action space size %d, want 8", len(a.Actions()))
	}
}

func TestAgentLearnsBestAction(t *testing.T) {
	a := NewAgent(Config{Seed: 2, Epsilon: 0.2, TotalRounds: 100})
	s := State{CPU: 1, Mem: 2, Net: 3}
	// Environment: quant8 always succeeds with good accuracy; everything
	// else fails.
	for round := 0; round < 400; round++ {
		act := a.SelectAction(s)
		ok := act == opt.TechQuant8
		acc := 0.0
		if ok {
			acc = 0.1
		}
		if err := a.Update(round%100, s, act, ok, acc, s); err != nil {
			t.Fatal(err)
		}
	}
	// Exploitation must now choose quant8.
	counts := map[opt.Technique]int{}
	for i := 0; i < 200; i++ {
		counts[a.SelectAction(s)]++
	}
	if counts[opt.TechQuant8] < 120 {
		t.Fatalf("agent failed to converge on the rewarded action: %v", counts)
	}
	q := a.QValues(s)
	best := q[0]
	for _, v := range q {
		if v > best {
			best = v
		}
	}
	part, _ := a.Objectives(s)
	var bestIdx int
	for i, act := range a.Actions() {
		if act == opt.TechQuant8 {
			bestIdx = i
		}
	}
	if part[bestIdx] < 0.8 {
		t.Fatalf("participation objective for the winning action is %v", part[bestIdx])
	}
}

func TestAgentStateSeparation(t *testing.T) {
	// Different states learn different policies.
	a := NewAgent(Config{Seed: 3, Epsilon: 0.25})
	sNet := State{CPU: 4, Mem: 4, Net: 0} // network-constrained
	sCPU := State{CPU: 0, Mem: 4, Net: 4} // compute-constrained
	for round := 0; round < 600; round++ {
		for _, s := range []State{sNet, sCPU} {
			act := a.SelectAction(s)
			eff := act.Effects()
			var ok bool
			if s == sNet {
				ok = eff.CommFactor <= 0.5 // only strong comm savers succeed
			} else {
				ok = eff.ComputeFactor <= 0.7 // only strong compute savers succeed
			}
			acc := 0.0
			if ok {
				acc = 0.05
			}
			if err := a.Update(round%300, s, act, ok, acc, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	// In the network-constrained state the agent should favour quant8 or
	// prune75; in the compute-constrained state partial50/75 or prune75.
	// Assert on the greedy argmax (SelectAction may explore).
	argmax := func(s State) opt.Technique {
		q := a.QValues(s)
		best, bestIdx := q[0], 0
		for i, v := range q {
			if v > best {
				best, bestIdx = v, i
			}
		}
		return a.Actions()[bestIdx]
	}
	pickNet := argmax(sNet)
	if pickNet.Effects().CommFactor > 0.5 {
		t.Fatalf("network-constrained state picked %v (CommFactor %v)",
			pickNet, pickNet.Effects().CommFactor)
	}
	pickCPU := argmax(sCPU)
	if pickCPU.Effects().ComputeFactor > 0.7 {
		t.Fatalf("compute-constrained state picked %v (ComputeFactor %v)",
			pickCPU, pickCPU.Effects().ComputeFactor)
	}
}

func TestBalancedExplorationCoversActions(t *testing.T) {
	a := NewAgent(Config{Seed: 4, Epsilon: 1.0}) // always explore
	s := State{}
	for round := 0; round < 80; round++ {
		act := a.SelectAction(s)
		if err := a.Update(round, s, act, true, 0, s); err != nil {
			t.Fatal(err)
		}
	}
	// With balanced exploration and 80 pulls over 8 actions, every action
	// should have been tried ~10 times.
	part, _ := a.Objectives(s)
	_ = part
	cs := a.table[State{}.Key(a.cfg.Bins)]
	for i, c := range cs {
		if c.Visits < 5 {
			t.Fatalf("balanced exploration starved action %v (%d visits)", a.actions[i], c.Visits)
		}
	}
}

func TestHFDisabledCollapsesStates(t *testing.T) {
	a := NewAgent(Config{Seed: 5, DisableHF: true})
	s1 := State{CPU: 1, HF: 0}
	s2 := State{CPU: 1, HF: 4}
	if err := a.Update(0, s1, opt.TechQuant8, true, 0.5, s1); err != nil {
		t.Fatal(err)
	}
	q1, q2 := a.QValues(s1), a.QValues(s2)
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatal("with HF disabled, states differing only in HF must share Q-values")
		}
	}
	b := NewAgent(Config{Seed: 5})
	if err := b.Update(0, s1, opt.TechQuant8, true, 0.5, s1); err != nil {
		t.Fatal(err)
	}
	q1, q2 = b.QValues(s1), b.QValues(s2)
	same := true
	for i := range q1 {
		if q1[i] != q2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("with HF enabled, HF bins must distinguish states")
	}
}

func TestFeedbackCacheSynthesizesRewards(t *testing.T) {
	a := NewAgent(Config{Seed: 6})
	s := State{CPU: 2}
	// Successful rounds seed the cache with a strong accuracy improvement.
	for i := 0; i < 10; i++ {
		if err := a.Update(i, s, opt.TechQuant16, true, 0.8, s); err != nil {
			t.Fatal(err)
		}
	}
	// A dropout with unknown accuracy still receives a non-zero accuracy
	// estimate from the cache.
	if err := a.Update(10, s, opt.TechPrune75, false, 0, s); err != nil {
		t.Fatal(err)
	}
	_, acc := a.Objectives(s)
	var pruneIdx int
	for i, act := range a.Actions() {
		if act == opt.TechPrune75 {
			pruneIdx = i
		}
	}
	if acc[pruneIdx] == 0 {
		t.Fatal("feedback cache did not synthesize an accuracy reward for the dropout")
	}

	// Without the cache the dropout's accuracy reward is exactly zero.
	b := NewAgent(Config{Seed: 6, DisableFeedbackCache: true})
	for i := 0; i < 10; i++ {
		if err := b.Update(i, s, opt.TechQuant16, true, 0.8, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Update(10, s, opt.TechPrune75, false, 0.99, s); err != nil {
		t.Fatal(err)
	}
	_, acc = b.Objectives(s)
	if acc[pruneIdx] != 0 {
		t.Fatal("disabled cache should zero the dropout's accuracy reward")
	}
}

func TestDynamicLearningRate(t *testing.T) {
	a := NewAgent(Config{Seed: 7, BaseLR: 0.1, TotalRounds: 100})
	if lr := a.learningRate(0); lr != 0.1 {
		t.Fatalf("lr(0) = %v, want 0.1", lr)
	}
	if lr := a.learningRate(50); lr <= 0.1 || lr >= 1 {
		t.Fatalf("lr(50) = %v, want in (0.1, 1)", lr)
	}
	if lr := a.learningRate(1000); lr != 1 {
		t.Fatalf("lr must cap at 1, got %v", lr)
	}
	b := NewAgent(Config{Seed: 7, BaseLR: 0.3, FixedLR: true})
	if lr := b.learningRate(500); lr != 0.3 {
		t.Fatalf("fixed lr = %v, want 0.3", lr)
	}
}

func TestAdditiveRewardsInflate(t *testing.T) {
	// RQ6's first issue: additive accumulation makes a mediocre,
	// often-chosen action outscore a better, rarely-chosen one.
	add := NewAgent(Config{Seed: 8, AdditiveRewards: true, FixedLR: true, BaseLR: 0.5})
	ma := NewAgent(Config{Seed: 8, FixedLR: true, BaseLR: 0.5})
	s := State{}
	for i := 0; i < 100; i++ {
		// quant16 (mediocre: reward 0.5) gets 10x the visits of quant8
		// (excellent: reward 1.0).
		if err := add.Update(i, s, opt.TechQuant16, true, 0.5, s); err != nil {
			t.Fatal(err)
		}
		if err := ma.Update(i, s, opt.TechQuant16, true, 0.5, s); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if err := add.Update(i, s, opt.TechQuant8, true, 1.0, s); err != nil {
				t.Fatal(err)
			}
			if err := ma.Update(i, s, opt.TechQuant8, true, 1.0, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	idx := func(a *Agent, t16 opt.Technique) int {
		for i, act := range a.Actions() {
			if act == t16 {
				return i
			}
		}
		return -1
	}
	qAdd := add.QValues(s)
	if qAdd[idx(add, opt.TechQuant8)] >= qAdd[idx(add, opt.TechQuant16)] {
		t.Fatal("additive mode should (wrongly) inflate the often-visited action")
	}
	qMA := ma.QValues(s)
	if qMA[idx(ma, opt.TechQuant8)] <= qMA[idx(ma, opt.TechQuant16)] {
		t.Fatal("moving-average mode should rank the better action higher")
	}
}

func TestUpdateRejectsUnknownAction(t *testing.T) {
	a := NewAgent(Config{Seed: 9})
	if err := a.Update(0, State{}, opt.TechNone, true, 0, State{}); err == nil {
		t.Fatal("Update accepted TechNone, which is not in the action space")
	}
}

func TestRewardHistoryAndMeanRecent(t *testing.T) {
	a := NewAgent(Config{Seed: 10, WP: 1, WA: 0})
	s := State{}
	for i := 0; i < 10; i++ {
		ok := i >= 5 // second half all succeed
		if err := a.Update(i, s, opt.TechQuant8, ok, 0, s); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.RewardHistory()) != 10 || a.Updates() != 10 {
		t.Fatal("reward history length wrong")
	}
	if got := a.MeanRecentReward(5); got != 1 {
		t.Fatalf("recent reward = %v, want 1", got)
	}
	if got := a.MeanRecentReward(0); got != 0.5 {
		t.Fatalf("full-history reward = %v, want 0.5", got)
	}
	if NewAgent(Config{}).MeanRecentReward(5) != 0 {
		t.Fatal("empty history should average 0")
	}
}

func TestMemoryBytesUnderPaperBound(t *testing.T) {
	a := NewAgent(Config{Seed: 11, Epsilon: 1})
	// Visit all 125 resource states (plus the paper's fixed globals).
	for cpu := 0; cpu < 5; cpu++ {
		for mem := 0; mem < 5; mem++ {
			for net := 0; net < 5; net++ {
				s := State{GB: 1, GE: 1, GK: 1, CPU: cpu, Mem: mem, Net: net}
				act := a.SelectAction(s)
				if err := a.Update(0, s, act, true, 0.1, s); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if a.StatesVisited() != 125 {
		t.Fatalf("visited %d states, want 125", a.StatesVisited())
	}
	if mb := a.MemoryBytes(); mb > 200_000 {
		t.Fatalf("Q-table memory %d bytes exceeds the paper's 0.2 MB bound", mb)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a := NewAgent(Config{Seed: 12})
	s := State{CPU: 3, Net: 1}
	for i := 0; i < 50; i++ {
		act := a.SelectAction(s)
		if err := a.Update(i, s, act, i%2 == 0, 0.2, s); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewAgent(Config{Seed: 99})
	if err := b.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	qa, qb := a.QValues(s), b.QValues(s)
	for i := range qa {
		if math.Abs(qa[i]-qb[i]) > 1e-12 {
			t.Fatalf("Q-values differ after round trip: %v vs %v", qa, qb)
		}
	}
	if b.StatesVisited() != a.StatesVisited() {
		t.Fatal("state count differs after round trip")
	}
}

func TestLoadRejectsIncompatible(t *testing.T) {
	a := NewAgent(Config{Seed: 13, Bins: 5})
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewAgent(Config{Seed: 13, Bins: 3})
	if err := b.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("Load accepted mismatched bin resolution")
	}
	if err := b.Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestTransferConvergesFaster(t *testing.T) {
	// Fig 9's claim: a pre-trained agent fine-tunes in far fewer rounds
	// than a cold-started one. Environment: only strong comm savers
	// succeed (unstable network).
	env := func(act opt.Technique) (bool, float64) {
		if act.Effects().CommFactor <= 0.5 {
			return true, 0.05
		}
		return false, 0
	}
	train := func(a *Agent, rounds int) {
		s := State{Net: 0, CPU: 4, Mem: 4}
		for i := 0; i < rounds; i++ {
			act := a.SelectAction(s)
			ok, acc := env(act)
			if err := a.Update(i, s, act, ok, acc, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	pre := NewAgent(Config{Seed: 14, Epsilon: 0.2})
	train(pre, 500)
	var buf bytes.Buffer
	if err := pre.Save(&buf); err != nil {
		t.Fatal(err)
	}

	warm := NewAgent(Config{Seed: 15, Epsilon: 0.2})
	if err := warm.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	cold := NewAgent(Config{Seed: 15, Epsilon: 0.2})

	train(warm, 30)
	train(cold, 30)
	if warm.MeanRecentReward(30) <= cold.MeanRecentReward(30) {
		t.Fatalf("pre-trained agent should outperform cold start early: warm=%v cold=%v",
			warm.MeanRecentReward(30), cold.MeanRecentReward(30))
	}
}

// Property: Q-values stay within the reward hull [-1, 1] under the
// moving-average update with discount 0.
func TestQValueBoundsQuick(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		a := NewAgent(Config{Seed: seed})
		s := State{CPU: 1}
		for i := 0; i < int(steps); i++ {
			act := a.SelectAction(s)
			ok := i%3 != 0
			acc := float64(i%7)/3 - 1 // in [-1, 1]
			if err := a.Update(i, s, act, ok, acc, s); err != nil {
				return false
			}
		}
		for _, q := range a.QValues(s) {
			if q < -1.000001 || q > 1.000001 || math.IsNaN(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscountedUpdateUsesFutureValue(t *testing.T) {
	a := NewAgent(Config{Seed: 16, Discount: 0.5, FixedLR: true, BaseLR: 1})
	s, next := State{CPU: 0}, State{CPU: 4}
	// Seed the next state with a high-value action.
	if err := a.Update(0, next, opt.TechQuant8, true, 1, next); err != nil {
		t.Fatal(err)
	}
	if err := a.Update(1, s, opt.TechPrune25, true, 0, next); err != nil {
		t.Fatal(err)
	}
	part, _ := a.Objectives(s)
	var idx int
	for i, act := range a.Actions() {
		if act == opt.TechPrune25 {
			idx = i
		}
	}
	// With lr=1 and discount=0.5: QPart = 1 + 0.5*futureQPart(=1) = 1.5.
	if part[idx] <= 1 {
		t.Fatalf("discounted update ignored the future term: %v", part[idx])
	}
}
