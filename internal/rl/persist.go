package rl

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// snapshot is the serialized form of an agent's learned state. It carries
// enough metadata to refuse loads into an incompatible agent (different
// bin resolution or action space).
type snapshot struct {
	Version  int                `json:"version"`
	Bins     int                `json:"bins"`
	Actions  []string           `json:"actions"`
	Table    map[string][]cell  `json:"table"`
	AccCache map[string]float64 `json:"acc_cache"`
}

const snapshotVersion = 1

// Save writes the agent's Q-table and feedback cache as JSON. This is what
// makes the RLHF agent reusable across workloads (RQ3 / Fig 9): pre-train
// on one dataset, Save, Load into a new deployment, fine-tune online.
func (a *Agent) Save(w io.Writer) error {
	snap := snapshot{
		Version:  snapshotVersion,
		Bins:     a.cfg.Bins,
		Actions:  make([]string, len(a.actions)),
		Table:    make(map[string][]cell, len(a.table)),
		AccCache: make(map[string]float64, len(a.accCache)),
	}
	for i, t := range a.actions {
		snap.Actions[i] = t.String()
	}
	for k, cs := range a.table {
		snap.Table[strconv.Itoa(k)] = cs
	}
	for k, v := range a.accCache {
		snap.AccCache[strconv.Itoa(k)] = v
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Load replaces the agent's Q-table and feedback cache with a previously
// saved snapshot. The snapshot's bin resolution and action space must match
// the agent's configuration.
func (a *Agent) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("rl: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("rl: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if snap.Bins != a.cfg.Bins {
		return fmt.Errorf("rl: snapshot bins %d, agent bins %d", snap.Bins, a.cfg.Bins)
	}
	if len(snap.Actions) != len(a.actions) {
		return fmt.Errorf("rl: snapshot has %d actions, agent has %d", len(snap.Actions), len(a.actions))
	}
	for i, name := range snap.Actions {
		if a.actions[i].String() != name {
			return fmt.Errorf("rl: snapshot action %d is %q, agent has %q", i, name, a.actions[i])
		}
	}
	table := make(map[int][]cell, len(snap.Table))
	for k, cs := range snap.Table {
		key, err := strconv.Atoi(k)
		if err != nil {
			return fmt.Errorf("rl: snapshot has invalid state key %q", k)
		}
		if len(cs) != len(a.actions) {
			return fmt.Errorf("rl: snapshot state %q has %d cells, want %d", k, len(cs), len(a.actions))
		}
		table[key] = cs
	}
	cache := make(map[int]float64, len(snap.AccCache))
	for k, v := range snap.AccCache {
		key, err := strconv.Atoi(k)
		if err != nil {
			return fmt.Errorf("rl: snapshot has invalid cache key %q", k)
		}
		cache[key] = v
	}
	a.table = table
	a.accCache = cache
	return nil
}

// MarshalJSON lets callers embed the cell type in snapshots; fields are
// exported through an alias to keep the wire format explicit.
func (c cell) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		QPart  float64 `json:"qp"`
		QAcc   float64 `json:"qa"`
		Visits int     `json:"n"`
	}{c.QPart, c.QAcc, c.Visits})
}

// UnmarshalJSON mirrors MarshalJSON.
func (c *cell) UnmarshalJSON(data []byte) error {
	var aux struct {
		QPart  float64 `json:"qp"`
		QAcc   float64 `json:"qa"`
		Visits int     `json:"n"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	c.QPart, c.QAcc, c.Visits = aux.QPart, aux.QAcc, aux.Visits
	return nil
}
