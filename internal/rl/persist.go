package rl

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"floatfl/internal/checkpoint"
)

// AgentSnapshotKind is the checkpoint-frame kind Save writes and Load
// expects, so an agent file can never be fed to the engine restore path.
const AgentSnapshotKind = "rl-agent"

// snapshot is the serialized form of an agent's learned state. It carries
// enough metadata to refuse loads into an incompatible agent (different
// bin resolution or action space).
type snapshot struct {
	Version  int                `json:"version"`
	Bins     int                `json:"bins"`
	Actions  []string           `json:"actions"`
	Table    map[string][]cell  `json:"table"`
	AccCache map[string]float64 `json:"acc_cache"`
}

const snapshotVersion = 1

// buildSnapshot captures the agent's learned state (Q-table and feedback
// cache). encoding/json emits map keys sorted, so the marshaled form is
// byte-stable for identical agent state.
func (a *Agent) buildSnapshot() snapshot {
	snap := snapshot{
		Version:  snapshotVersion,
		Bins:     a.cfg.Bins,
		Actions:  make([]string, len(a.actions)),
		Table:    make(map[string][]cell, len(a.table)),
		AccCache: make(map[string]float64, len(a.accCache)),
	}
	for i, t := range a.actions {
		snap.Actions[i] = t.String()
	}
	for k, cs := range a.table {
		snap.Table[strconv.Itoa(k)] = append([]cell(nil), cs...)
	}
	for k, v := range a.accCache {
		snap.AccCache[strconv.Itoa(k)] = v
	}
	return snap
}

// applySnapshot validates a decoded snapshot against the agent's
// configuration and, only if every check passes, replaces the Q-table and
// feedback cache. On error the agent is untouched.
func (a *Agent) applySnapshot(snap snapshot) error {
	if snap.Version != snapshotVersion {
		return &checkpoint.VersionError{Got: uint32(snap.Version)}
	}
	if snap.Bins != a.cfg.Bins {
		return &checkpoint.CompatError{Field: "bins",
			Got: strconv.Itoa(snap.Bins), Want: strconv.Itoa(a.cfg.Bins)}
	}
	if len(snap.Actions) != len(a.actions) {
		return &checkpoint.CompatError{Field: "action count",
			Got: strconv.Itoa(len(snap.Actions)), Want: strconv.Itoa(len(a.actions))}
	}
	for i, name := range snap.Actions {
		if a.actions[i].String() != name {
			return &checkpoint.CompatError{Field: fmt.Sprintf("action %d", i),
				Got: name, Want: a.actions[i].String()}
		}
	}
	table := make(map[int][]cell, len(snap.Table))
	for k, cs := range snap.Table {
		key, err := strconv.Atoi(k)
		if err != nil {
			return &checkpoint.FormatError{Reason: fmt.Sprintf("rl snapshot has invalid state key %q", k)}
		}
		if len(cs) != len(a.actions) {
			return &checkpoint.FormatError{Reason: fmt.Sprintf("rl snapshot state %q has %d cells, want %d", k, len(cs), len(a.actions))}
		}
		table[key] = cs
	}
	cache := make(map[int]float64, len(snap.AccCache))
	for k, v := range snap.AccCache {
		key, err := strconv.Atoi(k)
		if err != nil {
			return &checkpoint.FormatError{Reason: fmt.Sprintf("rl snapshot has invalid cache key %q", k)}
		}
		cache[key] = v
	}
	a.table = table
	a.accCache = cache
	return nil
}

// Save writes the agent's Q-table and feedback cache as a framed,
// checksummed snapshot (kind "rl-agent"). This is what makes the RLHF
// agent reusable across workloads (RQ3 / Fig 9): pre-train on one dataset,
// Save, Load into a new deployment, fine-tune online.
func (a *Agent) Save(w io.Writer) error {
	payload, err := json.Marshal(a.buildSnapshot())
	if err != nil {
		return fmt.Errorf("rl: encoding snapshot: %w", err)
	}
	return checkpoint.Encode(w, AgentSnapshotKind, payload)
}

// Load replaces the agent's Q-table and feedback cache with a previously
// saved snapshot. The frame's checksum is verified and the snapshot's bin
// resolution and action space must match the agent's configuration before
// anything is mutated; every failure is one of the checkpoint package's
// typed errors (ErrTruncated, ErrChecksum, *FormatError, *VersionError,
// *CompatError).
func (a *Agent) Load(r io.Reader) error {
	payload, err := checkpoint.Decode(r, AgentSnapshotKind)
	if err != nil {
		return err
	}
	var snap snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return &checkpoint.FormatError{Reason: fmt.Sprintf("rl snapshot payload: %v", err)}
	}
	return a.applySnapshot(snap)
}

// MarshalJSON lets callers embed the cell type in snapshots; fields are
// exported through an alias to keep the wire format explicit.
func (c cell) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		QPart  float64 `json:"qp"`
		QAcc   float64 `json:"qa"`
		Visits int     `json:"n"`
	}{c.QPart, c.QAcc, c.Visits})
}

// UnmarshalJSON mirrors MarshalJSON.
func (c *cell) UnmarshalJSON(data []byte) error {
	var aux struct {
		QPart  float64 `json:"qp"`
		QAcc   float64 `json:"qa"`
		Visits int     `json:"n"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	c.QPart, c.QAcc, c.Visits = aux.QPart, aux.QAcc, aux.Visits
	return nil
}
