package rl

import (
	"bytes"
	"errors"
	"testing"

	"floatfl/internal/checkpoint"
)

// trainedAgent returns an agent with a few visited states so snapshots
// carry a non-trivial table.
func trainedAgent(t *testing.T) *Agent {
	t.Helper()
	a := NewAgent(Config{Seed: 9})
	for i := 0; i < 40; i++ {
		s := State{GB: i % 3, GE: 1, GK: 2, CPU: i % 5, Mem: (i * 3) % 5, Net: i % 2, HF: i % 4}
		tech := a.SelectAction(s)
		if err := a.Update(i, s, tech, i%3 != 0, 0.01*float64(i%7-3), s); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

// TestSaveLoadTruncationEveryByte proves every proper prefix of a saved
// agent file fails with the typed truncation error and leaves the loading
// agent's state completely untouched.
func TestSaveLoadTruncationEveryByte(t *testing.T) {
	src := trainedAgent(t)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		dst := NewAgent(Config{Seed: 9})
		err := dst.Load(bytes.NewReader(full[:n]))
		if err == nil {
			t.Fatalf("loading %d/%d bytes succeeded", n, len(full))
		}
		if !errors.Is(err, checkpoint.ErrTruncated) {
			t.Fatalf("loading %d/%d bytes: got %v, want ErrTruncated", n, len(full), err)
		}
		if dst.StatesVisited() != 0 || dst.Updates() != 0 {
			t.Fatalf("truncated load at %d bytes mutated the agent", n)
		}
	}
	// And the intact file round-trips.
	dst := NewAgent(Config{Seed: 9})
	if err := dst.Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("intact load: %v", err)
	}
	if dst.StatesVisited() != src.StatesVisited() {
		t.Fatalf("restored %d states, want %d", dst.StatesVisited(), src.StatesVisited())
	}
}

// TestSaveLoadCorruptionDetected flips each byte of the frame and requires
// a typed error with zero agent mutation.
func TestSaveLoadCorruptionDetected(t *testing.T) {
	src := trainedAgent(t)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every byte matters; stride 7 keeps the quadratic sweep fast while
	// still hitting every region (magic, version, kind, length, payload,
	// checksum).
	for i := 0; i < len(full); i += 7 {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x41
		dst := NewAgent(Config{Seed: 9})
		err := dst.Load(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flipping byte %d loaded successfully", i)
		}
		var fe *checkpoint.FormatError
		var ve *checkpoint.VersionError
		if !errors.Is(err, checkpoint.ErrChecksum) && !errors.Is(err, checkpoint.ErrTruncated) &&
			!errors.As(err, &fe) && !errors.As(err, &ve) {
			t.Fatalf("flipping byte %d: untyped error %v", i, err)
		}
		if dst.StatesVisited() != 0 || dst.Updates() != 0 {
			t.Fatalf("corrupt load (byte %d) mutated the agent", i)
		}
	}
}

// TestLoadRejectsWrongKind pins that an engine snapshot frame cannot be
// loaded as an agent.
func TestLoadRejectsWrongKind(t *testing.T) {
	framed, err := checkpoint.EncodeBytes("engine-sync", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var fe *checkpoint.FormatError
	if err := NewAgent(Config{Seed: 9}).Load(bytes.NewReader(framed)); !errors.As(err, &fe) {
		t.Fatalf("wrong-kind load: got %v, want FormatError", err)
	}
}

// TestLoadCompatTyped pins that configuration mismatches surface as
// *checkpoint.CompatError.
func TestLoadCompatTyped(t *testing.T) {
	src := trainedAgent(t)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var ce *checkpoint.CompatError
	if err := NewAgent(Config{Seed: 9, Bins: 7}).Load(bytes.NewReader(buf.Bytes())); !errors.As(err, &ce) {
		t.Fatalf("bins mismatch: got %v, want CompatError", err)
	}
}

// TestRestoreCheckpointRejectsScheduleMismatch pins that a checkpoint
// taken under one exploration schedule cannot be restored into an agent
// configured for another: the decay is a function of round/TotalRounds,
// so a -rounds 3 prefix is a *different experiment* than rounds 0-2 of a
// -rounds 6 run and resuming it would silently diverge. Save/Load stays
// permissive on purpose (transfer learning across schedules); only the
// bit-identity checkpoint path enforces this.
func TestRestoreCheckpointRejectsScheduleMismatch(t *testing.T) {
	src := NewAgent(Config{Seed: 9, TotalRounds: 3})
	blob, err := src.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	var ce *checkpoint.CompatError
	dst := NewAgent(Config{Seed: 9, TotalRounds: 6})
	if err := dst.RestoreCheckpoint(blob); !errors.As(err, &ce) || ce.Field != "agent_total_rounds" {
		t.Fatalf("TotalRounds mismatch: got %v, want CompatError{agent_total_rounds}", err)
	}
	dst = NewAgent(Config{Seed: 10, TotalRounds: 3})
	if err := dst.RestoreCheckpoint(blob); !errors.As(err, &ce) || ce.Field != "agent_seed" {
		t.Fatalf("Seed mismatch: got %v, want CompatError{agent_seed}", err)
	}
	if dst.StatesVisited() != 0 || dst.Updates() != 0 {
		t.Fatal("rejected restore mutated the agent")
	}
	// Matching config restores cleanly.
	dst = NewAgent(Config{Seed: 9, TotalRounds: 3})
	if err := dst.RestoreCheckpoint(blob); err != nil {
		t.Fatalf("matching restore: %v", err)
	}
}

// TestAgentCheckpointResume proves full-fidelity mid-run state capture:
// 2N updates ≡ N updates → checkpoint → restore into fresh agent → N more,
// on action choices, reward history, and checkpoint byte-stability.
func TestAgentCheckpointResume(t *testing.T) {
	run := func(a *Agent, start, n int) []string {
		var picks []string
		for i := start; i < start+n; i++ {
			s := State{GB: i % 3, CPU: i % 5, Mem: (i * 7) % 5, Net: (i * 3) % 5, HF: i % 5}
			tech := a.SelectAction(s)
			picks = append(picks, tech.String())
			if err := a.Update(i, s, tech, i%4 != 1, 0.02*float64(i%5-2), s); err != nil {
				t.Fatal(err)
			}
		}
		return picks
	}

	full := NewAgent(Config{Seed: 3})
	fullPicks := run(full, 0, 120)

	prefix := NewAgent(Config{Seed: 3})
	prefixPicks := run(prefix, 0, 60)
	blob, err := prefix.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := prefix.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("CheckpointState is not byte-stable")
	}

	resumed := NewAgent(Config{Seed: 3})
	if err := resumed.RestoreCheckpoint(blob); err != nil {
		t.Fatal(err)
	}
	resumedPicks := run(resumed, 60, 60)

	got := append(append([]string(nil), prefixPicks...), resumedPicks...)
	for i := range got {
		if got[i] != fullPicks[i] {
			t.Fatalf("action choice diverges at update %d: %s vs %s", i, got[i], fullPicks[i])
		}
	}
	fh, rh := full.RewardHistory(), resumed.RewardHistory()
	if len(fh) != len(rh) {
		t.Fatalf("reward history length %d, want %d", len(rh), len(fh))
	}
	for i := range fh {
		if fh[i] != rh[i] {
			t.Fatalf("reward history diverges at %d", i)
		}
	}
	if full.Updates() != resumed.Updates() {
		t.Fatalf("updates %d, want %d", resumed.Updates(), full.Updates())
	}
}
