package rl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"floatfl/internal/opt"
)

// Property: UnKey inverts Key for every legal state.
func TestUnKeyRoundTripQuick(t *testing.T) {
	f := func(gb, ge, gk, cpu, mem, net, hf uint8) bool {
		s := State{
			GB: int(gb) % 3, GE: int(ge) % 3, GK: int(gk) % 3,
			CPU: int(cpu) % 5, Mem: int(mem) % 5, Net: int(net) % 5, HF: int(hf) % 5,
		}
		return UnKey(s.Key(5), 5) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnKeyDefaultBins(t *testing.T) {
	s := State{GB: 2, CPU: 3, Net: 1, HF: 4}
	if UnKey(s.Key(0), 0) != s {
		t.Fatal("UnKey with bins=0 should use the default resolution")
	}
}

func TestPolicyDump(t *testing.T) {
	a := NewAgent(Config{Seed: 1, Epsilon: 0.01})
	// Teach two states two different best actions.
	teach := func(s State, best opt.Technique) {
		for i := 0; i < 60; i++ {
			act := a.SelectAction(s)
			ok := act == best
			acc := 0.0
			if ok {
				acc = 0.2
			}
			if err := a.Update(i, s, act, ok, acc, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	s1 := State{CPU: 0, Net: 4}
	s2 := State{CPU: 4, Net: 0}
	teach(s1, opt.TechPartial75)
	teach(s2, opt.TechQuant8)

	dump := a.PolicyDump()
	if len(dump) != 2 {
		t.Fatalf("policy dump has %d states, want 2", len(dump))
	}
	// Sorted by key: verify each entry maps back to its taught action.
	found := map[State]opt.Technique{}
	for _, e := range dump {
		if e.Visits == 0 {
			t.Fatal("dump entry with zero visits")
		}
		found[e.State] = e.Action
	}
	if found[s1] != opt.TechPartial75 {
		t.Fatalf("state %v policy %v, want partial75", s1, found[s1])
	}
	if found[s2] != opt.TechQuant8 {
		t.Fatalf("state %v policy %v, want quant8", s2, found[s2])
	}
	// Deterministic ordering.
	again := a.PolicyDump()
	for i := range dump {
		if dump[i].State != again[i].State {
			t.Fatal("PolicyDump ordering is not stable")
		}
	}
}

func TestPolicyDumpEmptyAgent(t *testing.T) {
	a := NewAgent(Config{Seed: 2})
	if len(a.PolicyDump()) != 0 {
		t.Fatal("fresh agent should dump an empty policy")
	}
}

func TestActionSummaryWeighting(t *testing.T) {
	a := NewAgent(Config{Seed: 3, FixedLR: true, BaseLR: 1})
	s1, s2 := State{CPU: 0}, State{CPU: 4}
	// quant16 in s1: 3 visits all success; in s2: 1 visit failure.
	for i := 0; i < 3; i++ {
		if err := a.Update(0, s1, opt.TechQuant16, true, 0, s1); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Update(0, s2, opt.TechQuant16, false, 0, s2); err != nil {
		t.Fatal(err)
	}
	var st ActionStats
	for _, x := range a.ActionSummary() {
		if x.Technique == opt.TechQuant16 {
			st = x
		}
	}
	if st.Visits != 4 {
		t.Fatalf("visits = %d, want 4", st.Visits)
	}
	// Visit-weighted participation: (3*1 + 1*0)/4 = 0.75.
	if st.Part < 0.74 || st.Part > 0.76 {
		t.Fatalf("visit-weighted participation %v, want 0.75", st.Part)
	}
}

func TestSelectActionDeterministicUnderSeed(t *testing.T) {
	run := func() []opt.Technique {
		a := NewAgent(Config{Seed: 9})
		rng := rand.New(rand.NewSource(5))
		var picks []opt.Technique
		for i := 0; i < 50; i++ {
			s := State{CPU: rng.Intn(5), Mem: rng.Intn(5), Net: rng.Intn(5)}
			act := a.SelectAction(s)
			picks = append(picks, act)
			if err := a.Update(i, s, act, i%2 == 0, 0.1, s); err != nil {
				t.Fatal(err)
			}
		}
		return picks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("agent not deterministic under fixed seed")
		}
	}
}
