package rl_test

import (
	"fmt"

	"floatfl/internal/opt"
	"floatfl/internal/rl"
)

// A complete agent loop: discretize the client's condition into a state,
// select an action, execute, and feed the outcome back. Here the
// environment rewards only strong communication savers, as on a client
// stuck behind a congested uplink.
func ExampleAgent() {
	agent := rl.NewAgent(rl.Config{Seed: 42, TotalRounds: 200})

	// A compute-rich, network-starved client (Table 1 discretization).
	cpu, mem, net := rl.DiscretizeResources(0.75, 0.7, 0.05, rl.DefaultBins)
	gb, ge, gk := rl.DiscretizeGlobals(20, 5, 30)
	state := rl.State{GB: gb, GE: ge, GK: gk, CPU: cpu, Mem: mem, Net: net}

	for round := 0; round < 300; round++ {
		action := agent.SelectAction(state)
		succeeded := action.Effects().CommFactor <= 0.5 // only comm savers fit
		accGain := 0.0
		if succeeded {
			accGain = 0.05
		}
		if err := agent.Update(round%200, state, action, succeeded, accGain, state); err != nil {
			panic(err)
		}
	}

	// The greedy policy has learned that this state needs a comm saver.
	best, bestIdx := -1.0, 0
	for i, q := range agent.QValues(state) {
		if q > best {
			best, bestIdx = q, i
		}
	}
	choice := agent.Actions()[bestIdx]
	fmt.Printf("learned action saves communication: %v\n", choice.Effects().CommFactor <= 0.5)
	fmt.Printf("states visited: %d\n", agent.StatesVisited())
	// Output:
	// learned action saves communication: true
	// states visited: 1
}

// The deadline-difference human-feedback signal maps onto Table 1's bins.
func ExampleDiscretizeDeadlineDiff() {
	for _, overrun := range []float64{0, 0.05, 0.15, 0.25, 0.80} {
		fmt.Printf("overran by %3.0f%% -> bin %d\n",
			overrun*100, rl.DiscretizeDeadlineDiff(overrun, rl.DefaultBins))
	}
	// Output:
	// overran by   0% -> bin 0
	// overran by   5% -> bin 1
	// overran by  15% -> bin 2
	// overran by  25% -> bin 3
	// overran by  80% -> bin 4
}

var _ = opt.TechQuant8 // keep the import for the example's context
