package rl

import (
	"encoding/json"
	"fmt"

	"floatfl/internal/checkpoint"
)

// agentState is the agent's complete mutable state for engine checkpoints.
// Unlike the Save/Load snapshot (which deliberately carries only the
// transferable learned state), a checkpoint must reproduce the agent
// bit-for-bit mid-run: the reward history (Fig 9 convergence output), the
// update counter (drives the sample-average learning-rate floor), and the
// exploration RNG position all continue exactly where they left off. It
// also pins the schedule-shaping config (Seed, TotalRounds — the
// exploration decay is a function of round/TotalRounds): resuming under a
// different schedule would silently diverge from the uninterrupted run,
// so a mismatch is a typed CompatError instead. Save/Load deliberately
// does NOT carry these — transferring learned Q-values into a different
// schedule is the whole point of the pre-train-and-transfer workflow.
type agentState struct {
	Snap          snapshot  `json:"snap"`
	RewardHistory []float64 `json:"reward_history,omitempty"`
	Updates       int       `json:"updates"`
	Draws         uint64    `json:"draws"`
	Seed          int64     `json:"seed"`
	TotalRounds   int       `json:"total_rounds"`
}

// CheckpointState captures the agent for an engine checkpoint.
func (a *Agent) CheckpointState() ([]byte, error) {
	return json.Marshal(agentState{
		Snap:          a.buildSnapshot(),
		RewardHistory: append([]float64(nil), a.rewardHistory...),
		Updates:       a.updates,
		Draws:         a.src.Pos(),
		Seed:          a.cfg.Seed,
		TotalRounds:   a.cfg.TotalRounds,
	})
}

// RestoreCheckpoint restores a captured agent state. The snapshot part
// and the schedule config are validated against the agent's configuration
// before anything is mutated.
func (a *Agent) RestoreCheckpoint(data []byte) error {
	var st agentState
	if err := json.Unmarshal(data, &st); err != nil {
		return &checkpoint.FormatError{Reason: "rl agent state: " + err.Error()}
	}
	if st.Seed != a.cfg.Seed {
		return &checkpoint.CompatError{
			Field: "agent_seed",
			Got:   fmt.Sprint(st.Seed),
			Want:  fmt.Sprint(a.cfg.Seed),
		}
	}
	if st.TotalRounds != a.cfg.TotalRounds {
		return &checkpoint.CompatError{
			Field: "agent_total_rounds",
			Got:   fmt.Sprint(st.TotalRounds),
			Want:  fmt.Sprint(a.cfg.TotalRounds),
		}
	}
	if err := a.applySnapshot(st.Snap); err != nil {
		return err
	}
	a.rewardHistory = append([]float64(nil), st.RewardHistory...)
	a.updates = st.Updates
	a.src.SeekTo(st.Draws)
	return nil
}
