package rl

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/rngstate"
)

// Config tunes the RLHF agent. Zero values get paper defaults; the boolean
// knobs exist for the ablation studies (Fig 11 and the DESIGN.md ablation
// benches) and default to the full FLOAT design via the *Disable* naming.
type Config struct {
	// Bins is the per-metric state resolution (default 5, RQ5).
	Bins int
	// Epsilon is the exploration probability (default 0.15).
	Epsilon float64
	// WP and WA weight participation success and accuracy improvement in
	// the reward (Equation 2; defaults 0.6 / 0.4).
	WP, WA float64
	// BaseLR is the learning rate at round 0; the effective rate grows
	// linearly with training progress up to 1.0 (RQ6's dynamic rate).
	BaseLR float64
	// TotalRounds calibrates the dynamic learning rate (default 300).
	TotalRounds int
	// Discount is the Bellman future-value coefficient. The paper reduces
	// it toward zero because the next state is resource-random; the knob
	// remains for the Algorithm 1 form (default 0).
	Discount float64

	// DisableHF ignores the deadline-difference human feedback (the
	// FLOAT-RL ablation arm).
	DisableHF bool
	// DisableFeedbackCache skips reward synthesis for dropped clients (RQ7).
	DisableFeedbackCache bool
	// DisableBalancedExploration falls back to uniform random exploration.
	DisableBalancedExploration bool
	// AdditiveRewards accumulates raw rewards instead of moving averages —
	// the broken variant RQ6 describes, kept for the ablation bench.
	AdditiveRewards bool
	// FixedLR pins the learning rate to BaseLR for the ablation bench.
	FixedLR bool

	// Actions overrides the agent's action space (default: the paper's 8
	// actions, opt.Actions()). Adding a technique grows the search space
	// linearly in the state count (RQ5); snapshots record the action list
	// and refuse to load into a mismatched agent.
	Actions []opt.Technique

	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Bins <= 0 {
		c.Bins = DefaultBins
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.15
	}
	if c.WP <= 0 && c.WA <= 0 {
		c.WP, c.WA = 0.6, 0.4
	}
	if c.BaseLR <= 0 {
		c.BaseLR = 0.1
	}
	if c.TotalRounds <= 0 {
		c.TotalRounds = 300
	}
	return c
}

// cell is one (state, action) entry of the multi-objective Q-table: the
// two objective estimates plus the visit counter driving balanced
// exploration.
type cell struct {
	QPart  float64 // participation-success objective
	QAcc   float64 // accuracy-improvement objective
	Visits int
}

// Agent is FLOAT's Q-learning RLHF agent.
type Agent struct {
	cfg     Config
	actions []opt.Technique
	rng     *rand.Rand
	src     *rngstate.Source

	// table maps State.Key -> per-action cells. Only visited states are
	// materialized, keeping the memory overhead tiny (Fig 8).
	table map[int][]cell

	// accCache memoizes the latest observed accuracy improvement per
	// state, used to synthesize rewards for dropped clients (RQ7).
	accCache map[int]float64

	// rewardHistory records each update's combined reward for the
	// convergence plots (Fig 9).
	rewardHistory []float64

	updates int

	// Telemetry handles (nil until Instrument): selection and reward-update
	// counters feeding the Fig 10 action-frequency analysis live.
	obsSelects        *obs.Counter
	obsExplores       *obs.Counter
	obsUpdates        *obs.Counter
	obsParticipations *obs.Counter
	obsActions        []*obs.Counter // indexed like a.actions
}

// Instrument registers the agent's selection/update counters on reg.
// Registration is idempotent per metric name, so per-client agent fleets
// sharing one registry accumulate into the same counters. A nil reg
// leaves the handles nil, which every recording path tolerates.
func (a *Agent) Instrument(reg *obs.Registry) {
	a.obsSelects = reg.Counter("rl_action_selected_total")
	a.obsExplores = reg.Counter("rl_explorations_total")
	a.obsUpdates = reg.Counter("rl_updates_total")
	a.obsParticipations = reg.Counter("rl_participations_total")
	a.obsActions = make([]*obs.Counter, len(a.actions))
	for i, t := range a.actions {
		a.obsActions[i] = reg.Counter(`rl_action_selected_total{action="` + t.String() + `"}`)
	}
}

// recordSelect is the single exit point of SelectAction: it counts the
// pick (guarding the per-action slice, which is nil when uninstrumented)
// and returns the chosen technique.
func (a *Agent) recordSelect(idx int, explored bool) opt.Technique {
	a.obsSelects.Inc()
	if explored {
		a.obsExplores.Inc()
	}
	if idx >= 0 && idx < len(a.obsActions) {
		a.obsActions[idx].Inc()
	}
	return a.actions[idx]
}

// NewAgent constructs an agent over FLOAT's 8-action space, or over
// cfg.Actions when overridden.
func NewAgent(cfg Config) *Agent {
	cfg = cfg.withDefaults()
	actions := cfg.Actions
	if len(actions) == 0 {
		actions = opt.Actions()
	}
	src := rngstate.New(cfg.Seed)
	return &Agent{
		cfg:      cfg,
		actions:  append([]opt.Technique(nil), actions...),
		rng:      rand.New(src),
		src:      src,
		table:    make(map[int][]cell),
		accCache: make(map[int]float64),
	}
}

// Actions exposes the agent's action space.
func (a *Agent) Actions() []opt.Technique { return a.actions }

// Config returns the agent's effective configuration.
func (a *Agent) Config() Config { return a.cfg }

// normalize strips the HF dimension when human feedback is disabled, so
// FLOAT-RL genuinely cannot condition on it.
func (a *Agent) normalize(s State) State {
	if a.cfg.DisableHF {
		s.HF = 0
	}
	return s
}

func (a *Agent) cells(s State) []cell {
	k := s.Key(a.cfg.Bins)
	cs, ok := a.table[k]
	if !ok {
		cs = make([]cell, len(a.actions))
		// Optimistic initialization: assume untried actions succeed. Under
		// the moving-average update this washes out after a few visits but
		// makes greedy selection try every action once per state, which
		// matters a lot for sample efficiency at the paper's 125-state
		// scale.
		for i := range cs {
			cs[i].QPart = 1
		}
		a.table[k] = cs
	}
	return cs
}

// SelectAction picks a technique for the state: with probability epsilon it
// explores (preferring the least-visited action unless balanced exploration
// is disabled), otherwise it exploits the weighted multi-objective Q-value.
func (a *Agent) SelectAction(s State) opt.Technique {
	s = a.normalize(s)
	cs := a.cells(s)

	// Count-based epsilon decay: a state whose least-tried action already
	// has history needs less exploration. New states explore at the full
	// rate; well-known states mostly exploit.
	minV := cs[0].Visits
	for _, c := range cs[1:] {
		if c.Visits < minV {
			minV = c.Visits
		}
	}
	eps := a.cfg.Epsilon
	if minV > 0 {
		eps /= math.Sqrt(float64(minV + 1))
	}
	if a.rng.Float64() < eps {
		if a.cfg.DisableBalancedExploration {
			return a.recordSelect(a.rng.Intn(len(a.actions)), true)
		}
		// Balanced exploration: among least-visited actions, pick randomly.
		var least []int
		for i, c := range cs {
			if c.Visits == minV {
				least = append(least, i)
			}
		}
		return a.recordSelect(least[a.rng.Intn(len(least))], true)
	}

	best, bestScore := 0, a.score(cs[0])
	for i := 1; i < len(cs); i++ {
		if sc := a.score(cs[i]); sc > bestScore {
			best, bestScore = i, sc
		}
	}
	return a.recordSelect(best, false)
}

// score combines the two objectives with the reward weights.
func (a *Agent) score(c cell) float64 {
	return a.cfg.WP*c.QPart + a.cfg.WA*c.QAcc
}

// QValues returns the combined Q-value per action for a state (zeros for
// unvisited states); used by Q-table dumps (Fig 10) and tests.
func (a *Agent) QValues(s State) []float64 {
	s = a.normalize(s)
	k := s.Key(a.cfg.Bins)
	out := make([]float64, len(a.actions))
	cs, ok := a.table[k]
	if !ok {
		return out
	}
	for i, c := range cs {
		out[i] = a.score(c)
	}
	return out
}

// Objectives returns the per-action (participation, accuracy) estimates
// for a state — the two panels of the paper's Fig 10 Q-table plots.
func (a *Agent) Objectives(s State) (part, acc []float64) {
	s = a.normalize(s)
	k := s.Key(a.cfg.Bins)
	part = make([]float64, len(a.actions))
	acc = make([]float64, len(a.actions))
	if cs, ok := a.table[k]; ok {
		for i, c := range cs {
			part[i] = c.QPart
			acc[i] = c.QAcc
		}
	}
	return part, acc
}

// learningRate implements RQ6's dynamic rate: low early (accuracy moves a
// lot per round, so individual rewards are noisy), rising linearly with
// training progress, capped at 1.
func (a *Agent) learningRate(round int) float64 {
	if a.cfg.FixedLR {
		return a.cfg.BaseLR
	}
	progress := float64(round) / float64(a.cfg.TotalRounds)
	lr := a.cfg.BaseLR + (1-a.cfg.BaseLR)*progress
	if lr > 1 {
		lr = 1
	}
	if lr < a.cfg.BaseLR {
		lr = a.cfg.BaseLR
	}
	return lr
}

// Update feeds back one executed action. participated reports whether the
// client completed the round; accImprove is its accuracy improvement (any
// scale; clipped to [-1, 1]). When the client dropped out, accImprove is
// unknown — pass 0 and the feedback cache supplies the estimate (RQ7).
// next is the client's state after the round (used only when Discount > 0,
// per Algorithm 1).
func (a *Agent) Update(round int, s State, tech opt.Technique, participated bool, accImprove float64, next State) error {
	s = a.normalize(s)
	idx := a.actionIndex(tech)
	if idx < 0 {
		return fmt.Errorf("rl: technique %v is not in the action space", tech)
	}
	cs := a.cells(s)
	key := s.Key(a.cfg.Bins)

	p := 0.0
	if participated {
		p = 1.0
		a.accCache[key] = 0.5*accImprove + 0.5*a.accCache[key]
	} else if !a.cfg.DisableFeedbackCache {
		// Synthesize the missing accuracy signal from similar clients'
		// cached improvements (same state bin).
		accImprove = a.accCache[key]
	} else {
		accImprove = 0
	}
	if accImprove > 1 {
		accImprove = 1
	}
	if accImprove < -1 {
		accImprove = -1
	}

	c := &cs[idx]
	c.Visits++
	lr := a.learningRate(round)
	// Sample-average floor: the first visits to a cell average exactly
	// (lr = 1/n), washing out the optimistic prior fast; once the cell has
	// history, the dynamic rate takes over and keeps the estimate
	// recency-weighted so the agent tracks resource drift.
	if !a.cfg.FixedLR {
		if inv := 1 / float64(c.Visits); inv > lr {
			lr = inv
		}
	}

	// Optional Algorithm-1 future term; the paper drives Discount -> 0.
	var futureP, futureA float64
	if a.cfg.Discount > 0 {
		nk := a.normalize(next)
		ncs := a.cells(nk)
		bi, bs := 0, a.score(ncs[0])
		for i := 1; i < len(ncs); i++ {
			if sc := a.score(ncs[i]); sc > bs {
				bi, bs = i, sc
			}
		}
		futureP = ncs[bi].QPart
		futureA = ncs[bi].QAcc
	}

	if a.cfg.AdditiveRewards {
		// The broken pre-fix variant: raw additive accumulation inflates
		// whichever action exploration happened to pick most.
		c.QPart += lr * (p + a.cfg.Discount*futureP)
		c.QAcc += lr * (accImprove + a.cfg.Discount*futureA)
	} else {
		// Moving-average update (RQ6): Q <- Q + lr (R + discount·maxQ' - Q).
		c.QPart += lr * (p + a.cfg.Discount*futureP - c.QPart)
		c.QAcc += lr * (accImprove + a.cfg.Discount*futureA - c.QAcc)
	}

	a.updates++
	a.obsUpdates.Inc()
	if participated {
		a.obsParticipations.Inc()
	}
	a.rewardHistory = append(a.rewardHistory, a.cfg.WP*p+a.cfg.WA*accImprove)
	return nil
}

func (a *Agent) actionIndex(t opt.Technique) int {
	for i, at := range a.actions {
		if at == t {
			return i
		}
	}
	return -1
}

// Updates returns the number of Update calls the agent has absorbed.
func (a *Agent) Updates() int { return a.updates }

// RewardHistory returns the combined reward of every update in order
// (Fig 9's convergence signal). The returned slice is owned by the agent.
func (a *Agent) RewardHistory() []float64 { return a.rewardHistory }

// MeanRecentReward averages the last window rewards (all if window <= 0 or
// larger than the history).
func (a *Agent) MeanRecentReward(window int) float64 {
	h := a.rewardHistory
	if len(h) == 0 {
		return 0
	}
	if window <= 0 || window > len(h) {
		window = len(h)
	}
	var s float64
	for _, r := range h[len(h)-window:] {
		s += r
	}
	return s / float64(window)
}

// ActionStats aggregates one action's learned objectives across all
// visited states (visit-weighted) — the per-action bars of Fig 10.
type ActionStats struct {
	Technique opt.Technique
	// Part and Acc are visit-weighted means of the participation-success
	// and accuracy-improvement objectives.
	Part, Acc float64
	Visits    int
}

// ActionSummary aggregates the Q-table per action over every visited
// state, weighting each state's estimate by its visit count.
func (a *Agent) ActionSummary() []ActionStats {
	out := make([]ActionStats, len(a.actions))
	for i, t := range a.actions {
		out[i].Technique = t
	}
	// Visit states in key order: the weighted sums are floating-point, so
	// map-order iteration would make the summary differ between runs.
	keys := make([]int, 0, len(a.table))
	for k := range a.table {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		for i, c := range a.table[k] {
			if c.Visits == 0 {
				continue
			}
			w := float64(c.Visits)
			out[i].Part += w * c.QPart
			out[i].Acc += w * c.QAcc
			out[i].Visits += c.Visits
		}
	}
	for i := range out {
		if out[i].Visits > 0 {
			out[i].Part /= float64(out[i].Visits)
			out[i].Acc /= float64(out[i].Visits)
		}
	}
	return out
}

// ActionVisits returns the total visit count per action (indexed like
// Actions) summed over every visited state — the agent's lifetime action
// distribution, the quantity a run timeline samples to show when the
// policy shifted. Integer sums are exact and commutative, so plain map
// iteration cannot make the result order-dependent. The counts are pure
// projections of the Q-table; no extra mutable state backs them.
func (a *Agent) ActionVisits() []int {
	out := make([]int, len(a.actions))
	for _, cs := range a.table {
		for i, c := range cs {
			out[i] += c.Visits
		}
	}
	return out
}

// PolicyEntry is one row of a greedy-policy dump.
type PolicyEntry struct {
	State  State
	Action opt.Technique
	Q      float64
	Visits int
}

// PolicyDump returns the greedy action per visited state, sorted by state
// key for stable output (the floatqtable CLI's -states mode).
func (a *Agent) PolicyDump() []PolicyEntry {
	keys := make([]int, 0, len(a.table))
	for k := range a.table {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]PolicyEntry, 0, len(keys))
	for _, k := range keys {
		cs := a.table[k]
		best, bestScore, visits := 0, a.score(cs[0]), 0
		for i, c := range cs {
			visits += c.Visits
			if sc := a.score(c); sc > bestScore {
				best, bestScore = i, sc
			}
		}
		out = append(out, PolicyEntry{
			State:  UnKey(k, a.cfg.Bins),
			Action: a.actions[best],
			Q:      bestScore,
			Visits: visits,
		})
	}
	return out
}

// StatesVisited returns the number of materialized states.
func (a *Agent) StatesVisited() int { return len(a.table) }

// MemoryBytes estimates the Q-table's resident size: per state, one map
// slot plus len(actions) cells of (2 float64 + 1 int). This is the Fig 8
// overhead curve; at the paper's 125 resource states × 8 actions it is
// comfortably under 0.2 MB.
func (a *Agent) MemoryBytes() int64 {
	const cellBytes = 8 + 8 + 8 // QPart, QAcc, Visits
	const slotOverhead = 48     // map bucket + key + slice header, amortized
	perState := int64(slotOverhead + cellBytes*len(a.actions))
	return int64(len(a.table))*perState + int64(len(a.accCache))*16
}
