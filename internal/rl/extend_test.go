package rl

import (
	"bytes"
	"testing"

	"floatfl/internal/opt"
)

// extendedActions is the paper's 8-action space plus the lossless
// compression extension technique.
func extendedActions() []opt.Technique {
	return append(opt.Actions(), opt.TechCompress)
}

func TestExtendedActionSpace(t *testing.T) {
	a := NewAgent(Config{Seed: 1, Actions: extendedActions()})
	if len(a.Actions()) != 9 {
		t.Fatalf("extended agent has %d actions, want 9", len(a.Actions()))
	}
	s := State{CPU: 2, Net: 1}
	// The extension action participates in learning like any other.
	for i := 0; i < 200; i++ {
		act := a.SelectAction(s)
		ok := act == opt.TechCompress
		acc := 0.0
		if ok {
			acc = 0.1
		}
		if err := a.Update(i%100, s, act, ok, acc, s); err != nil {
			t.Fatal(err)
		}
	}
	q := a.QValues(s)
	best, bestIdx := q[0], 0
	for i, v := range q {
		if v > best {
			best, bestIdx = v, i
		}
	}
	if a.Actions()[bestIdx] != opt.TechCompress {
		t.Fatalf("agent did not learn the extension action; argmax is %v", a.Actions()[bestIdx])
	}
}

func TestExtendedSearchSpaceGrowsLinearly(t *testing.T) {
	// RQ5's claim: adding one action adds exactly S cells, where S is the
	// number of visited states — linear, not combinatorial.
	visit := func(actions []opt.Technique) int64 {
		a := NewAgent(Config{Seed: 2, Actions: actions, Epsilon: 1})
		for cpu := 0; cpu < 5; cpu++ {
			for net := 0; net < 5; net++ {
				s := State{CPU: cpu, Net: net}
				act := a.SelectAction(s)
				if err := a.Update(0, s, act, true, 0, s); err != nil {
					t.Fatal(err)
				}
			}
		}
		return a.MemoryBytes()
	}
	base := visit(opt.Actions())
	extended := visit(extendedActions())
	grew := extended - base
	// 25 states × 1 extra cell × 24 bytes = 600 bytes of true growth.
	if grew <= 0 || grew > 2000 {
		t.Fatalf("memory growth for one extra action is %d bytes; want small and linear", grew)
	}
}

func TestSnapshotRejectsDifferentActionSpace(t *testing.T) {
	ext := NewAgent(Config{Seed: 3, Actions: extendedActions()})
	var buf bytes.Buffer
	if err := ext.Save(&buf); err != nil {
		t.Fatal(err)
	}
	std := NewAgent(Config{Seed: 3})
	if err := std.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("8-action agent loaded a 9-action snapshot")
	}
	// Same extended space round trips fine.
	ext2 := NewAgent(Config{Seed: 4, Actions: extendedActions()})
	if err := ext2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateRejectsOutOfSpaceAction(t *testing.T) {
	a := NewAgent(Config{Seed: 5}) // standard 8 actions
	if err := a.Update(0, State{}, opt.TechCompress, true, 0, State{}); err == nil {
		t.Fatal("standard agent accepted the extension technique")
	}
}
