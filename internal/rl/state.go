// Package rl implements FLOAT's multi-objective Q-learning agent with
// human feedback (RLHF). The agent maps a discretized client/global state
// (Table 1 of the paper: global training parameters, runtime resource
// variance, and the deadline-difference human-feedback signal) to one of 8
// acceleration actions, learning two objectives — participation success and
// accuracy improvement — as moving averages combined by a weighted reward
// (Equation 2). It incorporates every mechanism the paper's RQ answers
// describe: the reduced-discount Bellman update (RQ1), sub-millisecond /
// sub-megabyte overhead (RQ2), Q-table save/load for fine-tuning on new
// workloads (RQ3), the deadline-difference HF state (RQ4), statistical
// 5-bin dimensionality reduction (RQ5), moving-average rewards with a
// dynamic learning rate and balanced exploration (RQ6), and a feedback
// cache that synthesizes rewards for dropped-out clients (RQ7).
package rl

import "fmt"

// DefaultBins is the paper's state resolution: 5 discrete bins per
// continuous metric was found to balance information richness against
// exploration time (RQ5).
const DefaultBins = 5

// State is the discretized RLHF agent state.
type State struct {
	// Global training parameters (G_B, G_E, G_K): 0=small 1=medium 2=large.
	GB, GE, GK int
	// Runtime variance (S_CPU, S_MEM, S_Network): bin indices in [0, Bins).
	CPU, Mem, Net int
	// HF is the deadline-difference human-feedback bin in [0, Bins);
	// 0 means the client met its last deadline.
	HF int
}

// String renders the state compactly for logs and Q-table dumps.
func (s State) String() string {
	return fmt.Sprintf("g(%d%d%d)/r(%d%d%d)/hf%d", s.GB, s.GE, s.GK, s.CPU, s.Mem, s.Net, s.HF)
}

// Key packs the state into a single non-negative int. bins is the
// resolution used for the resource and HF dimensions.
func (s State) Key(bins int) int {
	if bins <= 0 {
		bins = DefaultBins
	}
	k := s.GB
	k = k*3 + s.GE
	k = k*3 + s.GK
	k = k*bins + s.CPU
	k = k*bins + s.Mem
	k = k*bins + s.Net
	k = k*bins + s.HF
	return k
}

// DiscretizeGlobals maps the raw global training parameters to Table 1's
// three-way bins: batch size (<8, 8-31, >=32), local epochs (<5, 5-9,
// >=10), and participants per round (<10, 10-49, >=50).
func DiscretizeGlobals(batchSize, epochs, participants int) (gb, ge, gk int) {
	switch {
	case batchSize < 8:
		gb = 0
	case batchSize < 32:
		gb = 1
	default:
		gb = 2
	}
	switch {
	case epochs < 5:
		ge = 0
	case epochs < 10:
		ge = 1
	default:
		ge = 2
	}
	switch {
	case participants < 10:
		gk = 0
	case participants < 50:
		gk = 1
	default:
		gk = 2
	}
	return gb, ge, gk
}

// cpuMemCap mirrors Table 1: CPU and memory availability tops out at the
// "Very High (61-80%)" bin because the OS and foreground apps always hold
// the rest.
const cpuMemCap = 0.8

// DiscretizeResources maps availability fractions to bin indices.
// CPU/memory fractions are binned over [0, 0.8]; network over [0, 1].
func DiscretizeResources(cpuFrac, memFrac, netFrac float64, bins int) (cpu, mem, net int) {
	if bins <= 0 {
		bins = DefaultBins
	}
	return binOf(cpuFrac, cpuMemCap, bins), binOf(memFrac, cpuMemCap, bins), binOf(netFrac, 1, bins)
}

// DiscretizeDeadlineDiff maps the human-feedback deadline difference
// (fraction of the deadline the client overran; 0 = met it) to Table 1's
// bins: None (0), then 10%-wide bins with everything >= 30% in the top bin
// when bins == 5; other resolutions scale the bin width accordingly.
func DiscretizeDeadlineDiff(diff float64, bins int) int {
	if bins <= 0 {
		bins = DefaultBins
	}
	if diff <= 0 {
		return 0
	}
	// bins-1 overflow bins of width 0.1 each (scaled to keep the top bin
	// at >= 0.1*(bins-2) for other resolutions).
	idx := 1 + int(diff/0.1)
	if idx > bins-1 {
		idx = bins - 1
	}
	return idx
}

func binOf(frac, cap float64, bins int) int {
	if frac <= 0 {
		return 0
	}
	if frac >= cap {
		return bins - 1
	}
	idx := int(frac / (cap / float64(bins)))
	if idx > bins-1 {
		idx = bins - 1
	}
	return idx
}

// UnKey inverts State.Key for the given bin resolution.
func UnKey(key, bins int) State {
	if bins <= 0 {
		bins = DefaultBins
	}
	var s State
	s.HF = key % bins
	key /= bins
	s.Net = key % bins
	key /= bins
	s.Mem = key % bins
	key /= bins
	s.CPU = key % bins
	key /= bins
	s.GK = key % 3
	key /= 3
	s.GE = key % 3
	key /= 3
	s.GB = key
	return s
}

// NumResourceStates returns bins³ — the "125 possible state combinations"
// the paper quotes for the default resolution.
func NumResourceStates(bins int) int {
	if bins <= 0 {
		bins = DefaultBins
	}
	return bins * bins * bins
}
