package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"floatfl/internal/lint"
)

// badFixtures maps every rule to the fixture that violates it. Each entry
// backs two guarantees: the golden file pins the exact findings, and
// TestEachRuleFires fails if the rule is disabled or stops firing.
var badFixtures = []struct {
	rule    string
	fixture string
}{
	{"no-wall-clock", "wallclock_bad.go"},
	{"no-global-rand", "rand_bad.go"},
	{"map-order-hazard", "maporder_bad.go"},
	{"map-order-hazard", "popcache_bad.go"},
	{"map-order-hazard", "ckptstate_bad.go"},
	{"flat-view-mutation", "flatview_bad.go"},
	{"naked-goroutine", "goroutine_bad.go"},
	{"tensor-backend", "backend_bad.go"},
	{"clock-taint", "clocktaint_bad.go"},
	{"rng-escape", "rngescape_bad.go"},
	{"ckpt-coverage", "ckptcover_bad.go"},
	{"phase-contract", "phase_bad.go"},
	{"no-wall-clock", "multiline_bad.go"},
}

// okFixtures hold the sanctioned patterns plus one //lint:allow-annotated
// violation per rule; all of them must come out clean, which exercises
// both the rules' negative space and the allowlist directive.
var okFixtures = []string{
	"wallclock_ok.go",
	"rand_ok.go",
	"maporder_ok.go",
	"popcache_ok.go",
	"ckptstate_ok.go",
	"flatview_ok.go",
	"goroutine_ok.go",
	"backend_ok.go",
	"clocktaint_ok.go",
	"rngescape_ok.go",
	"ckptcover_ok.go",
	"phase_ok.go",
	"multiline_ok.go",
	"timeline_ok.go",
}

func loadFixture(t *testing.T, name string) *lint.Package {
	t.Helper()
	loader := lint.NewLoader(".")
	pkg, err := loader.SingleFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

func runRules(t *testing.T, fixture string, enabled map[string]bool) []lint.Finding {
	t.Helper()
	return lint.Run([]*lint.Package{loadFixture(t, fixture)}, enabled)
}

// formatFindings renders findings without the filename (stable across
// checkouts) for golden comparison.
func formatFindings(findings []lint.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "%d:%d: %s: %s\n", f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
	}
	return b.String()
}

// TestGoldenFindings compares each bad fixture's full-rule findings with
// its .golden file. Regenerate with UPDATE_GOLDEN=1 go test ./internal/lint.
func TestGoldenFindings(t *testing.T) {
	fixtures := make([]string, 0, len(badFixtures)+1)
	for _, bf := range badFixtures {
		fixtures = append(fixtures, bf.fixture)
	}
	fixtures = append(fixtures, "directive_bad.go")

	for _, fixture := range fixtures {
		fixture := fixture
		t.Run(fixture, func(t *testing.T) {
			got := formatFindings(runRules(t, fixture, nil))
			golden := filepath.Join("testdata", strings.TrimSuffix(fixture, ".go")+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden: %v (regenerate with UPDATE_GOLDEN=1)", err)
			}
			if got != string(want) {
				t.Errorf("findings for %s diverge from golden\n--- got ---\n%s--- want ---\n%s", fixture, got, want)
			}
		})
	}
}

// TestEachRuleFires runs every rule in isolation against its bad fixture:
// at least one finding, all carrying the rule's own name. Disabling or
// breaking any single analyzer fails this test.
func TestEachRuleFires(t *testing.T) {
	// Completeness ratchet: every registered rule must have a bad fixture,
	// so a new analyzer cannot land untested.
	covered := map[string]bool{}
	for _, bf := range badFixtures {
		covered[bf.rule] = true
	}
	for _, name := range lint.RuleNames() {
		if !covered[name] {
			t.Errorf("rule %s has no bad fixture in badFixtures", name)
		}
	}

	for _, bf := range badFixtures {
		bf := bf
		t.Run(bf.rule, func(t *testing.T) {
			findings := runRules(t, bf.fixture, map[string]bool{bf.rule: true})
			if len(findings) == 0 {
				t.Fatalf("rule %s produced no findings on %s; the analyzer is dead", bf.rule, bf.fixture)
			}
			for _, f := range findings {
				if f.Rule != bf.rule {
					t.Errorf("unexpected rule %s at %d:%d (only %s was enabled)", f.Rule, f.Pos.Line, f.Pos.Column, bf.rule)
				}
			}
			// The same fixture with the rule switched off must go quiet:
			// the findings belong to this analyzer alone.
			others := map[string]bool{}
			for _, name := range lint.RuleNames() {
				others[name] = name != bf.rule
			}
			if leftover := runRules(t, bf.fixture, others); len(leftover) != 0 {
				t.Errorf("disabling %s left %d finding(s) on %s: %v", bf.rule, len(leftover), bf.fixture, leftover)
			}
		})
	}
}

// TestAllowlistedFixturesClean proves the sanctioned patterns and the
// //lint:allow directive both silence the analyzers.
func TestAllowlistedFixturesClean(t *testing.T) {
	for _, fixture := range okFixtures {
		fixture := fixture
		t.Run(fixture, func(t *testing.T) {
			if findings := runRules(t, fixture, nil); len(findings) != 0 {
				t.Errorf("ok fixture %s produced %d finding(s):\n%s", fixture, len(findings), formatFindings(findings))
			}
		})
	}
}

// TestMalformedDirectivesReported pins the directive contract: a broken
// //lint:allow is itself a finding and never suppresses the code below it.
func TestMalformedDirectivesReported(t *testing.T) {
	findings := runRules(t, "directive_bad.go", nil)
	var directives, wallClock int
	for _, f := range findings {
		switch f.Rule {
		case "directive":
			directives++
		case "no-wall-clock":
			wallClock++
		}
	}
	if directives != 4 {
		t.Errorf("got %d directive findings, want 4 (bare, unknown rule x2, missing reason):\n%s",
			directives, formatFindings(findings))
	}
	if wallClock != 1 {
		t.Errorf("got %d no-wall-clock findings, want 1 — a malformed directive must not suppress:\n%s",
			wallClock, formatFindings(findings))
	}
}

// TestRepoIsClean is the self-check: the analyzers run over the whole
// module and must report nothing — every real violation is either fixed
// or carries an explicit //lint:allow with a reason.
func TestRepoIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.NewLoader(root).Packages("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages for ./...")
	}
	findings := lint.Run(pkgs, nil)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("floatlint found %d unannotated violation(s) in the repo", len(findings))
	}
}
