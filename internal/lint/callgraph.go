// Module-wide call graph: the substrate the dataflow rules (clock-taint,
// rng-escape, ckpt-coverage, phase-contract) run on. The graph is built
// once per Run from the type-checked ASTs of every loaded package, with
// one node per declared function or method and one node per function
// literal. Edges are static: direct calls, method calls resolved through
// go/types, and function values referenced by name (passing trainLocal to
// a scheduler creates an edge even without a call). Dynamic dispatch —
// interface method calls and anonymous function values — resolves to
// nothing, which is the analysis' deliberate escape hatch: injecting a
// dependency behind an interface (the Clock, the Backend) is exactly how
// code legitimately breaks an invariant-carrying call chain.
//
// A function literal is a separate node linked from its enclosing
// function by a containment edge, so reachability treats "F defines a
// closure" as "F may run it" (conservative), while per-node fact
// collection (InspectOwn) can still attribute the literal's body to the
// literal alone — which is what lets phase-contract reason about the
// fan-out closures independently of the engine functions that build them.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Node is one function in the call graph: a declared function/method
// (Obj != nil, Decl != nil) or a function literal (Lit != nil).
type Node struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Pkg  *Package

	// Enclosing is the node lexically containing a literal (nil for
	// declared functions).
	Enclosing *Node

	// Edges are this node's outgoing calls and contained literals, in
	// source order — the graph's traversals stay deterministic because
	// construction order is AST order over go list's sorted packages.
	Edges []Edge
}

// Edge is one outgoing reference: a static call or function-value use
// (Call site position), or a contained function literal.
type Edge struct {
	Callee   *Node
	Pos      token.Pos
	Contains bool // true for enclosing-function → literal containment
}

// Body returns the node's body block (nil for bodyless declarations).
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// DisplayName renders a compact human-readable name: "pkg.Func",
// "(*Recv).Method", or "func literal in <enclosing>".
func (n *Node) DisplayName() string {
	if n.Obj != nil {
		if sig, ok := n.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			ptr := ""
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				ptr = "*"
			}
			name := t.String()
			if named, ok := t.(*types.Named); ok {
				name = named.Obj().Name()
			}
			if ptr != "" {
				return fmt.Sprintf("(*%s).%s", name, n.Obj.Name())
			}
			return fmt.Sprintf("%s.%s", name, n.Obj.Name())
		}
		pkg := ""
		if n.Obj.Pkg() != nil {
			pkg = n.Obj.Pkg().Name() + "."
		}
		return pkg + n.Obj.Name()
	}
	if n.Enclosing != nil {
		return "func literal in " + n.Enclosing.DisplayName()
	}
	return "func literal"
}

// Graph is the module call graph.
type Graph struct {
	Nodes []*Node
	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
}

// NodeFor returns the node of a declared function, or nil when fn has no
// source in the loaded set.
func (g *Graph) NodeFor(fn *types.Func) *Node { return g.byObj[fn] }

// NodeForLit returns the node of a function literal.
func (g *Graph) NodeForLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// BuildGraph constructs the call graph over every loaded package.
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{byObj: map[*types.Func]*Node{}, byLit: map[*ast.FuncLit]*Node{}}

	// Pass 1: materialize a node per function declaration and per literal.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				node := &Node{Obj: obj, Decl: fd, Pkg: pkg}
				g.Nodes = append(g.Nodes, node)
				g.byObj[obj] = node
				g.addLiterals(node, fd.Body, pkg)
			}
		}
	}

	// Pass 2: resolve each node's own region (nested literal bodies
	// excluded) to static edges.
	for _, node := range g.Nodes {
		node := node
		g.InspectOwn(node, func(n ast.Node) bool {
			// Every function reference bottoms out in an identifier — the
			// callee of a direct call, the Sel of a method or package-
			// qualified call, or a bare function value being passed around.
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := node.Pkg.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if callee := g.byObj[fn]; callee != nil {
				node.Edges = append(node.Edges, Edge{Callee: callee, Pos: id.Pos()})
			}
			return true
		})
	}
	return g
}

// addLiterals creates nodes for every function literal under root
// (excluding literals nested inside other literals, which attach to their
// own enclosing literal node) and links them with containment edges.
func (g *Graph) addLiterals(parent *Node, root ast.Node, pkg *Package) {
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		node := &Node{Lit: lit, Pkg: pkg, Enclosing: parent}
		g.Nodes = append(g.Nodes, node)
		g.byLit[lit] = node
		parent.Edges = append(parent.Edges, Edge{Callee: node, Pos: lit.Pos(), Contains: true})
		g.addLiterals(node, lit.Body, pkg)
		return false // the literal's own subtree belongs to its node
	})
}

// InspectOwn walks the node's own body region, stopping at nested
// function literals: f observes each literal node but never its body,
// which belongs to the literal's own graph node.
func (g *Graph) InspectOwn(node *Node, f func(ast.Node) bool) {
	body := node.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			f(n)
			return false
		}
		return f(n)
	})
}

// ReachableFrom runs a deterministic BFS from roots and returns, for each
// reached node, its predecessor on the first discovered path (roots map to
// nil). Both call and containment edges are followed.
func (g *Graph) ReachableFrom(roots []*Node) map[*Node]*Node {
	pred := make(map[*Node]*Node, len(roots))
	queue := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := pred[r]; ok {
			continue
		}
		pred[r] = nil
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			if _, ok := pred[e.Callee]; ok {
				continue
			}
			pred[e.Callee] = n
			queue = append(queue, e.Callee)
		}
	}
	return pred
}

// Chain renders the call path from a BFS root to node as "a → b → c",
// capped at maxHops nodes (an ellipsis marks truncation).
func Chain(pred map[*Node]*Node, node *Node, maxHops int) string {
	var names []string
	for n := node; n != nil; n = pred[n] {
		names = append(names, n.DisplayName())
		if pred[n] == nil {
			break
		}
	}
	// names is leaf→root; reverse.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	if len(names) > maxHops {
		names = append(append([]string{}, names[:maxHops-1]...), "…", names[len(names)-1])
	}
	return strings.Join(names, " → ")
}
