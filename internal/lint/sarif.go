package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 rendering of findings — the minimal subset GitHub code
// scanning ingests: one run, one driver, the rule metadata table, and one
// result per finding with a physical location. The encoding is
// deterministic: findings arrive position-sorted from Run and the rule
// table follows registration order.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifSyntheticRules are finding sources that are not registered
// analyzers but can still appear in output.
var sarifSyntheticRules = map[string]string{
	"directive":        "malformed //lint:allow directive",
	"unused-directive": "//lint:allow directive that suppresses nothing",
}

// SARIF encodes findings as an indented SARIF 2.1.0 document. root, when
// non-empty, is stripped from file paths so locations are repo-relative
// (what code-scanning UIs expect).
func SARIF(findings []Finding, root string) ([]byte, error) {
	driver := sarifDriver{
		Name:  "floatlint",
		Rules: []sarifRule{},
	}
	index := map[string]int{}
	addRule := func(id, doc string) {
		if _, ok := index[id]; ok {
			return
		}
		index[id] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, r := range Rules {
		addRule(r.Name, r.Doc)
	}

	results := []sarifResult{}
	for _, f := range findings {
		if _, ok := index[f.Rule]; !ok {
			doc := sarifSyntheticRules[f.Rule]
			if doc == "" {
				doc = f.Rule
			}
			addRule(f.Rule, doc)
		}
		line := f.Pos.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:    f.Rule,
			RuleIndex: index[f.Rule],
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       RelPath(f.Pos.Filename, root),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// RelPath renders filename relative to root with forward slashes; when
// filename is outside root (or root is empty) the slash-separated original
// is returned.
func RelPath(filename, root string) string {
	name := filepath.ToSlash(filename)
	if root == "" {
		return name
	}
	r := filepath.ToSlash(root)
	if !strings.HasSuffix(r, "/") {
		r += "/"
	}
	if rest, ok := strings.CutPrefix(name, r); ok {
		return rest
	}
	return name
}
