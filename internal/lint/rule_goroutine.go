package lint

import (
	"go/ast"
	"go/types"
)

// ruleNakedGoroutine flags `go func` literals in non-test code with no
// visible join or cancellation signal: nothing in the literal (or its
// arguments) mentions a context.Context, a sync.WaitGroup, or a channel.
// Such a goroutine cannot be waited for or stopped — the leak class the
// dist chaos tests check at runtime, caught here at review time.
var ruleNakedGoroutine = &Rule{
	Name: "naked-goroutine",
	Doc: "flags go func literals with no context.Context, sync.WaitGroup, " +
		"or channel join — unstoppable goroutines leak",
	SkipTests: true,
	Check: func(pass *Pass) {
		ast.Inspect(pass.File, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if _, isLit := gs.Call.Fun.(*ast.FuncLit); !isLit {
				return true
			}
			if hasJoinSignal(pass, gs) {
				return true
			}
			pass.Report(gs.Pos(),
				"goroutine has no join or cancellation signal (context.Context, sync.WaitGroup, or channel); it can outlive its caller and leak")
			return true
		})
	},
}

// hasJoinSignal reports whether anything in the go statement's subtree is
// typed as a channel, a context.Context, or a sync.WaitGroup.
func hasJoinSignal(pass *Pass, gs *ast.GoStmt) bool {
	found := false
	ast.Inspect(gs, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		t := pass.TypeOf(e)
		if t == nil {
			return true
		}
		if isJoinType(t) {
			found = true
		}
		return !found
	})
	return found
}

func isJoinType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "context" && obj.Name() == "Context":
		return true
	case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup":
		return true
	}
	return false
}
