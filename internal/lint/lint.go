// Package lint is floatlint's analysis engine: a from-scratch static
// analyzer built on the standard library's go/parser, go/ast, go/token,
// and go/types (no golang.org/x/tools), honoring the repository's
// offline/stdlib-only constraint.
//
// It enforces the invariants the reproduction's evaluation rests on —
// the determinism contract of the parallel engines (PR 1), the aliasing
// rules of the flat parameter buffers (PR 2), and the clock-injection
// discipline of the distributed aggregator (PR 3) — as machine-checked
// rules instead of reviewer convention. Each rule reports file/line-keyed
// findings and honors an explicit allowlist directive:
//
//	//lint:allow <rule> <reason>
//
// placed on the offending line or on its own line immediately above
// (directives stack). A directive must name a registered rule and carry a
// non-empty reason; malformed directives are themselves findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic: a rule name, a position, and a message.
type Finding struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"pos"`
	Message string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
}

// Pass is the per-file context handed to a rule's Check function.
type Pass struct {
	Pkg      *Package
	File     *ast.File
	Filename string // slash-separated, as recorded in the FileSet
	report   func(pos token.Pos, msg string)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// Rule is one analyzer. Adding a rule means appending a ~30-line entry to
// the Rules table: a name, a doc line, and a Check function over one file.
type Rule struct {
	Name string
	Doc  string
	// SkipTests excludes _test.go files (rules whose hazard is specific to
	// production code paths, or whose forbidden pattern is the very thing
	// tests must do to exercise it).
	SkipTests bool
	Check     func(*Pass)
}

// Rules is the registry of analyzers, in reporting order.
var Rules = []*Rule{
	ruleNoWallClock,
	ruleNoGlobalRand,
	ruleMapOrderHazard,
	ruleFlatViewMutation,
	ruleNakedGoroutine,
	ruleTensorBackend,
}

// RuleNames returns the registered rule names in order.
func RuleNames() []string {
	names := make([]string, len(Rules))
	for i, r := range Rules {
		names[i] = r.Name
	}
	return names
}

func ruleByName(name string) *Rule {
	for _, r := range Rules {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// directive is one parsed //lint:allow comment.
type directive struct {
	rule   string
	reason string
	line   int
	pos    token.Pos
}

// fileDirectives scans a file's comments for //lint:allow directives.
// Malformed directives (unknown rule, missing reason) are reported
// through report.
func fileDirectives(fset *token.FileSet, file *ast.File, report func(pos token.Pos, msg string)) []directive {
	var dirs []directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			pos := c.Slash
			if len(fields) == 0 {
				report(pos, "malformed //lint:allow directive: missing rule name and reason")
				continue
			}
			rule, reason := fields[0], strings.Join(fields[1:], " ")
			if ruleByName(rule) == nil {
				report(pos, fmt.Sprintf("//lint:allow names unknown rule %q (known: %s)",
					rule, strings.Join(RuleNames(), ", ")))
				continue
			}
			if reason == "" {
				report(pos, fmt.Sprintf("//lint:allow %s needs a reason", rule))
				continue
			}
			dirs = append(dirs, directive{rule: rule, reason: reason, line: fset.Position(pos).Line, pos: pos})
		}
	}
	return dirs
}

// suppressed reports whether a finding of rule at line is covered by a
// directive: one on the same line, or a stack of directive-bearing lines
// immediately above it.
func suppressed(dirs []directive, rule string, line int) bool {
	lines := make(map[int]bool, len(dirs))
	for _, d := range dirs {
		lines[d.line] = true
	}
	match := func(l int) bool {
		for _, d := range dirs {
			if d.line == l && d.rule == rule {
				return true
			}
		}
		return false
	}
	if match(line) {
		return true
	}
	for l := line - 1; lines[l]; l-- {
		if match(l) {
			return true
		}
	}
	return false
}

// Run executes the enabled rules over pkgs and returns the unsuppressed
// findings sorted by position. enabled==nil runs every rule.
func Run(pkgs []*Package, enabled map[string]bool) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			tf := pkg.Fset.File(file.Pos())
			if tf == nil {
				continue
			}
			filename := filepath.ToSlash(tf.Name())
			isTest := strings.HasSuffix(filename, "_test.go")

			// Directive problems are findings themselves and cannot be
			// suppressed (a broken directive must not silence anything).
			var dirFindings []Finding
			dirs := fileDirectives(pkg.Fset, file, func(pos token.Pos, msg string) {
				dirFindings = append(dirFindings, Finding{
					Rule: "directive", Pos: pkg.Fset.Position(pos), Message: msg,
				})
			})
			findings = append(findings, dirFindings...)

			for _, rule := range Rules {
				if enabled != nil && !enabled[rule.Name] {
					continue
				}
				if rule.SkipTests && isTest {
					continue
				}
				rule := rule
				pass := &Pass{Pkg: pkg, File: file, Filename: filename}
				pass.report = func(pos token.Pos, msg string) {
					p := pkg.Fset.Position(pos)
					if suppressed(dirs, rule.Name, p.Line) {
						return
					}
					findings = append(findings, Finding{Rule: rule.Name, Pos: p, Message: msg})
				}
				rule.Check(pass)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings
}
