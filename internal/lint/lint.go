// Package lint is floatlint's analysis engine: a from-scratch static
// analyzer built on the standard library's go/parser, go/ast, go/token,
// and go/types (no golang.org/x/tools), honoring the repository's
// offline/stdlib-only constraint.
//
// It enforces the invariants the reproduction's evaluation rests on —
// the determinism contract of the parallel engines (PR 1), the aliasing
// rules of the flat parameter buffers (PR 2), the clock-injection
// discipline of the distributed aggregator (PR 3), the three-phase
// dispatch/fan-out/collect contract (PR 7), and the snapshot-completeness
// contract of checkpoint/resume (PR 8) — as machine-checked rules instead
// of reviewer convention.
//
// Two kinds of analyzers coexist in the Rules table. Per-file rules
// (Check) are single-pass AST walks over one file. Module rules
// (ModuleCheck) run once over the whole loaded package set with a
// module-wide call graph (callgraph.go), which lets them prove
// reachability properties: a wall-clock read three calls away from an
// engine, an RNG stream leaking across a fan-out boundary, a struct field
// a snapshot encoder forgot.
//
// Each rule reports file/line-keyed findings and honors an explicit
// allowlist directive:
//
//	//lint:allow <rule> <reason>
//
// placed on the offending line, on its own line immediately above
// (directives stack), or immediately above the first line of the
// multi-line statement, declaration spec, or struct field containing the
// finding. A directive must name a registered rule and carry a non-empty
// reason; malformed directives are themselves findings, and Options can
// additionally surface stale directives that no longer suppress anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic: a rule name, a position, and a message.
type Finding struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"pos"`
	Message string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
}

// Pass is the per-file context handed to a rule's Check function.
type Pass struct {
	Pkg      *Package
	File     *ast.File
	Filename string // slash-separated, as recorded in the FileSet
	report   func(pos token.Pos, msg string)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// ModulePass is the whole-module context handed to a rule's ModuleCheck
// function: every loaded package plus the call graph over them.
type ModulePass struct {
	Pkgs  []*Package
	Graph *Graph
	rule  *Rule
	rc    *runContext
}

// Report records a module-rule finding at pos. Findings in _test.go files
// are dropped when the rule sets SkipTests; suppression follows the same
// directive rules as per-file findings.
func (mp *ModulePass) Report(pos token.Pos, format string, args ...interface{}) {
	mp.rc.report(mp.rule, pos, fmt.Sprintf(format, args...))
}

// InTestFile reports whether pos lies in a _test.go file (module rules use
// it to scope facts the same way SkipTests scopes findings).
func (mp *ModulePass) InTestFile(pos token.Pos) bool {
	fc := mp.rc.fileFor(pos)
	return fc != nil && fc.isTest
}

// Rule is one analyzer. Per-file analyzers set Check; whole-module
// analyzers set ModuleCheck (exactly one of the two).
type Rule struct {
	Name string
	Doc  string
	// SkipTests excludes _test.go files (rules whose hazard is specific to
	// production code paths, or whose forbidden pattern is the very thing
	// tests must do to exercise it).
	SkipTests   bool
	Check       func(*Pass)
	ModuleCheck func(*ModulePass)
}

// Rules is the registry of analyzers, in reporting order: the six
// single-file syntax rules, then the four call-graph dataflow rules.
var Rules = []*Rule{
	ruleNoWallClock,
	ruleNoGlobalRand,
	ruleMapOrderHazard,
	ruleFlatViewMutation,
	ruleNakedGoroutine,
	ruleTensorBackend,
	ruleClockTaint,
	ruleRNGEscape,
	ruleCkptCoverage,
	rulePhaseContract,
}

// RuleNames returns the registered rule names in order.
func RuleNames() []string {
	names := make([]string, len(Rules))
	for i, r := range Rules {
		names[i] = r.Name
	}
	return names
}

func ruleByName(name string) *Rule {
	for _, r := range Rules {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// directive is one parsed //lint:allow comment. used records whether it
// suppressed at least one finding in the current run — the signal behind
// stale-directive detection.
type directive struct {
	rule   string
	reason string
	line   int
	pos    token.Pos
	used   bool
}

// fileDirectives scans a file's comments for //lint:allow directives.
// Malformed directives (unknown rule, missing reason) are reported
// through report.
func fileDirectives(fset *token.FileSet, file *ast.File, report func(pos token.Pos, msg string)) []*directive {
	var dirs []*directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			pos := c.Slash
			if len(fields) == 0 {
				report(pos, "malformed //lint:allow directive: missing rule name and reason")
				continue
			}
			rule, reason := fields[0], strings.Join(fields[1:], " ")
			if ruleByName(rule) == nil {
				report(pos, fmt.Sprintf("//lint:allow names unknown rule %q (known: %s)",
					rule, strings.Join(RuleNames(), ", ")))
				continue
			}
			if reason == "" {
				report(pos, fmt.Sprintf("//lint:allow %s needs a reason", rule))
				continue
			}
			dirs = append(dirs, &directive{rule: rule, reason: reason, line: fset.Position(pos).Line, pos: pos})
		}
	}
	return dirs
}

// statementAnchors maps each source line of the file to the starting line
// of the innermost statement, declaration spec, or struct field that spans
// it. A directive placed above a multi-line construct therefore covers the
// construct's full extent, not just its first line: findings anchored to
// any of its lines resolve back to the start line before directive lookup.
func statementAnchors(fset *token.FileSet, file *ast.File) map[int]int {
	anchor := make(map[int]int)
	mark := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end <= start {
			return // single-line constructs need no anchor
		}
		for l := start; l <= end; l++ {
			anchor[l] = start
		}
	}
	// ast.Inspect visits outer nodes before inner ones, so inner (narrower)
	// constructs overwrite their lines last and win.
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case ast.Stmt:
			// Statements that introduce nested blocks (if/for/switch bodies,
			// function literals) would anchor arbitrary amounts of code to
			// their opening line, letting one directive silence a whole
			// region; only leaf statements — the multi-line call, assign,
			// return shapes — are anchored.
			switch n.(type) {
			case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause, *ast.LabeledStmt:
				return true
			}
			if containsBlock(n) {
				return true
			}
			mark(n)
		case *ast.GenDecl, *ast.ValueSpec, *ast.TypeSpec, *ast.Field:
			mark(n)
		}
		return true
	})
	return anchor
}

// containsBlock reports whether a statement's subtree introduces a nested
// block (a composite statement or a function literal body).
func containsBlock(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.BlockStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// fileCtx is the per-file directive and suppression state shared by every
// rule in one Run.
type fileCtx struct {
	pkg      *Package
	file     *ast.File
	filename string
	isTest   bool
	dirs     []*directive
	anchor   map[int]int
}

// suppressed reports whether a finding of rule at line is covered by a
// directive: one on the same line, a stack of directive-bearing lines
// immediately above it, or the same applied to the first line of the
// enclosing multi-line statement. Matching directives are marked used.
func (fc *fileCtx) suppressed(rule string, line int) bool {
	lines := make(map[int]bool, len(fc.dirs))
	for _, d := range fc.dirs {
		lines[d.line] = true
	}
	match := func(l int) bool {
		hit := false
		for _, d := range fc.dirs {
			if d.line == l && d.rule == rule {
				d.used = true
				hit = true
			}
		}
		return hit
	}
	covers := func(l int) bool {
		if match(l) {
			return true
		}
		for a := l - 1; lines[a]; a-- {
			if match(a) {
				return true
			}
		}
		return false
	}
	if covers(line) {
		return true
	}
	if start, ok := fc.anchor[line]; ok && start != line {
		return covers(start)
	}
	return false
}

// runContext owns the findings and per-file state of one Run.
type runContext struct {
	files    map[*token.File]*fileCtx
	order    []*fileCtx
	findings []Finding
}

func newRunContext(pkgs []*Package) *runContext {
	rc := &runContext{files: make(map[*token.File]*fileCtx)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			tf := pkg.Fset.File(file.Pos())
			if tf == nil {
				continue
			}
			filename := filepath.ToSlash(tf.Name())
			fc := &fileCtx{
				pkg:      pkg,
				file:     file,
				filename: filename,
				isTest:   strings.HasSuffix(filename, "_test.go"),
				anchor:   statementAnchors(pkg.Fset, file),
			}
			// Directive problems are findings themselves and cannot be
			// suppressed (a broken directive must not silence anything).
			fc.dirs = fileDirectives(pkg.Fset, file, func(pos token.Pos, msg string) {
				rc.findings = append(rc.findings, Finding{
					Rule: "directive", Pos: pkg.Fset.Position(pos), Message: msg,
				})
			})
			rc.files[tf] = fc
			rc.order = append(rc.order, fc)
		}
	}
	return rc
}

// fileFor resolves a position to the fileCtx containing it. All packages
// of one Run share a single FileSet (the Loader owns it), so any package's
// Fset resolves any position.
func (rc *runContext) fileFor(pos token.Pos) *fileCtx {
	if len(rc.order) == 0 {
		return nil
	}
	tf := rc.order[0].pkg.Fset.File(pos)
	if tf == nil {
		return nil
	}
	return rc.files[tf]
}

// report records a finding for rule at pos unless suppressed or excluded
// by SkipTests.
func (rc *runContext) report(rule *Rule, pos token.Pos, msg string) {
	fc := rc.fileFor(pos)
	if fc == nil {
		return
	}
	if rule.SkipTests && fc.isTest {
		return
	}
	p := fc.pkg.Fset.Position(pos)
	if fc.suppressed(rule.Name, p.Line) {
		return
	}
	rc.findings = append(rc.findings, Finding{Rule: rule.Name, Pos: p, Message: msg})
}

// Options configures a Run beyond rule selection.
type Options struct {
	// Enabled selects rules by name; nil runs every rule.
	Enabled map[string]bool
	// UnusedDirectives adds an "unused-directive" finding for every
	// well-formed //lint:allow whose rule ran but which suppressed nothing
	// — the stale remnants of fixed violations.
	UnusedDirectives bool
}

// Run executes the enabled rules over pkgs and returns the unsuppressed
// findings sorted by position. enabled==nil runs every rule.
func Run(pkgs []*Package, enabled map[string]bool) []Finding {
	return RunOpts(pkgs, Options{Enabled: enabled})
}

// RunOpts is Run with full Options.
func RunOpts(pkgs []*Package, opts Options) []Finding {
	enabled := opts.Enabled
	rc := newRunContext(pkgs)

	for _, fc := range rc.order {
		for _, rule := range Rules {
			if rule.Check == nil {
				continue
			}
			if enabled != nil && !enabled[rule.Name] {
				continue
			}
			if rule.SkipTests && fc.isTest {
				continue
			}
			rule := rule
			pass := &Pass{Pkg: fc.pkg, File: fc.file, Filename: fc.filename}
			pass.report = func(pos token.Pos, msg string) { rc.report(rule, pos, msg) }
			rule.Check(pass)
		}
	}

	var moduleRules []*Rule
	for _, rule := range Rules {
		if rule.ModuleCheck == nil {
			continue
		}
		if enabled != nil && !enabled[rule.Name] {
			continue
		}
		moduleRules = append(moduleRules, rule)
	}
	if len(moduleRules) > 0 {
		graph := BuildGraph(pkgs)
		for _, rule := range moduleRules {
			rule.ModuleCheck(&ModulePass{Pkgs: pkgs, Graph: graph, rule: rule, rc: rc})
		}
	}

	if opts.UnusedDirectives {
		for _, fc := range rc.order {
			for _, d := range fc.dirs {
				if d.used || (enabled != nil && !enabled[d.rule]) {
					continue
				}
				rc.findings = append(rc.findings, Finding{
					Rule: "unused-directive",
					Pos:  fc.pkg.Fset.Position(d.pos),
					Message: fmt.Sprintf("//lint:allow %s suppresses nothing here; remove the stale directive (reason was: %s)",
						d.rule, d.reason),
				})
			}
		}
	}

	sort.Slice(rc.findings, func(i, j int) bool {
		a, b := rc.findings[i], rc.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return rc.findings
}
