package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// backendKernelMethods are the Matrix methods superseded by the
// tensor.Backend interface: the training hot path must reach them through
// a backend so a run's kernel choice is a single point of configuration
// (and the golden determinism tests bind to exactly one of them).
var backendKernelMethods = map[string]bool{
	"MatVec": true, "MatVecT": true, "AddOuterScaled": true,
}

// ruleTensorBackend enforces the backend seam introduced with the
// pluggable tensor backends: outside internal/tensor (where the backends
// themselves live), production code must not call the backend-routed
// kernels directly — Matrix.MatVec / Matrix.MatVecT / Matrix.AddOuterScaled
// or the free Softmax. Calling the same-named methods on a tensor.Backend
// value is the sanctioned route and is never flagged; a deliberately
// fixed-to-ref site uses tensor.Default() (also a Backend method call) or
// carries a //lint:allow annotation.
//
// The check mirrors the package's other type-aware heuristics: a flagged
// method call has a receiver whose named type is "Matrix" (pointer or
// value); a flagged Softmax call resolves to a package-level function, not
// a method, so Backend.Softmax stays clean.
var ruleTensorBackend = &Rule{
	Name: "tensor-backend",
	Doc: "flags direct calls to backend-routed kernels (Matrix.MatVec/MatVecT/AddOuterScaled, " +
		"free Softmax) outside internal/tensor; route them through a tensor.Backend",
	// Kernel unit tests and benchmarks exercise the raw loops on purpose.
	SkipTests: true,
	Check: func(pass *Pass) {
		// The backends implement the interface with these very calls.
		if strings.Contains(pass.Filename, "internal/tensor/") {
			return
		}
		ast.Inspect(pass.File, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if backendKernelMethods[name] && isMatrixReceiver(pass, fun.X) {
					pass.Report(call.Pos(),
						"Matrix.%s bypasses the tensor backend seam; call it through the model's tensor.Backend",
						name)
					return true
				}
				if name == "Softmax" && isPackageFunc(pass, fun.Sel) {
					pass.Report(call.Pos(),
						"free Softmax bypasses the tensor backend seam; call Backend.Softmax (tensor.Default() for a sanctioned fixed-ref site)")
				}
			case *ast.Ident:
				if fun.Name == "Softmax" && isPackageFunc(pass, fun) {
					pass.Report(call.Pos(),
						"free Softmax bypasses the tensor backend seam; call Backend.Softmax (tensor.Default() for a sanctioned fixed-ref site)")
				}
			}
			return true
		})
	},
}

// isMatrixReceiver reports whether e's type is the named type Matrix or a
// pointer to it.
func isMatrixReceiver(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Matrix"
}

// isPackageFunc reports whether id resolves to a package-level function
// (receiver-less), as opposed to a method such as Backend.Softmax.
func isPackageFunc(pass *Pass, id *ast.Ident) bool {
	fn, ok := pass.ObjectOf(id).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
