// Fixture: the sanctioned snapshot-encoder idioms — the collect-keys,
// sort, then append order used by every checkpoint serializer in this
// repository, which keeps snapshot bytes independent of map iteration
// order. Must produce zero findings.
package fixture

import "sort"

type versionRecord struct {
	Version int
	Params  []float64
}

// The fl engine's shape: version numbers are collected and sorted before
// any entry reaches the payload slice.
func encodeVersionsSorted(versions map[int][]float64) []versionRecord {
	nums := make([]int, 0, len(versions))
	for v := range versions {
		nums = append(nums, v)
	}
	sort.Ints(nums)
	out := make([]versionRecord, 0, len(nums))
	for _, v := range nums {
		out = append(out, versionRecord{Version: v, Params: versions[v]})
	}
	return out
}

type clientBlob struct {
	ClientID int
	State    []byte
}

// The per-client controller shape: blobs are emitted in ascending client
// ID, so two snapshots of identical state are byte-identical.
func encodeAgentsSorted(agents map[int][]byte) []clientBlob {
	ids := make([]int, 0, len(agents))
	for id := range agents {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	blobs := make([]clientBlob, 0, len(ids))
	for _, id := range ids {
		blobs = append(blobs, clientBlob{ClientID: id, State: agents[id]})
	}
	return blobs
}

// Per-key transcription into another map is order-independent: encoders
// may re-key hfDiff (int → string for JSON) freely because JSON object
// marshaling sorts keys itself.
func hfDiffRekey(hfDiff map[int]float64) map[string]float64 {
	out := make(map[string]float64, len(hfDiff))
	for id, v := range hfDiff {
		out[itoaKey(id)] = v
	}
	return out
}

func itoaKey(int) string { return "" }
