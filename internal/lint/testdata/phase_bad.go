// Fixture: phase-contract violations — a fan-out job literal handed to
// forEachSlot that writes the ledger directly and through a helper (the
// check is call-graph transitive), and one that releases a working-set
// entry. Ledger/Cache are defined locally: the contract matches by
// (receiver, method) name, which is what lets the fixture stay
// self-contained.
package fixture

type Ledger struct{ rows []int }

func (l *Ledger) Record(v int) { l.rows = append(l.rows, v) }
func (l *Ledger) Rows() []int  { return l.rows }

type Cache struct{ pins map[int]int }

func (c *Cache) Pin(id int)   { c.pins[id]++ }
func (c *Cache) Unpin(id int) { c.pins[id]-- }

func forEachSlot(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func runRound(led *Ledger, wc *Cache) {
	forEachSlot(4, func(i int) {
		led.Record(i) // want phase-contract (direct ledger write in a fan-out job)
		tally(led, i)
	})
	forEachSlot(2, func(i int) {
		wc.Pin(i) // want phase-contract (pin-state mutation in a fan-out job)
	})
}

func tally(led *Ledger, i int) {
	led.Record(i * 2) // want phase-contract (transitive, one hop from the job)
}
