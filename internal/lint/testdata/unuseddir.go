// Fixture: a well-formed //lint:allow that suppresses nothing — the
// violation it once sanctioned is gone (time.Millisecond is a constant,
// not a wall-clock read). Reported only under -unused-directives.
package fixture

import "time"

func tidy() time.Duration {
	//lint:allow no-wall-clock fixture: stale, the read below was removed long ago
	return 2 * time.Millisecond
}
