// Fixture: wall-clock reads reachable from a deterministic-core package.
// The importpath directive below makes the fixture pose as an engine
// package, so every declared function here is a clock-taint root. The
// direct reads carry no-wall-clock allows — clock-taint must flag them
// anyway: sanctioning a direct read is not the same as sanctioning its
// reachability from the core.
//
//lint:importpath fixture/internal/fl/clocktaint
package fixture

import "time"

func runRound() time.Duration {
	//lint:allow no-wall-clock fixture: direct-use sanctioned, reachability is not
	start := time.Now() // want clock-taint
	collect(func() {
		//lint:allow no-wall-clock fixture: direct-use sanctioned, reachability is not
		time.Sleep(time.Millisecond) // want clock-taint (via the closure node)
	})
	//lint:allow no-wall-clock fixture: direct-use sanctioned, reachability is not
	return time.Since(start) // want clock-taint
}

func collect(fn func()) {
	fn()
}
