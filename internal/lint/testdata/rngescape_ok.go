// Fixture: the sanctioned RNG-stream patterns — streams derived inside
// the worker from plain integer seeds (only values cross the boundary,
// never streams), single-threaded owner-held streams, and one explicitly
// allowlisted capture. Must produce zero findings.
package fixture

import (
	"math/rand"
	"sync"
)

func forEachSlotOK(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// fanOutDerived is the blessed engine shape: the closure receives only the
// seed material and constructs its own stream per job.
func fanOutDerived(seed int64) {
	forEachSlotOK(4, func(i int) {
		rng := rand.New(rand.NewSource(seed ^ int64(i)))
		_ = rng.Intn(10)
	})
}

// ownerHeld draws from a stream that never leaves the single-threaded
// owner's frame.
func ownerHeld(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(100)
}

func sanctionedCapture(rng *rand.Rand, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		//lint:allow rng-escape fixture: single worker, owner provably quiescent while it runs
		_ = rng.Int63()
	}()
	wg.Wait()
}
