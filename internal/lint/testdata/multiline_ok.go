// Fixture: a //lint:allow directive above a multi-line statement must
// cover the statement's full extent — the violations on the continuation
// lines are anchored back to the statement's first line. Must produce
// zero findings.
package fixture

import (
	"fmt"
	"time"
)

func report(t0 time.Time) string {
	//lint:allow no-wall-clock fixture: one sanctioned read spanning a wrapped call
	return fmt.Sprintf("now=%v elapsed=%v",
		time.Now(),
		time.Since(t0))
}
