// Fixture: the sanctioned patterns for time handling — an injected clock
// interface (mirroring internal/dist/clock.go) and an explicitly
// allowlisted direct read. Must produce zero findings.
package fixture

import "time"

// clock mirrors the injectable Clock of internal/dist: callers receive
// time through it instead of reading the wall clock.
type clock interface {
	Now() time.Time
}

func stampInjected(c clock) time.Time {
	return c.Now() // method on the injected clock, not package time
}

func allowedStamp() time.Time {
	//lint:allow no-wall-clock fixture demonstrating a sanctioned direct read
	return time.Now()
}
