// Fixture: the sanctioned fan-out shapes — jobs that only touch job-local
// state, dispatch/collect phases using the ledger outside the fan-out, and
// one explicitly allowlisted in-job write. Must produce zero findings.
package fixture

type Ledger struct{ rows []int }

func (l *Ledger) Record(v int) { l.rows = append(l.rows, v) }

func forEachSlotOK(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func runRoundOK(led *Ledger) {
	results := make([]int, 4)
	forEachSlotOK(4, func(i int) {
		results[i] = i * i // job-local slot write: the sanctioned pattern
	})
	for _, r := range results {
		led.Record(r) // collect phase: single-threaded ledger writes
	}
}

func sanctionedInJob(led *Ledger) {
	forEachSlotOK(1, func(i int) {
		//lint:allow phase-contract fixture: single-slot fan-out, no concurrent writer exists
		led.Record(i)
	})
}
