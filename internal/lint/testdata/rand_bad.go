// Fixture: package-level math/rand draws from the shared global source;
// the no-global-rand rule must flag every one.
package fixture

import "math/rand"

func draw() (int, float64) {
	n := rand.Intn(10)  // want no-global-rand
	f := rand.Float64() // want no-global-rand
	return n, f
}

func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want no-global-rand
		xs[i], xs[j] = xs[j], xs[i]
	})
}
