// Fixture: the sanctioned randomness patterns — seeded generators built
// through the constructors, methods on *rand.Rand, and one allowlisted
// global draw. Must produce zero findings.
package fixture

import "math/rand"

func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are the sanctioned path
	return r.Intn(10)                   // method on a seeded *rand.Rand
}

func allowedDraw() int {
	//lint:allow no-global-rand fixture demonstrating an annotated exception
	return rand.Intn(10)
}
