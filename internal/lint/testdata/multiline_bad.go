// Fixture: the limits of statement-extent suppression. A directive above
// a block statement must NOT silence violations inside the block — only
// leaf statements get extent anchors, so a single directive can never
// sanction a whole region.
package fixture

import "time"

func blanket() time.Duration {
	//lint:allow no-wall-clock fixture: directives must not cover whole blocks
	if true {
		start := time.Now()      // want no-wall-clock (block body, not covered)
		return time.Since(start) // want no-wall-clock (block body, not covered)
	}
	return 0
}
