// Fixture: go func literals with no join or cancellation signal — the
// naked-goroutine rule must flag each one.
package fixture

func leak() {
	go func() { // want naked-goroutine
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}

func leakWithArgs(xs []int) {
	go func(n int) { // want naked-goroutine (plain args are no join signal)
		_ = n * 2
	}(len(xs))
}
