// Fixture: map iterations whose bodies feed order-sensitive state — the
// map-order-hazard rule must flag each one.
package fixture

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want map-order-hazard (float compound-assign)
	}
	return sum
}

func floatSelfAssign(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want map-order-hazard (x = x + y form)
	}
	return total
}

func escapingAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want map-order-hazard (no sort afterwards)
	}
	return keys
}

type resultTable struct {
	rows [][]string
}

func fieldAppend(m map[string]int, t *resultTable) {
	for k := range m {
		t.rows = append(t.rows, []string{k}) // want map-order-hazard (field target)
	}
}

func channelSend(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v // want map-order-hazard (delivery order escapes)
	}
}

// The metrics-exposition shape: formatting counter lines straight out of
// a map range writes them in nondeterministic order — exactly the bug a
// collect-then-sort snapshot exists to prevent.
func unsortedExposition(counters map[string]int64) []string {
	var lines []string
	for name, v := range counters {
		lines = append(lines, name+" "+itoa(v)) // want map-order-hazard (exposition without sort)
	}
	return lines
}

func itoa(int64) string { return "" }
