// Fixture: the sanctioned timing patterns for the deterministic core. An
// injected clock interface breaks the static call chain (interface
// dispatch resolves to no callee), and an explicit clock-taint allow
// (stacked with the no-wall-clock allow) sanctions one reachable read.
// Must produce zero findings.
//
//lint:importpath fixture/internal/fl/clocktaintok
package fixture

import "time"

// clock mirrors the injectable Clock of internal/dist.
type clock interface {
	Now() time.Time
}

func roundStamp(c clock) time.Time {
	return stampVia(c) // taint stops at the interface call inside
}

func stampVia(c clock) time.Time {
	return c.Now() // interface dispatch: no static callee, no taint
}

func sanctionedFallback() time.Time {
	//lint:allow no-wall-clock fixture: sanctioned fallback read
	//lint:allow clock-taint fixture: reachable read explicitly accepted with a reason
	return time.Now()
}
