// Fixture: every aliasing hazard the flat-view-mutation rule must flag.
// The local Model/Vec types stand in for nn.Model and tensor.Vector — the
// rule keys on the Parameters/Gradients method shape and the float64-slice
// type, not on package identity, so the fixture stays standalone.
package fixture

type Vec []float64

func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

func (v Vec) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

type Model struct {
	p Vec
	g Vec
}

func (m *Model) Parameters() Vec { return m.p }
func (m *Model) Gradients() Vec  { return m.g }

func AddWeighted(dst Vec, w []float64, parts []Vec) {
	for i := range parts {
		for j := range dst {
			dst[j] += w[i] * parts[i][j]
		}
	}
}

type snapshot struct {
	params Vec
}

func misuse(m *Model, s *snapshot) {
	s.params = m.Parameters() // want flat-view-mutation (field store)

	cache := map[int]Vec{}
	cache[0] = m.Parameters() // want flat-view-mutation (container store)

	_ = []Vec{m.Gradients()} // want flat-view-mutation (composite literal)

	p := m.Parameters()
	p.Scale(0.5) // want flat-view-mutation (in-place kernel on a view)

	AddWeighted(m.Parameters(), nil, nil) // want flat-view-mutation (dst position)

	src := make(Vec, len(p))
	copy(p, src) // want flat-view-mutation (copy into a view)
}
