// Fixture: the order-insensitive and sanctioned map-iteration patterns —
// integer accumulation, per-key writes, collect-then-sort, and an
// allowlisted float sum. Must produce zero findings.
package fixture

import "sort"

func intAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integers are exact and associative: order-independent
	}
	return n
}

func perKeyWrite(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2 // each key touches its own cell
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys) // the sort makes the append order irrelevant
	return keys
}

type sortedTable struct {
	rows [][]string
}

func fieldCollectThenSort(m map[string]int, t *sortedTable) {
	for k := range m {
		t.rows = append(t.rows, []string{k})
	}
	sort.Slice(t.rows, func(i, j int) bool { return t.rows[i][0] < t.rows[j][0] })
}

func allowedAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//lint:allow map-order-hazard fixture: order error is below test tolerance here
		sum += v
	}
	return sum
}

// The sanctioned metrics-exposition shape (obs.Registry.Snapshot):
// collect every counter line out of the map, then sort before anything
// escapes — map order never reaches the output.
func sortedExposition(counters map[string]int64) []string {
	var lines []string
	for name := range counters {
		lines = append(lines, name)
	}
	sort.Strings(lines)
	return lines
}

// An allowlisted exposition: the order is intentionally unstable (a debug
// dump whose consumer sorts), recorded as an explicit, reasoned
// exception instead of silent nondeterminism.
func allowedExposition(counters map[string]int64) []string {
	var lines []string
	for name := range counters {
		//lint:allow map-order-hazard fixture: debug dump; the consumer sorts
		lines = append(lines, name)
	}
	return lines
}
