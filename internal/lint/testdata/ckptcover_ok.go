// Fixture: the sanctioned checkpoint-coverage shapes — full coverage
// through helper methods (the rule is call-graph transitive, so reading a
// field in a helper called by CheckpointState counts), a constructor-only
// field (not mutable state), and one explicitly allowlisted derived-cache
// omission. Must produce zero findings.
package fixture

import "encoding/binary"

type gauge struct {
	total uint64
	limit uint64 // set only by newGauge: configuration, not mutable state
	//lint:allow ckpt-coverage fixture: derived cache, rebuilt lazily from total on first read
	cached uint64
}

func newGauge(limit uint64) *gauge {
	return &gauge{limit: limit}
}

func (g *gauge) Add(v uint64) {
	g.total += v
	g.cached = g.total / 2
}

func (g *gauge) CheckpointState() ([]byte, error) {
	return g.snapshot(), nil
}

func (g *gauge) snapshot() []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, g.total)
	return buf
}

func (g *gauge) RestoreCheckpoint(b []byte) error {
	g.apply(binary.LittleEndian.Uint64(b))
	return nil
}

func (g *gauge) apply(total uint64) {
	g.total = total
	g.cached = 0
}
