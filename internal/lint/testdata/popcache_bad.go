// Fixture: the population-cache shapes of the lazy client-state layer —
// per-client drain logs, sparse per-shard counters, and working-set
// residency maps. Ranging over any of these maps while feeding
// order-sensitive state (float sums, appended snapshots, exposition
// lines) reintroduces exactly the nondeterminism the sharded sorted
// structures exist to prevent; the map-order-hazard rule must flag each.
package fixture

type drainEvent struct {
	Step int
	Frac float64
}

// Flushing persisted drain logs straight out of the map range would
// replay battery history in a different order every run.
func flushDrainLogs(logs map[int][]drainEvent) []drainEvent {
	var all []drainEvent
	for _, log := range logs {
		all = append(all, log...) // want map-order-hazard (drain replay order escapes)
	}
	return all
}

// A fairness aggregate (Jain denominator) summed over a sparse counter
// shard in map order: float accumulation order changes the bits.
func shardFairness(shard map[int]int) float64 {
	var sumSq float64
	for _, c := range shard {
		sumSq += float64(c) * float64(c) // want map-order-hazard (float accumulation)
	}
	return sumSq
}

// Snapshotting a cache's resident client IDs without sorting leaks map
// order into whatever consumes the snapshot (eviction tests, expositions).
func residentClients(entries map[int]*drainEvent) []int {
	var ids []int
	for id := range entries {
		ids = append(ids, id) // want map-order-hazard (unsorted residency snapshot)
	}
	return ids
}

// Formatting per-kind cache counters directly from the map range writes
// exposition lines in nondeterministic order — the byte-reproducible
// telemetry contract forbids exactly this.
func cacheCounterLines(byKind map[string]int64) []string {
	var lines []string
	for kind, v := range byKind {
		lines = append(lines, kind+" "+formatInt(v)) // want map-order-hazard (exposition without sort)
	}
	return lines
}

func formatInt(int64) string { return "" }
