// Fixture: the seeded fault for ckpt-coverage — a checkpoint.Stateful
// implementer with a field that is mutated mid-run but deliberately
// omitted from both the snapshot encoder and the restore path. This is
// the "added a field, forgot the snapshot" bug shape the rule exists to
// catch before a resumed run diverges.
package fixture

import "encoding/binary"

type counter struct {
	steps   uint64
	dropped uint64 // want ckpt-coverage x2 (missing from encode and restore)
}

func (c *counter) Tick(ok bool) {
	c.steps++
	if !ok {
		c.dropped++
	}
}

func (c *counter) CheckpointState() ([]byte, error) {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, c.steps)
	return buf, nil
}

func (c *counter) RestoreCheckpoint(b []byte) error {
	c.steps = binary.LittleEndian.Uint64(b)
	return nil
}
