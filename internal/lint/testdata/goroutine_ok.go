// Fixture: the sanctioned goroutine patterns — WaitGroup join, channel
// join, context cancellation, and one allowlisted process-lifetime
// goroutine. Must produce zero findings.
package fixture

import (
	"context"
	"sync"
)

func waitGroupJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func channelJoin() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

func contextCancel(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func allowedLifetime() {
	//lint:allow naked-goroutine fixture: process-lifetime helper, reaped at exit
	go func() {
		_ = 1
	}()
}
