// Fixture: malformed //lint:allow directives are findings themselves
// (rule name "directive") and never suppress anything.
package fixture

import "time"

//lint:allow

//lint:allow bogus-rule some reason

//lint:allow no-wall-clock

func brokenDirectives() time.Time {
	//lint:allow not-a-rule broken directives must not silence findings
	return time.Now() // still reported: the directive above names an unknown rule
}
