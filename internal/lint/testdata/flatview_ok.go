// Fixture: the sanctioned flat-buffer patterns — Clone() before storing or
// mutating, read-only use of a view, and an allowlisted in-place
// aggregation site. Must produce zero findings.
package fixture

type OkVec []float64

func (v OkVec) Clone() OkVec {
	out := make(OkVec, len(v))
	copy(out, v)
	return out
}

func (v OkVec) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

type OkModel struct {
	p OkVec
}

func (m *OkModel) Parameters() OkVec { return m.p }

func okAddWeighted(dst OkVec, w []float64, parts []OkVec) {
	for i := range parts {
		for j := range dst {
			dst[j] += w[i] * parts[i][j]
		}
	}
}

type okSnapshot struct {
	params OkVec
}

func properUse(m *OkModel, s *okSnapshot) float64 {
	s.params = m.Parameters().Clone() // fresh storage: clean

	c := m.Parameters().Clone()
	c.Scale(0.5) // mutating the clone, not the model: clean

	var sum float64
	for _, x := range m.Parameters() {
		sum += x // reading through the view: clean
	}

	//lint:allow flat-view-mutation fixture: this aggregator owns the model it updates in place
	okAddWeighted(m.Parameters(), nil, nil)
	return sum
}
