// Fixture: the run-timeline sampler idiom — delta encoding via per-key
// map writes (order-independent), ring eviction folding values forward,
// sorted-series export, the sample clock flowing in as plain data (never
// read from package time), and every mutable field carried by
// CheckpointState/RestoreCheckpoint. Must produce zero findings under
// map-order-hazard, clock-taint, and ckpt-coverage.
//
//lint:importpath fixture/internal/fl/timelineok
package fixture

import (
	"encoding/json"
	"sort"
)

// sampler is a miniature run timeline: a bounded ring of delta-encoded
// samples over a flat series namespace.
type sampler struct {
	capacity int // set only by newSampler: configuration, not mutable state
	last     map[string]float64
	samples  []map[string]float64
	dropped  int
}

func newSampler(capacity int) *sampler {
	return &sampler{capacity: capacity, last: map[string]float64{}}
}

// sample delta-encodes cur against the carried view and bounds the ring.
// Per-key map writes touch independent cells, so ranging the snapshot map
// is order-free; the eviction fold writes per-key too.
func (s *sampler) sample(clock float64, cur map[string]float64) {
	changed := map[string]float64{"clock": clock} // clock arrives as data, not from package time
	for name, v := range cur {
		if prev, ok := s.last[name]; !ok || prev != v {
			changed[name] = v
			s.last[name] = v
		}
	}
	s.samples = append(s.samples, changed)
	for len(s.samples) > s.capacity {
		for name, v := range s.samples[0] {
			if _, ok := s.samples[1][name]; !ok {
				s.samples[1][name] = v
			}
		}
		s.samples = s.samples[1:]
		s.dropped++
	}
}

// seriesNames renders the namespace in sorted order: collect-then-sort
// makes the map iteration order irrelevant to the export bytes.
func (s *sampler) seriesNames() []string {
	var names []string
	for name := range s.last {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// samplerState is the checkpoint payload: the complete ring plus the
// carry-forward view, so a restored sampler delta-encodes its next sample
// against exactly the snapshotted state.
type samplerState struct {
	Last    map[string]float64   `json:"last"`
	Samples []map[string]float64 `json:"samples"`
	Dropped int                  `json:"dropped"`
}

func (s *sampler) CheckpointState() ([]byte, error) {
	return json.Marshal(samplerState{Last: s.last, Samples: s.samples, Dropped: s.dropped})
}

func (s *sampler) RestoreCheckpoint(b []byte) error {
	var st samplerState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	s.last = st.Last
	s.samples = st.Samples
	s.dropped = st.Dropped
	return nil
}
