// Fixture: the sanctioned counterparts of popcache_bad.go — the
// collect-then-sort discipline the lazy population layer actually uses
// for drain logs, sparse counters, and cache snapshots. All must lint
// clean.
package fixture

import "sort"

type drainRecord struct {
	Step int
	Frac float64
}

// Collect the client IDs first, sort them, then replay logs in a fixed
// order — the device provider's eviction-replay pattern.
func flushDrainLogsSorted(logs map[int][]drainRecord) []drainRecord {
	ids := make([]int, 0, len(logs))
	for id := range logs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var all []drainRecord
	for _, id := range ids {
		all = append(all, logs[id]...)
	}
	return all
}

// The sparse ledger's shape: per-shard counts are materialized through a
// sorted-key pass, so the float accumulation downstream sees a fixed
// order.
func shardCountsSorted(shard map[int]int) float64 {
	ids := make([]int, 0, len(shard))
	for id := range shard {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sumSq float64
	for _, id := range ids {
		c := float64(shard[id])
		sumSq += c * c
	}
	return sumSq
}

// Counting residents is order-insensitive: int increments commute, so a
// bare range stays legal and the rule must not fire.
func residentCount(entries map[int]*drainRecord) int {
	n := 0
	for range entries {
		n++
	}
	return n
}
