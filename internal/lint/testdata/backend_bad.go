// Fixture: direct calls to backend-routed kernels — Matrix methods and the
// free Softmax — outside internal/tensor. Every call below must be flagged
// by tensor-backend.
package fixture

type Matrix struct {
	Rows, Cols int
	Data       []float64
}

func (m *Matrix) MatVec(dst, x []float64)                  {}
func (m *Matrix) MatVecT(dst, x []float64)                 {}
func (m *Matrix) AddOuterScaled(a float64, u, v []float64) {}

func Softmax(dst, src []float64) {}

func badForward(m *Matrix, dst, x []float64) {
	m.MatVec(dst, x)
	m.MatVecT(dst, x)
	m.AddOuterScaled(1, x, x)
	Softmax(dst, x)
}

func badValueReceiver(m Matrix, dst, x []float64) {
	// Value receivers bypass the seam just as well as pointers.
	(&m).MatVec(dst, x)
}
