// Fixture: the snapshot-encoder shapes of the checkpoint layer — flat
// params keyed per version, per-client controller blobs, and sparse
// hfDiff maps, all serialized into one JSON payload whose bytes must be
// identical run over run. Ranging over any of these maps while appending
// to the payload (or accumulating a float digest) bakes map iteration
// order into the snapshot, so two checkpoints of identical state stop
// comparing equal; the map-order-hazard rule must flag each shape.
package fixture

type versionEntry struct {
	Version int
	Params  []float64
}

// Serializing the async engine's live version table straight out of the
// map range writes entries in a different order every snapshot.
func encodeVersions(versions map[int][]float64) []versionEntry {
	var out []versionEntry
	for v, p := range versions {
		out = append(out, versionEntry{Version: v, Params: p}) // want map-order-hazard (snapshot entry order escapes)
	}
	return out
}

type agentBlob struct {
	ClientID int
	State    []byte
}

// Per-client controller state appended in map order: the restored agents
// are fine, but the snapshot bytes (and any checksum over them) differ
// between two captures of the same run.
func encodePerClientAgents(agents map[int][]byte) []agentBlob {
	var blobs []agentBlob
	for id, st := range agents {
		blobs = append(blobs, agentBlob{ClientID: id, State: st}) // want map-order-hazard (blob order nondeterministic)
	}
	return blobs
}

// A float digest over the sparse deadline-diff map: accumulation order
// changes the low bits, so the "same" state hashes differently.
func hfDiffDigest(hfDiff map[int]float64) float64 {
	var digest float64
	for id, v := range hfDiff {
		digest += float64(id) * v // want map-order-hazard (float accumulation)
	}
	return digest
}
