// Fixture: the three RNG-stream escape shapes rng-escape must flag — a
// package-level stream (shared, unownable), capture by go closures and
// goroutine arguments (schedule-dependent draw order), and capture by a
// forEachSlot fan-out literal (stream crossing the job boundary).
// Constructors are exempt from no-global-rand, so without this rule the
// package-level var would slip through entirely.
package fixture

import (
	"math/rand"
	"sync"
)

var sharedRNG = rand.New(rand.NewSource(1)) // want rng-escape

func spawnCapture(rng *rand.Rand, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = rng.Int63() // want rng-escape (captured by a go closure)
	}()
	wg.Wait()
}

func spawnArg(rng *rand.Rand, wg *sync.WaitGroup) {
	wg.Add(1)
	go worker(rng, wg) // want rng-escape (stream passed to a goroutine)
	wg.Wait()
}

func worker(rng *rand.Rand, wg *sync.WaitGroup) {
	defer wg.Done()
	_ = rng.Uint64()
}

func forEachSlot(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func fanOut(rng *rand.Rand) {
	forEachSlot(4, func(i int) {
		_ = rng.Intn(i + 1) // want rng-escape (crosses the fan-out boundary)
	})
}
