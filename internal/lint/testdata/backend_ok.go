// Fixture: the sanctioned routes through the tensor backend seam — kernel
// calls as Backend methods, same-named methods on non-Matrix types, and
// //lint:allow-annotated direct calls. Must produce zero findings.
// (Fixtures are type-checked one file at a time, so the Matrix/Softmax
// names here never collide with backend_bad.go.)
package fixture

type Matrix struct {
	Rows, Cols int
	Data       []float64
}

func (m *Matrix) MatVec(dst, x []float64) {}

func Softmax(dst, src []float64) {}

type notAMatrix struct{}

func (notAMatrix) MatVec(dst, x []float64) {}

// OkBackend mirrors tensor.Backend: the kernel names exist as methods, and
// calling them through the interface is the sanctioned route.
type OkBackend interface {
	MatVec(m *Matrix, dst, x []float64)
	MatVecT(m *Matrix, dst, x []float64)
	AddOuterScaled(m *Matrix, alpha float64, a, b []float64)
	Softmax(dst, src []float64)
}

func okForward(be OkBackend, m *Matrix, dst, x []float64) {
	be.MatVec(m, dst, x)          // Backend method: clean
	be.MatVecT(m, dst, x)         // Backend method: clean
	be.AddOuterScaled(m, 1, x, x) // Backend method: clean
	be.Softmax(dst, x)            // Backend.Softmax, not the free kernel: clean
	notAMatrix{}.MatVec(dst, x)   // same name, different receiver type: clean
}

// okDirect is a deliberately fixed-to-ref site carrying the annotation.
func okDirect(m *Matrix, dst, x []float64) {
	//lint:allow tensor-backend fixture: kernel microbenchmark pinned to the raw loops
	m.MatVec(dst, x)
	//lint:allow tensor-backend fixture: evaluation path pinned to the ref softmax
	Softmax(dst, x)
}
