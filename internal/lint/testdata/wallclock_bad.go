// Fixture: every direct package-time entry point the no-wall-clock rule
// must flag. Constants like time.Millisecond are not wall-clock reads and
// must stay clean.
package fixture

import "time"

func stamps() (time.Time, time.Duration) {
	start := time.Now()          // want no-wall-clock
	time.Sleep(time.Millisecond) // want no-wall-clock
	elapsed := time.Since(start) // want no-wall-clock
	return start, elapsed
}

func timers() {
	t := time.NewTimer(time.Second) // want no-wall-clock
	defer t.Stop()
	<-time.After(time.Second) // want no-wall-clock
}
