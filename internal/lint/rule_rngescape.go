package lint

import (
	"go/ast"
	"go/types"
)

// ruleRNGEscape guards the counted-RNG-stream discipline that makes
// checkpoint replay exact: every stream is single-threaded, owned by one
// component, and its draw count is its serializable position. Three escape
// shapes break that accounting:
//
//   - a stream stored in a package-level var (shared across components, no
//     owner to checkpoint it — and no-global-rand's constructor exemption
//     would otherwise let `var rng = rand.New(...)` through);
//   - a stream captured by (or passed to) a `go` closure, where draw order
//     becomes schedule-dependent;
//   - a stream crossing the engines' fan-out boundary — captured by a
//     function literal handed to forEachSlot, whose slots run on worker
//     goroutines. Per-client RNGs must instead be derived inside the
//     worker from (seed, round, clientID), and per-worker scratch RNGs
//     live in the context pool, reseeded per job.
var ruleRNGEscape = &Rule{
	Name: "rng-escape",
	Doc: "forbids *rand.Rand/rngstate.Source streams escaping their owner: package-level vars, " +
		"capture by go closures, or capture by forEachSlot fan-out literals",
	SkipTests: true,
	Check: func(pass *Pass) {
		// Package-level vars holding a stream.
		for _, decl := range pass.File.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := pass.ObjectOf(name)
					if obj == nil || !isRNGType(obj.Type()) {
						continue
					}
					pass.Report(name.Pos(),
						"package-level var %s holds an RNG stream; streams must be owned by one component so their draw positions can be checkpointed",
						name.Name)
				}
			}
		}

		ast.Inspect(pass.File, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				reportRNGCaptures(pass, n, n.Call,
					"RNG stream %s escapes into a goroutine; draw order becomes schedule-dependent and the stream position can no longer be checkpointed")
			case *ast.CallExpr:
				if staticCalleeName(pass.Pkg, n) != "forEachSlot" {
					return true
				}
				for _, arg := range n.Args {
					lit, ok := arg.(*ast.FuncLit)
					if !ok {
						continue
					}
					reportFreeRNGVars(pass, lit,
						"RNG stream %s crosses the fan-out job boundary (captured by a forEachSlot literal); derive per-client RNGs inside the worker from (seed, round, clientID) instead")
				}
			}
			return true
		})
	},
}

// reportRNGCaptures flags RNG-typed values anywhere in a go statement's
// subtree whose declaration lies outside the spawned call — captured free
// variables and passed arguments alike.
func reportRNGCaptures(pass *Pass, span ast.Node, call *ast.CallExpr, format string) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		reportFreeRNGVars(pass, lit, format)
	}
	// Arguments to the spawned call (go worker(rng), go func(r *rand.Rand){}(rng)).
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := pass.ObjectOf(id).(*types.Var); ok && isRNGType(v.Type()) {
				pass.Report(id.Pos(), format, id.Name)
			}
			return true
		})
	}
}

// reportFreeRNGVars flags identifiers inside lit that denote RNG-typed
// variables declared outside the literal (captured free variables).
func reportFreeRNGVars(pass *Pass, lit *ast.FuncLit, format string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.ObjectOf(id).(*types.Var)
		if !ok || !isRNGType(v.Type()) {
			return true
		}
		// Struct fields have no lexical scope relative to the literal;
		// flag them only via their base identifier (covered separately).
		if v.IsField() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			pass.Report(id.Pos(), format, id.Name)
		}
		return true
	})
}

// isRNGType reports whether t is (a pointer to) one of the RNG stream
// types: math/rand's Rand/Source/Source64 or internal/rngstate's counting
// Source.
func isRNGType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch path := obj.Pkg().Path(); {
	case path == "math/rand" || path == "math/rand/v2":
		switch obj.Name() {
		case "Rand", "Source", "Source64", "PCG", "ChaCha8":
			return true
		}
	case pkgInScope(path, []string{"internal/rngstate"}):
		return obj.Name() == "Source"
	}
	return false
}
