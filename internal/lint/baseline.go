package lint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// A Baseline is a committed ledger of accepted findings: ratcheting
// infrastructure for introducing a new rule to a codebase with existing
// violations. Each entry keys a finding by (rule, module-relative file,
// message) — deliberately not by line, so unrelated edits that shift a
// finding within its file do not break the build — with a count, so a
// file accumulating a second identical violation still fails.
//
// The module's own baseline (lint_baseline.json) is empty and stays
// empty: the sweep fixed or explicitly allowlisted everything. The
// mechanism exists for downstream forks and for staging future rules.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry is one accepted finding shape with its occurrence count.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

const baselineVersion = 1

func baselineKey(rule, file, message string) string {
	return rule + "\x00" + file + "\x00" + message
}

// NewBaseline builds a baseline from findings, with file paths made
// relative to root.
func NewBaseline(findings []Finding, root string) *Baseline {
	counts := map[string]*BaselineEntry{}
	var order []string
	for _, f := range findings {
		file := RelPath(f.Pos.Filename, root)
		key := baselineKey(f.Rule, file, f.Message)
		if e, ok := counts[key]; ok {
			e.Count++
			continue
		}
		counts[key] = &BaselineEntry{Rule: f.Rule, File: file, Message: f.Message, Count: 1}
		order = append(order, key)
	}
	sort.Strings(order)
	b := &Baseline{Version: baselineVersion, Entries: []BaselineEntry{}}
	for _, key := range order {
		b.Entries = append(b.Entries, *counts[key])
	}
	return b
}

// ParseBaseline decodes a baseline document.
func ParseBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline: unsupported version %d (want %d)", b.Version, baselineVersion)
	}
	for i, e := range b.Entries {
		if e.Rule == "" || e.File == "" || e.Count < 1 {
			return nil, fmt.Errorf("baseline: entry %d malformed (rule, file, and count >= 1 required)", i)
		}
	}
	return &b, nil
}

// Encode renders the baseline as committed-file JSON (indented, trailing
// newline).
func (b *Baseline) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Filter splits findings into novel ones (not covered by the baseline)
// and reports how many baseline entries went unused — entries whose
// accepted findings no longer occur, which should be ratcheted out of the
// committed file. Counts matter: a baseline entry with count 1 absorbs
// only the first matching finding.
func (b *Baseline) Filter(findings []Finding, root string) (novel []Finding, stale []BaselineEntry) {
	remaining := map[string]int{}
	for _, e := range b.Entries {
		remaining[baselineKey(e.Rule, e.File, e.Message)] += e.Count
	}
	novel = []Finding{}
	for _, f := range findings {
		key := baselineKey(f.Rule, RelPath(f.Pos.Filename, root), f.Message)
		if remaining[key] > 0 {
			remaining[key]--
			continue
		}
		novel = append(novel, f)
	}
	for _, e := range b.Entries {
		key := baselineKey(e.Rule, e.File, e.Message)
		if remaining[key] > 0 {
			leftover := e
			leftover.Count = remaining[key]
			stale = append(stale, leftover)
			remaining[key] = 0
		}
	}
	return novel, stale
}
