package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ruleMapOrderHazard flags `for range` over a map whose body feeds
// order-sensitive state — the classic silent killer of bit-identical
// aggregation, since Go randomizes map iteration order per run.
//
// Hazards recognized inside the loop body:
//
//   - floating-point accumulation into a variable declared outside the
//     loop (float addition is not associative, so the sum depends on
//     visit order);
//   - append to a slice declared outside the loop (the element order
//     escapes), unless the very same slice is passed to a sort.* /
//     slices.* call later in the enclosing block — the collect-then-sort
//     idiom is deterministic;
//   - a channel send (delivery order escapes to another goroutine).
//
// Deliberately not flagged: integer accumulation (associative and exact),
// and writes indexed per key (m2[k] = v, acc[i] += x) — each key touches
// its own cell, so visit order cannot change the result.
var ruleMapOrderHazard = &Rule{
	Name: "map-order-hazard",
	Doc: "flags map iteration feeding order-sensitive state (float accumulation, " +
		"escaping append, channel send) unless the result is sorted",
	SkipTests: false,
	Check: func(pass *Pass) {
		ast.Inspect(pass.File, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rs)
			return true
		})
	},
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt) {
	mapName := types.ExprString(rs.X)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.SendStmt:
			pass.Report(stmt.Pos(),
				"send inside range over map %s publishes values in nondeterministic order; iterate sorted keys",
				mapName)
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, stmt, mapName)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, mapName string) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		if isFloatExpr(pass, lhs) && declaredOutside(pass, lhs, rs) {
			pass.Report(as.Pos(),
				"floating-point accumulation inside range over map %s depends on iteration order; iterate sorted keys",
				mapName)
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			// x = x <op> y float self-accumulation.
			if bin, ok := rhs.(*ast.BinaryExpr); ok && isFloatExpr(pass, as.Lhs[i]) &&
				declaredOutside(pass, as.Lhs[i], rs) && mentionsObject(pass, bin, as.Lhs[i]) {
				pass.Report(as.Pos(),
					"floating-point accumulation inside range over map %s depends on iteration order; iterate sorted keys",
					mapName)
				continue
			}
			// s = append(s, ...) where s escapes the loop unsorted. The
			// target may be a local (names = append(names, k)) or a field
			// (tab.Rows = append(tab.Rows, row)).
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				continue
			}
			if _, isBuiltin := pass.ObjectOf(fn).(*types.Builtin); !isBuiltin {
				continue
			}
			obj := appendTargetObj(pass, as.Lhs[i])
			if obj == nil || !objOutside(obj, rs) {
				continue
			}
			if sortedAfter(pass, rs, obj) {
				continue
			}
			pass.Report(as.Pos(),
				"append inside range over map %s records elements in nondeterministic order; sort the result or iterate sorted keys",
				mapName)
		}
	}
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredOutside reports whether the assignable expression e refers to
// state that outlives one loop iteration: an identifier declared outside
// the range statement, or any selector (struct field) — fields belong to
// values that exist before the loop. Index expressions are treated as
// per-key cells and excluded by the callers.
func declaredOutside(pass *Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	switch v := e.(type) {
	case *ast.Ident:
		obj := pass.ObjectOf(v)
		return obj != nil && objOutside(obj, rs)
	case *ast.SelectorExpr:
		return true
	}
	return false
}

func objOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// appendTargetObj resolves the object an append target denotes: the
// variable for an identifier, the field for a selector. Struct fields are
// matched by their field object, which also lets sortedAfter recognize
// sort.Slice(x.Rows, ...) against x.Rows = append(x.Rows, ...).
func appendTargetObj(pass *Pass, lhs ast.Expr) types.Object {
	switch t := lhs.(type) {
	case *ast.Ident:
		return pass.ObjectOf(t)
	case *ast.SelectorExpr:
		return pass.ObjectOf(t.Sel)
	}
	return nil
}

// mentionsObject reports whether expr references the same object as ref
// (an identifier), i.e. the assignment reads its own target.
func mentionsObject(pass *Pass, expr ast.Expr, ref ast.Expr) bool {
	id, ok := ref.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if other, ok := n.(*ast.Ident); ok && pass.ObjectOf(other) == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter recognizes the collect-then-sort idiom: somewhere after the
// range statement in its enclosing block, obj is passed to a function of
// package sort or slices. That makes the append order irrelevant.
func sortedAfter(pass *Pass, rs *ast.RangeStmt, obj types.Object) bool {
	var block *ast.BlockStmt
	ast.Inspect(pass.File, func(n ast.Node) bool {
		if block != nil {
			return false
		}
		b, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for _, stmt := range b.List {
			if stmt == ast.Stmt(rs) {
				block = b
				return false
			}
		}
		return true
	})
	if block == nil {
		return false
	}
	after := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rs) {
			after = true
			continue
		}
		if !after {
			continue
		}
		sorts := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fnObj := pass.ObjectOf(sel.Sel)
			if fnObj == nil || fnObj.Pkg() == nil {
				return true
			}
			if p := fnObj.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if argObj := appendTargetObj(pass, arg); argObj != nil && argObj == obj {
					sorts = true
				}
			}
			return !sorts
		})
		if sorts {
			return true
		}
	}
	return false
}
