package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ruleCkptCoverage enforces snapshot completeness: for every struct type
// that structurally implements checkpoint.Stateful (CheckpointState()
// ([]byte, error) + RestoreCheckpoint([]byte) error), every mutable field
// must be read somewhere in the encoder's call tree and written (used)
// somewhere in the restore path's call tree. "Mutable" is decided by
// observation, not annotation: the module is scanned for assignments,
// ++/--, and map deletes through each field, excluding constructors
// (New*/Wrap*/make*/new*) and the restore path itself. A field that is
// mutated mid-run but invisible to the snapshot encoder is exactly the
// "added a field, forgot the snapshot" bug class TestResumeMatrix only
// catches after the divergence has happened.
//
// Telemetry handles from internal/obs are exempt: they are registry-owned,
// reconstructed by Instrument, and the obs registry is checkpointed
// separately (RestoreSnapshot). Any other sanctioned omission carries a
// //lint:allow ckpt-coverage directive on (or above) the field.
var ruleCkptCoverage = &Rule{
	Name: "ckpt-coverage",
	Doc: "every mutable field of a checkpoint.Stateful implementation must be read by " +
		"CheckpointState and restored by RestoreCheckpoint (call-graph coverage)",
	SkipTests: true,
	ModuleCheck: func(mp *ModulePass) {
		g := mp.Graph

		// Collect every Stateful implementation declared in the module.
		type statefulType struct {
			name  *types.TypeName
			strct *types.Struct
			enc   *Node
			res   *Node
		}
		var impls []*statefulType
		for _, pkg := range mp.Pkgs {
			seen := map[*types.TypeName]bool{}
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					ts, ok := n.(*ast.TypeSpec)
					if !ok {
						return true
					}
					tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if tn == nil || seen[tn] {
						return true
					}
					seen[tn] = true
					named, _ := tn.Type().(*types.Named)
					if named == nil {
						return true
					}
					strct, _ := named.Underlying().(*types.Struct)
					if strct == nil {
						return true
					}
					enc, res := statefulMethods(named)
					if enc == nil || res == nil {
						return true
					}
					encNode, resNode := g.NodeFor(enc), g.NodeFor(res)
					if encNode == nil || resNode == nil {
						return true
					}
					impls = append(impls, &statefulType{name: tn, strct: strct, enc: encNode, res: resNode})
					return true
				})
			}
		}
		if len(impls) == 0 {
			return
		}

		// Per type: the encoder's and restore path's transitive field uses.
		type coverage struct {
			enc, res map[*Node]*Node
		}
		covs := make([]coverage, len(impls))
		restoreOwned := map[*Node]bool{} // nodes on any restore path: not mutation evidence
		for i, st := range impls {
			covs[i] = coverage{
				enc: g.ReachableFrom([]*Node{st.enc}),
				res: g.ReachableFrom([]*Node{st.res}),
			}
			for n := range covs[i].res {
				restoreOwned[n] = true
			}
		}

		// Module-wide scans: which field keys each node uses, and where
		// fields are mutated outside constructors and restore paths.
		uses := map[*Node]map[string]bool{}
		mutations := map[string]token.Pos{}
		for _, n := range g.Nodes {
			if mp.InTestFile(n.Pos()) {
				continue
			}
			fieldUses := map[string]bool{}
			collectMutations := !restoreOwned[n] && !isConstructorNode(n)
			g.InspectOwn(n, func(an ast.Node) bool {
				switch an := an.(type) {
				case *ast.SelectorExpr:
					if key, ok := selectionFieldKey(n.Pkg, an); ok {
						fieldUses[key] = true
					}
				case *ast.AssignStmt:
					if collectMutations {
						for _, lhs := range an.Lhs {
							for _, key := range fieldKeysIn(n.Pkg, lhs) {
								if _, ok := mutations[key]; !ok {
									mutations[key] = lhs.Pos()
								}
							}
						}
					}
				case *ast.IncDecStmt:
					if collectMutations {
						for _, key := range fieldKeysIn(n.Pkg, an.X) {
							if _, ok := mutations[key]; !ok {
								mutations[key] = an.X.Pos()
							}
						}
					}
				case *ast.CallExpr:
					if collectMutations && isBuiltinDelete(n.Pkg, an) && len(an.Args) > 0 {
						for _, key := range fieldKeysIn(n.Pkg, an.Args[0]) {
							if _, ok := mutations[key]; !ok {
								mutations[key] = an.Args[0].Pos()
							}
						}
					}
				}
				return true
			})
			if len(fieldUses) > 0 {
				uses[n] = fieldUses
			}
		}

		reachUses := func(reach map[*Node]*Node, key string) bool {
			for n := range reach {
				if uses[n][key] {
					return true
				}
			}
			return false
		}

		for i, st := range impls {
			if mp.InTestFile(st.name.Pos()) {
				continue
			}
			for j := 0; j < st.strct.NumFields(); j++ {
				f := st.strct.Field(j)
				if f.Anonymous() || isObsHandleType(f.Type()) {
					continue
				}
				key := fieldKey(st.name, f.Name())
				mutPos, mutated := mutations[key]
				if !mutated {
					continue
				}
				where := mp.position(mutPos)
				if !reachUses(covs[i].enc, key) {
					mp.Report(f.Pos(),
						"field %s.%s is mutated (e.g. at %s) but never read in CheckpointState's call tree; snapshots silently miss it",
						st.name.Name(), f.Name(), where)
				}
				if !reachUses(covs[i].res, key) {
					mp.Report(f.Pos(),
						"field %s.%s is mutated (e.g. at %s) but never written in RestoreCheckpoint's call tree; resumed runs silently diverge",
						st.name.Name(), f.Name(), where)
				}
			}
		}
	},
}

// position renders a pos as file:line relative to nothing in particular —
// the diagnostic just needs to point a human at the mutation site.
func (mp *ModulePass) position(pos token.Pos) string {
	if len(mp.Pkgs) == 0 {
		return "?"
	}
	p := mp.Pkgs[0].Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// statefulMethods returns the CheckpointState and RestoreCheckpoint
// methods when named declares both with the checkpoint.Stateful
// signatures, else nils.
func statefulMethods(named *types.Named) (enc, res *types.Func) {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		sig, ok := m.Type().(*types.Signature)
		if !ok {
			continue
		}
		switch m.Name() {
		case "CheckpointState":
			if sig.Params().Len() == 0 && sig.Results().Len() == 2 &&
				sig.Results().At(0).Type().String() == "[]byte" &&
				sig.Results().At(1).Type().String() == "error" {
				enc = m
			}
		case "RestoreCheckpoint":
			if sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
				sig.Params().At(0).Type().String() == "[]byte" &&
				sig.Results().At(0).Type().String() == "error" {
				res = m
			}
		}
	}
	return enc, res
}

// fieldKey identifies a struct field across packages (source-checked and
// export-data views of the same package produce distinct objects, so
// pointer identity is not enough).
func fieldKey(tn *types.TypeName, field string) string {
	pkg := ""
	if tn.Pkg() != nil {
		pkg = tn.Pkg().Path()
	}
	return pkg + "." + tn.Name() + "." + field
}

// selectionFieldKey resolves a selector expression to a field key when it
// selects a struct field.
func selectionFieldKey(pkg *Package, sel *ast.SelectorExpr) (string, bool) {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	t := s.Recv()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	return fieldKey(named.Obj(), s.Obj().Name()), true
}

// fieldKeysIn collects the field keys of every field selection in an
// expression subtree (the conservative read of an assignment target:
// `a.table[k] = v` mutates table).
func fieldKeysIn(pkg *Package, e ast.Expr) []string {
	var keys []string
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if key, ok := selectionFieldKey(pkg, sel); ok {
				keys = append(keys, key)
			}
		}
		return true
	})
	return keys
}

// isBuiltinDelete reports a call to the builtin delete.
func isBuiltinDelete(pkg *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "delete" {
		return false
	}
	_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isConstructorNode reports whether a node is a constructor-shaped
// declared function (New*/Wrap*/new*/make*): field initialization there is
// setup, not mid-run mutation.
func isConstructorNode(n *Node) bool {
	if n.Obj == nil {
		// Literals inherit their enclosing function's classification.
		if n.Enclosing != nil {
			return isConstructorNode(n.Enclosing)
		}
		return false
	}
	name := n.Obj.Name()
	for _, prefix := range []string{"New", "Wrap", "new", "make"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// isObsHandleType reports whether a field type is (a pointer to, or slice
// of) an internal/obs handle — registry-owned telemetry state that is
// deliberately outside component snapshots.
func isObsHandleType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && pkgInScope(obj.Pkg().Path(), []string{"internal/obs"})
}
