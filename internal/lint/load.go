package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Loader type-checks module packages without golang.org/x/tools: package
// metadata and compiled export data come from `go list -export` (the build
// cache — no network), the analyzed package itself is parsed from source,
// and its imports are materialized through the standard gc importer with a
// lookup function over the export-data files. In-package _test.go files
// are checked together with their package; external (package foo_test)
// test files are checked as their own package importing the base through
// export data.
type Loader struct {
	// Dir is the directory `go list` runs in (the module root for
	// repo-wide sweeps).
	Dir string

	Fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, Fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	DepOnly      bool
	ForTest      string
	Module       *struct{ Path string }
}

const listFields = "ImportPath,Dir,Export,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles,Standard,DepOnly,ForTest,Module"

func (l *Loader) goList(args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: %v failed: %v\n%s", cmd.Args, err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lookup serves export data to the gc importer, lazily listing packages
// (stdlib included) that the initial sweep did not cover.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		pkgs, err := l.goList("list", "-export", "-json="+listFields, "--", path)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.ImportPath == path && p.Export != "" {
				file = p.Export
			}
		}
		if file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		l.mu.Lock()
		l.exports[path] = file
		l.mu.Unlock()
	}
	return os.Open(file)
}

func (l *Loader) recordExports(pkgs []listPkg) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range pkgs {
		// Test variants carry bracketed import paths; only plain builds
		// feed the importer.
		if p.Export != "" && p.ForTest == "" && !strings.Contains(p.ImportPath, " ") {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

// Packages loads, parses, and type-checks every package matching the go
// list patterns (default "./..."), including test files.
func (l *Loader) Packages(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-test", "-export", "-json=" + listFields, "--"}, patterns...)
	listed, err := l.goList(args...)
	if err != nil {
		return nil, err
	}
	l.recordExports(listed)

	var out []*Package
	for _, p := range listed {
		// Analyze only the packages the patterns named: not dependencies,
		// not the synthesized .test mains, not bracketed test variants
		// (their in-package test files are folded into the plain entry).
		if p.DepOnly || p.Standard || p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		srcs := make([]string, 0, len(p.GoFiles)+len(p.CgoFiles)+len(p.TestGoFiles))
		srcs = append(srcs, p.GoFiles...)
		srcs = append(srcs, p.CgoFiles...)
		srcs = append(srcs, p.TestGoFiles...)
		if len(srcs) > 0 {
			pkg, err := l.check(p.ImportPath, p.Dir, srcs)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
		if len(p.XTestGoFiles) > 0 {
			pkg, err := l.check(p.ImportPath+"_test", p.Dir, p.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
	}
	return out, nil
}

// SingleFile parses and type-checks one standalone file (the fixture
// loader for the analyzer tests). A `//lint:importpath <path>` comment
// anywhere in the file overrides the synthetic import path, letting a
// fixture pose as a deterministic-core package for the scope-sensitive
// rules (clock-taint roots on internal/fl et al.).
func (l *Loader) SingleFile(path string) (*Package, error) {
	importPath := "fixture/" + filepath.Base(path)
	if src, err := os.ReadFile(path); err == nil {
		for _, line := range strings.Split(string(src), "\n") {
			line = strings.TrimSpace(line)
			if rest, ok := strings.CutPrefix(line, "//lint:importpath "); ok {
				if p := strings.TrimSpace(rest); p != "" {
					importPath = p
				}
				break
			}
		}
	}
	return l.check(importPath, "", []string{path})
}

func (l *Loader) check(importPath, dir string, files []string) (*Package, error) {
	asts := make([]*ast.File, 0, len(files))
	for _, f := range files {
		name := f
		if dir != "" {
			name = filepath.Join(dir, f)
		}
		a, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		asts = append(asts, a)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, asts, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v (+%d more)", importPath, typeErrs[0], len(typeErrs)-1)
	}
	return &Package{Path: importPath, Fset: l.Fset, Files: asts, Info: info, Types: tpkg}, nil
}

// ModuleRoot resolves the enclosing module's root directory from dir.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: resolving module root: %v", err)
	}
	root := strings.TrimSpace(string(out))
	if root == "" {
		return "", fmt.Errorf("lint: no module found from %s", dir)
	}
	return root, nil
}
