package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallClockFuncs are the package time entry points that read or act on
// wall time. Referencing one (call or function value) couples behavior to
// real time, which the determinism contract forbids outside the sanctioned
// realClock implementation.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
}

// clockSanctionedFile is the one file allowed to touch package time
// directly: it defines the injectable Clock interface and its real
// implementation. Everything else must accept a Clock.
const clockSanctionedFile = "internal/dist/clock.go"

var ruleNoWallClock = &Rule{
	Name: "no-wall-clock",
	Doc: "forbids time.Now/Since/Sleep/After & friends outside internal/dist/clock.go; " +
		"timing must flow through an injected Clock",
	SkipTests: true,
	Check: func(pass *Pass) {
		if strings.HasSuffix(pass.Filename, clockSanctionedFile) {
			return
		}
		ast.Inspect(pass.File, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc || !wallClockFuncs[obj.Name()] {
				return true
			}
			pass.Report(sel.Pos(),
				"time.%s reads the wall clock; inject a Clock (internal/dist/clock.go) so tests and reruns stay deterministic",
				obj.Name())
			return true
		})
	},
}
