package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the package-level math/rand functions that build
// explicitly seeded generators rather than drawing from the shared global
// source; everything else at package level is forbidden.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

var ruleNoGlobalRand = &Rule{
	Name: "no-global-rand",
	Doc: "forbids math/rand's package-level functions (global source); " +
		"randomness must flow from a seeded *rand.Rand",
	// The global source would silently break seeded golden tests, so the
	// rule covers test files too.
	SkipTests: false,
	Check: func(pass *Pass) {
		ast.Inspect(pass.File, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if p := obj.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || randConstructors[fn.Name()] {
				return true
			}
			// Methods on *rand.Rand have a receiver — those are the seeded
			// path and are fine; package-level functions are not.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			pass.Report(sel.Pos(),
				"rand.%s draws from math/rand's shared global source; derive values from a seeded *rand.Rand instead",
				fn.Name())
			return true
		})
	},
}
