package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// deterministicCore are the package path fragments (segment-aligned) whose
// functions form the clock-taint and phase-contract root sets: the fl
// engines, the selectors, the RL agent and FLOAT controller, and the
// distributed aggregator. Everything these packages transitively execute
// is part of the bit-reproducibility contract.
var deterministicCore = []string{
	"internal/fl",
	"internal/selection",
	"internal/rl",
	"internal/core",
	"internal/dist",
}

// pkgInScope reports whether a package path contains one of the scope
// fragments on path-segment boundaries ("x/internal/fl" and
// "x/internal/fl/sub" match "internal/fl"; "x/internal/flx" does not).
func pkgInScope(path string, scopes []string) bool {
	for _, s := range scopes {
		idx := strings.Index(path, s)
		for idx >= 0 {
			startOK := idx == 0 || path[idx-1] == '/'
			end := idx + len(s)
			endOK := end == len(path) || path[end] == '/'
			if startOK && endOK {
				return true
			}
			next := strings.Index(path[idx+1:], s)
			if next < 0 {
				break
			}
			idx += 1 + next
		}
	}
	return false
}

// ruleClockTaint is the call-graph upgrade of no-wall-clock: instead of
// flagging only direct package-time references, it flags every wall-clock
// read transitively reachable from the deterministic core (fl engines,
// selectors, RL agent/FLOAT controller, dist server+client), outside the
// sanctioned internal/dist/clock.go. A site that carries a
// //lint:allow no-wall-clock annotation is still tainted here — direct-use
// sanctioning (benchmark harnesses printing elapsed time) is a different
// decision from "the simulation core may execute this"; reaching such a
// site from the core needs its own //lint:allow clock-taint with a reason.
// Interface dispatch breaks the taint by design: timing routed through the
// injected Clock resolves to no static callee.
var ruleClockTaint = &Rule{
	Name: "clock-taint",
	Doc: "flags wall-clock reads transitively reachable from the fl engines, selectors, " +
		"RL agent, or dist handlers (call-graph dataflow; internal/dist/clock.go is sanctioned)",
	SkipTests: true,
	ModuleCheck: func(mp *ModulePass) {
		g := mp.Graph

		// Roots: every declared function of the core packages, non-test
		// files only, in deterministic construction order.
		var roots []*Node
		for _, n := range g.Nodes {
			if n.Obj == nil || !pkgInScope(n.Pkg.Path, deterministicCore) {
				continue
			}
			if mp.InTestFile(n.Pos()) {
				continue
			}
			roots = append(roots, n)
		}
		if len(roots) == 0 {
			return
		}
		pred := g.ReachableFrom(roots)

		// Report each wall-clock reference owned by a reached node.
		for _, n := range g.Nodes {
			if _, ok := pred[n]; !ok {
				continue
			}
			if mp.InTestFile(n.Pos()) || strings.HasSuffix(fileOf(n), clockSanctionedFile) {
				continue
			}
			for _, ref := range wallClockRefs(g, n) {
				mp.Report(ref.pos,
					"time.%s is transitively reachable from the deterministic core (%s); route timing through the injected Clock (internal/dist/clock.go)",
					ref.name, Chain(pred, n, 5))
			}
		}
	},
}

// fileOf returns the slash-separated filename containing a node.
func fileOf(n *Node) string {
	tf := n.Pkg.Fset.File(n.Pos())
	if tf == nil {
		return ""
	}
	return strings.ReplaceAll(tf.Name(), "\\", "/")
}

type clockRef struct {
	name string
	pos  token.Pos
}

// wallClockRefs collects the package-time wall-clock entry points
// referenced directly in the node's own body region.
func wallClockRefs(g *Graph, n *Node) []clockRef {
	var refs []clockRef
	g.InspectOwn(n, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := n.Pkg.Info.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return true
		}
		if fn, isFunc := obj.(*types.Func); !isFunc || !wallClockFuncs[fn.Name()] {
			return true
		}
		refs = append(refs, clockRef{name: obj.Name(), pos: sel.Pos()})
		return true
	})
	return refs
}
