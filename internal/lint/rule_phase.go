package lint

import (
	"go/ast"
	"go/types"
)

// phaseForbidden lists methods that belong exclusively to the engines'
// single-threaded dispatch/collect phases, keyed by (receiver type name,
// method name). Matching is by name rather than by import path so the
// contract also binds fixture and future code: any type named Population
// with an AcquireClient method is the population under this module's
// conventions.
var phaseForbidden = map[[2]string]string{
	{"Population", "AcquireClient"}: "client acquisition mutates shard pin state",
	{"Population", "AcquireShard"}:  "shard acquisition mutates cache pin state",
	{"Population", "Release"}:       "release mutates shard pin state",
	{"Population", "Client"}:        "unpinned client access races with eviction",
	{"Population", "Shard"}:         "unpinned shard access races with eviction",
	{"Population", "FlushObs"}:      "deferred-telemetry flush is a collect-phase operation",
	{"Provider", "Acquire"}:         "data acquisition mutates the working-set cache",
	{"Provider", "Release"}:         "data release mutates the working-set cache",
	{"Cache", "Get"}:                "cache lookup mutates LRU recency state",
	{"Cache", "Add"}:                "cache insertion evicts entries",
	{"Cache", "Pin"}:                "pinning mutates cache pin state",
	{"Cache", "Unpin"}:              "unpinning mutates cache pin state",
	{"Ledger", "Record"}:            "ledger writes are ordered by the collect phase",
	{"Ledger", "RecordDiscarded"}:   "ledger writes are ordered by the collect phase",
	{"Tracer", "Emit"}:              "trace emission is ordered by the dispatch/collect phases",
}

// rulePhaseContract enforces the engines' three-phase concurrency
// contract: fan-out jobs (function literals handed to forEachSlot) run on
// worker goroutines and may only touch their job-local context — working
// set acquisition/release, ledger writes, and observability flushes are
// single-threaded dispatch/collect operations. The check is call-graph
// transitive: a helper called from a fan-out literal is held to the same
// contract, however many hops away. Atomic telemetry handles (obs.Counter
// and friends) are deliberately absent from the forbidden set — they are
// the sanctioned way for workers to count.
var rulePhaseContract = &Rule{
	Name: "phase-contract",
	Doc: "functions reachable from engine fan-out jobs (forEachSlot literals) must not acquire/" +
		"release working-set entries, write the ledger, or flush deferred telemetry",
	SkipTests: true,
	ModuleCheck: func(mp *ModulePass) {
		g := mp.Graph

		// Roots: every function literal passed to a forEachSlot call, plus
		// named functions passed by value.
		var roots []*Node
		for _, n := range g.Nodes {
			if mp.InTestFile(n.Pos()) {
				continue
			}
			g.InspectOwn(n, func(an ast.Node) bool {
				call, ok := an.(*ast.CallExpr)
				if !ok || staticCalleeName(n.Pkg, call) != "forEachSlot" {
					return true
				}
				for _, arg := range call.Args {
					switch arg := arg.(type) {
					case *ast.FuncLit:
						if r := g.NodeForLit(arg); r != nil {
							roots = append(roots, r)
						}
					case *ast.Ident:
						if fn, ok := n.Pkg.Info.Uses[arg].(*types.Func); ok {
							if r := g.NodeFor(fn); r != nil {
								roots = append(roots, r)
							}
						}
					}
				}
				return true
			})
		}
		if len(roots) == 0 {
			return
		}
		pred := g.ReachableFrom(roots)

		for _, n := range g.Nodes {
			if _, ok := pred[n]; !ok {
				continue
			}
			if mp.InTestFile(n.Pos()) {
				continue
			}
			g.InspectOwn(n, func(an ast.Node) bool {
				call, ok := an.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				recv, method, ok := receiverMethod(n.Pkg, sel)
				if !ok {
					return true
				}
				why, forbidden := phaseForbidden[[2]string{recv, method}]
				if !forbidden {
					return true
				}
				mp.Report(sel.Pos(),
					"%s.%s is called from an engine fan-out job (%s); %s — move it to the single-threaded dispatch or collect phase",
					recv, method, Chain(pred, n, 5), why)
				return true
			})
		}
	},
}

// staticCalleeName resolves a call's static callee function name, or "".
func staticCalleeName(pkg *Package, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
		return fn.Name()
	}
	return ""
}

// receiverMethod resolves a method-call selector to its receiver type name
// and method name. Both concrete and interface receivers count: the
// contract is about what the operation does, not how it is dispatched.
func receiverMethod(pkg *Package, sel *ast.SelectorExpr) (recv, method string, ok bool) {
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name(), fn.Name(), true
	case *types.Interface:
		// Interface method expression receiver — fall through to the
		// selector's qualifier type when resolvable.
	}
	if tv, okTV := pkg.Info.Types[sel.X]; okTV {
		x := tv.Type
		if p, isPtr := x.(*types.Pointer); isPtr {
			x = p.Elem()
		}
		if named, isNamed := x.(*types.Named); isNamed {
			return named.Obj().Name(), fn.Name(), true
		}
	}
	return "", "", false
}
