package lint

import (
	"go/ast"
	"go/types"
)

// viewMutatorMethods are the in-place tensor.Vector kernels: calling one
// on a zero-copy parameter view mutates the model it aliases.
var viewMutatorMethods = map[string]bool{
	"Scale": true, "Fill": true, "Zero": true,
	"AddScaled": true, "AddScaledDiff": true, "Clamp": true,
}

// viewDstFuncs are the free kernels that write through their first
// argument.
var viewDstFuncs = map[string]bool{
	"ScaledDiff": true, "AddWeighted": true, "Softmax": true,
}

// ruleFlatViewMutation enforces DESIGN.md's buffer ownership rules for the
// flat parameter layout: the vectors returned by Model.Parameters() /
// Gradients() alias the model's storage. Storing such a view into a struct
// field, map, or slice cell, or handing it to an in-place tensor kernel,
// silently couples two models (or a snapshot and the live model) unless an
// intervening Clone() makes the copy explicit.
//
// The check is a type-aware heuristic: a "view" is the direct result of a
// zero-argument Parameters()/Gradients() method call whose type is a
// float64 slice, or a local variable assigned straight from one. Results
// piped through .Clone() are fresh storage and never flagged. Sanctioned
// mutation sites (the aggregator owns the model it updates in place)
// carry //lint:allow annotations.
var ruleFlatViewMutation = &Rule{
	Name: "flat-view-mutation",
	Doc: "flags zero-copy Parameters()/Gradients() views stored into fields/maps " +
		"or mutated by in-place tensor kernels without Clone()",
	// The nn tests mutate views on purpose to prove the aliasing
	// semantics; production code must not.
	SkipTests: true,
	Check: func(pass *Pass) {
		for _, decl := range pass.File.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFlatViews(pass, fn.Body)
		}
	},
}

func checkFlatViews(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: local variables bound directly to a view.
	viewVars := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isViewCall(pass, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					viewVars[obj] = true
				}
			}
		}
		return true
	})

	isView := func(e ast.Expr) bool {
		if isViewCall(pass, e) {
			return true
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				return viewVars[obj]
			}
		}
		return false
	}

	// Pass 2: hazards.
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if len(node.Lhs) != len(node.Rhs) {
				return true
			}
			for i, rhs := range node.Rhs {
				if !isView(rhs) {
					continue
				}
				switch node.Lhs[i].(type) {
				case *ast.SelectorExpr:
					pass.Report(node.Pos(),
						"storing a zero-copy parameter view into a struct field aliases the model; Clone() the snapshot")
				case *ast.IndexExpr:
					pass.Report(node.Pos(),
						"storing a zero-copy parameter view into a container aliases the model; Clone() the snapshot")
				}
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isView(v) {
					pass.Report(v.Pos(),
						"embedding a zero-copy parameter view in a composite literal aliases the model; Clone() the snapshot")
				}
			}
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				if viewMutatorMethods[sel.Sel.Name] && isView(sel.X) {
					pass.Report(node.Pos(),
						"%s mutates the model through a zero-copy view; Clone() first or annotate the sanctioned aggregation site",
						sel.Sel.Name)
				}
			}
			if name := calleeName(node.Fun); viewDstFuncs[name] && len(node.Args) > 0 && isView(node.Args[0]) {
				pass.Report(node.Pos(),
					"%s writes into a zero-copy view, mutating the model it aliases; Clone() first or annotate the sanctioned aggregation site",
					name)
			}
			if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "copy" && len(node.Args) == 2 {
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin && isView(node.Args[0]) {
					pass.Report(node.Pos(),
						"copy into a zero-copy view mutates the model it aliases; use SetParameters or Clone()")
				}
			}
		}
		return true
	})
}

// isViewCall matches x.Parameters() / x.Gradients() with no arguments
// returning a float64 slice (tensor.Vector or equivalent).
func isViewCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Parameters" && sel.Sel.Name != "Gradients") {
		return false
	}
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// calleeName returns the bare name of a called function for ident and
// selector forms ("AddWeighted" for both tensor.AddWeighted and
// AddWeighted).
func calleeName(fun ast.Expr) string {
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
