package lint_test

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"floatfl/internal/lint"
)

// TestCkptCoverageCatchesOmittedField is the seeded-fault acceptance test
// for the dataflow engine: ckptcover_bad.go implements checkpoint.Stateful
// with a field (dropped) that is mutated mid-run but deliberately omitted
// from both CheckpointState and RestoreCheckpoint — the rule must name the
// field and flag both directions, at the field's declaration.
func TestCkptCoverageCatchesOmittedField(t *testing.T) {
	findings := runRules(t, "ckptcover_bad.go", map[string]bool{"ckpt-coverage": true})
	var missEncode, missRestore bool
	for _, f := range findings {
		if f.Rule != "ckpt-coverage" || !strings.Contains(f.Message, "counter.dropped") {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		switch {
		case strings.Contains(f.Message, "never read in CheckpointState"):
			missEncode = true
		case strings.Contains(f.Message, "never written in RestoreCheckpoint"):
			missRestore = true
		}
	}
	if !missEncode {
		t.Error("omitted field not flagged on the CheckpointState side — snapshot omissions would ship")
	}
	if !missRestore {
		t.Error("omitted field not flagged on the RestoreCheckpoint side — divergent resumes would ship")
	}
	// The covered sibling field (steps) must not be flagged.
	for _, f := range findings {
		if strings.Contains(f.Message, "counter.steps") {
			t.Errorf("fully-covered field flagged: %s", f)
		}
	}
}

// TestUnusedDirectivesReported pins the stale-directive contract: with
// Options.UnusedDirectives a well-formed allow that suppresses nothing is
// itself a finding, while load-bearing allows stay silent.
func TestUnusedDirectivesReported(t *testing.T) {
	pkg := loadFixture(t, "unuseddir.go")
	findings := lint.RunOpts([]*lint.Package{pkg}, lint.Options{UnusedDirectives: true})
	if len(findings) != 1 {
		t.Fatalf("got %d finding(s), want exactly 1 unused-directive:\n%s", len(findings), formatFindings(findings))
	}
	f := findings[0]
	if f.Rule != "unused-directive" || !strings.Contains(f.Message, "no-wall-clock") {
		t.Errorf("unexpected finding: %s", f)
	}

	// A load-bearing directive (wallclock_ok.go's sanctioned read) must not
	// be reported as unused.
	pkg = loadFixture(t, "wallclock_ok.go")
	if findings := lint.RunOpts([]*lint.Package{pkg}, lint.Options{UnusedDirectives: true}); len(findings) != 0 {
		t.Errorf("load-bearing directive reported as unused:\n%s", formatFindings(findings))
	}
}

// TestSARIFOutput checks the SARIF 2.1.0 encoding end to end: valid JSON,
// the registered rule table, and one result per finding with a
// root-relative location.
func TestSARIFOutput(t *testing.T) {
	findings := runRules(t, "wallclock_bad.go", nil)
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
	data, err := lint.SARIF(findings, "")
	if err != nil {
		t.Fatal(err)
	}
	again, err := lint.SARIF(findings, "")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Error("SARIF encoding is not deterministic")
	}

	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 with one run", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "floatlint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, name := range lint.RuleNames() {
		if !ruleIDs[name] {
			t.Errorf("registered rule %s missing from SARIF rule table", name)
		}
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(findings))
	}
	for i, res := range run.Results {
		f := findings[i]
		if res.RuleID != f.Rule || res.Message.Text != f.Message {
			t.Errorf("result %d: got (%s, %q), want (%s, %q)", i, res.RuleID, res.Message.Text, f.Rule, f.Message)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d: %d locations", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.Region.StartLine != f.Pos.Line {
			t.Errorf("result %d: startLine %d, want %d", i, loc.Region.StartLine, f.Pos.Line)
		}
		if strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("result %d: URI %q not slash-separated", i, loc.ArtifactLocation.URI)
		}
	}

	// Root-relative URIs: passing the fixture's directory as root strips it.
	rel, err := lint.SARIF(findings, filepath.Dir(findings[0].Pos.Filename))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rel), `"uri": "wallclock_bad.go"`) {
		t.Error("SARIF URI not relativized against root")
	}
}

// TestBaselineRoundTrip checks encode/parse symmetry and the Filter
// semantics: covered findings are absorbed (counts matter), novel ones
// pass through, and exhausted entries surface as stale.
func TestBaselineRoundTrip(t *testing.T) {
	findings := runRules(t, "wallclock_bad.go", nil)
	if len(findings) < 3 {
		t.Fatalf("fixture produced %d findings, want >= 3", len(findings))
	}

	base := lint.NewBaseline(findings, "")
	data, err := base.Encode()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := lint.ParseBaseline(data)
	if err != nil {
		t.Fatal(err)
	}

	// The baseline built from the findings absorbs all of them.
	novel, stale := parsed.Filter(findings, "")
	if len(novel) != 0 {
		t.Errorf("full baseline left %d novel finding(s)", len(novel))
	}
	if len(stale) != 0 {
		t.Errorf("full baseline reported %d stale entr(ies)", len(stale))
	}

	// Dropping one finding from the input surfaces its entry as stale.
	novel, stale = parsed.Filter(findings[1:], "")
	if len(novel) != 0 {
		t.Errorf("subset filter left %d novel finding(s)", len(novel))
	}
	if len(stale) != 1 {
		t.Errorf("got %d stale entr(ies), want 1", len(stale))
	}

	// An empty baseline passes everything through as novel.
	empty, err := lint.ParseBaseline([]byte(`{"version":1,"entries":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	novel, _ = empty.Filter(findings, "")
	if len(novel) != len(findings) {
		t.Errorf("empty baseline absorbed findings: %d of %d passed", len(novel), len(findings))
	}

	// Count semantics: a duplicated finding is only absorbed count times.
	dup := append([]lint.Finding{findings[0]}, findings...)
	novel, _ = parsed.Filter(dup, "")
	if len(novel) != 1 {
		t.Errorf("count semantics broken: %d novel, want 1 (the second identical finding)", len(novel))
	}

	// Malformed documents are rejected.
	for _, bad := range []string{
		`{"version":2,"entries":[]}`,
		`{"version":1,"entries":[{"rule":"","file":"x","message":"m","count":1}]}`,
		`{"version":1,"entries":[{"rule":"r","file":"x","message":"m","count":0}]}`,
		`not json`,
	} {
		if _, err := lint.ParseBaseline([]byte(bad)); err == nil {
			t.Errorf("ParseBaseline accepted malformed input %q", bad)
		}
	}
}

// TestCallGraphChains sanity-checks the substrate directly: literal
// containment, transitive reachability, and chain rendering on the
// clock-taint fixture.
func TestCallGraphChains(t *testing.T) {
	pkg := loadFixture(t, "clocktaint_bad.go")
	g := lint.BuildGraph([]*lint.Package{pkg})
	var root *lint.Node
	for _, n := range g.Nodes {
		if n.Obj != nil && n.Obj.Name() == "runRound" {
			root = n
		}
	}
	if root == nil {
		t.Fatal("runRound not in graph")
	}
	pred := g.ReachableFrom([]*lint.Node{root})
	var litReached, collectReached bool
	for n := range pred {
		if n.Lit != nil {
			litReached = true
			if got := lint.Chain(pred, n, 5); got != "fixture.runRound → func literal in fixture.runRound" {
				t.Errorf("chain = %q", got)
			}
		}
		if n.Obj != nil && n.Obj.Name() == "collect" {
			collectReached = true
		}
	}
	if !litReached {
		t.Error("containment edge missing: closure not reachable from its enclosing function")
	}
	if !collectReached {
		t.Error("static call edge missing: collect not reachable from runRound")
	}
}
