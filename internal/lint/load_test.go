package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"floatfl/internal/lint"
)

// writeTree materializes a throwaway module for loader error-path tests.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoaderBrokenPackage pins the loader's failure mode on code that does
// not type-check: a lint error naming the package, not a panic and not a
// silent skip.
func TestLoaderBrokenPackage(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":  "module brokenmod\n\ngo 1.22\n",
		"main.go": "package main\n\nfunc main() { undefinedIdent() }\n",
	})
	_, err := lint.NewLoader(dir).Packages("./...")
	if err == nil {
		t.Fatal("loading a package with type errors succeeded")
	}
	if !strings.Contains(err.Error(), "undefinedIdent") {
		t.Errorf("error does not name the broken identifier: %v", err)
	}
}

// TestLoaderSyntaxError covers the parse-failure path (distinct from the
// type-check path: the file never reaches the checker).
func TestLoaderSyntaxError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":  "module syntaxmod\n\ngo 1.22\n",
		"main.go": "package main\n\nfunc main() {\n", // unterminated body
	})
	_, err := lint.NewLoader(dir).Packages("./...")
	if err == nil {
		t.Fatal("loading a package with a syntax error succeeded")
	}
	if !strings.Contains(err.Error(), "parsing") && !strings.Contains(err.Error(), "expected") {
		t.Errorf("error does not look like a parse failure: %v", err)
	}
}

// TestLoaderMissingExportData covers the import-resolution failure: a
// package importing something go list cannot resolve to export data (an
// unknown module path) must error out, naming the import.
func TestLoaderMissingExportData(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":  "module missingmod\n\ngo 1.22\n",
		"main.go": "package main\n\nimport \"missingmod/nonexistent\"\n\nfunc main() { nonexistent.F() }\n",
	})
	_, err := lint.NewLoader(dir).Packages("./...")
	if err == nil {
		t.Fatal("loading with an unresolvable import succeeded")
	}
	if !strings.Contains(err.Error(), "nonexistent") {
		t.Errorf("error does not name the missing import: %v", err)
	}
}

// TestLoaderTestVariantPackages checks the test-variant folding contract:
// in-package _test.go files are analyzed with their package, external
// package foo_test files become their own "<path>_test" entry, and the
// synthesized .test mains and bracketed variants never surface.
func TestLoaderTestVariantPackages(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":          "module variantmod\n\ngo 1.22\n",
		"lib.go":          "package lib\n\nfunc Answer() int { return 42 }\n",
		"lib_in_test.go":  "package lib\n\nimport \"testing\"\n\nfunc TestInternal(t *testing.T) { _ = Answer() }\n",
		"lib_ext_test.go": "package lib_test\n\nimport (\n\t\"testing\"\n\n\t\"variantmod\"\n)\n\nfunc TestExternal(t *testing.T) { _ = lib.Answer() }\n",
	})
	pkgs, err := lint.NewLoader(dir).Packages("./...")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := map[string]int{"variantmod": 0, "variantmod_test": 0}
	for _, p := range pkgs {
		if _, ok := want[p.Path]; !ok {
			t.Errorf("unexpected package %q (test variants must fold, .test mains must vanish)", p.Path)
			continue
		}
		want[p.Path]++
	}
	for path, n := range want {
		if n != 1 {
			t.Errorf("package %q appeared %d times, want once (got: %v)", path, n, paths)
		}
	}
	// The in-package test file must be folded into the base package.
	for _, p := range pkgs {
		if p.Path != "variantmod" {
			continue
		}
		if len(p.Files) != 2 {
			t.Errorf("base package has %d files, want 2 (lib.go + in-package test)", len(p.Files))
		}
	}
}

// TestLoaderImportPathDirective pins SingleFile's //lint:importpath
// override, which the scope-sensitive fixtures (clock-taint) rely on.
func TestLoaderImportPathDirective(t *testing.T) {
	pkg, err := lint.NewLoader(".").SingleFile(filepath.Join("testdata", "clocktaint_bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "fixture/internal/fl/clocktaint" {
		t.Errorf("import path %q, want the //lint:importpath override", pkg.Path)
	}
	pkg, err = lint.NewLoader(".").SingleFile(filepath.Join("testdata", "wallclock_bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "fixture/wallclock_bad.go" {
		t.Errorf("import path %q, want the synthetic default", pkg.Path)
	}
}

// TestModuleRootOutsideModule pins ModuleRoot's failure outside any module.
func TestModuleRootOutsideModule(t *testing.T) {
	dir := t.TempDir() // no go.mod anywhere above (tmp dirs are module-free)
	if root, err := lint.ModuleRoot(dir); err == nil && root != "" {
		// Some environments place tmp under a module; only assert when the
		// lookup actually failed to find one.
		t.Skipf("temp dir unexpectedly inside module %s", root)
	}
}
