package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func encodeOrDie(t *testing.T, kind string, payload []byte) []byte {
	t.Helper()
	data, err := EncodeBytes(kind, payload)
	if err != nil {
		t.Fatalf("EncodeBytes: %v", err)
	}
	return data
}

func TestRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xA5}, 4096)} {
		data := encodeOrDie(t, "test-kind", payload)
		got, err := DecodeBytes(data, "test-kind")
		if err != nil {
			t.Fatalf("DecodeBytes(%d-byte payload): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

// TestTruncationEveryByte decodes every proper prefix of a valid frame:
// each must fail with ErrTruncated — never a nil error, never a partial
// payload, never an untyped error.
func TestTruncationEveryByte(t *testing.T) {
	data := encodeOrDie(t, "trunc", []byte("small deterministic payload"))
	for n := 0; n < len(data); n++ {
		_, err := DecodeBytes(data[:n], "trunc")
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(data))
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrTruncated", n, len(data), err)
		}
	}
}

// TestCorruptionEveryByte flips each byte of a valid frame in turn; every
// mutation must surface as one of the package's typed errors.
func TestCorruptionEveryByte(t *testing.T) {
	data := encodeOrDie(t, "corrupt", []byte("small deterministic payload"))
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0xFF
		_, err := DecodeBytes(bad, "corrupt")
		if err == nil {
			t.Fatalf("flipping byte %d decoded without error", i)
		}
		var fe *FormatError
		var ve *VersionError
		switch {
		case errors.Is(err, ErrTruncated), errors.Is(err, ErrChecksum):
		case errors.As(err, &fe), errors.As(err, &ve):
		default:
			t.Fatalf("flipping byte %d: untyped error %v", i, err)
		}
	}
}

func TestKindMismatch(t *testing.T) {
	data := encodeOrDie(t, "rl-agent", []byte("{}"))
	_, err := DecodeBytes(data, "fl-engine")
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("kind mismatch: got %v, want *FormatError", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	data := encodeOrDie(t, "v", []byte("payload"))
	data[8+3] = 99 // low byte of the big-endian version field
	_, err := DecodeBytes(data, "v")
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("future version: got %v, want *VersionError", err)
	}
	if ve.Got != 99 {
		t.Fatalf("VersionError.Got = %d, want 99", ve.Got)
	}
}

func TestBadMagic(t *testing.T) {
	data := encodeOrDie(t, "m", []byte("payload"))
	data[0] = 'X'
	_, err := DecodeBytes(data, "m")
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("bad magic: got %v, want *FormatError", err)
	}
}

func TestTrailingGarbageIgnored(t *testing.T) {
	// Decode consumes exactly one frame; bytes after it (a follow-up frame
	// in the same stream) are not an error.
	data := encodeOrDie(t, "t", []byte("payload"))
	got, err := DecodeBytes(append(data, 0xDE, 0xAD), "t")
	if err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
	if string(got) != "payload" {
		t.Fatalf("payload = %q", got)
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ck")
	if err := WriteFile(path, "file-kind", []byte("on disk")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path, "file-kind")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "on disk" {
		t.Fatalf("payload = %q", got)
	}
	// No temp litter left behind by the atomic write.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after WriteFile, want 1", len(entries))
	}
}

func TestCompatErrorMessage(t *testing.T) {
	err := &CompatError{Field: "arch", Got: "resnet34", Want: "shufflenet"}
	want := `checkpoint: incompatible snapshot: arch is "resnet34", this run has "shufflenet"`
	if err.Error() != want {
		t.Fatalf("CompatError.Error() = %q, want %q", err.Error(), want)
	}
}
