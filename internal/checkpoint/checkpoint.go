// Package checkpoint defines the repo's snapshot container: a versioned,
// checksummed frame around an opaque payload, plus the Stateful interface
// components implement to participate in engine checkpoints.
//
// The frame is deliberately dumb — magic, version, a kind string naming
// what the payload is (an engine snapshot, an RL agent, a dist server),
// the payload length, the payload, and a SHA-256 over everything before
// it. All interpretation lives with the owner of the kind. Decoding
// verifies the checksum before returning a single payload byte, so a
// caller that validates the decoded payload before mutating any state
// gets the "corrupt snapshot ⇒ zero partial restore" guarantee for free.
//
// Every error is typed: ErrTruncated for short reads, ErrChecksum for
// integrity failures, *FormatError for bad magic or a kind mismatch,
// *VersionError for an unknown container version, and *CompatError for
// payload-level incompatibilities (a snapshot from a different
// configuration). Callers branch with errors.Is / errors.As.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Version is the container format version written by Encode.
const Version = 1

// magic opens every snapshot file; eight bytes so hexdump shows it whole.
var magic = [8]byte{'F', 'L', 'O', 'A', 'T', 'C', 'K', '\n'}

// maxPayload bounds the declared payload length so a corrupt header
// cannot drive a multi-terabyte allocation before the checksum check.
const maxPayload = 1 << 32

// ErrTruncated reports a snapshot that ends before its declared content.
var ErrTruncated = errors.New("checkpoint: truncated snapshot")

// ErrChecksum reports a snapshot whose bytes do not match its checksum.
var ErrChecksum = errors.New("checkpoint: checksum mismatch")

// FormatError reports a structurally invalid frame: wrong magic, or a
// payload kind different from what the caller asked to decode.
type FormatError struct{ Reason string }

func (e *FormatError) Error() string { return "checkpoint: " + e.Reason }

// VersionError reports a container version this build cannot read.
type VersionError struct{ Got uint32 }

func (e *VersionError) Error() string {
	return fmt.Sprintf("checkpoint: unsupported snapshot version %d (this build reads %d)", e.Got, Version)
}

// CompatError reports a payload that decoded cleanly but belongs to an
// incompatible configuration — resuming it would silently diverge.
type CompatError struct{ Field, Got, Want string }

func (e *CompatError) Error() string {
	return fmt.Sprintf("checkpoint: incompatible snapshot: %s is %q, this run has %q", e.Field, e.Got, e.Want)
}

// Stateful is the optional interface a component implements to join an
// engine checkpoint. CheckpointState must be called only when the
// component is quiescent (the engines' single-threaded collect boundary)
// and must return a self-contained, deterministic encoding — byte-stable
// across processes, so map-keyed state is emitted in sorted order.
// RestoreCheckpoint replaces the component's mutable state with the
// decoded blob; on error the component may be partially written and the
// owning run must be abandoned (the container checksum upstream is what
// guarantees corrupt files never reach this point).
type Stateful interface {
	CheckpointState() ([]byte, error)
	RestoreCheckpoint(data []byte) error
}

// Encode writes one framed snapshot to w.
func Encode(w io.Writer, kind string, payload []byte) error {
	if len(kind) == 0 || len(kind) > 255 {
		return &FormatError{Reason: fmt.Sprintf("invalid kind %q", kind)}
	}
	if len(payload) > maxPayload {
		return &FormatError{Reason: "payload too large"}
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], Version)
	buf.Write(u32[:])
	buf.WriteByte(byte(len(kind)))
	buf.WriteString(kind)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(len(payload)))
	buf.Write(u64[:])
	buf.Write(payload)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	_, err := w.Write(buf.Bytes())
	return err
}

// EncodeBytes is Encode into a fresh byte slice.
func EncodeBytes(kind string, payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, kind, payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reads one framed snapshot from r, verifies its integrity, and
// returns the payload. kind must match the encoded kind exactly; pass the
// same constant the writer used so an agent file cannot be fed to the
// engine restore path (or vice versa).
func Decode(r io.Reader, kind string) ([]byte, error) {
	var head [8]byte
	if err := readFull(r, head[:]); err != nil {
		return nil, err
	}
	if head != magic {
		return nil, &FormatError{Reason: "bad magic (not a snapshot file)"}
	}
	var u32 [4]byte
	if err := readFull(r, u32[:]); err != nil {
		return nil, err
	}
	version := binary.BigEndian.Uint32(u32[:])
	if version != Version {
		return nil, &VersionError{Got: version}
	}
	var klen [1]byte
	if err := readFull(r, klen[:]); err != nil {
		return nil, err
	}
	kb := make([]byte, int(klen[0]))
	if err := readFull(r, kb); err != nil {
		return nil, err
	}
	var u64 [8]byte
	if err := readFull(r, u64[:]); err != nil {
		return nil, err
	}
	plen := binary.BigEndian.Uint64(u64[:])
	if plen > maxPayload {
		return nil, &FormatError{Reason: "declared payload length too large"}
	}
	payload := make([]byte, int(plen))
	if err := readFull(r, payload); err != nil {
		return nil, err
	}
	var sum [sha256.Size]byte
	if err := readFull(r, sum[:]); err != nil {
		return nil, err
	}
	h := sha256.New()
	h.Write(head[:])
	h.Write(u32[:])
	h.Write(klen[:])
	h.Write(kb)
	h.Write(u64[:])
	h.Write(payload)
	if !bytes.Equal(h.Sum(nil), sum[:]) {
		return nil, ErrChecksum
	}
	// Kind is checked after the checksum: a mismatch on intact bytes is a
	// caller error ("wrong file"), not corruption.
	if string(kb) != kind {
		return nil, &FormatError{Reason: fmt.Sprintf("snapshot holds %q, caller wants %q", string(kb), kind)}
	}
	return payload, nil
}

// DecodeBytes is Decode from an in-memory snapshot.
func DecodeBytes(data []byte, kind string) ([]byte, error) {
	return Decode(bytes.NewReader(data), kind)
}

// WriteFile encodes a snapshot to path atomically: the frame is written
// to a temp file in the same directory and renamed into place, so a crash
// mid-write never leaves a half snapshot where a resume flag points.
func WriteFile(path, kind string, payload []byte) error {
	data, err := EncodeBytes(kind, payload)
	if err != nil {
		return err
	}
	return WriteRaw(path, data)
}

// WriteRaw atomically writes an already-framed snapshot (the bytes an
// engine checkpoint sink receives) to path via temp file + rename.
func WriteRaw(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadFile decodes a snapshot file written by WriteFile.
func ReadFile(path, kind string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f, kind)
}

// readFull wraps io.ReadFull, mapping both flavors of early EOF onto the
// package's typed truncation error.
func readFull(r io.Reader, p []byte) error {
	if _, err := io.ReadFull(r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrTruncated
		}
		return err
	}
	return nil
}
