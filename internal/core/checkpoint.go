package core

import (
	"encoding/json"
	"sort"
	"strconv"

	"floatfl/internal/checkpoint"
	"floatfl/internal/rl"
)

// floatState is the FLOAT controller's complete mutable state. The pending
// map is non-empty at the async engine's checkpoint boundary (in-flight
// clients have received decisions but not yet reported feedback), so it
// must travel with the snapshot. Agent blobs are the rl package's own
// checkpoint encodings; []byte fields marshal as base64, and the int-keyed
// maps marshal with sorted keys, keeping the whole encoding byte-stable.
type floatState struct {
	PerClientMode bool                `json:"per_client_mode"`
	Agent         []byte              `json:"agent,omitempty"`
	PerClient     map[string][]byte   `json:"per_client,omitempty"`
	Pending       map[string]rl.State `json:"pending,omitempty"`
}

// CheckpointState captures the controller: the collective agent (or every
// materialized per-client agent) plus the pending decision states.
func (f *Float) CheckpointState() ([]byte, error) {
	st := floatState{PerClientMode: f.agent == nil}
	if f.agent != nil {
		blob, err := f.agent.CheckpointState()
		if err != nil {
			return nil, err
		}
		st.Agent = blob
	} else {
		st.PerClient = make(map[string][]byte, len(f.perClient))
		ids := make([]int, 0, len(f.perClient))
		for id := range f.perClient {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			blob, err := f.perClient[id].CheckpointState()
			if err != nil {
				return nil, err
			}
			st.PerClient[strconv.Itoa(id)] = blob
		}
	}
	st.Pending = make(map[string]rl.State, len(f.pending))
	for id, s := range f.pending {
		st.Pending[strconv.Itoa(id)] = s
	}
	return json.Marshal(st)
}

// RestoreCheckpoint restores a captured controller state. The mode
// (collective vs per-client) must match; per-client agents are recreated
// with their deterministic per-client seeds before their states are
// applied, so their RNG streams continue exactly.
func (f *Float) RestoreCheckpoint(data []byte) error {
	var st floatState
	if err := json.Unmarshal(data, &st); err != nil {
		return &checkpoint.FormatError{Reason: "float controller state: " + err.Error()}
	}
	if got, want := st.PerClientMode, f.agent == nil; got != want {
		return &checkpoint.CompatError{Field: "controller mode",
			Got: modeName(got), Want: modeName(want)}
	}
	pending := make(map[int]rl.State, len(st.Pending))
	for k, s := range st.Pending {
		id, err := strconv.Atoi(k)
		if err != nil {
			return &checkpoint.FormatError{Reason: "float controller state: bad pending key " + k}
		}
		pending[id] = s
	}
	if f.agent != nil {
		if err := f.agent.RestoreCheckpoint(st.Agent); err != nil {
			return err
		}
	} else {
		// Recreate agents in sorted ID order so idempotent metric
		// registration happens in a deterministic sequence.
		ids := make([]int, 0, len(st.PerClient))
		for k := range st.PerClient {
			id, err := strconv.Atoi(k)
			if err != nil {
				return &checkpoint.FormatError{Reason: "float controller state: bad client key " + k}
			}
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fresh := make(map[int]*rl.Agent, len(ids))
		prev := f.perClient
		f.perClient = fresh
		for _, id := range ids {
			a := f.agentFor(id)
			if err := a.RestoreCheckpoint(st.PerClient[strconv.Itoa(id)]); err != nil {
				f.perClient = prev
				return err
			}
		}
	}
	f.pending = pending
	return nil
}

func modeName(perClient bool) string {
	if perClient {
		return "per-client"
	}
	return "collective"
}

// heuristicState is the heuristic controller's only mutable state: its
// tie-breaking RNG position.
type heuristicState struct {
	Draws uint64 `json:"draws"`
}

// CheckpointState captures the heuristic controller.
func (h *Heuristic) CheckpointState() ([]byte, error) {
	return json.Marshal(heuristicState{Draws: h.src.Pos()})
}

// RestoreCheckpoint restores a heuristic controller snapshot.
func (h *Heuristic) RestoreCheckpoint(data []byte) error {
	var st heuristicState
	if err := json.Unmarshal(data, &st); err != nil {
		return &checkpoint.FormatError{Reason: "heuristic controller state: " + err.Error()}
	}
	h.src.SeekTo(st.Draws)
	return nil
}
