// Package core implements FLOAT itself: the controller that sits between
// any client-selection algorithm and the FL engine, asks its RLHF agent
// which acceleration technique each selected client should run this round,
// and feeds execution outcomes (participation success, accuracy
// improvement, and deadline-difference human feedback) back into the
// agent's multi-objective Q-table. The controller is deliberately
// non-intrusive: it implements fl.Controller and changes neither the
// selection algorithm nor the training procedure, which is how the paper
// pairs FLOAT with FedAvg, Oort, and FedBuff unchanged.
//
// The package also provides the heuristic controller of Section 4.4 (the
// rules-based straw man FLOAT is compared against in Fig 6).
package core

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"floatfl/internal/device"
	"floatfl/internal/fl"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/rl"
	"floatfl/internal/rngstate"
)

// Config tunes a FLOAT controller.
type Config struct {
	// Agent configures the embedded RLHF agent.
	Agent rl.Config
	// BatchSize, Epochs, and ClientsPerRound are the deployment's global
	// training parameters — the G_B, G_E, G_K dimensions of the agent
	// state (Table 1).
	BatchSize, Epochs, ClientsPerRound int
	// AccRewardScale maps raw accuracy-improvement fractions into the
	// agent's [-1, 1] reward range (default 5: a +0.2 local accuracy jump
	// saturates the reward).
	AccRewardScale float64
	// PerClient trains one Q-table per client instead of a collective
	// table at the aggregator. This is the paper's privacy-conscious mode
	// (RQ2): no client shares system-usage data, at the cost of far slower
	// per-client convergence. The default collective table is what the
	// paper deploys for scale.
	PerClient bool
	// Metrics instruments the controller's agents (collective or
	// per-client; idempotent registration makes a fleet share one counter
	// set). Nil disables.
	Metrics *obs.Registry
}

// Float is the FLOAT controller. It implements fl.Controller.
type Float struct {
	agent      *rl.Agent // collective table; nil in per-client mode
	gb, ge, gk int
	accScale   float64

	// Per-client mode: lazily created local agents, seeded per client.
	perClient map[int]*rl.Agent
	agentCfg  rl.Config

	// pending remembers the state and HF bin each client was given its
	// action under, so feedback lands on the right Q-table cell even
	// though the engine's resource snapshot has moved on by then.
	pending map[int]rl.State

	metrics *obs.Registry
}

var _ fl.Controller = (*Float)(nil)
var _ fl.TimelineContributor = (*Float)(nil)

// New constructs a FLOAT controller.
func New(cfg Config) *Float {
	if cfg.AccRewardScale <= 0 {
		cfg.AccRewardScale = 5
	}
	gb, ge, gk := rl.DiscretizeGlobals(cfg.BatchSize, cfg.Epochs, cfg.ClientsPerRound)
	f := &Float{
		gb:       gb,
		ge:       ge,
		gk:       gk,
		accScale: cfg.AccRewardScale,
		agentCfg: cfg.Agent,
		pending:  make(map[int]rl.State),
		metrics:  cfg.Metrics,
	}
	if cfg.PerClient {
		f.perClient = make(map[int]*rl.Agent)
	} else {
		f.agent = rl.NewAgent(cfg.Agent)
		if f.metrics != nil {
			f.agent.Instrument(f.metrics)
		}
	}
	return f
}

// agentFor returns the agent serving a client: the collective table, or
// the client's own lazily-created local table in per-client mode.
func (f *Float) agentFor(clientID int) *rl.Agent {
	if f.agent != nil {
		return f.agent
	}
	a, ok := f.perClient[clientID]
	if !ok {
		cfg := f.agentCfg
		cfg.Seed = cfg.Seed*31 + int64(clientID) + 1
		a = rl.NewAgent(cfg)
		if f.metrics != nil {
			a.Instrument(f.metrics)
		}
		f.perClient[clientID] = a
	}
	return a
}

// Name implements fl.Controller: "float" for the full RLHF design,
// "float-rl" when human feedback is disabled (the Fig 11 ablation arm),
// "float-local" for per-client tables.
func (f *Float) Name() string {
	if f.agent == nil {
		return "float-local"
	}
	if f.agent.Config().DisableHF {
		return "float-rl"
	}
	return "float"
}

// Agent exposes the collective RLHF agent (Q-table dumps, save/load,
// reward-history plots). It returns nil in per-client mode; use Summary
// for mode-independent reporting.
func (f *Float) Agent() *rl.Agent { return f.agent }

// Summary aggregates learning statistics across whichever agents exist —
// the one collective table or all per-client tables.
type Summary struct {
	Agents      int
	States      int
	Updates     int
	MemoryBytes int64
	// MeanRecentReward averages the last quarter of each agent's reward
	// history, weighted by its update count.
	MeanRecentReward float64
	Actions          []rl.ActionStats
}

// Summary reports merged statistics for the controller's agents.
func (f *Float) Summary() Summary {
	agents := []*rl.Agent{}
	if f.agent != nil {
		agents = append(agents, f.agent)
	} else {
		// Merge per-client agents in client-ID order: the reward and
		// Q-statistic merges below are floating-point sums, so map-order
		// iteration would make the summary nondeterministic.
		ids := make([]int, 0, len(f.perClient))
		for id := range f.perClient {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			agents = append(agents, f.perClient[id])
		}
	}
	var sum Summary
	sum.Agents = len(agents)
	var merged []rl.ActionStats
	var rewardWeight float64
	for _, a := range agents {
		sum.States += a.StatesVisited()
		sum.Updates += a.Updates()
		sum.MemoryBytes += a.MemoryBytes()
		if u := a.Updates(); u > 0 {
			w := float64(u)
			sum.MeanRecentReward += w * a.MeanRecentReward(u/4)
			rewardWeight += w
		}
		for i, st := range a.ActionSummary() {
			if merged == nil {
				merged = make([]rl.ActionStats, len(a.Actions()))
			}
			merged[i].Technique = st.Technique
			merged[i].Part += st.Part * float64(st.Visits)
			merged[i].Acc += st.Acc * float64(st.Visits)
			merged[i].Visits += st.Visits
		}
	}
	for i := range merged {
		if merged[i].Visits > 0 {
			merged[i].Part /= float64(merged[i].Visits)
			merged[i].Acc /= float64(merged[i].Visits)
		}
	}
	if rewardWeight > 0 {
		sum.MeanRecentReward /= rewardWeight
	}
	sum.Actions = merged
	return sum
}

// Reference capacities that anchor the effective-resource state encoding:
// a client at these levels (with full availability) is resource-rich for
// any workload in the registry. The paper's local state covers both the
// runtime availability percentages (Table 1) and the device's "compute,
// network, and energy capacity"; folding capacity into the bins lets one
// collective Q-table serve a heterogeneous population — a weak phone and
// an edge box under identical interference land in different states.
const (
	refGFLOPS = 40.0
	refMbps   = 100.0
	refMemMB  = 6000.0
)

// stateFor builds the agent state from a resource snapshot and the
// client's latest deadline-difference feedback. Each resource dimension is
// the product of runtime availability and normalized device capacity.
func (f *Float) stateFor(c *device.Client, res device.Resources, hfDeadlineDiff float64) rl.State {
	bins := f.agentCfg.Bins
	if bins <= 0 {
		bins = rl.DefaultBins
	}
	capCPU, capNet, capMem := 1.0, 1.0, 1.0
	if c != nil {
		capCPU = clampUnit(c.Compute.GFLOPS / refGFLOPS)
		capNet = clampUnit(res.BandwidthMbps / refMbps)
		capMem = clampUnit(c.Compute.MemoryMB / refMemMB)
	}
	cpu, mem, net := rl.DiscretizeResources(
		res.CPUFrac*capCPU, res.MemFrac*capMem, res.NetFrac*capNet, bins)
	return rl.State{
		GB: f.gb, GE: f.ge, GK: f.gk,
		CPU: cpu, Mem: mem, Net: net,
		HF: rl.DiscretizeDeadlineDiff(hfDeadlineDiff, bins),
	}
}

func clampUnit(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < 0 {
		return 0
	}
	return x
}

// Decide implements fl.Controller.
func (f *Float) Decide(round int, c *device.Client, res device.Resources, hfDeadlineDiff float64) opt.Technique {
	s := f.stateFor(c, res, hfDeadlineDiff)
	f.pending[c.ID] = s
	return f.agentFor(c.ID).SelectAction(s)
}

// Feedback implements fl.Controller.
func (f *Float) Feedback(round int, c *device.Client, tech opt.Technique, out device.Outcome, accImprove float64) {
	s, ok := f.pending[c.ID]
	if !ok {
		// Feedback for a decision this controller never made (e.g. a
		// baseline round); nothing to learn from.
		return
	}
	delete(f.pending, c.ID)
	if tech == opt.TechNone {
		return // not in the action space
	}
	next := f.stateFor(c, out.Resources, out.DeadlineDiff)
	reward := accImprove * f.accScale
	// Update errors only occur for techniques outside the action space,
	// which the guard above excludes; the agent's own validation is the
	// backstop.
	_ = f.agentFor(c.ID).Update(round, s, tech, out.Completed, reward, next)
}

// TimelineSeries implements fl.TimelineContributor: the agent's
// per-action visit distribution as rl_action_visits{action="..."} series,
// merged across per-client tables in client-ID order (integer sums, so
// the merge is exact). Sampled at every quiescent boundary, this is the
// timeline's view of when the RL policy shifted.
func (f *Float) TimelineSeries() []obs.SeriesValue {
	var actions []opt.Technique
	var visits []int
	if f.agent != nil {
		actions = f.agent.Actions()
		visits = f.agent.ActionVisits()
	} else {
		ids := make([]int, 0, len(f.perClient))
		for id := range f.perClient {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			a := f.perClient[id]
			if actions == nil {
				actions = a.Actions()
				visits = make([]int, len(actions))
			}
			for i, v := range a.ActionVisits() {
				visits[i] += v
			}
		}
	}
	out := make([]obs.SeriesValue, 0, len(actions))
	for i, t := range actions {
		out = append(out, obs.SeriesValue{
			Name:  `rl_action_visits{action="` + t.String() + `"}`,
			Value: float64(visits[i]),
		})
	}
	return out
}

// SaveAgent serializes the collective agent (pre-training for transfer).
// It fails in per-client mode, where tables never leave their clients.
func (f *Float) SaveAgent(w io.Writer) error {
	if f.agent == nil {
		return fmt.Errorf("core: per-client Q-tables are private and cannot be exported")
	}
	return f.agent.Save(w)
}

// LoadAgent loads a pre-trained agent snapshot (RQ3: reuse on a new
// workload at minimal cost). It fails in per-client mode.
func (f *Float) LoadAgent(r io.Reader) error {
	if f.agent == nil {
		return fmt.Errorf("core: per-client Q-tables cannot be seeded from a snapshot")
	}
	return f.agent.Load(r)
}

// Heuristic is the Section 4.4 rules-based controller: aggressive
// optimization when CPU and network are both below "Moderate", mild
// optimization otherwise, with the technique chosen at random within the
// chosen intensity tier.
type Heuristic struct {
	bins int
	rng  *rand.Rand
	src  *rngstate.Source
}

var _ fl.Controller = (*Heuristic)(nil)

// NewHeuristic constructs the heuristic controller.
func NewHeuristic(seed int64) *Heuristic {
	src := rngstate.New(seed)
	return &Heuristic{bins: rl.DefaultBins, rng: rand.New(src), src: src}
}

// Name implements fl.Controller.
func (h *Heuristic) Name() string { return "heuristic" }

var (
	aggressiveTechs = []opt.Technique{opt.TechPrune75, opt.TechPartial75, opt.TechQuant8}
	mildTechs       = []opt.Technique{opt.TechQuant16, opt.TechPrune25, opt.TechPartial25}
)

// Decide implements fl.Controller using the paper's two rules.
func (h *Heuristic) Decide(_ int, _ *device.Client, res device.Resources, _ float64) opt.Technique {
	cpu, _, net := rl.DiscretizeResources(res.CPUFrac, res.MemFrac, res.NetFrac, h.bins)
	moderate := 2 // Table 1's "Moderate" bin index at 5-bin resolution
	if cpu < moderate && net < moderate {
		return aggressiveTechs[h.rng.Intn(len(aggressiveTechs))]
	}
	return mildTechs[h.rng.Intn(len(mildTechs))]
}

// Feedback implements fl.Controller (heuristics learn nothing).
func (h *Heuristic) Feedback(int, *device.Client, opt.Technique, device.Outcome, float64) {}

// String renders a short description for logs.
func (f *Float) String() string {
	sum := f.Summary()
	return fmt.Sprintf("FLOAT(agents=%d, states=%d, updates=%d)", sum.Agents, sum.States, sum.Updates)
}
