package core

import (
	"bytes"
	"testing"

	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/fl"
	"floatfl/internal/opt"
	"floatfl/internal/rl"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

func testFloat(seed int64) *Float {
	return New(Config{
		Agent:           rl.Config{Seed: seed, TotalRounds: 50},
		BatchSize:       20,
		Epochs:          5,
		ClientsPerRound: 30,
	})
}

func testClient(t *testing.T) *device.Client {
	t.Helper()
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: 1, Scenario: trace.ScenarioDynamic, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pop[0]
}

func TestFloatName(t *testing.T) {
	if testFloat(1).Name() != "float" {
		t.Fatal("full FLOAT should be named float")
	}
	noHF := New(Config{Agent: rl.Config{DisableHF: true}, BatchSize: 20, Epochs: 5, ClientsPerRound: 30})
	if noHF.Name() != "float-rl" {
		t.Fatal("HF-disabled FLOAT should be named float-rl")
	}
}

func TestDecideReturnsActionSpaceTechnique(t *testing.T) {
	f := testFloat(2)
	c := testClient(t)
	res := c.ResourcesAt(0)
	tech := f.Decide(0, c, res, 0)
	if tech == opt.TechNone {
		t.Fatal("FLOAT's action space excludes TechNone")
	}
	found := false
	for _, a := range opt.Actions() {
		if a == tech {
			found = true
		}
	}
	if !found {
		t.Fatalf("Decide returned %v, not in the action space", tech)
	}
}

func TestFeedbackUpdatesAgent(t *testing.T) {
	f := testFloat(3)
	c := testClient(t)
	res := c.ResourcesAt(0)
	tech := f.Decide(0, c, res, 0)
	before := f.Agent().Updates()
	f.Feedback(0, c, tech, device.Outcome{Completed: true, Resources: res}, 0.1)
	if f.Agent().Updates() != before+1 {
		t.Fatal("Feedback did not update the agent")
	}
	// Feedback without a prior Decide is ignored.
	f.Feedback(1, c, opt.TechQuant8, device.Outcome{Completed: true}, 0.1)
	if f.Agent().Updates() != before+1 {
		t.Fatal("unmatched feedback should be ignored")
	}
}

func TestFeedbackUsesDecisionState(t *testing.T) {
	// The Q-table update must land on the state the decision was made
	// under, even if resources changed by execution time.
	f := testFloat(4)
	c := testClient(t)
	resRich := device.Resources{Available: true, CPUFrac: 0.79, MemFrac: 0.79, NetFrac: 0.99, BandwidthMbps: 50, Battery: 1}
	tech := f.Decide(0, c, resRich, 0)
	out := device.Outcome{
		Completed: true,
		Resources: device.Resources{Available: true, CPUFrac: 0.01, MemFrac: 0.01, NetFrac: 0.01},
	}
	f.Feedback(0, c, tech, out, 0.2)

	s := f.stateFor(c, resRich, 0)
	q := f.Agent().QValues(s)
	nonZero := false
	for _, v := range q {
		if v != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("update did not land on the decision-time state")
	}
}

func TestSaveLoadAgent(t *testing.T) {
	f := testFloat(5)
	c := testClient(t)
	for i := 0; i < 20; i++ {
		res := c.ResourcesAt(i)
		tech := f.Decide(i, c, res, 0)
		f.Feedback(i, c, tech, device.Outcome{Completed: true, Resources: res}, 0.1)
	}
	var buf bytes.Buffer
	if err := f.SaveAgent(&buf); err != nil {
		t.Fatal(err)
	}
	g := testFloat(6)
	if err := g.LoadAgent(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if g.Agent().StatesVisited() != f.Agent().StatesVisited() {
		t.Fatal("agent transfer lost states")
	}
	if f.String() == "" {
		t.Fatal("String should describe the controller")
	}
}

func TestHeuristicRules(t *testing.T) {
	h := NewHeuristic(7)
	if h.Name() != "heuristic" {
		t.Fatal("heuristic name")
	}
	// Low CPU + low network -> aggressive tier.
	scarce := device.Resources{CPUFrac: 0.05, MemFrac: 0.5, NetFrac: 0.05}
	for i := 0; i < 50; i++ {
		tech := h.Decide(i, nil, scarce, 0)
		if tech.Aggressiveness() < 0.6 {
			t.Fatalf("scarce resources got mild technique %v", tech)
		}
	}
	// Rich resources -> mild tier.
	rich := device.Resources{CPUFrac: 0.7, MemFrac: 0.7, NetFrac: 0.9}
	for i := 0; i < 50; i++ {
		tech := h.Decide(i, nil, rich, 0)
		if tech.Aggressiveness() > 0.3 {
			t.Fatalf("rich resources got aggressive technique %v", tech)
		}
	}
	h.Feedback(0, nil, opt.TechQuant8, device.Outcome{}, 0) // no-op, must not panic
}

func TestHeuristicCoversTiers(t *testing.T) {
	h := NewHeuristic(8)
	scarce := device.Resources{CPUFrac: 0.05, NetFrac: 0.05}
	seen := map[opt.Technique]bool{}
	for i := 0; i < 200; i++ {
		seen[h.Decide(i, nil, scarce, 0)] = true
	}
	for _, want := range []opt.Technique{opt.TechPrune75, opt.TechPartial75, opt.TechQuant8} {
		if !seen[want] {
			t.Fatalf("heuristic never chose %v in the aggressive tier", want)
		}
	}
}

// Integration: FLOAT plugged into the sync engine reduces dropouts
// relative to the bare baseline under a tight deadline — the paper's
// headline mechanism.
func TestFloatReducesDropoutsEndToEnd(t *testing.T) {
	run := func(ctrl fl.Controller) *fl.Result {
		fed, err := data.Generate("femnist", data.GenerateConfig{Clients: 30, Alpha: 0.1, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		pop, err := device.NewPopulation(device.PopulationConfig{
			Clients: 30, Scenario: trace.ScenarioDynamic, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fl.RunSync(fed, pop, selection.NewRandom(22), ctrl, fl.Config{
			Arch: "resnet18", Rounds: 25, ClientsPerRound: 10,
			Epochs: 2, BatchSize: 16, LR: 0.1,
			DeadlinePercentile: 45, EvalEvery: 25, Seed: 23,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	baseline := run(fl.NoOpController{})
	float := run(New(Config{
		Agent:     rl.Config{Seed: 24, TotalRounds: 25},
		BatchSize: 16, Epochs: 2, ClientsPerRound: 10,
	}))
	if baseline.Ledger.TotalDrops == 0 {
		t.Skip("baseline had no dropouts at this deadline; nothing to rescue")
	}
	if float.Ledger.TotalDrops >= baseline.Ledger.TotalDrops {
		t.Fatalf("FLOAT did not reduce dropouts: float=%d baseline=%d",
			float.Ledger.TotalDrops, baseline.Ledger.TotalDrops)
	}
}

// TestTimelineSeriesTracksActionVisits pins the FLOAT controller's
// timeline contribution: one rl_action_visits series per action, visit
// counts summed across the Q-table, action order stable.
func TestTimelineSeriesTracksActionVisits(t *testing.T) {
	f := testFloat(9)
	series := f.TimelineSeries()
	if len(series) != len(opt.Actions()) {
		t.Fatalf("series = %d, want one per action (%d)", len(series), len(opt.Actions()))
	}
	for i, sv := range series {
		want := `rl_action_visits{action="` + opt.Actions()[i].String() + `"}`
		if sv.Name != want {
			t.Errorf("series[%d].Name = %q, want %q", i, sv.Name, want)
		}
		if sv.Value != 0 {
			t.Errorf("fresh agent visits[%d] = %v, want 0", i, sv.Value)
		}
	}

	c := testClient(t)
	res := c.ResourcesAt(0)
	tech := f.Decide(0, c, res, 0)
	f.Feedback(0, c, tech, device.Outcome{Completed: true, Resources: res}, 0.1)
	total := 0.0
	for _, sv := range f.TimelineSeries() {
		total += sv.Value
	}
	if total != 1 {
		t.Fatalf("total visits after one feedback = %v, want 1", total)
	}
}

// TestTimelineSeriesPerClientMode sums visits across per-client agents in
// deterministic client-ID order.
func TestTimelineSeriesPerClientMode(t *testing.T) {
	f := New(Config{
		Agent:           rl.Config{Seed: 4, TotalRounds: 50},
		BatchSize:       20,
		Epochs:          5,
		ClientsPerRound: 30,
		PerClient:       true,
	})
	c := testClient(t)
	res := c.ResourcesAt(0)
	tech := f.Decide(0, c, res, 0)
	f.Feedback(0, c, tech, device.Outcome{Completed: true, Resources: res}, 0.1)
	series := f.TimelineSeries()
	if len(series) != len(opt.Actions()) {
		t.Fatalf("series = %d, want %d", len(series), len(opt.Actions()))
	}
	total := 0.0
	for _, sv := range series {
		total += sv.Value
	}
	if total != 1 {
		t.Fatalf("per-client total visits = %v, want 1", total)
	}
}
