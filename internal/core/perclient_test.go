package core

import (
	"bytes"
	"testing"

	"floatfl/internal/device"
	"floatfl/internal/opt"
	"floatfl/internal/rl"
	"floatfl/internal/trace"
)

func perClientFloat(seed int64) *Float {
	return New(Config{
		Agent:           rl.Config{Seed: seed, TotalRounds: 50},
		BatchSize:       20,
		Epochs:          5,
		ClientsPerRound: 30,
		PerClient:       true,
	})
}

func TestPerClientMode(t *testing.T) {
	f := perClientFloat(1)
	if f.Name() != "float-local" {
		t.Fatalf("per-client name %q", f.Name())
	}
	if f.Agent() != nil {
		t.Fatal("per-client mode must not expose a collective agent")
	}
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: 3, Scenario: trace.ScenarioDynamic, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		for _, c := range pop {
			res := c.ResourcesAt(round)
			tech := f.Decide(round, c, res, 0)
			f.Feedback(round, c, tech, device.Outcome{Completed: true, Resources: res}, 0.1)
		}
	}
	sum := f.Summary()
	if sum.Agents != 3 {
		t.Fatalf("expected 3 per-client agents, got %d", sum.Agents)
	}
	if sum.Updates != 30 {
		t.Fatalf("expected 30 updates across agents, got %d", sum.Updates)
	}
	if sum.States == 0 || sum.MemoryBytes == 0 {
		t.Fatalf("summary missing state/memory accounting: %+v", sum)
	}
	if len(sum.Actions) != len(opt.Actions()) {
		t.Fatalf("merged action summary has %d entries", len(sum.Actions))
	}
}

func TestPerClientIsolation(t *testing.T) {
	// One client's experience must not leak into another's table.
	f := perClientFloat(3)
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: 2, Scenario: trace.ScenarioNone, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := pop[0].ResourcesAt(0)
	tech := f.Decide(0, pop[0], res, 0)
	f.Feedback(0, pop[0], tech, device.Outcome{Completed: true, Resources: res}, 0.5)

	a0 := f.agentFor(pop[0].ID)
	a1 := f.agentFor(pop[1].ID)
	if a0 == a1 {
		t.Fatal("per-client agents must be distinct")
	}
	if a0.Updates() != 1 || a1.Updates() != 0 {
		t.Fatalf("experience leaked: a0=%d a1=%d updates", a0.Updates(), a1.Updates())
	}
}

func TestPerClientSaveLoadRefused(t *testing.T) {
	f := perClientFloat(5)
	var buf bytes.Buffer
	if err := f.SaveAgent(&buf); err == nil {
		t.Fatal("per-client tables must not be exportable")
	}
	if err := f.LoadAgent(&buf); err == nil {
		t.Fatal("per-client tables must not be seedable")
	}
}

func TestCollectiveSummaryMatchesAgent(t *testing.T) {
	f := testFloat(6)
	c := testClient(t)
	for i := 0; i < 15; i++ {
		res := c.ResourcesAt(i)
		tech := f.Decide(i, c, res, 0)
		f.Feedback(i, c, tech, device.Outcome{Completed: i%2 == 0, Resources: res}, 0.1)
	}
	sum := f.Summary()
	if sum.Agents != 1 {
		t.Fatalf("collective mode should report 1 agent, got %d", sum.Agents)
	}
	if sum.Updates != f.Agent().Updates() || sum.States != f.Agent().StatesVisited() {
		t.Fatal("summary disagrees with the collective agent")
	}
}
